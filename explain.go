package s2db

import (
	"context"
	"fmt"
	"strings"
	"time"

	"s2db/internal/exec"
)

// Plan is a structured summary of how a query will execute: the leaf
// views it fans out to, the worker-pool width, and the resolved predicate
// and output shape. Strategies carries the per-segment filter-strategy
// counters of the last completed run (zero until the query has executed),
// replacing ad-hoc inspection of Stats().
type Plan struct {
	// Table is the queried table.
	Table string
	// Statement classifies the statement for SQL-text plans ("select",
	// "insert", ...); empty for builder-API plans.
	Statement string
	// SQL is the normalized query template — literals stripped to binds,
	// case and whitespace canonicalized — that keys the plan cache. Empty
	// for builder-API plans.
	SQL string
	// PlanCacheHit reports whether this statement's preparation reused a
	// cached plan (skipping lex/parse/lower). Always false when the plan
	// cache is disabled (Config.PlanCacheEntries == 0).
	PlanCacheHit bool
	// PlanCache snapshots the shared plan cache's cumulative counters at
	// explain time; all zero when the cache is disabled.
	PlanCache PlanCacheStats
	// Workspace names the read-only workspace serving the query; empty
	// means the primary cluster.
	Workspace string
	// CachePartition names the decoded-vector cache partition the scan
	// resolves against ("primary", a workspace name, or empty when the
	// cache is disabled). With SharedVectorCache on, every query reports
	// "primary" — the single unified tier.
	CachePartition string
	// Partitions is the number of leaf views the query fans out to.
	Partitions int
	// Parallelism is the worker-pool bound for concurrent partition scans.
	Parallelism int
	// Filter is the resolved predicate tree rendered with column names;
	// empty means a full scan.
	Filter string
	// GroupBy lists the grouping columns by name.
	GroupBy []string
	// Aggregates lists the aggregate outputs (e.g. "sum(amount)").
	Aggregates []string
	// OrderBy lists the sort keys (e.g. "region desc").
	OrderBy []string
	// Limit is the result cap, or -1 for none.
	Limit int
	// EarlyLimit reports whether partition scans terminate early once the
	// limit is satisfied (possible only without grouping or ordering).
	EarlyLimit bool
	// Strategies snapshots the adaptive per-segment execution counters of
	// the last completed run: which segments were skipped via index/zone
	// maps and which filter strategy (index, encoded, regular, group) each
	// surviving segment chose (§5.1, §5.2).
	Strategies exec.ScanStats
	// Tenant is the QoS tenant the query's resource use bills to: the
	// AsTenant tag, the context tenant, the workspace name, or the
	// primary tenant, in that order.
	Tenant string
	// QoS snapshots the billed tenant's governor accounting at explain
	// time (budgets, tokens spent, waits, sheds per resource class). Nil
	// when QoS is disabled.
	QoS *QoSTenantStats
}

// Explain resolves the query — snapshotting targets and binding every
// name-based reference — and returns its execution plan without running
// it. Resolution errors (unknown columns, out-of-range ordinals) surface
// here exactly as they would at execution.
func (q *Query) Explain() (Plan, error) {
	r, err := q.resolve()
	if err != nil {
		return Plan{}, err
	}
	p := Plan{
		Table:       q.table,
		Partitions:  len(r.targets),
		Parallelism: r.parallelism,
		Filter:      exec.FormatNode(r.filter, r.schema),
		Limit:       q.limit,
		EarlyLimit:  r.earlyLimit >= 0,
		Strategies:  q.Stats(),
	}
	if q.workspace != nil {
		p.Workspace = q.workspace.Name
	}
	p.Tenant = q.effectiveTenant(context.Background())
	if ts, ok := q.db.gov.TenantStatsFor(p.Tenant); ok {
		p.QoS = &ts
	}
	// Report the cache partition the leaf views actually carry, rather than
	// inferring it from routing: unified mode and a disabled cache both
	// diverge from the workspace name.
	if len(r.views) > 0 {
		if c, ok := r.views[0].DecodedCache().(*exec.VecCache); ok {
			p.CachePartition = c.PartitionName()
		}
	}
	for _, c := range r.groupCols {
		p.GroupBy = append(p.GroupBy, r.schema.Columns[c].Name)
	}
	for _, a := range r.aggs {
		p.Aggregates = append(p.Aggregates, exec.FormatAgg(a, r.schema))
	}
	for _, k := range r.order {
		name := fmt.Sprintf("col%d", k.Col)
		if len(r.aggs) == 0 {
			name = r.schema.Columns[k.Col].Name
		} else if k.Col < len(r.groupCols) {
			name = r.schema.Columns[r.groupCols[k.Col]].Name
		}
		if k.Desc {
			name += " desc"
		}
		p.OrderBy = append(p.OrderBy, name)
	}
	return p, nil
}

// String renders the plan for humans, one clause per line.
func (p Plan) String() string {
	var b strings.Builder
	if p.SQL != "" {
		outcome := "miss"
		if p.PlanCacheHit {
			outcome = "hit"
		}
		if p.PlanCache == (PlanCacheStats{}) {
			outcome = "off"
		}
		fmt.Fprintf(&b, "sql: %s\n", p.SQL)
		fmt.Fprintf(&b, "  plan cache: %s (%d hits / %d misses cumulative, %d templates cached)\n",
			outcome, p.PlanCache.Hits, p.PlanCache.Misses, p.PlanCache.Entries)
		if p.Statement != "" && p.Statement != "select" {
			fmt.Fprintf(&b, "  %s %s\n", p.Statement, p.Table)
			return b.String()
		}
	}
	fmt.Fprintf(&b, "scan %s", p.Table)
	if p.Workspace != "" {
		fmt.Fprintf(&b, " on workspace %s", p.Workspace)
	}
	fmt.Fprintf(&b, " across %d partition(s), parallelism %d\n", p.Partitions, p.Parallelism)
	if p.QoS != nil {
		w, m := p.QoS.Workers, p.QoS.ScanMem
		fmt.Fprintf(&b, "  qos [%s]: workers %d/%d in use (%d waits, %d sheds); scan mem %d/%d bytes (%d waits, %d sheds)\n",
			p.Tenant, w.InUse, w.Budget, w.Waits, w.Sheds, m.InUse, m.Budget, m.Waits, m.Sheds)
	} else if p.Tenant != "" {
		fmt.Fprintf(&b, "  qos: off (tenant %s ungoverned)\n", p.Tenant)
	}
	if p.Filter != "" {
		fmt.Fprintf(&b, "  where   %s\n", p.Filter)
	}
	if len(p.GroupBy) > 0 {
		fmt.Fprintf(&b, "  group   %s\n", strings.Join(p.GroupBy, ", "))
	}
	if len(p.Aggregates) > 0 {
		fmt.Fprintf(&b, "  agg     %s\n", strings.Join(p.Aggregates, ", "))
	}
	if len(p.OrderBy) > 0 {
		fmt.Fprintf(&b, "  order   %s\n", strings.Join(p.OrderBy, ", "))
	}
	if p.Limit >= 0 {
		fmt.Fprintf(&b, "  limit   %d", p.Limit)
		if p.EarlyLimit {
			b.WriteString(" (early termination)")
		}
		b.WriteString("\n")
	}
	s := p.Strategies
	if s.SegmentsScanned+s.SegmentsSkipped > 0 {
		fmt.Fprintf(&b, "  last run: %d/%d segments scanned (%d skipped); filters: %d index, %d encoded, %d regular, %d group; %d/%d rows\n",
			s.SegmentsScanned, s.SegmentsScanned+s.SegmentsSkipped, s.SegmentsSkipped,
			s.IndexFilters, s.EncodedFilters, s.RegularFilters, s.GroupFilters,
			s.RowsOutput, s.RowsScanned)
	}
	if s.EncodedFilterSegs+s.FusedAggSegs+s.RowsMaterialized > 0 {
		fmt.Fprintf(&b, "  fused: %d span-filtered segs, %d fused-agg segs; %d rows materialized\n",
			s.EncodedFilterSegs, s.FusedAggSegs, s.RowsMaterialized)
	}
	if s.VecCacheHits+s.VecCacheMisses+s.VecCacheWaits+s.VecDecodes > 0 {
		part := p.CachePartition
		if part == "" {
			part = "(none)"
		}
		fmt.Fprintf(&b, "  vector cache [%s]: %d hits (%d from shared tier), %d misses, %d waits, %d evictions; %d column decodes\n",
			part, s.VecCacheHits, s.VecCacheSharedHits, s.VecCacheMisses, s.VecCacheWaits, s.VecCacheEvictions, s.VecDecodes)
	}
	if s.PlanCacheHits+s.PlanCacheMisses > 0 {
		fmt.Fprintf(&b, "  plan cache (last run): %d hit, %d miss\n", s.PlanCacheHits, s.PlanCacheMisses)
	}
	if s.HydrationWaits+s.HydratedSegs > 0 {
		fmt.Fprintf(&b, "  hydration: %d cold-segment waits, %d segments hydrated on demand\n",
			s.HydrationWaits, s.HydratedSegs)
	}
	if s.QoSWaits > 0 {
		fmt.Fprintf(&b, "  qos (last run): %d admission waits, %v queued\n",
			s.QoSWaits, time.Duration(s.QoSWaitNanos))
	}
	return b.String()
}
