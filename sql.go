package s2db

import (
	"context"
	"fmt"

	"s2db/internal/core"
	"s2db/internal/sql"
)

// This file is the SQL text front-end: DB.Query / DB.QueryCtx execute a
// SELECT written as SQL text with `?` bind parameters, DB.Exec runs
// INSERT/UPDATE/DELETE, and DB.Explain returns the execution plan without
// running it. Statements lower onto the same name-based fluent builder
// (DB.Table) and internal/exec plans the Go API uses, so both surfaces
// see identical execution, statistics and snapshots.
//
// The pipeline is parse → normalize → template-keyed plan cache → bind →
// execute (DESIGN.md §11): query text is normalized into a template
// (literals stripped to binds, case and whitespace canonicalized), the
// template keys a shared LRU of lowered plans, and a cache hit skips
// lex/parse/lower entirely — only bind validation and execution run.

// ParseError is a lexing/parsing failure with the position (line:column)
// and the offending token. Returned by Query/Exec/Explain; match with
// errors.As.
type ParseError = sql.ParseError

// ColumnError is a column-resolution failure (unknown column, type
// mismatch) annotated with the identifier's position in the query text.
type ColumnError = sql.ColumnError

// PlanCacheStats snapshots the shared plan cache: Hits (TextHits of which
// skipped lexing too), Misses (full compilations), Evictions and current
// entry counts. All zero when the cache is disabled.
type PlanCacheStats = sql.CacheStats

// DefaultPlanCacheEntries bounds the plan cache when Config.PlanCacheEntries
// names no explicit size in examples and benches; it is referenced by
// documentation rather than applied implicitly — PlanCacheEntries == 0
// keeps the cache off (the ablation configuration).
const DefaultPlanCacheEntries = 256

// QueryCtx executes a SELECT given as SQL text under ctx, with `?` bind
// parameters supplied in order. Without aggregates it returns the
// matching rows (projected to the select list); with aggregates one row
// per group.
func (db *DB) QueryCtx(ctx context.Context, sqlText string, binds ...Value) ([]Row, error) {
	rows, _, err := db.sqlQuery(ctx, sqlText, binds)
	return rows, err
}

// Query executes a SELECT given as SQL text under context.Background().
func (db *DB) Query(sqlText string, binds ...Value) ([]Row, error) {
	return db.QueryCtx(context.Background(), sqlText, binds...)
}

// Exec executes INSERT, UPDATE or DELETE given as SQL text, returning the
// number of rows inserted, updated or deleted. Writes wait for
// replication durability exactly like the Go API's Insert/Update/Delete.
func (db *DB) Exec(sqlText string, binds ...Value) (int, error) {
	p, vals, schema, err := db.prepareBind(sqlText, binds)
	if err != nil {
		return 0, err
	}
	switch p.Stmt.Kind {
	case sql.StmtInsert:
		rows, err := p.Stmt.BindInsert(sqlText, vals, schema)
		if err != nil {
			return 0, err
		}
		res, err := db.cluster.Insert(p.Stmt.Table, rows, core.InsertOptions{})
		if err != nil {
			return 0, err
		}
		return res.Inserted + res.Replaced + res.Updated, nil
	case sql.StmtUpdate:
		m, err := p.Stmt.BindUpdate(sqlText, vals, schema)
		if err != nil {
			return 0, err
		}
		return db.cluster.UpdateWhere(m.Table, m.Where, m.Set)
	case sql.StmtDelete:
		m, err := p.Stmt.BindDelete(sqlText, vals, schema)
		if err != nil {
			return 0, err
		}
		return db.cluster.DeleteWhere(m.Table, m.Where)
	default:
		return 0, fmt.Errorf("s2db: %s statement returns rows — use Query", p.Stmt.Kind)
	}
}

// Explain prepares a SQL statement — consulting the plan cache exactly as
// execution would — and returns its plan without running it. The plan
// carries the normalized template, whether this preparation hit the
// cache, and the cache's cumulative counters.
func (db *DB) Explain(sqlText string, binds ...Value) (Plan, error) {
	p, vals, schema, err := db.prepareBind(sqlText, binds)
	if err != nil {
		return Plan{}, err
	}
	if p.Stmt.Kind != sql.StmtSelect {
		return Plan{
			Table:        p.Stmt.Table,
			SQL:          p.Stmt.Template,
			Statement:    p.Stmt.Kind.String(),
			PlanCacheHit: p.Hit,
			PlanCache:    db.plans.Stats(),
			Limit:        -1,
		}, nil
	}
	b, err := p.Stmt.BindSelect(sqlText, vals, schema)
	if err != nil {
		return Plan{}, err
	}
	q := db.boundQuery(b)
	plan, err := q.Explain()
	if err != nil {
		return Plan{}, err
	}
	plan.SQL = p.Stmt.Template
	plan.Statement = "select"
	plan.PlanCacheHit = p.Hit
	plan.PlanCache = db.plans.Stats()
	return plan, nil
}

// PlanCacheStats returns the shared plan cache's cumulative counters.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.Stats() }

// prepareBind runs the shared front half of every SQL entry point:
// resolve the text through the plan cache (or compile when disabled),
// assemble the slot values from extracted literals + caller binds, and
// fetch the target table's schema.
func (db *DB) prepareBind(sqlText string, binds []Value) (*sql.Prepared, []Value, *Schema, error) {
	p, err := db.plans.Prepare(sqlText)
	if err != nil {
		return nil, nil, nil, err
	}
	vals, err := p.Bind(binds)
	if err != nil {
		return nil, nil, nil, err
	}
	schema, err := db.cluster.Schema(p.Stmt.Table)
	if err != nil {
		return nil, nil, nil, err
	}
	return p, vals, schema, nil
}

// sqlQuery executes a SELECT and returns the rows plus the underlying
// builder query (whose Stats carry the run's counters, including the
// plan-cache outcome) for tests and Explain.
func (db *DB) sqlQuery(ctx context.Context, sqlText string, binds []Value) ([]Row, *Query, error) {
	p, vals, schema, err := db.prepareBind(sqlText, binds)
	if err != nil {
		return nil, nil, err
	}
	b, err := p.Stmt.BindSelect(sqlText, vals, schema)
	if err != nil {
		return nil, nil, err
	}
	q := db.boundQuery(b)
	rows, err := q.RowsCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	// Record the plan-cache outcome on this run's counters so the stats a
	// SQL query reports are complete (ScanStats.PlanCacheHits/Misses).
	q.mu.Lock()
	if p.Hit {
		q.stats.PlanCacheHits++
	} else {
		q.stats.PlanCacheMisses++
	}
	q.mu.Unlock()
	if b.Project != nil {
		projected := make([]Row, len(rows))
		for i, r := range rows {
			projected[i] = r.Project(b.Project)
		}
		rows = projected
	}
	return rows, q, nil
}

// boundQuery adapts a bound SELECT onto the fluent builder.
func (db *DB) boundQuery(b *sql.BoundSelect) *Query {
	q := db.Table(b.Table)
	q.filter = b.Filter
	for _, g := range b.GroupBy {
		q.groups = append(q.groups, groupKey{ord: -1, name: g})
	}
	q.aggs = b.Aggs
	q.order = b.Order
	q.limit = b.Limit
	return q
}
