package s2db

import (
	"strings"
	"testing"
	"time"
)

func TestOpenRejectsInvalidCacheShares(t *testing.T) {
	cases := []struct {
		name    string
		shares  map[string]float64
		wantErr string
	}{
		{"sum over one", map[string]float64{"ws1": 0.7, "ws2": 0.7}, "over the whole budget"},
		{"zero share", map[string]float64{"ws1": 0}, "must be > 0"},
		{"negative share", map[string]float64{"ws1": -0.5}, "must be > 0"},
		{"nonexistent empty name", map[string]float64{"": 0.5}, "nonexistent workspace"},
		{"primary starved", map[string]float64{"reports": 1.0}, "leaving the primary no budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(Config{Partitions: 1, WorkspaceCacheShares: tc.shares})
			if err == nil {
				db.Close()
				t.Fatalf("Open accepted invalid shares %v", tc.shares)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	// Valid shares — and a disabled cache with valid shares — open fine.
	db := openTestDB(t, Config{Partitions: 1, WorkspaceCacheShares: map[string]float64{"reports": 0.25}})
	_ = db
	db2 := openTestDB(t, Config{Partitions: 1, VectorCacheBytes: -1, WorkspaceCacheShares: map[string]float64{"reports": 0.25}})
	if s := db2.VectorCacheStats(); s.Total.Bytes != 0 {
		t.Fatalf("disabled cache reports residency: %+v", s.Total)
	}
}

func TestCreateWorkspaceRejectsEmptyName(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 1})
	if _, err := db.CreateWorkspace(""); err == nil {
		t.Fatal("empty workspace name accepted")
	}
}

func TestPerWorkspaceCacheStatsAndExplain(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 2, VectorCacheBytes: 1 << 20})
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, 400)
	if err := db.Flush("events"); err != nil {
		t.Fatal(err)
	}

	ws, err := db.CreateWorkspace("reports")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A primary query resolves against the primary cache partition.
	q := db.Table("events").Where(Gt(2, Int(10)))
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.CachePartition != "primary" {
		t.Fatalf("primary plan cache partition = %q, want primary", plan.CachePartition)
	}
	if _, err := q.Count(); err != nil {
		t.Fatal(err)
	}

	// A workspace query resolves against the workspace's own partition, and
	// its scans show up in the workspace's tier stats, not the primary's.
	primaryBefore := db.VectorCacheStats().Primary
	wq := db.Table("events").OnWorkspace(ws).Where(Gt(2, Int(10)))
	wplan, err := wq.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if wplan.CachePartition != "reports" {
		t.Fatalf("workspace plan cache partition = %q, want reports", wplan.CachePartition)
	}
	if _, err := wq.Count(); err != nil {
		t.Fatal(err)
	}

	stats := db.VectorCacheStats()
	wsStats, ok := stats.Workspaces["reports"]
	if !ok {
		t.Fatalf("no per-workspace stats entry: %+v", stats.Workspaces)
	}
	if wsStats.Misses == 0 {
		t.Fatalf("workspace scan left no trace in its tier: %+v", wsStats)
	}
	if got := stats.Primary.Misses; got != primaryBefore.Misses {
		t.Fatalf("workspace scan decoded into the primary tier: %d -> %d misses", primaryBefore.Misses, got)
	}
	if total := stats.Total; total.Misses < wsStats.Misses {
		t.Fatalf("Total does not fold workspace tiers: %+v < %+v", total, wsStats)
	}

	// Detach releases the partition: its stats entry disappears.
	if err := ws.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.VectorCacheStats().Workspaces["reports"]; ok {
		t.Fatal("detached workspace still reported in VectorCacheStats")
	}
}

func TestSharedVectorCacheAblation(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 1, VectorCacheBytes: 1 << 20, SharedVectorCache: true})
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, 200)
	if err := db.Flush("events"); err != nil {
		t.Fatal(err)
	}
	ws, err := db.CreateWorkspace("reports")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Unified mode: the workspace aliases the primary tier, so its query
	// reports the primary partition and no per-workspace entry exists.
	plan, err := db.Table("events").OnWorkspace(ws).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.CachePartition != "primary" {
		t.Fatalf("unified-mode cache partition = %q, want primary", plan.CachePartition)
	}
	if _, err := db.Table("events").OnWorkspace(ws).Count(); err != nil {
		t.Fatal(err)
	}
	stats := db.VectorCacheStats()
	if len(stats.Workspaces) != 0 {
		t.Fatalf("unified mode grew workspace tiers: %+v", stats.Workspaces)
	}
	if stats.Shared.Entries != 0 || stats.Shared.Hits != 0 {
		t.Fatalf("unified mode used a shared tier: %+v", stats.Shared)
	}
}
