# Tier-1 gate: every change must pass `make check` — build, vet, and the
# full test suite under the race detector (the parallel fan-out scheduler
# runs on every query, so -race is part of the gate, not an extra).
.PHONY: check build vet test race bench

check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem
