# Tier-1 gate: every change must pass `make check` — build, vet, and the
# full test suite under the race detector (the parallel fan-out scheduler
# runs on every query, so -race is part of the gate, not an extra).
.PHONY: check build vet test race bench benchall

check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates BENCH_PR2.json: cold-vs-warm decoded-vector-cache
# numbers (ns/op, allocs/op, hit rate) for the scan and fan-out paths.
bench:
	go run ./cmd/s2bench -exp veccache -out BENCH_PR2.json

# benchall runs the full Go benchmark suite (paper tables + ablations).
benchall:
	go test -bench=. -benchmem
