# Tier-1 gate: every change must pass `make check` — build, vet, and the
# full test suite under the race detector (the parallel fan-out scheduler
# runs on every query, so -race is part of the gate, not an extra).
.PHONY: check ci fmtcheck lint build vet test race racewal qossmoke bench benchgc benchmerge benchws benchsql benchkernels benchtransport benchrestore benchqos benchsmoke benchsmokecheck benchall fuzzsmoke chaossmoke

check: build vet race

# ci mirrors .github/workflows/ci.yml exactly: formatting, staticcheck,
# the tier-1 check gate, the focused WAL/replication race gate, the
# multi-tenant QoS isolation gate, a smoke pass of every benchmark
# harness (with artifact coverage verified against `s2bench -list`), and
# a short fuzz pass of the SQL front-end. Run it locally before pushing.
ci: fmtcheck lint check racewal qossmoke chaossmoke benchsmokecheck benchsmoke fuzzsmoke

# fmtcheck fails (and lists the offenders) if any tracked Go file is not
# gofmt-clean; it never rewrites files.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs staticcheck at a pinned version so findings are reproducible.
# Resolution order: a staticcheck already on PATH, a previously installed
# .tools/staticcheck, else a fresh pinned install into .tools/. With no
# tool and no network (air-gapped dev box) it skips with a notice rather
# than failing — CI always has the network, so the gate is real there.
STATICCHECK_VERSION = 2025.1.1
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -x .tools/staticcheck ]; then \
		.tools/staticcheck ./...; \
	elif GOBIN=$(CURDIR)/.tools go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) 2>/dev/null; then \
		.tools/staticcheck ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) unavailable and not installable (offline?); skipping"; \
	fi

# racewal is the focused replication-pipeline gate: the WAL page/group
# commit machinery and its cluster consumers under the race detector.
racewal:
	go test -race ./internal/wal/... ./internal/cluster/...

# qossmoke is the multi-tenant isolation gate: an adversarial tenant
# floods the governed worker pool while a well-behaved tenant's tail
# latency, typed sheds and token accounting are asserted — under the
# race detector, including the attach/detach churn storm.
qossmoke:
	go test -race -run 'TestQoS' -count=1 -timeout 300s .

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates BENCH_PR2.json: cold-vs-warm decoded-vector-cache
# numbers (ns/op, allocs/op, hit rate) for the scan and fan-out paths.
bench:
	go run ./cmd/s2bench -exp veccache -out BENCH_PR2.json

# benchgc regenerates BENCH_PR3.json: multi-writer commit throughput with
# 2 sync replicas at 1ms link latency, per-record vs group-commit pages,
# plus the durable-watermark recompute before/after numbers.
benchgc:
	go run ./cmd/s2bench -exp groupcommit -out BENCH_PR3.json

# benchmerge regenerates BENCH_PR4.json: columnar k-way merge throughput
# vs the row-resort baseline, foreground write p99 while a merge is in
# flight (install-only lock vs lock-held), and decoded-vector cache
# invalidations under cache-aware vs size-only run selection.
benchmerge:
	go run ./cmd/s2bench -exp merge -out BENCH_PR4.json

# benchws regenerates BENCH_PR5.json: primary p99 scan latency under an
# adversarial analytic-workspace churn, baseline vs the pre-partitioning
# shared cache vs the per-workspace partitioned cache.
benchws:
	go run ./cmd/s2bench -exp wscache -out BENCH_PR5.json

# benchsql regenerates BENCH_PR6.json: amortized SQL latency per query
# shape with a warm plan cache vs parse-every-time (PlanCacheEntries=0)
# vs the native Go builder.
benchsql:
	go run ./cmd/s2bench -exp sqlplan -out BENCH_PR6.json

# benchkernels regenerates BENCH_PR7.json: fused single-pass encoded
# execution vs the DisableFusedKernels three-pass ablation, per encoding
# and filter selectivity, plus the TPC-H warm-geomean delta.
benchkernels:
	go run ./cmd/s2bench -exp kernels -out BENCH_PR7.json

# benchtransport regenerates BENCH_PR8.json: sync-replicated commit
# latency over the in-memory channel transport vs the length-prefixed TCP
# wire codec, the same workload under seeded chaos (drop/dup/reorder/
# delay), and partition-recovery time for reconnect-with-resume.
benchtransport:
	go run ./cmd/s2bench -exp transport -out BENCH_PR8.json

# benchrestore regenerates BENCH_PR9.json: O(manifest) lazy restore vs the
# EagerHydration ablation under simulated blob latency — PITR restore time,
# workspace-create-before-first-payload-fetch, time to first analytic query
# (demand hydration) and time to fully warm (parallel readahead).
benchrestore:
	go run ./cmd/s2bench -exp restore -out BENCH_PR9.json

# benchqos regenerates BENCH_PR10.json: the well-behaved tenant's p99
# under an adversarial flood with per-tenant admission control on, vs the
# unloaded baseline and the DisableQoS ablation, plus typed-shed counts.
benchqos:
	go run ./cmd/s2bench -exp qos -out BENCH_PR10.json

# chaossmoke is the seeded chaos soak: every fault class against the
# replication and workspace links under the race detector. Seeded RNG
# keeps the fault schedule reproducible across runs.
chaossmoke:
	go test -race -run 'Chaos' -count=1 ./internal/cluster

# benchsmoke runs every benchmark harness end to end at tiny scale — the
# CI guard against harness rot. Smoke-scale JSON lands in .benchsmoke/
# (gitignored, uploaded as CI artifacts); the committed full-scale
# BENCH_*.json artifacts are never rewritten here.
benchsmoke:
	@mkdir -p .benchsmoke
	go run ./cmd/s2bench -exp veccache -smoke -out .benchsmoke/BENCH_PR2.json
	go run ./cmd/s2bench -exp groupcommit -smoke -out .benchsmoke/BENCH_PR3.json
	go run ./cmd/s2bench -exp merge -smoke -out .benchsmoke/BENCH_PR4.json
	go run ./cmd/s2bench -exp wscache -smoke -out .benchsmoke/BENCH_PR5.json
	go run ./cmd/s2bench -exp sqlplan -smoke -out .benchsmoke/BENCH_PR6.json
	go run ./cmd/s2bench -exp kernels -smoke -out .benchsmoke/BENCH_PR7.json
	go run ./cmd/s2bench -exp transport -smoke -out .benchsmoke/BENCH_PR8.json
	go run ./cmd/s2bench -exp restore -smoke -out .benchsmoke/BENCH_PR9.json
	go run ./cmd/s2bench -exp qos -smoke -out .benchsmoke/BENCH_PR10.json

# benchsmokecheck fails if any JSON experiment s2bench knows about
# (-list) is missing from the benchsmoke recipe above — adding a new
# benchmark without its smoke line breaks CI, not just bit-rots.
benchsmokecheck:
	@missing=0; for exp in $$(go run ./cmd/s2bench -list); do \
		grep -Eq -- "-exp $$exp -smoke" Makefile || { echo "benchsmoke is missing experiment: $$exp"; missing=1; }; \
	done; exit $$missing

# fuzzsmoke runs the fuzz targets for a few seconds each: FuzzParse
# must never panic, FuzzNormalize must stay idempotent, and
# FuzzDecodePage must reject hostile wire frames without panicking or
# allocating unboundedly. Long campaigns are manual; this is the CI
# regression guard.
fuzzsmoke:
	go test ./internal/sql -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	go test ./internal/sql -run '^$$' -fuzz '^FuzzNormalize$$' -fuzztime 10s
	go test ./internal/wal -run '^$$' -fuzz '^FuzzDecodePage$$' -fuzztime 10s

# benchall runs the full Go benchmark suite (paper tables + ablations).
benchall:
	go test -bench=. -benchmem
