// Package s2db is a from-scratch Go implementation of the system described
// in "Cloud-Native Transactions and Analytics in SingleStore" (SIGMOD
// 2022): a distributed HTAP database with unified (universal) table
// storage, separation of storage and compute with asynchronous blob
// staging, adaptive query execution, synchronous in-cluster replication,
// read-only workspaces and point-in-time restore.
//
// The public surface is intentionally small. Queries can be written as
// SQL text with `?` bind parameters (parsed once per shape via the shared
// plan cache) or with the fluent Go builder (DB.Table); both lower onto
// the same execution plans:
//
//	db, _ := s2db.Open(s2db.Config{Partitions: 4, PlanCacheEntries: 256})
//	db.CreateTable("events", schema)
//	db.Insert("events", rows)
//	rows, _ := db.Query(
//	    "SELECT region, count(*), sum(amount) FROM events WHERE amount > ? GROUP BY region",
//	    s2db.Int(100))
//	same, _ := db.Table("events").
//	    Where(s2db.GtName("amount", s2db.Int(100))).
//	    GroupByNames("region").
//	    Agg(s2db.CountAll(), s2db.SumName("amount")).
//	    Rows()
package s2db

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"s2db/internal/blob"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/qos"
	"s2db/internal/sql"
	"s2db/internal/types"
)

// Re-exported value and schema types.
type (
	// Value is a dynamically typed cell.
	Value = types.Value
	// Row is a tuple of values in schema order.
	Row = types.Row
	// Column describes a table column.
	Column = types.Column
	// Schema describes a table: columns plus sort, shard, secondary and
	// unique keys (§4 of the paper).
	Schema = types.Schema
	// ColType enumerates column types.
	ColType = types.ColType
	// InsertOptions tunes duplicate-key handling (§4.1.2).
	InsertOptions = core.InsertOptions
	// Where targets rows for Update and Delete.
	Where = core.Where
)

// Column type constants.
const (
	Int64T   = types.Int64
	Float64T = types.Float64
	StringT  = types.String
)

// Duplicate-key policies (§4.1.2).
const (
	DupError   = core.DupError
	DupSkip    = core.DupSkip
	DupReplace = core.DupReplace
	DupUpdate  = core.DupUpdate
)

// ErrDuplicateKey is returned by inserts violating a unique key.
var ErrDuplicateKey = core.ErrDuplicateKey

// Int builds an Int64 value.
func Int(v int64) Value { return types.NewInt(v) }

// Float builds a Float64 value.
func Float(v float64) Value { return types.NewFloat(v) }

// Str builds a String value.
func Str(v string) Value { return types.NewString(v) }

// NewSchema builds a schema with no keys configured.
func NewSchema(cols ...Column) *Schema { return types.NewSchema(cols...) }

// Config configures a database.
type Config struct {
	// Name is the database name (namespace in blob storage).
	Name string
	// Partitions is the number of hash partitions (§2).
	Partitions int
	// SyncReplicas per partition ack commits for durability (§2).
	SyncReplicas int
	// BlobStore enables separated storage (§3); nil runs shared-nothing.
	BlobStore BlobStore
	// BlobPutLatency/BlobGetLatency inject simulated object-store latency.
	BlobPutLatency, BlobGetLatency time.Duration
	// CacheBytes bounds the per-partition local data-file cache.
	CacheBytes int
	// VectorCacheBytes bounds the node-wide decoded-vector cache: an LRU
	// of fully decoded column vectors shared across queries (and across the
	// parallel scheduler's workers) so repeated scans of immutable segments
	// skip decoding entirely. The budget is partitioned per workspace (see
	// WorkspaceCacheShares): a quarter backs a shared second tier of demoted
	// vectors, the rest splits into per-workspace hot tiers. 0 uses
	// DefaultVectorCacheBytes; negative disables the cache (scans fall back
	// to private per-query decodes).
	VectorCacheBytes int
	// WorkspaceCacheShares pins explicit fractions of the vector-cache hot
	// pool to named workspaces; the reserved name "primary" pins the primary
	// cluster's share. Partitions without an explicit entry split the
	// unreserved remainder evenly, with the primary floored at half of it so
	// attaching workspaces can never starve operational scans. Validated at
	// Open: names must be non-empty, each share in (0, 1], and the shares
	// must sum to at most 1.0.
	WorkspaceCacheShares map[string]float64
	// SharedVectorCache disables per-workspace cache partitioning: one
	// process-wide LRU serves the primary and every workspace, so an
	// analytic workspace's cold sweep can evict the primary's hot set. An
	// ablation/benchmark knob; keep it off in production-shaped setups.
	SharedVectorCache bool
	// CommitToBlob forces the cloud-data-warehouse commit path (used by
	// the ablation experiments; S2DB's design keeps it off).
	CommitToBlob bool
	// ReplicationLatency simulates the intra-cluster network.
	ReplicationLatency time.Duration
	// MaxSegmentRows tunes columnstore segment sizing.
	MaxSegmentRows int
	// BackgroundMaintenance runs the flusher and merger automatically.
	BackgroundMaintenance bool
	// MergeWorkers bounds the goroutines each partition's merger uses to
	// build and persist merge output segments in parallel. 0 uses the core
	// default (4).
	MergeWorkers int
	// QueryParallelism bounds the number of concurrent per-partition scan
	// tasks a query fans out (§2: aggregators run partition fragments in
	// parallel on the leaves). 0 means GOMAXPROCS; 1 runs sequentially.
	// Query.Parallelism overrides it per query.
	QueryParallelism int
	// LogPageBytes caps a replication log page (§3: log pages are the unit
	// of replication, durability and blob staging). A page seals early once
	// its records reach this size. 0 uses the WAL default (64KiB).
	LogPageBytes int
	// GroupCommitInterval batches concurrent writers' log records into one
	// page for up to this long before the page seals, ships to the sync
	// replicas in a single latency hop and releases every waiting commit at
	// once. 0 seals a page per record (no added commit latency, no
	// batching). Commit latency with group commit enabled is bounded by
	// GroupCommitInterval + ReplicationLatency.
	GroupCommitInterval time.Duration
	// DisableFusedKernels turns off the fused encoded-execution kernels —
	// span-space filter evaluation, single-pass filter→aggregate over
	// RLE/dictionary runs with late materialization, and metadata-only
	// COUNT(*) — restoring the unfused three-pass scan pipeline. This is
	// the FusedKernels ablation knob: fused execution is on by default
	// (the zero value) and the unfused baseline exists for benchmarks
	// (`cmd/s2bench -exp kernels`) and ablation studies only.
	DisableFusedKernels bool
	// HydrationWorkers bounds the per-table worker pool that fetches and
	// decodes cold segment payloads after a lazy restore (snapshot recovery,
	// workspace attach, PITR). Restore installs metadata-only stubs in
	// O(manifest) and these workers pull the payloads behind it — demand
	// requests from blocked scans jump ahead of readahead prefetch. 0 uses
	// the core default (8).
	HydrationWorkers int
	// EagerHydration restores the pre-lazy behavior: RestoreState fetches
	// and decodes every segment payload before returning, so recovery time
	// is proportional to data size instead of manifest size. This is the
	// ablation knob for `cmd/s2bench -exp restore`; production keeps it off
	// (the zero value).
	EagerHydration bool
	// PlanCacheEntries bounds the shared SQL plan cache: lowered plans
	// keyed by normalized query template (literals stripped to binds), so
	// repeated query shapes pay lex/parse/lower once and then only
	// bind + execute. 0 disables the cache — the ablation knob: every
	// DB.Query/Exec/Explain call then compiles from scratch.
	// DefaultPlanCacheEntries (256) is a good production size.
	PlanCacheEntries int
	// Transport selects how replication crosses between master and
	// replica partitions: "" or TransportMemory keeps the in-process
	// zero-copy channel transport (the seed behavior); TransportTCP ships
	// every log page through the versioned, CRC-checked wire codec over
	// loopback TCP sockets, so sync-replica durability round-trips a real
	// socket. Any other value fails Open.
	Transport string
	// Chaos, when non-nil, wraps the transport with seeded fault
	// injection — per-frame drop/delay/reorder/duplicate plus an
	// on-demand network partition (DB.ChaosTransport controls it).
	// Replication links heal every injected fault by reconnecting and
	// resuming from the replica's applied position. A test/benchmark
	// harness knob; keep it nil in production shapes.
	Chaos *ChaosOptions
	// LinkStallTimeout bounds how long a replication link tolerates
	// shipped pages with no apply/ack progress before it tears its
	// session down and reconnects (how fast lost frames or healed
	// partitions are noticed). 0 uses cluster.DefaultLinkStallTimeout
	// (500ms).
	LinkStallTimeout time.Duration
	// TenantShares pins explicit fractions of every QoS resource budget
	// to named tenants, mirroring WorkspaceCacheShares: the reserved
	// name "primary" is the primary cluster's workload, a workspace's
	// tenant is its workspace name, and Query.AsTenant / WithTenant tag
	// arbitrary front-door tenants. Tenants without an explicit entry
	// split the unreserved remainder evenly. Validated at Open: names
	// non-empty, each share in (0, 1], sum at most 1.0.
	TenantShares map[string]float64
	// DisableQoS turns multi-tenant admission control off entirely — no
	// worker-slot, scan-memory, merge-I/O or WAL-bandwidth governance,
	// no shedding. The ablation knob for `cmd/s2bench -exp qos`; keep it
	// off (the zero value) in production shapes.
	DisableQoS bool
	// QoSWorkerSlots is the total query fan-out worker-slot pool split
	// across tenants by TenantShares weight. 0 uses
	// DefaultQoSWorkerSlots (4×GOMAXPROCS, at least 8); negative leaves
	// the resource ungoverned.
	QoSWorkerSlots int
	// QoSScanMemoryBytes is the total scan/materialization memory
	// budget (decoded vectors + materialized rows a tenant's scans may
	// hold concurrently). 0 uses DefaultQoSScanMemoryBytes; negative
	// ungoverns the resource.
	QoSScanMemoryBytes int64
	// QoSMergeIOBytes is the total background merge I/O budget (bytes
	// of merge output in flight). 0 uses DefaultQoSMergeIOBytes;
	// negative ungoverns the resource.
	QoSMergeIOBytes int64
	// QoSWALBytesPerSec is the total WAL/replication bandwidth budget,
	// rate-style: a workspace's replication stream consumes its
	// tenant's share and self-paces on the refill clock; a stream so
	// far over budget that a page's wait would exceed the governor's
	// maximum is shed with ErrOverloaded and heals through the
	// workspace resync path. 0 uses DefaultQoSWALBytesPerSec; negative
	// ungoverns the resource. Sync (HA) replica links are never paced —
	// they are the durability path.
	QoSWALBytesPerSec int64
	// QoSQueueDepth caps concurrent waiters per tenant per resource;
	// an admission request beyond the cap is shed with a typed
	// ErrOverloaded carrying a retry-after hint instead of queueing.
	// 0 uses DefaultQoSQueueDepth; negative sheds immediately on budget
	// exhaustion (no queueing at all).
	QoSQueueDepth int
}

// PrimaryTenant is the reserved tenant name accounting for the primary
// cluster's own workload (queries not tagged otherwise, merges, HA
// bookkeeping) in TenantShares and QoSStats.
const PrimaryTenant = "primary"

// QoS capacity defaults, applied when the corresponding Config field is
// zero.
const (
	DefaultQoSScanMemoryBytes = int64(1) << 30   // 1 GiB
	DefaultQoSMergeIOBytes    = int64(256) << 20 // 256 MiB
	DefaultQoSWALBytesPerSec  = int64(256) << 20 // 256 MiB/s
	DefaultQoSQueueDepth      = 64
)

// DefaultQoSWorkerSlots sizes the worker-slot pool when
// Config.QoSWorkerSlots is zero: 4×GOMAXPROCS, at least 8 — wide enough
// that a single tenant's ordinary concurrency never queues, tight
// enough that a flood cannot pile unbounded scan tasks onto the
// scheduler.
func DefaultQoSWorkerSlots() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// qosWALMaxWait bounds how long one replication page may self-pace on
// the refill clock before the stream sheds instead (healing through the
// workspace resync path).
const qosWALMaxWait = 2 * time.Second

// newGovernor resolves the QoS knobs into a governor, or nil when
// DisableQoS is set (shares are still validated so a misconfiguration
// never passes silently).
func newGovernor(cfg Config) (*qos.Governor, error) {
	if cfg.DisableQoS {
		return nil, qos.ValidateShares(cfg.TenantShares)
	}
	resolve := func(v, def int64) int64 {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0 // ungoverned
		}
		return v
	}
	depth := cfg.QoSQueueDepth
	switch {
	case depth == 0:
		depth = DefaultQoSQueueDepth
	case depth < 0:
		depth = 0
	}
	var lim [qos.NumResources]qos.Limits
	lim[qos.Workers] = qos.Limits{
		Capacity:   resolve(int64(cfg.QoSWorkerSlots), int64(DefaultQoSWorkerSlots())),
		QueueDepth: depth,
	}
	lim[qos.ScanMem] = qos.Limits{
		Capacity:   resolve(cfg.QoSScanMemoryBytes, DefaultQoSScanMemoryBytes),
		QueueDepth: depth,
	}
	lim[qos.MergeIO] = qos.Limits{
		Capacity:   resolve(cfg.QoSMergeIOBytes, DefaultQoSMergeIOBytes),
		QueueDepth: depth,
	}
	rate := resolve(cfg.QoSWALBytesPerSec, DefaultQoSWALBytesPerSec)
	lim[qos.WALBand] = qos.Limits{
		Capacity:     rate / 4,
		RefillPerSec: rate,
		QueueDepth:   depth,
		MaxWait:      qosWALMaxWait,
	}
	g, err := qos.New(qos.Config{Shares: cfg.TenantShares, Limits: lim})
	if err != nil {
		return nil, err
	}
	g.Register(PrimaryTenant)
	return g, nil
}

// Transport names accepted by Config.Transport.
const (
	// TransportMemory is the in-process channel transport (default).
	TransportMemory = "memory"
	// TransportTCP frames pages over loopback TCP sockets.
	TransportTCP = "tcp"
)

// ChaosOptions parameterizes transport fault injection (Config.Chaos).
type ChaosOptions = cluster.ChaosConfig

// ChaosTransport is the live fault injector handle for a DB opened with
// Config.Chaos (see DB.ChaosTransport).
type ChaosTransport = cluster.ChaosTransport

// BlobStore is the object-store contract (see internal/blob).
type BlobStore = blob.Store

// NewMemoryBlobStore returns an in-memory blob store for experiments.
func NewMemoryBlobStore() BlobStore { return blob.NewMemory() }

// NewDiskBlobStore returns a directory-backed blob store whose contents
// survive the process.
func NewDiskBlobStore(dir string) (BlobStore, error) { return blob.NewDisk(dir) }

// DefaultVectorCacheBytes sizes the decoded-vector cache when
// Config.VectorCacheBytes is zero.
const DefaultVectorCacheBytes = 64 << 20

// VecCacheStats snapshots one cache tier's counters (hits, misses,
// evictions, demotions into / promotions out of the shared tier, residency).
type VecCacheStats = exec.VecCacheStats

// VectorCacheStats is the per-tier breakdown of the partitioned
// decoded-vector cache: the primary's hot tier, each workspace's hot tier
// by name, the shared backing tier of demoted vectors, and the fold of all
// of them.
type VectorCacheStats struct {
	// Total folds every tier's counters together (the pre-partitioning
	// process-wide view).
	Total VecCacheStats
	// Primary is the primary cluster's hot tier.
	Primary VecCacheStats
	// Shared is the backing tier holding vectors demoted from hot tiers;
	// its Hits count promotions served without a decode.
	Shared VecCacheStats
	// Workspaces holds each attached workspace's hot tier by name.
	Workspaces map[string]VecCacheStats
}

// HitRate reports the cache-wide hit rate across all tiers.
func (s VectorCacheStats) HitRate() float64 { return s.Total.HitRate() }

// DB is a running database.
type DB struct {
	cluster *cluster.Cluster
	cfg     Config
	vec     *exec.VecCacheGroup
	// plans is the shared SQL plan cache; nil (PlanCacheEntries == 0)
	// compiles every statement from scratch.
	plans *sql.Cache
	// chaos is the fault injector when Config.Chaos is set, nil otherwise.
	chaos *ChaosTransport
	// gov is the multi-tenant QoS governor; nil under Config.DisableQoS
	// (every admission then succeeds ungoverned).
	gov *qos.Governor
}

// Multi-tenant QoS re-exports: the typed shedding contract and the
// per-tenant accounting surfaced by DB.QoSStats and Plan.QoS.
type (
	// QoSTenantStats is one tenant's per-resource token accounting.
	QoSTenantStats = qos.TenantStats
	// QoSResourceStats is one (tenant, resource) bucket's counters.
	QoSResourceStats = qos.ResourceStats
	// OverloadError is a typed shed: tenant, resource and a retry-after
	// hint that grows (and never shrinks) while the overload lasts.
	OverloadError = qos.OverloadError
)

// ErrOverloaded is the sentinel every QoS shed unwraps to; match with
// errors.Is, then errors.As to *OverloadError for the retry-after.
var ErrOverloaded = qos.ErrOverloaded

// QoSRetryAfter extracts the retry-after hint from a shed error chain
// (0 when err is not an overload).
func QoSRetryAfter(err error) time.Duration { return qos.RetryAfter(err) }

// QoSStats snapshots every tenant's token accounting across the four
// governed resources: budgets, tokens in use, cumulative tokens spent,
// admission waits and wait time, and sheds. Nil map when QoS is
// disabled.
func (db *DB) QoSStats() map[string]QoSTenantStats { return db.gov.Stats() }

// tenantCtxKey carries a WithTenant tag through a context.
type tenantCtxKey struct{}

// WithTenant tags a context with the tenant every query run under it is
// accounted to — the front-door form of Query.AsTenant, usable with
// QueryCtx/RowsCtx/CountCtx.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFromContext reports the WithTenant tag, if any.
func TenantFromContext(ctx context.Context) (string, bool) {
	t, ok := ctx.Value(tenantCtxKey{}).(string)
	return t, ok && t != ""
}

// newVecCacheGroup resolves the cache knobs: VectorCacheBytes 0 = default,
// <0 = disabled (nil group); shares are validated even when disabled so a
// misconfiguration never passes silently.
func newVecCacheGroup(cfg Config) (*exec.VecCacheGroup, error) {
	bytes := cfg.VectorCacheBytes
	if bytes == 0 {
		bytes = DefaultVectorCacheBytes
	}
	return exec.NewVecCacheGroup(bytes, cfg.WorkspaceCacheShares, cfg.SharedVectorCache)
}

// cachePartitioner adapts the exec cache group to the cluster's
// CachePartitioner port, translating a nil *VecCache handle into a nil
// interface so a disabled cache stays nil inside core.
type cachePartitioner struct{ g *exec.VecCacheGroup }

func (cp cachePartitioner) Attach(name string) (core.DecodedVectorCache, error) {
	p, err := cp.g.AttachPartition(name)
	if err != nil || p == nil {
		return nil, err
	}
	return p, nil
}

func (cp cachePartitioner) Detach(name string) { cp.g.DetachPartition(name) }

// newTransport resolves the transport knobs: the named base transport,
// optionally wrapped with chaos fault injection.
func newTransport(cfg Config) (cluster.Transport, *ChaosTransport, error) {
	var tr cluster.Transport
	switch cfg.Transport {
	case "", TransportMemory:
		tr = cluster.NewMemoryTransport()
	case TransportTCP:
		t, err := cluster.NewTCPTransport()
		if err != nil {
			return nil, nil, err
		}
		tr = t
	default:
		return nil, nil, fmt.Errorf("s2db: unknown transport %q (want %q or %q)", cfg.Transport, TransportMemory, TransportTCP)
	}
	if cfg.Chaos != nil {
		ct := cluster.NewChaosTransport(tr, *cfg.Chaos)
		return ct, ct, nil
	}
	return tr, nil, nil
}

// Open creates and starts a database.
func Open(cfg Config) (*DB, error) {
	var store blob.Store
	if cfg.BlobStore != nil {
		store = blob.NewSimulator(cfg.BlobStore, cfg.BlobPutLatency, cfg.BlobGetLatency)
	}
	mode := cluster.CommitLocal
	if cfg.CommitToBlob {
		mode = cluster.CommitBlob
	}
	vec, err := newVecCacheGroup(cfg)
	if err != nil {
		return nil, err
	}
	transport, chaos, err := newTransport(cfg)
	if err != nil {
		return nil, err
	}
	gov, err := newGovernor(cfg)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		Name:                cfg.Name,
		Partitions:          cfg.Partitions,
		SyncReplicas:        cfg.SyncReplicas,
		Blob:                store,
		CacheBytes:          cfg.CacheBytes,
		CommitMode:          mode,
		ReplicationLatency:  cfg.ReplicationLatency,
		LogPageBytes:        cfg.LogPageBytes,
		GroupCommitInterval: cfg.GroupCommitInterval,
		Transport:           transport,
		LinkStallTimeout:    cfg.LinkStallTimeout,
		Governor:            gov,
		Table: core.Config{
			MaxSegmentRows:      cfg.MaxSegmentRows,
			Background:          cfg.BackgroundMaintenance,
			MergeWorkers:        cfg.MergeWorkers,
			DisableFusedKernels: cfg.DisableFusedKernels,
			HydrationWorkers:    cfg.HydrationWorkers,
			EagerHydration:      cfg.EagerHydration,
			QoS:                 gov,
			QoSTenant:           PrimaryTenant,
		},
		CachePartitions: cachePartitioner{g: vec},
	}
	if p := vec.Primary(); p != nil {
		// Assigned only when enabled so a disabled cache stays a nil
		// interface (not a typed-nil *VecCache) inside core.
		ccfg.DecodedCache = p
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		transport.Close()
		return nil, err
	}
	return &DB{cluster: c, cfg: cfg, vec: vec, plans: sql.NewCache(cfg.PlanCacheEntries), chaos: chaos, gov: gov}, nil
}

// ChaosTransport returns the live fault injector when the database was
// opened with Config.Chaos (nil otherwise); tests and the transport
// benchmark use it to toggle network partitions and read fault counts.
func (db *DB) ChaosTransport() *ChaosTransport { return db.chaos }

// VectorCacheStats returns the decoded-vector cache counters broken down
// by tier — the primary's hot tier, each workspace's hot tier and the
// shared backing tier; all zero when the cache is disabled.
func (db *DB) VectorCacheStats() VectorCacheStats {
	gs := db.vec.Stats()
	return VectorCacheStats{
		Total:      gs.Total(),
		Primary:    gs.Primary,
		Shared:     gs.Shared,
		Workspaces: gs.Workspaces,
	}
}

// Close stops the database.
func (db *DB) Close() { db.cluster.Close() }

// Cluster exposes the underlying cluster for advanced operations
// (workspaces, failover, PITR, staging stats).
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// CreateTable registers a table on every partition.
func (db *DB) CreateTable(name string, schema *Schema) error {
	return db.cluster.CreateTable(name, schema)
}

// Insert writes rows with default options and waits for durability.
func (db *DB) Insert(table string, rows ...Row) error {
	_, err := db.cluster.Insert(table, rows, core.InsertOptions{})
	return err
}

// InsertWith writes rows under an explicit duplicate-key policy.
func (db *DB) InsertWith(table string, opts InsertOptions, rows ...Row) (core.InsertResult, error) {
	return db.cluster.Insert(table, rows, opts)
}

// BulkLoad ingests rows directly into columnstore segments.
func (db *DB) BulkLoad(table string, rows []Row) error {
	return db.cluster.BulkLoad(table, rows)
}

// Get returns the row with the given unique key values.
func (db *DB) Get(table string, keyVals ...Value) (Row, bool, error) {
	return db.cluster.GetByUnique(table, keyVals)
}

// Update rewrites matching rows via set.
func (db *DB) Update(table string, w Where, set func(Row) Row) (int, error) {
	return db.cluster.UpdateWhere(table, w, set)
}

// Delete removes matching rows.
func (db *DB) Delete(table string, w Where) (int, error) {
	return db.cluster.DeleteWhere(table, w)
}

// Flush forces buffered rows into columnstore segments on every partition.
func (db *DB) Flush(table string) error { return db.cluster.Flush(table) }

// CreateWorkspace provisions an isolated read-only workspace (§3.2).
func (db *DB) CreateWorkspace(name string) (*Workspace, error) {
	ws, err := db.cluster.CreateWorkspace(name)
	if err != nil {
		return nil, err
	}
	return &Workspace{db: db, ws: ws}, nil
}

// Workspace is a handle to a read-only workspace.
type Workspace struct {
	db *DB
	ws *cluster.Workspace
}

// WaitCaughtUp blocks until the workspace has replayed the primary's log.
func (w *Workspace) WaitCaughtUp(timeout time.Duration) error {
	return w.db.cluster.WaitCaughtUp(w.ws, timeout)
}

// Lag reports pending replication records.
func (w *Workspace) Lag() int { return w.ws.Lag() }

// Detach removes the workspace.
func (w *Workspace) Detach() error { return w.db.cluster.DetachWorkspace(w.ws.Name) }

// PointInTimeRestore opens a database restored purely from blob storage as
// of the target wall-clock time (§3.2): no backups are needed — the blob
// store's retained history is the backup. The catalog supplies the table
// schemas (DDL lives in the control plane, not in blob data). The returned
// DB serves queries on the restored state.
func PointInTimeRestore(cfg Config, catalog map[string]*Schema, target time.Time) (*DB, error) {
	if cfg.BlobStore == nil {
		return nil, fmt.Errorf("s2db: point-in-time restore requires a blob store")
	}
	vec, err := newVecCacheGroup(cfg)
	if err != nil {
		return nil, err
	}
	gov, err := newGovernor(cfg)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		Name:       cfg.Name,
		Partitions: cfg.Partitions,
		Blob:       cfg.BlobStore,
		CacheBytes: cfg.CacheBytes,
		Governor:   gov,
		Table: core.Config{
			MaxSegmentRows:      cfg.MaxSegmentRows,
			DisableFusedKernels: cfg.DisableFusedKernels,
			HydrationWorkers:    cfg.HydrationWorkers,
			EagerHydration:      cfg.EagerHydration,
			QoS:                 gov,
			QoSTenant:           PrimaryTenant,
		},
		CachePartitions: cachePartitioner{g: vec},
	}
	if p := vec.Primary(); p != nil {
		ccfg.DecodedCache = p
	}
	c, err := cluster.PointInTimeRestore(ccfg, target)
	if err != nil {
		return nil, err
	}
	if err := c.RestoreTables(catalog, target); err != nil {
		c.Close()
		return nil, err
	}
	return &DB{cluster: c, cfg: cfg, vec: vec, plans: sql.NewCache(cfg.PlanCacheEntries), gov: gov}, nil
}
