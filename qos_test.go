package s2db

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// qosTestConfig is the shared governed configuration: a deliberately tiny
// worker pool so a handful of adversary goroutines saturates it, and a
// shallow queue so saturation sheds instead of stacking waiters.
func qosTestConfig(disable bool) Config {
	return Config{
		Partitions:     2,
		MaxSegmentRows: 512,
		TenantShares:   map[string]float64{"oltp": 0.7, "analytics": 0.1},
		DisableQoS:     disable,
		QoSWorkerSlots: 4,
		QoSQueueDepth:  1,
	}
}

func loadQoSEvents(t *testing.T, db *DB, n int) {
	t.Helper()
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Str(fmt.Sprintf("k%d", i%7)), Int(int64(i % 50)), Float(float64(i) / 2)}
	}
	if err := db.BulkLoad("events", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush("events"); err != nil {
		t.Fatal(err)
	}
}

// runVictimSamples times the well-behaved tenant's hot query n times and
// returns the sorted durations.
func runVictimSamples(t *testing.T, db *DB, n, rows int) []time.Duration {
	t.Helper()
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		_, err := db.Table("events").AsTenant("oltp").
			Where(LtName("id", Int(int64(rows/8)))).
			GroupByNames("kind").
			Agg(CountAll(), SumName("amount")).
			Rows()
		if err != nil {
			t.Fatalf("victim query shed or failed: %v", err)
		}
		durs = append(durs, time.Since(start))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs
}

func p99(durs []time.Duration) time.Duration {
	return durs[int(float64(len(durs)-1)*0.99)]
}

// flood runs adversary full-table aggregates from several goroutines until
// the returned stop function is called, and reports completed queries,
// typed sheds and any malformed shed (untyped error or non-positive
// retry-after).
func qosFlood(db *DB, goroutines int) (stop func() (completed, sheds, malformed int64)) {
	var quit atomic.Bool
	var completed, sheds, malformed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !quit.Load() {
				_, err := db.Table("events").AsTenant("analytics").
					GroupByNames("kind").
					Agg(CountAll(), SumName("amount"), AvgName("score")).
					Rows()
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrOverloaded):
					sheds.Add(1)
					if QoSRetryAfter(err) <= 0 {
						malformed.Add(1)
					}
					// An adversarial tenant ignores most of the backoff
					// hint; pressure must stay on for the test to mean
					// anything.
					time.Sleep(time.Millisecond)
				default:
					malformed.Add(1)
				}
			}
		}()
	}
	return func() (int64, int64, int64) {
		quit.Store(true)
		wg.Wait()
		return completed.Load(), sheds.Load(), malformed.Load()
	}
}

// TestQoSIsolationUnderFlood is the CI qos-isolation smoke: an adversarial
// tenant floods the worker pool and the victim's tail latency must stay
// governed — bounded relative to its unloaded baseline, or at worst better
// than the same flood with QoS disabled. The flood's excess demand must
// shed with typed ErrOverloaded errors carrying a positive retry-after,
// and the victim (whose share leaves it free budget) must never shed.
func TestQoSIsolationUnderFlood(t *testing.T) {
	const rows, samples, adversaries = 6_000, 40, 6

	gov := openTestDB(t, qosTestConfig(false))
	loadQoSEvents(t, gov, rows)
	raw := openTestDB(t, qosTestConfig(true))
	loadQoSEvents(t, raw, rows)

	runVictimSamples(t, gov, 5, rows) // warm decode caches
	unloaded := p99(runVictimSamples(t, gov, samples, rows))

	stop := qosFlood(gov, adversaries)
	time.Sleep(50 * time.Millisecond) // let the flood reach steady state
	flooded := p99(runVictimSamples(t, gov, samples, rows))
	completed, sheds, malformed := stop()

	runVictimSamples(t, raw, 5, rows)
	stopRaw := qosFlood(raw, adversaries)
	time.Sleep(50 * time.Millisecond)
	unbounded := p99(runVictimSamples(t, raw, samples, rows))
	rawCompleted, rawSheds, rawMalformed := stopRaw()

	t.Logf("victim p99: unloaded %v, flood+qos %v, flood+no-qos %v (flood: %d done / %d shed; no-qos flood: %d done)",
		unloaded, flooded, unbounded, completed, sheds, rawCompleted)

	if malformed > 0 {
		t.Errorf("%d flood errors were not typed ErrOverloaded with positive retry-after", malformed)
	}
	if sheds == 0 {
		t.Errorf("adversary flood (%d goroutines over %d-slot pool) never shed", adversaries, 4)
	}
	if rawSheds != 0 || rawMalformed != 0 {
		t.Errorf("DisableQoS flood saw %d sheds / %d errors, want none", rawSheds, rawMalformed)
	}
	if ts, ok := gov.QoSStats()["oltp"]; !ok {
		t.Error("victim tenant missing from QoSStats")
	} else if ts.TotalSheds() != 0 {
		t.Errorf("victim with free budget shed %d times", ts.TotalSheds())
	}
	if ts := gov.QoSStats()["oltp"]; ts.Workers.Waits+ts.ScanMem.Waits != 0 {
		t.Errorf("victim queued in admission (%d worker waits, %d scan-mem waits) despite free budget",
			ts.Workers.Waits, ts.ScanMem.Waits)
	}
	// The wall-clock isolation bound. With admission capping the flood at
	// one concurrent scan, a machine with >= 2 cores always has one free
	// for the victim; absolute latency is still noisy on loaded CI (and
	// under -race), so accept either form of the win: the victim's tail
	// stays within a generous multiple of its unloaded baseline, or it
	// beats the ungoverned configuration outright. On a single core the
	// victim's tail is a scheduler lottery either way (the one admitted
	// scan timeshares the only CPU), so the admission-accounting asserts
	// above carry the isolation claim and the latencies are only logged.
	if runtime.GOMAXPROCS(0) >= 2 && flooded > 3*unloaded && flooded >= unbounded {
		t.Errorf("victim p99 under flood = %v, want <= 3x unloaded (%v) or < no-qos (%v)",
			flooded, unloaded, unbounded)
	}
}

// TestQoSExplainSurfacesTenantAccounting checks the observability surface:
// Explain reports the billed tenant and its governor snapshot, QoSStats
// covers registered tenants, and DisableQoS reports a nil governor
// cleanly.
func TestQoSExplainSurfacesTenantAccounting(t *testing.T) {
	db := openTestDB(t, qosTestConfig(false))
	loadQoSEvents(t, db, 600)

	q := db.Table("events").AsTenant("oltp").Where(GtName("amount", Int(10)))
	if _, err := q.Count(); err != nil {
		t.Fatal(err)
	}
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tenant != "oltp" {
		t.Fatalf("plan tenant = %q, want oltp", plan.Tenant)
	}
	if plan.QoS == nil {
		t.Fatal("plan QoS snapshot missing with governor enabled")
	}
	if plan.QoS.Workers.Budget <= 0 || plan.QoS.Workers.Spent <= 0 {
		t.Fatalf("tenant worker accounting not populated: %+v", plan.QoS.Workers)
	}
	if got := plan.String(); got == "" {
		t.Fatal("empty plan rendering")
	}

	// Untagged queries bill the primary tenant.
	dq := db.Table("events")
	dplan, err := dq.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if dplan.Tenant != PrimaryTenant {
		t.Fatalf("default tenant = %q, want %q", dplan.Tenant, PrimaryTenant)
	}
	if _, ok := db.QoSStats()[PrimaryTenant]; !ok {
		t.Fatal("primary tenant missing from QoSStats")
	}

	off := openTestDB(t, qosTestConfig(true))
	loadQoSEvents(t, off, 600)
	oplan, err := off.Table("events").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if oplan.QoS != nil {
		t.Fatalf("DisableQoS plan carries a QoS snapshot: %+v", oplan.QoS)
	}
	if off.QoSStats() != nil {
		t.Fatal("DisableQoS QoSStats non-nil")
	}
}

// TestQoSContextTenantFlowsThroughSQL checks the front-door tenancy path:
// a WithTenant context tags SQL-text queries with the tenant, visible in
// its governor accounting afterward.
func TestQoSContextTenantFlowsThroughSQL(t *testing.T) {
	db := openTestDB(t, qosTestConfig(false))
	loadQoSEvents(t, db, 600)

	ctx := WithTenant(t.Context(), "analytics")
	if _, err := db.QueryCtx(ctx, "select kind, count(*) from events group by kind"); err != nil {
		t.Fatal(err)
	}
	ts, ok := db.QoSStats()["analytics"]
	if !ok {
		t.Fatal("context tenant not registered by query")
	}
	if ts.Workers.Spent <= 0 {
		t.Fatalf("context tenant spent no worker tokens: %+v", ts.Workers)
	}
}

// TestQoSWorkspaceChurnStorm attaches and detaches workspaces while
// governed queries, inserts (WAL traffic), and background merges are in
// flight, then verifies no tokens leaked: every surviving tenant's
// lease-style buckets must drain back to full availability once the storm
// stops. Run under -race in CI.
func TestQoSWorkspaceChurnStorm(t *testing.T) {
	cfg := qosTestConfig(false)
	cfg.BackgroundMaintenance = true
	cfg.QoSWALBytesPerSec = 8 << 20 // low enough that pacing engages
	db := openTestDB(t, cfg)
	loadQoSEvents(t, db, 2_000)

	var quit atomic.Bool
	var wg sync.WaitGroup
	var queryErrs, churns atomic.Int64

	// Churner: create a workspace, query it, detach — repeatedly, with
	// unique names so registration always observes a fresh tenant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !quit.Load(); i++ {
			name := fmt.Sprintf("ws-%d", i)
			ws, err := db.CreateWorkspace(name)
			if err != nil {
				continue
			}
			_ = ws.WaitCaughtUp(2 * time.Second)
			_, _ = db.Table("events").OnWorkspace(ws).
				GroupByNames("kind").Agg(CountAll()).Rows()
			if err := ws.Detach(); err == nil {
				churns.Add(1)
			}
		}
	}()

	// Writer: inserts keep the WAL and flush/merge pipeline busy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 10_000; !quit.Load(); i++ {
			if err := db.Insert("events", Row{
				Int(int64(i)), Str(fmt.Sprintf("k%d", i%7)), Int(int64(i % 50)), Float(float64(i)),
			}); err != nil {
				queryErrs.Add(1)
			}
		}
	}()

	// Governed readers across distinct tenants.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		tenant := fmt.Sprintf("reader-%d", w)
		go func() {
			defer wg.Done()
			for !quit.Load() {
				if _, err := db.Table("events").AsTenant(tenant).
					Where(GtName("amount", Int(25))).
					GroupByNames("kind").Agg(CountAll(), SumName("amount")).
					Rows(); err != nil && !errors.Is(err, ErrOverloaded) {
					queryErrs.Add(1)
				}
			}
		}()
	}

	time.Sleep(700 * time.Millisecond)
	quit.Store(true)
	wg.Wait()

	if n := queryErrs.Load(); n > 0 {
		t.Fatalf("%d queries/inserts failed with non-shed errors during churn", n)
	}
	if churns.Load() == 0 {
		t.Fatal("storm never completed an attach/detach cycle")
	}

	// With everything quiesced, every lease-style bucket must be whole
	// again: nothing in use, availability equal to budget. Merge leases
	// are released on the background goroutine, so allow a brief drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := ""
		for tenant, ts := range db.QoSStats() {
			for _, rs := range []struct {
				name string
				s    QoSResourceStats
			}{{"workers", ts.Workers}, {"scanmem", ts.ScanMem}, {"mergeio", ts.MergeIO}} {
				if rs.s.InUse != 0 || rs.s.Avail != rs.s.Budget {
					leaked = fmt.Sprintf("%s/%s: in-use %d, avail %d of budget %d",
						tenant, rs.name, rs.s.InUse, rs.s.Avail, rs.s.Budget)
				}
			}
		}
		if leaked == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("token leak after churn storm: %s", leaked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
