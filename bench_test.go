package s2db_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6) plus ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are simulator-scale; the reproduction targets are the
// *shapes* recorded in EXPERIMENTS.md (who wins, by what factor, where
// behaviour crosses over).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"s2db"

	"s2db/internal/baseline"
	"s2db/internal/blob"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/vector"
	"s2db/internal/wal"
	"s2db/internal/workload/chbench"
	"s2db/internal/workload/tpcc"
	"s2db/internal/workload/tpch"
)

// --- shared fixtures ---------------------------------------------------------

const (
	benchSF         = 0.002 // TPC-H scale for benches (~3k orders)
	benchWarehouses = 2
)

var (
	tpchS2Once  sync.Once
	tpchS2Fix   *tpch.S2Engine
	tpchRowOnce sync.Once
	tpchRowFix  *tpch.RowEngine
	tpchCdwOnce sync.Once
	tpchCdwFix  *tpch.WarehouseEngine
)

func tpchS2(b *testing.B) *tpch.S2Engine {
	tpchS2Once.Do(func() {
		c, err := cluster.New(cluster.Config{
			Partitions: 2,
			Table:      core.Config{MaxSegmentRows: 4096},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := tpch.Generate(&tpch.S2Loader{C: c}, benchSF, 7); err != nil {
			b.Fatal(err)
		}
		tpchS2Fix = &tpch.S2Engine{C: c}
	})
	return tpchS2Fix
}

func tpchRow(b *testing.B) *tpch.RowEngine {
	tpchRowOnce.Do(func() {
		db := baseline.NewRowDB()
		if err := tpch.Generate(&tpch.RowLoader{DB: db}, benchSF, 7); err != nil {
			b.Fatal(err)
		}
		tpchRowFix = &tpch.RowEngine{DB: db}
	})
	return tpchRowFix
}

func tpchCdw(b *testing.B) *tpch.WarehouseEngine {
	tpchCdwOnce.Do(func() {
		w, err := baseline.NewWarehouse(baseline.WarehouseConfig{
			Partitions: 2,
			Table:      core.Config{MaxSegmentRows: 4096},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := tpch.Generate(&tpch.WarehouseLoader{W: w}, benchSF, 7); err != nil {
			b.Fatal(err)
		}
		tpchCdwFix = &tpch.WarehouseEngine{W: w}
	})
	return tpchCdwFix
}

func newTpccS2(b *testing.B, warehouses, partitions int) *tpcc.S2Backend {
	c, err := cluster.New(cluster.Config{
		Partitions: partitions,
		Table:      core.Config{MaxSegmentRows: 4096, FlushThreshold: 4096, Background: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	back := &tpcc.S2Backend{C: c}
	if err := tpcc.Load(back, warehouses, 1); err != nil {
		b.Fatal(err)
	}
	return back
}

// --- Table 1: TPC-C ----------------------------------------------------------

// BenchmarkTable1_TPCC measures OLTP throughput (reported as tpmC) on the
// unified storage engine and the rowstore baseline at two warehouse scales;
// the paper's shape: the two engines are comparable, and S2DB scales with
// warehouses (Table 1).
func BenchmarkTable1_TPCC(b *testing.B) {
	for _, wh := range []int{benchWarehouses, benchWarehouses * 2} {
		b.Run(fmt.Sprintf("s2db/warehouses=%d", wh), func(b *testing.B) {
			back := newTpccS2(b, wh, 2)
			defer back.C.Close()
			benchTpcc(b, back, wh)
		})
	}
	b.Run(fmt.Sprintf("cdb/warehouses=%d", benchWarehouses), func(b *testing.B) {
		back := &tpcc.RowDBBackend{DB: baseline.NewRowDB()}
		if err := tpcc.Load(back, benchWarehouses, 1); err != nil {
			b.Fatal(err)
		}
		benchTpcc(b, back, benchWarehouses)
	})
}

func benchTpcc(b *testing.B, back tpcc.Backend, warehouses int) {
	b.ResetTimer()
	res, err := tpcc.Run(back, tpcc.DriverConfig{
		Warehouses:   warehouses,
		Workers:      4,
		MaxNewOrders: int64(b.N),
		Duration:     time.Hour,
		Seed:         2,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.TpmC, "tpmC")
	b.ReportMetric(float64(res.TotalTxns)/res.Duration.Seconds(), "txn/s")
}

// --- Table 2 & Figure 4: TPC-H ------------------------------------------------

// BenchmarkTable2_TPCH runs the full 22-query suite per iteration on each
// engine and reports the geomean runtime. Paper shape: s2db ≈ cdw, cdb
// orders of magnitude slower (it "did not finish" at paper scale).
func BenchmarkTable2_TPCH(b *testing.B) {
	run := func(b *testing.B, e tpch.Engine) {
		b.ResetTimer()
		var g time.Duration
		for i := 0; i < b.N; i++ {
			results := tpch.RunAll(e)
			for _, r := range results {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Name, r.Err)
				}
			}
			g, _ = tpch.Geomean(results)
		}
		b.ReportMetric(float64(g.Microseconds())/1000, "geomean-ms")
	}
	b.Run("s2db", func(b *testing.B) { run(b, tpchS2(b)) })
	b.Run("cdw", func(b *testing.B) { run(b, tpchCdw(b)) })
	b.Run("cdb", func(b *testing.B) { run(b, tpchRow(b)) })
}

// BenchmarkFigure4_PerQuery reports per-query runtimes (Figure 4's bars)
// for the columnar engines.
func BenchmarkFigure4_PerQuery(b *testing.B) {
	engines := []struct {
		name string
		get  func(*testing.B) tpch.Engine
	}{
		{"s2db", func(b *testing.B) tpch.Engine { return tpchS2(b) }},
		{"cdw", func(b *testing.B) tpch.Engine { return tpchCdw(b) }},
	}
	for _, eng := range engines {
		for _, q := range tpch.Queries() {
			q := q
			b.Run(eng.name+"/"+q.Name, func(b *testing.B) {
				e := eng.get(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(e); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table 3: CH-BenCHmark -----------------------------------------------------

// BenchmarkTable3_CHBench reproduces the five test cases: TW-only, AW-only,
// shared workspace, isolated read-only workspace, and isolated workspace
// without blob storage. Paper shape: sharing halves both sides; isolation
// restores TW throughput; disabling blob staging changes little.
func BenchmarkTable3_CHBench(b *testing.B) {
	cases := []struct {
		name      string
		tws, aws  int
		workspace bool
		withBlob  bool
	}{
		{"case1-50tw-0aw", 4, 0, false, true},
		{"case2-0tw-2aw", 0, 2, false, true},
		{"case3-shared", 4, 2, false, true},
		{"case4-isolated-workspace", 4, 2, true, true},
		{"case5-isolated-no-blob", 4, 2, true, false},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := cluster.Config{
				Partitions: 2,
				Table:      core.Config{MaxSegmentRows: 4096, FlushThreshold: 4096, Background: true},
			}
			if tc.withBlob {
				cfg.Blob = blob.NewMemory()
				cfg.ChunkRecords = 256
				cfg.SnapshotEvery = 1 << 20
			}
			c, err := cluster.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			back := &tpcc.S2Backend{C: c}
			if err := tpcc.Load(back, 1, 11); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := chbench.Run(back, chbench.Config{
				Warehouses:   1,
				TWs:          tc.tws,
				AWs:          tc.aws,
				UseWorkspace: tc.workspace,
				Duration:     time.Duration(b.N) * 200 * time.Millisecond,
				Seed:         3,
			})
			b.StopTimer()
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			b.ReportMetric(res.TpmC, "tpmC")
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(res.MaxLagMs, "max-lag-records")
		})
	}
}

// --- Figure 5: cross-engine summary --------------------------------------------

// BenchmarkFigure5_Summary reports the combined OLTP/OLAP picture: tpmC for
// the engines that support TPC-C and analytical QPS for the engines that
// support TPC-H. The warehouse reports tpmC=0 (unsupported), the rowstore
// baseline reports near-zero analytic QPS at scale — Figure 5's shape.
func BenchmarkFigure5_Summary(b *testing.B) {
	b.Run("tpcc-s2db", func(b *testing.B) {
		back := newTpccS2(b, benchWarehouses, 2)
		defer back.C.Close()
		benchTpcc(b, back, benchWarehouses)
	})
	b.Run("tpcc-cdw-unsupported", func(b *testing.B) {
		w, err := baseline.NewWarehouse(baseline.WarehouseConfig{Partitions: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		if w.SupportsTPCC() {
			b.Fatal("warehouse must not support TPC-C")
		}
		b.ReportMetric(0, "tpmC")
	})
	b.Run("tpch-qps-s2db", func(b *testing.B) {
		e := tpchS2(b)
		b.ResetTimer()
		start := time.Now()
		n := 0
		for i := 0; i < b.N; i++ {
			tpch.RunAll(e)
			n += 22
		}
		b.ReportMetric(float64(n)/time.Since(start).Seconds(), "queries/s")
	})
	b.Run("tpch-qps-cdb", func(b *testing.B) {
		e := tpchRow(b)
		b.ResetTimer()
		start := time.Now()
		n := 0
		for i := 0; i < b.N; i++ {
			tpch.RunAll(e)
			n += 22
		}
		b.ReportMetric(float64(n)/time.Since(start).Seconds(), "queries/s")
	})
}

// --- ablations -----------------------------------------------------------------

// benchTable builds a standalone unified table with n rows for ablations.
func benchTable(b *testing.B, n int, deletedFrac float64) *core.Table {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
	)
	schema.UniqueKey = []int{0}
	schema.SecondaryKeys = [][]int{{1}}
	tbl, err := core.NewTable("t", schema, core.Config{MaxSegmentRows: 8192},
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("g%d", i%32)),
			types.NewInt(int64(i % 1000)),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		b.Fatal(err)
	}
	if deletedFrac > 0 {
		step := int(1 / deletedFrac)
		if _, err := tbl.DeleteWhere(core.Where{Col: -1, Pred: func(r types.Row) bool {
			return r[0].I%int64(step) == 0
		}}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkAblationDeleteRepresentation compares scanning with the deleted
// bit vector (our design, §4) against a simulated merge-on-read LSM where
// every row must be reconciled against a tombstone set — the per-row
// overhead the paper avoids.
func BenchmarkAblationDeleteRepresentation(b *testing.B) {
	const n = 100000
	tbl := benchTable(b, n, 0.1)
	view := tbl.Snapshot()
	// Tombstone set for the simulated merge-on-read engine.
	tombstones := make(map[int64]struct{}, n/10)
	for i := int64(0); i < n; i += 10 {
		tombstones[i] = struct{}{}
	}
	b.Run("deleted-bitvector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum int64
			scan := exec.NewScan(view, nil)
			scan.RunSegments(func(ctx *exec.SegContext, sel []int32) {
				vals := ctx.Meta.Seg.Cols[2].Ints
				for _, r := range sel {
					sum += vals.At(int(r))
				}
			})
		}
	})
	b.Run("tombstone-merge-on-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum int64
			scan := exec.NewScan(view, nil)
			scan.RunSegments(func(ctx *exec.SegContext, sel []int32) {
				seg := ctx.Meta.Seg
				ids := seg.Cols[0].Ints
				vals := seg.Cols[2].Ints
				for _, r := range sel {
					// Merge-based reconciliation: per-row key lookup
					// against the tombstone level.
					if _, dead := tombstones[ids.At(int(r))]; dead {
						continue
					}
					sum += vals.At(int(r))
				}
			})
		}
	})
}

// BenchmarkAblationIndexStructure compares the two-level index's global
// hash probe (O(log N) levels) against per-segment probing (O(N) segments)
// for point lookups (§4.1).
func BenchmarkAblationIndexStructure(b *testing.B) {
	// Many small segments make the O(segments) cost of per-segment probing
	// visible; the paper's design probes O(log N) hash tables instead.
	const n = 100000
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
		types.Column{Name: "val", Type: types.Int64},
	)
	schema.UniqueKey = []int{0}
	schema.SecondaryKeys = [][]int{{1}}
	tbl, err := core.NewTable("t", schema, core.Config{MaxSegmentRows: 512},
		core.NewCommitter(&txn.Oracle{}), wal.NewLog(), core.NewMemFiles())
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			// Group values cluster per segment: a point lookup matches one
			// segment, the selective case §4.1's design targets.
			types.NewString(fmt.Sprintf("g%d", i/512)),
			types.NewInt(int64(i % 1000)),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		b.Fatal(err)
	}
	idx := tbl.Index()
	segCount := tbl.SegmentCount()
	b.Run("two-level-global-index", func(b *testing.B) {
		probes := 0
		for i := 0; i < b.N; i++ {
			m, p := idx.LookupColumn(1, types.NewString(fmt.Sprintf("g%d", i%512)))
			probes += p
			_ = m
		}
		b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
	})
	b.Run("per-segment-probing", func(b *testing.B) {
		// Simulate the per-segment filtering approach: one probe per
		// segment regardless of matches.
		view := tbl.Snapshot()
		for i := 0; i < b.N; i++ {
			v := types.NewString(fmt.Sprintf("g%d", i%512))
			found := 0
			for _, meta := range view.Segs {
				if p, ok := idx.SegmentPostings(meta.Seg.ID, 1, v); ok {
					found += len(p)
				}
			}
		}
		b.ReportMetric(float64(segCount), "probes/op")
	})
}

// BenchmarkAblationFilterOrdering compares adaptive (1-P)/cost clause
// reordering against a pinned adversarial order (expensive, non-selective
// clause first) (§5.2).
func BenchmarkAblationFilterOrdering(b *testing.B) {
	const n = 200000
	tbl := benchTable(b, n, 0)
	view := tbl.Snapshot()
	mk := func(disable bool) *exec.And {
		// Clause A: passes ~100% and is string-typed (expensive).
		// Clause B: passes 0.1% and is int-typed (cheap).
		a := exec.NewLeaf(1, vector.Ge, types.NewString("g")) // all match
		bb := exec.NewLeaf(2, vector.Eq, types.NewInt(7))     // 0.1%
		and := exec.NewAnd(a, bb)
		and.DisableReorder = disable
		and.DisableGroup = true
		return and
	}
	b.Run("adaptive-reorder", func(b *testing.B) {
		f := mk(false)
		for i := 0; i < b.N; i++ {
			exec.NewScan(view, f).Count()
		}
	})
	b.Run("static-adversarial-order", func(b *testing.B) {
		f := mk(true)
		for i := 0; i < b.N; i++ {
			exec.NewScan(view, f).Count()
		}
	})
}

// BenchmarkAblationEncodedExecution compares encoded (on-compressed-data)
// filters against decode-then-filter on a dictionary column (§5.2).
func BenchmarkAblationEncodedExecution(b *testing.B) {
	const n = 200000
	tbl := benchTable(b, n, 0)
	view := tbl.Snapshot()
	b.Run("encoded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := exec.NewLeaf(1, vector.Gt, types.NewString("g3")).ForceEncoded()
			s := exec.NewScan(view, f)
			s.DisableIndexSkipping = true
			s.Count()
		}
	})
	b.Run("regular", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := exec.NewLeaf(1, vector.Gt, types.NewString("g3")).ForceRegular()
			s := exec.NewScan(view, f)
			s.DisableIndexSkipping = true
			s.Count()
		}
	})
}

// BenchmarkAblationCommitPath compares S2DB's local-commit design against
// the commit-to-blob design of cloud warehouses under a 2ms blob write
// latency (§3.1's headline trade-off).
func BenchmarkAblationCommitPath(b *testing.B) {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Int64},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	for _, mode := range []struct {
		name string
		mode cluster.CommitMode
	}{
		{"commit-local", cluster.CommitLocal},
		{"commit-to-blob", cluster.CommitBlob},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := blob.NewSimulator(blob.NewMemory(), 2*time.Millisecond, 0)
			c, err := cluster.New(cluster.Config{
				Partitions: 1, Blob: store, CommitMode: mode.mode,
				// Chunks batch many records per object: commit-to-blob still
				// pays the object-store latency per commit wait, while the
				// final drain stays proportional to chunks, not records.
				ChunkRecords: 2048,
				Table:        core.Config{MaxSegmentRows: 1 << 20},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.CreateTable("t", schema); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Insert("t", []types.Row{{types.NewInt(int64(i)), types.NewInt(1)}}, core.InsertOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			// Stop before the deferred Close: the final stager drain
			// uploads the backlog and must not count against commits.
			b.StopTimer()
		})
	}
}

// BenchmarkAblationJoinIndexFilter compares the join index filter against
// the hash-join fallback for a small build side (§5.1).
func BenchmarkAblationJoinIndexFilter(b *testing.B) {
	const n = 200000
	tbl := benchTable(b, n, 0)
	view := tbl.Snapshot()
	build := []types.Row{
		{types.NewString("g3")},
		{types.NewString("g17")},
	}
	for _, mode := range []struct {
		name string
		m    exec.JoinMode
	}{
		{"join-index-filter", exec.JoinForceIndex},
		{"hash-join", exec.JoinForceHash},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cnt := 0
				exec.EquiJoin(build, []int{0}, view, []int{1}, nil, mode.m, nil,
					func(_, _ types.Row) bool { cnt++; return true })
			}
		})
	}
}

// BenchmarkUnifiedPointReadVsScan shows the unified table serving OLTP
// seeks on columnstore data: indexed point lookup vs full scan.
func BenchmarkUnifiedPointReadVsScan(b *testing.B) {
	const n = 200000
	tbl := benchTable(b, n, 0)
	b.Run("indexed-get-by-unique", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(int64(i % n))})
			if err != nil || !ok {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("full-scan-lookup", func(b *testing.B) {
		view := tbl.Snapshot()
		for i := 0; i < b.N; i++ {
			target := int64(i % n)
			s := exec.NewScan(view, exec.NewLeaf(0, vector.Eq, types.NewInt(target)).ForceRegular())
			s.DisableIndexSkipping = true
			s.Count()
		}
	})
}

// BenchmarkParallelFanout measures the partition fan-out scheduler: a
// grouped aggregate over the public query API as Partitions grows, with
// the worker pool disabled (seq, Parallelism 1) and enabled (par, one
// worker per partition). The reproduction target is throughput scaling
// with the partition count (§2: aggregators run query fragments on all
// leaf partitions in parallel).
func BenchmarkParallelFanout(b *testing.B) {
	const rowsPerPart = 100000
	for _, parts := range []int{1, 2, 4, 8} {
		db, err := s2db.Open(s2db.Config{Partitions: parts})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		schema := s2db.NewSchema(
			types.Column{Name: "id", Type: types.Int64},
			types.Column{Name: "kind", Type: types.String},
			types.Column{Name: "amount", Type: types.Int64},
		)
		schema.ShardKey = []int{0}
		if err := db.CreateTable("t", schema); err != nil {
			b.Fatal(err)
		}
		n := parts * rowsPerPart
		batch := make([]s2db.Row, 0, 10000)
		for i := 0; i < n; i++ {
			batch = append(batch, s2db.Row{
				s2db.Int(int64(i)),
				s2db.Str(fmt.Sprintf("k%d", i%16)),
				s2db.Int(int64(i % 1000)),
			})
			if len(batch) == cap(batch) || i == n-1 {
				if err := db.BulkLoad("t", batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		run := func(b *testing.B, parallelism int) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := db.Table("t").
					Where(s2db.GtName("amount", s2db.Int(100))).
					GroupByNames("kind").
					Agg(s2db.CountAll(), s2db.SumName("amount")).
					Parallelism(parallelism).
					Rows()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 16 {
					b.Fatalf("groups = %d", len(rows))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		}
		b.Run(fmt.Sprintf("parts=%d/seq", parts), func(b *testing.B) { run(b, 1) })
		b.Run(fmt.Sprintf("parts=%d/par", parts), func(b *testing.B) { run(b, parts) })
	}
}

// BenchmarkParallelFanoutSimIO isolates what the fan-out scheduler buys in
// the separated-storage deployment (§3): each segment read is throttled by
// a simulated object-store latency (exec.Throttle, the scan-side analogue
// of the blob simulator), so wall-clock time is dominated by stalls that
// concurrent partition scans overlap. Unlike the CPU-bound variant above,
// the speedup here does not depend on GOMAXPROCS.
func BenchmarkParallelFanoutSimIO(b *testing.B) {
	const (
		parts        = 8
		rowsPerPart  = 20000
		segRows      = 5000
		leafLatency  = time.Millisecond
		expectGroups = 16
	)
	db, err := s2db.Open(s2db.Config{Partitions: parts, MaxSegmentRows: segRows})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	schema := s2db.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "kind", Type: types.String},
		types.Column{Name: "amount", Type: types.Int64},
	)
	schema.ShardKey = []int{0}
	if err := db.CreateTable("t", schema); err != nil {
		b.Fatal(err)
	}
	n := parts * rowsPerPart
	batch := make([]s2db.Row, 0, segRows)
	for i := 0; i < n; i++ {
		batch = append(batch, s2db.Row{
			s2db.Int(int64(i)),
			s2db.Str(fmt.Sprintf("k%d", i%expectGroups)),
			s2db.Int(int64(i % 1000)),
		})
		if len(batch) == cap(batch) || i == n-1 {
			if err := db.BulkLoad("t", batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	filter := func() s2db.Filter {
		return exec.NewThrottle(s2db.GtName("amount", s2db.Int(100)), leafLatency)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := db.Table("t").
					Where(filter()).
					GroupByNames("kind").
					Agg(s2db.CountAll(), s2db.SumName("amount")).
					Parallelism(par).
					Rows()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != expectGroups {
					b.Fatalf("groups = %d", len(rows))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkVecCacheScan measures the decoded-vector cache (PR 2) from the
// public API: "cold" disables the cache so every run privately decodes its
// column vectors; "warm" uses the default shared cache, primed by one
// unmeasured run, so measured runs perform zero DecodeAll calls.
func BenchmarkVecCacheScan(b *testing.B) {
	for _, mode := range []struct {
		name       string
		cacheBytes int
	}{
		{"cold", -1},
		{"warm", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := s2db.Open(s2db.Config{
				Partitions:       4,
				VectorCacheBytes: mode.cacheBytes,
				MaxSegmentRows:   4096,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			schema := s2db.NewSchema(
				types.Column{Name: "id", Type: types.Int64},
				types.Column{Name: "kind", Type: types.String},
				types.Column{Name: "amount", Type: types.Int64},
			)
			if err := db.CreateTable("t", schema); err != nil {
				b.Fatal(err)
			}
			rows := make([]s2db.Row, 0, 40000)
			for i := 0; i < cap(rows); i++ {
				rows = append(rows, s2db.Row{
					s2db.Int(int64(i)),
					s2db.Str(fmt.Sprintf("k%d", i%7)),
					s2db.Int(int64(i % 1000)),
				})
			}
			if err := db.BulkLoad("t", rows); err != nil {
				b.Fatal(err)
			}
			q := db.Table("t").
				Where(s2db.GtName("amount", s2db.Int(100))).
				GroupByNames("kind").
				Agg(s2db.CountAll(), s2db.SumName("amount"))
			if mode.cacheBytes == 0 {
				if _, err := q.Rows(); err != nil { // prime the cache
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Rows(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := q.Stats()
			if mode.cacheBytes == 0 && st.VecDecodes != 0 {
				b.Fatalf("warm run decoded %d vectors, want 0", st.VecDecodes)
			}
			b.ReportMetric(db.VectorCacheStats().HitRate(), "hit-rate")
		})
	}
}
