package s2db

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"s2db/internal/exec"
)

// openParallelDB builds an 8-partition database with mixed buffer/segment
// data, the fixture for the fan-out tests.
func openParallelDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := openTestDB(t, Config{Partitions: 8})
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, rows)
	return db
}

func sameRows(t *testing.T, got, want []Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestParallelGroupByMergeMatchesSequential(t *testing.T) {
	db := openParallelDB(t, 2000)
	build := func() *Query {
		return db.Table("events").
			Where(GtName("amount", Int(5))).
			GroupByNames("kind").
			Agg(CountAll(), SumName("amount"), MinName("id"), MaxName("id"), AvgName("score"))
	}
	want, err := build().Parallelism(1).Rows()
	if err != nil {
		t.Fatal(err)
	}
	got, err := build().Parallelism(8).Rows()
	if err != nil {
		t.Fatal(err)
	}
	// The merge is in deterministic partition order, so sequential and
	// parallel results must match exactly, not just as sets.
	sameRows(t, got, want, "group-by fan-out")
	if len(got) != 4 {
		t.Fatalf("groups = %d, want 4", len(got))
	}
}

func TestParallelOrderByLimitDeterministic(t *testing.T) {
	db := openParallelDB(t, 1500)
	run := func() []Row {
		rows, err := db.Table("events").
			GroupByNames("kind").
			Agg(CountAll(), SumName("amount")).
			OrderBy(Desc("kind")).
			Limit(3).
			Rows()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	want := run()
	if len(want) != 3 {
		t.Fatalf("limit ignored: %d rows", len(want))
	}
	if want[0][0].S != "k3" {
		t.Fatalf("order ignored: first group %v", want[0][0])
	}
	for i := 0; i < 20; i++ {
		sameRows(t, run(), want, fmt.Sprintf("run %d", i))
	}
}

func TestParallelPlainRowsMatchSequential(t *testing.T) {
	db := openParallelDB(t, 1200)
	want, err := db.Table("events").Where(LtName("amount", Int(20))).Parallelism(1).Rows()
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Table("events").Where(LtName("amount", Int(20))).Rows()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want, "plain rows")
}

func TestEarlyLimitMatchesSequential(t *testing.T) {
	db := openParallelDB(t, 1200)
	for _, limit := range []int{0, 1, 9, 5000} {
		want, err := db.Table("events").Parallelism(1).Limit(limit).Rows()
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Table("events").Limit(limit).Rows()
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, want, fmt.Sprintf("limit %d", limit))
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db := openParallelDB(t, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Table("events").RowsCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RowsCtx on cancelled ctx: err = %v", err)
	}
	if _, err := db.Table("events").CountCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountCtx on cancelled ctx: err = %v", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := db.Table("events").GroupBy(1).Agg(CountAll()).RowsCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RowsCtx past deadline: err = %v", err)
	}
}

func TestNamedColumnErrors(t *testing.T) {
	db := openParallelDB(t, 100)
	_, err := db.Table("events").Where(EqName("missing", Int(1))).Rows()
	if err == nil || !strings.Contains(err.Error(), `unknown column "missing"`) {
		t.Fatalf("filter error = %v", err)
	}
	if !strings.Contains(err.Error(), "id, kind, amount, score") {
		t.Fatalf("error does not list available columns: %v", err)
	}
	if _, err := db.Table("events").GroupByNames("nope").Agg(CountAll()).Rows(); err == nil {
		t.Fatal("unknown group-by column accepted")
	}
	if _, err := db.Table("events").Agg(SumName("nope")).Rows(); err == nil {
		t.Fatal("unknown aggregate column accepted")
	}
	if _, err := db.Table("events").OrderBy(Asc("nope")).Rows(); err == nil {
		t.Fatal("unknown order-by column accepted")
	}
	if _, err := db.Table("events").GroupByNames("kind").Agg(CountAll()).OrderBy(Asc("amount")).Rows(); err == nil {
		t.Fatal("order-by on a non-group column of an aggregate query accepted")
	}
	if _, err := db.Table("events").GroupBy(99).Agg(CountAll()).Rows(); err == nil {
		t.Fatal("out-of-range group ordinal accepted")
	}
}

func TestStatsResetPerRunAndRaceSafe(t *testing.T) {
	db := openParallelDB(t, 1000)
	q := db.Table("events").Where(EqName("kind", Str("k1")))
	if _, err := q.Rows(); err != nil {
		t.Fatal(err)
	}
	first := q.Stats()
	if first.SegmentsScanned == 0 && first.RowsOutput == 0 {
		t.Fatal("stats empty after run")
	}
	if _, err := q.Rows(); err != nil {
		t.Fatal(err)
	}
	second := q.Stats()
	// The second run hits the shared decoded-vector cache where the first
	// missed; that asymmetry is expected (and asserted), not accumulation.
	if second.VecCacheHits != first.VecCacheMisses {
		t.Fatalf("warm run should hit what the cold run missed: first %+v, second %+v", first, second)
	}
	if second.VecDecodes != 0 {
		t.Fatalf("warm run decoded %d columns, want 0", second.VecDecodes)
	}
	// The bug this guards against: counters silently accumulating across
	// repeated runs of the same Query. Normalize the cache-dependent fields
	// before comparing.
	norm := func(s exec.ScanStats) exec.ScanStats {
		s.VecCacheHits, s.VecCacheMisses, s.VecCacheWaits = 0, 0, 0
		s.VecCacheEvictions, s.VecDecodes = 0, 0
		return s
	}
	if norm(second) != norm(first) {
		t.Fatalf("stats accumulated across runs: first %+v, second %+v", first, second)
	}
}

func TestExplainReportsPlan(t *testing.T) {
	db := openParallelDB(t, 600)
	q := db.Table("events").
		Where(And(EqName("kind", Str("k2")), Gt(2, Int(10)))).
		GroupByNames("kind").
		Agg(CountAll(), SumName("amount")).
		OrderBy(Asc("kind")).
		Limit(5)
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Table != "events" || plan.Partitions != 8 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Parallelism < 1 {
		t.Fatalf("parallelism = %d", plan.Parallelism)
	}
	if !strings.Contains(plan.Filter, `kind = k2`) || !strings.Contains(plan.Filter, "amount > 10") {
		t.Fatalf("filter rendering = %q", plan.Filter)
	}
	if len(plan.GroupBy) != 1 || plan.GroupBy[0] != "kind" {
		t.Fatalf("group-by = %v", plan.GroupBy)
	}
	if len(plan.Aggregates) != 2 || plan.Aggregates[0] != "count(*)" || plan.Aggregates[1] != "sum(amount)" {
		t.Fatalf("aggregates = %v", plan.Aggregates)
	}
	if len(plan.OrderBy) != 1 || plan.OrderBy[0] != "kind" {
		t.Fatalf("order-by = %v", plan.OrderBy)
	}
	if plan.EarlyLimit {
		t.Fatal("early limit claimed for an ordered aggregate query")
	}
	if plan.Strategies.SegmentsScanned != 0 {
		t.Fatal("strategies non-zero before any run")
	}
	if _, err := q.Rows(); err != nil {
		t.Fatal(err)
	}
	plan, err = q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategies.SegmentsScanned+plan.Strategies.SegmentsSkipped == 0 {
		t.Fatal("strategies still zero after a run")
	}
	if !strings.Contains(plan.String(), "scan events across 8 partition(s)") {
		t.Fatalf("plan string = %q", plan.String())
	}

	// Early termination is planned for plain limited scans.
	plain, err := db.Table("events").Limit(3).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !plain.EarlyLimit {
		t.Fatal("early limit not planned for plain Limit query")
	}
	if _, err := db.Table("missing").Explain(); err == nil {
		t.Fatal("Explain on a missing table succeeded")
	}
}

func TestWorkspaceQueriesFanOut(t *testing.T) {
	db := openTestDB(t, Config{Partitions: 4, BlobStore: NewMemoryBlobStore()})
	if err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	loadEvents(t, db, 600)
	ws, err := db.CreateWorkspace("analytics")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	want, err := db.Table("events").GroupByNames("kind").Agg(CountAll(), SumName("amount")).OrderBy(Asc("kind")).Rows()
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Table("events").OnWorkspace(ws).GroupByNames("kind").Agg(CountAll(), SumName("amount")).OrderBy(Asc("kind")).Rows()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want, "workspace fan-out")
	plan, err := db.Table("events").OnWorkspace(ws).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workspace != "analytics" || plan.Partitions != 4 {
		t.Fatalf("workspace plan = %+v", plan)
	}
}

func TestConcurrentQueriesOnSharedDB(t *testing.T) {
	db := openParallelDB(t, 1000)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 10; i++ {
				if _, err := db.Table("events").GroupByNames("kind").Agg(CountAll(), AvgName("score")).Rows(); err != nil {
					done <- err
					return
				}
				if _, err := db.Table("events").Where(GtName("amount", Int(25))).Count(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
