module s2db

go 1.22
