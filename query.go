package s2db

import (
	"context"
	"fmt"
	"sync"

	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// Filter is a predicate tree over table columns, evaluated adaptively per
// segment (§5.2).
type Filter = exec.Node

// colRef constrains the two ways a filter can reference a column: by
// schema ordinal, or by name resolved against the schema when the query
// executes. The name-based forms (EqName, InName, ...) are the preferred
// surface — they are what SQL text lowers onto — and the ordinal variants
// route through the same helpers for compatibility.
type colRef interface{ ~int | ~string }

// cmpFilter builds a comparison clause from either column reference form.
func cmpFilter[C colRef](col C, op vector.CmpOp, v Value) Filter {
	switch c := any(col).(type) {
	case int:
		return exec.NewLeaf(c, op, v)
	default:
		return exec.NewNamedLeaf(any(col).(string), op, v)
	}
}

// inFilter builds an IN-list clause from either column reference form.
func inFilter[C colRef](col C, vals []Value) Filter {
	switch c := any(col).(type) {
	case int:
		return exec.NewIn(c, vals)
	default:
		return exec.NewNamedIn(any(col).(string), vals)
	}
}

// Comparison filter constructors. Column ordinals follow the table schema;
// the *Name variants reference columns by name and resolve against the
// schema when the query executes.

// Eq matches col == v.
func Eq(col int, v Value) Filter { return cmpFilter(col, vector.Eq, v) }

// Ne matches col != v.
func Ne(col int, v Value) Filter { return cmpFilter(col, vector.Ne, v) }

// Lt matches col < v.
func Lt(col int, v Value) Filter { return cmpFilter(col, vector.Lt, v) }

// Le matches col <= v.
func Le(col int, v Value) Filter { return cmpFilter(col, vector.Le, v) }

// Gt matches col > v.
func Gt(col int, v Value) Filter { return cmpFilter(col, vector.Gt, v) }

// Ge matches col >= v.
func Ge(col int, v Value) Filter { return cmpFilter(col, vector.Ge, v) }

// In matches col ∈ vals.
func In(col int, vals ...Value) Filter { return inFilter(col, vals) }

// EqName matches the named column == v.
func EqName(col string, v Value) Filter { return cmpFilter(col, vector.Eq, v) }

// NeName matches the named column != v.
func NeName(col string, v Value) Filter { return cmpFilter(col, vector.Ne, v) }

// LtName matches the named column < v.
func LtName(col string, v Value) Filter { return cmpFilter(col, vector.Lt, v) }

// LeName matches the named column <= v.
func LeName(col string, v Value) Filter { return cmpFilter(col, vector.Le, v) }

// GtName matches the named column > v.
func GtName(col string, v Value) Filter { return cmpFilter(col, vector.Gt, v) }

// GeName matches the named column >= v.
func GeName(col string, v Value) Filter { return cmpFilter(col, vector.Ge, v) }

// InName matches the named column ∈ vals.
func InName(col string, vals ...Value) Filter { return inFilter(col, vals) }

// And conjoins filters; clause order is re-optimized at run time (§5.2).
func And(fs ...Filter) Filter { return exec.NewAnd(fs...) }

// Or disjoins filters.
func Or(fs ...Filter) Filter { return exec.NewOr(fs...) }

// Agg describes one aggregate output column.
type Agg = exec.AggSpec

// CountAll counts matching rows.
func CountAll() Agg { return Agg{Func: exec.Count, Col: -1} }

// SumCol sums a column.
func SumCol(col int) Agg { return Agg{Func: exec.Sum, Col: col} }

// MinCol takes a column minimum.
func MinCol(col int) Agg { return Agg{Func: exec.Min, Col: col} }

// MaxCol takes a column maximum.
func MaxCol(col int) Agg { return Agg{Func: exec.Max, Col: col} }

// AvgCol averages a column.
func AvgCol(col int) Agg { return Agg{Func: exec.Avg, Col: col} }

// SumName sums the named column.
func SumName(col string) Agg { return Agg{Func: exec.Sum, ColName: col} }

// MinName takes the named column's minimum.
func MinName(col string) Agg { return Agg{Func: exec.Min, ColName: col} }

// MaxName takes the named column's maximum.
func MaxName(col string) Agg { return Agg{Func: exec.Max, ColName: col} }

// AvgName averages the named column.
func AvgName(col string) Agg { return Agg{Func: exec.Avg, ColName: col} }

// SumExpr sums a computed expression per row.
func SumExpr(f func(Row) Value) Agg { return Agg{Func: exec.Sum, Expr: f} }

// OrderBy describes result ordering.
type OrderBy = exec.SortKey

// Asc orders ascending by the named column.
func Asc(col string) OrderBy { return OrderBy{Name: col} }

// Desc orders descending by the named column.
func Desc(col string) OrderBy { return OrderBy{Name: col, Desc: true} }

// groupKey is one GROUP BY column, by ordinal or (when name is non-empty)
// by name resolved at execution.
type groupKey struct {
	ord  int
	name string
}

// Query is a fluent analytic query over one table, started with DB.Table.
// (SQL text given to DB.Query lowers onto the same structure.) Execution
// fans one scan task per leaf partition onto a bounded worker pool and
// merges partial results in deterministic partition order — the way the
// aggregator nodes of §2 coordinate queries. Rows/Count run under
// context.Background(); RowsCtx/CountCtx accept a context whose
// cancellation aborts in-flight partition scans.
type Query struct {
	db          *DB
	table       string
	filter      Filter
	groups      []groupKey
	aggs        []Agg
	order       []OrderBy
	limit       int
	workspace   *cluster.Workspace
	parallelism int
	tenant      string

	mu    sync.Mutex
	stats exec.ScanStats
}

// Table starts a fluent builder query against a table. (DB.Query is the
// SQL-text entry point; both lower onto the same execution plans.)
func (db *DB) Table(table string) *Query {
	return &Query{db: db, table: table, limit: -1}
}

// OnWorkspace routes the query to a read-only workspace's compute (§3.2).
func (q *Query) OnWorkspace(w *Workspace) *Query {
	q.workspace = w.ws
	return q
}

// Where sets the filter tree.
func (q *Query) Where(f Filter) *Query { q.filter = f; return q }

// GroupBy appends grouping columns by ordinal.
func (q *Query) GroupBy(cols ...int) *Query {
	for _, c := range cols {
		q.groups = append(q.groups, groupKey{ord: c})
	}
	return q
}

// GroupByNames appends grouping columns by name (resolved at execution).
func (q *Query) GroupByNames(cols ...string) *Query {
	for _, c := range cols {
		q.groups = append(q.groups, groupKey{ord: -1, name: c})
	}
	return q
}

// Agg sets the aggregate outputs.
func (q *Query) Agg(aggs ...Agg) *Query { q.aggs = aggs; return q }

// OrderBy sets result ordering (applied after aggregation).
func (q *Query) OrderBy(keys ...OrderBy) *Query { q.order = keys; return q }

// Limit caps the result size.
func (q *Query) Limit(n int) *Query { q.limit = n; return q }

// Parallelism overrides the fan-out width for this query: n concurrent
// partition scans (1 = sequential, 0 = the database default).
func (q *Query) Parallelism(n int) *Query { q.parallelism = n; return q }

// AsTenant tags the query with the tenant its resource use is accounted
// to (admission against that tenant's TenantShares budgets). Untagged
// queries run as the workspace they target, or as PrimaryTenant.
// WithTenant is the context-carried equivalent for the SQL front door.
func (q *Query) AsTenant(tenant string) *Query { q.tenant = tenant; return q }

// effectiveTenant resolves the tenant a run is accounted to: the
// explicit AsTenant tag, else the context's WithTenant tag, else the
// targeted workspace's name, else the primary cluster's own workload.
func (q *Query) effectiveTenant(ctx context.Context) string {
	if q.tenant != "" {
		return q.tenant
	}
	if t, ok := TenantFromContext(ctx); ok {
		return t
	}
	if q.workspace != nil {
		return q.workspace.Name
	}
	return PrimaryTenant
}

// admission bundles the governor and resolved tenant for the exec
// fan-out; the zero governor (DisableQoS) admits everything.
func (q *Query) admission(ctx context.Context) exec.Admission {
	return exec.Admission{Gov: q.db.gov, Tenant: q.effectiveTenant(ctx)}
}

// targets returns the leaf execution sites: one per partition of the
// primary cluster, or of the workspace when routed there.
func (q *Query) targets() ([]cluster.LeafTarget, error) {
	if q.workspace != nil {
		return q.workspace.QueryTargets(q.table)
	}
	return q.db.cluster.QueryTargets(q.table)
}

// resolvedQuery is the execution-ready form: names resolved to ordinals,
// targets snapshotted, parallelism decided.
type resolvedQuery struct {
	targets     []cluster.LeafTarget
	views       []*core.View
	schema      *types.Schema
	filter      exec.Node
	groupCols   []int
	aggs        []exec.AggSpec
	order       []exec.SortKey
	parallelism int
	earlyLimit  int
}

// resolve snapshots the partition views and resolves every name-based
// reference (filters, aggregates, group and order columns) against the
// table schema, returning a clear error for unknown columns.
func (q *Query) resolve() (*resolvedQuery, error) {
	targets, err := q.targets()
	if err != nil {
		return nil, err
	}
	schema, err := q.db.cluster.Schema(q.table)
	if err != nil {
		return nil, err
	}
	r := &resolvedQuery{
		targets:     targets,
		views:       make([]*core.View, len(targets)),
		schema:      schema,
		parallelism: q.effectiveParallelism(),
		earlyLimit:  -1,
	}
	for i, t := range targets {
		r.views[i] = t.View
	}
	if r.filter, err = exec.ResolveNames(q.filter, schema); err != nil {
		return nil, err
	}
	r.groupCols = make([]int, len(q.groups))
	for i, g := range q.groups {
		if g.name != "" {
			col := schema.ColIndex(g.name)
			if col < 0 {
				return nil, exec.UnknownColumnError(g.name, schema)
			}
			r.groupCols[i] = col
			continue
		}
		if g.ord < 0 || g.ord >= len(schema.Columns) {
			return nil, fmt.Errorf("s2db: group-by ordinal %d out of range [0,%d)", g.ord, len(schema.Columns))
		}
		r.groupCols[i] = g.ord
	}
	if r.aggs, err = exec.ResolveAggSpecs(q.aggs, schema); err != nil {
		return nil, err
	}
	if r.order, err = q.resolveOrder(schema, r.groupCols); err != nil {
		return nil, err
	}
	// Early termination applies only when no ordering or grouping can pull
	// rows from later partitions into the first Limit results.
	if q.limit >= 0 && len(r.order) == 0 && len(r.aggs) == 0 && len(r.groupCols) == 0 {
		r.earlyLimit = q.limit
	}
	return r, nil
}

// resolveOrder maps name-based sort keys to result-row ordinals: schema
// ordinals for plain row queries, group-by output positions for aggregate
// queries.
func (q *Query) resolveOrder(schema *types.Schema, groupCols []int) ([]exec.SortKey, error) {
	out := make([]exec.SortKey, len(q.order))
	for i, k := range q.order {
		if k.Name == "" {
			out[i] = k
			continue
		}
		col := schema.ColIndex(k.Name)
		if col < 0 {
			return nil, exec.UnknownColumnError(k.Name, schema)
		}
		if len(q.aggs) == 0 {
			out[i] = exec.SortKey{Col: col, Desc: k.Desc}
			continue
		}
		pos := -1
		for gi, gc := range groupCols {
			if gc == col {
				pos = gi
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("s2db: ORDER BY column %q is not a group-by column of the aggregate query", k.Name)
		}
		out[i] = exec.SortKey{Col: pos, Desc: k.Desc}
	}
	return out, nil
}

// effectiveParallelism picks the fan-out width: the per-query override,
// else Config.QueryParallelism, else GOMAXPROCS.
func (q *Query) effectiveParallelism() int {
	if q.parallelism > 0 {
		return q.parallelism
	}
	return exec.DefaultParallelism(q.db.cfg.QueryParallelism)
}

// RowsCtx executes the query under ctx. Without aggregates it returns
// matching rows; with aggregates it returns one row per group (group
// values first, then aggregate values). Partition scans run concurrently;
// cancelling ctx aborts them and returns the context's error.
func (q *Query) RowsCtx(ctx context.Context) ([]Row, error) {
	r, err := q.resolve()
	if err != nil {
		return nil, err
	}
	var stats exec.ScanStats
	var out []Row
	adm := q.admission(ctx)
	if len(r.aggs) == 0 {
		out, err = exec.CollectRowsAdmitted(ctx, r.views, r.filter, r.earlyLimit, r.parallelism, &stats, adm)
	} else {
		out, err = exec.AggregateViewsAdmitted(ctx, r.views, r.filter, r.groupCols, r.aggs, r.parallelism, &stats, adm)
	}
	if err != nil {
		return nil, err
	}
	if len(r.order) > 0 {
		exec.SortRows(out, r.order)
	}
	if q.limit >= 0 {
		out = exec.Limit(out, q.limit)
	}
	q.setStats(stats)
	return out, nil
}

// Rows executes the query under context.Background().
func (q *Query) Rows() ([]Row, error) { return q.RowsCtx(context.Background()) }

// CountCtx executes the query as a row count under ctx, fanning the count
// out across partitions.
func (q *Query) CountCtx(ctx context.Context) (int64, error) {
	r, err := q.resolve()
	if err != nil {
		return 0, err
	}
	var stats exec.ScanStats
	n, err := exec.CountViewsAdmitted(ctx, r.views, r.filter, r.parallelism, &stats, q.admission(ctx))
	if err != nil {
		return 0, err
	}
	q.setStats(stats)
	return n, nil
}

// Count executes the query as a row count under context.Background().
func (q *Query) Count() (int64, error) { return q.CountCtx(context.Background()) }

// setStats replaces the last-run counters: stats are per-run (not
// accumulated across repeated executions) and written only after the
// worker pool has joined, so reads never race with a run.
func (q *Query) setStats(s exec.ScanStats) {
	q.mu.Lock()
	q.stats = s
	q.mu.Unlock()
}

// Stats returns the adaptive-execution counters of the last completed run.
func (q *Query) Stats() exec.ScanStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}
