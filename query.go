package s2db

import (
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// Filter is a predicate tree over table columns, evaluated adaptively per
// segment (§5.2).
type Filter = exec.Node

// Comparison filter constructors. Column ordinals follow the table schema.

// Eq matches col == v.
func Eq(col int, v Value) Filter { return exec.NewLeaf(col, vector.Eq, v) }

// Ne matches col != v.
func Ne(col int, v Value) Filter { return exec.NewLeaf(col, vector.Ne, v) }

// Lt matches col < v.
func Lt(col int, v Value) Filter { return exec.NewLeaf(col, vector.Lt, v) }

// Le matches col <= v.
func Le(col int, v Value) Filter { return exec.NewLeaf(col, vector.Le, v) }

// Gt matches col > v.
func Gt(col int, v Value) Filter { return exec.NewLeaf(col, vector.Gt, v) }

// Ge matches col >= v.
func Ge(col int, v Value) Filter { return exec.NewLeaf(col, vector.Ge, v) }

// In matches col ∈ vals.
func In(col int, vals ...Value) Filter { return exec.NewIn(col, vals) }

// And conjoins filters; clause order is re-optimized at run time (§5.2).
func And(fs ...Filter) Filter { return exec.NewAnd(fs...) }

// Or disjoins filters.
func Or(fs ...Filter) Filter { return exec.NewOr(fs...) }

// Agg describes one aggregate output column.
type Agg = exec.AggSpec

// CountAll counts matching rows.
func CountAll() Agg { return Agg{Func: exec.Count, Col: -1} }

// SumCol sums a column.
func SumCol(col int) Agg { return Agg{Func: exec.Sum, Col: col} }

// MinCol takes a column minimum.
func MinCol(col int) Agg { return Agg{Func: exec.Min, Col: col} }

// MaxCol takes a column maximum.
func MaxCol(col int) Agg { return Agg{Func: exec.Max, Col: col} }

// AvgCol averages a column.
func AvgCol(col int) Agg { return Agg{Func: exec.Avg, Col: col} }

// SumExpr sums a computed expression per row.
func SumExpr(f func(Row) Value) Agg { return Agg{Func: exec.Sum, Expr: f} }

// OrderBy describes result ordering.
type OrderBy = exec.SortKey

// Query is a fluent analytic query over one table. Execution pushes down
// to each partition (or workspace partition) and merges partial results,
// the way the aggregator nodes of §2 coordinate queries.
type Query struct {
	db        *DB
	table     string
	filter    Filter
	groupCols []int
	aggs      []Agg
	order     []OrderBy
	limit     int
	workspace *cluster.Workspace
	stats     exec.ScanStats
}

// Query starts a query against a table.
func (db *DB) Query(table string) *Query {
	return &Query{db: db, table: table, limit: -1}
}

// OnWorkspace routes the query to a read-only workspace's compute (§3.2).
func (q *Query) OnWorkspace(w *Workspace) *Query {
	q.workspace = w.ws
	return q
}

// Where sets the filter tree.
func (q *Query) Where(f Filter) *Query { q.filter = f; return q }

// GroupBy sets the grouping columns.
func (q *Query) GroupBy(cols ...int) *Query { q.groupCols = cols; return q }

// Agg sets the aggregate outputs.
func (q *Query) Agg(aggs ...Agg) *Query { q.aggs = aggs; return q }

// OrderBy sets result ordering (applied after aggregation).
func (q *Query) OrderBy(keys ...OrderBy) *Query { q.order = keys; return q }

// Limit caps the result size.
func (q *Query) Limit(n int) *Query { q.limit = n; return q }

func (q *Query) views() ([]*core.View, error) {
	if q.workspace != nil {
		return q.workspace.Views(q.table)
	}
	return q.db.cluster.Views(q.table)
}

// Rows executes the query. Without aggregates it returns matching rows;
// with aggregates it returns one row per group (group values first, then
// aggregate values).
func (q *Query) Rows() ([]Row, error) {
	views, err := q.views()
	if err != nil {
		return nil, err
	}
	var out []Row
	if len(q.aggs) == 0 {
		for _, v := range views {
			scan := exec.NewScan(v, q.filter)
			scan.Run(func(r types.Row) bool {
				out = append(out, r.Clone())
				return true
			})
			q.stats = addStats(q.stats, scan.Stats)
		}
	} else {
		out, err = q.aggregate(views)
		if err != nil {
			return nil, err
		}
	}
	if len(q.order) > 0 {
		exec.SortRows(out, q.order)
	}
	if q.limit >= 0 {
		out = exec.Limit(out, q.limit)
	}
	return out, nil
}

// Count executes the query as a row count.
func (q *Query) Count() (int64, error) {
	views, err := q.views()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, v := range views {
		scan := exec.NewScan(v, q.filter)
		n += scan.Count()
		q.stats = addStats(q.stats, scan.Stats)
	}
	return n, nil
}

// Stats returns the adaptive-execution counters of the last run.
func (q *Query) Stats() exec.ScanStats { return q.stats }

// aggregate delegates to exec.AggregateViews, which merges per-partition
// partials (decomposing Avg into Sum+Count).
func (q *Query) aggregate(views []*core.View) ([]Row, error) {
	var stats exec.ScanStats
	rows := exec.AggregateViews(views, q.filter, q.groupCols, q.aggs, &stats)
	q.stats = addStats(q.stats, stats)
	return rows, nil
}

func addStats(a, b exec.ScanStats) exec.ScanStats {
	a.SegmentsScanned += b.SegmentsScanned
	a.SegmentsSkipped += b.SegmentsSkipped
	a.IndexFilters += b.IndexFilters
	a.EncodedFilters += b.EncodedFilters
	a.RegularFilters += b.RegularFilters
	a.GroupFilters += b.GroupFilters
	a.RowsScanned += b.RowsScanned
	a.RowsOutput += b.RowsOutput
	a.GlobalIndexProbes += b.GlobalIndexProbes
	a.JoinIndexFilters += b.JoinIndexFilters
	a.JoinIndexFallbacks += b.JoinIndexFallbacks
	return a
}
