// Uniqueness: streaming ingest with deduplication — the "low-latency,
// high-throughput writes (including updates) for real-time data loading
// and deduplication" workload from the paper's introduction (§1), powered
// by unique-key enforcement on columnstore data (§4.1.2).
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"s2db"
)

func main() {
	db, err := s2db.Open(s2db.Config{
		Name:                  "events",
		Partitions:            2,
		MaxSegmentRows:        1024,
		BackgroundMaintenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := s2db.NewSchema(
		s2db.Column{Name: "event_id", Type: s2db.Int64T},
		s2db.Column{Name: "source", Type: s2db.StringT},
		s2db.Column{Name: "payload_bytes", Type: s2db.Int64T},
		s2db.Column{Name: "times_seen", Type: s2db.Int64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	if err := db.CreateTable("events", schema); err != nil {
		log.Fatal(err)
	}

	// An at-least-once event feed: ~30% of deliveries are duplicates.
	rng := rand.New(rand.NewSource(42))
	feed := make([]s2db.Row, 0, 3000)
	for i := 0; i < 3000; i++ {
		id := int64(rng.Intn(2000))
		feed = append(feed, s2db.Row{
			s2db.Int(id),
			s2db.Str(fmt.Sprintf("sensor-%d", id%16)),
			s2db.Int(int64(rng.Intn(4096))),
			s2db.Int(1),
		})
	}

	// Policy 1: DupError — the default surfaces duplicates as errors.
	if err := db.Insert("events", feed[0]); err != nil {
		log.Fatal(err)
	}
	err = db.Insert("events", feed[0])
	fmt.Printf("default policy on duplicate: %v (is ErrDuplicateKey: %v)\n",
		err, errors.Is(err, s2db.ErrDuplicateKey))

	// Policy 2: SKIP DUPLICATE KEY ERRORS for idempotent ingest.
	res, err := db.InsertWith("events", s2db.InsertOptions{OnDup: s2db.DupSkip}, feed[:1500]...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skip-dup batch: inserted=%d skipped=%d\n", res.Inserted, res.Skipped)

	// Policy 3: ON DUPLICATE KEY UPDATE to count re-deliveries.
	res, err = db.InsertWith("events", s2db.InsertOptions{
		OnDup: s2db.DupUpdate,
		Update: func(old, in s2db.Row) s2db.Row {
			out := old.Clone()
			out[3] = s2db.Int(old[3].I + 1)
			return out
		},
	}, feed[1500:]...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upsert batch: inserted=%d updated=%d\n", res.Inserted, res.Updated)

	// Exactly one live row per event id, even though the feed repeated ids
	// and rows migrated from the buffer into columnstore segments.
	distinct, _ := db.Table("events").Count()
	dupes, _ := db.Table("events").Where(s2db.Gt(3, s2db.Int(1))).Count()
	fmt.Printf("distinct events stored: %d (of %d deliveries); re-delivered ids: %d\n",
		distinct, len(feed), dupes)

	rows, err := db.Table("events").
		GroupBy(1).
		Agg(s2db.CountAll(), s2db.SumCol(2)).
		OrderBy(s2db.OrderBy{Col: 1, Desc: true}).
		Limit(3).
		Rows()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top sources by event count:")
	for _, r := range rows {
		fmt.Printf("  %-10s events=%-4d payload=%dB\n", r[0].S, r[1].I, r[2].I)
	}
}
