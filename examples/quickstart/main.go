// Quickstart: create a database, define a unified-storage table, ingest
// rows, then run point reads, updates and an analytical aggregation — all
// through the SQL text front-end, one engine for both access patterns.
package main

import (
	"fmt"
	"log"

	"s2db"
)

func main() {
	db, err := s2db.Open(s2db.Config{
		Name:                  "quickstart",
		Partitions:            4,
		MaxSegmentRows:        1024,
		BackgroundMaintenance: true,
		PlanCacheEntries:      s2db.DefaultPlanCacheEntries,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A unified table: unique key for OLTP point access, sort key for
	// analytical range scans, secondary key on the category column.
	schema := s2db.NewSchema(
		s2db.Column{Name: "order_id", Type: s2db.Int64T},
		s2db.Column{Name: "category", Type: s2db.StringT},
		s2db.Column{Name: "quantity", Type: s2db.Int64T},
		s2db.Column{Name: "price", Type: s2db.Float64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	schema.SortKey = 2
	schema.SecondaryKeys = [][]int{{1}}
	if err := db.CreateTable("orders", schema); err != nil {
		log.Fatal(err)
	}

	// Bulk load historical data straight into columnstore segments (the
	// bulk ingest path bypasses SQL on purpose)...
	categories := []string{"books", "games", "tools"}
	var batch []s2db.Row
	for i := 0; i < 5000; i++ {
		batch = append(batch, s2db.Row{
			s2db.Int(int64(i)),
			s2db.Str(categories[i%3]),
			s2db.Int(int64(i%7 + 1)),
			s2db.Float(float64(i%50) + 0.99),
		})
	}
	if err := db.BulkLoad("orders", batch); err != nil {
		log.Fatal(err)
	}
	// ...and stream new orders through the transactional path. The INSERT
	// text never changes, so after the first call every execution reuses
	// the cached plan — only bind validation and the write itself run.
	for i := 5000; i < 5100; i++ {
		if _, err := db.Exec("INSERT INTO orders VALUES (?, ?, ?, ?)",
			s2db.Int(int64(i)), s2db.Str("streaming"), s2db.Int(1), s2db.Float(9.99),
		); err != nil {
			log.Fatal(err)
		}
	}

	// OLTP: indexed point read by unique key.
	rows, err := db.Query("SELECT category, quantity, price FROM orders WHERE order_id = ?", s2db.Int(4242))
	if err != nil || len(rows) != 1 {
		log.Fatalf("point read failed: %v (%d rows)", err, len(rows))
	}
	fmt.Printf("order 4242: category=%s quantity=%d price=%.2f\n",
		rows[0][0].S, rows[0][1].I, rows[0][2].F)

	// OLTP: a keyed update (row-level locking under the hood).
	if _, err := db.Exec("UPDATE orders SET quantity = ? WHERE order_id = ?",
		s2db.Int(rows[0][1].I+1), s2db.Int(4242)); err != nil {
		log.Fatal(err)
	}

	// OLAP: grouped aggregation over the same table, same snapshot domain.
	agg, err := db.Query(
		"SELECT category, count(*), sum(price), avg(quantity) FROM orders WHERE price > 10 GROUP BY category ORDER BY category")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("by category (price > 10):")
	for _, r := range agg {
		fmt.Printf("  %-10s orders=%-5d revenue=%-10.2f avg qty=%.2f\n",
			r[0].S, r[1].I, r[2].F, r[3].F)
	}

	total, err := db.Query("SELECT count(*) FROM orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total rows: %d\n", total[0][0].I)

	s := db.PlanCacheStats()
	fmt.Printf("plan cache: %d hits (%d misses) over %d templates — hit rate %.3f\n",
		s.Hits, s.Misses, s.Entries, s.HitRate())
}
