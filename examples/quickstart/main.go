// Quickstart: create a database, define a unified-storage table, ingest
// rows, run a point read and an analytical aggregation — one engine for
// both access patterns.
package main

import (
	"fmt"
	"log"

	"s2db"
)

func main() {
	db, err := s2db.Open(s2db.Config{
		Name:                  "quickstart",
		Partitions:            4,
		MaxSegmentRows:        1024,
		BackgroundMaintenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A unified table: unique key for OLTP point access, sort key for
	// analytical range scans, secondary key on the category column.
	schema := s2db.NewSchema(
		s2db.Column{Name: "order_id", Type: s2db.Int64T},
		s2db.Column{Name: "category", Type: s2db.StringT},
		s2db.Column{Name: "quantity", Type: s2db.Int64T},
		s2db.Column{Name: "price", Type: s2db.Float64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	schema.SortKey = 2
	schema.SecondaryKeys = [][]int{{1}}
	if err := db.CreateTable("orders", schema); err != nil {
		log.Fatal(err)
	}

	// Bulk load historical data straight into columnstore segments...
	categories := []string{"books", "games", "tools"}
	var batch []s2db.Row
	for i := 0; i < 5000; i++ {
		batch = append(batch, s2db.Row{
			s2db.Int(int64(i)),
			s2db.Str(categories[i%3]),
			s2db.Int(int64(i%7 + 1)),
			s2db.Float(float64(i%50) + 0.99),
		})
	}
	if err := db.BulkLoad("orders", batch); err != nil {
		log.Fatal(err)
	}
	// ...and stream new orders through the transactional path.
	for i := 5000; i < 5100; i++ {
		if err := db.Insert("orders", s2db.Row{
			s2db.Int(int64(i)), s2db.Str("streaming"), s2db.Int(1), s2db.Float(9.99),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// OLTP: indexed point read by unique key.
	row, ok, err := db.Get("orders", s2db.Int(4242))
	if err != nil || !ok {
		log.Fatalf("point read failed: %v", err)
	}
	fmt.Printf("order 4242: category=%s quantity=%d price=%.2f\n",
		row[1].S, row[2].I, row[3].F)

	// OLTP: a keyed update (row-level locking under the hood).
	if _, err := db.Update("orders",
		s2db.Where{Col: 0, Val: s2db.Int(4242)},
		func(r s2db.Row) s2db.Row { r[2] = s2db.Int(r[2].I + 1); return r },
	); err != nil {
		log.Fatal(err)
	}

	// OLAP: grouped aggregation over the same table, same snapshot domain.
	rows, err := db.Query("orders").
		Where(s2db.Gt(3, s2db.Float(10))).
		GroupBy(1).
		Agg(s2db.CountAll(), s2db.SumExpr(func(r s2db.Row) s2db.Value {
			return s2db.Float(float64(r[2].I) * r[3].F)
		})).
		OrderBy(s2db.OrderBy{Col: 0}).
		Rows()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by category (price > 10):")
	for _, r := range rows {
		fmt.Printf("  %-10s orders=%-5d revenue=%.2f\n", r[0].S, r[1].I, r[2].F)
	}

	total, _ := db.Query("orders").Count()
	fmt.Printf("total rows: %d\n", total)
}
