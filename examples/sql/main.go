// SQL front-end tour: `?` bind parameters, the parameterized plan cache
// observed through Explain and PlanCacheStats, typed errors with
// positions, and the PlanCacheEntries=0 ablation (parse every time).
package main

import (
	"errors"
	"fmt"
	"log"

	"s2db"
)

func seed(db *s2db.DB) error {
	schema := s2db.NewSchema(
		s2db.Column{Name: "id", Type: s2db.Int64T},
		s2db.Column{Name: "region", Type: s2db.StringT},
		s2db.Column{Name: "amount", Type: s2db.Float64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	schema.SecondaryKeys = [][]int{{1}}
	if err := db.CreateTable("sales", schema); err != nil {
		return err
	}
	regions := []string{"emea", "apac", "amer"}
	rows := make([]s2db.Row, 3000)
	for i := range rows {
		rows[i] = s2db.Row{
			s2db.Int(int64(i)), s2db.Str(regions[i%3]), s2db.Float(float64(i%200) + 0.25),
		}
	}
	return db.BulkLoad("sales", rows)
}

func main() {
	db, err := s2db.Open(s2db.Config{
		Name:             "sqltour",
		Partitions:       2,
		PlanCacheEntries: s2db.DefaultPlanCacheEntries,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := seed(db); err != nil {
		log.Fatal(err)
	}

	// Bind parameters: one template, many argument vectors. The first call
	// compiles (lex → parse → lower); the rest hit the plan cache.
	const q = "SELECT region, count(*), sum(amount) FROM sales WHERE amount > ? GROUP BY region ORDER BY region"
	for _, floor := range []float64{50, 150, 199} {
		rows, err := db.Query(q, s2db.Float(floor))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("amount > %3.0f:", floor)
		for _, r := range rows {
			fmt.Printf("  %s n=%d sum=%.2f", r[0].S, r[1].I, r[2].F)
		}
		fmt.Println()
	}

	// Explain prepares through the cache exactly as execution would: the
	// plan carries the normalized template that keys the cache, whether
	// this preparation was a hit, and the cache's cumulative counters.
	plan, err := db.Explain(q, s2db.Float(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", plan)

	// Literals normalize into binds, so a query written with inline
	// constants shares the cached plan of its `?` twin.
	if _, err := db.Query("SELECT region, count(*), sum(amount) FROM sales WHERE amount > 75.5 GROUP BY region ORDER BY region"); err != nil {
		log.Fatal(err)
	}
	s := db.PlanCacheStats()
	fmt.Printf("plan cache: %d hits (%d exact-text) / %d misses across %d templates\n\n",
		s.Hits, s.TextHits, s.Misses, s.Entries)

	// Errors are typed and positioned: parse errors point at the offending
	// token, column errors at the identifier in the original text.
	_, err = db.Query("SELECT * FROM sales WHERE amount >")
	var pe *s2db.ParseError
	if errors.As(err, &pe) {
		fmt.Printf("parse error at %s: %v\n", pe.Pos, err)
	}
	_, err = db.Query("SELECT * FROM sales WHERE amnt = 3")
	var ce *s2db.ColumnError
	if errors.As(err, &ce) {
		fmt.Printf("column error at %s: %v\n\n", ce.Pos, err)
	}

	// Ablation: PlanCacheEntries=0 disables the cache — every call pays
	// lex+parse+lower, and Explain reports the cache off.
	nocache, err := s2db.Open(s2db.Config{Name: "sqltour-ablation", Partitions: 2, PlanCacheEntries: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer nocache.Close()
	if err := seed(nocache); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := nocache.Query("SELECT count(*) FROM sales WHERE region = ?", s2db.Str("emea")); err != nil {
			log.Fatal(err)
		}
	}
	ablationPlan, err := nocache.Explain("SELECT count(*) FROM sales WHERE region = ?", s2db.Str("emea"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ablation (PlanCacheEntries=0):\n%s", ablationPlan)
}
