// Workspaces & PITR: separation of storage and compute (§3). The primary
// workspace commits locally and stages data to blob storage asynchronously;
// a read-only workspace bootstraps from blob snapshots and serves isolated
// analytics; point-in-time restore rebuilds the database as of a past
// timestamp purely from blob storage.
package main

import (
	"fmt"
	"log"
	"time"

	"s2db"
)

func main() {
	store := s2db.NewMemoryBlobStore()
	db, err := s2db.Open(s2db.Config{
		Name:                  "ledger",
		Partitions:            2,
		BlobStore:             store,
		BlobPutLatency:        2 * time.Millisecond, // simulated S3 write
		MaxSegmentRows:        512,
		BackgroundMaintenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := s2db.NewSchema(
		s2db.Column{Name: "account", Type: s2db.Int64T},
		s2db.Column{Name: "balance", Type: s2db.Float64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	if err := db.CreateTable("accounts", schema); err != nil {
		log.Fatal(err)
	}

	// Commit latency is local even though every byte eventually reaches
	// blob storage: the paper's core storage-separation claim (§3.1).
	start := time.Now()
	for i := 0; i < 500; i++ {
		if err := db.Insert("accounts", s2db.Row{s2db.Int(int64(i)), s2db.Float(100)}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("500 commits in %v (blob write latency is 2ms — commits don't pay it)\n",
		time.Since(start).Round(time.Millisecond))
	db.Flush("accounts")

	// Give the stagers a moment, then inspect what reached blob storage.
	for pi := 0; pi < 2; pi++ {
		db.Cluster().Master(pi).NoteAppend()
		db.Cluster().Stager(pi).Step()
		if err := db.Cluster().Stager(pi).Snapshot(); err != nil {
			log.Fatal(err)
		}
		files, chunks, snaps, _ := db.Cluster().Stager(pi).Stats()
		fmt.Printf("partition %d staged: %d data files, %d log chunks, %d snapshots\n",
			pi, files, chunks, snaps)
	}

	// Mark "the past" for the restore below — PITR targets wall-clock
	// time, mapped to a consistent log position per partition (§3.2).
	past := time.Now()

	// Read-only workspace: isolated compute bootstrapped from blob storage,
	// streaming only the log tail from the primary (§3.2).
	ws, err := db.CreateWorkspace("analytics")
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.WaitCaughtUp(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	n, err := db.Table("accounts").OnWorkspace(ws).Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workspace sees %d accounts (replication lag: %d records)\n", n, ws.Lag())

	// Mutate after the restore point: drain some accounts.
	if _, err := db.Update("accounts",
		s2db.Where{Col: -1, Pred: func(r s2db.Row) bool { return r[0].I < 100 }},
		func(r s2db.Row) s2db.Row { r[1] = s2db.Float(0); return r },
	); err != nil {
		log.Fatal(err)
	}
	sumNow := mustSum(db, nil)
	fmt.Printf("after draining 100 accounts, total balance = %.0f\n", sumNow)

	// Make sure the mutations reached blob storage, then restore to the
	// pre-drain state — no backups were ever taken (§3.2: the blob store
	// is a continuous backup).
	for pi := 0; pi < 2; pi++ {
		db.Cluster().Master(pi).NoteAppend()
		db.Cluster().Stager(pi).Step()
	}
	restored, err := s2db.PointInTimeRestore(s2db.Config{
		Name: "ledger", Partitions: 2, BlobStore: store, MaxSegmentRows: 512,
	}, map[string]*s2db.Schema{"accounts": schema}, past)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	rows, err := restored.Table("accounts").Agg(s2db.CountAll(), s2db.SumCol(1)).Rows()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PITR to %s: %d accounts, total balance = %.0f (pre-drain state)\n",
		past.Format("15:04:05.000"), rows[0][0].I, rows[0][1].F)
}

func mustSum(db *s2db.DB, _ interface{}) float64 {
	rows, err := db.Table("accounts").Agg(s2db.SumCol(1)).Rows()
	if err != nil {
		log.Fatal(err)
	}
	return rows[0][0].F
}
