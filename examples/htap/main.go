// HTAP: high-concurrency transactional writers and analytical readers on
// the *same* unified table — the real-time analytics scenario from the
// paper's introduction. Writers upsert device readings at high rate while
// readers continuously aggregate; no ETL, no second copy of the data.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"s2db"
)

func main() {
	db, err := s2db.Open(s2db.Config{
		Name:                  "telemetry",
		Partitions:            4,
		MaxSegmentRows:        256,
		BackgroundMaintenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := s2db.NewSchema(
		s2db.Column{Name: "device_id", Type: s2db.Int64T},
		s2db.Column{Name: "region", Type: s2db.StringT},
		s2db.Column{Name: "reading", Type: s2db.Float64T},
		s2db.Column{Name: "updates", Type: s2db.Int64T},
	)
	schema.UniqueKey = []int{0}
	schema.ShardKey = []int{0}
	schema.SecondaryKeys = [][]int{{1}}
	if err := db.CreateTable("readings", schema); err != nil {
		log.Fatal(err)
	}

	regions := []string{"us-east", "us-west", "eu", "apac"}
	const devices = 2000
	stop := make(chan struct{})
	var writes, queries atomic.Int64
	var wg sync.WaitGroup

	// Transactional side: 4 writers upserting device readings. Repeated
	// upserts for the same device exercise unique-key enforcement and
	// row-level locking (§4.1.2, §4.2).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				dev := int64(i % devices)
				_, err := db.InsertWith("readings",
					s2db.InsertOptions{
						OnDup: s2db.DupUpdate,
						Update: func(old, in s2db.Row) s2db.Row {
							out := old.Clone()
							out[2] = in[2]
							out[3] = s2db.Int(old[3].I + 1)
							return out
						},
					},
					s2db.Row{
						s2db.Int(dev),
						s2db.Str(regions[dev%int64(len(regions))]),
						s2db.Float(float64(i%100) / 10),
						s2db.Int(0),
					})
				if err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
				writes.Add(1)
				i += 4
			}
		}(w)
	}

	// Analytical side: continuous per-region aggregation over live data.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Table("readings").
				GroupBy(1).
				Agg(s2db.CountAll(), s2db.AvgCol(2), s2db.MaxCol(3)).
				Rows(); err != nil {
				log.Printf("reader: %v", err)
				return
			}
			queries.Add(1)
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	fmt.Printf("2s of mixed load: %d upserts, %d analytical queries\n",
		writes.Load(), queries.Load())

	rows, err := db.Table("readings").
		GroupBy(1).
		Agg(s2db.CountAll(), s2db.AvgCol(2), s2db.MaxCol(3)).
		OrderBy(s2db.OrderBy{Col: 0}).
		Rows()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final state by region:")
	for _, r := range rows {
		fmt.Printf("  %-8s devices=%-5d avg-reading=%.2f max-updates=%d\n",
			r[0].S, r[1].I, r[2].F, r[3].I)
	}

	// Show the adaptive-execution counters of one indexed analytical query.
	q := db.Table("readings").Where(s2db.Eq(1, s2db.Str("eu")))
	n, _ := q.Count()
	st := q.Stats()
	fmt.Printf("eu devices: %d (segments scanned=%d skipped=%d, index filters=%d)\n",
		n, st.SegmentsScanned, st.SegmentsSkipped, st.IndexFilters)
}
