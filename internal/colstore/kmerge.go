// Columnar k-way merge (§2.1.2): the background merger's inner loop.
//
// Sorted runs are already ordered and non-overlapping on the sort key, so
// re-sorting their union row by row (materialize every live row, then an
// O(N log N) resort over boxed values) throws away the work previous merges
// and flushes did. KMerge instead walks one cursor per run over *decoded
// column vectors* — reusing vectors already resident in the execution
// layer's decoded-vector cache when a VectorSource is supplied — and merges
// them with a small binary heap keyed on the sort-key column: O(N log k)
// comparisons on unboxed values, no types.Row materialization at all. The
// merged order is then fed column-wise into the codec builders, so payload
// bytes move straight from decoded input vectors to encoded output columns.
package colstore

import (
	"math"
	"sort"

	"s2db/internal/bitmap"
	"s2db/internal/codec"
	"s2db/internal/types"
)

// VectorSource provides already-decoded column vectors for immutable
// segments, typically the execution layer's decoded-vector cache. Peek
// calls must not decode on a miss and must not perturb cache state (the
// merger is about to retire these segments; promoting them would evict
// genuinely hot entries).
type VectorSource interface {
	PeekInts(seg *Segment, col int) ([]int64, bool)
	PeekStrs(seg *Segment, col int) ([]string, bool)
}

// OutLoc is the output location of one input row after a merge: Seg indexes
// the merger's outputs, Off is the row offset inside that output. Seg < 0
// marks a row that was deleted at merge time and has no output location.
type OutLoc struct {
	Seg int32
	Off int32
}

// Merger is the shape shared by the columnar k-way merge and the legacy
// row-sort merge, so the table layer can run either through one install
// pipeline (the row-sort path survives only as a benchmark/ablation
// baseline).
type Merger interface {
	// Inputs returns the flattened input metas in merge order (runs in
	// caller order, segments within a run in sort-key order).
	Inputs() []*Meta
	// NumRows returns the number of live rows across all inputs.
	NumRows() int
	// NumOutputs returns the number of output segments.
	NumOutputs() int
	// BuildOutput builds output chunk i as a segment with the given id.
	// Distinct chunks may be built concurrently.
	BuildOutput(i int, id uint64) *Segment
	// Remaps returns, per input (aligned with Inputs), the output location
	// of every input row offset.
	Remaps() [][]OutLoc
}

// srcLoc addresses one live input row: an index into the flattened input
// list plus the row offset inside that segment.
type srcLoc struct {
	input int32
	off   int32
}

// colVec is one decoded input column: exactly one payload slice is set
// depending on the column type; nulls is shared with the segment (nil when
// the column has none).
type colVec struct {
	ints  []int64
	strs  []string
	nulls *bitmap.Bitmap
}

// KMerge merges the live rows of several sorted runs into output chunks of
// at most maxRows rows each, entirely in columnar form. It implements
// Merger.
type KMerge struct {
	schema  *types.Schema
	maxRows int
	inputs  []*Meta
	cols    [][]colVec // [input][column]
	ord     []srcLoc   // merged order of live rows
}

// NewKMerge prepares a merge of the given runs. Each run's segments must be
// individually sorted by the schema's sort key and mutually non-overlapping
// (the LSM invariant); runs are listed oldest first, which decides the
// order of equal keys. src, when non-nil, supplies already-decoded vectors.
func NewKMerge(runs [][]*Meta, schema *types.Schema, maxRows int, src VectorSource) *KMerge {
	if maxRows <= 0 {
		maxRows = MaxSegmentRows
	}
	k := &KMerge{schema: schema, maxRows: maxRows}
	runStarts := make([]int, len(runs))
	for i, run := range runs {
		run = append([]*Meta(nil), run...)
		sortRunMetas(run, schema)
		runStarts[i] = len(k.inputs)
		k.inputs = append(k.inputs, run...)
	}
	k.decodeInputs(src)
	total := 0
	for _, m := range k.inputs {
		total += m.LiveRows()
	}
	k.ord = make([]srcLoc, 0, total)
	if schema.SortKey < 0 {
		// No sort key: output order is run order, segment order, row order.
		for i, m := range k.inputs {
			for r := 0; r < m.Seg.NumRows; r++ {
				if !m.Deleted.Get(r) {
					k.ord = append(k.ord, srcLoc{input: int32(i), off: int32(r)})
				}
			}
		}
		return k
	}
	k.mergeOrder(runs, runStarts)
	return k
}

// sortRunMetas orders one run's segments by sort-key range (all-null
// segments first, mirroring null-first value ordering), then by id for
// determinism. Flushes produce single-segment runs; merge outputs are
// created in key order with ascending ids, so this is usually a no-op.
func sortRunMetas(run []*Meta, schema *types.Schema) {
	key := schema.SortKey
	sort.Slice(run, func(i, j int) bool {
		a, b := run[i].Seg, run[j].Seg
		if key >= 0 {
			av, bv := types.Null(schema.Columns[key].Type), types.Null(schema.Columns[key].Type)
			if a.HasRange[key] {
				av = a.Min[key]
			}
			if b.HasRange[key] {
				bv = b.Min[key]
			}
			if c := types.Compare(av, bv); c != 0 {
				return c < 0
			}
		}
		return a.ID < b.ID
	})
}

// decodeInputs fills k.cols with every input's decoded column vectors,
// peeking at the vector source first so cache-resident vectors are reused
// instead of re-decoded.
func (k *KMerge) decodeInputs(src VectorSource) {
	k.cols = make([][]colVec, len(k.inputs))
	for i, m := range k.inputs {
		cv := make([]colVec, len(k.schema.Columns))
		for c, col := range k.schema.Columns {
			cv[c].nulls = m.Seg.Cols[c].Nulls
			switch col.Type {
			case types.Int64, types.Float64:
				if src != nil {
					if v, ok := src.PeekInts(m.Seg, c); ok {
						cv[c].ints = v
						continue
					}
				}
				cv[c].ints = m.Seg.Cols[c].Ints.DecodeAll(make([]int64, 0, m.Seg.NumRows))
			case types.String:
				if src != nil {
					if v, ok := src.PeekStrs(m.Seg, c); ok {
						cv[c].strs = v
						continue
					}
				}
				cv[c].strs = m.Seg.Cols[c].Strs.DecodeAll(make([]string, 0, m.Seg.NumRows))
			}
		}
		k.cols[i] = cv
	}
}

// runCursor walks one run's live rows in order.
type runCursor struct {
	runIdx int     // position in the runs list; breaks key ties (older run wins)
	inputs []int32 // flat input indices of this run's segments, in order
	pos    int     // current segment (index into inputs)
	off    int32   // current row offset
	// Cached state of the current segment.
	n     int32
	del   *bitmap.Bitmap
	key   colVec
	input int32
}

// load caches the cursor's current segment; reports false when the run is
// exhausted.
func (c *runCursor) load(k *KMerge) bool {
	for c.pos < len(c.inputs) {
		c.input = c.inputs[c.pos]
		m := k.inputs[c.input]
		c.n = int32(m.Seg.NumRows)
		c.del = m.Deleted
		c.key = k.cols[c.input][k.schema.SortKey]
		if c.off < c.n {
			return true
		}
		c.pos++
		c.off = 0
	}
	return false
}

// next advances to the next live row; reports false when the run is
// exhausted.
func (c *runCursor) next(k *KMerge) bool {
	for {
		if !c.load(k) {
			return false
		}
		if !c.del.Get(int(c.off)) {
			return true
		}
		c.off++
	}
}

// less orders two cursors by their current sort-key value with nulls first
// (types.Compare semantics), breaking ties by run order so the merge is
// deterministic and equal keys keep the older run's rows first.
func (k *KMerge) less(a, b *runCursor) bool {
	an := a.key.nulls != nil && a.key.nulls.Get(int(a.off))
	bn := b.key.nulls != nil && b.key.nulls.Get(int(b.off))
	if an || bn {
		if an && bn {
			return a.runIdx < b.runIdx
		}
		return an
	}
	switch k.schema.Columns[k.schema.SortKey].Type {
	case types.Int64:
		av, bv := a.key.ints[a.off], b.key.ints[b.off]
		if av != bv {
			return av < bv
		}
	case types.Float64:
		av := math.Float64frombits(uint64(a.key.ints[a.off]))
		bv := math.Float64frombits(uint64(b.key.ints[b.off]))
		if av < bv {
			return true
		}
		if av > bv {
			return false
		}
	default:
		av, bv := a.key.strs[a.off], b.key.strs[b.off]
		if av != bv {
			return av < bv
		}
	}
	return a.runIdx < b.runIdx
}

// mergeOrder computes the global sorted order with a binary min-heap of run
// cursors. Runs are already sorted, so this is O(N log k) comparisons over
// unboxed key values.
func (k *KMerge) mergeOrder(runs [][]*Meta, runStarts []int) {
	heap := make([]*runCursor, 0, len(runs))
	for i, run := range runs {
		c := &runCursor{runIdx: i, inputs: make([]int32, len(run))}
		for j := range run {
			c.inputs[j] = int32(runStarts[i] + j)
		}
		if c.next(k) {
			heap = append(heap, c)
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			least := i
			if l < len(heap) && k.less(heap[l], heap[least]) {
				least = l
			}
			if r < len(heap) && k.less(heap[r], heap[least]) {
				least = r
			}
			if least == i {
				return
			}
			heap[i], heap[least] = heap[least], heap[i]
			i = least
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		top := heap[0]
		k.ord = append(k.ord, srcLoc{input: top.input, off: top.off})
		top.off++
		if top.next(k) {
			siftDown(0)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			siftDown(0)
		}
	}
}

// Inputs implements Merger.
func (k *KMerge) Inputs() []*Meta { return k.inputs }

// NumRows implements Merger.
func (k *KMerge) NumRows() int { return len(k.ord) }

// NumOutputs implements Merger.
func (k *KMerge) NumOutputs() int { return (len(k.ord) + k.maxRows - 1) / k.maxRows }

// Remaps implements Merger.
func (k *KMerge) Remaps() [][]OutLoc {
	out := make([][]OutLoc, len(k.inputs))
	for i, m := range k.inputs {
		r := make([]OutLoc, m.Seg.NumRows)
		for j := range r {
			r[j] = OutLoc{Seg: -1, Off: -1}
		}
		out[i] = r
	}
	for p, s := range k.ord {
		out[s.input][s.off] = OutLoc{Seg: int32(p / k.maxRows), Off: int32(p % k.maxRows)}
	}
	return out
}

// BuildOutput implements Merger: it gathers chunk i's values column by
// column from the decoded input vectors and encodes them directly, without
// ever materializing a row. Safe for concurrent calls on distinct chunks —
// all shared state is read-only after NewKMerge.
func (k *KMerge) BuildOutput(i int, id uint64) *Segment {
	start := i * k.maxRows
	end := start + k.maxRows
	if end > len(k.ord) {
		end = len(k.ord)
	}
	ord := k.ord[start:end]
	n := len(ord)
	seg := &Segment{
		ID:       id,
		NumRows:  n,
		Cols:     make([]Column, len(k.schema.Columns)),
		Min:      make([]types.Value, len(k.schema.Columns)),
		Max:      make([]types.Value, len(k.schema.Columns)),
		HasRange: make([]bool, len(k.schema.Columns)),
		schema:   k.schema,
	}
	for c, col := range k.schema.Columns {
		var nulls *bitmap.Bitmap
		setNull := func(j int) {
			if nulls == nil {
				nulls = bitmap.New(n)
			}
			nulls.Set(j)
		}
		switch col.Type {
		case types.Int64, types.Float64:
			vals := make([]int64, n)
			var minV, maxV int64
			var minF, maxF float64
			for j, s := range ord {
				cv := &k.cols[s.input][c]
				if cv.nulls != nil && cv.nulls.Get(int(s.off)) {
					setNull(j)
					continue
				}
				v := cv.ints[s.off]
				vals[j] = v
				if col.Type == types.Int64 {
					if !seg.HasRange[c] {
						minV, maxV = v, v
					} else {
						if v < minV {
							minV = v
						}
						if v > maxV {
							maxV = v
						}
					}
				} else {
					f := math.Float64frombits(uint64(v))
					if !seg.HasRange[c] {
						minF, maxF = f, f
					} else {
						if f < minF {
							minF = f
						}
						if f > maxF {
							maxF = f
						}
					}
				}
				seg.HasRange[c] = true
			}
			if seg.HasRange[c] {
				if col.Type == types.Int64 {
					seg.Min[c], seg.Max[c] = types.NewInt(minV), types.NewInt(maxV)
				} else {
					seg.Min[c], seg.Max[c] = types.NewFloat(minF), types.NewFloat(maxF)
				}
			}
			seg.Cols[c] = Column{Ints: codec.EncodeInts(vals), Nulls: nulls}
		case types.String:
			vals := make([]string, n)
			var minS, maxS string
			for j, s := range ord {
				cv := &k.cols[s.input][c]
				if cv.nulls != nil && cv.nulls.Get(int(s.off)) {
					setNull(j)
					continue
				}
				v := cv.strs[s.off]
				vals[j] = v
				if !seg.HasRange[c] {
					minS, maxS = v, v
					seg.HasRange[c] = true
				} else {
					if v < minS {
						minS = v
					}
					if v > maxS {
						maxS = v
					}
				}
			}
			if seg.HasRange[c] {
				seg.Min[c], seg.Max[c] = types.NewString(minS), types.NewString(maxS)
			}
			seg.Cols[c] = Column{Strs: codec.EncodeStrings(vals), Nulls: nulls}
		}
	}
	return seg
}

// RowSortMerge is the pre-columnar merge algorithm: materialize every live
// row, stable-sort the union by the sort key, rebuild segments from rows.
// It is kept only as the benchmark/ablation baseline for the k-way merge
// and as an independent oracle in equivalence tests.
type RowSortMerge struct {
	schema  *types.Schema
	maxRows int
	inputs  []*Meta
	rows    []types.Row
	origins []srcLoc
}

// NewRowSortMerge prepares a row-materializing merge of the given runs,
// flattening them in the same order as NewKMerge.
func NewRowSortMerge(runs [][]*Meta, schema *types.Schema, maxRows int) *RowSortMerge {
	if maxRows <= 0 {
		maxRows = MaxSegmentRows
	}
	r := &RowSortMerge{schema: schema, maxRows: maxRows}
	for _, run := range runs {
		run = append([]*Meta(nil), run...)
		sortRunMetas(run, schema)
		r.inputs = append(r.inputs, run...)
	}
	for i, m := range r.inputs {
		for j := 0; j < m.Seg.NumRows; j++ {
			if !m.Deleted.Get(j) {
				r.rows = append(r.rows, m.Seg.RowAt(j))
				r.origins = append(r.origins, srcLoc{input: int32(i), off: int32(j)})
			}
		}
	}
	if schema.SortKey >= 0 {
		key := []int{schema.SortKey}
		idxs := make([]int, len(r.rows))
		for i := range idxs {
			idxs[i] = i
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			return types.CompareRows(r.rows[idxs[a]], r.rows[idxs[b]], key) < 0
		})
		nr := make([]types.Row, len(r.rows))
		no := make([]srcLoc, len(r.origins))
		for i, j := range idxs {
			nr[i], no[i] = r.rows[j], r.origins[j]
		}
		r.rows, r.origins = nr, no
	}
	return r
}

// Inputs implements Merger.
func (r *RowSortMerge) Inputs() []*Meta { return r.inputs }

// NumRows implements Merger.
func (r *RowSortMerge) NumRows() int { return len(r.rows) }

// NumOutputs implements Merger.
func (r *RowSortMerge) NumOutputs() int { return (len(r.rows) + r.maxRows - 1) / r.maxRows }

// BuildOutput implements Merger.
func (r *RowSortMerge) BuildOutput(i int, id uint64) *Segment {
	start := i * r.maxRows
	end := start + r.maxRows
	if end > len(r.rows) {
		end = len(r.rows)
	}
	return buildFromRows(id, r.schema, r.rows[start:end])
}

// Remaps implements Merger.
func (r *RowSortMerge) Remaps() [][]OutLoc {
	out := make([][]OutLoc, len(r.inputs))
	for i, m := range r.inputs {
		rm := make([]OutLoc, m.Seg.NumRows)
		for j := range rm {
			rm[j] = OutLoc{Seg: -1, Off: -1}
		}
		out[i] = rm
	}
	for p, s := range r.origins {
		out[s.input][s.off] = OutLoc{Seg: int32(p / r.maxRows), Off: int32(p % r.maxRows)}
	}
	return out
}
