// Package colstore implements the disk-based columnstore (§2.1.2): rows are
// organized into immutable segments storing each column separately with
// per-segment encoding choices, min/max zone metadata for segment
// elimination, and LSM-style sorted runs maintained by a background merger.
// Deleted rows are *not* stored here — they live in the mutable segment
// metadata owned by the unified table layer (§4), keeping the data files
// immutable, which is what makes blob staging possible (§3.1).
package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"s2db/internal/bitmap"
	"s2db/internal/codec"
	"s2db/internal/types"
)

// MaxSegmentRows is the default segment capacity. The paper uses 1M rows
// per segment; the simulator default is smaller so laptop-scale benchmarks
// exercise multi-segment paths.
const MaxSegmentRows = 64 * 1024

// Column is one encoded column of a segment.
type Column struct {
	Ints  codec.IntColumn    // Int64 and Float64 (as IEEE bits) columns
	Strs  codec.StringColumn // String columns
	Nulls *bitmap.Bitmap     // nil when the column has no nulls
}

// Segment is an immutable columnar chunk of a table. Once built its
// contents never change; deletes are recorded in table metadata.
type Segment struct {
	ID      uint64
	NumRows int
	Cols    []Column
	// Min and Max hold per-column min/max values over non-null rows, used
	// for zone-map segment elimination (§2.1.2). HasRange is false for
	// all-null columns.
	Min, Max []types.Value
	HasRange []bool
	schema   *types.Schema
	// retired is set (once, never cleared) when an LSM merge retires the
	// segment. Cache layers that move decoded vectors between tiers check it
	// under their own locks, so an invalidation racing a demotion or
	// promotion cannot resurrect a vector after every tier was purged.
	retired atomic.Bool
	// hydrated is set (once, never cleared) when the segment's payload —
	// Cols, Min/Max, HasRange — is present. Segments built from rows or
	// decoded from a data file are born hydrated; NewStub produces a
	// metadata-only segment (ID + NumRows from the manifest) whose payload
	// AdoptPayload fills in later. Readers must check Hydrated() before
	// touching payload fields; the store in AdoptPayload is the release
	// barrier making them visible.
	hydrated atomic.Bool
}

// Schema returns the table schema the segment was built under.
func (s *Segment) Schema() *types.Schema { return s.schema }

// Retire marks the segment as retired by a merge. Retirement is one-way.
func (s *Segment) Retire() { s.retired.Store(true) }

// Retired reports whether a merge has retired the segment.
func (s *Segment) Retired() bool { return s.retired.Load() }

// Hydrated reports whether the segment's payload is resident. A false
// return means only ID/NumRows (and table-level metadata such as deleted
// bits) are usable.
func (s *Segment) Hydrated() bool { return s.hydrated.Load() }

// NewStub returns a metadata-only segment: ID and row count from a
// manifest, no column payload. Zone maps and cell reads are unavailable
// until AdoptPayload runs; MayContain conservatively admits everything.
func NewStub(id uint64, numRows int, schema *types.Schema) *Segment {
	return &Segment{ID: id, NumRows: numRows, schema: schema}
}

// AdoptPayload installs a decoded payload into a stub in place, so every
// holder of the stub pointer (segment metadata, indexes, caches) sees the
// data appear without a pointer swap. The decoded segment must be the same
// file the stub was manifested from. Idempotent: adopting into an already
// hydrated segment is a no-op.
func (s *Segment) AdoptPayload(decoded *Segment) error {
	if decoded.ID != s.ID || decoded.NumRows != s.NumRows {
		return fmt.Errorf("colstore: payload %d/%d rows does not match stub %d/%d rows",
			decoded.ID, decoded.NumRows, s.ID, s.NumRows)
	}
	if s.hydrated.Load() {
		return nil
	}
	s.Cols = decoded.Cols
	s.Min = decoded.Min
	s.Max = decoded.Max
	s.HasRange = decoded.HasRange
	s.hydrated.Store(true) // release: payload writes above happen-before readers
	return nil
}

// Builder accumulates rows and produces an immutable Segment.
type Builder struct {
	schema *types.Schema
	rows   []types.Row
}

// NewBuilder returns a builder for the given schema.
func NewBuilder(schema *types.Schema) *Builder {
	return &Builder{schema: schema}
}

// Add appends a row. The builder takes ownership of the row.
func (b *Builder) Add(row types.Row) { b.rows = append(b.rows, row) }

// Len returns the number of buffered rows.
func (b *Builder) Len() int { return len(b.rows) }

// Build encodes the buffered rows into a segment with the given id. When
// the schema has a sort key, rows are sorted by it first ("rows are fully
// sorted by the sort key within each segment", §2.1.2). The builder is
// drained.
func (b *Builder) Build(id uint64) *Segment {
	rows := b.rows
	b.rows = nil
	if b.schema.SortKey >= 0 {
		k := []int{b.schema.SortKey}
		sort.SliceStable(rows, func(i, j int) bool {
			return types.CompareRows(rows[i], rows[j], k) < 0
		})
	}
	return buildFromRows(id, b.schema, rows)
}

// BuildSegment encodes pre-ordered rows into a segment without re-sorting,
// used by the merger which sorts globally across inputs itself.
func BuildSegment(id uint64, schema *types.Schema, rows []types.Row) *Segment {
	return buildFromRows(id, schema, rows)
}

func buildFromRows(id uint64, schema *types.Schema, rows []types.Row) *Segment {
	n := len(rows)
	seg := &Segment{
		ID:       id,
		NumRows:  n,
		Cols:     make([]Column, len(schema.Columns)),
		Min:      make([]types.Value, len(schema.Columns)),
		Max:      make([]types.Value, len(schema.Columns)),
		HasRange: make([]bool, len(schema.Columns)),
		schema:   schema,
	}
	seg.hydrated.Store(true)
	for c, col := range schema.Columns {
		var nulls *bitmap.Bitmap
		setNull := func(i int) {
			if nulls == nil {
				nulls = bitmap.New(n)
			}
			nulls.Set(i)
		}
		switch col.Type {
		case types.Int64, types.Float64:
			vals := make([]int64, n)
			for i, r := range rows {
				v := r[c]
				if v.IsNull {
					setNull(i)
					continue
				}
				if col.Type == types.Int64 {
					vals[i] = v.I
				} else {
					vals[i] = int64(math.Float64bits(v.F))
				}
				updateRange(seg, c, v)
			}
			seg.Cols[c] = Column{Ints: codec.EncodeInts(vals), Nulls: nulls}
		case types.String:
			vals := make([]string, n)
			for i, r := range rows {
				v := r[c]
				if v.IsNull {
					setNull(i)
					continue
				}
				vals[i] = v.S
				updateRange(seg, c, v)
			}
			seg.Cols[c] = Column{Strs: codec.EncodeStrings(vals), Nulls: nulls}
		}
	}
	return seg
}

func updateRange(seg *Segment, c int, v types.Value) {
	if !seg.HasRange[c] {
		seg.Min[c], seg.Max[c] = v, v
		seg.HasRange[c] = true
		return
	}
	if types.Compare(v, seg.Min[c]) < 0 {
		seg.Min[c] = v
	}
	if types.Compare(v, seg.Max[c]) > 0 {
		seg.Max[c] = v
	}
}

// ValueAt returns the value at (row, col), decoding only that cell
// (seekable encodings make this cheap, §2.1.2).
func (s *Segment) ValueAt(row, col int) types.Value {
	cc := s.Cols[col]
	t := s.schema.Columns[col].Type
	if cc.Nulls != nil && cc.Nulls.Get(row) {
		return types.Null(t)
	}
	switch t {
	case types.Int64:
		return types.NewInt(cc.Ints.At(row))
	case types.Float64:
		return types.NewFloat(math.Float64frombits(uint64(cc.Ints.At(row))))
	default:
		return types.NewString(cc.Strs.At(row))
	}
}

// RowAt materializes the full row at the given offset.
func (s *Segment) RowAt(row int) types.Row {
	out := make(types.Row, len(s.schema.Columns))
	for c := range s.schema.Columns {
		out[c] = s.ValueAt(row, c)
	}
	return out
}

// IntValues decodes an Int64/Float64-bits column fully into dst.
func (s *Segment) IntValues(col int, dst []int64) []int64 {
	return s.Cols[col].Ints.DecodeAll(dst)
}

// MayContain reports whether the segment's zone map admits a value
// satisfying "col op v"; false means the whole segment can be eliminated
// without touching data files (§5.1).
func (s *Segment) MayContain(col int, op int, v types.Value) bool {
	// op follows vector.CmpOp ordering: Eq, Ne, Lt, Le, Gt, Ge.
	if !s.hydrated.Load() {
		return true // no zone map yet: cannot eliminate an unhydrated stub
	}
	if !s.HasRange[col] {
		return false // all null: no comparison can hold
	}
	lo, hi := s.Min[col], s.Max[col]
	switch op {
	case 0: // Eq
		return types.Compare(v, lo) >= 0 && types.Compare(v, hi) <= 0
	case 1: // Ne
		return !(types.Equal(lo, hi) && types.Equal(lo, v))
	case 2: // Lt
		return types.Compare(lo, v) < 0
	case 3: // Le
		return types.Compare(lo, v) <= 0
	case 4: // Gt
		return types.Compare(hi, v) > 0
	default: // Ge
		return types.Compare(hi, v) >= 0
	}
}

// --- serialization ---------------------------------------------------------

// Encode serializes the segment into a self-contained data file payload.
func (s *Segment) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, s.ID)
	buf = binary.AppendUvarint(buf, uint64(s.NumRows))
	buf = binary.AppendUvarint(buf, uint64(len(s.Cols)))
	for c := range s.Cols {
		cc := s.Cols[c]
		buf = append(buf, byte(s.schema.Columns[c].Type))
		if cc.Nulls != nil {
			buf = append(buf, 1)
			buf = cc.Nulls.AppendBinary(buf)
		} else {
			buf = append(buf, 0)
		}
		if cc.Ints != nil {
			buf = cc.Ints.AppendBinary(buf)
		} else {
			buf = cc.Strs.AppendBinary(buf)
		}
		buf = append(buf, boolByte(s.HasRange[c]))
		if s.HasRange[c] {
			buf = appendValue(buf, s.Min[c])
			buf = appendValue(buf, s.Max[c])
		}
	}
	return buf
}

// Decode deserializes a segment encoded by Encode. The schema must match
// the one the segment was built with.
func Decode(buf []byte, schema *types.Schema) (*Segment, error) {
	p := 0
	id, k := binary.Uvarint(buf[p:])
	if k <= 0 {
		return nil, fmt.Errorf("colstore: bad segment id")
	}
	p += k
	nrows, k := binary.Uvarint(buf[p:])
	if k <= 0 {
		return nil, fmt.Errorf("colstore: bad row count")
	}
	p += k
	ncols, k := binary.Uvarint(buf[p:])
	if k <= 0 {
		return nil, fmt.Errorf("colstore: bad column count")
	}
	p += k
	if int(ncols) != len(schema.Columns) {
		return nil, fmt.Errorf("colstore: segment has %d columns, schema has %d", ncols, len(schema.Columns))
	}
	seg := &Segment{
		ID: id, NumRows: int(nrows),
		Cols:     make([]Column, ncols),
		Min:      make([]types.Value, ncols),
		Max:      make([]types.Value, ncols),
		HasRange: make([]bool, ncols),
		schema:   schema,
	}
	seg.hydrated.Store(true)
	for c := 0; c < int(ncols); c++ {
		if p >= len(buf) {
			return nil, fmt.Errorf("colstore: truncated column %d", c)
		}
		ct := types.ColType(buf[p])
		p++
		if ct != schema.Columns[c].Type {
			return nil, fmt.Errorf("colstore: column %d type %v, schema says %v", c, ct, schema.Columns[c].Type)
		}
		if p >= len(buf) {
			return nil, fmt.Errorf("colstore: truncated null flag")
		}
		hasNulls := buf[p] == 1
		p++
		if hasNulls {
			nulls, n, err := bitmap.Decode(buf[p:])
			if err != nil {
				return nil, err
			}
			seg.Cols[c].Nulls = nulls
			p += n
		}
		switch ct {
		case types.Int64, types.Float64:
			col, n, err := codec.DecodeIntColumn(buf[p:])
			if err != nil {
				return nil, err
			}
			seg.Cols[c].Ints = col
			p += n
		default:
			col, n, err := codec.DecodeStringColumn(buf[p:])
			if err != nil {
				return nil, err
			}
			seg.Cols[c].Strs = col
			p += n
		}
		if p >= len(buf) {
			return nil, fmt.Errorf("colstore: truncated range flag")
		}
		hasRange := buf[p] == 1
		p++
		seg.HasRange[c] = hasRange
		if hasRange {
			v, n, err := decodeValue(buf[p:], ct)
			if err != nil {
				return nil, err
			}
			seg.Min[c] = v
			p += n
			v, n, err = decodeValue(buf[p:], ct)
			if err != nil {
				return nil, err
			}
			seg.Max[c] = v
			p += n
		}
	}
	return seg, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendValue(buf []byte, v types.Value) []byte {
	switch v.Type {
	case types.Int64:
		return binary.AppendVarint(buf, v.I)
	case types.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	default:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		return append(buf, v.S...)
	}
}

func decodeValue(buf []byte, t types.ColType) (types.Value, int, error) {
	switch t {
	case types.Int64:
		v, k := binary.Varint(buf)
		if k <= 0 {
			return types.Value{}, 0, fmt.Errorf("colstore: bad int value")
		}
		return types.NewInt(v), k, nil
	case types.Float64:
		if len(buf) < 8 {
			return types.Value{}, 0, fmt.Errorf("colstore: bad float value")
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), 8, nil
	default:
		l, k := binary.Uvarint(buf)
		if k <= 0 || k+int(l) > len(buf) {
			return types.Value{}, 0, fmt.Errorf("colstore: bad string value")
		}
		return types.NewString(string(buf[k : k+int(l)])), k + int(l), nil
	}
}
