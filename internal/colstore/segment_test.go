package colstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"s2db/internal/bitmap"
	"s2db/internal/types"
)

func testSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "price", Type: types.Float64},
		types.Column{Name: "name", Type: types.String},
	)
	return s
}

func mkRow(i int) types.Row {
	return types.Row{
		types.NewInt(int64(i)),
		types.NewFloat(float64(i) * 1.5),
		types.NewString(fmt.Sprintf("name-%03d", i%10)),
	}
}

func buildSegment(t *testing.T, schema *types.Schema, n int) *Segment {
	t.Helper()
	b := NewBuilder(schema)
	for i := 0; i < n; i++ {
		b.Add(mkRow(i))
	}
	return b.Build(1)
}

func TestBuildAndRowAt(t *testing.T) {
	schema := testSchema()
	seg := buildSegment(t, schema, 100)
	if seg.NumRows != 100 {
		t.Fatalf("NumRows = %d", seg.NumRows)
	}
	for _, i := range []int{0, 1, 50, 99} {
		r := seg.RowAt(i)
		want := mkRow(i)
		for c := range want {
			if !types.Equal(r[c], want[c]) {
				t.Fatalf("RowAt(%d)[%d] = %v, want %v", i, c, r[c], want[c])
			}
		}
	}
}

func TestBuilderSortsBySortKey(t *testing.T) {
	schema := testSchema()
	schema.SortKey = 0
	b := NewBuilder(schema)
	for _, i := range []int{5, 1, 9, 3} {
		b.Add(mkRow(i))
	}
	seg := b.Build(1)
	prev := int64(-1)
	for i := 0; i < seg.NumRows; i++ {
		v := seg.ValueAt(i, 0).I
		if v < prev {
			t.Fatalf("segment not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

func TestZoneMaps(t *testing.T) {
	seg := buildSegment(t, testSchema(), 100) // ids 0..99
	if !types.Equal(seg.Min[0], types.NewInt(0)) || !types.Equal(seg.Max[0], types.NewInt(99)) {
		t.Fatalf("id range [%v, %v]", seg.Min[0], seg.Max[0])
	}
	// MayContain: op codes match vector.CmpOp (Eq=0 Ne=1 Lt=2 Le=3 Gt=4 Ge=5).
	cases := []struct {
		op   int
		v    int64
		want bool
	}{
		{0, 50, true}, {0, 100, false}, {0, -1, false},
		{2, 1, true}, {2, 0, false},
		{4, 98, true}, {4, 99, false},
		{5, 99, true}, {5, 100, false},
		{3, 0, true}, {3, -1, false},
	}
	for _, c := range cases {
		if got := seg.MayContain(0, c.op, types.NewInt(c.v)); got != c.want {
			t.Errorf("MayContain(op=%d, v=%d) = %v, want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestNullHandling(t *testing.T) {
	schema := testSchema()
	b := NewBuilder(schema)
	b.Add(types.Row{types.NewInt(1), types.Null(types.Float64), types.NewString("x")})
	b.Add(types.Row{types.NewInt(2), types.NewFloat(7), types.Null(types.String)})
	seg := b.Build(1)
	if !seg.ValueAt(0, 1).IsNull {
		t.Fatal("null float lost")
	}
	if !seg.ValueAt(1, 2).IsNull {
		t.Fatal("null string lost")
	}
	if v := seg.ValueAt(1, 1); v.F != 7 {
		t.Fatalf("non-null value wrong: %v", v)
	}
	// Range over non-null values only.
	if !types.Equal(seg.Min[1], types.NewFloat(7)) {
		t.Fatalf("Min over nulls = %v", seg.Min[1])
	}
}

func TestAllNullColumnEliminatesSegment(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "a", Type: types.Int64})
	b := NewBuilder(schema)
	b.Add(types.Row{types.Null(types.Int64)})
	seg := b.Build(1)
	if seg.MayContain(0, 0, types.NewInt(1)) {
		t.Fatal("all-null column should never match a comparison")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	schema := testSchema()
	b := NewBuilder(schema)
	for i := 0; i < 500; i++ {
		r := mkRow(i)
		if i%17 == 0 {
			r[1] = types.Null(types.Float64)
		}
		b.Add(r)
	}
	seg := b.Build(42)
	buf := seg.Encode()
	dec, err := Decode(buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 42 || dec.NumRows != seg.NumRows {
		t.Fatalf("header mismatch: %d/%d", dec.ID, dec.NumRows)
	}
	for i := 0; i < seg.NumRows; i++ {
		for c := range schema.Columns {
			if !types.Equal(dec.ValueAt(i, c), seg.ValueAt(i, c)) {
				t.Fatalf("(%d,%d): %v != %v", i, c, dec.ValueAt(i, c), seg.ValueAt(i, c))
			}
		}
	}
	for c := range schema.Columns {
		if dec.HasRange[c] != seg.HasRange[c] {
			t.Fatalf("HasRange[%d] mismatch", c)
		}
		if seg.HasRange[c] && (!types.Equal(dec.Min[c], seg.Min[c]) || !types.Equal(dec.Max[c], seg.Max[c])) {
			t.Fatalf("range[%d] mismatch", c)
		}
	}
	// Truncation fails cleanly.
	if _, err := Decode(buf[:len(buf)/2], schema); err == nil {
		t.Fatal("truncated segment should fail to decode")
	}
}

func TestDecodeSchemaMismatch(t *testing.T) {
	seg := buildSegment(t, testSchema(), 10)
	other := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	if _, err := Decode(seg.Encode(), other); err == nil {
		t.Fatal("decode with wrong schema should fail")
	}
}

func TestMergeSegmentsPreservesLiveRows(t *testing.T) {
	schema := testSchema()
	schema.SortKey = 0
	var metas []*Meta
	total := 0
	for s := 0; s < 3; s++ {
		b := NewBuilder(schema)
		for i := 0; i < 50; i++ {
			b.Add(mkRow(s*50 + i))
		}
		m := NewMeta(b.Build(uint64(s)), s, fmt.Sprintf("f%d", s))
		// Delete every 7th row.
		for i := 0; i < 50; i += 7 {
			m.Deleted.Set(i)
		}
		total += m.LiveRows()
		metas = append(metas, m)
	}
	id := uint64(100)
	next := func() uint64 { id++; return id }
	out := MergeSegments(metas, schema, 40, next)
	got := 0
	prev := int64(-1)
	for _, seg := range out {
		if seg.NumRows > 40 {
			t.Fatalf("segment exceeds maxRows: %d", seg.NumRows)
		}
		for i := 0; i < seg.NumRows; i++ {
			v := seg.ValueAt(i, 0).I
			if v < prev {
				t.Fatalf("merged output not globally sorted")
			}
			prev = v
			got++
		}
	}
	if got != total {
		t.Fatalf("merge produced %d rows, want %d live rows", got, total)
	}
}

func TestPickMerge(t *testing.T) {
	// Fewer runs than fanout: no merge.
	if p := PickMerge(map[int]int{1: 10}, 4, nil); p != nil {
		t.Fatal("single run should not merge")
	}
	// Four similarly-sized runs merge.
	sizes := map[int]int{1: 10, 2: 12, 3: 9, 4: 11}
	p := PickMerge(sizes, 4, nil)
	if p == nil || len(p.Runs) != 4 {
		t.Fatalf("PickMerge = %+v", p)
	}
	// One big run plus three small ones: not enough in any tier.
	sizes = map[int]int{1: 100000, 2: 12, 3: 9, 4: 11}
	if p := PickMerge(sizes, 4, nil); p != nil {
		t.Fatalf("unbalanced tiers should not merge, got %+v", p)
	}
}

func TestPickMergeKeepsRunCountLogarithmic(t *testing.T) {
	// Simulate repeated flushes of 100-row runs and verify the run count
	// stays bounded when merges are applied.
	fanout := 4
	sizes := map[int]int{}
	nextRun := 0
	maxRuns := 0
	for flush := 0; flush < 200; flush++ {
		sizes[nextRun] = 100
		nextRun++
		for {
			p := PickMerge(sizes, fanout, nil)
			if p == nil {
				break
			}
			total := 0
			for _, r := range p.Runs {
				total += sizes[r]
				delete(sizes, r)
			}
			sizes[nextRun] = total
			nextRun++
		}
		if len(sizes) > maxRuns {
			maxRuns = len(sizes)
		}
	}
	if maxRuns > 12 {
		t.Fatalf("run count reached %d; merge policy is not logarithmic", maxRuns)
	}
}

func TestMetaCloneIsolation(t *testing.T) {
	seg := buildSegment(t, testSchema(), 10)
	m := NewMeta(seg, 0, "f")
	d := m.Deleted.Clone()
	d.Set(3)
	m2 := m.CloneWithDeleted(d)
	if m.Deleted.Get(3) {
		t.Fatal("original meta mutated")
	}
	if !m2.Deleted.Get(3) || m2.LiveRows() != 9 {
		t.Fatal("clone wrong")
	}
}

// Property: segment round trip through encode/decode preserves every cell
// for random rows including nulls.
func TestQuickSegmentRoundTrip(t *testing.T) {
	schema := testSchema()
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		b := NewBuilder(schema)
		rows := make([]types.Row, n)
		for i := 0; i < n; i++ {
			r := types.Row{
				types.NewInt(rng.Int63n(1000) - 500),
				types.NewFloat(rng.NormFloat64()),
				types.NewString(fmt.Sprintf("s%d", rng.Intn(20))),
			}
			if rng.Intn(10) == 0 {
				r[rng.Intn(3)] = types.Null(schema.Columns[rng.Intn(3)].Type)
			}
			rows[i] = r.Clone()
			b.Add(r)
		}
		seg := b.Build(uint64(seed))
		dec, err := Decode(seg.Encode(), schema)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for c := 0; c < 3; c++ {
				if !types.Equal(dec.ValueAt(i, c), rows[i][c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

var _ = bitmap.New // silence unused import when editing
