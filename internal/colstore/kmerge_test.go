package colstore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"s2db/internal/types"
)

// buildRunMeta builds one sorted run (a single segment) from rows, applying
// deletes afterwards so Deleted offsets refer to post-sort positions.
func buildRunMeta(schema *types.Schema, id uint64, run int, rows []types.Row, del []int) *Meta {
	b := NewBuilder(schema)
	for _, r := range rows {
		b.Add(r)
	}
	m := NewMeta(b.Build(id), run, fmt.Sprintf("f-%d", id))
	if len(del) > 0 {
		d := m.Deleted.Clone()
		for _, i := range del {
			d.Set(i)
		}
		m = m.CloneWithDeleted(d)
	}
	return m
}

func dumpOutputs(t *testing.T, m Merger, id uint64) [][]types.Row {
	t.Helper()
	var out [][]types.Row
	for i := 0; i < m.NumOutputs(); i++ {
		seg := m.BuildOutput(i, id+uint64(i))
		rows := make([]types.Row, seg.NumRows)
		for j := range rows {
			rows[j] = seg.RowAt(j)
		}
		out = append(out, rows)
	}
	return out
}

// randValue returns a value for column c of the given type; key values are
// drawn from a small domain so cross-run ties are common.
func randValue(rng *rand.Rand, t types.ColType, withNulls bool) types.Value {
	if withNulls && rng.Intn(8) == 0 {
		return types.Null(t)
	}
	switch t {
	case types.Int64:
		return types.NewInt(int64(rng.Intn(64)))
	case types.Float64:
		return types.NewFloat(float64(rng.Intn(64)) / 4)
	default:
		return types.NewString(fmt.Sprintf("k%02d", rng.Intn(64)))
	}
}

// TestKMergeMatchesRowSort checks the columnar k-way merge against the
// legacy row-sort oracle: same outputs row for row and identical remaps,
// across key types, nulls in the sort key, deletes, and tie-heavy data.
func TestKMergeMatchesRowSort(t *testing.T) {
	for _, keyType := range []types.ColType{types.Int64, types.Float64, types.String} {
		for _, withNulls := range []bool{false, true} {
			name := fmt.Sprintf("key=%v/nulls=%v", keyType, withNulls)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				schema := types.NewSchema(
					types.Column{Name: "k", Type: keyType},
					types.Column{Name: "v", Type: types.Int64},
					types.Column{Name: "s", Type: types.String},
				)
				schema.SortKey = 0
				var runs [][]*Meta
				id := uint64(1)
				for r := 0; r < 5; r++ {
					n := 1 + rng.Intn(40)
					rows := make([]types.Row, n)
					for i := range rows {
						rows[i] = types.Row{
							randValue(rng, keyType, withNulls),
							types.NewInt(rng.Int63n(1000)),
							types.NewString(fmt.Sprintf("p-%d-%d", r, i)),
						}
					}
					var del []int
					for i := 0; i < n; i++ {
						if rng.Intn(4) == 0 {
							del = append(del, i)
						}
					}
					runs = append(runs, []*Meta{buildRunMeta(schema, id, r, rows, del)})
					id++
				}
				maxRows := 16
				km := NewKMerge(runs, schema, maxRows, nil)
				rs := NewRowSortMerge(runs, schema, maxRows)
				if km.NumRows() != rs.NumRows() || km.NumOutputs() != rs.NumOutputs() {
					t.Fatalf("shape mismatch: kmerge %d rows/%d outs, rowsort %d rows/%d outs",
						km.NumRows(), km.NumOutputs(), rs.NumRows(), rs.NumOutputs())
				}
				ko := dumpOutputs(t, km, 100)
				ro := dumpOutputs(t, rs, 100)
				for i := range ko {
					for j := range ko[i] {
						for c := range ko[i][j] {
							if !types.Equal(ko[i][j][c], ro[i][j][c]) {
								t.Fatalf("output[%d][%d][%d]: kmerge %v, rowsort %v",
									i, j, c, ko[i][j][c], ro[i][j][c])
							}
						}
					}
				}
				krm, rrm := km.Remaps(), rs.Remaps()
				for i := range krm {
					for j := range krm[i] {
						if krm[i][j] != rrm[i][j] {
							t.Fatalf("remap[%d][%d]: kmerge %+v, rowsort %+v", i, j, krm[i][j], rrm[i][j])
						}
					}
				}
			})
		}
	}
}

// TestKMergeMultiSegmentRun exercises a run holding several ordered,
// non-overlapping segments (the shape a previous merge produces).
func TestKMergeMultiSegmentRun(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Int64},
	)
	schema.SortKey = 0
	mk := func(id uint64, run int, lo, n int) *Meta {
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = types.Row{types.NewInt(int64(lo + i)), types.NewInt(int64(id))}
		}
		return buildRunMeta(schema, id, run, rows, nil)
	}
	// Run 0: two non-overlapping segments, listed out of key order to prove
	// NewKMerge re-orders them. Run 1: one overlapping-with-both segment.
	runs := [][]*Meta{
		{mk(2, 0, 50, 30), mk(1, 0, 0, 30)},
		{mk(3, 1, 20, 60)},
	}
	km := NewKMerge(runs, schema, 1<<20, nil)
	rs := NewRowSortMerge(runs, schema, 1<<20)
	ko := dumpOutputs(t, km, 10)
	ro := dumpOutputs(t, rs, 10)
	if len(ko) != 1 || len(ro) != 1 || len(ko[0]) != len(ro[0]) {
		t.Fatalf("shape mismatch: %d vs %d outputs", len(ko), len(ro))
	}
	for j := range ko[0] {
		for c := range ko[0][j] {
			if !types.Equal(ko[0][j][c], ro[0][j][c]) {
				t.Fatalf("row %d col %d: %v vs %v", j, c, ko[0][j][c], ro[0][j][c])
			}
		}
	}
}

// TestKMergeNoSortKey: without a sort key the merge concatenates live rows
// in run order.
func TestKMergeNoSortKey(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.String},
	)
	rows := func(base int, n int) []types.Row {
		out := make([]types.Row, n)
		for i := range out {
			out[i] = types.Row{types.NewInt(int64(base + i)), types.NewString(fmt.Sprintf("s%d", base+i))}
		}
		return out
	}
	runs := [][]*Meta{
		{buildRunMeta(schema, 1, 0, rows(100, 5), []int{1})},
		{buildRunMeta(schema, 2, 1, rows(200, 4), nil)},
	}
	km := NewKMerge(runs, schema, 1<<20, nil)
	if km.NumRows() != 8 {
		t.Fatalf("NumRows = %d, want 8", km.NumRows())
	}
	seg := km.BuildOutput(0, 9)
	want := []int64{100, 102, 103, 104, 200, 201, 202, 203}
	for i, w := range want {
		if got := seg.ValueAt(i, 0).I; got != w {
			t.Fatalf("row %d = %d, want %d", i, got, w)
		}
	}
}

// TestKMergeRemapPointsAtIdenticalRow: every live input row is found,
// byte-identical, at its remapped output location; deleted rows map to -1.
func TestKMergeRemapPointsAtIdenticalRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := testSchema()
	schema.SortKey = 0
	var runs [][]*Meta
	for r := 0; r < 4; r++ {
		n := 20 + rng.Intn(20)
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(rng.Int63n(100)),
				types.NewFloat(rng.Float64() * 10),
				types.NewString(fmt.Sprintf("r%d-%d", r, i)),
			}
		}
		var del []int
		for i := 0; i < n; i += 3 {
			del = append(del, i)
		}
		runs = append(runs, []*Meta{buildRunMeta(schema, uint64(r+1), r, rows, del)})
	}
	km := NewKMerge(runs, schema, 32, nil)
	outs := make([]*Segment, km.NumOutputs())
	for i := range outs {
		outs[i] = km.BuildOutput(i, uint64(100+i))
	}
	remaps := km.Remaps()
	for i, m := range km.Inputs() {
		for j := 0; j < m.Seg.NumRows; j++ {
			loc := remaps[i][j]
			if m.Deleted.Get(j) {
				if loc.Seg >= 0 {
					t.Fatalf("deleted row (%d,%d) remapped to %+v", i, j, loc)
				}
				continue
			}
			if loc.Seg < 0 {
				t.Fatalf("live row (%d,%d) has no remap", i, j)
			}
			got := outs[loc.Seg].RowAt(int(loc.Off))
			want := m.Seg.RowAt(j)
			for c := range want {
				if !types.Equal(got[c], want[c]) {
					t.Fatalf("remapped row (%d,%d)→%+v col %d: %v != %v", i, j, loc, c, got[c], want[c])
				}
			}
		}
	}
}

// countingSource counts Peek hits and serves doctored vectors so the test
// can prove cache-resident vectors are actually consumed.
type countingSource struct {
	seg   *Segment
	col   int
	ints  []int64
	peeks int
}

func (s *countingSource) PeekInts(seg *Segment, col int) ([]int64, bool) {
	s.peeks++
	if seg == s.seg && col == s.col {
		return s.ints, true
	}
	return nil, false
}

func (s *countingSource) PeekStrs(seg *Segment, col int) ([]string, bool) {
	s.peeks++
	return nil, false
}

func TestKMergeUsesVectorSource(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Int64},
	)
	schema.SortKey = 0
	rows := []types.Row{
		{types.NewInt(1), types.NewInt(10)},
		{types.NewInt(2), types.NewInt(20)},
	}
	m := buildRunMeta(schema, 1, 0, rows, nil)
	// Serve a doctored payload vector for column 1: if the merge reuses the
	// resident vector, outputs reflect it.
	src := &countingSource{seg: m.Seg, col: 1, ints: []int64{111, 222}}
	km := NewKMerge([][]*Meta{{m}}, schema, 1<<20, src)
	if src.peeks == 0 {
		t.Fatal("vector source never consulted")
	}
	seg := km.BuildOutput(0, 5)
	if got := seg.ValueAt(0, 1).I; got != 111 {
		t.Fatalf("resident vector not used: got %d, want 111", got)
	}
}

// TestKMergeFloatKeyOrdering pins float key comparison semantics (IEEE bits
// stored, float compare order).
func TestKMergeFloatKeyOrdering(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", Type: types.Float64})
	schema.SortKey = 0
	mk := func(id uint64, run int, vals ...float64) *Meta {
		rows := make([]types.Row, len(vals))
		for i, v := range vals {
			rows[i] = types.Row{types.NewFloat(v)}
		}
		return buildRunMeta(schema, id, run, rows, nil)
	}
	runs := [][]*Meta{
		{mk(1, 0, -5.5, 0.25, 3)},
		{mk(2, 1, math.Inf(-1), -1, 0.25, 100)},
	}
	km := NewKMerge(runs, schema, 1<<20, nil)
	seg := km.BuildOutput(0, 9)
	want := []float64{math.Inf(-1), -5.5, -1, 0.25, 0.25, 3, 100}
	for i, w := range want {
		if got := seg.ValueAt(i, 0).F; got != w {
			t.Fatalf("row %d = %v, want %v", i, got, w)
		}
	}
}

// TestPickMergeCacheAware: with more candidates than fanout, hot runs are
// skipped; zero-heat extras still merge; nil heat merges everything.
func TestPickMergeCacheAware(t *testing.T) {
	sizes := map[int]int{1: 10, 2: 11, 3: 9, 4: 12, 5: 10, 6: 11}
	// Nil heat: size-only behavior merges the whole tier.
	if p := PickMerge(sizes, 4, nil); p == nil || len(p.Runs) != 6 {
		t.Fatalf("nil heat: got %+v, want all 6 runs", p)
	}
	// Runs 2 and 5 are hot: the planner must pick the 4 cold ones.
	heat := map[int]int64{2: 1 << 20, 5: 1 << 10}
	p := PickMerge(sizes, 4, heat)
	if p == nil || len(p.Runs) != 4 {
		t.Fatalf("hot runs: got %+v, want 4 cold runs", p)
	}
	for _, r := range p.Runs {
		if r == 2 || r == 5 {
			t.Fatalf("hot run %d selected in %+v", r, p.Runs)
		}
	}
	// One hot run out of six: four coldest merge plus the fifth zero-heat
	// run rides along; only the hot one is left out.
	p = PickMerge(sizes, 4, map[int]int64{3: 1 << 20})
	if p == nil || len(p.Runs) != 5 {
		t.Fatalf("one hot run: got %+v, want 5 runs", p)
	}
	for _, r := range p.Runs {
		if r == 3 {
			t.Fatalf("hot run 3 selected in %+v", p.Runs)
		}
	}
}
