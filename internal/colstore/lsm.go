package colstore

import (
	"sort"

	"s2db/internal/bitmap"
	"s2db/internal/types"
)

// Meta is the mutable per-segment metadata the paper stores in a durable
// rowstore table (§2.1.2): the deleted bit vector plus bookkeeping. The
// segment payload itself is immutable; installing a new Meta version is how
// deletes and merges become visible.
type Meta struct {
	Seg *Segment
	// Deleted marks rows filtered out of every read. A row's bit is set
	// either by a move transaction (§4.2) or when the row was replaced.
	Deleted *bitmap.Bitmap
	// Run is the sorted-run generation the segment belongs to; higher runs
	// are newer. Segments within a run are ordered and non-overlapping on
	// the sort key.
	Run int
	// File is the data file name ("named after the log page at which it
	// was created", §3) used for blob staging.
	File string
}

// NewMeta wraps a fresh segment with an empty deleted vector.
func NewMeta(seg *Segment, run int, file string) *Meta {
	return &Meta{Seg: seg, Deleted: bitmap.New(seg.NumRows), Run: run, File: file}
}

// LiveRows returns the number of non-deleted rows.
func (m *Meta) LiveRows() int { return m.Seg.NumRows - m.Deleted.Count() }

// CloneWithDeleted returns a copy of the metadata with a new deleted
// vector, leaving the original untouched for concurrent readers.
func (m *Meta) CloneWithDeleted(d *bitmap.Bitmap) *Meta {
	return &Meta{Seg: m.Seg, Deleted: d, Run: m.Run, File: m.File}
}

// MergePlan selects sorted runs to merge. The policy keeps a logarithmic
// number of runs (§2.1.2): whenever `fanout` or more runs exist whose total
// live row count is below the next power-of-fanout boundary, they merge.
type MergePlan struct {
	// Runs lists the run generations to merge together.
	Runs []int
}

// PickMerge examines run sizes (live rows per run generation) and returns a
// plan, or nil when the tree is already logarithmic. fanout must be >= 2.
//
// heat, when non-nil, carries a per-run hotness score derived from the
// decoded-vector cache (resident bytes plus recent hits). Merging a run
// invalidates its cached vectors, so when a tier holds more than fanout
// candidates the planner merges the fanout *coldest* runs and leaves hot
// runs for a later pass — plus any extra zero-heat runs, so a fully cold
// tier still collapses in one merge exactly as the size-only policy would.
// A nil or all-zero heat map reproduces the size-only behavior.
func PickMerge(runSizes map[int]int, fanout int, heat map[int]int64) *MergePlan {
	if fanout < 2 {
		fanout = 2
	}
	if len(runSizes) < fanout {
		return nil
	}
	// Bucket runs by size tier: tier t holds runs with size in
	// [fanout^t, fanout^(t+1)). Merging all runs in the fullest small tier
	// keeps run count logarithmic in total rows.
	tiers := map[int][]int{}
	for run, size := range runSizes {
		t := 0
		for s := size; s >= fanout; s /= fanout {
			t++
		}
		tiers[t] = append(tiers[t], run)
	}
	var tierKeys []int
	for t := range tiers {
		tierKeys = append(tierKeys, t)
	}
	sort.Ints(tierKeys)
	for _, t := range tierKeys {
		if len(tiers[t]) >= fanout {
			runs := tiers[t]
			if len(runs) > fanout {
				// Coldest first; equal heat falls back to run order so the
				// selection is deterministic.
				sort.Slice(runs, func(i, j int) bool {
					if heat[runs[i]] != heat[runs[j]] {
						return heat[runs[i]] < heat[runs[j]]
					}
					return runs[i] < runs[j]
				})
				keep := runs[:fanout:fanout]
				for _, r := range runs[fanout:] {
					if heat[r] == 0 {
						keep = append(keep, r)
					}
				}
				runs = keep
			}
			sort.Ints(runs)
			return &MergePlan{Runs: runs}
		}
	}
	return nil
}

// MergeSegments merges the live rows of the given segment metadata into new
// segments of at most maxRows each, ordered by the schema's sort key when
// present. Logical table contents are unchanged — the caller installs the
// result atomically (the merge is reorderable with move transactions,
// §4.2).
func MergeSegments(metas []*Meta, schema *types.Schema, maxRows int, nextID func() uint64) []*Segment {
	// Each input meta is its own single-segment "run": segments are
	// internally sorted by construction, and equal keys keep input order,
	// matching the stable resort this function used to perform.
	runs := make([][]*Meta, len(metas))
	for i, m := range metas {
		runs[i] = []*Meta{m}
	}
	km := NewKMerge(runs, schema, maxRows, nil)
	out := make([]*Segment, km.NumOutputs())
	for i := range out {
		out[i] = km.BuildOutput(i, nextID())
	}
	return out
}

// MergeSegmentsRowSort is the legacy row-materializing merge, kept as the
// benchmark/ablation baseline and as an independent oracle for equivalence
// tests against the columnar path.
func MergeSegmentsRowSort(metas []*Meta, schema *types.Schema, maxRows int, nextID func() uint64) []*Segment {
	runs := make([][]*Meta, len(metas))
	for i, m := range metas {
		runs[i] = []*Meta{m}
	}
	rm := NewRowSortMerge(runs, schema, maxRows)
	out := make([]*Segment, rm.NumOutputs())
	for i := range out {
		out[i] = rm.BuildOutput(i, nextID())
	}
	return out
}
