package colstore

import (
	"sort"

	"s2db/internal/bitmap"
	"s2db/internal/types"
)

// Meta is the mutable per-segment metadata the paper stores in a durable
// rowstore table (§2.1.2): the deleted bit vector plus bookkeeping. The
// segment payload itself is immutable; installing a new Meta version is how
// deletes and merges become visible.
type Meta struct {
	Seg *Segment
	// Deleted marks rows filtered out of every read. A row's bit is set
	// either by a move transaction (§4.2) or when the row was replaced.
	Deleted *bitmap.Bitmap
	// Run is the sorted-run generation the segment belongs to; higher runs
	// are newer. Segments within a run are ordered and non-overlapping on
	// the sort key.
	Run int
	// File is the data file name ("named after the log page at which it
	// was created", §3) used for blob staging.
	File string
}

// NewMeta wraps a fresh segment with an empty deleted vector.
func NewMeta(seg *Segment, run int, file string) *Meta {
	return &Meta{Seg: seg, Deleted: bitmap.New(seg.NumRows), Run: run, File: file}
}

// LiveRows returns the number of non-deleted rows.
func (m *Meta) LiveRows() int { return m.Seg.NumRows - m.Deleted.Count() }

// CloneWithDeleted returns a copy of the metadata with a new deleted
// vector, leaving the original untouched for concurrent readers.
func (m *Meta) CloneWithDeleted(d *bitmap.Bitmap) *Meta {
	return &Meta{Seg: m.Seg, Deleted: d, Run: m.Run, File: m.File}
}

// MergePlan selects sorted runs to merge. The policy keeps a logarithmic
// number of runs (§2.1.2): whenever `fanout` or more runs exist whose total
// live row count is below the next power-of-fanout boundary, they merge.
type MergePlan struct {
	// Runs lists the run generations to merge together.
	Runs []int
}

// PickMerge examines run sizes (live rows per run generation) and returns a
// plan, or nil when the tree is already logarithmic. fanout must be >= 2.
func PickMerge(runSizes map[int]int, fanout int) *MergePlan {
	if fanout < 2 {
		fanout = 2
	}
	if len(runSizes) < fanout {
		return nil
	}
	// Bucket runs by size tier: tier t holds runs with size in
	// [fanout^t, fanout^(t+1)). Merging all runs in the fullest small tier
	// keeps run count logarithmic in total rows.
	tiers := map[int][]int{}
	for run, size := range runSizes {
		t := 0
		for s := size; s >= fanout; s /= fanout {
			t++
		}
		tiers[t] = append(tiers[t], run)
	}
	var tierKeys []int
	for t := range tiers {
		tierKeys = append(tierKeys, t)
	}
	sort.Ints(tierKeys)
	for _, t := range tierKeys {
		if len(tiers[t]) >= fanout {
			runs := tiers[t]
			sort.Ints(runs)
			return &MergePlan{Runs: runs}
		}
	}
	return nil
}

// MergeSegments merges the live rows of the given segment metadata into new
// segments of at most maxRows each, ordered by the schema's sort key when
// present. Logical table contents are unchanged — the caller installs the
// result atomically (the merge is reorderable with move transactions,
// §4.2).
func MergeSegments(metas []*Meta, schema *types.Schema, maxRows int, nextID func() uint64) []*Segment {
	if maxRows <= 0 {
		maxRows = MaxSegmentRows
	}
	// Collect live rows from all inputs.
	var rows []types.Row
	for _, m := range metas {
		for i := 0; i < m.Seg.NumRows; i++ {
			if !m.Deleted.Get(i) {
				rows = append(rows, m.Seg.RowAt(i))
			}
		}
	}
	if schema.SortKey >= 0 {
		k := []int{schema.SortKey}
		sort.SliceStable(rows, func(i, j int) bool {
			return types.CompareRows(rows[i], rows[j], k) < 0
		})
	}
	var out []*Segment
	for start := 0; start < len(rows); start += maxRows {
		end := start + maxRows
		if end > len(rows) {
			end = len(rows)
		}
		out = append(out, buildFromRows(nextID(), schema, rows[start:end]))
	}
	return out
}
