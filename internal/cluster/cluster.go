package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"s2db/internal/blob"
	"s2db/internal/core"
	"s2db/internal/qos"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// Config describes a cluster.
type Config struct {
	// Name is the database name (blob key namespace).
	Name string
	// Partitions is the number of hash partitions.
	Partitions int
	// SyncReplicas is the number of HA replicas per partition that ack
	// commits (§2: "data is replicated synchronously to the replicas as
	// transactions commit").
	SyncReplicas int
	// Blob enables separated storage when non-nil (§3).
	Blob blob.Store
	// CacheBytes bounds the per-partition local data-file cache.
	CacheBytes int
	// CommitMode selects local-commit (S2DB) or blob-commit (CDW baseline).
	CommitMode CommitMode
	// ReplicationLatency simulates the network between master and replica.
	ReplicationLatency time.Duration
	// Table configures per-partition table storage.
	Table core.Config
	// DecodedCache is the primary cluster's decoded-vector cache handle,
	// shared by every master and HA replica (the in-memory tier above the
	// per-partition data-file caches). It is threaded into each table's
	// core.Config so LSM merges invalidate retired segments.
	DecodedCache core.DecodedVectorCache
	// CachePartitions, when non-nil, provisions an isolated decoded-vector
	// cache partition per workspace, so an analytic workspace churning cold
	// segments cannot evict the primary's hot set (§5 isolation). Workspace
	// replica tables get the attached handle instead of DecodedCache.
	CachePartitions CachePartitioner
	// CommitTimeout bounds durability waits.
	CommitTimeout time.Duration
	// ChunkRecords and SnapshotEvery tune blob staging.
	ChunkRecords, SnapshotEvery int
	// LogPageBytes caps a replication log page; a page seals once its
	// records reach this size. Zero uses the WAL default (64KiB).
	LogPageBytes int
	// GroupCommitInterval is the page-seal timer: concurrent writers'
	// records batch into one page for up to this long, then ship, ack and
	// release their durability waits together. Zero seals a page per
	// record (the per-record seed behavior).
	GroupCommitInterval time.Duration
	// SubscriptionBudget bounds the bytes a replication subscription may
	// buffer before it is detached as a slow consumer. Zero uses the WAL
	// default (256MiB).
	SubscriptionBudget int
	// Transport is the boundary replication crosses between master and
	// replica partitions. Nil uses the in-process memory transport (the
	// zero-copy channel path, the seed behavior); NewTCPTransport routes
	// every page through the wire codec over loopback sockets, and
	// NewChaosTransport wraps either with seeded fault injection. The
	// cluster owns the transport and closes it on Close.
	Transport Transport
	// LinkStallTimeout bounds how long a replication link tolerates
	// shipped pages with no apply/ack progress before tearing its session
	// down and reconnecting from the replica's applied position. Zero uses
	// DefaultLinkStallTimeout.
	LinkStallTimeout time.Duration
	// Governor, when non-nil, meters multi-tenant resource use: workspace
	// replication links pace their page stream against the workspace
	// tenant's WAL-bandwidth budget, and workspaces register/unregister as
	// tenants on attach/detach. Sync HA links are never paced — they are
	// the durability path, and throttling them would turn a noisy tenant
	// into a commit-latency regression for everyone.
	Governor *qos.Governor
}

// CachePartitioner hands out per-workspace decoded-vector cache handles.
// Attach provisions (and budgets) the partition for a workspace; Detach
// releases it and returns its budget to the pool. Implemented by the
// top-level DB over exec.VecCacheGroup — an interface here so cluster does
// not depend on the execution engine.
type CachePartitioner interface {
	Attach(name string) (core.DecodedVectorCache, error)
	Detach(name string)
}

func (c Config) pageConfig() wal.PageConfig {
	return wal.PageConfig{
		MaxBytes:           c.LogPageBytes,
		FlushInterval:      c.GroupCommitInterval,
		SubscriptionBudget: c.SubscriptionBudget,
	}
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "db"
	}
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 10 * time.Second
	}
	if c.Table.DecodedCache == nil {
		c.Table.DecodedCache = c.DecodedCache
	}
	if c.Transport == nil {
		c.Transport = NewMemoryTransport()
	}
	return c
}

// Cluster is a database: hash-partitioned masters, their HA replicas, blob
// staging and any attached read-only workspaces.
type Cluster struct {
	cfg Config

	transport Transport

	mu        sync.RWMutex
	catalog   map[string]*types.Schema
	masters   []*Partition
	replicas  [][]*Partition
	links     [][]*Link
	stagers   []*Stager
	workspace map[string]*Workspace

	nextReplicaID int
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.CommitMode == CommitBlob && cfg.Blob == nil {
		return nil, fmt.Errorf("cluster: CommitBlob requires a blob store")
	}
	c := &Cluster{
		cfg:       cfg,
		transport: cfg.Transport,
		catalog:   make(map[string]*types.Schema),
		workspace: make(map[string]*Workspace),
	}
	for i := 0; i < cfg.Partitions; i++ {
		files := NewPartitionFiles(c.blobPrefix(i), cfg.Blob, cfg.CacheBytes)
		p := newPartition(cfg.Name, i, RoleMaster, cfg.Table, files, cfg.CommitMode, 0, cfg.pageConfig())
		p.setMinSyncers(cfg.SyncReplicas)
		c.masters = append(c.masters, p)
		var reps []*Partition
		var links []*Link
		for r := 0; r < cfg.SyncReplicas; r++ {
			rep := c.newReplicaPartition(i, nil, "")
			link := c.startLinkFrom(p, rep, true, rep.Log().Head())
			reps = append(reps, rep)
			links = append(links, link)
		}
		c.replicas = append(c.replicas, reps)
		c.links = append(c.links, links)
		stager := NewStager(p, files, cfg.Blob, cfg.ChunkRecords, cfg.SnapshotEvery)
		if cfg.Blob != nil {
			stager.Start()
		}
		c.stagers = append(c.stagers, stager)
	}
	return c, nil
}

func (c *Cluster) blobPrefix(part int) string {
	return fmt.Sprintf("%s/%d/", c.cfg.Name, part)
}

func (c *Cluster) replicaID() int {
	c.nextReplicaID++
	return c.nextReplicaID
}

// startLinkFrom starts a replication link over the cluster's transport
// with the configured latency and stall timeout.
func (c *Cluster) startLinkFrom(master, replica *Partition, syncAck bool, from uint64) *Link {
	return StartLinkFrom(c.transport, master, replica, syncAck,
		c.cfg.ReplicationLatency, c.cfg.LinkStallTimeout, c.replicaID(), from)
}

// startWorkspaceLinkFrom starts an async workspace replication link whose
// page stream is paced against the workspace tenant's WAL-bandwidth budget
// when a governor is configured. The pacer runs on the link's sender
// goroutine (never under the log mutex), so an over-budget workspace slows
// or sheds only its own stream; a shed surfaces as a terminal link error
// that resyncLink heals from blob-staged chunks like any other detach.
func (c *Cluster) startWorkspaceLinkFrom(master, replica *Partition, from uint64, tenant string) *Link {
	var pacer func(bytes int) error
	if gov := c.cfg.Governor; gov != nil {
		pacer = func(bytes int) error {
			return gov.Consume(context.Background(), tenant, qos.WALBand, int64(bytes))
		}
	}
	return startLink(c.transport, master, replica, false,
		c.cfg.ReplicationLatency, c.cfg.LinkStallTimeout, c.replicaID(), from, pacer)
}

// newReplicaPartition creates a replica with background maintenance
// disabled (replicas replay the master's flush/merge records instead).
// cache overrides the table-level decoded-vector cache handle when non-nil
// (workspace replicas scan through their workspace's partition; HA replicas
// pass nil and inherit the primary handle). tenant, when non-empty, tags
// the replica's table storage with the QoS tenant its resource use bills
// to (workspace replicas bill the workspace; HA replicas pass "" and bill
// the primary tenant).
func (c *Cluster) newReplicaPartition(part int, cache core.DecodedVectorCache, tenant string) *Partition {
	tcfg := c.cfg.Table
	tcfg.Background = false
	if cache != nil {
		tcfg.DecodedCache = cache
	}
	if tenant != "" {
		tcfg.QoSTenant = tenant
	}
	files := NewPartitionFiles(c.blobPrefix(part), c.cfg.Blob, c.cfg.CacheBytes)
	return newPartition(c.cfg.Name, part, RoleReplica, tcfg, files, c.cfg.CommitMode, 0, c.cfg.pageConfig())
}

// Partitions returns the number of partitions.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// Master returns the master partition i.
func (c *Cluster) Master(i int) *Partition {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.masters[i]
}

// Stager returns partition i's blob stager.
func (c *Cluster) Stager(i int) *Stager { return c.stagers[i] }

// CreateTable creates a table on every master, HA replica and workspace.
func (c *Cluster) CreateTable(name string, schema *types.Schema) error {
	if err := schema.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.catalog[name]; dup {
		return fmt.Errorf("cluster: table %s already exists", name)
	}
	for _, p := range c.masters {
		if err := p.CreateTable(name, schema); err != nil {
			return err
		}
	}
	for _, reps := range c.replicas {
		for _, p := range reps {
			if err := p.CreateTable(name, schema); err != nil {
				return err
			}
		}
	}
	for _, ws := range c.workspace {
		for _, p := range ws.parts {
			if err := p.CreateTable(name, schema); err != nil {
				return err
			}
		}
	}
	c.catalog[name] = schema
	return nil
}

// Schema returns the catalog entry for a table.
func (c *Cluster) Schema(name string) (*types.Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.catalog[name]
	if !ok {
		return nil, fmt.Errorf("cluster: no table %s", name)
	}
	return s, nil
}

// routeRow picks the partition for a row by hashing its shard key (§2).
func (c *Cluster) routeRow(schema *types.Schema, r types.Row) int {
	return int(schema.ShardHash(r) % uint64(c.cfg.Partitions))
}

// Insert routes rows to their shard partitions, applies them with the given
// options and waits for durability.
func (c *Cluster) Insert(table string, rows []types.Row, opts core.InsertOptions) (core.InsertResult, error) {
	schema, err := c.Schema(table)
	if err != nil {
		return core.InsertResult{}, err
	}
	byPart := make(map[int][]types.Row)
	for _, r := range rows {
		p := c.routeRow(schema, r)
		byPart[p] = append(byPart[p], r)
	}
	var total core.InsertResult
	for pi, batch := range byPart {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return total, err
		}
		res, err := tbl.InsertBatch(batch, opts)
		if err != nil {
			return total, err
		}
		total.Inserted += res.Inserted
		total.Skipped += res.Skipped
		total.Replaced += res.Replaced
		total.Updated += res.Updated
		p.NoteAppend()
		if err := p.WaitDurable(res.LSN, c.cfg.CommitTimeout); err != nil {
			return total, err
		}
	}
	return total, nil
}

// BulkLoad routes rows and loads them directly into columnstore segments.
func (c *Cluster) BulkLoad(table string, rows []types.Row) error {
	schema, err := c.Schema(table)
	if err != nil {
		return err
	}
	byPart := make(map[int][]types.Row)
	for _, r := range rows {
		p := c.routeRow(schema, r)
		byPart[p] = append(byPart[p], r)
	}
	for pi, batch := range byPart {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return err
		}
		if err := tbl.BulkLoad(batch); err != nil {
			return err
		}
		p.NoteAppend()
		if err := p.WaitDurable(p.Log().Head()-1, c.cfg.CommitTimeout); err != nil {
			return err
		}
	}
	return nil
}

// GetByUnique routes a unique-key point read: directly to one partition
// when the shard key is a subset of the unique key, otherwise to all.
func (c *Cluster) GetByUnique(table string, vals []types.Value) (types.Row, bool, error) {
	schema, err := c.Schema(table)
	if err != nil {
		return nil, false, err
	}
	uk := schema.UniqueKey
	if len(uk) == 0 {
		return nil, false, core.ErrNoUniqueKey
	}
	posOf := map[int]int{}
	for i, col := range uk {
		posOf[col] = i
	}
	routable := true
	shardVals := make([]types.Value, 0, len(schema.ShardColumns()))
	for _, col := range schema.ShardColumns() {
		i, ok := posOf[col]
		if !ok {
			routable = false
			break
		}
		shardVals = append(shardVals, vals[i])
	}
	try := func(pi int) (types.Row, bool, error) {
		tbl, err := c.Master(pi).Table(table)
		if err != nil {
			return nil, false, err
		}
		return tbl.GetByUnique(vals)
	}
	if routable {
		return try(int(types.HashMany(shardVals) % uint64(c.cfg.Partitions)))
	}
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		if r, ok, err := try(pi); err != nil || ok {
			return r, ok, err
		}
	}
	return nil, false, nil
}

// UpdateWhere fans an update out to every partition and waits durable.
func (c *Cluster) UpdateWhere(table string, w core.Where, set func(types.Row) types.Row) (int, error) {
	total := 0
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return total, err
		}
		n, err := tbl.UpdateWhere(w, set)
		if err != nil {
			return total, err
		}
		total += n
		p.NoteAppend()
		if n > 0 {
			if err := p.WaitDurable(p.Log().Head()-1, c.cfg.CommitTimeout); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// DeleteWhere fans a delete out to every partition and waits durable.
func (c *Cluster) DeleteWhere(table string, w core.Where) (int, error) {
	total := 0
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return total, err
		}
		n, err := tbl.DeleteWhere(w)
		if err != nil {
			return total, err
		}
		total += n
		p.NoteAppend()
		if n > 0 {
			if err := p.WaitDurable(p.Log().Head()-1, c.cfg.CommitTimeout); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// LeafTarget is one partition-local execution site of a fanned-out query:
// the scan over View logically runs "on" leaf partition Partition, the way
// aggregator nodes ship query fragments to leaves (§2). Both the primary
// cluster and read-only workspaces hand out targets with the same shape,
// so the scheduler fans out identically over either.
type LeafTarget struct {
	Partition int
	View      *core.View
}

// QueryTargets returns one consistent per-partition snapshot per master
// (§2.1.2: partition-local snapshot isolation), each tagged with the leaf
// partition it executes on.
func (c *Cluster) QueryTargets(table string) ([]LeafTarget, error) {
	targets := make([]LeafTarget, 0, c.cfg.Partitions)
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		tbl, err := c.Master(pi).Table(table)
		if err != nil {
			return nil, err
		}
		targets = append(targets, LeafTarget{Partition: pi, View: tbl.Snapshot()})
	}
	return targets, nil
}

// Views returns the per-partition snapshots without partition tags.
func (c *Cluster) Views(table string) ([]*core.View, error) {
	targets, err := c.QueryTargets(table)
	if err != nil {
		return nil, err
	}
	views := make([]*core.View, len(targets))
	for i, t := range targets {
		views[i] = t.View
	}
	return views, nil
}

// Flush forces a flush on every master partition of the table.
func (c *Cluster) Flush(table string) error {
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		tbl, err := c.Master(pi).Table(table)
		if err != nil {
			return err
		}
		for tbl.BufferLen() > 0 {
			if _, err := tbl.Flush(); err != nil {
				return err
			}
		}
		c.Master(pi).NoteAppend()
	}
	return nil
}

// FailMaster simulates losing the master of partition pi: the highest-acked
// HA replica is promoted (§2: "replica partitions ... will be promoted to
// master and take over running queries"). It returns an error when no
// replica exists.
func (c *Cluster) FailMaster(pi int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	reps := c.replicas[pi]
	if len(reps) == 0 {
		return fmt.Errorf("cluster: partition %d has no HA replica to promote", pi)
	}
	old := c.masters[pi]
	// Stop replication out of the failed master.
	for _, l := range c.links[pi] {
		l.Stop()
	}
	old.Close()
	// Pick the replica with the most applied records.
	best := 0
	for i, r := range reps {
		if r.Applied() > reps[best].Applied() {
			best = i
		}
	}
	promoted := reps[best]
	promoted.Promote(c.cfg.Table.Background)
	promoted.setMinSyncers(min(c.cfg.SyncReplicas, len(reps)-1))
	c.masters[pi] = promoted
	// Re-attach the remaining replicas to the new master from their own
	// positions.
	var newReps []*Partition
	var newLinks []*Link
	for i, r := range reps {
		if i == best {
			continue
		}
		// A replica can only resume if it is not ahead of the new master
		// and the new master still has the records it needs.
		if r.Applied() <= promoted.Log().Head() && r.Applied() >= promoted.Log().Base() {
			newLinks = append(newLinks, c.startLinkFrom(promoted, r, true, r.Applied()))
			newReps = append(newReps, r)
		}
	}
	c.replicas[pi] = newReps
	c.links[pi] = newLinks
	promoted.NoteAppend()
	return nil
}

// ReplicationLag reports the maximum pending-record lag across all HA
// replica links of the cluster.
func (c *Cluster) ReplicationLag() int {
	lag, _, _ := c.ReplicationLagDetail()
	return lag
}

// ReplicationLagDetail reports the maximum lag across all HA replica links
// in records, pages and accounting bytes (the page pipeline's native lag
// units; Table 3 discussion).
func (c *Cluster) ReplicationLagDetail() (records, pages, bytes int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, links := range c.links {
		for _, l := range links {
			if n := l.Lag(); n > records {
				records = n
			}
			if n := l.LagPages(); n > pages {
				pages = n
			}
			if n := l.LagBytes(); n > bytes {
				bytes = n
			}
		}
	}
	return records, pages, bytes
}

// LinkErrors reports every terminal replication-link error in the cluster
// (HA and workspace links), tagged with its location. A sync link that
// acked a page and then failed to apply it shows up here: the master's
// durable watermark may already cover LSNs that replica will never serve,
// so a dead link is a durability-margin loss the operator must see, not a
// silent degradation.
func (c *Cluster) LinkErrors() []error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var errs []error
	for pi, links := range c.links {
		for _, l := range links {
			if err := l.Err(); err != nil {
				errs = append(errs, fmt.Errorf("partition %d replica link %d: %w", pi, l.id, err))
			}
		}
	}
	for name, ws := range c.workspace {
		for pi, l := range ws.links {
			if err := l.Err(); err != nil {
				errs = append(errs, fmt.Errorf("workspace %s partition %d: %w", name, pi, err))
			}
		}
	}
	return errs
}

// LinkReconnects totals session reconnects across every live link —
// under chaos this counts healed faults; on a healthy transport it stays
// zero.
func (c *Cluster) LinkReconnects() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, links := range c.links {
		for _, l := range links {
			total += l.Reconnects()
		}
	}
	for _, ws := range c.workspace {
		for _, l := range ws.links {
			total += l.Reconnects()
		}
	}
	return total
}

// Close stops everything.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.workspace {
		ws.close()
	}
	for _, links := range c.links {
		for _, l := range links {
			l.Stop()
		}
	}
	for _, s := range c.stagers {
		s.Close()
	}
	for _, p := range c.masters {
		p.Close()
	}
	for _, reps := range c.replicas {
		for _, p := range reps {
			p.Close()
		}
	}
	if c.transport != nil {
		c.transport.Close()
	}
}

// TableNames lists catalog tables.
func (c *Cluster) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.catalog))
	for n := range c.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// routeByUnique returns the partition holding the given unique key values
// when the shard key is derivable from them, or -1.
func (c *Cluster) routeByUnique(schema *types.Schema, vals []types.Value) int {
	posOf := map[int]int{}
	for i, col := range schema.UniqueKey {
		posOf[col] = i
	}
	shardVals := make([]types.Value, 0, len(schema.ShardColumns()))
	for _, col := range schema.ShardColumns() {
		i, ok := posOf[col]
		if !ok {
			return -1
		}
		shardVals = append(shardVals, vals[i])
	}
	return int(types.HashMany(shardVals) % uint64(c.cfg.Partitions))
}

// UpdateByUnique performs a routed point update and waits for durability.
func (c *Cluster) UpdateByUnique(table string, vals []types.Value, set func(types.Row) types.Row) (bool, error) {
	schema, err := c.Schema(table)
	if err != nil {
		return false, err
	}
	apply := func(pi int) (bool, error) {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return false, err
		}
		ok, err := tbl.UpdateByUnique(vals, set)
		if err != nil || !ok {
			return ok, err
		}
		p.NoteAppend()
		return true, p.WaitDurable(p.Log().Head()-1, c.cfg.CommitTimeout)
	}
	if pi := c.routeByUnique(schema, vals); pi >= 0 {
		return apply(pi)
	}
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		if ok, err := apply(pi); err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// DeleteByUnique performs a routed point delete and waits for durability.
func (c *Cluster) DeleteByUnique(table string, vals []types.Value) (bool, error) {
	schema, err := c.Schema(table)
	if err != nil {
		return false, err
	}
	apply := func(pi int) (bool, error) {
		p := c.Master(pi)
		tbl, err := p.Table(table)
		if err != nil {
			return false, err
		}
		ok, err := tbl.DeleteByUnique(vals)
		if err != nil || !ok {
			return ok, err
		}
		p.NoteAppend()
		return true, p.WaitDurable(p.Log().Head()-1, c.cfg.CommitTimeout)
	}
	if pi := c.routeByUnique(schema, vals); pi >= 0 {
		return apply(pi)
	}
	for pi := 0; pi < c.cfg.Partitions; pi++ {
		if ok, err := apply(pi); err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}
