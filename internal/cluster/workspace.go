package cluster

import (
	"errors"
	"fmt"
	"time"

	"s2db/internal/core"
	"s2db/internal/qos"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// Workspace is a set of read-only replica partitions provisioned on their
// own "hosts" (§3.2): they replicate recent data asynchronously from the
// primary workspace without acking commits, and pull older data files from
// blob storage directly, so heavy analytics run on isolated compute.
type Workspace struct {
	Name  string
	parts []*Partition
	links []*Link
}

// CreateWorkspace provisions a read-only workspace. With a blob store
// configured, each replica bootstraps from the latest snapshot and log
// chunks in blob storage and only streams the log tail from the master
// ("new replica databases get the snapshots and logs they need from blob
// storage and replicate the tail of the log ... from the master", §3.1);
// without one it replays the master's full log.
func (c *Cluster) CreateWorkspace(name string) (*Workspace, error) {
	if name == "" {
		return nil, fmt.Errorf("cluster: workspace name cannot be empty")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.workspace[name]; dup {
		return nil, fmt.Errorf("cluster: workspace %s already exists", name)
	}
	// Provision the workspace's decoded-vector cache partition first, so
	// every replica table scans (and invalidates) through its own budget
	// rather than the primary's.
	var wsCache core.DecodedVectorCache
	if c.cfg.CachePartitions != nil {
		h, err := c.cfg.CachePartitions.Attach(name)
		if err != nil {
			return nil, fmt.Errorf("workspace %s: %w", name, err)
		}
		wsCache = h
	}
	// Register the workspace as a QoS tenant before any link starts, so
	// its replication stream bills a real budget from the first page.
	if c.cfg.Governor != nil {
		c.cfg.Governor.Register(name)
	}
	ws := &Workspace{Name: name}
	fail := func(err error) (*Workspace, error) {
		ws.close()
		if c.cfg.CachePartitions != nil {
			c.cfg.CachePartitions.Detach(name)
		}
		if c.cfg.Governor != nil {
			c.cfg.Governor.Unregister(name)
		}
		return nil, err
	}
	for pi, master := range c.masters {
		rep := c.newReplicaPartition(pi, wsCache, name)
		// DDL: materialize the catalog on the new partition.
		for tname, schema := range c.catalog {
			if err := rep.CreateTable(tname, schema); err != nil {
				rep.Close()
				return fail(err)
			}
		}
		from := uint64(0)
		if c.cfg.Blob != nil {
			// Make sure blob storage is caught up enough that the master's
			// retained log covers the rest.
			c.stagers[pi].Step()
			lsn, err := c.bootstrapFromBlob(rep, pi)
			if err != nil {
				rep.Close()
				return fail(fmt.Errorf("workspace %s: partition %d: %w", name, pi, err))
			}
			from = lsn
		}
		link := c.startWorkspaceLinkFrom(master, rep, from, name)
		if err := link.Err(); err != nil {
			rep.Close()
			return fail(fmt.Errorf("workspace %s: partition %d: %w", name, pi, err))
		}
		ws.parts = append(ws.parts, rep)
		ws.links = append(ws.links, link)
	}
	c.workspace[name] = ws
	return ws, nil
}

// bootstrapFromBlob restores a partition replica from blob snapshots and
// log chunks, returning the LSN to stream the tail from.
func (c *Cluster) bootstrapFromBlob(rep *Partition, pi int) (uint64, error) {
	prefix := c.blobPrefix(pi)
	store := c.cfg.Blob
	// Latest snapshot, if any.
	snaps, err := store.List(prefix + "snap/")
	if err != nil {
		return 0, err
	}
	from := uint64(0)
	if len(snaps) > 0 {
		key := snaps[len(snaps)-1]
		var lsn uint64
		var wall int64
		if _, err := fmt.Sscanf(key[len(prefix+"snap/"):], "%d-%d", &lsn, &wall); err != nil {
			return 0, fmt.Errorf("bad snapshot key %s: %w", key, err)
		}
		data, err := store.Get(key)
		if err != nil {
			return 0, err
		}
		if _, err := decodeSnapshotBundle(rep, data); err != nil {
			return 0, err
		}
		rep.Log().TruncateBefore(lsn)
		rep.markApplied(lsn) // the snapshot covers everything below lsn
		from = lsn
	}
	// Replay log chunks from the snapshot position.
	return c.replayBlobLog(rep, pi, from)
}

// replayBlobLog applies blob-staged log chunks with LSN >= from to rep and
// returns the next LSN the replica needs. Chunks align with sealed log
// pages, so a chunk may begin below from; those records are skipped.
func (c *Cluster) replayBlobLog(rep *Partition, pi int, from uint64) (uint64, error) {
	store := c.cfg.Blob
	prefix := c.blobPrefix(pi)
	chunks, err := store.List(prefix + "log/")
	if err != nil {
		return from, err
	}
	for _, key := range chunks {
		recs, err := decodeChunk(store, key)
		if err != nil {
			return from, err
		}
		for _, rec := range recs {
			if rec.LSN < from {
				continue
			}
			if rec.LSN > from {
				return from, fmt.Errorf("gap in blob log at LSN %d (want %d)", rec.LSN, from)
			}
			if err := rep.ApplyRecord(rec); err != nil {
				return from, err
			}
			from = rec.LSN + 1
		}
	}
	return from, nil
}

// resyncLink rebuilds a workspace link that ended terminally — detached
// as a slow consumer (wal.ErrSlowConsumer), or down after losing its
// resume point or exhausting reconnects (ErrLinkDown): the replica
// catches up from blob-staged log chunks until the master's retained log
// covers the rest, then re-subscribes from its applied position.
func (c *Cluster) resyncLink(ws *Workspace, pi int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	master := c.masters[pi]
	rep := ws.parts[pi]
	ws.links[pi].Stop()
	if c.cfg.Blob != nil {
		c.stagers[pi].Step() // stage anything the master may have truncated
		if _, err := c.replayBlobLog(rep, pi, rep.Applied()); err != nil {
			return err
		}
	}
	link := c.startWorkspaceLinkFrom(master, rep, rep.Applied(), ws.Name)
	if err := link.Err(); err != nil {
		return err
	}
	ws.links[pi] = link
	return nil
}

func decodeChunk(store interface {
	Get(string) ([]byte, error)
}, key string) ([]wal.Record, error) {
	data, err := store.Get(key)
	if err != nil {
		return nil, err
	}
	return wal.DecodeRecords(data)
}

// QueryTargets returns per-partition snapshots of a table on the
// workspace's isolated compute, tagged with their leaf partitions —
// workspace queries fan out exactly like primary-cluster queries (§3.2).
func (w *Workspace) QueryTargets(table string) ([]LeafTarget, error) {
	targets := make([]LeafTarget, 0, len(w.parts))
	for pi, p := range w.parts {
		tbl, err := p.Table(table)
		if err != nil {
			return nil, err
		}
		targets = append(targets, LeafTarget{Partition: pi, View: tbl.Snapshot()})
	}
	return targets, nil
}

// Views returns the workspace's per-partition snapshots without partition
// tags.
func (w *Workspace) Views(table string) ([]*core.View, error) {
	targets, err := w.QueryTargets(table)
	if err != nil {
		return nil, err
	}
	views := make([]*core.View, len(targets))
	for i, t := range targets {
		views[i] = t.View
	}
	return views, nil
}

// resyncable reports whether a terminal link error heals by replaying
// blob-staged chunks and re-attaching: a slow-consumer detach, a link
// that went down (lost resume point, reconnect exhaustion), or a
// WAL-bandwidth shed — an over-budget workspace stream that re-attaches
// once it has caught up from blob chunks instead of the master's log.
func resyncable(err error) bool {
	return errors.Is(err, wal.ErrSlowConsumer) || errors.Is(err, ErrLinkDown) ||
		errors.Is(err, qos.ErrOverloaded)
}

// WaitCaughtUp blocks until every workspace partition has applied the
// master's current head. A link that ended terminally but recoverably —
// slow-consumer detach or ErrLinkDown — is resynced from blob-staged log
// chunks and re-attached before waiting.
func (c *Cluster) WaitCaughtUp(ws *Workspace, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for pi, p := range ws.parts {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("workspace %s: partition %d: catch-up timed out", ws.Name, pi)
			}
			if resyncable(ws.links[pi].Err()) {
				if rerr := c.resyncLink(ws, pi); rerr != nil {
					return fmt.Errorf("workspace %s: partition %d: resync: %w", ws.Name, pi, rerr)
				}
			}
			head := c.Master(pi).Log().Head()
			err := p.WaitApplied(head, time.Until(deadline))
			if err == nil {
				break
			}
			if lerr := ws.links[pi].Err(); lerr != nil {
				if resyncable(lerr) {
					continue // resync at the top of the loop
				}
				return fmt.Errorf("%w (link error: %v)", err, lerr)
			}
			return err
		}
	}
	return nil
}

// Lag returns the maximum link lag (records pending) across the workspace.
func (w *Workspace) Lag() int {
	lag := 0
	for _, l := range w.links {
		if n := l.Lag(); n > lag {
			lag = n
		}
	}
	return lag
}

// DetachWorkspace stops and removes a workspace ("can be attached and
// detached to the workspace on demand", §1).
func (c *Cluster) DetachWorkspace(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workspace[name]
	if !ok {
		return fmt.Errorf("cluster: no workspace %s", name)
	}
	ws.close()
	delete(c.workspace, name)
	if c.cfg.CachePartitions != nil {
		// Release the workspace's cache partition: its entries are discarded
		// and its budget returns to the pool for the remaining partitions.
		c.cfg.CachePartitions.Detach(name)
	}
	if c.cfg.Governor != nil {
		// Retire the QoS tenant: waiters are released, outstanding leases
		// drain harmlessly, and its share returns to the surviving tenants.
		c.cfg.Governor.Unregister(name)
	}
	return nil
}

func (w *Workspace) close() {
	for _, l := range w.links {
		l.Stop()
	}
	for _, p := range w.parts {
		p.Close()
	}
}

// PointInTimeRestore rebuilds a database's state as of the target wall
// clock time purely from blob storage (§3.2): for each partition it finds
// the newest snapshot at or before the target and replays blob log chunks
// up to the last record appended before it — the per-partition
// transactionally consistent point LP that "maps as closely as possible to
// the given PITR target wall clock time". The restored database is a fresh
// cluster with no replicas or staging (a restore target, not a running
// primary).
func PointInTimeRestore(cfg Config, target time.Time) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Blob == nil {
		return nil, fmt.Errorf("cluster: PITR requires a blob store")
	}
	restored := &Cluster{
		cfg:       cfg,
		transport: cfg.Transport,
		catalog:   make(map[string]*types.Schema),
		workspace: make(map[string]*Workspace),
	}
	for pi := 0; pi < cfg.Partitions; pi++ {
		files := NewPartitionFiles(fmt.Sprintf("%s/%d/", cfg.Name, pi), cfg.Blob, cfg.CacheBytes)
		tcfg := cfg.Table
		tcfg.Background = false
		p := newPartition(cfg.Name, pi, RoleMaster, tcfg, files, CommitLocal, 0, cfg.pageConfig())
		p.setMinSyncers(0)
		restored.masters = append(restored.masters, p)
		restored.replicas = append(restored.replicas, nil)
		restored.links = append(restored.links, nil)
		restored.stagers = append(restored.stagers, NewStager(p, files, nil, 0, 0))
	}
	return restored, nil
}

// RestoreTables performs the PITR replay for the given catalog. The caller
// supplies schemas because blob storage holds data, not DDL (the paper's
// PITR restores a database whose definition the control plane knows).
func (c *Cluster) RestoreTables(catalog map[string]*types.Schema, target time.Time) error {
	targetWall := target.UnixNano()
	for name, schema := range catalog {
		c.mu.Lock()
		c.catalog[name] = schema
		c.mu.Unlock()
		for _, p := range c.masters {
			if err := p.CreateTable(name, schema); err != nil {
				return err
			}
		}
	}
	for pi, p := range c.masters {
		prefix := c.blobPrefix(pi)
		store := c.cfg.Blob
		snaps, err := store.List(prefix + "snap/")
		if err != nil {
			return err
		}
		from := uint64(0)
		// Pick the newest snapshot taken at or before the target wall time.
		for i := len(snaps) - 1; i >= 0; i-- {
			var lsn uint64
			var wall int64
			if _, err := fmt.Sscanf(snaps[i][len(prefix+"snap/"):], "%d-%d", &lsn, &wall); err != nil {
				return err
			}
			if wall <= targetWall {
				data, err := store.Get(snaps[i])
				if err != nil {
					return err
				}
				if _, err := decodeSnapshotBundle(p, data); err != nil {
					return err
				}
				p.Log().TruncateBefore(lsn)
				from = lsn
				break
			}
		}
		chunks, err := store.List(prefix + "log/")
		if err != nil {
			return err
		}
		for _, key := range chunks {
			recs, err := decodeChunk(store, key)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				if rec.LSN < from {
					continue
				}
				if rec.Wall > targetWall {
					// The transactionally consistent point LP for this
					// partition (§3.2) has been reached.
					break
				}
				if rec.LSN > from {
					return fmt.Errorf("partition %d: gap in blob log at %d", pi, rec.LSN)
				}
				if err := p.ApplyRecord(rec); err != nil {
					return err
				}
				from = rec.LSN + 1
			}
		}
		p.NoteAppend()
	}
	return nil
}
