package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"s2db/internal/wal"
)

// Frame kinds on a TCP replication session. Each direction carries exactly
// one kind (master→replica pages, replica→master acks); the tag is a
// cheap stream-desync check on top of the page codec's own CRC.
const (
	frameKindPage = 1
	frameKindAck  = 2

	frameHeaderBytes = 5 // kind byte + u32 payload length
	// maxFramePayload bounds a frame read before allocating: the page wire
	// cap plus its header.
	maxFramePayload = wal.MaxWirePageBytes + 64
)

// TCPTransport ships replication over loopback TCP sockets: every page
// crosses a real kernel socket as a length-prefixed wire frame
// (wal.EncodePage — versioned header, CRC over the payload) and every ack
// returns as an explicit frame, so sync-replica durability genuinely
// round-trips a network path.
type TCPTransport struct {
	ln net.Listener

	// mu serializes Open so concurrent dial+accept pairs cannot cross:
	// each Open's accepted conn is guaranteed to be its own dialed conn.
	mu     sync.Mutex
	closed bool
}

// NewTCPTransport listens on an ephemeral loopback port.
func NewTCPTransport() (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: tcp transport: %w", err)
	}
	return &TCPTransport{ln: ln}, nil
}

// Addr returns the transport's listen address.
func (t *TCPTransport) Addr() net.Addr { return t.ln.Addr() }

// Open dials the transport's own listener and accepts the connection,
// returning the dialing side as the master half.
func (t *TCPTransport) Open() (Conn, Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil, errTransportClosed
	}
	dialed, err := net.Dial("tcp", t.ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	accepted, err := t.ln.Accept()
	if err != nil {
		dialed.Close()
		return nil, nil, err
	}
	return newTCPConn(dialed), newTCPConn(accepted), nil
}

// Close stops the listener; live sessions are closed by their links.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.ln.Close()
}

// tcpConn frames pages and acks over one socket. Reads and writes each
// take their own lock so a blocked RecvPage never delays SendAck on the
// same half.
type tcpConn struct {
	c net.Conn

	rmu sync.Mutex
	br  *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

func (c *tcpConn) writeFrame(kind byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [frameHeaderBytes]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *tcpConn) readFrame(wantKind byte) ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return nil, fmt.Errorf("cluster: frame claims %d bytes (max %d)", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	if hdr[0] != wantKind {
		return nil, fmt.Errorf("cluster: unexpected frame kind %d (want %d)", hdr[0], wantKind)
	}
	return payload, nil
}

func (c *tcpConn) SendPage(pg wal.Page) error {
	return c.writeFrame(frameKindPage, wal.EncodePage(pg))
}

func (c *tcpConn) RecvPage() (wal.Page, error) {
	payload, err := c.readFrame(frameKindPage)
	if err != nil {
		return wal.Page{}, err
	}
	return wal.DecodePage(payload)
}

func (c *tcpConn) SendAck(lsn uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], lsn)
	return c.writeFrame(frameKindAck, buf[:])
}

func (c *tcpConn) RecvAck() (uint64, error) {
	payload, err := c.readFrame(frameKindAck)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("cluster: ack frame has %d bytes", len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

func (c *tcpConn) Close() error { return c.c.Close() }
