package cluster

import (
	"fmt"
	"testing"
	"time"

	"s2db/internal/blob"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
)

func testSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "tag", Type: types.String},
	)
	s.UniqueKey = []int{0}
	s.ShardKey = []int{0}
	s.SecondaryKeys = [][]int{{2}}
	return s
}

func row(id, val int, tag string) types.Row {
	return types.Row{types.NewInt(int64(id)), types.NewInt(int64(val)), types.NewString(tag)}
}

func countAll(t *testing.T, views []*core.View) int64 {
	t.Helper()
	var n int64
	for _, v := range views {
		n += exec.NewScan(v, nil).Count()
	}
	return n
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Table.MaxSegmentRows == 0 {
		cfg.Table.MaxSegmentRows = 32
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable("items", testSchema()); err != nil {
		t.Fatal(err)
	}
	return c
}

func loadItems(t *testing.T, c *Cluster, n int) {
	t.Helper()
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = row(i, i*10, fmt.Sprintf("t%d", i%4))
	}
	if _, err := c.Insert("items", rows, core.InsertOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedInsertAndRead(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 4})
	loadItems(t, c, 200)
	views, err := c.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != 200 {
		t.Fatalf("total rows = %d", got)
	}
	// Rows are spread across partitions (hash partitioning, §2).
	nonEmpty := 0
	for _, v := range views {
		if exec.NewScan(v, nil).Count() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("only %d partitions hold data", nonEmpty)
	}
	// Routed point read.
	r, ok, err := c.GetByUnique("items", []types.Value{types.NewInt(123)})
	if err != nil || !ok || r[1].I != 1230 {
		t.Fatalf("GetByUnique = %v %v %v", r, ok, err)
	}
}

func TestSyncReplicationDurabilityAndConvergence(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 2, SyncReplicas: 1})
	loadItems(t, c, 100)
	// Durable watermark advanced past every record.
	for pi := 0; pi < 2; pi++ {
		p := c.Master(pi)
		if p.Log().Durable() != p.Log().Head() {
			t.Fatalf("partition %d durable %d != head %d", pi, p.Log().Durable(), p.Log().Head())
		}
	}
	// Replicas converge to the same contents.
	for pi := 0; pi < 2; pi++ {
		rep := c.replicas[pi][0]
		if err := rep.WaitApplied(c.Master(pi).Log().Head(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		mt, _ := c.Master(pi).Table("items")
		rt, _ := rep.Table("items")
		if got, want := rt.Snapshot().NumRows(), mt.Snapshot().NumRows(); got != want {
			t.Fatalf("partition %d replica rows %d != master %d", pi, got, want)
		}
	}
}

func TestUpdateDeleteFanout(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 3})
	loadItems(t, c, 90)
	n, err := c.UpdateWhere("items", core.Eq(2, types.NewString("t1")), func(r types.Row) types.Row {
		r[1] = types.NewInt(-1)
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 23 { // ids with i%4==1 among 0..89: 22 plus? compute: 1,5,...,89 -> 23 values
		t.Fatalf("updated %d", n)
	}
	d, err := c.DeleteWhere("items", core.Eq(2, types.NewString("t2")))
	if err != nil {
		t.Fatal(err)
	}
	if d != 22 { // 2,6,...,86
		t.Fatalf("deleted %d", d)
	}
	views, _ := c.Views("items")
	if got := countAll(t, views); got != 68 {
		t.Fatalf("remaining = %d", got)
	}
}

func TestFailoverPromotesReplica(t *testing.T) {
	runFailoverSuite(t, nil)
}

// runFailoverSuite is the failover scenario, parameterized over transport
// and chaos knobs (mutate edits the base config); its assertions are the
// same for every transport.
func runFailoverSuite(t *testing.T, mutate func(*Config)) {
	t.Helper()
	cfg := Config{Partitions: 1, SyncReplicas: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	c := newTestCluster(t, cfg)
	loadItems(t, c, 50)
	// Let replicas catch up, then fail the master.
	head := c.Master(0).Log().Head()
	for _, rep := range c.replicas[0] {
		if err := rep.WaitApplied(head, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FailMaster(0); err != nil {
		t.Fatal(err)
	}
	// No acknowledged write lost.
	views, _ := c.Views("items")
	if got := countAll(t, views); got != 50 {
		t.Fatalf("after failover rows = %d", got)
	}
	// The promoted master accepts writes and replicates to the remaining
	// replica.
	if _, err := c.Insert("items", []types.Row{row(1000, 1, "t0")}, core.InsertOptions{}); err != nil {
		t.Fatal(err)
	}
	r, ok, _ := c.GetByUnique("items", []types.Value{types.NewInt(1000)})
	if !ok || r[1].I != 1 {
		t.Fatal("write after failover lost")
	}
}

func TestBlobStagingUploadsAsync(t *testing.T) {
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: store,
		Table:        core.Config{MaxSegmentRows: 16},
		ChunkRecords: 8, SnapshotEvery: 1 << 30,
	})
	loadItems(t, c, 64)
	if err := c.Flush("items"); err != nil {
		t.Fatal(err)
	}
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	files, chunks, _, err := c.Stager(0).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 || chunks == 0 {
		t.Fatalf("staging did not upload: files=%d chunks=%d", files, chunks)
	}
	keys, _ := store.List("db/0/data/")
	if len(keys) == 0 {
		t.Fatal("no data files in blob store")
	}
	keys, _ = store.List("db/0/log/")
	if len(keys) == 0 {
		t.Fatal("no log chunks in blob store")
	}
}

func TestCommitDoesNotWaitForBlob(t *testing.T) {
	// With a very slow blob store, local-commit inserts stay fast (§3.1's
	// headline property).
	slow := blob.NewSimulator(blob.NewMemory(), 50*time.Millisecond, 0)
	c := newTestCluster(t, Config{Partitions: 1, Blob: slow})
	start := time.Now()
	loadItems(t, c, 20)
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("local commits took %v; they must not wait for the blob store", elapsed)
	}
}

func TestCommitBlobModeWaits(t *testing.T) {
	slow := blob.NewSimulator(blob.NewMemory(), 5*time.Millisecond, 0)
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: slow, CommitMode: CommitBlob,
		ChunkRecords: 1,
	})
	start := time.Now()
	loadItems(t, c, 4)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("blob-commit returned in %v; it must wait for uploads", elapsed)
	}
}

func TestWorkspaceProvisioningAndIsolation(t *testing.T) {
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 2, Blob: store,
		Table:        core.Config{MaxSegmentRows: 16},
		ChunkRecords: 8, SnapshotEvery: 16,
	})
	loadItems(t, c, 100)
	c.Flush("items")
	for pi := 0; pi < 2; pi++ {
		c.Master(pi).NoteAppend()
		c.Stager(pi).Step()
	}
	ws, err := c.CreateWorkspace("analytics")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(ws, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	views, err := ws.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != 100 {
		t.Fatalf("workspace rows = %d", got)
	}
	// New writes continue to flow to the workspace.
	if _, err := c.Insert("items", []types.Row{row(5000, 5, "t0")}, core.InsertOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(ws, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	views, _ = ws.Views("items")
	if got := countAll(t, views); got != 101 {
		t.Fatalf("workspace rows after write = %d", got)
	}
	// Detach.
	if err := c.DetachWorkspace("analytics"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateWorkspace("analytics"); err != nil {
		t.Fatal(err)
	}
}

func TestPITRRestoresPastState(t *testing.T) {
	runPITRSuite(t, nil)
}

// runPITRSuite is the point-in-time-restore scenario, parameterized over
// transport and chaos knobs for the primary cluster (the restored cluster
// replays from blob and has no links); assertions are transport-agnostic.
func runPITRSuite(t *testing.T, mutate func(*Config)) {
	t.Helper()
	store := blob.NewMemory()
	cfg := Config{
		Partitions: 2, Blob: store,
		Table:        core.Config{MaxSegmentRows: 16},
		ChunkRecords: 4, SnapshotEvery: 8,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := newTestCluster(t, cfg)
	loadItems(t, c, 40)
	// Capture "the past" as a wall-clock instant (PITR's target domain).
	pastTime := time.Now()
	time.Sleep(2 * time.Millisecond) // ensure later records get later wall times
	// More mutations after the restore point.
	if _, err := c.DeleteWhere("items", core.Eq(2, types.NewString("t0"))); err != nil {
		t.Fatal(err)
	}
	c.Insert("items", []types.Row{row(999, 9, "t9")}, core.InsertOptions{})
	c.Flush("items")
	for pi := 0; pi < 2; pi++ {
		c.Master(pi).NoteAppend()
		c.Stager(pi).Step()
	}

	restored, err := PointInTimeRestore(Config{
		Name: "db", Partitions: 2, Blob: store,
		Table: core.Config{MaxSegmentRows: 16},
	}, pastTime)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreTables(map[string]*types.Schema{"items": testSchema()}, pastTime); err != nil {
		t.Fatal(err)
	}
	views, err := restored.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != 40 {
		t.Fatalf("restored rows = %d, want the pre-delete 40", got)
	}
	// The post-restore-point row must not exist.
	if _, ok, _ := restored.GetByUnique("items", []types.Value{types.NewInt(999)}); ok {
		t.Fatal("PITR leaked a future row")
	}
	// And the deleted t0 rows must exist again.
	tbl, _ := restored.Master(0).Table("items")
	if tbl == nil {
		t.Fatal("missing restored table")
	}
}

func TestReplicationLagReported(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 1, SyncReplicas: 1, ReplicationLatency: time.Millisecond})
	loadItems(t, c, 10)
	// Lag is usually small; it must at least be a non-negative readable
	// metric and reach zero once the replica catches up.
	if err := c.replicas[0][0].WaitApplied(c.Master(0).Log().Head(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if lag := c.ReplicationLag(); lag != 0 {
		t.Fatalf("lag after catch-up = %d", lag)
	}
}

func TestBlobOutageDoesNotBlockWrites(t *testing.T) {
	sim := blob.NewSimulator(blob.NewMemory(), 0, 0)
	c := newTestCluster(t, Config{Partitions: 1, Blob: sim})
	sim.SetUnavailable(true)
	// Writes keep committing during the outage (§3.1: "short periods of
	// unavailability in the blob store doesn't affect the steady-state
	// workload").
	loadItems(t, c, 30)
	views, _ := c.Views("items")
	if got := countAll(t, views); got != 30 {
		t.Fatalf("rows during outage = %d", got)
	}
	sim.SetUnavailable(false)
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	if _, chunks, _, _ := c.Stager(0).Stats(); chunks == 0 {
		t.Fatal("staging did not resume after outage")
	}
}

func TestColdFileReadFallsBackToBlob(t *testing.T) {
	// A data file evicted from the local cache must be readable again from
	// blob storage (§3.1: cold data files are removed from local disk once
	// uploaded and fetched on demand).
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: store,
		CacheBytes:   1, // evict everything unpinned immediately
		Table:        core.Config{MaxSegmentRows: 16},
		ChunkRecords: 8,
	})
	loadItems(t, c, 64)
	if err := c.Flush("items"); err != nil {
		t.Fatal(err)
	}
	c.Master(0).NoteAppend()
	c.Stager(0).Step() // uploads files, unpins them, cache evicts
	tbl, _ := c.Master(0).Table("items")
	view := tbl.Snapshot()
	if len(view.Segs) == 0 {
		t.Fatal("no segments flushed")
	}
	// Reload every segment payload through the file layer.
	for _, m := range view.Segs {
		p := c.Master(0)
		data, err := p.files.LoadFile(m.File)
		if err != nil {
			t.Fatalf("cold read of %s: %v", m.File, err)
		}
		if len(data) == 0 {
			t.Fatalf("cold read of %s returned empty payload", m.File)
		}
	}
	if _, misses, _ := c.Master(0).files.Cache().Stats(); misses == 0 {
		t.Fatal("expected at least one cache miss served from blob storage")
	}
}

func TestWorkspaceBootstrapFromSnapshotWithSegments(t *testing.T) {
	// Regression: workspace bootstrap must be able to fetch segment data
	// files referenced by a blob snapshot manifest (the snapshot-first
	// restore path, not just chunk replay).
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: store,
		Table:        core.Config{MaxSegmentRows: 8},
		ChunkRecords: 2, SnapshotEvery: 1,
	})
	// Many single-row inserts so enough records exist for a snapshot.
	for i := 0; i < 40; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "t0")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush("items"); err != nil {
		t.Fatal(err)
	}
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	if err := c.Stager(0).Snapshot(); err != nil {
		t.Fatal(err)
	}
	_, _, snaps, _ := c.Stager(0).Stats()
	if snaps == 0 {
		t.Fatal("no snapshot taken")
	}
	ws, err := c.CreateWorkspace("snapws")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(ws, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	views, err := ws.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != 40 {
		t.Fatalf("workspace rows = %d, want 40", got)
	}
}

func TestWorkspaceSnapshotBootstrapThenLiveWrites(t *testing.T) {
	// A workspace bootstrapped from a snapshot must keep applying live
	// records whose LSNs continue from the snapshot position.
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: store,
		Table:        core.Config{MaxSegmentRows: 8},
		ChunkRecords: 2, SnapshotEvery: 1,
	})
	for i := 0; i < 20; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "t0")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	if err := c.Stager(0).Snapshot(); err != nil {
		t.Fatal(err)
	}
	ws, err := c.CreateWorkspace("livews")
	if err != nil {
		t.Fatal(err)
	}
	// Live writes after the snapshot bootstrap.
	for i := 100; i < 120; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "t1")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitCaughtUp(ws, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	views, _ := ws.Views("items")
	if got := countAll(t, views); got != 40 {
		t.Fatalf("workspace rows = %d, want 40", got)
	}
}

func TestFailoverUnderConcurrentWrites(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 1, SyncReplicas: 1})
	stop := make(chan struct{})
	acked := make(chan int64, 10000)
	var writerErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := c.Insert("items", []types.Row{row(i, i, "t0")}, core.InsertOptions{})
			if err != nil {
				// Writes may fail during the failover window; that's
				// allowed — only *acknowledged* writes must survive.
				writerErr = err
				return
			}
			acked <- int64(i)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.FailMaster(0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	_ = writerErr // failures during failover are acceptable
	close(acked)
	// Every acknowledged insert must be readable on the promoted master.
	for id := range acked {
		if _, ok, err := c.GetByUnique("items", []types.Value{types.NewInt(id)}); err != nil || !ok {
			t.Fatalf("acked row %d lost after failover (err=%v)", id, err)
		}
	}
}

func TestReplicationLatencyDelaysDurability(t *testing.T) {
	// With an injected replication latency, commit acknowledgement must
	// wait for the (slow) in-memory replication, not for anything else.
	c := newTestCluster(t, Config{
		Partitions: 1, SyncReplicas: 1,
		ReplicationLatency: 3 * time.Millisecond,
	})
	start := time.Now()
	if _, err := c.Insert("items", []types.Row{row(1, 1, "t0")}, core.InsertOptions{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("commit returned in %v; must wait for sync replication", elapsed)
	}
}

func TestFailMasterWithoutReplicaFails(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 1})
	if err := c.FailMaster(0); err == nil {
		t.Fatal("failover without replicas should error")
	}
}

func TestPITRBeforeMergeUsesRetainedHistory(t *testing.T) {
	// Merges retire segments locally, but blob storage retains their data
	// files and log history ("deleted data can be retained", §3.2): a PITR
	// to a pre-merge instant must still reconstruct the old state.
	store := blob.NewMemory()
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: store,
		Table:        core.Config{MaxSegmentRows: 8, MergeFanout: 2},
		ChunkRecords: 4,
	})
	for i := 0; i < 32; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "t0")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush("items")
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	past := time.Now()
	time.Sleep(2 * time.Millisecond)

	// Merge away the original segments, then mutate.
	tbl, _ := c.Master(0).Table("items")
	if !tbl.Merge() {
		t.Fatal("merge expected")
	}
	if _, err := c.DeleteWhere("items", core.Eq(2, types.NewString("t0"))); err != nil {
		t.Fatal(err)
	}
	c.Master(0).NoteAppend()
	c.Stager(0).Step()

	restored, err := PointInTimeRestore(Config{
		Name: "db", Partitions: 1, Blob: store,
		Table: core.Config{MaxSegmentRows: 8},
	}, past)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreTables(map[string]*types.Schema{"items": testSchema()}, past); err != nil {
		t.Fatal(err)
	}
	views, _ := restored.Views("items")
	if got := countAll(t, views); got != 32 {
		t.Fatalf("restored rows = %d, want the pre-merge 32", got)
	}
}

func TestDiskBlobStoreEndToEnd(t *testing.T) {
	// The on-disk blob store carries a full write→stage→workspace cycle.
	d, err := blob.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: d,
		Table:        core.Config{MaxSegmentRows: 16},
		ChunkRecords: 8, SnapshotEvery: 1,
	})
	loadItems(t, c, 48)
	c.Flush("items")
	c.Master(0).NoteAppend()
	c.Stager(0).Step()
	if err := c.Stager(0).Snapshot(); err != nil {
		t.Fatal(err)
	}
	ws, err := c.CreateWorkspace("disk-ws")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(ws, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	views, _ := ws.Views("items")
	if got := countAll(t, views); got != 48 {
		t.Fatalf("workspace rows via disk store = %d", got)
	}
}

func TestClusterPointOpsRouted(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 3})
	rows := make([]types.Row, 60)
	for i := range rows {
		rows[i] = row(i, i, "t0")
	}
	// BulkLoad through the cluster API (routes by shard key).
	if err := c.BulkLoad("items", rows); err != nil {
		t.Fatal(err)
	}
	views, _ := c.Views("items")
	if got := countAll(t, views); got != 60 {
		t.Fatalf("bulk loaded %d rows", got)
	}
	// Routed point update.
	ok, err := c.UpdateByUnique("items", []types.Value{types.NewInt(17)}, func(r types.Row) types.Row {
		r[1] = types.NewInt(-17)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("UpdateByUnique = %v, %v", ok, err)
	}
	r, found, _ := c.GetByUnique("items", []types.Value{types.NewInt(17)})
	if !found || r[1].I != -17 {
		t.Fatalf("updated row = %v", r)
	}
	// Missing key.
	ok, err = c.UpdateByUnique("items", []types.Value{types.NewInt(999)}, func(r types.Row) types.Row { return r })
	if err != nil || ok {
		t.Fatalf("missing UpdateByUnique = %v, %v", ok, err)
	}
	// Routed point delete.
	ok, err = c.DeleteByUnique("items", []types.Value{types.NewInt(17)})
	if err != nil || !ok {
		t.Fatalf("DeleteByUnique = %v, %v", ok, err)
	}
	if _, found, _ := c.GetByUnique("items", []types.Value{types.NewInt(17)}); found {
		t.Fatal("deleted row visible")
	}
	ok, _ = c.DeleteByUnique("items", []types.Value{types.NewInt(17)})
	if ok {
		t.Fatal("double delete reported true")
	}
	// Accessors.
	if c.Partitions() != 3 {
		t.Fatalf("Partitions = %d", c.Partitions())
	}
	if names := c.TableNames(); len(names) != 1 || names[0] != "items" {
		t.Fatalf("TableNames = %v", names)
	}
	if c.Master(0).Role() != RoleMaster {
		t.Fatal("master role wrong")
	}
}

func TestPointOpsBroadcastWhenNotRoutable(t *testing.T) {
	// Shard key (val) is not part of the unique key (id): point ops must
	// broadcast to all partitions and still find the row.
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
	)
	s.UniqueKey = []int{0}
	s.ShardKey = []int{1}
	c, err := New(Config{Partitions: 3, Table: core.Config{MaxSegmentRows: 32}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable("t", s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Insert("t", []types.Row{{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := c.UpdateByUnique("t", []types.Value{types.NewInt(11)}, func(r types.Row) types.Row {
		r[1] = types.NewInt(100)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("broadcast update = %v, %v", ok, err)
	}
	r, found, _ := c.GetByUnique("t", []types.Value{types.NewInt(11)})
	if !found || r[1].I != 100 {
		t.Fatalf("broadcast get = %v", r)
	}
	ok, err = c.DeleteByUnique("t", []types.Value{types.NewInt(11)})
	if err != nil || !ok {
		t.Fatalf("broadcast delete = %v, %v", ok, err)
	}
}
