package cluster

import (
	"testing"
	"time"

	"s2db/internal/blob"
	"s2db/internal/core"
	"s2db/internal/types"
)

// chaosTCP builds a loopback TCP transport wrapped in seeded chaos and
// returns the wrapper so tests can flip partitions and read fault stats.
func chaosTCP(t *testing.T, cfg ChaosConfig) *ChaosTransport {
	t.Helper()
	tr, err := NewTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	return NewChaosTransport(tr, cfg)
}

// TestChaosSyncReplicationConverges runs sequential sync-replicated commits
// over TCP with every fault class enabled. Reconnect-with-resume must make
// every commit durable; the faults show up only as recovery work, never as
// link errors or lost rows.
func TestChaosSyncReplicationConverges(t *testing.T) {
	chaos := chaosTCP(t, ChaosConfig{
		Seed: 11, Drop: 0.05, Duplicate: 0.05, Reorder: 0.05,
		DelayMax: 200 * time.Microsecond,
	})
	c := newTestCluster(t, Config{
		Partitions: 1, SyncReplicas: 1,
		Transport:        chaos,
		LinkStallTimeout: 20 * time.Millisecond,
	})
	const n = 150
	for i := 0; i < n; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "c")}, core.InsertOptions{}); err != nil {
			t.Fatalf("insert %d under chaos: %v", i, err)
		}
	}
	views, _ := c.Views("items")
	if got := countAll(t, views); got != n {
		t.Fatalf("rows after chaos workload = %d, want %d", got, n)
	}
	if errs := c.LinkErrors(); len(errs) != 0 {
		t.Fatalf("link errors after chaos workload: %v", errs)
	}
	st := chaos.Stats()
	if st.Dropped+st.Duplicated+st.Reordered == 0 {
		t.Fatal("chaos transport injected no faults; the test exercised nothing")
	}
	t.Logf("chaos faults: dropped=%d duplicated=%d reordered=%d reconnects=%d",
		st.Dropped, st.Duplicated, st.Reordered, c.LinkReconnects())
}

// TestChaosPartitionHealsByReconnect cuts the transport mid-workload. A
// sync commit issued during the partition must block (not fail), then
// complete once the partition heals, with the link reporting at least one
// reconnect and no terminal error.
func TestChaosPartitionHealsByReconnect(t *testing.T) {
	chaos := chaosTCP(t, ChaosConfig{Seed: 3})
	c := newTestCluster(t, Config{
		Partitions: 1, SyncReplicas: 1,
		Transport:        chaos,
		LinkStallTimeout: 10 * time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "pre")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	chaos.SetPartitioned(true)
	done := make(chan error, 1)
	go func() {
		_, err := c.Insert("items", []types.Row{row(500, 500, "cut")}, core.InsertOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("insert finished during partition (err=%v); durability must wait for the replica", err)
	case <-time.After(60 * time.Millisecond):
	}
	chaos.SetPartitioned(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("insert after partition healed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never completed after the partition healed")
	}
	if c.LinkReconnects() == 0 {
		t.Fatal("link healed without reconnecting; partition was not exercised")
	}
	if errs := c.LinkErrors(); len(errs) != 0 {
		t.Fatalf("link errors after heal: %v", errs)
	}
	r, ok, _ := c.GetByUnique("items", []types.Value{types.NewInt(500)})
	if !ok || r[1].I != 500 {
		t.Fatal("write issued during partition lost")
	}
}

// TestChaosFailoverSuite and TestChaosPITRSuite re-run the stock
// distributed suites, assertions unmodified, with replication riding a
// faulty TCP transport.
func TestChaosFailoverSuite(t *testing.T) { runFailoverSuite(t, withChaosTCP(t, 7)) }

func TestChaosPITRSuite(t *testing.T) {
	runPITRSuite(t, func(cfg *Config) {
		withChaosTCP(t, 9)(cfg)
		// The stock PITR suite has no replicas; add one so the workload's
		// durability actually crosses the chaotic transport.
		cfg.SyncReplicas = 1
	})
}

// TestChaosWorkspaceConverges points a read-only workspace at a chaotic
// transport: its async link must converge to zero lag through reconnects
// alone (no slow-consumer detach, no blob resync required).
func TestChaosWorkspaceConverges(t *testing.T) {
	chaos := chaosTCP(t, ChaosConfig{
		Seed: 5, Drop: 0.05, Duplicate: 0.05, Reorder: 0.05,
		DelayMax: 100 * time.Microsecond,
	})
	c := newTestCluster(t, Config{
		Partitions: 1, Blob: blob.NewMemory(),
		Transport:        chaos,
		LinkStallTimeout: 15 * time.Millisecond,
	})
	ws, err := c.CreateWorkspace("analytics")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i*2, "w")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitCaughtUp(ws, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	views, err := ws.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != n {
		t.Fatalf("workspace rows under chaos = %d, want %d", got, n)
	}
	if lag := ws.Lag(); lag != 0 {
		t.Fatalf("workspace lag after convergence = %d", lag)
	}
}
