package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"s2db/internal/core"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// withTCP returns a config mutation that routes replication over a fresh
// loopback TCP transport (closed by the cluster on Close).
func withTCP(t *testing.T) func(*Config) {
	t.Helper()
	return func(cfg *Config) {
		tr, err := NewTCPTransport()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Transport = tr
	}
}

// mildChaos is the seeded fault mix used across tests: every fault class
// on, at rates a link should ride out with a handful of reconnects.
func mildChaos(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed:      seed,
		Drop:      0.02,
		Duplicate: 0.02,
		Reorder:   0.02,
		DelayMax:  200 * time.Microsecond,
	}
}

// withChaosTCP wraps a fresh TCP transport in seeded chaos and tightens
// the stall timeout so lost frames heal quickly.
func withChaosTCP(t *testing.T, seed int64) func(*Config) {
	t.Helper()
	return func(cfg *Config) {
		tr, err := NewTCPTransport()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Transport = NewChaosTransport(tr, mildChaos(seed))
		if cfg.LinkStallTimeout == 0 {
			cfg.LinkStallTimeout = 25 * time.Millisecond
		}
	}
}

func transportPage(first uint64, n int) wal.Page {
	recs := make([]wal.Record, n)
	bytes := 0
	for i := range recs {
		recs[i] = wal.Record{
			LSN: first + uint64(i), Kind: wal.KindInsert,
			CommitTS: uint64(i + 1), Wall: int64(i + 1),
			Data: []byte{byte(i), byte(i >> 8), 0xab},
		}
		bytes += wal.RecordSize(recs[i])
	}
	return wal.Page{FirstLSN: first, EndLSN: first + uint64(n), Bytes: bytes, Records: recs}
}

// TestTransportConnRoundTrip drives both transports at the Conn level:
// pages one way, acks the other, close unblocking a pending read.
func TestTransportConnRoundTrip(t *testing.T) {
	transports := map[string]func(t *testing.T) Transport{
		"memory": func(t *testing.T) Transport { return NewMemoryTransport() },
		"tcp": func(t *testing.T) Transport {
			tr, err := NewTCPTransport()
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			tr := mk(t)
			defer tr.Close()
			mc, rc, err := tr.Open()
			if err != nil {
				t.Fatal(err)
			}
			want := transportPage(17, 3)
			sendErr := make(chan error, 1)
			go func() { sendErr <- mc.SendPage(want) }()
			got, err := rc.RecvPage()
			if err != nil {
				t.Fatal(err)
			}
			if err := <-sendErr; err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("page round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
			if err := rc.SendAck(want.EndLSN); err != nil {
				t.Fatal(err)
			}
			lsn, err := mc.RecvAck()
			if err != nil {
				t.Fatal(err)
			}
			if lsn != want.EndLSN {
				t.Fatalf("ack = %d, want %d", lsn, want.EndLSN)
			}
			// Closing one half unblocks the peer's pending read.
			done := make(chan error, 1)
			go func() {
				_, err := rc.RecvPage()
				done <- err
			}()
			mc.Close()
			rc.Close()
			if err := <-done; err == nil {
				t.Fatal("RecvPage returned nil after close")
			}
			// A closed transport refuses new sessions.
			tr.Close()
			if _, _, err := tr.Open(); err == nil {
				t.Fatal("Open succeeded on closed transport")
			}
		})
	}
}

// The distributed suites, promoted to run over loopback TCP with
// assertions unchanged.
func TestFailoverOverTCP(t *testing.T)           { runFailoverSuite(t, withTCP(t)) }
func TestPITROverTCP(t *testing.T)               { runPITRSuite(t, withTCP(t)) }
func TestSlowConsumerResyncOverTCP(t *testing.T) { runSlowConsumerResyncSuite(t, withTCP(t)) }
func TestGroupCommitPagesOverTCP(t *testing.T) {
	runFailoverSuite(t, func(cfg *Config) { withTCP(t)(cfg); cfg.GroupCommitInterval = 200 * time.Microsecond })
}
func TestReplicationLatencyOverTCP(t *testing.T) {
	runFailoverSuite(t, func(cfg *Config) { withTCP(t)(cfg); cfg.ReplicationLatency = time.Millisecond })
}

// failoverStateWith runs a deterministic single-partition workload with
// two sync replicas, fails the master mid-way, writes more through the
// promoted master, and returns the serialized table state. Transports must
// not change a byte of it.
func failoverStateWith(t *testing.T, mutate func(*Config)) []byte {
	t.Helper()
	cfg := Config{Partitions: 1, SyncReplicas: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	c := newTestCluster(t, cfg)
	for i := 0; i < 30; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i*3, "a")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	head := c.Master(0).Log().Head()
	for _, rep := range c.replicas[0] {
		if err := rep.WaitApplied(head, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FailMaster(0); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 110; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "b")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := c.Master(0).Table("items")
	if err != nil {
		t.Fatal(err)
	}
	return tbl.SerializeState(c.Master(0).Oracle().ReadTS())
}

// TestTransportEquivalence asserts the distributed scenarios produce
// byte-identical state no matter which transport replication rode over:
// the wire codec and the chaos harness are delivery details, never
// semantics.
func TestTransportEquivalence(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"memory", nil},
		{"tcp", withTCP(t)},
		{"tcp-chaos", withChaosTCP(t, 42)},
	}

	t.Run("failover", func(t *testing.T) {
		var base []byte
		for _, v := range variants {
			state := failoverStateWith(t, v.mutate)
			if base == nil {
				base = state
				continue
			}
			if !bytes.Equal(base, state) {
				t.Fatalf("%s failover state differs from %s", v.name, variants[0].name)
			}
		}
	})

	t.Run("pitr", func(t *testing.T) {
		// SyncReplicas puts the workload's durability on the transport
		// path; PITR then restores from the blob-staged log.
		withSync := func(mutate func(*Config)) func(*Config) {
			return func(cfg *Config) {
				cfg.SyncReplicas = 1
				if mutate != nil {
					mutate(cfg)
				}
			}
		}
		var base [][]byte
		for _, v := range variants {
			states := pitrStateUnder(t, 0, 0, withSync(v.mutate))
			if base == nil {
				base = states
				continue
			}
			for pi := range states {
				if !bytes.Equal(base[pi], states[pi]) {
					t.Fatalf("%s partition %d PITR state differs from %s", v.name, pi, variants[0].name)
				}
			}
		}
	})
}
