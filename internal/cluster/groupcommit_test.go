package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"s2db/internal/blob"
	"s2db/internal/core"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// TestGroupCommitConcurrentWriters drives concurrent writers through the
// group-commit path: records batch into shared pages, each page ships to
// both sync replicas in one latency hop, and the whole batch's durability
// waits release together.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	c := newTestCluster(t, Config{
		Partitions: 1, SyncReplicas: 2,
		ReplicationLatency:  500 * time.Microsecond,
		GroupCommitInterval: 200 * time.Microsecond,
		LogPageBytes:        32 << 10,
	})
	const writers, per = 8, 10
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := w*per + i
				if _, err := c.Insert("items", []types.Row{row(id, id*10, "g")}, core.InsertOptions{}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	p := c.Master(0)
	head := p.Log().Head()
	if d := p.Log().Durable(); d != head {
		t.Fatalf("durable %d != head %d after all commits returned", d, head)
	}
	if sealed := p.Log().PagesSealed(); sealed >= writers*per {
		t.Fatalf("group commit never batched: %d pages for %d records", sealed, writers*per)
	}
	for _, rep := range c.replicas[0] {
		if err := rep.WaitApplied(head, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	views, err := c.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != writers*per {
		t.Fatalf("rows = %d, want %d", got, writers*per)
	}
}

// TestFailoverWithGroupCommitPages checks that promotion preserves every
// acknowledged write when replication runs in page batches, and that the
// promoted master keeps accepting group-committed writes.
func TestFailoverWithGroupCommitPages(t *testing.T) {
	c := newTestCluster(t, Config{
		Partitions: 1, SyncReplicas: 2,
		ReplicationLatency:  200 * time.Microsecond,
		GroupCommitInterval: 200 * time.Microsecond,
	})
	loadItems(t, c, 50)
	head := c.Master(0).Log().Head()
	for _, rep := range c.replicas[0] {
		if err := rep.WaitApplied(head, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FailMaster(0); err != nil {
		t.Fatal(err)
	}
	views, _ := c.Views("items")
	if got := countAll(t, views); got != 50 {
		t.Fatalf("after failover rows = %d, want 50", got)
	}
	for i := 100; i < 120; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "p")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	views, _ = c.Views("items")
	if got := countAll(t, views); got != 70 {
		t.Fatalf("after post-failover writes rows = %d, want 70", got)
	}
}

// pitrStateWith runs one deterministic workload under the given page
// configuration, stages the log to blob storage, restores it with PITR and
// returns each partition's serialized table state. Every configuration must
// produce byte-identical states: page boundaries are a transport detail,
// not a semantic one.
func pitrStateWith(t *testing.T, interval time.Duration, pageBytes int) [][]byte {
	return pitrStateUnder(t, interval, pageBytes, nil)
}

// pitrStateUnder is pitrStateWith with transport/chaos knobs applied to
// the primary cluster (mutate edits the base config): the restored state
// must be byte-identical no matter what the workload's replication rode
// over, because durability and staging consume the same master log.
func pitrStateUnder(t *testing.T, interval time.Duration, pageBytes int, mutate func(*Config)) [][]byte {
	t.Helper()
	store := blob.NewMemory()
	cfg := Config{
		Name: "eqv", Partitions: 2, Blob: store,
		ChunkRecords: 8, SnapshotEvery: 1 << 30,
		GroupCommitInterval: interval,
		LogPageBytes:        pageBytes,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := newTestCluster(t, cfg)
	// One row per Insert keeps the per-partition record sequence (and so
	// the commit-timestamp sequence) identical across configurations.
	for i := 0; i < 40; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i*10, fmt.Sprintf("t%d", i%4))}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush("items"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateWhere("items", core.Eq(2, types.NewString("t1")), func(r types.Row) types.Row {
		r[1] = types.NewInt(-7)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteWhere("items", core.Eq(2, types.NewString("t2"))); err != nil {
		t.Fatal(err)
	}
	// Trailing unflushed inserts: with a large page size and no seal timer
	// these stay in the open page, so staging must cut a partial trailing
	// chunk below the durable watermark.
	for i := 100; i < 110; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "tail")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond) // all record wall times < target
	target := time.Now()
	for pi := 0; pi < 2; pi++ {
		c.Master(pi).NoteAppend()
		c.Stager(pi).Step()
		if _, chunks, _, err := c.Stager(pi).Stats(); err != nil || chunks == 0 {
			t.Fatalf("partition %d staged no chunks (err %v)", pi, err)
		}
	}
	if interval >= time.Hour {
		// Nothing ever sealed: every staged chunk came from the open page.
		for pi := 0; pi < 2; pi++ {
			if n := c.Master(pi).Log().PagesSealed(); n != 0 {
				t.Fatalf("partition %d sealed %d pages; the partial-page run must seal none", pi, n)
			}
		}
	}
	restored, err := PointInTimeRestore(Config{
		Name: "eqv", Partitions: 2, Blob: store,
		Table: core.Config{MaxSegmentRows: 32},
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreTables(map[string]*types.Schema{"items": testSchema()}, target); err != nil {
		t.Fatal(err)
	}
	states := make([][]byte, 2)
	for pi := range states {
		tbl, err := restored.Master(pi).Table("items")
		if err != nil {
			t.Fatal(err)
		}
		states[pi] = tbl.SerializeState(restored.Master(pi).Oracle().ReadTS())
	}
	return states
}

// TestPITRPageAlignedReplayEquivalence replays the same workload through
// three page configurations — per-record (the seed behavior), small
// group-commit pages, and one never-sealing page that forces every blob
// chunk to be a partial trailing page — and asserts byte-identical restored
// state.
func TestPITRPageAlignedReplayEquivalence(t *testing.T) {
	perRecord := pitrStateWith(t, 0, 0)
	paged := pitrStateWith(t, 250*time.Microsecond, 1<<14)
	partial := pitrStateWith(t, time.Hour, 1<<20)
	for pi := range perRecord {
		if !bytes.Equal(perRecord[pi], paged[pi]) {
			t.Fatalf("partition %d: paged replay state differs from per-record state", pi)
		}
		if !bytes.Equal(perRecord[pi], partial[pi]) {
			t.Fatalf("partition %d: partial-page replay state differs from per-record state", pi)
		}
	}
}

// TestWorkspaceSlowConsumerResyncsFromBlob stalls a workspace link behind a
// tiny subscription budget until the WAL detaches it, then checks that
// WaitCaughtUp heals the workspace from blob-staged log chunks.
func TestWorkspaceSlowConsumerResyncsFromBlob(t *testing.T) {
	runSlowConsumerResyncSuite(t, nil)
}

// runSlowConsumerResyncSuite is the workspace slow-consumer resync
// scenario, parameterized over transport knobs; assertions are the same
// for every transport.
func runSlowConsumerResyncSuite(t *testing.T, mutate func(*Config)) {
	t.Helper()
	store := blob.NewMemory()
	cfg := Config{
		Partitions: 1, Blob: store,
		ChunkRecords: 8, SnapshotEvery: 1 << 30,
		ReplicationLatency: 2 * time.Millisecond,
		SubscriptionBudget: 256,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := newTestCluster(t, cfg)
	ws, err := c.CreateWorkspace("analytics")
	if err != nil {
		t.Fatal(err)
	}
	// Per-record pages trickle through the 2ms link while the master
	// appends far faster than the budget allows to buffer.
	for i := 0; i < 80; i++ {
		if _, err := c.Insert("items", []types.Row{row(i, i, "w")}, core.InsertOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !errors.Is(ws.links[0].Err(), wal.ErrSlowConsumer) {
		if time.Now().After(deadline) {
			t.Fatal("workspace link was never detached as a slow consumer")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.WaitCaughtUp(ws, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	views, err := ws.Views("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, views); got != 80 {
		t.Fatalf("workspace rows after resync = %d, want 80", got)
	}
	if lag := ws.Lag(); lag != 0 {
		t.Fatalf("workspace lag after catch-up = %d", lag)
	}
}

// BenchmarkDurableRecompute measures the append + 4-sync-replica ack path
// that recomputes the durable watermark (the satellite fix replaced a
// selection sort plus per-advance channel churn with a sorted recompute
// gated on registered waiters).
func BenchmarkDurableRecompute(b *testing.B) {
	p := newPartition("bench", 0, RoleMaster, core.Config{}, NewPartitionFiles("bench/0/", nil, 0), CommitLocal, 0, wal.PageConfig{})
	p.setMinSyncers(4)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn := p.Log().Append(wal.KindInsert, uint64(i+1), payload)
		for r := 1; r <= 4; r++ {
			p.Ack(r, lsn+1)
		}
	}
}
