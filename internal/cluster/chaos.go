package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/wal"
)

// ChaosConfig parameterizes transport fault injection. All probabilities
// are per-frame in [0,1]; the RNG is seeded so a failing run reproduces.
type ChaosConfig struct {
	// Seed seeds the fault RNG (zero means 1).
	Seed int64
	// Drop is the probability a page frame is silently lost in transit.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Reorder is the probability a page frame is held back and delivered
	// after the next page instead of before it.
	Reorder float64
	// DelayMax adds a uniform extra delay in [0, DelayMax) per frame.
	DelayMax time.Duration
	// AckDrop is the probability an ack frame is lost; zero reuses Drop.
	AckDrop float64
}

// ChaosStats counts injected faults since the transport was created.
type ChaosStats struct {
	Dropped, Duplicated, Reordered int64
}

// ChaosTransport wraps any Transport with seeded fault injection:
// drop/delay/reorder/duplicate at frame granularity, plus an on/off
// network partition that silently eats every frame and fails new
// sessions. Links survive all of it through reconnect-with-resume: pages
// are idempotent to re-deliver (the receiver trims against its applied
// watermark) and acks are cumulative, so every fault heals once a fresh
// session announces the replica's position.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	dropped    atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
}

// NewChaosTransport wraps inner with fault injection.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.AckDrop == 0 {
		cfg.AckDrop = cfg.Drop
	}
	return &ChaosTransport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetPartitioned toggles a full network partition: while set, every frame
// is dropped and Open fails, so in-flight commits stall until the
// partition heals and the link reconnects.
func (t *ChaosTransport) SetPartitioned(v bool) { t.partitioned.Store(v) }

// Partitioned reports whether the network is currently partitioned.
func (t *ChaosTransport) Partitioned() bool { return t.partitioned.Load() }

// Stats returns fault counts since creation.
func (t *ChaosTransport) Stats() ChaosStats {
	return ChaosStats{
		Dropped:    t.dropped.Load(),
		Duplicated: t.duplicated.Load(),
		Reordered:  t.reordered.Load(),
	}
}

// Open establishes a session on the inner transport with both halves
// wrapped, so faults hit page frames on the master side and ack frames on
// the replica side.
func (t *ChaosTransport) Open() (Conn, Conn, error) {
	if t.partitioned.Load() {
		return nil, nil, fmt.Errorf("cluster: chaos: network partitioned")
	}
	m, r, err := t.inner.Open()
	if err != nil {
		return nil, nil, err
	}
	return &chaosConn{Conn: m, t: t}, &chaosConn{Conn: r, t: t}, nil
}

// Close closes the inner transport.
func (t *ChaosTransport) Close() error { return t.inner.Close() }

func (t *ChaosTransport) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	v := t.rng.Float64()
	t.mu.Unlock()
	return v < p
}

func (t *ChaosTransport) extraDelay() time.Duration {
	if t.cfg.DelayMax <= 0 {
		return 0
	}
	t.mu.Lock()
	d := time.Duration(t.rng.Int63n(int64(t.cfg.DelayMax)))
	t.mu.Unlock()
	return d
}

// chaosConn injects faults on the send side of either half. A conn has a
// single sender goroutine, so the held reorder slot needs no contention
// handling beyond the mutex.
type chaosConn struct {
	Conn
	t *ChaosTransport

	mu   sync.Mutex
	held *wal.Page // page withheld by a reorder fault
}

func (c *chaosConn) SendPage(pg wal.Page) error {
	t := c.t
	if t.partitioned.Load() || t.roll(t.cfg.Drop) {
		t.dropped.Add(1)
		return nil // the link's stall detector notices and reconnects
	}
	if d := t.extraDelay(); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	held := c.held
	c.held = nil
	if held == nil && t.roll(t.cfg.Reorder) {
		p := pg
		c.held = &p
		c.mu.Unlock()
		t.reordered.Add(1)
		return nil // delivered (out of order) with the next page
	}
	c.mu.Unlock()
	if err := c.Conn.SendPage(pg); err != nil {
		return err
	}
	if t.roll(t.cfg.Duplicate) {
		t.duplicated.Add(1)
		if err := c.Conn.SendPage(pg); err != nil {
			return err
		}
	}
	if held != nil {
		// The withheld page lands after its successor: the receiver sees a
		// gap, tears the session down and resumes from its applied LSN.
		return c.Conn.SendPage(*held)
	}
	return nil
}

func (c *chaosConn) SendAck(lsn uint64) error {
	t := c.t
	if t.partitioned.Load() || t.roll(t.cfg.AckDrop) {
		t.dropped.Add(1)
		return nil // safe: acks are cumulative and re-announced on reconnect
	}
	if d := t.extraDelay(); d > 0 {
		time.Sleep(d)
	}
	if err := c.Conn.SendAck(lsn); err != nil {
		return err
	}
	if t.roll(t.cfg.Duplicate) {
		t.duplicated.Add(1)
		return c.Conn.SendAck(lsn)
	}
	return nil
}
