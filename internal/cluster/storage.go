package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"s2db/internal/blob"
	"s2db/internal/wal"
)

// PartitionFiles implements core.FileStore over the local data-file cache
// with asynchronous blob staging (§3.1): newly written segment files are
// pinned locally and queued for upload; once uploaded they become evictable
// and cold reads fall through to the blob store.
type PartitionFiles struct {
	prefix string // blob key prefix, e.g. "files/db/0/"
	cache  *blob.FileCache
	store  blob.Store // nil when running without separated storage

	mu      sync.Mutex
	pending []string
	pendCh  chan struct{}
}

// NewPartitionFiles builds the file layer. store may be nil (shared-nothing
// mode: files stay local and pinned).
func NewPartitionFiles(prefix string, store blob.Store, cacheBytes int) *PartitionFiles {
	var backing blob.Store
	if store != nil {
		// Data files live under "<prefix>data/" in the blob store; cold
		// cache misses must read them back from the same namespace the
		// stager uploads to.
		backing = prefixedStore{store: store, prefix: prefix + "data/"}
	} else {
		backing = blob.NewMemory() // never hit: files stay pinned
	}
	if cacheBytes <= 0 {
		cacheBytes = 1 << 30
	}
	return &PartitionFiles{
		prefix: prefix,
		cache:  blob.NewFileCache(backing, cacheBytes),
		store:  store,
		pendCh: make(chan struct{}, 1),
	}
}

// prefixedStore namespaces a shared blob store per partition.
type prefixedStore struct {
	store  blob.Store
	prefix string
}

func (s prefixedStore) Put(key string, data []byte) error { return s.store.Put(s.prefix+key, data) }
func (s prefixedStore) Get(key string) ([]byte, error)    { return s.store.Get(s.prefix + key) }
func (s prefixedStore) Delete(key string) error           { return s.store.Delete(s.prefix + key) }
func (s prefixedStore) List(prefix string) ([]string, error) {
	keys, err := s.store.List(s.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, s.prefix)
	}
	return out, nil
}

// SaveFile implements core.FileStore: the file is pinned in the local cache
// and queued for asynchronous upload.
func (f *PartitionFiles) SaveFile(name string, data []byte) error {
	f.cache.AddLocal(name, append([]byte(nil), data...))
	if f.store != nil {
		f.mu.Lock()
		f.pending = append(f.pending, name)
		f.mu.Unlock()
		select {
		case f.pendCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// LoadFile implements core.FileStore: local cache first, blob store on
// miss.
func (f *PartitionFiles) LoadFile(name string) ([]byte, error) {
	return f.cache.Get(name)
}

// LoadFileCtx implements core.FileLoaderCtx: a caller whose ctx dies while
// a cold read is in flight unblocks immediately; the shared fetch keeps
// running so other waiters (and the cache) still get the payload.
func (f *PartitionFiles) LoadFileCtx(ctx context.Context, name string) ([]byte, error) {
	return f.cache.GetCtx(ctx, name)
}

// RemoveFile implements core.FileStore: drops the local copy only — blob
// history is retained for PITR (§3.2: "deleted data can be retained").
func (f *PartitionFiles) RemoveFile(name string) error {
	f.cache.Remove(name)
	return nil
}

// Cache exposes the underlying file cache for stats.
func (f *PartitionFiles) Cache() *blob.FileCache { return f.cache }

// drainPending uploads queued files; returns the number uploaded.
func (f *PartitionFiles) drainPending() (int, error) {
	for n := 0; ; n++ {
		f.mu.Lock()
		if len(f.pending) == 0 {
			f.mu.Unlock()
			return n, nil
		}
		name := f.pending[0]
		f.pending = f.pending[1:]
		f.mu.Unlock()
		data, err := f.cache.Get(name)
		if err != nil {
			return n, err
		}
		if err := f.store.Put(f.prefix+"data/"+name, data); err != nil {
			// Requeue and surface: the stager retries (blob outages must
			// not affect the steady-state workload, §3.1).
			f.mu.Lock()
			f.pending = append([]string{name}, f.pending...)
			f.mu.Unlock()
			return n, err
		}
		f.cache.MarkUploaded(name)
	}
}

// Stager is the per-partition background process of §3.1: it uploads data
// files as soon as they are committed, ships log chunks below the durable
// watermark, and takes periodic snapshots to bound recovery.
type Stager struct {
	part  *Partition
	files *PartitionFiles
	store blob.Store

	chunkRecords    int
	snapshotEvery   int
	lastSnapshotLSN uint64

	stop chan struct{}
	wg   sync.WaitGroup

	mu            sync.Mutex
	uploadedFiles int
	chunksPut     int
	snapshotsPut  int
	lastErr       error
}

// NewStager wires a stager for a master partition.
func NewStager(p *Partition, files *PartitionFiles, store blob.Store, chunkRecords, snapshotEvery int) *Stager {
	if chunkRecords <= 0 {
		chunkRecords = 256
	}
	if snapshotEvery <= 0 {
		snapshotEvery = 4096
	}
	return &Stager{
		part: p, files: files, store: store,
		chunkRecords: chunkRecords, snapshotEvery: snapshotEvery,
		stop: make(chan struct{}),
	}
}

// Backoff bounds for staging retries after a blob error (injected outages
// must not turn the stager into a hot retry loop, §3.1).
const (
	stagerBackoffMin = time.Millisecond
	stagerBackoffMax = 100 * time.Millisecond
)

// Start launches the staging loop. The loop is event-driven: it blocks on
// a pending-file signal or a durable-watermark advance instead of polling,
// and after a blob error it retries with exponential backoff (capped at
// stagerBackoffMax) until the store recovers.
func (s *Stager) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var backoff time.Duration
		retry := time.NewTimer(time.Hour)
		retry.Stop()
		defer retry.Stop()
		err := s.step() // catch up on anything staged before Start
		for {
			var retryC <-chan time.Time
			if err != nil {
				switch {
				case backoff < stagerBackoffMin:
					backoff = stagerBackoffMin
				case backoff < stagerBackoffMax:
					backoff *= 2
					if backoff > stagerBackoffMax {
						backoff = stagerBackoffMax
					}
				}
				retry.Reset(backoff)
				retryC = retry.C
			} else {
				backoff = 0
			}
			select {
			case <-s.stop:
				s.step() // final drain
				return
			case <-s.files.pendCh:
			case <-s.part.DurableNotify():
			case <-retryC:
				retryC = nil
			}
			if retryC != nil {
				// Woken by new work, not the timer: clear the pending retry
				// so the next Reset starts from an empty channel.
				if !retry.Stop() {
					<-retry.C
				}
			}
			err = s.step()
		}
	}()
}

// Step performs one staging round synchronously (exported for tests and
// deterministic harness runs).
func (s *Stager) Step() { _ = s.step() }

func (s *Stager) step() error {
	if s.store == nil {
		return nil
	}
	var firstErr error
	if n, err := s.files.drainPending(); err != nil {
		s.note(err)
		firstErr = err
	} else if n > 0 {
		s.mu.Lock()
		s.uploadedFiles += n
		s.mu.Unlock()
	}
	// Ship log chunks below the durable watermark ("the tail of the log
	// newer than this position is still receiving active writes, thus
	// these newer log pages are never uploaded", §3.1). Chunks are cut on
	// the sealed-page boundaries replication shipped; only the final chunk
	// below the watermark may be a partial trailing page.
	for {
		uploaded := s.part.Uploaded()
		durable := s.part.Log().Durable()
		if durable <= uploaded {
			break
		}
		recs, end, err := s.part.Log().ChunkAt(uploaded, durable, s.chunkRecords)
		if err != nil {
			s.note(err)
			return err
		}
		if end <= uploaded {
			break
		}
		key := fmt.Sprintf("log/%016d", uploaded)
		if err := s.store.Put(s.files.prefix+key, wal.EncodeRecords(recs)); err != nil {
			s.note(err)
			return err
		}
		s.part.markUploaded(end)
		s.mu.Lock()
		s.chunksPut++
		s.mu.Unlock()
	}
	// Periodic snapshot of rowstore state (§3.1: snapshots go straight to
	// blob storage).
	if s.part.Uploaded()-s.lastSnapshotLSN >= uint64(s.snapshotEvery) {
		if err := s.Snapshot(); err != nil {
			s.note(err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Snapshot serializes every table at the current snapshot timestamp and
// uploads the bundle keyed by the log position it covers and the wall
// clock (PITR selects snapshots by wall time, §3.2).
func (s *Stager) Snapshot() error {
	if s.store == nil {
		return nil
	}
	lsn := s.part.Uploaded()
	ts := s.part.Oracle().ReadTS()
	bundle := encodeSnapshotBundle(s.part, ts)
	key := fmt.Sprintf("snap/%016d-%020d", lsn, time.Now().UnixNano())
	if err := s.store.Put(s.files.prefix+key, bundle); err != nil {
		return err
	}
	s.lastSnapshotLSN = lsn
	s.mu.Lock()
	s.snapshotsPut++
	s.mu.Unlock()
	// The local log below the snapshotted-and-uploaded position is no
	// longer needed for recovery. Truncation can invalidate a downed
	// link's resume point: a reconnect that resubscribes below the new
	// base turns terminally ErrLinkDown, and the owner re-heals from the
	// blob chunks staged here (resyncLink).
	s.part.Log().TruncateBefore(lsn)
	return nil
}

func (s *Stager) note(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// Stats reports staging counters (files uploaded, chunks, snapshots, last
// error).
func (s *Stager) Stats() (files, chunks, snapshots int, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploadedFiles, s.chunksPut, s.snapshotsPut, s.lastErr
}

// Close stops the stager after a final drain.
func (s *Stager) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// encodeSnapshotBundle serializes all tables of a partition at ts.
func encodeSnapshotBundle(p *Partition, ts uint64) []byte {
	tables := p.Tables()
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.AppendUvarint(buf, ts)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		state := tables[n].SerializeState(ts)
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
		buf = binary.AppendUvarint(buf, uint64(len(state)))
		buf = append(buf, state...)
	}
	return buf
}

// decodeSnapshotBundle restores all tables of a partition from a bundle.
func decodeSnapshotBundle(p *Partition, data []byte) (ts uint64, err error) {
	ts, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, fmt.Errorf("cluster: bad snapshot ts")
	}
	pos := k
	n, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return 0, fmt.Errorf("cluster: bad snapshot table count")
	}
	pos += k
	for i := uint64(0); i < n; i++ {
		nl, k := binary.Uvarint(data[pos:])
		if k <= 0 || pos+k+int(nl) > len(data) {
			return 0, fmt.Errorf("cluster: bad snapshot table name")
		}
		name := string(data[pos+k : pos+k+int(nl)])
		pos += k + int(nl)
		sl, k := binary.Uvarint(data[pos:])
		if k <= 0 || pos+k+int(sl) > len(data) {
			return 0, fmt.Errorf("cluster: bad snapshot state")
		}
		state := data[pos+k : pos+k+int(sl)]
		pos += k + int(sl)
		tbl, err := p.Table(name)
		if err != nil {
			return 0, err
		}
		if err := tbl.RestoreState(state, ts); err != nil {
			return 0, err
		}
	}
	return ts, nil
}
