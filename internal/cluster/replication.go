package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/wal"
)

// Link streams one master partition's log to a replica partition in whole
// pages: a sealed page ships as soon as the master seals it — before its
// transactions "commit" in any global sense — which is the out-of-order/
// early replication property that keeps commit latency low and predictable
// (§3). Each page pays the injected hop latency once and sync links ack
// once per page (in-memory durability) before applying, so commit cost
// amortizes across every writer whose records share the page.
type Link struct {
	master  *Partition
	replica *Partition
	syncAck bool
	latency time.Duration
	id      int

	sub  *wal.Subscription
	stop chan struct{}
	wg   sync.WaitGroup

	applyErr atomic.Value // error
}

// StartLink subscribes the replica from LSN 0.
func StartLink(master, replica *Partition, syncAck bool, latency time.Duration, id int) *Link {
	return StartLinkFrom(master, replica, syncAck, latency, id, replica.Log().Head())
}

// StartLinkFrom subscribes the replica from a specific LSN (resuming after
// restore or failover).
func StartLinkFrom(master, replica *Partition, syncAck bool, latency time.Duration, id int, from uint64) *Link {
	sub, err := master.Log().Subscribe(from)
	if err != nil {
		// The master has truncated past `from`; the caller must restore
		// the replica from blob first. Surface via a dead link.
		l := &Link{master: master, replica: replica, id: id, stop: make(chan struct{})}
		l.applyErr.Store(err)
		return l
	}
	l := &Link{
		master: master, replica: replica, syncAck: syncAck,
		latency: latency, id: id, sub: sub,
		stop: make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l
}

func (l *Link) run() {
	defer l.wg.Done()
	for {
		pg, ok := l.sub.NextPage() // Stop cancels the subscription, waking us
		if !ok {
			// A budget detachment (slow consumer) is a terminal link error;
			// the owner must re-attach after catching up from blob chunks.
			if err := l.sub.Err(); err != nil {
				l.applyErr.Store(err)
			}
			return
		}
		select {
		case <-l.stop:
			return
		default:
		}
		if l.latency > 0 {
			time.Sleep(l.latency) // one hop for the whole page
		}
		// Ack on receipt: the page is now "replicated in-memory" (§3).
		if l.syncAck {
			l.master.Ack(l.id, pg.EndLSN)
		}
		if err := l.replica.ApplyPage(pg); err != nil {
			l.applyErr.Store(err)
			return
		}
	}
}

// Lag returns the number of records shipped but not yet consumed.
func (l *Link) Lag() int {
	if l.sub == nil {
		return 0
	}
	return l.sub.Lag()
}

// LagBytes returns the accounting bytes shipped but not yet consumed.
func (l *Link) LagBytes() int {
	if l.sub == nil {
		return 0
	}
	return l.sub.LagBytes()
}

// LagPages returns the pages shipped but not yet consumed.
func (l *Link) LagPages() int {
	if l.sub == nil {
		return 0
	}
	return l.sub.LagPages()
}

// Err returns a terminal apply error, if any.
func (l *Link) Err() error {
	if v := l.applyErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Stop tears the link down.
func (l *Link) Stop() {
	select {
	case <-l.stop:
		return
	default:
		close(l.stop)
	}
	if l.sub != nil {
		l.sub.Cancel()
	}
	l.wg.Wait()
}
