package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/wal"
)

// ErrLinkDown reports a replication link that gave up: either the master
// truncated past the replica's position so no subscription can resume, or
// the link exhausted its reconnect budget without making progress. The
// owner must rebuild the replica out of band — workspaces heal it by
// replaying blob-staged log chunks (resyncLink), exactly like a slow-
// consumer detach.
var ErrLinkDown = errors.New("cluster: replication link down")

const (
	// DefaultLinkStallTimeout is how long a link tolerates shipped-but-
	// unacknowledged pages with no progress before it assumes the session
	// lost a frame and reconnects (Config.LinkStallTimeout overrides).
	DefaultLinkStallTimeout = 500 * time.Millisecond

	linkBackoffMin = time.Millisecond
	linkBackoffMax = 50 * time.Millisecond
	// maxLinkAttempts bounds consecutive reconnects with zero apply
	// progress before the link turns terminally ErrLinkDown. With capped
	// backoff this rides out partitions of a couple of seconds.
	maxLinkAttempts = 40
)

// fatalLinkError marks a session error as terminal: reconnecting cannot
// help (slow-consumer detach, apply failure). Everything else a session
// reports is transient and handled by reconnect-with-resume.
type fatalLinkError struct{ err error }

func (e fatalLinkError) Error() string { return e.err.Error() }
func (e fatalLinkError) Unwrap() error { return e.err }

// Link streams one master partition's log to a replica partition in whole
// pages over a Transport session: a sealed page ships as soon as the
// master seals it — before its transactions "commit" in any global sense —
// which is the out-of-order/early replication property that keeps commit
// latency low and predictable (§3). Each page pays the injected hop
// latency once and sync links ack once per page (in-memory durability)
// before applying, so commit cost amortizes across every writer whose
// records share the page.
//
// A link survives transport faults: if its session errors, or shipped
// pages stop making progress (a lost frame, a partition), it tears the
// session down and reconnects with bounded exponential backoff, resuming
// from the replica's applied LSN. Duplicate deliveries are trimmed against
// that watermark and re-acked; gaps force a resume. Only a slow-consumer
// detach, an apply failure or reconnect exhaustion is terminal.
type Link struct {
	master  *Partition
	replica *Partition
	syncAck bool
	latency time.Duration
	stall   time.Duration
	id      int
	tr      Transport
	// pacer, when non-nil, is installed on every subscription this link
	// opens (initial and resumed): it bills each shipped page's bytes to a
	// bandwidth budget before delivery. A pacer error ends the session
	// terminally (the subscription fails with it), like a slow-consumer
	// detach.
	pacer func(bytes int) error

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu         sync.Mutex
	sub        *wal.Subscription // live session's subscription, for lag reporting
	err        error             // first terminal error
	reconnects int

	sent  atomic.Uint64 // highest EndLSN handed to the transport
	acked atomic.Uint64 // highest ack heard back from the replica side
}

// StartLink subscribes the replica from its own log head.
func StartLink(tr Transport, master, replica *Partition, syncAck bool, latency, stall time.Duration, id int) *Link {
	return StartLinkFrom(tr, master, replica, syncAck, latency, stall, id, replica.Log().Head())
}

// StartLinkFrom subscribes the replica from a specific LSN (resuming after
// restore or failover). A from below the master's retained log returns a
// dead link whose Err wraps ErrLinkDown; the caller must restore the
// replica from blob first.
func StartLinkFrom(tr Transport, master, replica *Partition, syncAck bool, latency, stall time.Duration, id int, from uint64) *Link {
	return startLink(tr, master, replica, syncAck, latency, stall, id, from, nil)
}

// startLink is the full-parameter constructor: pacer, when non-nil, meters
// the subscription's page bytes (workspace WAL-bandwidth governance).
func startLink(tr Transport, master, replica *Partition, syncAck bool, latency, stall time.Duration, id int, from uint64, pacer func(bytes int) error) *Link {
	if stall <= 0 {
		stall = DefaultLinkStallTimeout
	}
	l := &Link{
		master: master, replica: replica, syncAck: syncAck,
		latency: latency, stall: stall, id: id, tr: tr,
		pacer: pacer,
		stop:  make(chan struct{}),
	}
	sub, err := master.Log().Subscribe(from)
	if err != nil {
		l.err = fmt.Errorf("%w: %v", ErrLinkDown, err)
		return l
	}
	if l.pacer != nil {
		sub.SetPacer(l.pacer)
	}
	l.setSub(sub)
	l.wg.Add(1)
	go l.run(sub)
	return l
}

// run is the link supervisor: it runs sessions until one ends cleanly
// (Stop) or fatally, reconnecting after transient failures with bounded
// backoff and resuming from the replica's applied position.
func (l *Link) run(sub *wal.Subscription) {
	defer l.wg.Done()
	backoff := linkBackoffMin
	attempts := 0
	for {
		if sub == nil {
			from := l.replica.Applied()
			s, err := l.master.Log().Subscribe(from)
			if err != nil {
				// The master truncated past the resume point while the
				// session was down; only a blob resync can rebuild it.
				l.fail(fmt.Errorf("%w: resubscribe at %d: %v", ErrLinkDown, from, err))
				return
			}
			if l.pacer != nil {
				s.SetPacer(l.pacer)
			}
			sub = s
			l.setSub(sub)
		}
		before := l.replica.Applied()
		err := l.runSession(sub)
		sub = nil
		l.setSub(nil)
		if err == nil {
			return // stopped
		}
		var fatal fatalLinkError
		if errors.As(err, &fatal) {
			l.fail(fatal.err)
			return
		}
		if l.replica.Applied() > before {
			// The session moved the replica forward; a fault now is fresh,
			// not the same one persisting. Reset the budget.
			attempts = 0
			backoff = linkBackoffMin
		}
		attempts++
		if attempts > maxLinkAttempts {
			l.fail(fmt.Errorf("%w: no progress after %d reconnects: %v", ErrLinkDown, attempts-1, err))
			return
		}
		l.mu.Lock()
		l.reconnects++
		l.mu.Unlock()
		if !l.sleepStop(backoff) {
			return
		}
		backoff *= 2
		if backoff > linkBackoffMax {
			backoff = linkBackoffMax
		}
	}
}

// runSession opens one transport session and pumps it with three workers:
// a sender (log pages out), an ack loop (replica acks back into the
// master's durability watermark) and a receiver (apply pages, emit acks).
// It returns nil only when the link is stopping; any other outcome is an
// error for the supervisor to classify.
func (l *Link) runSession(sub *wal.Subscription) error {
	mc, rc, err := l.tr.Open()
	if err != nil {
		sub.Cancel()
		return err
	}
	errCh := make(chan error, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	go l.sender(&wg, sub, mc, errCh)
	go l.ackLoop(&wg, mc, errCh)
	go l.receiver(&wg, rc, errCh)

	var sessionErr error
	stopped := false
	tick := l.stall / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	lastProgress := l.progress()
	lastChange := time.Now()
supervise:
	for {
		select {
		case <-l.stop:
			stopped = true
			break supervise
		case sessionErr = <-errCh:
			break supervise
		case <-ticker.C:
			p := l.progress()
			if p != lastProgress {
				lastProgress, lastChange = p, time.Now()
				continue
			}
			if l.sent.Load() > p && time.Since(lastChange) >= l.stall {
				// Pages shipped but neither applied nor acked for a full
				// stall window: assume the session lost a frame.
				sessionErr = fmt.Errorf("cluster: link %d stalled: shipped %d, progress %d", l.id, l.sent.Load(), p)
				break supervise
			}
		}
	}
	ticker.Stop()
	sub.Cancel()
	mc.Close()
	rc.Close()
	wg.Wait()
	// Prefer a fatal worker error over whatever tore the session down —
	// an apply failure must not be masked by the conn-closed errors the
	// teardown itself provokes.
	for drained := false; !drained; {
		select {
		case err := <-errCh:
			var fatal fatalLinkError
			if errors.As(err, &fatal) {
				sessionErr = err
			} else if sessionErr == nil {
				sessionErr = err
			}
		default:
			drained = true
		}
	}
	if stopped {
		var fatal fatalLinkError
		if errors.As(sessionErr, &fatal) {
			return sessionErr // surface even when racing Stop
		}
		return nil
	}
	return sessionErr
}

// sender pumps sealed pages from the subscription into the session,
// paying the configured hop latency once per page.
func (l *Link) sender(wg *sync.WaitGroup, sub *wal.Subscription, mc Conn, errCh chan<- error) {
	defer wg.Done()
	for {
		pg, ok := sub.NextPage()
		if !ok {
			// A budget detachment (slow consumer) is terminal; the owner
			// must re-attach after catching up from blob chunks. A plain
			// cancellation is session teardown, not an error.
			if err := sub.Err(); err != nil {
				errCh <- fatalLinkError{err}
			}
			return
		}
		if l.latency > 0 {
			// One hop for the whole page — stop-aware, so Stop() never
			// waits out the backlog's worth of injected latency.
			if !l.sleepStop(l.latency) {
				return
			}
		}
		if err := mc.SendPage(pg); err != nil {
			errCh <- err
			return
		}
		if pg.EndLSN > l.sent.Load() {
			l.sent.Store(pg.EndLSN)
		}
	}
}

// ackLoop feeds replica acks into the master's durability watermark. Only
// sync links ack the master (§2); async workspace links still track the
// watermark for stall detection.
func (l *Link) ackLoop(wg *sync.WaitGroup, mc Conn, errCh chan<- error) {
	defer wg.Done()
	for {
		lsn, err := mc.RecvAck()
		if err != nil {
			errCh <- err
			return
		}
		if lsn > l.acked.Load() {
			l.acked.Store(lsn)
		}
		if l.syncAck {
			l.master.Ack(l.id, lsn)
		}
	}
}

// receiver applies incoming pages to the replica and emits acks.
func (l *Link) receiver(wg *sync.WaitGroup, rc Conn, errCh chan<- error) {
	defer wg.Done()
	// Announce the replica's position first: acks are cumulative, so a
	// fresh session's opening ack repairs any ack frames the previous
	// session lost (otherwise a dropped tail ack could stall commits
	// forever even though the replica applied everything).
	if err := rc.SendAck(l.replica.Applied()); err != nil {
		errCh <- err
		return
	}
	for {
		pg, err := rc.RecvPage()
		if err != nil {
			errCh <- err
			return
		}
		applied := l.replica.Applied()
		if pg.EndLSN <= applied {
			// Duplicate delivery (chaos, or resume overlap): apply nothing,
			// but re-ack so the master's watermark still hears about it.
			if err := rc.SendAck(applied); err != nil {
				errCh <- err
				return
			}
			continue
		}
		if pg.FirstLSN > applied {
			// A gap: an earlier page was lost in transit. Transient — the
			// supervisor reconnects and resumes from the applied watermark.
			errCh <- fmt.Errorf("cluster: link %d: page [%d,%d) arrived with replica at %d", l.id, pg.FirstLSN, pg.EndLSN, applied)
			return
		}
		if pg.FirstLSN < applied {
			pg.Records = pg.Records[applied-pg.FirstLSN:]
			pg.FirstLSN = applied
		}
		// Ack on receipt: the page is now "replicated in-memory" (§3) —
		// received by the replica process, not yet applied and not on disk
		// anywhere, which is exactly the durability a sync commit buys.
		// If the apply below fails, the master's durable watermark may
		// already cover LSNs this replica will never serve; that is why an
		// apply failure is terminal and surfaces through Err() and
		// Cluster.LinkErrors() instead of being swallowed.
		if err := rc.SendAck(pg.EndLSN); err != nil {
			errCh <- err
			return
		}
		if err := l.replica.ApplyPage(pg); err != nil {
			errCh <- fatalLinkError{err}
			return
		}
	}
}

// progress is the replica's acknowledged forward motion as the supervisor
// sees it: the lower of applied and acked, so a broken ack path counts as
// a stall even while applies continue.
func (l *Link) progress() uint64 {
	applied := l.replica.Applied()
	if acked := l.acked.Load(); acked < applied {
		return acked
	}
	return applied
}

// sleepStop sleeps d unless the link is stopped first.
func (l *Link) sleepStop(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.stop:
		return false
	case <-t.C:
		return true
	}
}

func (l *Link) setSub(s *wal.Subscription) {
	l.mu.Lock()
	l.sub = s
	l.mu.Unlock()
}

func (l *Link) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// Lag returns the number of records shipped but not yet consumed.
func (l *Link) Lag() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sub == nil {
		return 0
	}
	return l.sub.Lag()
}

// LagBytes returns the accounting bytes shipped but not yet consumed.
func (l *Link) LagBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sub == nil {
		return 0
	}
	return l.sub.LagBytes()
}

// LagPages returns the pages shipped but not yet consumed.
func (l *Link) LagPages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sub == nil {
		return 0
	}
	return l.sub.LagPages()
}

// Err returns the link's terminal error, if any: wal.ErrSlowConsumer
// after a budget detach, ErrLinkDown after reconnect exhaustion or a lost
// resume point, or the apply error that killed the replica.
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Reconnects returns how many times the link re-established its session
// after a transient fault.
func (l *Link) Reconnects() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reconnects
}

// Stop tears the link down and waits for its workers to exit.
func (l *Link) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}
