// Package cluster implements the distributed substrate of §2 and §3: hash
// partitioning over leaf nodes, synchronous in-cluster replication with
// early log shipping, separation of storage and compute via asynchronous
// blob staging, read-only workspaces, failover, and point-in-time restore.
// Nodes are in-process objects connected by simulated links; the latency
// and durability contracts match the paper's architecture (see DESIGN.md
// for the substitution table).
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"s2db/internal/core"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// CommitMode selects what must happen before a write is acknowledged.
type CommitMode uint8

const (
	// CommitLocal acknowledges once the log records are replicated
	// in-memory to the sync replicas — S2DB's design (§3): "no blob store
	// writes are required to commit a transaction".
	CommitLocal CommitMode = iota
	// CommitBlob acknowledges only after the records are uploaded to blob
	// storage — the cloud-data-warehouse design the paper contrasts
	// against (§3.1), used by the CDW baseline and the commit-path
	// ablation.
	CommitBlob
)

// Role distinguishes masters from replicas.
type Role uint8

const (
	// RoleMaster serves reads and writes.
	RoleMaster Role = iota
	// RoleReplica applies the master's log; HA replicas ack for
	// durability, workspace replicas do not (§3.2).
	RoleReplica
)

// Partition is one shard of a database: a log, a timestamp domain and one
// core.Table per logical table.
type Partition struct {
	ID   int
	DB   string
	role Role

	oracle    *txn.Oracle
	committer *core.Committer
	log       *wal.Log
	files     *PartitionFiles

	mu     sync.RWMutex
	tables map[string]*core.Table

	tableCfg core.Config

	// Durability machinery (master only). durableCh is closed and replaced
	// on watermark advance, but only while durableWaiters > 0 — page-batched
	// acks would otherwise churn a channel per advance with nobody waiting.
	commitMode     CommitMode
	durableMu      sync.Mutex
	durableCh      chan struct{}
	durableWaiters int
	durableNotify  chan struct{} // capacity-1 edge trigger for the stager
	acks           map[int]uint64
	ackScratch     []uint64 // reused by recomputeDurableLocked
	minSyncers     int

	// uploadedLSN advances as log chunks reach blob storage.
	uploadedMu      sync.Mutex
	uploaded        uint64
	uploadedCh      chan struct{}
	uploadedWaiters int

	// appliedLSN is maintained on replicas.
	appliedMu      sync.Mutex
	applied        uint64
	appliedCh      chan struct{}
	appliedWaiters int

	closed chan struct{}
	wg     sync.WaitGroup
}

func newPartition(db string, id int, role Role, tableCfg core.Config, files *PartitionFiles, commitMode CommitMode, logBase uint64, pageCfg wal.PageConfig) *Partition {
	oracle := &txn.Oracle{}
	log := wal.NewLogWith(pageCfg)
	if logBase > 0 {
		log.TruncateBefore(logBase) // aligns a replica log with the master's LSN space
	}
	p := &Partition{
		ID: id, DB: db, role: role,
		oracle:        oracle,
		committer:     core.NewCommitter(oracle),
		log:           log,
		files:         files,
		tables:        make(map[string]*core.Table),
		tableCfg:      tableCfg,
		commitMode:    commitMode,
		durableCh:     make(chan struct{}),
		durableNotify: make(chan struct{}, 1),
		uploadedCh:    make(chan struct{}),
		appliedCh:     make(chan struct{}),
		acks:          make(map[int]uint64),
		closed:        make(chan struct{}),
	}
	return p
}

// Log exposes the partition log (replication, staging).
func (p *Partition) Log() *wal.Log { return p.log }

// Oracle exposes the partition's timestamp oracle.
func (p *Partition) Oracle() *txn.Oracle { return p.oracle }

// Role returns the current role.
func (p *Partition) Role() Role {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.role
}

// CreateTable instantiates a table on this partition.
func (p *Partition) CreateTable(name string, schema *types.Schema) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.tables[name]; exists {
		return fmt.Errorf("partition %d: table %s already exists", p.ID, name)
	}
	tbl, err := core.NewTable(name, schema, p.tableCfg, p.committer, p.log, p.files)
	if err != nil {
		return err
	}
	tbl.Start()
	p.tables[name] = tbl
	return nil
}

// Table returns the named table.
func (p *Partition) Table(name string) (*core.Table, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.tables[name]
	if !ok {
		return nil, fmt.Errorf("partition %d: no table %s", p.ID, name)
	}
	return t, nil
}

// Tables snapshots the table map.
func (p *Partition) Tables() map[string]*core.Table {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]*core.Table, len(p.tables))
	for k, v := range p.tables {
		out[k] = v
	}
	return out
}

// setMinSyncers configures how many sync-replica acks a commit needs.
func (p *Partition) setMinSyncers(n int) {
	p.durableMu.Lock()
	p.minSyncers = n
	p.recomputeDurableLocked()
	p.durableMu.Unlock()
}

// Ack records a sync replica's received-LSN and advances the durable
// watermark ("data is considered committed when it is replicated in-memory
// to at least one replica partition", §3). Links ack once per shipped page,
// so one recompute covers every record in the page. An ack means the page
// reached the replica process over the transport — not that it was applied
// or persisted — and it is never withdrawn: if the replica later fails to
// apply, the watermark may exceed what that replica can serve, which is
// why apply failures kill the link loudly (Link.Err, Cluster.LinkErrors)
// instead of quietly shrinking the durability margin.
func (p *Partition) Ack(replicaID int, lsn uint64) {
	p.durableMu.Lock()
	if lsn > p.acks[replicaID] {
		p.acks[replicaID] = lsn
		p.recomputeDurableLocked()
	}
	p.durableMu.Unlock()
}

// recomputeDurableLocked advances the log durable watermark to the
// minSyncers-th highest ack (or the head when no sync replicas exist).
func (p *Partition) recomputeDurableLocked() {
	var newDurable uint64
	if p.minSyncers <= 0 {
		newDurable = p.log.Head()
	} else {
		if len(p.acks) < p.minSyncers {
			return
		}
		acked := p.ackScratch[:0]
		for _, l := range p.acks {
			acked = append(acked, l)
		}
		p.ackScratch = acked
		sort.Slice(acked, func(i, j int) bool { return acked[i] > acked[j] })
		newDurable = acked[p.minSyncers-1]
	}
	if newDurable > p.log.Durable() {
		p.log.MarkDurable(newDurable)
		if p.durableWaiters > 0 {
			close(p.durableCh)
			p.durableCh = make(chan struct{})
		}
		select {
		case p.durableNotify <- struct{}{}:
		default:
		}
	}
}

// DurableNotify returns a capacity-1 channel that receives (at least) one
// token per durable-watermark advance; the stager blocks on it instead of
// polling.
func (p *Partition) DurableNotify() <-chan struct{} { return p.durableNotify }

// NoteAppend is called after a local append when the partition has no sync
// replicas, so single-node durability advances immediately.
func (p *Partition) NoteAppend() {
	p.durableMu.Lock()
	p.recomputeDurableLocked()
	p.durableMu.Unlock()
}

// WaitDurable blocks until the record at lsn is durable under the
// partition's commit mode.
func (p *Partition) WaitDurable(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if p.commitMode == CommitBlob {
			p.uploadedMu.Lock()
			ok := p.uploaded > lsn
			var ch chan struct{}
			if !ok {
				p.uploadedWaiters++
				ch = p.uploadedCh
			}
			p.uploadedMu.Unlock()
			if ok {
				return nil
			}
			woke := waitCh(ch, deadline)
			p.uploadedMu.Lock()
			p.uploadedWaiters--
			p.uploadedMu.Unlock()
			if !woke {
				return fmt.Errorf("partition %d: blob-commit wait timed out at LSN %d", p.ID, lsn)
			}
			continue
		}
		p.durableMu.Lock()
		ok := p.log.Durable() > lsn
		var ch chan struct{}
		if !ok {
			p.durableWaiters++
			ch = p.durableCh
		}
		p.durableMu.Unlock()
		if ok {
			return nil
		}
		woke := waitCh(ch, deadline)
		p.durableMu.Lock()
		p.durableWaiters--
		p.durableMu.Unlock()
		if !woke {
			return fmt.Errorf("partition %d: replication wait timed out at LSN %d", p.ID, lsn)
		}
	}
}

func waitCh(ch chan struct{}, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

// markUploaded advances the blob-upload watermark.
func (p *Partition) markUploaded(lsn uint64) {
	p.uploadedMu.Lock()
	if lsn > p.uploaded {
		p.uploaded = lsn
		if p.uploadedWaiters > 0 {
			close(p.uploadedCh)
			p.uploadedCh = make(chan struct{})
		}
	}
	p.uploadedMu.Unlock()
}

// Uploaded returns the blob-upload watermark.
func (p *Partition) Uploaded() uint64 {
	p.uploadedMu.Lock()
	defer p.uploadedMu.Unlock()
	return p.uploaded
}

// markApplied advances a replica's applied watermark.
func (p *Partition) markApplied(lsn uint64) {
	p.appliedMu.Lock()
	if lsn > p.applied {
		p.applied = lsn
		if p.appliedWaiters > 0 {
			close(p.appliedCh)
			p.appliedCh = make(chan struct{})
		}
	}
	p.appliedMu.Unlock()
}

// Applied returns the replica's applied watermark.
func (p *Partition) Applied() uint64 {
	p.appliedMu.Lock()
	defer p.appliedMu.Unlock()
	return p.applied
}

// WaitApplied blocks until the replica has applied up to lsn.
func (p *Partition) WaitApplied(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		p.appliedMu.Lock()
		ok := p.applied >= lsn
		var ch chan struct{}
		if !ok {
			p.appliedWaiters++
			ch = p.appliedCh
		}
		p.appliedMu.Unlock()
		if ok {
			return nil
		}
		woke := waitCh(ch, deadline)
		p.appliedMu.Lock()
		p.appliedWaiters--
		p.appliedMu.Unlock()
		if !woke {
			return fmt.Errorf("partition %d: apply wait timed out at LSN %d", p.ID, lsn)
		}
	}
}

// ApplyRecord replays one master log record on a replica partition: the
// record is appended to the local log (keeping LSNs aligned for future
// promotion) and applied to the right table.
func (p *Partition) ApplyRecord(rec wal.Record) error {
	if err := p.applyOne(rec); err != nil {
		return err
	}
	p.markApplied(rec.LSN + 1)
	return nil
}

// ApplyPage replays a shipped log page and advances the applied watermark
// once for the whole page. A mid-page apply error still publishes the
// records applied so far.
func (p *Partition) ApplyPage(pg wal.Page) error {
	for i := range pg.Records {
		if err := p.applyOne(pg.Records[i]); err != nil {
			if i > 0 {
				p.markApplied(pg.Records[i-1].LSN + 1)
			}
			return err
		}
	}
	p.markApplied(pg.EndLSN)
	return nil
}

func (p *Partition) applyOne(rec wal.Record) error {
	if err := p.log.AppendRecord(rec); err != nil {
		return fmt.Errorf("partition %d: %w", p.ID, err)
	}
	name, err := core.TableOfRecord(rec)
	if err != nil {
		return err
	}
	tbl, err := p.Table(name)
	if err != nil {
		return err
	}
	return tbl.Apply(rec)
}

// Promote turns a replica into a master (failover, §2): HA replicas are
// "hot copies ... such that a replica can pick up the query workload
// immediately". Background flush/merge, disabled while replaying the old
// master's log, starts now.
func (p *Partition) Promote(background bool) {
	p.mu.Lock()
	p.role = RoleMaster
	tables := make([]*core.Table, 0, len(p.tables))
	for _, t := range p.tables {
		tables = append(tables, t)
	}
	p.mu.Unlock()
	if background {
		for _, t := range tables {
			t.EnableBackground()
		}
	}
}

// Close stops background table work.
func (p *Partition) Close() {
	select {
	case <-p.closed:
		return
	default:
		close(p.closed)
	}
	p.mu.RLock()
	for _, t := range p.tables {
		t.Close()
	}
	p.mu.RUnlock()
	p.wg.Wait()
}
