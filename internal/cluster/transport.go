package cluster

import (
	"errors"
	"sync"

	"s2db/internal/wal"
)

// Transport is the pluggable boundary replication crosses between a master
// and a replica partition — the decoupling of the log service from compute
// that TaaS argues for, and the step that makes every distributed claim
// here (sync-commit latency, failover, resync) testable over a real wire
// rather than asserted over in-process objects. Open establishes one
// replication session and returns its two endpoints. The cluster owns the
// transport it is configured with and closes it on Close.
type Transport interface {
	Open() (master, replica Conn, err error)
	Close() error
}

// Conn is one endpoint of a replication session. The master half calls
// SendPage and RecvAck; the replica half calls RecvPage and SendAck.
// Close tears the session down and unblocks both halves; a Conn is used by
// one sender and one receiver goroutine, so implementations need only
// support one concurrent call per direction.
type Conn interface {
	SendPage(pg wal.Page) error
	RecvPage() (wal.Page, error)
	SendAck(lsn uint64) error
	RecvAck() (uint64, error)
	Close() error
}

// errTransportClosed reports an operation on a closed session or transport.
var errTransportClosed = errors.New("cluster: transport closed")

// MemoryTransport is the in-process transport: pages and acks hand off
// over Go channels with zero copies and no serialization, preserving the
// seed replication behavior (and its benchmarks) exactly.
type MemoryTransport struct {
	mu     sync.Mutex
	closed bool
}

// NewMemoryTransport returns the in-process channel transport.
func NewMemoryTransport() *MemoryTransport { return &MemoryTransport{} }

// Open starts a new in-memory session.
func (t *MemoryTransport) Open() (Conn, Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, nil, errTransportClosed
	}
	s := &memSession{
		pages: make(chan wal.Page),
		acks:  make(chan uint64, 1),
		done:  make(chan struct{}),
	}
	return &memConn{s: s}, &memConn{s: s}, nil
}

// Close fails future Opens; live sessions are closed by their links.
func (t *MemoryTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return nil
}

// memSession is the shared state of one in-memory session. The page
// channel is unbuffered so the sender feels receiver backpressure the way
// the seed's single replication goroutine did; the ack channel has one
// slot so ack-on-receipt never waits on the master's ack loop.
type memSession struct {
	pages chan wal.Page
	acks  chan uint64
	done  chan struct{}
	once  sync.Once
}

// memConn is either half of an in-memory session; direction is implied by
// which methods the caller uses. Closing either half closes the session.
type memConn struct{ s *memSession }

func (c *memConn) SendPage(pg wal.Page) error {
	select {
	case c.s.pages <- pg:
		return nil
	case <-c.s.done:
		return errTransportClosed
	}
}

func (c *memConn) RecvPage() (wal.Page, error) {
	select {
	case pg := <-c.s.pages:
		return pg, nil
	case <-c.s.done:
		return wal.Page{}, errTransportClosed
	}
}

func (c *memConn) SendAck(lsn uint64) error {
	select {
	case c.s.acks <- lsn:
		return nil
	case <-c.s.done:
		return errTransportClosed
	}
}

func (c *memConn) RecvAck() (uint64, error) {
	select {
	case lsn := <-c.s.acks:
		return lsn, nil
	case <-c.s.done:
		return 0, errTransportClosed
	}
}

func (c *memConn) Close() error {
	c.s.once.Do(func() { close(c.s.done) })
	return nil
}
