package baseline

import (
	"fmt"
	"time"

	"s2db/internal/blob"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/types"
)

// Warehouse is the cloud-data-warehouse baseline (CDW1/CDW2-class): the
// same columnstore execution engine, but (a) commits require blob-store
// writes ("they force new data for a write transaction to be written out
// to blob storage before that transaction can be considered committed",
// §1/§3) and (b) no secondary indexes, unique keys or row-level locking —
// the reasons "CDW1 and CDW2 do not support running TPC-C" (§6).
type Warehouse struct {
	cluster *cluster.Cluster
}

// WarehouseConfig tunes the baseline.
type WarehouseConfig struct {
	Partitions int
	// BlobPutLatency injects the per-object blob write latency every
	// commit must pay.
	BlobPutLatency time.Duration
	// Table tunes segment sizing.
	Table core.Config
}

// NewWarehouse builds the baseline over a fresh simulated blob store.
func NewWarehouse(cfg WarehouseConfig) (*Warehouse, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	store := blob.NewSimulator(blob.NewMemory(), cfg.BlobPutLatency, 0)
	c, err := cluster.New(cluster.Config{
		Name:         "cdw",
		Partitions:   cfg.Partitions,
		Blob:         store,
		CommitMode:   cluster.CommitBlob,
		Table:        cfg.Table,
		ChunkRecords: 1, // every commit ships to the blob store
	})
	if err != nil {
		return nil, err
	}
	return &Warehouse{cluster: c}, nil
}

// CreateTable strips index and uniqueness features (unsupported by the
// warehouse class) and creates the columnstore table.
func (w *Warehouse) CreateTable(name string, schema *types.Schema) error {
	stripped := *schema
	stripped.SecondaryKeys = nil
	stripped.UniqueKey = nil
	return w.cluster.CreateTable(name, &stripped)
}

// BulkLoad ingests rows through the batch path.
func (w *Warehouse) BulkLoad(table string, rows []types.Row) error {
	return w.cluster.BulkLoad(table, rows)
}

// Insert commits rows, paying the blob write latency.
func (w *Warehouse) Insert(table string, rows []types.Row) error {
	_, err := w.cluster.Insert(table, rows, core.InsertOptions{})
	return err
}

// Views exposes per-partition snapshots for analytics.
func (w *Warehouse) Views(table string) ([]*core.View, error) {
	return w.cluster.Views(table)
}

// Flush forces buffered rows into columnstore segments.
func (w *Warehouse) Flush(table string) error { return w.cluster.Flush(table) }

// GetByUnique always fails: the warehouse has no unique keys or point-read
// indexes.
func (w *Warehouse) GetByUnique(string, []types.Value) (types.Row, bool, error) {
	return nil, false, fmt.Errorf("%w: point reads by key (no indexes)", ErrUnsupported)
}

// UpdateByKey always fails: no row-level locking or keyed updates.
func (w *Warehouse) UpdateByKey(string, []types.Value, func(types.Row) types.Row) error {
	return fmt.Errorf("%w: keyed updates (no row-level locking)", ErrUnsupported)
}

// SupportsTPCC reports false (§6, Figure 5).
func (w *Warehouse) SupportsTPCC() bool { return false }

// Close stops the cluster.
func (w *Warehouse) Close() { w.cluster.Close() }
