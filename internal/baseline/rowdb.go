// Package baseline implements the comparison systems of §6: a
// rowstore-only cloud operational database ("CDB", Aurora-class) and a
// blob-commit cloud data warehouse ("CDW", Snowflake/Redshift-class). Both
// are honest engines, not stubs: CDB runs TPC-C at full speed but executes
// analytics row-at-a-time with no columnar layout; CDW shares the
// columnstore execution path but must write to blob storage to commit and
// has no secondary indexes, unique keys or row locks — exactly the design
// simplifications §6 attributes to each class of system.
package baseline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"s2db/internal/rowstore"
	"s2db/internal/txn"
	"s2db/internal/types"
)

// ErrUnsupported marks operations a baseline cannot run (e.g. TPC-C on the
// warehouse: "CDW1 and CDW2 do not support running TPC-C", §6).
var ErrUnsupported = errors.New("baseline: operation not supported by this engine")

// RowTable is one rowstore table of the CDB baseline: a primary skiplist
// and one auxiliary skiplist per secondary index (the external-index
// design of §4.1's related work).
type RowTable struct {
	schema  *types.Schema
	primary *rowstore.Store
	// secondary maps index ordinal-list key to a skiplist whose keys are
	// EncodeKey(secondary values..., primary key values...).
	secondary map[string]*rowstore.Store
	oracle    *txn.Oracle
	mu        sync.Mutex // serializes commits (single-host engine)
}

// RowDB is the rowstore-only operational database baseline.
type RowDB struct {
	mu     sync.RWMutex
	tables map[string]*RowTable
}

// NewRowDB returns an empty operational database.
func NewRowDB() *RowDB { return &RowDB{tables: make(map[string]*RowTable)} }

// CreateTable creates a rowstore table. The schema must have a unique key
// (the primary key of an operational table).
func (db *RowDB) CreateTable(name string, schema *types.Schema) error {
	if err := schema.Validate(); err != nil {
		return err
	}
	if len(schema.UniqueKey) == 0 {
		return fmt.Errorf("rowdb: table %s needs a primary (unique) key", name)
	}
	t := &RowTable{
		schema:    schema,
		primary:   rowstore.NewStore(2 * time.Second),
		secondary: make(map[string]*rowstore.Store),
		oracle:    &txn.Oracle{},
	}
	for _, key := range schema.SecondaryKeys {
		t.secondary[fmt.Sprint(key)] = rowstore.NewStore(2 * time.Second)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return fmt.Errorf("rowdb: table %s exists", name)
	}
	db.tables[name] = t
	return nil
}

// Table returns the named table.
func (db *RowDB) Table(name string) (*RowTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("rowdb: no table %s", name)
	}
	return t, nil
}

func (t *RowTable) pk(r types.Row) []byte { return types.KeyOf(r, t.schema.UniqueKey) }

func (t *RowTable) secKey(key []int, r types.Row) []byte {
	vals := make([]types.Value, 0, len(key)+len(t.schema.UniqueKey))
	for _, c := range key {
		vals = append(vals, r[c])
	}
	for _, c := range t.schema.UniqueKey {
		vals = append(vals, r[c])
	}
	return types.EncodeKey(nil, vals...)
}

// Insert adds a row, failing on duplicate primary key.
func (t *RowTable) Insert(r types.Row) error {
	if err := t.schema.CheckRow(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	readTS := t.oracle.ReadTS()
	if _, exists := t.primary.Get(t.pk(r), readTS); exists {
		return fmt.Errorf("rowdb: duplicate primary key")
	}
	tx := t.primary.Begin(readTS)
	if _, err := tx.Insert(t.pk(r), r); err != nil {
		tx.Abort()
		return err
	}
	secTxs := make([]*rowstore.Txn, 0, len(t.secondary))
	for keyStr, store := range t.secondary {
		stx := store.Begin(readTS)
		key := parseOrdinals(keyStr)
		if _, err := stx.Insert(t.secKey(key, r), types.Row{}); err != nil {
			stx.Abort()
			for _, s := range secTxs {
				s.Abort()
			}
			tx.Abort()
			return err
		}
		secTxs = append(secTxs, stx)
	}
	ts := t.oracle.Next()
	tx.Commit(ts)
	for _, s := range secTxs {
		s.Commit(ts)
	}
	return nil
}

// parseOrdinals reverses fmt.Sprint([]int{...}).
func parseOrdinals(s string) []int {
	var out []int
	n, in := 0, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
			in = true
		} else if in {
			out = append(out, n)
			n, in = 0, false
		}
	}
	if in {
		out = append(out, n)
	}
	return out
}

// Get returns the row with the given primary key values.
func (t *RowTable) Get(vals []types.Value) (types.Row, bool) {
	return t.primary.Get(types.EncodeKey(nil, vals...), t.oracle.ReadTS())
}

// Update rewrites the row with the given primary key via set, maintaining
// secondary indexes.
func (t *RowTable) Update(vals []types.Value, set func(types.Row) types.Row) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	readTS := t.oracle.ReadTS()
	key := types.EncodeKey(nil, vals...)
	old, ok := t.primary.Get(key, readTS)
	if !ok {
		return false, nil
	}
	nr := set(old.Clone())
	if err := t.schema.CheckRow(nr); err != nil {
		return false, err
	}
	tx := t.primary.Begin(readTS)
	if _, err := tx.Insert(key, nr); err != nil {
		tx.Abort()
		return false, err
	}
	var secTxs []*rowstore.Txn
	for keyStr, store := range t.secondary {
		k := parseOrdinals(keyStr)
		oldSec, newSec := t.secKey(k, old), t.secKey(k, nr)
		if string(oldSec) == string(newSec) {
			continue
		}
		stx := store.Begin(readTS)
		if _, err := stx.Delete(oldSec); err == nil {
			_, err = stx.Insert(newSec, types.Row{})
			if err == nil {
				secTxs = append(secTxs, stx)
				continue
			}
		}
		stx.Abort()
		for _, s := range secTxs {
			s.Abort()
		}
		tx.Abort()
		return false, fmt.Errorf("rowdb: secondary index maintenance failed")
	}
	ts := t.oracle.Next()
	tx.Commit(ts)
	for _, s := range secTxs {
		s.Commit(ts)
	}
	return true, nil
}

// Delete removes the row with the given primary key.
func (t *RowTable) Delete(vals []types.Value) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	readTS := t.oracle.ReadTS()
	key := types.EncodeKey(nil, vals...)
	old, ok := t.primary.Get(key, readTS)
	if !ok {
		return false, nil
	}
	tx := t.primary.Begin(readTS)
	if _, err := tx.Delete(key); err != nil {
		tx.Abort()
		return false, err
	}
	var secTxs []*rowstore.Txn
	for keyStr, store := range t.secondary {
		stx := store.Begin(readTS)
		stx.Delete(t.secKey(parseOrdinals(keyStr), old))
		secTxs = append(secTxs, stx)
	}
	ts := t.oracle.Next()
	tx.Commit(ts)
	for _, s := range secTxs {
		s.Commit(ts)
	}
	return true, nil
}

// LookupEqual returns rows where the secondary-indexed columns equal vals,
// via an index range scan followed by primary-key lookups (the external
// index indirection §4.1 contrasts with).
func (t *RowTable) LookupEqual(key []int, vals []types.Value) []types.Row {
	store, ok := t.secondary[fmt.Sprint(key)]
	if !ok {
		// Fall back to a full scan.
		var out []types.Row
		t.Scan(func(r types.Row) bool {
			match := true
			for i, c := range key {
				if !types.Equal(r[c], vals[i]) {
					match = false
					break
				}
			}
			if match {
				out = append(out, r)
			}
			return true
		})
		return out
	}
	prefix := types.EncodeKey(nil, vals...)
	end := append(append([]byte(nil), prefix...), 0xff, 0xff, 0xff, 0xff)
	readTS := t.oracle.ReadTS()
	var out []types.Row
	store.Scan(prefix, end, readTS, func(k []byte, _ types.Row) bool {
		// The primary key values trail the secondary values in the index
		// key; rather than decode, do the indirection through the primary
		// store using the tail bytes.
		pkBytes := k[len(prefix):]
		if r, ok := t.primary.Get(pkBytes, readTS); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Scan iterates every row, one at a time — the row-oriented execution that
// makes CDB "orders of magnitude worse" on analytics (§6).
func (t *RowTable) Scan(f func(types.Row) bool) {
	t.primary.Scan(nil, nil, t.oracle.ReadTS(), func(_ []byte, r types.Row) bool { return f(r) })
}

// Rows returns the live row count.
func (t *RowTable) Rows() int { return t.primary.Len() }

// LookupPrefix returns rows whose primary key begins with the given values
// (an index range scan on the clustered primary key).
func (t *RowTable) LookupPrefix(vals []types.Value) []types.Row {
	prefix := types.EncodeKey(nil, vals...)
	end := append(append([]byte(nil), prefix...), 0xff, 0xff, 0xff, 0xff)
	var out []types.Row
	t.primary.Scan(prefix, end, t.oracle.ReadTS(), func(_ []byte, r types.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}
