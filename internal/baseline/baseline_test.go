package baseline

import (
	"errors"
	"testing"
	"time"

	"s2db/internal/types"
)

func rowSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "grp", Type: types.String},
	)
	s.UniqueKey = []int{0}
	s.SecondaryKeys = [][]int{{2}}
	return s
}

func rrow(id, val int, grp string) types.Row {
	return types.Row{types.NewInt(int64(id)), types.NewInt(int64(val)), types.NewString(grp)}
}

func TestRowDBInsertGetUpdateDelete(t *testing.T) {
	db := NewRowDB()
	if err := db.CreateTable("t", rowSchema()); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("t")
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(rrow(i, i, "g")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(rrow(5, 0, "g")); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	r, ok := tbl.Get([]types.Value{types.NewInt(7)})
	if !ok || r[1].I != 7 {
		t.Fatalf("Get = %v %v", r, ok)
	}
	ok2, err := tbl.Update([]types.Value{types.NewInt(7)}, func(r types.Row) types.Row {
		r[1] = types.NewInt(700)
		return r
	})
	if err != nil || !ok2 {
		t.Fatal(err)
	}
	r, _ = tbl.Get([]types.Value{types.NewInt(7)})
	if r[1].I != 700 {
		t.Fatal("update lost")
	}
	existed, err := tbl.Delete([]types.Value{types.NewInt(7)})
	if err != nil || !existed {
		t.Fatal(err)
	}
	if _, ok := tbl.Get([]types.Value{types.NewInt(7)}); ok {
		t.Fatal("deleted row visible")
	}
	if tbl.Rows() != 19 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
}

func TestRowDBSecondaryIndexMaintained(t *testing.T) {
	db := NewRowDB()
	db.CreateTable("t", rowSchema())
	tbl, _ := db.Table("t")
	for i := 0; i < 30; i++ {
		grp := "a"
		if i%3 == 0 {
			grp = "b"
		}
		tbl.Insert(rrow(i, i, grp))
	}
	rows := tbl.LookupEqual([]int{2}, []types.Value{types.NewString("b")})
	if len(rows) != 10 {
		t.Fatalf("LookupEqual(b) = %d rows", len(rows))
	}
	// Update moves a row between index values.
	tbl.Update([]types.Value{types.NewInt(1)}, func(r types.Row) types.Row {
		r[2] = types.NewString("b")
		return r
	})
	rows = tbl.LookupEqual([]int{2}, []types.Value{types.NewString("b")})
	if len(rows) != 11 {
		t.Fatalf("after update LookupEqual(b) = %d rows", len(rows))
	}
	// Delete removes from the index.
	tbl.Delete([]types.Value{types.NewInt(0)})
	rows = tbl.LookupEqual([]int{2}, []types.Value{types.NewString("b")})
	if len(rows) != 10 {
		t.Fatalf("after delete LookupEqual(b) = %d rows", len(rows))
	}
}

func TestRowDBScanRowAtATime(t *testing.T) {
	db := NewRowDB()
	db.CreateTable("t", rowSchema())
	tbl, _ := db.Table("t")
	for i := 0; i < 100; i++ {
		tbl.Insert(rrow(i, i%10, "g"))
	}
	sum := int64(0)
	tbl.Scan(func(r types.Row) bool {
		sum += r[1].I
		return true
	})
	if sum != 450 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestWarehouseCapabilities(t *testing.T) {
	w, err := NewWarehouse(WarehouseConfig{Partitions: 1, BlobPutLatency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.CreateTable("t", rowSchema()); err != nil {
		t.Fatal(err)
	}
	// Bulk loading works.
	rows := make([]types.Row, 50)
	for i := range rows {
		rows[i] = rrow(i, i, "g")
	}
	if err := w.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	views, err := w.Views("t")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, v := range views {
		n += v.NumRows()
	}
	if n != 50 {
		t.Fatalf("rows = %d", n)
	}
	// OLTP features rejected.
	if _, _, err := w.GetByUnique("t", nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("GetByUnique = %v", err)
	}
	if err := w.UpdateByKey("t", nil, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("UpdateByKey = %v", err)
	}
	if w.SupportsTPCC() {
		t.Fatal("warehouse must not support TPC-C")
	}
}

func TestWarehouseCommitPaysBlobLatency(t *testing.T) {
	w, err := NewWarehouse(WarehouseConfig{Partitions: 1, BlobPutLatency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.CreateTable("t", rowSchema())
	start := time.Now()
	if err := w.Insert("t", []types.Row{rrow(1, 1, "g")}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("warehouse commit returned in %v, must pay blob latency", elapsed)
	}
}
