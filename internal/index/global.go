package index

import "sync"

// hashTable is one immutable level of the global index: a hash table from
// value hash to the ids of segments containing that value. Levels are
// created per segment flush and merged together over time by the LSM
// merging algorithm (§4.1).
type hashTable struct {
	m map[uint64][]uint64 // value hash -> segment ids (ascending)
	// segs is the set of segments this table covers, used for the lazy
	// deletion rewrite policy.
	segs map[uint64]struct{}
}

// GlobalIndex is the special LSM tree of immutable hash tables described in
// §4.1. A point lookup probes each level (O(log N) levels); a new level is
// added per segment and levels merge when there are too many.
type GlobalIndex struct {
	mu     sync.RWMutex
	levels []*hashTable // newest first
	// dead marks segments dropped from the table; lookups skip them and
	// merges purge them ("lazy segment deletion", §4.1).
	dead map[uint64]struct{}
	// fanout controls when levels merge.
	fanout int
	// merges counts level-merge operations, reported by write-amplification
	// experiments.
	merges int
}

// NewGlobalIndex returns an empty index. fanout < 2 defaults to 4.
func NewGlobalIndex(fanout int) *GlobalIndex {
	if fanout < 2 {
		fanout = 4
	}
	return &GlobalIndex{dead: make(map[uint64]struct{}), fanout: fanout}
}

// AddSegment registers a segment's distinct value hashes as a new level,
// then merges levels if the LSM got too deep.
func (g *GlobalIndex) AddSegment(segID uint64, hashes []uint64) {
	ht := &hashTable{m: make(map[uint64][]uint64, len(hashes)), segs: map[uint64]struct{}{segID: {}}}
	for _, h := range hashes {
		ht.m[h] = append(ht.m[h], segID)
	}
	g.mu.Lock()
	g.levels = append([]*hashTable{ht}, g.levels...)
	g.maybeMergeLocked()
	g.mu.Unlock()
}

// DropSegment lazily removes a segment: lookups skip it immediately; the
// hash tables covering it are rewritten when at least half of their
// segments are dead.
func (g *GlobalIndex) DropSegment(segID uint64) {
	g.mu.Lock()
	g.dead[segID] = struct{}{}
	for i, ht := range g.levels {
		if _, covers := ht.segs[segID]; !covers {
			continue
		}
		deadCount := 0
		for s := range ht.segs {
			if _, d := g.dead[s]; d {
				deadCount++
			}
		}
		if deadCount*2 >= len(ht.segs) {
			g.levels[i] = g.rewriteLocked(ht)
		}
	}
	g.mu.Unlock()
}

// rewriteLocked rebuilds a hash table without dead segments.
func (g *GlobalIndex) rewriteLocked(ht *hashTable) *hashTable {
	out := &hashTable{m: make(map[uint64][]uint64), segs: make(map[uint64]struct{})}
	for s := range ht.segs {
		if _, d := g.dead[s]; !d {
			out.segs[s] = struct{}{}
		}
	}
	for h, segs := range ht.m {
		var live []uint64
		for _, s := range segs {
			if _, d := g.dead[s]; !d {
				live = append(live, s)
			}
		}
		if len(live) > 0 {
			out.m[h] = live
		}
	}
	return out
}

// maybeMergeLocked merges all levels into one when the level count reaches
// fanout, purging dead segments as it goes. This is a simplification of
// tiered merging that preserves the O(log N) probe bound.
func (g *GlobalIndex) maybeMergeLocked() {
	if len(g.levels) < g.fanout {
		return
	}
	merged := &hashTable{m: make(map[uint64][]uint64), segs: make(map[uint64]struct{})}
	for i := len(g.levels) - 1; i >= 0; i-- { // oldest first keeps ids ascending-ish
		ht := g.levels[i]
		for s := range ht.segs {
			if _, d := g.dead[s]; !d {
				merged.segs[s] = struct{}{}
			}
		}
		for h, segs := range ht.m {
			for _, s := range segs {
				if _, d := g.dead[s]; !d {
					merged.m[h] = append(merged.m[h], s)
				}
			}
		}
	}
	g.levels = []*hashTable{merged}
	g.merges++
}

// Lookup returns the ids of live segments that may contain the value hash,
// deduplicated, with the number of hash-table probes performed (the
// experiments compare this against per-segment probing).
func (g *GlobalIndex) Lookup(h uint64) (segs []uint64, probes int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, ht := range g.levels {
		probes++
		for _, s := range ht.m[h] {
			if _, d := g.dead[s]; d {
				continue
			}
			dup := false
			for _, have := range segs { // candidate lists are short
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				segs = append(segs, s)
			}
		}
	}
	return segs, probes
}

// Levels returns the current LSM depth.
func (g *GlobalIndex) Levels() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.levels)
}

// Merges returns how many level merges have happened (write amplification
// accounting, §4.1).
func (g *GlobalIndex) Merges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.merges
}
