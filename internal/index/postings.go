// Package index implements the two-level secondary index structure of
// §4.1: a per-segment inverted index mapping column values to postings
// lists of row offsets, and a global index implemented as an LSM of
// immutable hash tables mapping value hashes to segment ids. Point lookups
// probe O(log N) hash tables instead of O(N) per-segment filters; segment
// deletions are handled lazily (§4.1, "reads simply skip the references to
// deleted segments").
package index

import "sort"

// Postings is a sorted list of row offsets within one segment.
type Postings []int32

// Intersect merges two postings lists keeping offsets present in both,
// using forward seeking (galloping search) so long lists can be skipped
// when the other list guarantees no match in a section (§4.1, citing
// Sanders & Transier).
func Intersect(a, b Postings) Postings {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make(Postings, 0, len(a))
	lo := 0
	for _, v := range a {
		// Gallop forward in b.
		step := 1
		for lo+step < len(b) && b[lo+step] < v {
			step *= 2
		}
		hi := lo + step
		if hi > len(b) {
			hi = len(b)
		}
		pos := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= v })
		if pos < len(b) && b[pos] == v {
			out = append(out, v)
			lo = pos + 1
		} else {
			lo = pos
		}
		if lo >= len(b) {
			break
		}
	}
	return out
}

// Union merges two postings lists keeping all distinct offsets.
func Union(a, b Postings) Postings {
	out := make(Postings, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IntersectAll intersects several postings lists, smallest first so the
// running result stays small.
func IntersectAll(lists []Postings) Postings {
	if len(lists) == 0 {
		return nil
	}
	sorted := append([]Postings(nil), lists...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	out := sorted[0]
	for _, l := range sorted[1:] {
		if len(out) == 0 {
			return nil
		}
		out = Intersect(out, l)
	}
	return out
}
