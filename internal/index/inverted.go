package index

import (
	"s2db/internal/colstore"
	"s2db/internal/types"
)

// SegmentIndex is the per-segment inverted index for one column (§4.1): it
// maps each distinct value in the segment to the postings list of row
// offsets holding that value. Segments are immutable, so the index is
// built once at segment creation and never changes.
type SegmentIndex struct {
	// entries maps the order-preserving key encoding of the value to its
	// postings list. The actual column values live here, not in the global
	// index, which keeps global-index merges cheap for wide columns (§4.1).
	entries map[string]Postings
}

// BuildSegmentIndex scans one column of a segment and builds its inverted
// index. Null values are not indexed (a NULL never equals anything).
func BuildSegmentIndex(seg *colstore.Segment, col int) *SegmentIndex {
	si := &SegmentIndex{entries: make(map[string]Postings)}
	for i := 0; i < seg.NumRows; i++ {
		v := seg.ValueAt(i, col)
		if v.IsNull {
			continue
		}
		k := string(types.EncodeKey(nil, v))
		si.entries[k] = append(si.entries[k], int32(i))
	}
	return si
}

// Lookup returns the postings list for val (nil when absent). The list is
// shared; callers must not mutate it.
func (si *SegmentIndex) Lookup(val types.Value) Postings {
	if val.IsNull {
		return nil
	}
	return si.entries[string(types.EncodeKey(nil, val))]
}

// DistinctValues returns the number of distinct indexed values, used by the
// global index write-cost accounting ("the global index only stores
// information about the unique values in each segment", §4.1).
func (si *SegmentIndex) DistinctValues() int { return len(si.entries) }

// ValueHashes returns the hash of every distinct value in the index, for
// registration in the global index.
func (si *SegmentIndex) ValueHashes() []uint64 {
	out := make([]uint64, 0, len(si.entries))
	seen := make(map[uint64]struct{}, len(si.entries))
	for k := range si.entries {
		h := hashKeyBytes(k)
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			out = append(out, h)
		}
	}
	return out
}

// hashKeyBytes hashes an encoded key string; it must agree with HashValue.
func hashKeyBytes(k string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// HashValue hashes a value the way the global index expects.
func HashValue(v types.Value) uint64 {
	return hashKeyBytes(string(types.EncodeKey(nil, v)))
}

// HashTuple hashes a tuple of values for multi-column global indexes
// (§4.1.1: "mapping from the hash of each tuple").
func HashTuple(vals []types.Value) uint64 {
	return hashKeyBytes(string(types.EncodeKey(nil, vals...)))
}
