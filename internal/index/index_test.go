package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"s2db/internal/colstore"
	"s2db/internal/types"
)

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want Postings }{
		{Postings{1, 3, 5}, Postings{3, 5, 7}, Postings{3, 5}},
		{Postings{1, 2}, Postings{3, 4}, Postings{}},
		{Postings{}, Postings{1}, Postings{}},
		{Postings{1, 2, 3}, Postings{1, 2, 3}, Postings{1, 2, 3}},
		// Long vs short exercises the galloping path.
		{Postings{500}, seqPostings(0, 1000), Postings{500}},
	}
	for _, c := range cases {
		got := Intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("Intersect(%v, %v) = %v", c.a, c.b, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Intersect(%v, %v) = %v", c.a, c.b, got)
			}
		}
	}
}

func seqPostings(from, to int32) Postings {
	p := make(Postings, 0, to-from)
	for i := from; i < to; i++ {
		p = append(p, i)
	}
	return p
}

func TestQuickIntersectMatchesSet(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		a := toSortedPostings(aRaw)
		b := toSortedPostings(bRaw)
		got := Intersect(a, b)
		set := map[int32]bool{}
		for _, v := range a {
			set[v] = true
		}
		var want Postings
		for _, v := range b {
			if set[v] {
				want = append(want, v)
			}
		}
		return reflect.DeepEqual(append(Postings{}, got...), append(Postings{}, want...)) ||
			(len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func toSortedPostings(raw []uint16) Postings {
	seen := map[int32]bool{}
	var p Postings
	for _, v := range raw {
		if !seen[int32(v)] {
			seen[int32(v)] = true
			p = append(p, int32(v))
		}
	}
	// insertion sort is fine for test sizes
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	return p
}

func TestUnion(t *testing.T) {
	got := Union(Postings{1, 3}, Postings{2, 3, 4})
	want := Postings{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Union = %v", got)
	}
}

func idxSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.String},
		types.Column{Name: "c", Type: types.Int64},
	)
	s.SecondaryKeys = [][]int{{0}, {1, 2}}
	return s
}

func buildSeg(schema *types.Schema, id uint64, rows []types.Row) *colstore.Segment {
	b := colstore.NewBuilder(schema)
	for _, r := range rows {
		b.Add(r)
	}
	return b.Build(id)
}

func TestSegmentIndexLookup(t *testing.T) {
	schema := idxSchema()
	seg := buildSeg(schema, 1, []types.Row{
		{types.NewInt(5), types.NewString("x"), types.NewInt(1)},
		{types.NewInt(7), types.NewString("y"), types.NewInt(2)},
		{types.NewInt(5), types.NewString("x"), types.NewInt(3)},
	})
	si := BuildSegmentIndex(seg, 0)
	if got := si.Lookup(types.NewInt(5)); !reflect.DeepEqual(got, Postings{0, 2}) {
		t.Fatalf("Lookup(5) = %v", got)
	}
	if got := si.Lookup(types.NewInt(6)); got != nil {
		t.Fatalf("Lookup(6) = %v", got)
	}
	if si.DistinctValues() != 2 {
		t.Fatalf("DistinctValues = %d", si.DistinctValues())
	}
	if si.Lookup(types.Null(types.Int64)) != nil {
		t.Fatal("nulls must not be indexed")
	}
}

func TestGlobalIndexLookupAndMerge(t *testing.T) {
	g := NewGlobalIndex(4)
	h := HashValue(types.NewInt(42))
	for seg := uint64(1); seg <= 3; seg++ {
		g.AddSegment(seg, []uint64{h})
	}
	segs, probes := g.Lookup(h)
	if len(segs) != 3 {
		t.Fatalf("Lookup found %v", segs)
	}
	if probes != 3 {
		t.Fatalf("probes = %d, want one per level", probes)
	}
	// Fourth segment triggers a merge to one level.
	g.AddSegment(4, []uint64{h})
	if g.Levels() != 1 {
		t.Fatalf("Levels = %d after merge", g.Levels())
	}
	segs, probes = g.Lookup(h)
	if len(segs) != 4 || probes != 1 {
		t.Fatalf("post-merge Lookup = %v probes=%d", segs, probes)
	}
	if g.Merges() != 1 {
		t.Fatalf("Merges = %d", g.Merges())
	}
}

func TestGlobalIndexLazyDeletion(t *testing.T) {
	g := NewGlobalIndex(10) // high fanout: no automatic merge
	h := HashValue(types.NewInt(1))
	g.AddSegment(1, []uint64{h})
	g.AddSegment(2, []uint64{h})
	g.DropSegment(1)
	segs, _ := g.Lookup(h)
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("Lookup after drop = %v", segs)
	}
}

func TestSetSingleColumnLookup(t *testing.T) {
	schema := idxSchema()
	set := NewSet(schema)
	seg1 := buildSeg(schema, 1, []types.Row{
		{types.NewInt(5), types.NewString("x"), types.NewInt(1)},
		{types.NewInt(6), types.NewString("y"), types.NewInt(2)},
	})
	seg2 := buildSeg(schema, 2, []types.Row{
		{types.NewInt(5), types.NewString("z"), types.NewInt(3)},
	})
	set.AddSegment(seg1)
	set.AddSegment(seg2)
	matches, _ := set.LookupColumn(0, types.NewInt(5))
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	found := map[uint64]Postings{}
	for _, m := range matches {
		found[m.SegID] = m.Rows
	}
	if !reflect.DeepEqual(found[1], Postings{0}) || !reflect.DeepEqual(found[2], Postings{0}) {
		t.Fatalf("matches = %+v", found)
	}
}

func TestSetTupleLookup(t *testing.T) {
	schema := idxSchema()
	set := NewSet(schema)
	seg := buildSeg(schema, 1, []types.Row{
		{types.NewInt(1), types.NewString("x"), types.NewInt(10)},
		{types.NewInt(2), types.NewString("x"), types.NewInt(20)},
		{types.NewInt(3), types.NewString("x"), types.NewInt(10)},
	})
	set.AddSegment(seg)
	// (b, c) = (x, 10) matches rows 0 and 2.
	matches, _ := set.LookupTuple([]int{1, 2}, []types.Value{types.NewString("x"), types.NewInt(10)})
	if len(matches) != 1 || !reflect.DeepEqual(matches[0].Rows, Postings{0, 2}) {
		t.Fatalf("tuple matches = %+v", matches)
	}
	// A tuple absent from the table produces no segment candidates even
	// though each column value exists somewhere.
	matches, _ = set.LookupTuple([]int{1, 2}, []types.Value{types.NewString("x"), types.NewInt(99)})
	if len(matches) != 0 {
		t.Fatalf("phantom tuple matched: %+v", matches)
	}
}

func TestSetDropSegment(t *testing.T) {
	schema := idxSchema()
	set := NewSet(schema)
	seg := buildSeg(schema, 1, []types.Row{{types.NewInt(5), types.NewString("x"), types.NewInt(1)}})
	set.AddSegment(seg)
	set.DropSegment(1)
	matches, _ := set.LookupColumn(0, types.NewInt(5))
	if len(matches) != 0 {
		t.Fatalf("dropped segment still matched: %+v", matches)
	}
}

func TestParseTupleKey(t *testing.T) {
	if got := parseTupleKey(tupleKey([]int{1, 12, 3})); !reflect.DeepEqual(got, []int{1, 12, 3}) {
		t.Fatalf("parseTupleKey = %v", got)
	}
}

// Property: index lookups return exactly the rows a full scan would.
func TestQuickIndexMatchesScan(t *testing.T) {
	schema := idxSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := NewSet(schema)
		type rowRef struct {
			seg uint64
			row int32
		}
		byVal := map[int64][]rowRef{}
		for segID := uint64(1); segID <= 5; segID++ {
			n := rng.Intn(30) + 1
			rows := make([]types.Row, n)
			for i := range rows {
				v := rng.Int63n(10)
				rows[i] = types.Row{types.NewInt(v), types.NewString(fmt.Sprint(v % 3)), types.NewInt(v % 4)}
				byVal[v] = append(byVal[v], rowRef{segID, int32(i)})
			}
			set.AddSegment(buildSeg(schema, segID, rows))
		}
		for v := int64(0); v < 10; v++ {
			matches, _ := set.LookupColumn(0, types.NewInt(v))
			var got []rowRef
			for _, m := range matches {
				for _, r := range m.Rows {
					got = append(got, rowRef{m.SegID, r})
				}
			}
			if len(got) != len(byVal[v]) {
				return false
			}
			want := map[rowRef]bool{}
			for _, r := range byVal[v] {
				want[r] = true
			}
			for _, r := range got {
				if !want[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
