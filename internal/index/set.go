package index

import (
	"fmt"
	"sort"
	"sync"

	"s2db/internal/colstore"
	"s2db/internal/types"
)

// Match is an index lookup result: the row offsets matching the probe
// within one segment.
type Match struct {
	SegID uint64
	Rows  Postings
}

// Set manages every secondary-index structure for one table partition,
// composing them the way §4.1.1 prescribes: single-column inverted and
// global indexes are built per indexed column and *shared* across
// multi-column indexes; each multi-column index additionally gets a global
// index keyed by the tuple hash to skip segments cheaply on full-key
// probes.
type Set struct {
	schema *types.Schema

	mu sync.RWMutex
	// cols holds the shared single-column structures, keyed by ordinal.
	cols map[int]*columnIndex
	// tuples holds the per-multi-column-key tuple global indexes, keyed by
	// the ordinal list rendered as a string.
	tuples map[string]*GlobalIndex
}

type columnIndex struct {
	global *GlobalIndex
	segs   map[uint64]*SegmentIndex
}

// tupleKey renders ordinals for map keying.
func tupleKey(cols []int) string { return fmt.Sprint(cols) }

// NewSet builds the index structures required by the schema's secondary
// and unique keys.
func NewSet(schema *types.Schema) *Set {
	s := &Set{
		schema: schema,
		cols:   make(map[int]*columnIndex),
		tuples: make(map[string]*GlobalIndex),
	}
	addKey := func(key []int) {
		for _, c := range key {
			if _, ok := s.cols[c]; !ok {
				s.cols[c] = &columnIndex{global: NewGlobalIndex(0), segs: make(map[uint64]*SegmentIndex)}
			}
		}
		if len(key) > 1 {
			k := tupleKey(key)
			if _, ok := s.tuples[k]; !ok {
				s.tuples[k] = NewGlobalIndex(0)
			}
		}
	}
	for _, key := range schema.SecondaryKeys {
		addKey(key)
	}
	if len(schema.UniqueKey) > 0 {
		addKey(schema.UniqueKey)
	}
	return s
}

// IndexedColumns returns the ordinals with single-column structures, in
// ascending order.
func (s *Set) IndexedColumns() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.cols))
	for c := range s.cols {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// HasColumn reports whether the ordinal has a single-column index.
func (s *Set) HasColumn(c int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.cols[c]
	return ok
}

// AddSegment indexes a freshly created segment: one inverted index per
// indexed column plus registrations in the per-column and per-tuple global
// indexes. Segments are immutable so this happens exactly once (§4.1).
func (s *Set) AddSegment(seg *colstore.Segment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c, ci := range s.cols {
		si := BuildSegmentIndex(seg, c)
		ci.segs[seg.ID] = si
		ci.global.AddSegment(seg.ID, si.ValueHashes())
	}
	for key, gi := range s.tuples {
		_ = key
		cols := parseTupleKey(key)
		hashes := tupleHashesOf(seg, cols)
		gi.AddSegment(seg.ID, hashes)
	}
}

func tupleHashesOf(seg *colstore.Segment, cols []int) []uint64 {
	seen := make(map[uint64]struct{})
	var out []uint64
	vals := make([]types.Value, len(cols))
	for i := 0; i < seg.NumRows; i++ {
		null := false
		for j, c := range cols {
			vals[j] = seg.ValueAt(i, c)
			if vals[j].IsNull {
				null = true
				break
			}
		}
		if null {
			continue
		}
		h := HashTuple(vals)
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			out = append(out, h)
		}
	}
	return out
}

func parseTupleKey(k string) []int {
	var out []int
	n := 0
	in := false
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
			in = true
		} else if in {
			out = append(out, n)
			n = 0
			in = false
		}
	}
	if in {
		out = append(out, n)
	}
	return out
}

// DropSegment lazily removes a segment from every structure (after a merge
// retires it).
func (s *Set) DropSegment(segID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ci := range s.cols {
		delete(ci.segs, segID)
		ci.global.DropSegment(segID)
	}
	for _, gi := range s.tuples {
		gi.DropSegment(segID)
	}
}

// LookupColumn finds all (segment, rows) matches for column == val using
// the global index to select candidate segments and the per-segment
// inverted indexes for postings. probes reports global hash-table probes.
func (s *Set) LookupColumn(col int, val types.Value) (matches []Match, probes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ci, ok := s.cols[col]
	if !ok || val.IsNull {
		return nil, 0
	}
	segs, p := ci.global.Lookup(HashValue(val))
	probes = p
	for _, segID := range segs {
		si := ci.segs[segID]
		if si == nil {
			continue
		}
		if rows := si.Lookup(val); len(rows) > 0 {
			matches = append(matches, Match{SegID: segID, Rows: rows})
		}
	}
	return matches, probes
}

// LookupTuple finds matches for a full key probe (every indexed column
// equal). For multi-column keys it uses the tuple global index to skip
// segments, then intersects per-column postings (§4.1.1).
func (s *Set) LookupTuple(cols []int, vals []types.Value) (matches []Match, probes int) {
	if len(cols) == 1 {
		return s.LookupColumn(cols[0], vals[0])
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	gi, ok := s.tuples[tupleKey(cols)]
	if !ok {
		return nil, 0
	}
	for _, v := range vals {
		if v.IsNull {
			return nil, 0
		}
	}
	segs, p := gi.Lookup(HashTuple(vals))
	probes = p
	for _, segID := range segs {
		lists := make([]Postings, 0, len(cols))
		ok := true
		for i, c := range cols {
			ci := s.cols[c]
			si := ci.segs[segID]
			if si == nil {
				ok = false
				break
			}
			l := si.Lookup(vals[i])
			if len(l) == 0 {
				ok = false
				break
			}
			lists = append(lists, l)
		}
		if !ok {
			continue
		}
		if rows := IntersectAll(lists); len(rows) > 0 {
			matches = append(matches, Match{SegID: segID, Rows: rows})
		}
	}
	return matches, probes
}

// SegmentPostings returns the postings list for one (segment, column,
// value), used by the secondary-index filter strategy (§5.2).
func (s *Set) SegmentPostings(segID uint64, col int, val types.Value) (Postings, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ci, ok := s.cols[col]
	if !ok {
		return nil, false
	}
	si := ci.segs[segID]
	if si == nil {
		return nil, false
	}
	return si.Lookup(val), true
}

// GlobalLevels reports the per-column global LSM depths, for tests.
func (s *Set) GlobalLevels(col int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ci, ok := s.cols[col]; ok {
		return ci.global.Levels()
	}
	return 0
}
