package types

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{Null(Int64), NewInt(-999), -1}, // nulls sort first
		{Null(Int64), Null(Int64), 0},
		{NewInt(5), Null(Int64), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func TestValueString(t *testing.T) {
	if NewInt(42).String() != "42" || NewString("x").String() != "x" || !Null(Int64).IsNull {
		t.Fatal("value rendering broken")
	}
	if Null(Float64).String() != "NULL" {
		t.Fatal("null rendering broken")
	}
}

func TestHashStability(t *testing.T) {
	if Hash(NewInt(7)) != Hash(NewInt(7)) {
		t.Fatal("hash not deterministic")
	}
	if Hash(NewInt(7)) == Hash(NewInt(8)) {
		t.Fatal("suspiciously colliding hashes") // not guaranteed, but 2^-64
	}
	if HashMany([]Value{NewInt(1), NewInt(2)}) == HashMany([]Value{NewInt(2), NewInt(1)}) {
		t.Fatal("tuple hash ignores order")
	}
}

// Property: EncodeKey is order-preserving for ints.
func TestQuickEncodeKeyOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, NewInt(a))
		kb := EncodeKey(nil, NewInt(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewInt(a), NewInt(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey is order-preserving for floats (including negatives).
func TestQuickEncodeKeyOrderFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, NewFloat(a))
		kb := EncodeKey(nil, NewFloat(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewFloat(a), NewFloat(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey is order-preserving for strings, including ones with
// embedded zero bytes (the escape sequence must not break ordering).
func TestQuickEncodeKeyOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, NewString(a))
		kb := EncodeKey(nil, NewString(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewString(a), NewString(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyTupleOrdering(t *testing.T) {
	// ("a", 2) < ("a", 10) < ("b", 0): tuple ordering is lexicographic.
	k1 := EncodeKey(nil, NewString("a"), NewInt(2))
	k2 := EncodeKey(nil, NewString("a"), NewInt(10))
	k3 := EncodeKey(nil, NewString("b"), NewInt(0))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("tuple key ordering broken")
	}
	// Embedded zero in a prefix must not make "a\x00" ~ "a" ambiguous.
	ka := EncodeKey(nil, NewString("a\x00"), NewInt(0))
	kb := EncodeKey(nil, NewString("a"), NewInt(255))
	if bytes.Compare(kb, ka) >= 0 {
		t.Fatal("terminator does not sort below escaped zero")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{NewInt(-5), NewFloat(3.25), NewString("hello")},
		{Null(Int64), Null(Float64), Null(String)},
		{NewString(""), NewString("with\x00zero")},
	}
	for _, r := range rows {
		buf := EncodeRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("DecodeRow(%v): %v, consumed %d/%d", r, err, n, len(buf))
		}
		if len(got) != len(r) {
			t.Fatalf("arity mismatch: %v vs %v", got, r)
		}
		for i := range r {
			if !Equal(got[i], r[i]) || got[i].IsNull != r[i].IsNull {
				t.Fatalf("value %d: %v != %v", i, got[i], r[i])
			}
		}
	}
	// Truncation is an error, not a panic.
	buf := EncodeRow(nil, Row{NewString("abcdef")})
	if _, _, err := DecodeRow(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated row should fail")
	}
}

func TestQuickRowCodec(t *testing.T) {
	f := func(i int64, fv float64, s string, nullMask uint8) bool {
		if math.IsNaN(fv) {
			return true
		}
		r := Row{NewInt(i), NewFloat(fv), NewString(s)}
		for b := 0; b < 3; b++ {
			if nullMask&(1<<b) != 0 {
				r[b] = Null(r[b].Type)
			}
		}
		buf := EncodeRow(nil, r)
		got, _, err := DecodeRow(buf)
		if err != nil || len(got) != 3 {
			return false
		}
		for j := range r {
			if !Equal(got[j], r[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	ok := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: String})
	ok.UniqueKey = []int{0}
	ok.SecondaryKeys = [][]int{{1}}
	ok.ShardKey = []int{0}
	ok.SortKey = 1
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Schema{
		NewSchema(), // no columns
		NewSchema(Column{Name: "", Type: Int64}),
		NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: Int64}),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad schema %d validated", i)
		}
	}
	oob := NewSchema(Column{Name: "a", Type: Int64})
	oob.UniqueKey = []int{5}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range unique key validated")
	}
	oob2 := NewSchema(Column{Name: "a", Type: Int64})
	oob2.SortKey = 3
	if err := oob2.Validate(); err == nil {
		t.Fatal("out-of-range sort key validated")
	}
	empty := NewSchema(Column{Name: "a", Type: Int64})
	empty.SecondaryKeys = [][]int{{}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty secondary key validated")
	}
}

func TestCheckRow(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: String})
	if err := s.CheckRow(Row{NewInt(1), NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRow(Row{NewInt(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := s.CheckRow(Row{NewString("x"), NewString("y")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestShardHashRoutingStability(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: Int64})
	s.ShardKey = []int{0}
	r1 := Row{NewInt(7), NewInt(1)}
	r2 := Row{NewInt(7), NewInt(999)} // different non-shard column
	if s.ShardHash(r1) != s.ShardHash(r2) {
		t.Fatal("shard hash depends on non-shard columns")
	}
	// Default shard key is the first column.
	d := NewSchema(Column{Name: "a", Type: Int64})
	if len(d.ShardColumns()) != 1 || d.ShardColumns()[0] != 0 {
		t.Fatal("default shard key wrong")
	}
}

func TestRowCloneAndProject(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), NewFloat(2)}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].I != 1 {
		t.Fatal("Clone aliases the original")
	}
	p := r.Project([]int{2, 0})
	if p[0].F != 2 || p[1].I != 1 {
		t.Fatalf("Project = %v", p)
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("c")}
	if CompareRows(a, b, []int{0}) != 0 {
		t.Fatal("equal on first key should be 0")
	}
	if CompareRows(a, b, []int{0, 1}) >= 0 {
		t.Fatal("tie-break on second key failed")
	}
}
