package types

import (
	"encoding/binary"
	"math"
)

// EncodeKey appends an order-preserving encoding of vals to buf:
// bytes.Compare over encodings agrees with CompareRows over the values.
// It is used as the skiplist key in the rowstore and for sort-key ordering.
func EncodeKey(buf []byte, vals ...Value) []byte {
	for _, v := range vals {
		if v.IsNull {
			buf = append(buf, 0x00) // nulls sort first
			continue
		}
		buf = append(buf, 0x01)
		switch v.Type {
		case Int64:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.I)^(1<<63))
		case Float64:
			bits := math.Float64bits(v.F)
			if bits&(1<<63) != 0 {
				bits = ^bits // negative: flip everything
			} else {
				bits |= 1 << 63 // positive: flip sign bit
			}
			buf = binary.BigEndian.AppendUint64(buf, bits)
		case String:
			// Escape 0x00 so embedded zero bytes keep ordering, then
			// terminate with 0x00 0x01 (which sorts below any escaped byte).
			for i := 0; i < len(v.S); i++ {
				b := v.S[i]
				buf = append(buf, b)
				if b == 0x00 {
					buf = append(buf, 0xff)
				}
			}
			buf = append(buf, 0x00, 0x01)
		}
	}
	return buf
}

// KeyOf is a convenience wrapper returning a fresh key for the given row
// projected onto key column ordinals.
func KeyOf(r Row, key []int) []byte {
	vals := make([]Value, len(key))
	for i, k := range key {
		vals[i] = r[k]
	}
	return EncodeKey(nil, vals...)
}
