package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRow appends a compact binary encoding of the row to buf, for log
// records and snapshots. The schema is implied by context.
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		if v.IsNull {
			buf = append(buf, 0)
			buf = append(buf, byte(v.Type))
			continue
		}
		buf = append(buf, 1)
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case Int64:
			buf = binary.AppendVarint(buf, v.I)
		case Float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case String:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return buf
}

// DecodeRow decodes a row written by EncodeRow, returning the bytes
// consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, fmt.Errorf("types: bad row arity")
	}
	p := k
	r := make(Row, n)
	for i := range r {
		if p+2 > len(buf) {
			return nil, 0, fmt.Errorf("types: truncated row value header")
		}
		present := buf[p] == 1
		t := ColType(buf[p+1])
		p += 2
		if !present {
			r[i] = Null(t)
			continue
		}
		switch t {
		case Int64:
			v, k := binary.Varint(buf[p:])
			if k <= 0 {
				return nil, 0, fmt.Errorf("types: bad int in row")
			}
			r[i] = NewInt(v)
			p += k
		case Float64:
			if p+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated float in row")
			}
			r[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[p:])))
			p += 8
		case String:
			l, k := binary.Uvarint(buf[p:])
			if k <= 0 || p+k+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("types: bad string in row")
			}
			r[i] = NewString(string(buf[p+k : p+k+int(l)]))
			p += k + int(l)
		default:
			return nil, 0, fmt.Errorf("types: unknown column type %d in row", t)
		}
	}
	return r, p, nil
}
