// Package types defines the value model shared by every storage and
// execution layer in s2db: column types, schemas, rows and the ordering,
// equality and hashing rules the engine relies on.
package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strings"
)

// ColType enumerates the column types supported by the engine.
type ColType uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 ColType = iota
	// Float64 is a 64-bit IEEE-754 column.
	Float64
	// String is a variable-length byte-string column.
	String
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "TEXT"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Value is a dynamically-typed cell. Exactly one representation is active,
// selected by Type. Null values have IsNull set.
type Value struct {
	Type   ColType
	IsNull bool
	I      int64
	F      float64
	S      string
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Type: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Type: Float64, F: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{Type: String, S: v} }

// Null returns a null value of type t.
func Null(t ColType) Value { return Value{Type: t, IsNull: true} }

// String renders the value for debugging and harness output.
func (v Value) String() string {
	if v.IsNull {
		return "NULL"
	}
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	}
	return "?"
}

// Compare orders two values of the same type. Nulls sort first. The result
// is negative, zero or positive in the manner of strings.Compare.
func Compare(a, b Value) int {
	if a.IsNull || b.IsNull {
		switch {
		case a.IsNull && b.IsNull:
			return 0
		case a.IsNull:
			return -1
		default:
			return 1
		}
	}
	switch a.Type {
	case Int64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	}
	return 0
}

// Equal reports whether two values are equal. Nulls equal only nulls.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the value, suitable for hash partitioning
// and the global secondary-index hash tables.
func Hash(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	if v.IsNull {
		h.WriteByte(0xff)
		return h.Sum64()
	}
	switch v.Type {
	case Int64:
		var b [8]byte
		putUint64(b[:], uint64(v.I))
		h.Write(b[:])
	case Float64:
		var b [8]byte
		putUint64(b[:], math.Float64bits(v.F))
		h.Write(b[:])
	case String:
		h.WriteString(v.S)
	}
	return h.Sum64()
}

// HashMany hashes a tuple of values, used for shard keys and multi-column
// unique-key checks.
func HashMany(vs []Value) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range vs {
		h ^= Hash(v)
		h *= 1099511628211
	}
	return h
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Row is a tuple of values laid out in schema column order.
type Row []Value

// Clone returns a deep-enough copy of the row (strings are immutable in Go,
// so value copies suffice).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns the sub-row at the given column ordinals.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Schema describes the columns of a table together with the key options the
// unified table storage supports (§4): a sort key, a shard key, secondary
// keys and unique keys.
type Schema struct {
	Columns []Column
	// SortKey is the ordinal of the column segments are sorted by, or -1.
	SortKey int
	// ShardKey holds the ordinals of the hash-partitioning columns. Empty
	// means shard on the first column.
	ShardKey []int
	// SecondaryKeys lists secondary indexes; each entry is the ordinals of
	// the indexed columns (multi-column indexes allowed, §4.1.1).
	SecondaryKeys [][]int
	// UniqueKey holds the ordinals of the enforced unique key, or nil.
	// A unique key is automatically also a secondary index (§4.1.2).
	UniqueKey []int
}

// NewSchema builds a schema with no keys configured.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols, SortKey: -1}
}

// ColIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that key ordinals are in range and types are consistent.
func (s *Schema) Validate() error {
	n := len(s.Columns)
	if n == 0 {
		return fmt.Errorf("schema has no columns")
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema has an unnamed column")
		}
		if seen[c.Name] {
			return fmt.Errorf("duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
	}
	check := func(what string, idx int) error {
		if idx < 0 || idx >= n {
			return fmt.Errorf("%s ordinal %d out of range [0,%d)", what, idx, n)
		}
		return nil
	}
	if s.SortKey != -1 {
		if err := check("sort key", s.SortKey); err != nil {
			return err
		}
	}
	for _, i := range s.ShardKey {
		if err := check("shard key", i); err != nil {
			return err
		}
	}
	for _, key := range s.SecondaryKeys {
		if len(key) == 0 {
			return fmt.Errorf("empty secondary key")
		}
		for _, i := range key {
			if err := check("secondary key", i); err != nil {
				return err
			}
		}
	}
	for _, i := range s.UniqueKey {
		if err := check("unique key", i); err != nil {
			return err
		}
	}
	return nil
}

// CheckRow verifies that the row matches the schema arity and types.
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("row has %d values, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("column %q: row value type %v, want %v", s.Columns[i].Name, v.Type, s.Columns[i].Type)
		}
	}
	return nil
}

// ShardColumns returns the effective shard key ordinals (defaulting to the
// first column when unset).
func (s *Schema) ShardColumns() []int {
	if len(s.ShardKey) > 0 {
		return s.ShardKey
	}
	return []int{0}
}

// ShardHash hashes the row's shard-key columns for partition routing.
func (s *Schema) ShardHash(r Row) uint64 {
	cols := s.ShardColumns()
	vs := make([]Value, len(cols))
	for i, c := range cols {
		vs[i] = r[c]
	}
	return HashMany(vs)
}

// CompareRows orders two rows by the given key ordinals.
func CompareRows(a, b Row, key []int) int {
	for _, k := range key {
		if c := Compare(a[k], b[k]); c != 0 {
			return c
		}
	}
	return 0
}
