package blob

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Disk is a Store backed by a local directory, for runs that want blob
// contents to survive the process. Keys are hex-encoded into flat file
// names so arbitrary key characters are safe.
type Disk struct {
	dir string
}

// NewDisk creates (if needed) and opens a directory-backed store.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: create %s: %w", dir, err)
	}
	return &Disk{dir: dir}, nil
}

func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(key)))
}

// Put implements Store with an atomic rename so readers never observe a
// partial object.
func (d *Disk) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, err
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	err := os.Remove(d.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements Store.
func (d *Disk) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), "put-") {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue
		}
		if strings.HasPrefix(string(raw), prefix) {
			keys = append(keys, string(raw))
		}
	}
	sort.Strings(keys)
	return keys, nil
}
