package blob

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// FileCache is the local data-file cache of §3.1: hot columnstore data
// files are kept on local storage while cold files live only in blob
// storage and are fetched on demand. Files not yet uploaded to the blob
// store are pinned and can never be evicted (they are the only copy).
// Cold fetches are single-flight: concurrent Gets for the same missing
// key issue one blob-store request and share its result.
type FileCache struct {
	mu       sync.Mutex
	store    Store
	maxBytes int
	curBytes int
	lru      *list.List // of *cacheEntry, front = most recent
	entries  map[string]*list.Element
	inflight map[string]*fetch

	// counters for the experiments
	hits, misses, evictions int64
}

// Inflight reports how many cold fetches are currently outstanding against
// the blob store (the hydrator's fetch-inflight accounting).
func (c *FileCache) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

type cacheEntry struct {
	key    string
	data   []byte
	pinned bool
}

// fetch is one in-flight blob-store Get; waiters block on done and then
// read data/err, which the owner writes before closing the channel.
type fetch struct {
	done chan struct{}
	data []byte
	err  error
}

// NewFileCache returns a cache backed by store, holding at most maxBytes of
// unpinned file data.
func NewFileCache(store Store, maxBytes int) *FileCache {
	return &FileCache{
		store:    store,
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*fetch),
	}
}

// AddLocal registers a newly written local file. It is pinned until
// MarkUploaded is called (the blob store does not have it yet). Re-adding
// an existing key re-pins it and refreshes its bytes: the caller has the
// authoritative local copy again (e.g. a replica rewrote the file during
// replay), so a previously uploaded-and-unpinned entry must not stay
// evictable with stale accounting.
func (c *FileCache) AddLocal(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.curBytes += len(data) - len(e.data)
		e.data = data
		e.pinned = true
		c.lru.MoveToFront(el)
		c.evict()
		return
	}
	e := &cacheEntry{key: key, data: data, pinned: true}
	c.entries[key] = c.lru.PushFront(e)
	c.curBytes += len(data)
	c.evict()
}

// MarkUploaded unpins a file after its blob upload completes, making it
// evictable.
func (c *FileCache) MarkUploaded(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).pinned = false
		c.evict()
	}
}

// Get returns the file contents, from cache when hot or from the blob
// store when cold (re-inserting it as hot). A cold key is fetched once no
// matter how many goroutines miss on it concurrently: the first registers
// an in-flight fetch, the rest wait on it and share the result.
func (c *FileCache) Get(key string) ([]byte, error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx is Get with cancellation: a caller whose ctx expires while a cold
// fetch is outstanding gets ctx.Err() immediately, but the blob-store
// request itself is never aborted — it runs on its own goroutine and
// completes the in-flight entry so every other (and any future) waiter
// still shares the single fetch. Cancellation abandons the wait, not the
// work.
func (c *FileCache) GetCtx(ctx context.Context, key string) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.mu.Unlock()
		return data, nil
	}
	var f *fetch
	if inflight, ok := c.inflight[key]; ok {
		c.hits++ // shared with the in-flight fetch, not a second blob read
		f = inflight
	} else {
		c.misses++
		f = &fetch{done: make(chan struct{})}
		c.inflight[key] = f
		go func() {
			data, err := c.store.Get(key)
			if err != nil {
				err = fmt.Errorf("file cache miss for %s: %w", key, err)
			}
			c.mu.Lock()
			delete(c.inflight, key)
			if _, ok := c.entries[key]; !ok && err == nil {
				e := &cacheEntry{key: key, data: data}
				c.entries[key] = c.lru.PushFront(e)
				c.curBytes += len(data)
				c.evict()
			}
			f.data, f.err = data, err
			c.mu.Unlock()
			close(f.done)
		}()
	}
	c.mu.Unlock()
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Remove drops a file from the cache (e.g. after a merge retires its
// segment).
func (c *FileCache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.curBytes -= len(el.Value.(*cacheEntry).data)
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// evict drops cold unpinned files until the cache fits. Caller holds mu.
func (c *FileCache) evict() {
	el := c.lru.Back()
	for c.curBytes > c.maxBytes && el != nil {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if !e.pinned {
			c.curBytes -= len(e.data)
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
		}
		el = prev
	}
}

// Stats returns (hits, misses, evictions) counters.
func (c *FileCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// CachedBytes returns the current cached payload size.
func (c *FileCache) CachedBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Contains reports whether the key is currently cached locally.
func (c *FileCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}
