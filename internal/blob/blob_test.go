package blob

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestMemoryPutGetDeleteList(t *testing.T) {
	m := NewMemory()
	if err := m.Put("a/1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.Put("a/2", []byte("yy"))
	m.Put("b/1", []byte("z"))
	got, err := m.Get("a/1")
	if err != nil || string(got) != "x" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := m.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing Get = %v", err)
	}
	keys, _ := m.List("a/")
	if !reflect.DeepEqual(keys, []string{"a/1", "a/2"}) {
		t.Fatalf("List = %v", keys)
	}
	if err := m.Delete("a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("a/1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted object still readable")
	}
	if m.Size() != 2 || m.Bytes() != 3 {
		t.Fatalf("Size=%d Bytes=%d", m.Size(), m.Bytes())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	m := NewMemory()
	m.Put("k", []byte("abc"))
	got, _ := m.Get("k")
	got[0] = 'X'
	again, _ := m.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestSimulatorLatencyAndStats(t *testing.T) {
	sim := NewSimulator(NewMemory(), 5*time.Millisecond, 0)
	start := time.Now()
	sim.Put("k", []byte("v"))
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Put returned in %v, want >= 5ms injected latency", elapsed)
	}
	if sim.Stats.Puts.Load() != 1 || sim.Stats.BytesPut.Load() != 1 {
		t.Fatal("stats not recorded")
	}
	if _, err := sim.Get("k"); err != nil {
		t.Fatal(err)
	}
	if sim.Stats.Gets.Load() != 1 {
		t.Fatal("get stats not recorded")
	}
}

func TestSimulatorUnavailability(t *testing.T) {
	sim := NewSimulator(NewMemory(), 0, 0)
	sim.Put("k", []byte("v"))
	sim.SetUnavailable(true)
	if err := sim.Put("k2", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put during outage = %v", err)
	}
	if _, err := sim.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get during outage = %v", err)
	}
	if _, err := sim.List(""); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("List during outage = %v", err)
	}
	sim.SetUnavailable(false)
	if _, err := sim.Get("k"); err != nil {
		t.Fatalf("Get after outage = %v", err)
	}
}

func TestFileCacheHitMissEvict(t *testing.T) {
	store := NewMemory()
	store.Put("cold", make([]byte, 10))
	c := NewFileCache(store, 25)

	// Local files are pinned until uploaded.
	c.AddLocal("f1", make([]byte, 10))
	c.AddLocal("f2", make([]byte, 10))
	c.AddLocal("f3", make([]byte, 10)) // over budget, but everything pinned
	if c.CachedBytes() != 30 {
		t.Fatalf("pinned files evicted: %d bytes", c.CachedBytes())
	}
	c.MarkUploaded("f1")
	c.MarkUploaded("f2")
	// Eviction happens on unpin; the coldest unpinned file (f1) goes.
	if c.CachedBytes() > 25 {
		t.Fatalf("cache over budget after unpin: %d", c.CachedBytes())
	}
	if c.Contains("f1") {
		t.Fatal("f1 should have been evicted (LRU)")
	}
	if !c.Contains("f3") {
		t.Fatal("pinned f3 must remain")
	}

	// Cold read fetches from the blob store and caches.
	if _, err := c.Get("cold"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d", misses)
	}
	c.Get("cold")
	hits, _, _ = c.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestFileCacheMissingObject(t *testing.T) {
	c := NewFileCache(NewMemory(), 100)
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v", err)
	}
}

func TestFileCacheRemove(t *testing.T) {
	c := NewFileCache(NewMemory(), 100)
	c.AddLocal("f", make([]byte, 10))
	c.Remove("f")
	if c.Contains("f") || c.CachedBytes() != 0 {
		t.Fatal("Remove did not drop the entry")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("db/0/data/file-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	d.Put("db/0/log/000001", []byte("chunk"))
	d.Put("db/1/log/000001", []byte("other"))
	got, err := d.Get("db/0/data/file-1")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := d.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	keys, err := d.List("db/0/")
	if err != nil || len(keys) != 2 || keys[0] != "db/0/data/file-1" {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := d.Delete("db/0/data/file-1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("db/0/data/file-1"); err != nil {
		t.Fatal("double delete should be nil")
	}
	keys, _ = d.List("db/0/")
	if len(keys) != 1 {
		t.Fatalf("after delete List = %v", keys)
	}
}

func TestDiskStoreWorksAsClusterBacking(t *testing.T) {
	// The overwrite case: re-uploading identical content must succeed.
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("v1"))
	if err := d.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get("k")
	if string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
}
