package blob

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingStore wraps a Store and counts Gets, optionally delaying them so
// concurrent misses overlap deterministically.
type countingStore struct {
	Store
	gets  atomic.Int64
	delay time.Duration
}

func (s *countingStore) Get(key string) ([]byte, error) {
	s.gets.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.Store.Get(key)
}

func TestFileCacheSingleFlightGet(t *testing.T) {
	mem := NewMemory()
	mem.Put("seg/1", []byte("payload"))
	store := &countingStore{Store: mem, delay: 20 * time.Millisecond}
	c := NewFileCache(store, 1<<20)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	datas := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			datas[i], errs[i] = c.Get("seg/1")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Get %d: %v", i, errs[i])
		}
		if string(datas[i]) != "payload" {
			t.Fatalf("Get %d = %q", i, datas[i])
		}
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("store saw %d Gets for one cold key, want 1 (single-flight)", got)
	}
	hits, misses, _ := c.Stats()
	if misses != 1 || hits != n-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, n-1)
	}
}

func TestFileCacheSingleFlightError(t *testing.T) {
	store := &countingStore{Store: NewMemory(), delay: 10 * time.Millisecond}
	c := NewFileCache(store, 1<<20)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get("missing")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			t.Fatalf("Get %d of a missing key succeeded", i)
		}
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("store saw %d Gets, want 1", got)
	}
	// The error is not cached: a later Get retries the store.
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("retry succeeded unexpectedly")
	}
	if got := store.gets.Load(); got != 2 {
		t.Fatalf("retry did not reach the store (gets=%d)", got)
	}
}

func TestFileCacheAddLocalExistingKeyRepins(t *testing.T) {
	c := NewFileCache(NewMemory(), 10)
	c.AddLocal("k", []byte("aaaa"))   // 4 bytes, pinned
	c.MarkUploaded("k")               // now evictable
	c.AddLocal("k", []byte("bbbbbb")) // 6 bytes: re-pin + refresh

	if got := c.CachedBytes(); got != 6 {
		t.Fatalf("CachedBytes = %d after refresh, want 6", got)
	}
	data, err := c.Get("k")
	if err != nil || string(data) != "bbbbbb" {
		t.Fatalf("Get = %q, %v; want refreshed bytes", data, err)
	}
	// The re-pinned entry must survive eviction pressure: fill past maxBytes
	// with evictable entries and confirm "k" stays.
	c.AddLocal("other", []byte("cccccccc"))
	c.MarkUploaded("other")
	if !c.Contains("k") {
		t.Fatal("re-pinned entry was evicted")
	}
}

func TestFileCacheConcurrentHammer(t *testing.T) {
	mem := NewMemory()
	for i := 0; i < 8; i++ {
		mem.Put(fmt.Sprintf("k%d", i), []byte("0123456789"))
	}
	c := NewFileCache(&countingStore{Store: mem}, 64) // tight: forces eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				switch i % 4 {
				case 0:
					if _, err := c.Get(key); err != nil {
						t.Errorf("Get %s: %v", key, err)
						return
					}
				case 1:
					c.AddLocal(key, []byte("xxxxxxxxxx"))
					c.MarkUploaded(key)
				case 2:
					c.Remove(key)
				default:
					c.Contains(key)
					c.CachedBytes()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFileCacheGetCtxCancelDoesNotAbortFetch(t *testing.T) {
	mem := NewMemory()
	mem.Put("seg/cold", []byte("payload"))
	store := &countingStore{Store: mem, delay: 50 * time.Millisecond}
	c := NewFileCache(store, 1<<20)

	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := c.GetCtx(ctx, "seg/cold"); err != context.Canceled {
		t.Fatalf("GetCtx = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d >= 50*time.Millisecond {
		t.Fatalf("cancelled waiter blocked %v, want < fetch latency", d)
	}
	// The abandoned fetch completes on its own and lands in the cache: the
	// next Get is a hit with no second blob read.
	for c.Inflight() > 0 {
		time.Sleep(time.Millisecond)
	}
	data, err := c.Get("seg/cold")
	if err != nil || string(data) != "payload" {
		t.Fatalf("post-cancel Get = %q, %v", data, err)
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("store saw %d Gets, want 1 (cancel must not abort or re-issue)", got)
	}
}

func TestFileCacheSingleFlightGetRacesRemoveAndEviction(t *testing.T) {
	mem := NewMemory()
	mem.Put("seg/a", []byte("aaaaaaaaaa"))
	mem.Put("seg/b", []byte("bbbbbbbbbb"))
	// Tight budget: every unpinned insert can evict the other entry.
	store := &countingStore{Store: mem, delay: time.Millisecond}
	c := NewFileCache(store, 12)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := "seg/a"
			if g%2 == 1 {
				key = "seg/b"
			}
			want := string(mustStoreGet(t, mem, key))
			for i := 0; i < 100; i++ {
				switch i % 5 {
				case 0:
					// Pin it locally, then unpin: races the in-flight
					// fetch's re-insert path.
					c.AddLocal(key, []byte(want))
					c.MarkUploaded(key)
				case 1:
					c.Remove(key)
				default:
					data, err := c.Get(key)
					if err != nil {
						t.Errorf("Get %s: %v", key, err)
						return
					}
					if string(data) != want {
						t.Errorf("Get %s = %q, want %q", key, data, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Removed-then-refetched keys must still resolve.
	for _, key := range []string{"seg/a", "seg/b"} {
		if _, err := c.Get(key); err != nil {
			t.Fatalf("final Get %s: %v", key, err)
		}
	}
}

func mustStoreGet(t *testing.T, s Store, key string) []byte {
	t.Helper()
	data, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
