// Package blob simulates the cloud blob storage tier (§3): an object store
// with high durability, modest availability, immutable objects and
// latencies far above local storage. Implementations are pluggable; the
// latency/availability model is injected by wrapping any Store in a
// Simulator so experiments can reproduce the cost of committing to blob
// storage versus committing locally (§3.1, Table 3 test case 5).
package blob

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound is returned when an object does not exist.
var ErrNotFound = errors.New("blob: object not found")

// ErrUnavailable is returned while the simulated store is in an outage
// window (S3 promises 11 nines of durability but only 3 nines of
// availability, §3.1).
var ErrUnavailable = errors.New("blob: store temporarily unavailable")

// Store is the object-store contract the engine depends on. Objects are
// immutable once written, matching cloud blob stores ("cloud blob stores
// typically don't support efficient file updates", §3.1).
type Store interface {
	// Put stores data under key. Overwriting an existing key is allowed
	// (used only for idempotent re-uploads of identical content).
	Put(key string, data []byte) error
	// Get returns the object contents.
	Get(key string) ([]byte, error)
	// Delete removes the object; deleting a missing key is not an error.
	Delete(key string) error
	// List returns the keys with the given prefix in lexicographic order.
	List(prefix string) ([]string, error)
}

// Memory is an in-memory Store.
type Memory struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{objects: make(map[string][]byte)} }

// Put implements Store.
func (m *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.objects[key] = cp
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.objects, key)
	m.mu.Unlock()
	return nil
}

// List implements Store.
func (m *Memory) List(prefix string) ([]string, error) {
	m.mu.RLock()
	var keys []string
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	m.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Size returns the number of stored objects.
func (m *Memory) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// Bytes returns the total stored payload size.
func (m *Memory) Bytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0
	for _, v := range m.objects {
		total += len(v)
	}
	return total
}

// Stats counts operations against a simulated store.
type Stats struct {
	Puts, Gets, Deletes, Lists atomic.Int64
	BytesPut, BytesGot         atomic.Int64
}

// Simulator wraps a Store with injected per-operation latency and an
// availability switch. Latency is modeled, not slept, when Clock is set;
// by default it sleeps, which is what the end-to-end latency experiments
// use.
type Simulator struct {
	inner       Store
	putLatency  time.Duration
	getLatency  time.Duration
	unavailable atomic.Bool
	// Stats is exported for harness assertions.
	Stats Stats
}

// NewSimulator wraps inner with the given operation latencies.
func NewSimulator(inner Store, putLatency, getLatency time.Duration) *Simulator {
	return &Simulator{inner: inner, putLatency: putLatency, getLatency: getLatency}
}

// SetUnavailable toggles a simulated outage: all operations fail with
// ErrUnavailable until re-enabled.
func (s *Simulator) SetUnavailable(down bool) { s.unavailable.Store(down) }

func (s *Simulator) check() error {
	if s.unavailable.Load() {
		return ErrUnavailable
	}
	return nil
}

// Put implements Store with injected write latency.
func (s *Simulator) Put(key string, data []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	if s.putLatency > 0 {
		time.Sleep(s.putLatency)
	}
	s.Stats.Puts.Add(1)
	s.Stats.BytesPut.Add(int64(len(data)))
	return s.inner.Put(key, data)
}

// Get implements Store with injected read latency.
func (s *Simulator) Get(key string) ([]byte, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if s.getLatency > 0 {
		time.Sleep(s.getLatency)
	}
	s.Stats.Gets.Add(1)
	data, err := s.inner.Get(key)
	if err == nil {
		s.Stats.BytesGot.Add(int64(len(data)))
	}
	return data, err
}

// Delete implements Store.
func (s *Simulator) Delete(key string) error {
	if err := s.check(); err != nil {
		return err
	}
	s.Stats.Deletes.Add(1)
	return s.inner.Delete(key)
}

// List implements Store.
func (s *Simulator) List(prefix string) ([]string, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	s.Stats.Lists.Add(1)
	return s.inner.List(prefix)
}
