package sql

import (
	"strconv"
	"strings"

	"s2db/internal/types"
)

// Slot describes where one bind position of a normalized query takes its
// value from: a literal extracted by normalization, or the caller's bind
// arguments (`?` placeholders), in original token order.
type Slot struct {
	// Lit is the extracted literal value when IsLit is set.
	Lit   types.Value
	IsLit bool
	// Arg is the 0-based index into the caller's bind arguments when the
	// slot came from a `?` placeholder.
	Arg int
}

// Normalized is the result of normalizing one query text: the canonical
// template that keys the plan cache, the normalized token stream (literals
// replaced by binds, original positions preserved) the parser consumes on
// a cache miss, and the bind-slot table mapping template binds back to
// extracted literals or caller arguments.
type Normalized struct {
	// Template is the canonical form: keywords lowercased, whitespace
	// collapsed, <> rewritten to !=, every literal replaced by `?`. Two
	// texts with the same template share one cached plan.
	Template string
	// Toks is the normalized token stream ending in TokEOF.
	Toks []Token
	// Slots maps each `?` of the template, in order, to its value source.
	Slots []Slot
	// UserBinds counts the `?` placeholders the caller must supply.
	UserBinds int
}

// Normalize lexes text and strips literals into bind slots, producing the
// template that keys the plan cache. Normalization is idempotent: the
// template of a template is itself (it contains no literals to strip).
func Normalize(text string) (*Normalized, error) {
	toks, err := Lex(text)
	if err != nil {
		return nil, err
	}
	n := &Normalized{Toks: make([]Token, 0, len(toks))}
	for _, t := range toks {
		switch t.Kind {
		case TokInt:
			v, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, parseError(t, "integer literal out of range")
			}
			n.Slots = append(n.Slots, Slot{Lit: types.NewInt(v), IsLit: true})
			n.Toks = append(n.Toks, Token{Kind: TokBind, Text: t.Text, Pos: t.Pos})
		case TokFloat:
			v, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, parseError(t, "malformed numeric literal")
			}
			n.Slots = append(n.Slots, Slot{Lit: types.NewFloat(v), IsLit: true})
			n.Toks = append(n.Toks, Token{Kind: TokBind, Text: t.Text, Pos: t.Pos})
		case TokString:
			n.Slots = append(n.Slots, Slot{Lit: types.NewString(t.Text), IsLit: true})
			n.Toks = append(n.Toks, Token{Kind: TokBind, Text: t.Text, Pos: t.Pos})
		case TokBind:
			n.Slots = append(n.Slots, Slot{Arg: n.UserBinds})
			n.UserBinds++
			n.Toks = append(n.Toks, t)
		default:
			n.Toks = append(n.Toks, t)
		}
	}
	n.Template = renderTemplate(n.Toks)
	return n, nil
}

// renderTemplate prints the normalized token stream canonically: tokens
// separated by single spaces, except no space after '(', before ')' or
// ',', or between an aggregate function and its '(' — so templates read
// count(*), not count (*). Bind tokens always render as `?` regardless of
// the literal text they carry for error messages. Re-lexing a template
// reproduces the same token kinds and spellings, which makes Normalize
// idempotent.
func renderTemplate(toks []Token) string {
	var b strings.Builder
	prev := TokEOF
	prevAgg := false
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		tight := prev == TokLParen || t.Kind == TokRParen || t.Kind == TokComma ||
			(t.Kind == TokLParen && prevAgg)
		if b.Len() > 0 && !tight {
			b.WriteByte(' ')
		}
		if t.Kind == TokBind {
			b.WriteByte('?')
		} else {
			b.WriteString(t.Text)
		}
		prev = t.Kind
		prevAgg = t.Kind == TokKeyword && aggFuncs[t.Text]
	}
	return b.String()
}
