package sql

import (
	"fmt"
	"sync"
	"testing"

	"s2db/internal/types"
)

func bindArgs(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestCacheTwoTiers(t *testing.T) {
	c := NewCache(8)

	// Cold: full compile.
	p, err := c.Prepare("SELECT * FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hit {
		t.Fatal("first Prepare reported a hit")
	}

	// Identical text: exact-text tier.
	p2, err := c.Prepare("SELECT * FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Hit {
		t.Fatal("identical text missed")
	}
	if p2.Stmt != p.Stmt {
		t.Fatal("text-tier hit returned a different statement")
	}

	// Different literal, same template: template tier (not text tier), and
	// the slot table carries the new literal.
	p3, err := c.Prepare("SELECT * FROM t WHERE a = 42")
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Hit {
		t.Fatal("same-template text missed")
	}
	if p3.Stmt != p.Stmt {
		t.Fatal("template-tier hit returned a different statement")
	}
	vals, err := p3.Bind(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].I != 42 {
		t.Fatalf("template-tier hit bound wrong literal: %+v", vals)
	}

	// Case/whitespace variations normalize to the same template.
	p4, err := c.Prepare("select  *  from t where a=99")
	if err != nil {
		t.Fatal(err)
	}
	if !p4.Hit || p4.Stmt != p.Stmt {
		t.Fatal("whitespace/case variant did not share the cached plan")
	}

	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Hits != 3 || s.TextHits != 1 {
		t.Fatalf("hits = %d (text %d), want 3 (text 1)", s.Hits, s.TextHits)
	}
	if s.Entries != 1 {
		t.Fatalf("template entries = %d, want 1", s.Entries)
	}
	// Each distinct text left an exact-text alias behind.
	if s.TextEntries != 3 {
		t.Fatalf("text entries = %d, want 3", s.TextEntries)
	}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	const capacity = 4
	c := NewCache(capacity)
	// 3*capacity distinct templates: both tiers must stay bounded.
	for i := 0; i < 3*capacity; i++ {
		if _, err := c.Prepare(fmt.Sprintf("SELECT * FROM t%d WHERE a = 1", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != capacity || s.TextEntries != capacity {
		t.Fatalf("entries = %d/%d, want both bounded to %d", s.Entries, s.TextEntries, capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("expected evictions")
	}

	// The most recent template survived; the oldest was evicted.
	p, err := c.Prepare(fmt.Sprintf("SELECT * FROM t%d WHERE a = 1", 3*capacity-1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Hit {
		t.Fatal("most-recent entry was evicted")
	}
	p, err = c.Prepare("SELECT * FROM t0 WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hit {
		t.Fatal("oldest entry survived a full wrap of the LRU")
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	c := NewCache(2)
	mustPrepare := func(q string) *Prepared {
		t.Helper()
		p, err := c.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	mustPrepare("SELECT * FROM a")
	mustPrepare("SELECT * FROM b")
	mustPrepare("SELECT * FROM a") // touch a → b is now LRU
	mustPrepare("SELECT * FROM c") // evicts b
	if !mustPrepare("SELECT * FROM a").Hit {
		t.Fatal("recently-touched entry was evicted")
	}
	if mustPrepare("SELECT * FROM b").Hit {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestNilCacheCompilesEveryTime(t *testing.T) {
	var c *Cache // the PlanCacheEntries=0 configuration
	for i := 0; i < 2; i++ {
		p, err := c.Prepare("SELECT * FROM t WHERE a = 1")
		if err != nil {
			t.Fatal(err)
		}
		if p.Hit {
			t.Fatal("disabled cache reported a hit")
		}
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("disabled cache has non-zero stats: %+v", s)
	}
	if NewCache(0) != nil || NewCache(-1) != nil {
		t.Fatal("NewCache(<=0) must return the disabled cache")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines mixing text
// hits, template hits and cold misses; run under -race this checks the
// locking discipline and that shared statements are safe to reuse.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT * FROM t WHERE a = %d AND b = ?", i%5)
				p, err := c.Prepare(q)
				if err != nil {
					t.Error(err)
					return
				}
				vals, err := p.Bind(bindArgs(int64(g)))
				if err != nil {
					t.Error(err)
					return
				}
				if len(vals) != 2 {
					t.Errorf("bound %d values, want 2", len(vals))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 {
		t.Fatal("no cache hits under concurrency")
	}
	if s.Entries > 16 || s.TextEntries > 16 {
		t.Fatalf("tier bounds exceeded: %d/%d", s.Entries, s.TextEntries)
	}
}
