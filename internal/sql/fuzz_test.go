package sql

import "testing"

// fuzzSeeds feeds both targets the full golden corpus plus inputs chosen
// to stress lexer/parser edges: escapes, exponents, unary minus, deep
// nesting, unicode, NULs.
func fuzzSeeds(f *testing.F) {
	for _, q := range loadQueries(f) {
		f.Add(q)
	}
	for _, q := range []string{
		"", " ", ";", "?", "''", "'''", "'''' ''",
		"-", "--", "- 1", "-.", "-1.5e-3", "1e", "1e+", ".5", "1.", "0x10",
		"select(((((", "select ))))",
		"select * from t where a in ()",
		"select * from t where a in (1",
		"select * from t where ((((a = 1))))",
		"insert into t values",
		"insert into t (a,) values (1)",
		"update t set",
		"delete from",
		"select count ( * ) from t",
		"select * from t where a = 'µ' and b = '\x00'",
		"SELECT\n*\nFROM\nt\nWHERE\na\n=\n1",
		"select * from t where a <> 1 and a <= 2 and a >= 3 and a != 4",
	} {
		f.Add(q)
	}
}

// FuzzParse asserts the parser's total-function contract: any input either
// parses or returns an error — it never panics — and a successful parse
// lowers without panicking too.
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, text string) {
		st, n, err := Parse(text)
		if err != nil {
			return
		}
		if st == nil || n == nil {
			t.Fatalf("nil statement/normalization without error for %q", text)
		}
		// Lowering shares the never-panics contract (validation errors are
		// fine; crashes are not).
		_, _ = Lower(st, n)
	})
}

// FuzzNormalize asserts that normalization is idempotent on anything that
// lexes: the template of a template is itself, with no literals left.
func FuzzNormalize(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, text string) {
		n, err := Normalize(text)
		if err != nil {
			return
		}
		n2, err := Normalize(n.Template)
		if err != nil {
			t.Fatalf("template %q of input %q fails to re-normalize: %v", n.Template, text, err)
		}
		if n2.Template != n.Template {
			t.Fatalf("normalize not idempotent for %q:\n first: %q\nsecond: %q", text, n.Template, n2.Template)
		}
		if n2.UserBinds != len(n2.Slots) {
			t.Fatalf("template %q of input %q still carries literals", n.Template, text)
		}
	})
}
