// Package sql is the hand-written SQL text front-end: a lexer, a
// normalizer that strips literals into bind slots (producing the cache-key
// template), a recursive-descent parser for the supported SELECT/DML
// subset, lowering onto the name-based execution surface of internal/exec
// and internal/core, and a shared size-bounded LRU plan cache keyed by
// normalized template so repeated query shapes pay lex/parse/lower once
// and then only bind + execute (§ DESIGN.md 11).
package sql

import "fmt"

// TokKind enumerates lexical token classes.
type TokKind uint8

const (
	// TokEOF terminates every token stream.
	TokEOF TokKind = iota
	// TokIdent is an unquoted identifier (table or column name).
	TokIdent
	// TokKeyword is a reserved word (select, from, where, ...), always
	// lowercased by the lexer.
	TokKeyword
	// TokInt is an integer literal (sign folded in by the lexer when it
	// cannot be a binary operator).
	TokInt
	// TokFloat is a floating-point literal.
	TokFloat
	// TokString is a single-quoted string literal ('' escapes a quote).
	TokString
	// TokBind is a `?` bind-parameter placeholder.
	TokBind
	// TokOp is a comparison operator (=, !=, <>, <, <=, >, >=).
	TokOp
	// TokLParen, TokRParen, TokComma, TokStar are punctuation.
	TokLParen
	TokRParen
	TokComma
	TokStar
)

// Pos locates a token in the original query text (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit with its source position. Text holds the
// canonical spelling: keywords lowercased, identifiers verbatim, operators
// normalized (<> becomes !=), literals their original digits/characters.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// keywords are the reserved words of the supported subset. Anything else
// alphanumeric lexes as an identifier.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"order": true, "limit": true, "and": true, "or": true, "in": true,
	"insert": true, "into": true, "values": true, "update": true,
	"set": true, "delete": true, "asc": true, "desc": true,
	"count": true, "sum": true, "min": true, "max": true, "avg": true,
}

// aggFuncs is the subset of keywords naming aggregate functions.
var aggFuncs = map[string]bool{
	"count": true, "sum": true, "min": true, "max": true, "avg": true,
}
