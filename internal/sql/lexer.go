package sql

import (
	"strings"
)

// Lex tokenizes SQL text, attaching original-text positions to every
// token. It never panics: malformed input returns a *ParseError. The
// appended TokEOF carries the position just past the last character.
//
// Unary minus is folded into numeric literals when the previous
// significant token cannot end an expression (the grammar has no
// arithmetic, so a `-` elsewhere is an error surfaced by the parser).
func Lex(text string) ([]Token, error) {
	lx := lexer{src: text, line: 1, col: 1}
	return lx.run()
}

type lexer struct {
	src  string
	i    int
	line int
	col  int
	toks []Token
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// advance consumes n bytes, tracking line/column.
func (lx *lexer) advance(n int) {
	for k := 0; k < n; k++ {
		if lx.src[lx.i] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.i++
	}
}

func (lx *lexer) emit(kind TokKind, text string, pos Pos) {
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Pos: pos})
}

// valueMayFollow reports whether the last emitted token puts the lexer in
// a position where a value (and hence a signed numeric literal) can start:
// after an operator, comma, opening paren, or most keywords — but not
// after an identifier, literal, bind or closing paren, where `-` would be
// a binary operator (unsupported, left for the parser to reject).
func (lx *lexer) valueMayFollow() bool {
	if len(lx.toks) == 0 {
		return false
	}
	switch t := lx.toks[len(lx.toks)-1]; t.Kind {
	case TokOp, TokComma, TokLParen, TokKeyword:
		return true
	default:
		return false
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) run() ([]Token, error) {
	src := lx.src
	for lx.i < len(src) {
		c := src[lx.i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance(1)
		case isIdentStart(c):
			lx.lexWord()
		case isDigit(c):
			if err := lx.lexNumber(lx.pos(), false); err != nil {
				return nil, err
			}
		case c == '-':
			pos := lx.pos()
			if lx.valueMayFollow() && lx.i+1 < len(src) && isDigit(src[lx.i+1]) {
				lx.advance(1) // the sign
				if err := lx.lexNumber(pos, true); err != nil {
					return nil, err
				}
				break
			}
			return nil, lexError(pos, "-", "unexpected '-' (arithmetic expressions are not supported)")
		case c == '\'':
			if err := lx.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			lx.emit(TokBind, "?", lx.pos())
			lx.advance(1)
		case c == '(':
			lx.emit(TokLParen, "(", lx.pos())
			lx.advance(1)
		case c == ')':
			lx.emit(TokRParen, ")", lx.pos())
			lx.advance(1)
		case c == ',':
			lx.emit(TokComma, ",", lx.pos())
			lx.advance(1)
		case c == '*':
			lx.emit(TokStar, "*", lx.pos())
			lx.advance(1)
		case c == '=':
			lx.emit(TokOp, "=", lx.pos())
			lx.advance(1)
		case c == '!':
			pos := lx.pos()
			if lx.i+1 < len(src) && src[lx.i+1] == '=' {
				lx.emit(TokOp, "!=", pos)
				lx.advance(2)
				break
			}
			return nil, lexError(pos, "!", "expected != after !")
		case c == '<':
			pos := lx.pos()
			switch {
			case lx.i+1 < len(src) && src[lx.i+1] == '=':
				lx.emit(TokOp, "<=", pos)
				lx.advance(2)
			case lx.i+1 < len(src) && src[lx.i+1] == '>':
				lx.emit(TokOp, "!=", pos) // <> canonicalizes to !=
				lx.advance(2)
			default:
				lx.emit(TokOp, "<", pos)
				lx.advance(1)
			}
		case c == '>':
			pos := lx.pos()
			if lx.i+1 < len(src) && src[lx.i+1] == '=' {
				lx.emit(TokOp, ">=", pos)
				lx.advance(2)
				break
			}
			lx.emit(TokOp, ">", pos)
			lx.advance(1)
		case c == ';':
			// A single trailing semicolon is tolerated; anything after it is
			// rejected by the parser seeing a stray token.
			lx.advance(1)
			for lx.i < len(src) {
				s := src[lx.i]
				if s != ' ' && s != '\t' && s != '\n' && s != '\r' {
					return nil, lexError(lx.pos(), string(s), "text after statement terminator")
				}
				lx.advance(1)
			}
		default:
			return nil, lexError(lx.pos(), string(c), "unexpected character %q", c)
		}
	}
	lx.emit(TokEOF, "", lx.pos())
	return lx.toks, nil
}

// lexWord consumes an identifier or keyword. Keywords are recognized
// case-insensitively and canonicalized to lowercase; identifier spelling
// is preserved (schema column names are case-sensitive).
func (lx *lexer) lexWord() {
	pos := lx.pos()
	start := lx.i
	for lx.i < len(lx.src) && isIdentPart(lx.src[lx.i]) {
		lx.advance(1)
	}
	word := lx.src[start:lx.i]
	if lower := strings.ToLower(word); keywords[lower] {
		lx.emit(TokKeyword, lower, pos)
		return
	}
	lx.emit(TokIdent, word, pos)
}

// lexNumber consumes an integer or float literal; the sign, when present,
// has already been consumed and is re-attached to the token text.
func (lx *lexer) lexNumber(pos Pos, neg bool) error {
	start := lx.i
	kind := TokInt
	for lx.i < len(lx.src) && isDigit(lx.src[lx.i]) {
		lx.advance(1)
	}
	if lx.i < len(lx.src) && lx.src[lx.i] == '.' {
		kind = TokFloat
		lx.advance(1)
		for lx.i < len(lx.src) && isDigit(lx.src[lx.i]) {
			lx.advance(1)
		}
	}
	if lx.i < len(lx.src) && (lx.src[lx.i] == 'e' || lx.src[lx.i] == 'E') {
		j := lx.i + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && isDigit(lx.src[j]) {
			kind = TokFloat
			lx.advance(j - lx.i)
			for lx.i < len(lx.src) && isDigit(lx.src[lx.i]) {
				lx.advance(1)
			}
		}
	}
	if lx.i < len(lx.src) && isIdentStart(lx.src[lx.i]) {
		return lexError(lx.pos(), string(lx.src[lx.i]), "malformed number")
	}
	text := lx.src[start:lx.i]
	if neg {
		text = "-" + text
	}
	lx.emit(kind, text, pos)
	return nil
}

// lexString consumes a single-quoted string; ” inside escapes a quote.
// The token text is the decoded value.
func (lx *lexer) lexString() error {
	pos := lx.pos()
	lx.advance(1) // opening quote
	var b strings.Builder
	for lx.i < len(lx.src) {
		c := lx.src[lx.i]
		if c == '\'' {
			if lx.i+1 < len(lx.src) && lx.src[lx.i+1] == '\'' {
				b.WriteByte('\'')
				lx.advance(2)
				continue
			}
			lx.advance(1)
			lx.emit(TokString, b.String(), pos)
			return nil
		}
		b.WriteByte(c)
		lx.advance(1)
	}
	return lexError(pos, "'", "unterminated string literal")
}

// FindIdent re-lexes text and returns the position of the first token
// spelled exactly name, for annotating late (execution-time) column errors
// with the identifier's location in the text the caller actually sent.
// The zero Pos is returned when the name does not appear.
func FindIdent(text, name string) Pos {
	toks, err := Lex(text)
	if err != nil {
		return Pos{}
	}
	for _, t := range toks {
		if t.Kind == TokIdent && t.Text == name {
			return t.Pos
		}
	}
	return Pos{}
}
