package sql

import (
	"fmt"
	"strings"

	"s2db/internal/vector"
)

// The AST is produced by parsing the *normalized* token stream: every
// literal has already been replaced by a bind slot, so value positions in
// the tree are slot indexes into Normalized.Slots, never concrete values.
// That is what makes one parsed tree reusable for every query text that
// normalizes to the same template.

// Stmt is one parsed statement: *SelectStmt, *InsertStmt, *UpdateStmt or
// *DeleteStmt.
type Stmt interface{ stmtNode() }

// IdentRef is an identifier occurrence with its source position.
type IdentRef struct {
	Name string
	Pos  Pos
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	// Star is set for SELECT *; otherwise Items lists the outputs.
	Star  bool
	Items []SelectItem
	Table IdentRef
	// Where is nil when absent.
	Where   Expr
	GroupBy []IdentRef
	OrderBy []OrderItem
	// LimitSlot is the bind slot of the LIMIT count, or -1 when absent.
	LimitSlot int
}

func (*SelectStmt) stmtNode() {}

// SelectItem is one select-list output: a plain column (Agg empty) or an
// aggregate function application.
type SelectItem struct {
	// Col is the plain output column, or the aggregate argument.
	Col IdentRef
	// Agg names the aggregate function ("count", "sum", ...), empty for a
	// plain column.
	Agg string
	// Star marks count(*).
	Star bool
	Pos  Pos
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  IdentRef
	Desc bool
}

// Expr is a predicate tree node: *CmpExpr, *InExpr or *LogicalExpr.
type Expr interface{ exprNode() }

// CmpExpr is `col op ?`.
type CmpExpr struct {
	Col  IdentRef
	Op   vector.CmpOp
	Slot int
}

func (*CmpExpr) exprNode() {}

// InExpr is `col IN (?, ...)`.
type InExpr struct {
	Col   IdentRef
	Slots []int
}

func (*InExpr) exprNode() {}

// LogicalExpr is an n-ary AND/OR.
type LogicalExpr struct {
	// Op is "and" or "or".
	Op   string
	Args []Expr
}

func (*LogicalExpr) exprNode() {}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table IdentRef
	// Columns is the explicit column list, nil for schema order.
	Columns []IdentRef
	// Rows holds one slot-index tuple per VALUES row.
	Rows [][]int
	// RowPos locates each tuple's opening parenthesis for arity errors.
	RowPos []Pos
}

func (*InsertStmt) stmtNode() {}

// SetClause is one `col = ?` assignment of an UPDATE.
type SetClause struct {
	Col  IdentRef
	Slot int
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table IdentRef
	Set   []SetClause
	Where Expr
}

func (*UpdateStmt) stmtNode() {}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table IdentRef
	Where Expr
}

func (*DeleteStmt) stmtNode() {}

// Dump renders a statement as a stable multi-line tree for golden-file
// snapshots. Slot indexes appear as ?N.
func Dump(s Stmt) string {
	var b strings.Builder
	switch st := s.(type) {
	case *SelectStmt:
		fmt.Fprintf(&b, "select from %s\n", st.Table.Name)
		if st.Star {
			b.WriteString("  items: *\n")
		} else {
			parts := make([]string, len(st.Items))
			for i, it := range st.Items {
				switch {
				case it.Agg == "":
					parts[i] = it.Col.Name
				case it.Star:
					parts[i] = it.Agg + "(*)"
				default:
					parts[i] = fmt.Sprintf("%s(%s)", it.Agg, it.Col.Name)
				}
			}
			fmt.Fprintf(&b, "  items: %s\n", strings.Join(parts, ", "))
		}
		if st.Where != nil {
			fmt.Fprintf(&b, "  where: %s\n", dumpExpr(st.Where))
		}
		if len(st.GroupBy) > 0 {
			names := make([]string, len(st.GroupBy))
			for i, g := range st.GroupBy {
				names[i] = g.Name
			}
			fmt.Fprintf(&b, "  group: %s\n", strings.Join(names, ", "))
		}
		if len(st.OrderBy) > 0 {
			keys := make([]string, len(st.OrderBy))
			for i, o := range st.OrderBy {
				keys[i] = o.Col.Name
				if o.Desc {
					keys[i] += " desc"
				}
			}
			fmt.Fprintf(&b, "  order: %s\n", strings.Join(keys, ", "))
		}
		if st.LimitSlot >= 0 {
			fmt.Fprintf(&b, "  limit: ?%d\n", st.LimitSlot)
		}
	case *InsertStmt:
		fmt.Fprintf(&b, "insert into %s\n", st.Table.Name)
		if len(st.Columns) > 0 {
			names := make([]string, len(st.Columns))
			for i, c := range st.Columns {
				names[i] = c.Name
			}
			fmt.Fprintf(&b, "  columns: %s\n", strings.Join(names, ", "))
		}
		for _, row := range st.Rows {
			fmt.Fprintf(&b, "  row: %s\n", dumpSlots(row))
		}
	case *UpdateStmt:
		fmt.Fprintf(&b, "update %s\n", st.Table.Name)
		for _, sc := range st.Set {
			fmt.Fprintf(&b, "  set: %s = ?%d\n", sc.Col.Name, sc.Slot)
		}
		if st.Where != nil {
			fmt.Fprintf(&b, "  where: %s\n", dumpExpr(st.Where))
		}
	case *DeleteStmt:
		fmt.Fprintf(&b, "delete from %s\n", st.Table.Name)
		if st.Where != nil {
			fmt.Fprintf(&b, "  where: %s\n", dumpExpr(st.Where))
		}
	default:
		fmt.Fprintf(&b, "%T\n", s)
	}
	return b.String()
}

func dumpExpr(e Expr) string {
	switch x := e.(type) {
	case *CmpExpr:
		return fmt.Sprintf("%s %s ?%d", x.Col.Name, x.Op, x.Slot)
	case *InExpr:
		return fmt.Sprintf("%s in (%s)", x.Col.Name, dumpSlots(x.Slots))
	case *LogicalExpr:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = dumpExpr(a)
		}
		return "(" + strings.Join(parts, " "+x.Op+" ") + ")"
	}
	return fmt.Sprintf("%T", e)
}

func dumpSlots(slots []int) string {
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = fmt.Sprintf("?%d", s)
	}
	return strings.Join(parts, ", ")
}
