package sql

import (
	"container/list"
	"sync"

	"s2db/internal/types"
)

// Cache is the shared, size-bounded plan cache. It has two tiers:
//
//   - an exact-text tier mapping raw query bytes to (statement, bind
//     slots): a hit here skips lexing entirely — the common case for a
//     serving tier re-issuing identical parameterized text;
//   - a template tier keyed by the normalized template: a hit skips
//     parse + lower (the text still lexes once to extract its literals,
//     which become this call's binds).
//
// Both tiers are LRU with the same entry bound; cached Statements are
// immutable and shared across goroutines. Prepared is the result of a
// lookup: everything needed to bind and execute.
type Cache struct {
	mu       sync.Mutex
	capacity int
	byText   map[string]*list.Element
	byTpl    map[string]*list.Element
	textLRU  *list.List // of *textEntry
	tplLRU   *list.List // of *tplEntry

	hits      int64 // total hits (text + template tier)
	textHits  int64 // subset of hits served by the exact-text tier
	misses    int64 // full lex+parse+lower compilations
	evictions int64
}

type textEntry struct {
	key       string
	tpl       string // template key, so a text hit refreshes tpl recency too
	stmt      *Statement
	slots     []Slot
	userBinds int
}

type tplEntry struct {
	key  string
	stmt *Statement
}

// CacheStats snapshots the plan cache counters. Hits counts lookups that
// reused a cached plan (TextHits of which also skipped lexing); Misses
// counts full compilations. Entries and TextEntries report current
// occupancy of the two tiers.
type CacheStats struct {
	Hits        int64
	TextHits    int64
	Misses      int64
	Evictions   int64
	Entries     int
	TextEntries int
}

// HitRate reports hits / (hits + misses).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache returns a plan cache bounded to the given number of entries
// per tier. entries <= 0 returns nil — the disabled (parse-every-time)
// configuration, which every method tolerates.
func NewCache(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	return &Cache{
		capacity: entries,
		byText:   make(map[string]*list.Element),
		byTpl:    make(map[string]*list.Element),
		textLRU:  list.New(),
		tplLRU:   list.New(),
	}
}

// Prepared is a ready-to-bind statement: the cached (or freshly compiled)
// plan, this call's bind-slot table, and whether the plan came from the
// cache.
type Prepared struct {
	Stmt      *Statement
	Slots     []Slot
	UserBinds int
	// Hit reports whether the plan was served from the cache (either
	// tier); a miss paid lex+parse+lower.
	Hit bool
}

// Compile lexes, parses and lowers text with no cache involvement.
func Compile(text string) (*Prepared, error) {
	st, n, err := Parse(text)
	if err != nil {
		return nil, err
	}
	stmt, err := Lower(st, n)
	if err != nil {
		return nil, err
	}
	return &Prepared{Stmt: stmt, Slots: n.Slots, UserBinds: n.UserBinds}, nil
}

// Prepare resolves text to an executable statement through the cache: the
// exact-text tier first, then the template tier, compiling on a full miss.
// A nil receiver compiles every time (the disabled configuration).
func (c *Cache) Prepare(text string) (*Prepared, error) {
	if c == nil {
		return Compile(text)
	}
	c.mu.Lock()
	if el, ok := c.byText[text]; ok {
		c.textLRU.MoveToFront(el)
		e := el.Value.(*textEntry)
		// Keep the template entry hot too: the text alias may outlive it in
		// LRU order otherwise, evicting the plan other texts still share.
		if tl, ok := c.byTpl[e.tpl]; ok {
			c.tplLRU.MoveToFront(tl)
		}
		c.hits++
		c.textHits++
		c.mu.Unlock()
		return &Prepared{Stmt: e.stmt, Slots: e.slots, UserBinds: e.userBinds, Hit: true}, nil
	}
	c.mu.Unlock()

	// Lex outside the lock: normalization yields the template key and this
	// text's literal binds.
	n, err := Normalize(text)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.byTpl[n.Template]; ok {
		c.tplLRU.MoveToFront(el)
		stmt := el.Value.(*tplEntry).stmt
		c.hits++
		c.addTextLocked(text, n.Template, stmt, n.Slots, n.UserBinds)
		c.mu.Unlock()
		return &Prepared{Stmt: stmt, Slots: n.Slots, UserBinds: n.UserBinds, Hit: true}, nil
	}
	c.mu.Unlock()

	// Full miss: parse + lower outside the lock. Concurrent misses on the
	// same template may both compile; the last Insert wins, which is
	// harmless (statements are immutable and equivalent).
	st, err := ParseTokens(n.Toks)
	if err != nil {
		return nil, err
	}
	stmt, err := Lower(st, n)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	if el, ok := c.byTpl[n.Template]; ok {
		c.tplLRU.MoveToFront(el)
		el.Value.(*tplEntry).stmt = stmt
	} else {
		c.byTpl[n.Template] = c.tplLRU.PushFront(&tplEntry{key: n.Template, stmt: stmt})
		for c.tplLRU.Len() > c.capacity {
			old := c.tplLRU.Back()
			c.tplLRU.Remove(old)
			delete(c.byTpl, old.Value.(*tplEntry).key)
			c.evictions++
		}
	}
	c.addTextLocked(text, n.Template, stmt, n.Slots, n.UserBinds)
	c.mu.Unlock()
	return &Prepared{Stmt: stmt, Slots: n.Slots, UserBinds: n.UserBinds}, nil
}

// addTextLocked installs an exact-text alias (c.mu held).
func (c *Cache) addTextLocked(text, tpl string, stmt *Statement, slots []Slot, userBinds int) {
	if el, ok := c.byText[text]; ok {
		c.textLRU.MoveToFront(el)
		return
	}
	c.byText[text] = c.textLRU.PushFront(&textEntry{key: text, tpl: tpl, stmt: stmt, slots: slots, userBinds: userBinds})
	for c.textLRU.Len() > c.capacity {
		old := c.textLRU.Back()
		c.textLRU.Remove(old)
		delete(c.byText, old.Value.(*textEntry).key)
		c.evictions++
	}
}

// Stats snapshots the cache counters; all zero for a nil (disabled) cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		TextHits:    c.textHits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     c.tplLRU.Len(),
		TextEntries: c.textLRU.Len(),
	}
}

// Bind validates the caller's arguments against the prepared statement and
// returns the full slot-value vector.
func (p *Prepared) Bind(args []types.Value) ([]types.Value, error) {
	return BindValues(p.Slots, p.UserBinds, args)
}
