package sql

import (
	"fmt"

	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// StmtKind classifies a lowered statement.
type StmtKind uint8

const (
	// StmtSelect is a query returning rows.
	StmtSelect StmtKind = iota
	// StmtInsert, StmtUpdate, StmtDelete are DML returning a row count.
	StmtInsert
	StmtUpdate
	StmtDelete
)

// String names the statement kind.
func (k StmtKind) String() string {
	switch k {
	case StmtSelect:
		return "select"
	case StmtInsert:
		return "insert"
	case StmtUpdate:
		return "update"
	case StmtDelete:
		return "delete"
	}
	return fmt.Sprintf("StmtKind(%d)", uint8(k))
}

// Statement is a lowered, parameterized plan: everything lex/parse/lower
// produce that does not depend on concrete bind values. Statements are
// immutable after lowering and shared across goroutines by the plan cache;
// per-execution state (values, filter trees with adaptive counters) is
// created by the Bind* methods.
type Statement struct {
	// Kind selects which plan below is set.
	Kind StmtKind
	// Table is the target table name.
	Table string
	// Template is the normalized text that keys the plan cache.
	Template string
	// Slots is the total number of bind slots the template carries
	// (extracted literals + caller placeholders).
	Slots int

	sel *selectPlan
	ins *insertPlan
	upd *updatePlan
	del *deletePlan
}

// aggOut is one aggregate output in builder order.
type aggOut struct {
	fn  exec.AggFunc
	col IdentRef // zero Name for count(*)
}

// selectPlan is the lowered SELECT shape.
type selectPlan struct {
	filter  Expr
	groupBy []IdentRef
	aggs    []aggOut
	order   []exec.SortKey // name-based; resolved by the executor
	// limitSlot is the bind slot of the LIMIT count, -1 for none.
	limitSlot int
	star      bool
	// aggOutMap maps each select item to its position in the executor's
	// output row (group values first, then aggregates); nil for plain
	// (non-aggregate) queries.
	aggOutMap []int
	// projCols names the plain query's output columns (resolved to schema
	// ordinals at bind); nil for SELECT *.
	projCols []IdentRef
}

type insertPlan struct {
	columns []IdentRef // nil = schema order
	rows    [][]int
	rowPos  []Pos
}

type updatePlan struct {
	set    []SetClause
	filter Expr
}

type deletePlan struct {
	filter Expr
}

var aggFuncByName = map[string]exec.AggFunc{
	"count": exec.Count, "sum": exec.Sum, "min": exec.Min,
	"max": exec.Max, "avg": exec.Avg,
}

// Lower validates a parsed statement and produces its parameterized plan.
// Everything checkable without a schema or bind values is checked here, so
// the work is paid once per template rather than once per execution.
func Lower(st Stmt, n *Normalized) (*Statement, error) {
	out := &Statement{Template: n.Template, Slots: len(n.Slots)}
	switch s := st.(type) {
	case *SelectStmt:
		out.Kind = StmtSelect
		out.Table = s.Table.Name
		plan, err := lowerSelect(s)
		if err != nil {
			return nil, err
		}
		out.sel = plan
	case *InsertStmt:
		out.Kind = StmtInsert
		out.Table = s.Table.Name
		out.ins = &insertPlan{columns: s.Columns, rows: s.Rows, rowPos: s.RowPos}
	case *UpdateStmt:
		out.Kind = StmtUpdate
		out.Table = s.Table.Name
		out.upd = &updatePlan{set: s.Set, filter: s.Where}
	case *DeleteStmt:
		out.Kind = StmtDelete
		out.Table = s.Table.Name
		out.del = &deletePlan{filter: s.Where}
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
	return out, nil
}

func lowerSelect(s *SelectStmt) (*selectPlan, error) {
	plan := &selectPlan{
		filter:    s.Where,
		groupBy:   s.GroupBy,
		limitSlot: s.LimitSlot,
		star:      s.Star,
	}
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != "" {
			hasAgg = true
			break
		}
	}
	if len(s.GroupBy) > 0 && !hasAgg {
		ref := s.GroupBy[0]
		return nil, &ParseError{Pos: ref.Pos, Token: ref.Name,
			Msg: "GROUP BY requires at least one aggregate in the select list"}
	}
	if s.Star && hasAgg {
		return nil, &ParseError{Pos: s.Table.Pos, Token: s.Table.Name,
			Msg: "SELECT * cannot be combined with aggregates"}
	}
	switch {
	case hasAgg:
		// Aggregate query: the executor outputs group values then one value
		// per aggregate; plain select items must be group-by columns.
		for _, it := range s.Items {
			if it.Agg == "" {
				pos := groupIndex(s.GroupBy, it.Col.Name)
				if pos < 0 {
					return nil, &ParseError{Pos: it.Col.Pos, Token: it.Col.Name,
						Msg: fmt.Sprintf("column %q must appear in GROUP BY to be selected alongside aggregates", it.Col.Name)}
				}
				plan.aggOutMap = append(plan.aggOutMap, pos)
				continue
			}
			plan.aggOutMap = append(plan.aggOutMap, len(s.GroupBy)+len(plan.aggs))
			plan.aggs = append(plan.aggs, aggOut{fn: aggFuncByName[it.Agg], col: it.Col})
		}
		// ORDER BY on an aggregate query sorts the executor's group+agg rows,
		// so the key must be a grouping column.
		for _, o := range s.OrderBy {
			if groupIndex(s.GroupBy, o.Col.Name) < 0 {
				return nil, &ParseError{Pos: o.Col.Pos, Token: o.Col.Name,
					Msg: fmt.Sprintf("ORDER BY column %q is not a group-by column of the aggregate query", o.Col.Name)}
			}
		}
	case !s.Star:
		plan.projCols = make([]IdentRef, len(s.Items))
		for i, it := range s.Items {
			plan.projCols[i] = it.Col
		}
	}
	for _, o := range s.OrderBy {
		plan.order = append(plan.order, exec.SortKey{Name: o.Col.Name, Desc: o.Desc})
	}
	return plan, nil
}

func groupIndex(groups []IdentRef, name string) int {
	for i, g := range groups {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// BindValues assembles the full slot-value vector for one call: extracted
// literals fill their slots, caller arguments fill the `?` slots in order.
func BindValues(slots []Slot, userBinds int, args []types.Value) ([]types.Value, error) {
	if len(args) != userBinds {
		return nil, fmt.Errorf("sql: statement requires %d bind argument(s), got %d", userBinds, len(args))
	}
	vals := make([]types.Value, len(slots))
	for i, s := range slots {
		if s.IsLit {
			vals[i] = s.Lit
		} else {
			vals[i] = args[s.Arg]
		}
	}
	return vals, nil
}

// BoundSelect is an execution-ready SELECT: concrete values substituted,
// ready to hand to the fluent builder. References stay name-based — the
// executor resolves them against the same schema snapshot it scans.
type BoundSelect struct {
	Table   string
	Filter  exec.Node
	GroupBy []string
	Aggs    []exec.AggSpec
	Order   []exec.SortKey
	// Limit is the row cap, -1 for none.
	Limit int
	// Project maps executor output rows to the select list: for each output
	// column, the position in the executor's result row. Nil means the
	// executor rows are returned as-is (SELECT *).
	Project []int
}

// BindSelect instantiates the parameterized plan with concrete slot values
// against a schema. text is the original query (re-lexed only on error
// paths to attach positions to column errors).
func (s *Statement) BindSelect(text string, vals []types.Value, schema *types.Schema) (*BoundSelect, error) {
	if s.Kind != StmtSelect {
		return nil, fmt.Errorf("sql: %s statement is not a query (use Exec)", s.Kind)
	}
	p := s.sel
	b := &BoundSelect{Table: s.Table, Order: p.order, Limit: -1}
	var err error
	if b.Filter, err = buildFilter(p.filter, text, vals, schema); err != nil {
		return nil, err
	}
	for _, g := range p.groupBy {
		if schema.ColIndex(g.Name) < 0 {
			return nil, columnError(text, g.Name, exec.UnknownColumnError(g.Name, schema))
		}
		b.GroupBy = append(b.GroupBy, g.Name)
	}
	for _, a := range p.aggs {
		if a.col.Name == "" { // count(*)
			b.Aggs = append(b.Aggs, exec.AggSpec{Func: exec.Count, Col: -1})
			continue
		}
		ci := schema.ColIndex(a.col.Name)
		if ci < 0 {
			return nil, columnError(text, a.col.Name, exec.UnknownColumnError(a.col.Name, schema))
		}
		if (a.fn == exec.Sum || a.fn == exec.Avg) && schema.Columns[ci].Type == types.String {
			return nil, columnError(text, a.col.Name,
				fmt.Errorf("%s() requires a numeric column, %q is %s", a.fn, a.col.Name, schema.Columns[ci].Type))
		}
		b.Aggs = append(b.Aggs, exec.AggSpec{Func: a.fn, ColName: a.col.Name})
	}
	for _, k := range p.order {
		if schema.ColIndex(k.Name) < 0 {
			return nil, columnError(text, k.Name, exec.UnknownColumnError(k.Name, schema))
		}
	}
	switch {
	case p.aggOutMap != nil:
		b.Project = p.aggOutMap
	case p.projCols != nil:
		b.Project = make([]int, len(p.projCols))
		for i, c := range p.projCols {
			ci := schema.ColIndex(c.Name)
			if ci < 0 {
				return nil, columnError(text, c.Name, exec.UnknownColumnError(c.Name, schema))
			}
			b.Project[i] = ci
		}
	}
	if p.limitSlot >= 0 {
		v := vals[p.limitSlot]
		if v.Type != types.Int64 || v.IsNull || v.I < 0 {
			return nil, fmt.Errorf("sql: LIMIT requires a non-negative integer, got %s", v)
		}
		b.Limit = int(v.I)
	}
	return b, nil
}

// buildFilter instantiates the predicate template into a fresh name-based
// exec tree (fresh nodes per execution: adaptive per-node statistics must
// not be shared between runs), coercing bind values to the referenced
// column's type.
func buildFilter(e Expr, text string, vals []types.Value, schema *types.Schema) (exec.Node, error) {
	if e == nil {
		return nil, nil
	}
	switch x := e.(type) {
	case *CmpExpr:
		v, err := coerce(x.Col, text, vals[x.Slot], schema)
		if err != nil {
			return nil, err
		}
		return exec.NewNamedLeaf(x.Col.Name, x.Op, v), nil
	case *InExpr:
		vs := make([]types.Value, len(x.Slots))
		for i, s := range x.Slots {
			v, err := coerce(x.Col, text, vals[s], schema)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		return exec.NewNamedIn(x.Col.Name, vs), nil
	case *LogicalExpr:
		kids := make([]exec.Node, len(x.Args))
		for i, a := range x.Args {
			k, err := buildFilter(a, text, vals, schema)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		if x.Op == "and" {
			return exec.NewAnd(kids...), nil
		}
		return exec.NewOr(kids...), nil
	}
	return nil, fmt.Errorf("sql: unsupported predicate %T", e)
}

// coerce validates that v is usable against col's schema type, widening
// integer binds to float for DOUBLE columns (SQL numeric literals lex as
// integers when they have no decimal point).
func coerce(col IdentRef, text string, v types.Value, schema *types.Schema) (types.Value, error) {
	ci := schema.ColIndex(col.Name)
	if ci < 0 {
		return types.Value{}, columnError(text, col.Name, exec.UnknownColumnError(col.Name, schema))
	}
	want := schema.Columns[ci].Type
	if v.IsNull {
		return types.Null(want), nil
	}
	if v.Type == want {
		return v, nil
	}
	if want == types.Float64 && v.Type == types.Int64 {
		return types.NewFloat(float64(v.I)), nil
	}
	return types.Value{}, columnError(text, col.Name,
		fmt.Errorf("type mismatch: column %q is %s, got %s", col.Name, want, v.Type))
}

// BindInsert instantiates an INSERT's rows in schema column order.
func (s *Statement) BindInsert(text string, vals []types.Value, schema *types.Schema) ([]types.Row, error) {
	if s.Kind != StmtInsert {
		return nil, fmt.Errorf("sql: not an insert statement")
	}
	p := s.ins
	// perm[i] is the slot-tuple index feeding schema column i.
	perm := make([]int, len(schema.Columns))
	if p.columns == nil {
		if len(p.rows) > 0 && len(p.rows[0]) != len(schema.Columns) {
			return nil, fmt.Errorf("sql: INSERT row has %d values, table %q has %d columns",
				len(p.rows[0]), s.Table, len(schema.Columns))
		}
		for i := range perm {
			perm[i] = i
		}
	} else {
		for i := range perm {
			perm[i] = -1
		}
		for ti, c := range p.columns {
			ci := schema.ColIndex(c.Name)
			if ci < 0 {
				return nil, columnError(text, c.Name, exec.UnknownColumnError(c.Name, schema))
			}
			if perm[ci] != -1 {
				return nil, columnError(text, c.Name, fmt.Errorf("duplicate column %q in INSERT column list", c.Name))
			}
			perm[ci] = ti
		}
		for ci, ti := range perm {
			if ti < 0 {
				return nil, fmt.Errorf("sql: INSERT column list is missing column %q (every column must be supplied)",
					schema.Columns[ci].Name)
			}
		}
	}
	rows := make([]types.Row, len(p.rows))
	for ri, tuple := range p.rows {
		row := make(types.Row, len(schema.Columns))
		for ci := range schema.Columns {
			v := vals[tuple[perm[ci]]]
			cv, err := coerceType(v, schema.Columns[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("sql: INSERT row %d, column %q: %w", ri+1, schema.Columns[ci].Name, err)
			}
			row[ci] = cv
		}
		rows[ri] = row
	}
	return rows, nil
}

// coerceType widens v to the target column type without a column reference
// (INSERT/SET value positions).
func coerceType(v types.Value, want types.ColType) (types.Value, error) {
	if v.IsNull {
		return types.Null(want), nil
	}
	if v.Type == want {
		return v, nil
	}
	if want == types.Float64 && v.Type == types.Int64 {
		return types.NewFloat(float64(v.I)), nil
	}
	return types.Value{}, fmt.Errorf("type mismatch: column is %s, got %s", want, v.Type)
}

// BoundMutation is an execution-ready UPDATE or DELETE: the targeting
// Where (with an index hint when the predicate pins an equality) and, for
// UPDATE, the row transform.
type BoundMutation struct {
	Table string
	Where core.Where
	// Set rewrites a row for UPDATE; nil for DELETE.
	Set func(types.Row) types.Row
}

// BindUpdate instantiates an UPDATE against the schema.
func (s *Statement) BindUpdate(text string, vals []types.Value, schema *types.Schema) (*BoundMutation, error) {
	if s.Kind != StmtUpdate {
		return nil, fmt.Errorf("sql: not an update statement")
	}
	p := s.upd
	type assign struct {
		col int
		val types.Value
	}
	assigns := make([]assign, len(p.set))
	for i, sc := range p.set {
		ci := schema.ColIndex(sc.Col.Name)
		if ci < 0 {
			return nil, columnError(text, sc.Col.Name, exec.UnknownColumnError(sc.Col.Name, schema))
		}
		v, err := coerceType(vals[sc.Slot], schema.Columns[ci].Type)
		if err != nil {
			return nil, columnError(text, sc.Col.Name, err)
		}
		assigns[i] = assign{col: ci, val: v}
	}
	w, err := bindWhere(p.filter, text, vals, schema)
	if err != nil {
		return nil, err
	}
	set := func(r types.Row) types.Row {
		out := r.Clone()
		for _, a := range assigns {
			out[a.col] = a.val
		}
		return out
	}
	return &BoundMutation{Table: s.Table, Where: w, Set: set}, nil
}

// BindDelete instantiates a DELETE against the schema.
func (s *Statement) BindDelete(text string, vals []types.Value, schema *types.Schema) (*BoundMutation, error) {
	if s.Kind != StmtDelete {
		return nil, fmt.Errorf("sql: not a delete statement")
	}
	w, err := bindWhere(s.del.filter, text, vals, schema)
	if err != nil {
		return nil, err
	}
	return &BoundMutation{Table: s.Table, Where: w}, nil
}

// bindWhere lowers a predicate template onto core.Where: the full tree is
// resolved to ordinals and evaluated per candidate row, and the first
// top-level equality (if any) becomes the index hint core uses to seek
// instead of scanning.
func bindWhere(e Expr, text string, vals []types.Value, schema *types.Schema) (core.Where, error) {
	if e == nil {
		return core.All(), nil
	}
	tree, err := buildFilter(e, text, vals, schema)
	if err != nil {
		return core.Where{}, err
	}
	resolved, err := exec.ResolveNames(tree, schema)
	if err != nil {
		return core.Where{}, err
	}
	w := core.Where{Col: -1, Pred: resolved.EvalRow}
	if col, val, ok := indexHint(e, vals, schema); ok {
		w.Col, w.Val = col, val
	}
	return w, nil
}

// indexHint finds an equality the mutation can seek on: a bare `col = ?`
// or the first such clause of a top-level AND.
func indexHint(e Expr, vals []types.Value, schema *types.Schema) (int, types.Value, bool) {
	switch x := e.(type) {
	case *CmpExpr:
		if x.Op != vector.Eq {
			return 0, types.Value{}, false
		}
		ci := schema.ColIndex(x.Col.Name)
		if ci < 0 {
			return 0, types.Value{}, false
		}
		v, err := coerce(x.Col, "", vals[x.Slot], schema)
		if err != nil {
			return 0, types.Value{}, false
		}
		return ci, v, true
	case *LogicalExpr:
		if x.Op != "and" {
			return 0, types.Value{}, false
		}
		for _, a := range x.Args {
			if c, v, ok := indexHint(a, vals, schema); ok {
				return c, v, ok
			}
		}
	}
	return 0, types.Value{}, false
}
