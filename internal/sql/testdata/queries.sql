-- Valid queries: every supported shape. One query per line; lines
-- starting with -- are comments. The golden snapshots live in
-- parse.golden (regenerate with `go test ./internal/sql -update`).
SELECT * FROM orders
select * from orders where price > 10
SELECT * FROM orders WHERE price > ? AND quantity <= 3
SELECT * FROM orders WHERE category = 'books' OR category = 'games'
SELECT * FROM orders WHERE category IN ('books', 'games', 'tools')
SELECT * FROM orders WHERE id IN (?, ?) AND price != 9.99
SELECT * FROM orders WHERE (price < 5 OR price >= 100) AND quantity <> 2
SELECT * FROM ORDERS WHERE PRICE > 10
select id, category from orders where price > 1.5e2 order by id desc limit 10
SELECT category, count(*), sum(price) FROM orders GROUP BY category
SELECT count(*), min(price), max(price), avg(quantity) FROM orders
SELECT category, region, count(*) FROM orders WHERE price > ? GROUP BY category, region ORDER BY category ASC, region DESC LIMIT 5
SELECT sum(price), category FROM orders GROUP BY category
SELECT * FROM orders WHERE price = -5
SELECT * FROM orders WHERE price > -1.25 LIMIT 3
SELECT * FROM orders WHERE note = 'it''s quoted'
SELECT * FROM orders LIMIT ?
INSERT INTO orders VALUES (1, 'books', 2, 9.99)
INSERT INTO orders (id, category) VALUES (?, ?), (2, 'games')
insert into orders values (?, ?, ?, ?)
UPDATE orders SET price = 12.5 WHERE id = 7
UPDATE orders SET price = ?, quantity = ? WHERE category = 'books' AND price < ?
update orders set quantity = 0
DELETE FROM orders WHERE id = ?
DELETE FROM orders
delete from orders where category in ('a','b') or price > 100
SELECT * FROM orders WHERE price > 10;
-- Invalid queries: each must produce an error with a position.
SELECT
SELECT * FROM
SELECT * WHERE price > 10
SELECT * FROM orders WHERE
SELECT * FROM orders WHERE price >
SELECT * FROM orders WHERE price > > 10
SELECT * FROM orders WHERE price 10
SELECT * FROM orders WHERE price = 'unterminated
SELECT * FROM orders WHERE price = 10 GROUP category
SELECT * FROM orders GROUP BY category
SELECT *, count(*) FROM orders GROUP BY category
SELECT quantity, count(*) FROM orders GROUP BY category
SELECT category, count(*) FROM orders GROUP BY category ORDER BY price
SELECT sum(*) FROM orders
SELECT * FROM orders LIMIT 10 WHERE price > 1
SELECT * FROM orders trailing garbage
SELECT * FROM orders; SELECT * FROM orders
INSERT INTO orders (id, category) VALUES (1, 'books', 2)
INSERT INTO orders VALUES (1, 2), (3, 4, 5)
INSERT orders VALUES (1)
UPDATE orders WHERE id = 1
UPDATE orders SET price > 5
DELETE orders WHERE id = 1
DROP TABLE orders
SELECT * FROM orders WHERE price + 1 > 2
SELECT * FROM orders WHERE price = 99999999999999999999
SELECT * FROM orders WHERE a = b
SELECT * FROM orders WHERE price > 10e
