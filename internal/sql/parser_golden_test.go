package sql

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshots")

// loadQueries returns the query inputs of testdata/queries.sql (one per
// line, comments and blanks skipped).
func loadQueries(t testing.TB) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "queries.sql"))
	if err != nil {
		t.Fatalf("read queries: %v", err)
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "--") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// snapshot renders one query's outcome through parse AND lower: the
// normalized template and AST dump for valid input, the error (with its
// position) otherwise. Lowering runs too so schema-independent statement
// validation (GROUP BY needs an aggregate, ORDER BY on a grouped query
// must name a group column, ...) is snapshotted alongside the grammar.
func snapshot(query string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s\n", query)
	st, n, err := Parse(query)
	if err != nil {
		fmt.Fprintf(&b, "error: %v\n", err)
		return b.String()
	}
	if _, err := Lower(st, n); err != nil {
		fmt.Fprintf(&b, "lower error: %v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "template: %s\n", n.Template)
	fmt.Fprintf(&b, "slots: %d (%d user binds)\n", len(n.Slots), n.UserBinds)
	b.WriteString(Dump(st))
	return b.String()
}

// TestParseGolden snapshots the parser across every supported query shape
// and every rejected form: valid queries record their AST + normalized
// template, invalid ones record the error and its position. Run with
// -update after intentional grammar changes.
func TestParseGolden(t *testing.T) {
	var b strings.Builder
	for _, q := range loadQueries(t) {
		b.WriteString(snapshot(q))
		b.WriteString("\n")
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "parse.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/sql -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("parser output diverged from golden snapshot; run with -update after verifying the diff\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestNormalizeIdempotent asserts the normalizer's core contract on every
// valid corpus query: normalizing a template reproduces the template, with
// every slot a user bind (no literals left to strip).
func TestNormalizeIdempotent(t *testing.T) {
	for _, q := range loadQueries(t) {
		n, err := Normalize(q)
		if err != nil {
			continue
		}
		n2, err := Normalize(n.Template)
		if err != nil {
			t.Fatalf("template of %q does not re-normalize: %v", q, err)
		}
		if n2.Template != n.Template {
			t.Errorf("normalize not idempotent:\n first: %s\nsecond: %s", n.Template, n2.Template)
		}
		if n2.UserBinds != len(n2.Slots) {
			t.Errorf("template %q still carries literals (%d slots, %d user binds)",
				n.Template, len(n2.Slots), n2.UserBinds)
		}
	}
}

// TestParseErrorPositions spot-checks that errors point at the offending
// token in the original text, not at a canonicalized rewrite.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		query     string
		line, col int
	}{
		{"SELECT * FROM orders WHERE price > > 10", 1, 36},
		{"SELECT * FROM", 1, 14},
		{"SELECT quantity, count(*) FROM orders GROUP BY category", 1, 8},
		{"SELECT * FROM orders\nWHERE price >\n> 10", 3, 1},
		{"UPDATE orders SET price > 5", 1, 25},
	}
	for _, tc := range cases {
		st, n, err := Parse(tc.query)
		if err == nil {
			_, err = Lower(st, n)
		}
		if err == nil {
			t.Fatalf("%q: expected error", tc.query)
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Fatalf("%q: error %T is not *ParseError: %v", tc.query, err, err)
		}
		if pe.Pos.Line != tc.line || pe.Pos.Col != tc.col {
			t.Errorf("%q: error at %s, want %d:%d (%v)", tc.query, pe.Pos, tc.line, tc.col, err)
		}
	}
}
