package sql

import (
	"s2db/internal/vector"
)

// Parse normalizes text and parses the normalized token stream, returning
// the AST together with the normalization result (template + bind slots).
// All value positions in the AST are bind-slot indexes.
func Parse(text string) (Stmt, *Normalized, error) {
	n, err := Normalize(text)
	if err != nil {
		return nil, nil, err
	}
	st, err := ParseTokens(n.Toks)
	if err != nil {
		return nil, nil, err
	}
	return st, n, nil
}

// ParseTokens parses a normalized token stream (as produced by Normalize;
// every literal already a bind). It never panics on any input.
func ParseTokens(toks []Token) (Stmt, error) {
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, parseError(t, "unexpected trailing input")
	}
	return st, nil
}

type parser struct {
	toks []Token
	i    int
	// bind numbers the TokBind tokens in consumption order, which matches
	// normalization's slot order.
	bind int
}

func (p *parser) peek() Token { return p.toks[p.i] }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

// keyword consumes kw if it is next, reporting whether it did.
func (p *parser) keyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return parseError(p.peek(), "expected %s", kw)
	}
	return nil
}

func (p *parser) expect(kind TokKind, what string) (Token, error) {
	if t := p.peek(); t.Kind == kind {
		return p.next(), nil
	}
	return Token{}, parseError(p.peek(), "expected %s", what)
}

func (p *parser) ident(what string) (IdentRef, error) {
	t, err := p.expect(TokIdent, what)
	if err != nil {
		return IdentRef{}, err
	}
	return IdentRef{Name: t.Text, Pos: t.Pos}, nil
}

// bindSlot consumes a `?` and returns its slot index.
func (p *parser) bindSlot() (int, error) {
	if _, err := p.expect(TokBind, "a value"); err != nil {
		return 0, err
	}
	s := p.bind
	p.bind++
	return s, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, parseError(t, "expected select, insert, update or delete")
	}
	switch t.Text {
	case "select":
		return p.parseSelect()
	case "insert":
		return p.parseInsert()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	}
	return nil, parseError(t, "expected select, insert, update or delete")
}

func (p *parser) parseSelect() (Stmt, error) {
	p.next() // select
	st := &SelectStmt{LimitSlot: -1}
	if t := p.peek(); t.Kind == TokStar {
		p.next()
		st.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			st.Items = append(st.Items, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident("a table name")
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.keyword("where") {
		if st.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident("a group-by column")
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, col)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident("an order-by column")
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.keyword("limit") {
		if st.LimitSlot, err = p.bindSlot(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.Kind == TokKeyword && aggFuncs[t.Text] {
		p.next()
		item := SelectItem{Agg: t.Text, Pos: t.Pos}
		if _, err := p.expect(TokLParen, "("); err != nil {
			return SelectItem{}, err
		}
		if s := p.peek(); s.Kind == TokStar {
			if item.Agg != "count" {
				return SelectItem{}, parseError(s, "%s(*) is not supported (only count(*))", item.Agg)
			}
			p.next()
			item.Star = true
		} else {
			col, err := p.ident("an aggregate column")
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	col, err := p.ident("a column or aggregate")
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col, Pos: col.Pos}, nil
}

// parseOr parses an OR-disjunction of AND-conjunctions.
func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for p.keyword("or") {
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if len(args) == 1 {
		return first, nil
	}
	return &LogicalExpr{Op: "or", Args: args}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for p.keyword("and") {
		e, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if len(args) == 1 {
		return first, nil
	}
	return &LogicalExpr{Op: "and", Args: args}, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if t := p.peek(); t.Kind == TokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	col, err := p.ident("a column reference")
	if err != nil {
		return nil, err
	}
	if p.keyword("in") {
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		var slots []int
		for {
			s, err := p.bindSlot()
			if err != nil {
				return nil, err
			}
			slots = append(slots, s)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Col: col, Slots: slots}, nil
	}
	opTok, err := p.expect(TokOp, "a comparison operator")
	if err != nil {
		return nil, err
	}
	op, ok := cmpOps[opTok.Text]
	if !ok {
		return nil, parseError(opTok, "unsupported operator %s", opTok.Text)
	}
	slot, err := p.bindSlot()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Col: col, Op: op, Slot: slot}, nil
}

var cmpOps = map[string]vector.CmpOp{
	"=": vector.Eq, "!=": vector.Ne,
	"<": vector.Lt, "<=": vector.Le,
	">": vector.Gt, ">=": vector.Ge,
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.ident("a table name")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.peek().Kind == TokLParen {
		p.next()
		for {
			col, err := p.ident("a column name")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		lp, err := p.expect(TokLParen, "(")
		if err != nil {
			return nil, err
		}
		var row []int
		for {
			s, err := p.bindSlot()
			if err != nil {
				return nil, err
			}
			row = append(row, s)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		if len(st.Columns) > 0 && len(row) != len(st.Columns) {
			return nil, parseError(lp, "VALUES row has %d values, column list has %d", len(row), len(st.Columns))
		}
		if len(st.Rows) > 0 && len(row) != len(st.Rows[0]) {
			return nil, parseError(lp, "VALUES rows have inconsistent arity (%d vs %d)", len(row), len(st.Rows[0]))
		}
		st.Rows = append(st.Rows, row)
		st.RowPos = append(st.RowPos, lp.Pos)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // update
	table, err := p.ident("a table name")
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident("a column name")
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.Kind != TokOp || t.Text != "=" {
			return nil, parseError(t, "expected = in SET clause")
		}
		p.next()
		slot, err := p.bindSlot()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Col: col, Slot: slot})
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.keyword("where") {
		if st.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // delete
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.ident("a table name")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.keyword("where") {
		var err error
		if st.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}
