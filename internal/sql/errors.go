package sql

import "fmt"

// ParseError is a lexing or parsing failure, carrying the position
// (line:column in the original text) and the offending token.
type ParseError struct {
	// Pos locates the offending token in the original query text.
	Pos Pos
	// Token is the offending token's spelling ("" at end of input).
	Token string
	// Msg describes the failure.
	Msg string
}

// Error renders "sql: <msg> at <line>:<col> (near <token>)".
func (e *ParseError) Error() string {
	near := ""
	if e.Token != "" {
		near = fmt.Sprintf(" (near %q)", e.Token)
	}
	return fmt.Sprintf("sql: %s at %s%s", e.Msg, e.Pos, near)
}

func lexError(pos Pos, tok, format string, args ...any) error {
	return &ParseError{Pos: pos, Token: tok, Msg: fmt.Sprintf(format, args...)}
}

func parseError(t Token, format string, args ...any) error {
	return &ParseError{Pos: t.Pos, Token: t.Text, Msg: fmt.Sprintf(format, args...)}
}

// ColumnError decorates a column-resolution failure (an unknown column, a
// type mismatch) with the identifier's position in the query text, so
// lowering errors point back at the SQL the caller wrote rather than at
// the execution layer that detected them.
type ColumnError struct {
	// Name is the offending column identifier.
	Name string
	// Pos locates the identifier in the original query text; the zero Pos
	// means the position could not be recovered.
	Pos Pos
	// Err is the underlying resolution error.
	Err error
}

// Error renders the underlying error with the position prefix.
func (e *ColumnError) Error() string {
	if e.Pos == (Pos{}) {
		return fmt.Sprintf("sql: column %q: %v", e.Name, e.Err)
	}
	return fmt.Sprintf("sql: column %q at %s: %v", e.Name, e.Pos, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ColumnError) Unwrap() error { return e.Err }

// columnError annotates err with the position of name in text (best
// effort: the text is re-lexed only on this error path).
func columnError(text, name string, err error) error {
	return &ColumnError{Name: name, Pos: FindIdent(text, name), Err: err}
}
