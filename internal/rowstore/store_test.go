package rowstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"s2db/internal/types"
)

func key(i int) []byte { return types.EncodeKey(nil, types.NewInt(int64(i))) }

func row(i int) types.Row { return types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprint(i))} }

func TestInsertGetCommit(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	if _, err := tx.Insert(key(1), row(10)); err != nil {
		t.Fatal(err)
	}
	// Own write visible inside the txn.
	if r, ok := tx.Get(key(1)); !ok || r[0].I != 10 {
		t.Fatal("own write not visible")
	}
	// Not visible to a snapshot before commit.
	if _, ok := s.Get(key(1), 100); ok {
		t.Fatal("uncommitted write visible to snapshot")
	}
	tx.Commit(5)
	if _, ok := s.Get(key(1), 4); ok {
		t.Fatal("write visible before its commit timestamp")
	}
	if r, ok := s.Get(key(1), 5); !ok || r[0].I != 10 {
		t.Fatal("committed write not visible at commit ts")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAbortDiscards(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	tx.Insert(key(1), row(1))
	tx.Abort()
	if _, ok := s.Get(key(1), 100); ok {
		t.Fatal("aborted write visible")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after abort", s.Len())
	}
	// The key can be rewritten afterwards.
	tx2 := s.Begin(0)
	if _, err := tx2.Insert(key(1), row(2)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit(1)
	if r, ok := s.Get(key(1), 1); !ok || r[0].I != 2 {
		t.Fatal("rewrite after abort failed")
	}
}

func TestMVCCVersions(t *testing.T) {
	s := NewStore(0)
	for v := 1; v <= 3; v++ {
		tx := s.Begin(uint64(v * 10))
		tx.Insert(key(1), row(v*100))
		tx.Commit(uint64(v * 10))
	}
	for v := 1; v <= 3; v++ {
		r, ok := s.Get(key(1), uint64(v*10))
		if !ok || r[0].I != int64(v*100) {
			t.Fatalf("snapshot at %d saw %v", v*10, r)
		}
		// Between versions, still sees the older one.
		r, _ = s.Get(key(1), uint64(v*10+5))
		if r[0].I != int64(v*100) {
			t.Fatalf("snapshot at %d saw %v", v*10+5, r)
		}
	}
	if _, ok := s.Get(key(1), 9); ok {
		t.Fatal("snapshot before first commit saw a row")
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	tx.Insert(key(7), row(7))
	tx.Commit(1)
	tx2 := s.Begin(1)
	existed, err := tx2.Delete(key(7))
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	tx2.Commit(2)
	if _, ok := s.Get(key(7), 1); !ok {
		t.Fatal("old snapshot lost the row after delete")
	}
	if _, ok := s.Get(key(7), 2); ok {
		t.Fatal("deleted row visible at delete ts")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
	// Deleting a missing key reports false.
	tx3 := s.Begin(2)
	existed, err = tx3.Delete(key(7))
	if err != nil || existed {
		t.Fatalf("second Delete = %v, %v", existed, err)
	}
	tx3.Abort()
}

func TestScanOrderAndBounds(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	for _, i := range []int{5, 1, 9, 3, 7} {
		tx.Insert(key(i), row(i))
	}
	tx.Commit(1)
	var got []int64
	s.Scan(key(3), key(8), 1, func(k []byte, r types.Row) bool {
		got = append(got, r[0].I)
		return true
	})
	want := []int64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Scan got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.Scan(nil, nil, 1, func(k []byte, r types.Row) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestRowLockBlocksConcurrentWriter(t *testing.T) {
	s := NewStore(50 * time.Millisecond)
	tx1 := s.Begin(0)
	tx1.Insert(key(1), row(1))
	tx2 := s.Begin(0)
	if _, err := tx2.Insert(key(1), row(2)); err != ErrLockTimeout {
		t.Fatalf("second writer got %v, want ErrLockTimeout", err)
	}
	tx1.Commit(1)
	// After release, tx3 can write.
	tx3 := s.Begin(1)
	if _, err := tx3.Insert(key(1), row(3)); err != nil {
		t.Fatal(err)
	}
	tx3.Commit(2)
	tx2.Abort()
}

func TestWriteAfterDoneFails(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	tx.Commit(1)
	if _, err := tx.Insert(key(1), row(1)); err != ErrTxnDone {
		t.Fatalf("Insert after commit = %v", err)
	}
	if _, err := tx.Delete(key(1)); err != ErrTxnDone {
		t.Fatalf("Delete after commit = %v", err)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	s := NewStore(0)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := s.Begin(0)
				k := w*perWriter + i
				if _, err := tx.Insert(key(k), row(k)); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					return
				}
				tx.Commit(uint64(k) + 1)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	// All rows readable and ordered.
	n := 0
	var prev []byte
	s.Scan(nil, nil, ^uint64(0), func(k []byte, r types.Row) bool {
		if prev != nil && string(prev) >= string(k) {
			t.Error("scan out of order")
			return false
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != writers*perWriter {
		t.Fatalf("scanned %d rows", n)
	}
}

func TestConcurrentSameKeyCounter(t *testing.T) {
	// Concurrent increments on one row must serialize via the row lock.
	s := NewStore(5 * time.Second)
	tx := s.Begin(0)
	tx.Insert(key(0), types.Row{types.NewInt(0)})
	tx.Commit(1)
	var ts atomic.Uint64
	ts.Store(1)
	const goroutines, increments = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					read := ts.Load()
					tx := s.Begin(read)
					r, ok := tx.Get(key(0))
					if !ok {
						t.Error("row lost")
						tx.Abort()
						return
					}
					// The row lock is only taken at Insert; re-read after
					// locking to get the latest value.
					if _, err := tx.Insert(key(0), types.Row{types.NewInt(r[0].I)}); err != nil {
						tx.Abort()
						continue
					}
					latest, _ := tx.store.Get(key(0), ts.Load())
					tx.Insert(key(0), types.Row{types.NewInt(latest[0].I + 1)})
					tx.Commit(ts.Add(1))
					break
				}
			}
		}()
	}
	wg.Wait()
	r, ok := s.Get(key(0), ts.Load())
	if !ok || r[0].I != goroutines*increments {
		t.Fatalf("counter = %v, want %d", r, goroutines*increments)
	}
}

func TestQuickInsertScanMatchesMap(t *testing.T) {
	f := func(keys []uint16) bool {
		s := NewStore(0)
		model := map[uint16]int64{}
		ts := uint64(0)
		for _, k := range keys {
			ts++
			tx := s.Begin(ts - 1)
			tx.Insert(key(int(k)), types.Row{types.NewInt(int64(k) * 2)})
			tx.Commit(ts)
			model[k] = int64(k) * 2
		}
		if s.Len() != len(model) {
			return false
		}
		seen := 0
		good := true
		s.Scan(nil, nil, ts, func(_ []byte, r types.Row) bool {
			seen++
			if model[uint16(r[0].I/2)] != r[0].I {
				good = false
			}
			return true
		})
		return good && seen == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRemovesTombstonedNodes(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 100; i++ {
		tx := s.Begin(uint64(i))
		tx.Insert(key(i), row(i))
		tx.Commit(uint64(i + 1))
	}
	// Tombstone the even keys (like a flush would).
	tx := s.Begin(100)
	for i := 0; i < 100; i += 2 {
		if _, _, err := tx.TryDeleteLatest(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit(101)
	if s.NodeCount() != 100 {
		t.Fatalf("NodeCount = %d before compaction", s.NodeCount())
	}
	removed := s.Compact(101)
	if removed != 50 {
		t.Fatalf("Compact removed %d nodes, want 50", removed)
	}
	if s.NodeCount() != 50 || s.Len() != 50 {
		t.Fatalf("NodeCount=%d Len=%d after compaction", s.NodeCount(), s.Len())
	}
	// Survivors readable and ordered; removed keys absent.
	for i := 0; i < 100; i++ {
		_, ok := s.Get(key(i), 101)
		if ok != (i%2 == 1) {
			t.Fatalf("key %d visibility = %v", i, ok)
		}
	}
	var prev int64 = -1
	s.Scan(nil, nil, 101, func(_ []byte, r types.Row) bool {
		if r[0].I <= prev {
			t.Fatal("scan out of order after compaction")
		}
		prev = r[0].I
		return true
	})
}

func TestCompactKeepsRecentTombstones(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	tx.Insert(key(1), row(1))
	tx.Commit(1)
	tx2 := s.Begin(1)
	tx2.Delete(key(1))
	tx2.Commit(5)
	// keepTS below the tombstone: snapshots in (1,5) still need the row,
	// and snapshots >= 5 need the tombstone; the node must survive.
	if removed := s.Compact(3); removed != 0 {
		t.Fatalf("Compact removed %d, want 0", removed)
	}
	if _, ok := s.Get(key(1), 3); !ok {
		t.Fatal("row lost for pre-delete snapshot")
	}
	// At keepTS past the tombstone it may go.
	if removed := s.Compact(5); removed != 1 {
		t.Fatalf("Compact removed %d, want 1", removed)
	}
}

func TestCompactKeepsLockedNodes(t *testing.T) {
	s := NewStore(0)
	tx := s.Begin(0)
	tx.Insert(key(1), row(1))
	// Active (uncommitted) writer: the node must survive compaction and the
	// transaction must still commit correctly afterwards.
	if removed := s.Compact(^uint64(0)); removed != 0 {
		t.Fatalf("Compact removed a locked node (%d)", removed)
	}
	tx.Commit(7)
	if r, ok := s.Get(key(1), 7); !ok || r[0].I != 1 {
		t.Fatal("write lost across compaction")
	}
}

func TestCompactTrimsVersionChains(t *testing.T) {
	s := NewStore(0)
	for v := 1; v <= 50; v++ {
		tx := s.Begin(uint64(v - 1))
		tx.Insert(key(1), row(v))
		tx.Commit(uint64(v))
	}
	s.Compact(50)
	// Latest value survives; ancient snapshots (below keepTS) are gone by
	// contract, but the newest version at keepTS must be exact.
	if r, ok := s.Get(key(1), 50); !ok || r[0].I != 50 {
		t.Fatalf("latest version wrong after trim: %v", r)
	}
	// The chain now has a single version: walk it via a fresh update.
	tx := s.Begin(50)
	tx.Insert(key(1), row(51))
	tx.Commit(51)
	if r, _ := s.Get(key(1), 51); r[0].I != 51 {
		t.Fatal("update after trim failed")
	}
}
