// Package rowstore implements the in-memory rowstore (§2.1.1): a lock-free
// skiplist indexing rows, where each node carries a linked list of row
// versions for multiversion concurrency control (readers never wait on
// writers) and a per-row lock for pessimistic write-write concurrency
// control.
package rowstore

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"

	"s2db/internal/types"
)

const maxHeight = 16

// node is a skiplist node: one logical row identified by its key. Nodes are
// never physically unlinked; a deleted row is a tombstone version, which
// keeps concurrent traversal simple and lock-free.
type node struct {
	key   []byte
	tower [maxHeight]atomic.Pointer[node]

	// mu guards the version list head and lock ownership; it is held only
	// for short critical sections, never across user code.
	mu       sync.Mutex
	cond     *sync.Cond // signaled when the row lock is released
	owner    *Txn       // active writer holding the row lock, or nil
	versions atomic.Pointer[version]
}

// version is one MVCC version of a row. data == nil marks a delete
// tombstone. While the writing transaction is active, txn is set and ts is
// unset; commit stamps ts and clears txn, making the version visible to
// snapshots at or after ts.
type version struct {
	ts   atomic.Uint64
	txn  atomic.Pointer[Txn]
	data types.Row
	next *version
}

// skiplist is an insert-only concurrent skiplist.
type skiplist struct {
	head   *node
	height atomic.Int32
	seed   atomic.Uint64
	length atomic.Int64 // number of nodes (live + tombstoned)
}

func newSkiplist() *skiplist {
	s := &skiplist{head: &node{}}
	s.head.cond = sync.NewCond(&s.head.mu)
	s.height.Store(1)
	s.seed.Store(rand.Uint64() | 1)
	return s
}

func (s *skiplist) randomHeight() int {
	// xorshift; each level has probability 1/4.
	x := s.seed.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.seed.Store(x)
	h := 1
	for h < maxHeight && x&3 == 0 {
		h++
		x >>= 2
	}
	return h
}

// findGE returns the first node with key >= target, filling prev with the
// rightmost node before target at each level when prev != nil.
func (s *skiplist) findGE(target []byte, prev *[maxHeight]*node) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.tower[level].Load()
		if next != nil && bytes.Compare(next.key, target) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// get returns the node with exactly this key, or nil.
func (s *skiplist) get(key []byte) *node {
	n := s.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n
	}
	return nil
}

// getOrInsert returns the node for key, inserting an empty node when absent.
func (s *skiplist) getOrInsert(key []byte) *node {
	var prev [maxHeight]*node
	for {
		n := s.findGE(key, &prev)
		if n != nil && bytes.Equal(n.key, key) {
			return n
		}
		h := s.randomHeight()
		for {
			cur := s.height.Load()
			if int(cur) >= h || s.height.CompareAndSwap(cur, int32(h)) {
				break
			}
		}
		nn := &node{key: append([]byte(nil), key...)}
		nn.cond = sync.NewCond(&nn.mu)
		// Link bottom-up with CAS; on contention re-search from scratch.
		for level := 0; level < h; level++ {
			p := prev[level]
			if p == nil {
				p = s.head
			}
			for {
				succ := p.tower[level].Load()
				if succ != nil && bytes.Compare(succ.key, key) < 0 {
					p = succ
					continue
				}
				if level == 0 && succ != nil && bytes.Equal(succ.key, key) {
					// Lost the race; someone inserted this key.
					return succ
				}
				nn.tower[level].Store(succ)
				if p.tower[level].CompareAndSwap(succ, nn) {
					break
				}
			}
		}
		s.length.Add(1)
		return nn
	}
}

// ascend calls f for nodes with key in [from, to) in order; nil from means
// from the start, nil to means to the end. Returning false stops.
func (s *skiplist) ascend(from, to []byte, f func(n *node) bool) {
	var x *node
	if from == nil {
		x = s.head.tower[0].Load()
	} else {
		x = s.findGE(from, nil)
	}
	for x != nil {
		if to != nil && bytes.Compare(x.key, to) >= 0 {
			return
		}
		if !f(x) {
			return
		}
		x = x.tower[0].Load()
	}
}
