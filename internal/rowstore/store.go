package rowstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/types"
)

// Txn states.
const (
	txnActive int32 = iota
	txnCommitted
	txnAborted
)

// ErrLockTimeout is returned when a row lock cannot be acquired before the
// store's lock timeout; callers should abort and retry the transaction
// (this is also how deadlocks resolve).
var ErrLockTimeout = errors.New("rowstore: row lock wait timed out")

// ErrTxnDone is returned when writing through a finished transaction.
var ErrTxnDone = errors.New("rowstore: transaction already committed or aborted")

// Store is an MVCC in-memory rowstore over a lock-free skiplist. Readers
// run at a snapshot timestamp and never block; writers take per-row locks
// (pessimistic concurrency control, §2.1.1).
type Store struct {
	// gate is almost always held shared; Compact takes it exclusively to
	// rebuild the skiplist without tombstoned nodes (the flusher deletes
	// whole batches, and scans must not pay for the corpses forever).
	gate        sync.RWMutex
	list        *skiplist
	nextTxnID   atomic.Uint64
	live        atomic.Int64
	lockTimeout time.Duration
}

// Compact physically removes nodes whose newest version is a committed
// tombstone at or before keepTS (and is not locked by an active writer).
// The caller must guarantee that no snapshot older than keepTS will be
// read afterwards. It returns the number of nodes dropped.
func (s *Store) Compact(keepTS uint64) (removed int) {
	s.gate.Lock()
	defer s.gate.Unlock()
	var survivors []*node
	for n := s.list.head.tower[0].Load(); n != nil; n = n.tower[0].Load() {
		keep := false
		n.mu.Lock()
		if n.owner != nil { // locked (possibly mid-commit): must survive
			keep = true
		}
		n.mu.Unlock()
		if !keep {
			switch v := n.versions.Load(); {
			case v == nil:
				// never written: drop
			case v.txn.Load() != nil:
				keep = true // uncommitted head version
			case v.data != nil:
				keep = true // live row
			case v.ts.Load() > keepTS:
				keep = true // tombstone still visible to recent snapshots
			}
		}
		if keep {
			// Trim version history below keepTS: find the newest version
			// visible at keepTS and drop everything older.
			for v := n.versions.Load(); v != nil; v = v.next {
				if v.txn.Load() == nil && v.ts.Load() <= keepTS {
					v.next = nil
					break
				}
			}
			survivors = append(survivors, n)
		} else {
			removed++
		}
	}
	if removed == 0 {
		return 0 // chains were still trimmed above
	}
	// Rebuild the list from the surviving node objects (they keep their
	// identity: row locks and version chains stay valid). Survivors arrive
	// in key order, so link at per-level tails.
	fresh := newSkiplist()
	var tails [maxHeight]*node
	for i := range tails {
		tails[i] = fresh.head
	}
	for _, n := range survivors {
		h := fresh.randomHeight()
		for l := 0; l < maxHeight; l++ {
			n.tower[l].Store(nil)
		}
		for l := 0; l < h; l++ {
			tails[l].tower[l].Store(n)
			tails[l] = n
		}
		for {
			cur := fresh.height.Load()
			if int(cur) >= h || fresh.height.CompareAndSwap(cur, int32(h)) {
				break
			}
		}
	}
	fresh.length.Store(int64(len(survivors)))
	s.list = fresh
	return removed
}

// NewStore returns an empty store. lockTimeout bounds row-lock waits;
// zero means a 2s default.
func NewStore(lockTimeout time.Duration) *Store {
	if lockTimeout == 0 {
		lockTimeout = 2 * time.Second
	}
	return &Store{list: newSkiplist(), lockTimeout: lockTimeout}
}

// Len returns the number of live (visible-at-latest) rows.
func (s *Store) Len() int { return int(s.live.Load()) }

// NodeCount returns the number of skiplist nodes including tombstoned ones,
// for memory accounting.
func (s *Store) NodeCount() int { return int(s.list.length.Load()) }

// Txn is a write transaction. A Txn must finish with Commit or Abort.
type Txn struct {
	store    *Store
	id       uint64
	readTS   uint64
	state    atomic.Int32
	commitTS atomic.Uint64
	locked   []*node
	liveDiff int64
}

// Begin starts a transaction reading at snapshot readTS.
func (s *Store) Begin(readTS uint64) *Txn {
	return &Txn{store: s, id: s.nextTxnID.Add(1), readTS: readTS}
}

// ReadTS returns the transaction's snapshot timestamp.
func (t *Txn) ReadTS() uint64 { return t.readTS }

// lockRow acquires the row lock on n for t, waiting up to the store's lock
// timeout. Re-entrant for the owning transaction.
func (t *Txn) lockRow(n *node) error {
	deadline := time.Now().Add(t.store.lockTimeout)
	backoff := 10 * time.Microsecond
	for {
		n.mu.Lock()
		owner := n.owner
		// The lock is only free once the previous owner released it in
		// Commit/Abort (after stamping its versions); a finished-but-
		// unreleased owner still holds it.
		if owner == nil || owner == t {
			if owner != t {
				n.owner = t
				t.locked = append(t.locked, n)
			}
			n.mu.Unlock()
			return nil
		}
		n.mu.Unlock()
		if time.Now().After(deadline) {
			return ErrLockTimeout
		}
		// Drop the compaction gate while waiting: the lock owner needs it
		// to commit and release, and a pending Compact would otherwise
		// block the owner behind our shared hold (writer starvation
		// deadlock). The node survives compaction while it is locked.
		t.store.gate.RUnlock()
		time.Sleep(backoff)
		t.store.gate.RLock()
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}

// visible walks a node's version chain and returns the newest version
// visible at readTS to transaction me (nil for a plain snapshot read).
func visible(n *node, readTS uint64, me *Txn) *version {
	for v := n.versions.Load(); v != nil; v = v.next {
		if owner := v.txn.Load(); owner != nil {
			if owner == me {
				return v
			}
			st := owner.state.Load()
			if st == txnCommitted && owner.commitTS.Load() <= readTS {
				return v
			}
			continue // active, aborted, or committed after our snapshot
		}
		if v.ts.Load() <= readTS {
			return v
		}
	}
	return nil
}

// pushVersion installs a new version at the head of n's chain for t.
// The caller must hold the row lock.
func (t *Txn) pushVersion(n *node, data types.Row) {
	v := &version{data: data}
	v.txn.Store(t)
	n.mu.Lock()
	v.next = n.versions.Load()
	n.versions.Store(v)
	n.mu.Unlock()
}

// Insert writes row under key, replacing any existing visible row.
// It reports whether a live row previously existed.
func (t *Txn) Insert(key []byte, row types.Row) (replaced bool, err error) {
	if t.state.Load() != txnActive {
		return false, ErrTxnDone
	}
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	n := t.store.list.getOrInsert(key)
	if err := t.lockRow(n); err != nil {
		return false, err
	}
	// The live counter tracks the latest committed state, so "replaced" must
	// be judged against the latest committed (or own) version, not the
	// transaction's snapshot: an update transaction may begin at a snapshot
	// older than the move/flush that produced the row it overwrites, and
	// holding the row lock guarantees the latest committed version cannot
	// change before our commit. Judging at the snapshot double-counts such
	// rows, leaving Len() permanently above the real live count (which turns
	// flush-until-empty loops into livelocks).
	prev := visible(n, ^uint64(0), t)
	replaced = prev != nil && prev.data != nil
	t.pushVersion(n, row.Clone())
	if !replaced {
		t.liveDiff++
	}
	return replaced, nil
}

// Delete tombstones the row under key. It reports whether a live row
// existed.
func (t *Txn) Delete(key []byte) (existed bool, err error) {
	if t.state.Load() != txnActive {
		return false, ErrTxnDone
	}
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	n := t.store.list.get(key)
	if n == nil {
		return false, nil
	}
	if err := t.lockRow(n); err != nil {
		return false, err
	}
	prev := visible(n, t.readTS, t)
	if prev == nil || prev.data == nil {
		return false, nil
	}
	t.pushVersion(n, nil)
	t.liveDiff--
	return true, nil
}

// Get returns the row under key as seen by this transaction (own writes
// first, then the snapshot).
func (t *Txn) Get(key []byte) (types.Row, bool) {
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	n := t.store.list.get(key)
	if n == nil {
		return nil, false
	}
	v := visible(n, t.readTS, t)
	if v == nil || v.data == nil {
		return nil, false
	}
	return v.data, true
}

// LockAndGet acquires the row lock (waiting up to the lock timeout) and
// returns the latest committed version, which is what an UPDATE must read
// after locking ("an extra scanning pass ... after locking to find the
// latest versions of the locked rows", §4.2).
func (t *Txn) LockAndGet(key []byte) (row types.Row, existed bool, err error) {
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	return t.lockAndGet(key)
}

func (t *Txn) lockAndGet(key []byte) (row types.Row, existed bool, err error) {
	if t.state.Load() != txnActive {
		return nil, false, ErrTxnDone
	}
	n := t.store.list.getOrInsert(key)
	if err := t.lockRow(n); err != nil {
		return nil, false, err
	}
	v := visible(n, ^uint64(0), t)
	if v == nil || v.data == nil {
		return nil, false, nil
	}
	return v.data, true, nil
}

// DeleteLatest locks the row (waiting) and tombstones its latest committed
// version, returning it.
func (t *Txn) DeleteLatest(key []byte) (row types.Row, existed bool, err error) {
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	row, existed, err = t.lockAndGet(key)
	if err != nil || !existed {
		return nil, existed, err
	}
	t.pushVersion(t.store.list.get(key), nil)
	t.liveDiff--
	return row, true, nil
}

// ErrRowLocked is returned by TryDeleteLatest when another active
// transaction holds the row lock.
var ErrRowLocked = errors.New("rowstore: row locked by another transaction")

// TryDeleteLatest locks the row without waiting, reads its latest committed
// version (not the transaction's snapshot) and tombstones it. The flusher
// uses this so a row updated after the flush scan is flushed with its
// newest committed value rather than a stale one (§2.1.2), and rows held by
// active writers are skipped rather than waited on.
func (t *Txn) TryDeleteLatest(key []byte) (row types.Row, existed bool, err error) {
	if t.state.Load() != txnActive {
		return nil, false, ErrTxnDone
	}
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	n := t.store.list.get(key)
	if n == nil {
		return nil, false, nil
	}
	n.mu.Lock()
	owner := n.owner
	if owner != nil && owner != t {
		n.mu.Unlock()
		return nil, false, ErrRowLocked
	}
	if owner != t {
		n.owner = t
		t.locked = append(t.locked, n)
	}
	n.mu.Unlock()
	v := visible(n, ^uint64(0), t) // latest committed (or own) version
	if v == nil || v.data == nil {
		return nil, false, nil
	}
	t.pushVersion(n, nil)
	t.liveDiff--
	return v.data, true, nil
}

// Commit makes the transaction's writes visible at commitTS and releases
// row locks.
func (t *Txn) Commit(commitTS uint64) {
	if !t.state.CompareAndSwap(txnActive, txnCommitted) {
		return
	}
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	t.commitTS.Store(commitTS)
	// Stamp versions so future readers need not consult the txn, then
	// release the row locks. Our versions form a prefix of the chain (we
	// held the row lock), so stop at the first foreign version.
	for _, n := range t.locked {
		n.mu.Lock()
		for v := n.versions.Load(); v != nil; v = v.next {
			if v.txn.Load() != t {
				break
			}
			v.ts.Store(commitTS)
			v.txn.Store(nil)
		}
		n.owner = nil
		n.mu.Unlock()
	}
	t.store.live.Add(t.liveDiff)
}

// Abort discards the transaction's writes and releases row locks.
func (t *Txn) Abort() {
	if !t.state.CompareAndSwap(txnActive, txnAborted) {
		return
	}
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	for _, n := range t.locked {
		n.mu.Lock()
		// Our versions form a prefix of the chain (we held the row lock).
		v := n.versions.Load()
		for v != nil && v.txn.Load() == t {
			v = v.next
		}
		n.versions.Store(v)
		n.owner = nil
		n.mu.Unlock()
	}
}

// Get performs a snapshot point read at readTS.
func (s *Store) Get(key []byte, readTS uint64) (types.Row, bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	n := s.list.get(key)
	if n == nil {
		return nil, false
	}
	v := visible(n, readTS, nil)
	if v == nil || v.data == nil {
		return nil, false
	}
	return v.data, true
}

// Scan calls f for each live row with key in [from, to) at snapshot readTS,
// in key order. nil bounds are open. Returning false stops the scan.
func (s *Store) Scan(from, to []byte, readTS uint64, f func(key []byte, row types.Row) bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.list.ascend(from, to, func(n *node) bool {
		v := visible(n, readTS, nil)
		if v == nil || v.data == nil {
			return true
		}
		return f(n.key, v.data)
	})
}

// ScanTxn is Scan but sees the transaction's own uncommitted writes.
func (t *Txn) Scan(from, to []byte, f func(key []byte, row types.Row) bool) {
	t.store.gate.RLock()
	defer t.store.gate.RUnlock()
	t.store.list.ascend(from, to, func(n *node) bool {
		v := visible(n, t.readTS, t)
		if v == nil || v.data == nil {
			return true
		}
		return f(n.key, v.data)
	})
}
