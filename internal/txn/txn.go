// Package txn provides the transaction-time machinery shared by the storage
// layers: a commit-timestamp oracle implementing partition-local snapshot
// isolation (§2.1.2: "reads need to use partition-local snapshot isolation
// to guarantee a consistent view of the table") and the in-memory lock
// manager used for unique-key enforcement (§4.1.2).
package txn

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Oracle hands out monotonically increasing timestamps for one partition.
// ReadTS returns the latest fully-committed timestamp, which readers use as
// their snapshot; Next allocates a new commit timestamp.
type Oracle struct {
	ts atomic.Uint64
}

// Next allocates the next commit timestamp.
func (o *Oracle) Next() uint64 { return o.ts.Add(1) }

// ReadTS returns the snapshot timestamp for a new reader.
func (o *Oracle) ReadTS() uint64 { return o.ts.Load() }

// AdvanceTo raises the clock to at least ts (used by log replay and
// replication to keep replica clocks in sync with the master).
func (o *Oracle) AdvanceTo(ts uint64) {
	for {
		cur := o.ts.Load()
		if cur >= ts || o.ts.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// ErrKeyLockTimeout is returned when a unique-key lock cannot be acquired
// in time.
var ErrKeyLockTimeout = errors.New("txn: unique-key lock wait timed out")

// LockManager is the in-memory lock manager of §4.1.2: it locks unique-key
// hash values so concurrent ingests of the same key serialize before the
// secondary-index duplicate check.
type LockManager struct {
	mu    sync.Mutex
	held  map[uint64]struct{}
	waits map[uint64]*sync.Cond
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{held: make(map[uint64]struct{}), waits: make(map[uint64]*sync.Cond)}
}

// Acquire locks every key hash in keys, waiting up to timeout. Keys are
// locked in sorted order so concurrent batches cannot deadlock. On success
// it returns a release function; the caller must invoke it exactly once.
func (m *LockManager) Acquire(keys []uint64, timeout time.Duration) (release func(), err error) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Dedup: a batch may contain the same key twice.
	uniq := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			uniq = append(uniq, k)
		}
	}
	deadline := time.Now().Add(timeout)
	acquired := make([]uint64, 0, len(uniq))
	releaseAll := func() {
		m.mu.Lock()
		for _, k := range acquired {
			delete(m.held, k)
			if c, ok := m.waits[k]; ok {
				c.Broadcast()
			}
		}
		m.mu.Unlock()
	}
	for _, k := range uniq {
		if !m.acquireOne(k, deadline) {
			releaseAll()
			return nil, ErrKeyLockTimeout
		}
		acquired = append(acquired, k)
	}
	var once sync.Once
	return func() { once.Do(releaseAll) }, nil
}

func (m *LockManager) acquireOne(k uint64, deadline time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if _, busy := m.held[k]; !busy {
			m.held[k] = struct{}{}
			return true
		}
		c, ok := m.waits[k]
		if !ok {
			c = sync.NewCond(&m.mu)
			m.waits[k] = c
		}
		// sync.Cond has no deadline; poke waiters periodically so the
		// deadline is observed even without a release.
		done := make(chan struct{})
		timer := time.AfterFunc(time.Until(deadline), func() {
			m.mu.Lock()
			c.Broadcast()
			m.mu.Unlock()
			close(done)
		})
		c.Wait()
		timer.Stop()
		select {
		case <-done:
		default:
		}
		if time.Now().After(deadline) {
			if _, busy := m.held[k]; busy {
				return false
			}
			m.held[k] = struct{}{}
			return true
		}
	}
}
