package txn

import (
	"sync"
	"testing"
	"time"
)

func TestOracleMonotonic(t *testing.T) {
	var o Oracle
	if o.ReadTS() != 0 {
		t.Fatal("fresh oracle should read 0")
	}
	a, b := o.Next(), o.Next()
	if a != 1 || b != 2 {
		t.Fatalf("Next gave %d, %d", a, b)
	}
	if o.ReadTS() != 2 {
		t.Fatalf("ReadTS = %d", o.ReadTS())
	}
	o.AdvanceTo(100)
	if o.ReadTS() != 100 {
		t.Fatalf("AdvanceTo failed: %d", o.ReadTS())
	}
	o.AdvanceTo(50) // never goes backwards
	if o.ReadTS() != 100 {
		t.Fatalf("AdvanceTo went backwards: %d", o.ReadTS())
	}
}

func TestOracleConcurrentUnique(t *testing.T) {
	var o Oracle
	const n = 1000
	seen := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); seen[i] = o.Next() }(i)
	}
	wg.Wait()
	uniq := map[uint64]bool{}
	for _, ts := range seen {
		if uniq[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		uniq[ts] = true
	}
}

func TestLockManagerMutualExclusion(t *testing.T) {
	m := NewLockManager()
	rel, err := m.Acquire([]uint64{1, 2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A conflicting acquire times out while held.
	if _, err := m.Acquire([]uint64{2, 3}, 30*time.Millisecond); err != ErrKeyLockTimeout {
		t.Fatalf("conflicting acquire got %v", err)
	}
	// A disjoint acquire succeeds immediately.
	rel2, err := m.Acquire([]uint64{10}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	rel()
	// After release, the conflicting keys are free.
	rel3, err := m.Acquire([]uint64{2, 3}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rel3()
}

func TestLockManagerWaitersWake(t *testing.T) {
	m := NewLockManager()
	rel, _ := m.Acquire([]uint64{7}, time.Second)
	got := make(chan error, 1)
	go func() {
		rel2, err := m.Acquire([]uint64{7}, 2*time.Second)
		if err == nil {
			rel2()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestLockManagerDuplicateKeysInBatch(t *testing.T) {
	m := NewLockManager()
	rel, err := m.Acquire([]uint64{5, 5, 5}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release is a no-op
	rel2, err := m.Acquire([]uint64{5}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestLockManagerNoDeadlockOnOrdering(t *testing.T) {
	// Two goroutines acquiring overlapping sets in opposite order must not
	// deadlock because Acquire sorts keys.
	m := NewLockManager()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []uint64{1, 2, 3}
			if g == 1 {
				keys = []uint64{3, 2, 1}
			}
			for i := 0; i < 200; i++ {
				rel, err := m.Acquire(keys, 5*time.Second)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
}
