// Package bitmap provides the dense bit vector used for deleted-row
// tracking in segment metadata (§4: "S2DB represents deletes using a bit
// vector stored as part of the segment metadata") and for null tracking in
// column vectors.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length dense bit vector. The zero value is an empty
// bitmap; use New to size one.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns a bitmap of n bits, all zero.
func New(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i/64] |= 1 << uint(i%64) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i/64] &^= 1 << uint(i%64) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy. Cloning is how the unified table installs a new
// deleted-bits version without disturbing concurrent readers (§4.2).
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{n: b.n, words: w}
}

// Or merges other into b (b |= other). Panics when lengths differ.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: Or length mismatch %d != %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And intersects other into b (b &= other). Panics when lengths differ.
func (b *Bitmap) And(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: And length mismatch %d != %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// Range calls f for each set bit in ascending order; returning false stops.
func (b *Bitmap) Range(f func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !f(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendBinary serializes the bitmap.
func (b *Bitmap) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(b.n))
	for _, w := range b.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Decode deserializes a bitmap written by AppendBinary and returns the
// number of bytes consumed.
func Decode(buf []byte) (*Bitmap, int, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, 0, fmt.Errorf("bitmap: bad length")
	}
	p := k
	nw := (int(n) + 63) / 64
	if p+nw*8 > len(buf) {
		return nil, 0, fmt.Errorf("bitmap: truncated payload")
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[p:])
		p += 8
	}
	return &Bitmap{n: int(n), words: words}, p, nil
}
