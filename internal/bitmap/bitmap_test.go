package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Fatal("Clear(64) failed")
	}
}

func TestRangeOrder(t *testing.T) {
	b := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.Range(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	b := New(100)
	b.Set(1)
	b.Set(2)
	b.Set(3)
	count := 0
	b.Range(func(i int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d bits, want 2", count)
	}
}

func TestOrAnd(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	a.Set(69)
	b.Set(1)
	b.Set(2)
	c := a.Clone()
	c.Or(b)
	if c.Count() != 3 || !c.Get(2) {
		t.Fatal("Or wrong")
	}
	d := a.Clone()
	d.And(b)
	if d.Count() != 1 || !d.Get(1) {
		t.Fatal("And wrong")
	}
	// a unchanged by clone operations.
	if a.Count() != 2 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths should panic")
		}
	}()
	New(10).Or(New(11))
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(idxs []uint16, n uint16) bool {
		size := int(n) + 1
		b := New(size)
		for _, i := range idxs {
			b.Set(int(i) % size)
		}
		buf := b.AppendBinary(nil)
		dec, used, err := Decode(buf)
		if err != nil || used != len(buf) || dec.Len() != b.Len() || dec.Count() != b.Count() {
			return false
		}
		for i := 0; i < size; i++ {
			if dec.Get(i) != b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should fail")
	}
	b := New(100)
	buf := b.AppendBinary(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated decode should fail")
	}
}
