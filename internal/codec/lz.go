package codec

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// The LZ codec below is a from-scratch LZ77 byte compressor in the spirit
// of LZ4 (the compressor the paper's columnstore uses): greedy matching via
// a hash table of 4-byte prefixes, emitting (literal run, match) sequences.
// It favors decompression speed over ratio.

const (
	lzBlockSize = 16 << 10 // raw bytes per independently-compressed block
	lzMinMatch  = 4
	lzHashBits  = 13
)

func lzHash(u uint32) uint32 { return (u * 2654435761) >> (32 - lzHashBits) }

// lzCompressBlock compresses src into dst. The format is a sequence of
// tokens: a literal length (uvarint), that many literal bytes, then a match
// length (uvarint, 0 meaning "no match, end or next literals") and a match
// offset (uvarint) when length > 0.
func lzCompressBlock(dst, src []byte) []byte {
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	emit := func(litEnd, matchLen, offset int) {
		dst = appendUvarint(dst, uint64(litEnd-litStart))
		dst = append(dst, src[litStart:litEnd]...)
		dst = appendUvarint(dst, uint64(matchLen))
		if matchLen > 0 {
			dst = appendUvarint(dst, uint64(offset))
		}
	}
	for i+lzMinMatch <= len(src) {
		h := lzHash(binary.LittleEndian.Uint32(src[i:]))
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			// Extend the match.
			m := lzMinMatch
			for i+m < len(src) && src[int(cand)+m] == src[i+m] {
				m++
			}
			emit(i, m, i-int(cand))
			i += m
			litStart = i
			continue
		}
		i++
	}
	emit(len(src), 0, 0)
	return dst
}

// lzDecompressBlock decompresses a block produced by lzCompressBlock.
func lzDecompressBlock(dst, src []byte) ([]byte, error) {
	p := 0
	for p < len(src) {
		litLen, n, err := readUvarint(src[p:])
		if err != nil {
			return nil, err
		}
		p += n
		if p+int(litLen) > len(src) {
			return nil, fmt.Errorf("codec: truncated lz literals")
		}
		dst = append(dst, src[p:p+int(litLen)]...)
		p += int(litLen)
		matchLen, n, err := readUvarint(src[p:])
		if err != nil {
			return nil, err
		}
		p += n
		if matchLen == 0 {
			continue
		}
		offset, n, err := readUvarint(src[p:])
		if err != nil {
			return nil, err
		}
		p += n
		start := len(dst) - int(offset)
		if start < 0 {
			return nil, fmt.Errorf("codec: lz match offset out of range")
		}
		// Overlapping copies are legal (offset < matchLen) and must copy
		// byte-by-byte front to back.
		for k := 0; k < int(matchLen); k++ {
			dst = append(dst, dst[start+k])
		}
	}
	return dst, nil
}

// lzBlocks is a block-compressed byte payload supporting random slicing:
// slice(lo, hi) decompresses only the blocks overlapping [lo, hi).
type lzBlocks struct {
	rawLen int
	comp   [][]byte // compressed blocks, each covering lzBlockSize raw bytes

	mu        sync.Mutex
	cacheIdx  int
	cacheData []byte
}

func newLZBlocks(data []byte) *lzBlocks {
	b := &lzBlocks{rawLen: len(data), cacheIdx: -1}
	for off := 0; off < len(data); off += lzBlockSize {
		end := off + lzBlockSize
		if end > len(data) {
			end = len(data)
		}
		b.comp = append(b.comp, lzCompressBlock(nil, data[off:end]))
	}
	return b
}

func (b *lzBlocks) block(idx int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cacheIdx == idx {
		return b.cacheData
	}
	data, err := lzDecompressBlock(make([]byte, 0, lzBlockSize), b.comp[idx])
	if err != nil {
		// Blocks are produced by our own compressor; corruption here means
		// an in-memory bug, which must not be silently ignored.
		panic(fmt.Sprintf("codec: corrupt lz block %d: %v", idx, err))
	}
	b.cacheIdx, b.cacheData = idx, data
	return data
}

func (b *lzBlocks) slice(lo, hi int) []byte {
	if lo == hi {
		return nil
	}
	first, last := lo/lzBlockSize, (hi-1)/lzBlockSize
	if first == last {
		blk := b.block(first)
		return blk[lo-first*lzBlockSize : hi-first*lzBlockSize]
	}
	out := make([]byte, 0, hi-lo)
	for i := first; i <= last; i++ {
		blk := b.block(i)
		s, e := 0, len(blk)
		if i == first {
			s = lo - i*lzBlockSize
		}
		if i == last {
			e = hi - i*lzBlockSize
		}
		out = append(out, blk[s:e]...)
	}
	return out
}

func (b *lzBlocks) all() []byte {
	out := make([]byte, 0, b.rawLen)
	for i := range b.comp {
		out, _ = lzDecompressBlock(out, b.comp[i])
	}
	return out
}

func (b *lzBlocks) appendBinary(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(b.rawLen))
	buf = appendUvarint(buf, uint64(len(b.comp)))
	for _, c := range b.comp {
		buf = appendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	return buf
}

func decodeLZBlocks(buf []byte) (*lzBlocks, int, error) {
	p := 0
	rawLen, n, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	nb, n, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	b := &lzBlocks{rawLen: int(rawLen), cacheIdx: -1, comp: make([][]byte, nb)}
	for i := range b.comp {
		l, n, err := readUvarint(buf[p:])
		if err != nil {
			return nil, 0, err
		}
		p += n
		if p+int(l) > len(buf) {
			return nil, 0, fmt.Errorf("codec: truncated lz block")
		}
		c := make([]byte, l)
		copy(c, buf[p:p+int(l)])
		b.comp[i] = c
		p += int(l)
	}
	return b, p, nil
}
