package codec

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Dict is a dictionary-encoded string column: a sorted dictionary of the
// distinct values plus a bit-packed code per row. Encoded execution (§5.2)
// evaluates a filter once per dictionary entry and then consults only the
// codes, never materializing row strings.
type Dict struct {
	dict  []string
	codes *BitPack
}

// NewDict dictionary-encodes vals.
func NewDict(vals []string) *Dict {
	set := make(map[string]int, 64)
	for _, v := range vals {
		set[v] = 0
	}
	dict := make([]string, 0, len(set))
	for v := range set {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	for i, v := range dict {
		set[v] = i
	}
	codes := make([]int64, len(vals))
	for i, v := range vals {
		codes[i] = int64(set[v])
	}
	return &Dict{dict: dict, codes: NewBitPack(codes)}
}

// Len returns the number of rows.
func (d *Dict) Len() int { return d.codes.Len() }

// DictSize returns the number of distinct values.
func (d *Dict) DictSize() int { return len(d.dict) }

// DictValue returns dictionary entry c.
func (d *Dict) DictValue(c int) string { return d.dict[c] }

// Code returns the dictionary code of row i.
func (d *Dict) Code(i int) int { return int(d.codes.At(i)) }

// CodeOf returns the code for value v, or -1 when v is not in the
// dictionary (so no row matches it).
func (d *Dict) CodeOf(v string) int {
	i := sort.SearchStrings(d.dict, v)
	if i < len(d.dict) && d.dict[i] == v {
		return i
	}
	return -1
}

// At returns the value at row offset i.
func (d *Dict) At(i int) string { return d.dict[d.codes.At(i)] }

// DecodeAll appends all values to dst.
func (d *Dict) DecodeAll(dst []string) []string {
	for i := 0; i < d.Len(); i++ {
		dst = append(dst, d.At(i))
	}
	return dst
}

// Kind reports KindDict.
func (d *Dict) Kind() Kind { return KindDict }

// AppendBinary serializes the column.
func (d *Dict) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindDict))
	buf = appendUvarint(buf, uint64(len(d.dict)))
	for _, s := range d.dict {
		buf = appendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return d.codes.AppendBinary(buf)
}

func decodeDict(buf []byte) (*Dict, int, error) {
	p := 1
	nd, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	dict := make([]string, nd)
	for i := range dict {
		l, k, err := readUvarint(buf[p:])
		if err != nil {
			return nil, 0, err
		}
		p += k
		if p+int(l) > len(buf) {
			return nil, 0, fmt.Errorf("codec: truncated dict entry")
		}
		dict[i] = string(buf[p : p+int(l)])
		p += int(l)
	}
	codes, n, err := decodeBitPack(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	return &Dict{dict: dict, codes: codes}, p, nil
}

// PlainString stores the concatenated bytes plus a bit-packed offset array.
type PlainString struct {
	offsets *BitPack // len n+1; offsets[i]..offsets[i+1] is row i
	data    []byte
}

// NewPlainString encodes vals without compression.
func NewPlainString(vals []string) *PlainString {
	offs := make([]int64, len(vals)+1)
	total := 0
	for i, v := range vals {
		offs[i] = int64(total)
		total += len(v)
	}
	offs[len(vals)] = int64(total)
	data := make([]byte, 0, total)
	for _, v := range vals {
		data = append(data, v...)
	}
	return &PlainString{offsets: NewBitPack(offs), data: data}
}

// Len returns the number of rows.
func (s *PlainString) Len() int { return s.offsets.Len() - 1 }

// At returns the value at row offset i.
func (s *PlainString) At(i int) string {
	return string(s.data[s.offsets.At(i):s.offsets.At(i+1)])
}

// DecodeAll appends all values to dst.
func (s *PlainString) DecodeAll(dst []string) []string {
	for i := 0; i < s.Len(); i++ {
		dst = append(dst, s.At(i))
	}
	return dst
}

// Kind reports KindPlainString.
func (s *PlainString) Kind() Kind { return KindPlainString }

// AppendBinary serializes the column.
func (s *PlainString) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindPlainString))
	buf = s.offsets.AppendBinary(buf)
	buf = appendUvarint(buf, uint64(len(s.data)))
	return append(buf, s.data...)
}

func decodePlainString(buf []byte) (*PlainString, int, error) {
	p := 1
	offsets, n, err := decodeBitPack(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	l, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	if p+int(l) > len(buf) {
		return nil, 0, fmt.Errorf("codec: truncated plain-string payload")
	}
	data := make([]byte, l)
	copy(data, buf[p:p+int(l)])
	p += int(l)
	return &PlainString{offsets: offsets, data: data}, p, nil
}

// LZString stores the concatenated string bytes LZ-compressed in fixed-size
// blocks, plus offsets. Seeking decompresses only the blocks covering the
// requested row (cached for sequential access), which preserves
// seekability — the property cloud warehouses' whole-object compression
// lacks (§7, Procella comparison).
type LZString struct {
	offsets *BitPack
	blocks  *lzBlocks
}

// NewLZString encodes vals with block LZ compression.
func NewLZString(vals []string) *LZString {
	offs := make([]int64, len(vals)+1)
	total := 0
	for i, v := range vals {
		offs[i] = int64(total)
		total += len(v)
	}
	offs[len(vals)] = int64(total)
	data := make([]byte, 0, total)
	for _, v := range vals {
		data = append(data, v...)
	}
	return &LZString{offsets: NewBitPack(offs), blocks: newLZBlocks(data)}
}

// Len returns the number of rows.
func (s *LZString) Len() int { return s.offsets.Len() - 1 }

// At returns the value at row offset i, decompressing only the blocks that
// cover it.
func (s *LZString) At(i int) string {
	lo, hi := int(s.offsets.At(i)), int(s.offsets.At(i+1))
	return string(s.blocks.slice(lo, hi))
}

// DecodeAll appends all values to dst.
func (s *LZString) DecodeAll(dst []string) []string {
	data := s.blocks.all()
	for i := 0; i < s.Len(); i++ {
		dst = append(dst, string(data[s.offsets.At(i):s.offsets.At(i+1)]))
	}
	return dst
}

// Kind reports KindLZString.
func (s *LZString) Kind() Kind { return KindLZString }

// AppendBinary serializes the column.
func (s *LZString) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindLZString))
	buf = s.offsets.AppendBinary(buf)
	return s.blocks.appendBinary(buf)
}

func decodeLZString(buf []byte) (*LZString, int, error) {
	p := 1
	offsets, n, err := decodeBitPack(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	blocks, n, err := decodeLZBlocks(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += n
	return &LZString{offsets: offsets, blocks: blocks}, p, nil
}

// CompressedSize reports the compressed byte size of the payload, used by
// compression-ratio stats.
func (s *LZString) CompressedSize() int {
	total := 0
	for _, b := range s.blocks.comp {
		total += len(b)
	}
	return total
}

var _ = binary.LittleEndian // keep import stable across edits
