package codec

import (
	"encoding/binary"
	"fmt"
)

// BitPack is a frame-of-reference bit-packed integer column: values are
// stored as (v - min) in a fixed number of bits per value. Seeking to row i
// is two word loads and a shift.
type BitPack struct {
	n     int
	min   int64
	width int // bits per value, 0..64
	words []uint64
}

// NewBitPack encodes vals with frame-of-reference bit packing.
func NewBitPack(vals []int64) *BitPack {
	b := &BitPack{n: len(vals)}
	if len(vals) == 0 {
		return b
	}
	minV, maxV := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	b.min = minV
	b.width = bitsFor(uint64(maxV) - uint64(minV))
	if b.width == 0 {
		return b
	}
	b.words = make([]uint64, (len(vals)*b.width+63)/64)
	for i, v := range vals {
		b.put(i, uint64(v-minV))
	}
	return b
}

func (b *BitPack) put(i int, v uint64) {
	bit := i * b.width
	word, off := bit/64, uint(bit%64)
	b.words[word] |= v << off
	if off+uint(b.width) > 64 {
		b.words[word+1] |= v >> (64 - off)
	}
}

// Len returns the number of rows.
func (b *BitPack) Len() int { return b.n }

// Width returns the number of bits per packed value.
func (b *BitPack) Width() int { return b.width }

// At returns the value at row offset i.
func (b *BitPack) At(i int) int64 {
	if b.width == 0 {
		return b.min
	}
	bit := i * b.width
	word, off := bit/64, uint(bit%64)
	v := b.words[word] >> off
	if off+uint(b.width) > 64 {
		v |= b.words[word+1] << (64 - off)
	}
	if b.width < 64 {
		v &= (1 << uint(b.width)) - 1
	}
	return b.min + int64(v)
}

// DecodeAll appends all values to dst.
func (b *BitPack) DecodeAll(dst []int64) []int64 {
	for i := 0; i < b.n; i++ {
		dst = append(dst, b.At(i))
	}
	return dst
}

// Kind reports KindBitPack.
func (b *BitPack) Kind() Kind { return KindBitPack }

// AppendBinary serializes the column.
func (b *BitPack) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindBitPack))
	buf = appendUvarint(buf, uint64(b.n))
	buf = appendVarint(buf, b.min)
	buf = append(buf, byte(b.width))
	buf = appendUvarint(buf, uint64(len(b.words)))
	for _, w := range b.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

func decodeBitPack(buf []byte) (*BitPack, int, error) {
	p := 1
	n, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	minV, k, err := readVarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	if p >= len(buf) {
		return nil, 0, fmt.Errorf("codec: truncated bitpack header")
	}
	width := int(buf[p])
	p++
	nw, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	if width > 64 || int(nw) != (int(n)*width+63)/64 {
		return nil, 0, fmt.Errorf("codec: inconsistent bitpack header")
	}
	if p+int(nw)*8 > len(buf) {
		return nil, 0, fmt.Errorf("codec: truncated bitpack payload")
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[p:])
		p += 8
	}
	return &BitPack{n: int(n), min: minV, width: width, words: words}, p, nil
}

// PlainInt stores values verbatim; it is the fallback when packing buys
// nothing and the reference decoder for tests.
type PlainInt struct {
	vals []int64
}

// NewPlainInt wraps vals (not copied) as a plain column.
func NewPlainInt(vals []int64) *PlainInt { return &PlainInt{vals: vals} }

// Len returns the number of rows.
func (p *PlainInt) Len() int { return len(p.vals) }

// At returns the value at row offset i.
func (p *PlainInt) At(i int) int64 { return p.vals[i] }

// DecodeAll appends all values to dst.
func (p *PlainInt) DecodeAll(dst []int64) []int64 { return append(dst, p.vals...) }

// Kind reports KindPlainInt.
func (p *PlainInt) Kind() Kind { return KindPlainInt }

// AppendBinary serializes the column.
func (p *PlainInt) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindPlainInt))
	buf = appendUvarint(buf, uint64(len(p.vals)))
	for _, v := range p.vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func decodePlainInt(buf []byte) (*PlainInt, int, error) {
	p := 1
	n, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	if p+int(n)*8 > len(buf) {
		return nil, 0, fmt.Errorf("codec: truncated plain-int payload")
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
	}
	return &PlainInt{vals: vals}, p, nil
}
