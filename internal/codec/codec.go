// Package codec implements the seekable column encodings used by the
// columnstore segments (§2.1.2 of the paper): bit packing, run-length
// encoding, dictionary encoding and LZ block compression. Every encoding
// supports random access at a row offset (At) without decoding the whole
// column, which is what makes point reads on columnstore data cheap enough
// for OLTP (§2.1.2, "the column encodings are each implemented to be
// seekable").
package codec

import (
	"encoding/binary"
	"fmt"
)

// Kind identifies an encoding on the wire and in segment metadata.
type Kind uint8

const (
	// KindPlainInt stores int64 values verbatim.
	KindPlainInt Kind = iota
	// KindBitPack stores frame-of-reference bit-packed integers.
	KindBitPack
	// KindRLE stores run-length encoded integers.
	KindRLE
	// KindDict stores dictionary-encoded strings with bit-packed codes.
	KindDict
	// KindPlainString stores raw strings with an offset array.
	KindPlainString
	// KindLZString stores strings as LZ-compressed blocks with an offset array.
	KindLZString
)

// String names the encoding for stats and debugging output.
func (k Kind) String() string {
	switch k {
	case KindPlainInt:
		return "plain-int"
	case KindBitPack:
		return "bitpack"
	case KindRLE:
		return "rle"
	case KindDict:
		return "dict"
	case KindPlainString:
		return "plain-string"
	case KindLZString:
		return "lz-string"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IntColumn is a seekable encoded column of int64 values.
type IntColumn interface {
	Len() int
	// At returns the value at row offset i without decoding other rows.
	At(i int) int64
	// DecodeAll appends all values to dst and returns it.
	DecodeAll(dst []int64) []int64
	// Kind reports the encoding used.
	Kind() Kind
	// AppendBinary serializes the column (including its kind tag).
	AppendBinary(buf []byte) []byte
}

// StringColumn is a seekable encoded column of string values.
type StringColumn interface {
	Len() int
	At(i int) string
	DecodeAll(dst []string) []string
	Kind() Kind
	AppendBinary(buf []byte) []byte
}

// EncodeInts picks the cheapest integer encoding for the given values:
// RLE when runs are long, bit packing otherwise. Each segment makes this
// choice independently ("the same column can use a different encoding in
// each segment", §2.1.2).
func EncodeInts(vals []int64) IntColumn {
	if len(vals) == 0 {
		return NewBitPack(vals)
	}
	runs := 1
	minV, maxV := vals[0], vals[0]
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
		if vals[i] < minV {
			minV = vals[i]
		}
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	width := bitsFor(uint64(maxV) - uint64(minV))
	bitpackBits := len(vals) * width
	// An RLE run costs roughly 12 bytes (value + count + seek entry).
	rleBits := runs * 12 * 8
	if rleBits < bitpackBits {
		return NewRLE(vals)
	}
	return NewBitPack(vals)
}

// EncodeStrings picks a string encoding: dictionary when the column has few
// distinct values (which also enables encoded execution, §5.2), raw or LZ
// compressed otherwise.
func EncodeStrings(vals []string) StringColumn {
	distinct := make(map[string]struct{}, 64)
	total := 0
	for _, v := range vals {
		total += len(v)
		if len(distinct) <= len(vals)/2 {
			distinct[v] = struct{}{}
		}
	}
	if len(vals) > 0 && len(distinct) <= len(vals)/2 {
		return NewDict(vals)
	}
	// LZ pays off on larger payloads; tiny columns stay plain.
	if total >= 4096 {
		return NewLZString(vals)
	}
	return NewPlainString(vals)
}

// DecodeIntColumn deserializes an integer column written by AppendBinary.
func DecodeIntColumn(buf []byte) (IntColumn, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("codec: empty buffer")
	}
	switch Kind(buf[0]) {
	case KindPlainInt:
		return decodePlainInt(buf)
	case KindBitPack:
		return decodeBitPack(buf)
	case KindRLE:
		return decodeRLE(buf)
	default:
		return nil, 0, fmt.Errorf("codec: buffer does not hold an int column (kind %d)", buf[0])
	}
}

// DecodeStringColumn deserializes a string column written by AppendBinary.
func DecodeStringColumn(buf []byte) (StringColumn, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("codec: empty buffer")
	}
	switch Kind(buf[0]) {
	case KindDict:
		return decodeDict(buf)
	case KindPlainString:
		return decodePlainString(buf)
	case KindLZString:
		return decodeLZString(buf)
	default:
		return nil, 0, fmt.Errorf("codec: buffer does not hold a string column (kind %d)", buf[0])
	}
}

// bitsFor returns the number of bits needed to represent v (at least 1 when
// v > 0, 0 for v == 0).
func bitsFor(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// --- shared varint helpers -------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func readUvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("codec: bad uvarint")
	}
	return v, n, nil
}

func readVarint(buf []byte) (int64, int, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("codec: bad varint")
	}
	return v, n, nil
}
