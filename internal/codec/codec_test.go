package codec

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripInts(t *testing.T, vals []int64, enc IntColumn) {
	t.Helper()
	if enc.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", enc.Len(), len(vals))
	}
	got := enc.DecodeAll(nil)
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("DecodeAll[%d] = %d, want %d", i, got[i], v)
		}
		if enc.At(i) != v {
			t.Fatalf("At(%d) = %d, want %d", i, enc.At(i), v)
		}
	}
	buf := enc.AppendBinary(nil)
	dec, n, err := DecodeIntColumn(buf)
	if err != nil {
		t.Fatalf("DecodeIntColumn: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("DecodeIntColumn consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(dec.DecodeAll(nil), got) {
		t.Fatalf("serialized round trip differs")
	}
	if dec.Kind() != enc.Kind() {
		t.Fatalf("kind changed across serialization: %v -> %v", enc.Kind(), dec.Kind())
	}
}

func TestBitPackRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{7, 7, 7},
		{-5, 0, 5, 1 << 40, -(1 << 40)},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	for _, vals := range cases {
		roundTripInts(t, vals, NewBitPack(vals))
	}
}

func TestBitPackWidth(t *testing.T) {
	b := NewBitPack([]int64{100, 101, 102, 103})
	if b.Width() != 2 {
		t.Fatalf("Width = %d, want 2 (frame of reference)", b.Width())
	}
	if b.At(3) != 103 {
		t.Fatalf("At(3) = %d", b.At(3))
	}
}

func TestBitPackCrossWordBoundary(t *testing.T) {
	// Width 13 guarantees values straddling 64-bit word boundaries.
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(i * 37 % 8000)
	}
	roundTripInts(t, vals, NewBitPack(vals))
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]int64{
		{1},
		{1, 1, 1, 2, 2, 3},
		{5, 5, 5, 5, 5},
		{-1, -1, 0, 0, 1, 1},
	}
	for _, vals := range cases {
		roundTripInts(t, vals, NewRLE(vals))
	}
}

func TestRLERuns(t *testing.T) {
	r := NewRLE([]int64{4, 4, 4, 9, 9, 2})
	if r.Runs() != 3 {
		t.Fatalf("Runs = %d, want 3", r.Runs())
	}
	v, s, e := r.Run(1)
	if v != 9 || s != 3 || e != 5 {
		t.Fatalf("Run(1) = (%d, %d, %d), want (9, 3, 5)", v, s, e)
	}
}

func TestPlainIntRoundTrip(t *testing.T) {
	vals := []int64{1, -9, 1 << 62, -(1 << 62)}
	roundTripInts(t, vals, NewPlainInt(vals))
}

func TestEncodeIntsChoosesRLEForRuns(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i / 1000)
	}
	if k := EncodeInts(vals).Kind(); k != KindRLE {
		t.Fatalf("EncodeInts picked %v for long runs, want rle", k)
	}
}

func TestEncodeIntsChoosesBitPackForRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
	}
	if k := EncodeInts(vals).Kind(); k != KindBitPack {
		t.Fatalf("EncodeInts picked %v for random data, want bitpack", k)
	}
}

func roundTripStrings(t *testing.T, vals []string, enc StringColumn) {
	t.Helper()
	if enc.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", enc.Len(), len(vals))
	}
	for i, v := range vals {
		if enc.At(i) != v {
			t.Fatalf("At(%d) = %q, want %q", i, enc.At(i), v)
		}
	}
	got := enc.DecodeAll(nil)
	if !reflect.DeepEqual(got, append([]string{}, vals...)) && len(vals) > 0 {
		t.Fatalf("DecodeAll mismatch: %v vs %v", got, vals)
	}
	buf := enc.AppendBinary(nil)
	dec, n, err := DecodeStringColumn(buf)
	if err != nil {
		t.Fatalf("DecodeStringColumn: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	for i, v := range vals {
		if dec.At(i) != v {
			t.Fatalf("decoded At(%d) = %q, want %q", i, dec.At(i), v)
		}
	}
}

func TestDictRoundTrip(t *testing.T) {
	vals := []string{"b", "a", "b", "c", "a", "a"}
	d := NewDict(vals)
	roundTripStrings(t, vals, d)
	if d.DictSize() != 3 {
		t.Fatalf("DictSize = %d, want 3", d.DictSize())
	}
	if d.CodeOf("b") != 1 {
		t.Fatalf("CodeOf(b) = %d, want 1 (sorted dict)", d.CodeOf("b"))
	}
	if d.CodeOf("zzz") != -1 {
		t.Fatalf("CodeOf(zzz) should be -1")
	}
}

func TestPlainStringRoundTrip(t *testing.T) {
	roundTripStrings(t, []string{"", "hello", "world", ""}, NewPlainString([]string{"", "hello", "world", ""}))
}

func TestLZStringRoundTrip(t *testing.T) {
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = strings.Repeat("payload-", i%7+1) + string(rune('a'+i%26))
	}
	roundTripStrings(t, vals, NewLZString(vals))
}

func TestLZStringCompresses(t *testing.T) {
	vals := make([]string, 2000)
	for i := range vals {
		vals[i] = "the same highly compressible string value"
	}
	raw := 0
	for _, v := range vals {
		raw += len(v)
	}
	lz := NewLZString(vals)
	if cs := lz.CompressedSize(); cs >= raw/4 {
		t.Fatalf("compressed %d of %d raw bytes; expected at least 4x", cs, raw)
	}
}

func TestLZStringSpanningBlocks(t *testing.T) {
	// One giant value spanning multiple 16K blocks must slice correctly.
	big := strings.Repeat("0123456789abcdef", 4096) // 64 KiB
	vals := []string{"start", big, "end"}
	lz := NewLZString(vals)
	if lz.At(1) != big {
		t.Fatal("big value corrupted across block boundary")
	}
	if lz.At(0) != "start" || lz.At(2) != "end" {
		t.Fatal("neighbors corrupted")
	}
}

func TestEncodeStringsChoosesDictForLowCardinality(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = []string{"red", "green", "blue"}[i%3]
	}
	if k := EncodeStrings(vals).Kind(); k != KindDict {
		t.Fatalf("EncodeStrings picked %v, want dict", k)
	}
}

func TestLZBlockRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5000)
		src := make([]byte, n)
		for i := range src {
			// Skewed alphabet produces matches; occasionally random bytes.
			if rng.Intn(4) == 0 {
				src[i] = byte(rng.Intn(256))
			} else {
				src[i] = byte('a' + rng.Intn(4))
			}
		}
		comp := lzCompressBlock(nil, src)
		out, err := lzDecompressBlock(nil, comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("trial %d: round trip mismatch (n=%d)", trial, n)
		}
	}
}

// Property: every int encoding round-trips and seeks correctly.
func TestQuickIntEncodings(t *testing.T) {
	f := func(vals []int64) bool {
		for _, enc := range []IntColumn{NewBitPack(vals), NewRLE(vals), NewPlainInt(vals), EncodeInts(vals)} {
			if len(vals) == 0 && enc.Kind() == KindRLE {
				continue // RLE of empty input has zero runs; fine but skip At checks
			}
			got := enc.DecodeAll(nil)
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] || enc.At(i) != vals[i] {
					return false
				}
			}
			buf := enc.AppendBinary(nil)
			dec, _, err := DecodeIntColumn(buf)
			if err != nil {
				return false
			}
			for i := range vals {
				if dec.At(i) != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every string encoding round-trips and seeks correctly.
func TestQuickStringEncodings(t *testing.T) {
	f := func(vals []string) bool {
		for _, enc := range []StringColumn{NewDict(vals), NewPlainString(vals), NewLZString(vals), EncodeStrings(vals)} {
			if enc.Len() != len(vals) {
				return false
			}
			for i := range vals {
				if enc.At(i) != vals[i] {
					return false
				}
			}
			buf := enc.AppendBinary(nil)
			dec, _, err := DecodeStringColumn(buf)
			if err != nil {
				return false
			}
			for i := range vals {
				if dec.At(i) != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeIntColumn(nil); err == nil {
		t.Fatal("DecodeIntColumn(nil) should fail")
	}
	if _, _, err := DecodeIntColumn([]byte{byte(KindDict)}); err == nil {
		t.Fatal("int decoder must reject string kinds")
	}
	if _, _, err := DecodeStringColumn([]byte{byte(KindBitPack)}); err == nil {
		t.Fatal("string decoder must reject int kinds")
	}
	// Truncated bitpack payload.
	buf := NewBitPack([]int64{1, 2, 3}).AppendBinary(nil)
	if _, _, err := DecodeIntColumn(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated bitpack should fail")
	}
}

// TestRLEFindRunBoundaries pins FindRun at the offsets span execution
// depends on: both ends of a single-run column, first/last row of interior
// runs, and run transitions.
func TestRLEFindRunBoundaries(t *testing.T) {
	// Single-run segment: every offset maps to run 0.
	one := NewRLE([]int64{7, 7, 7, 7})
	for _, i := range []int{0, 1, 3} {
		if j := one.FindRun(i); j != 0 {
			t.Fatalf("single-run FindRun(%d) = %d, want 0", i, j)
		}
		if v := one.At(i); v != 7 {
			t.Fatalf("single-run At(%d) = %d, want 7", i, v)
		}
	}
	if v, s, e := one.Run(0); v != 7 || s != 0 || e != 4 {
		t.Fatalf("single-run Run(0) = (%d, %d, %d), want (7, 0, 4)", v, s, e)
	}

	r := NewRLE([]int64{4, 4, 4, 9, 9, 2})
	want := []int{0, 0, 0, 1, 1, 2}
	for i, wj := range want {
		if j := r.FindRun(i); j != wj {
			t.Fatalf("FindRun(%d) = %d, want %d", i, j, wj)
		}
	}
	// At must agree with FindRun across every offset, including the
	// first and last row of the trailing run.
	wantVals := []int64{4, 4, 4, 9, 9, 2}
	for i, wv := range wantVals {
		if v := r.At(i); v != wv {
			t.Fatalf("At(%d) = %d, want %d", i, v, wv)
		}
	}
}
