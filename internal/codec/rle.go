package codec

import (
	"fmt"
	"sort"
)

// RLE is a run-length encoded integer column. Each run stores a value and
// the exclusive end offset of the run; seeking to row i is a binary search
// over run ends, and full scans iterate runs, which is what encoded
// execution exploits to evaluate a filter once per run rather than once per
// row (§5.2).
type RLE struct {
	n    int
	vals []int64
	ends []uint32 // ends[j] = first row offset after run j
}

// NewRLE run-length encodes vals.
func NewRLE(vals []int64) *RLE {
	r := &RLE{n: len(vals)}
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		r.vals = append(r.vals, vals[i])
		r.ends = append(r.ends, uint32(j))
		i = j
	}
	return r
}

// Len returns the number of rows.
func (r *RLE) Len() int { return r.n }

// Runs returns the number of runs.
func (r *RLE) Runs() int { return len(r.vals) }

// Run returns run j as (value, start, end).
func (r *RLE) Run(j int) (val int64, start, end int) {
	if j == 0 {
		return r.vals[0], 0, int(r.ends[0])
	}
	return r.vals[j], int(r.ends[j-1]), int(r.ends[j])
}

// At returns the value at row offset i.
func (r *RLE) At(i int) int64 { return r.vals[r.FindRun(i)] }

// FindRun returns the index of the run containing row offset i — the entry
// point for span-based encoded execution, which binary-searches once per
// selection span and then walks runs sequentially.
func (r *RLE) FindRun(i int) int {
	return sort.Search(len(r.ends), func(k int) bool { return r.ends[k] > uint32(i) })
}

// DecodeAll appends all values to dst.
func (r *RLE) DecodeAll(dst []int64) []int64 {
	start := 0
	for j, v := range r.vals {
		end := int(r.ends[j])
		for i := start; i < end; i++ {
			dst = append(dst, v)
		}
		start = end
	}
	return dst
}

// Kind reports KindRLE.
func (r *RLE) Kind() Kind { return KindRLE }

// AppendBinary serializes the column.
func (r *RLE) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(KindRLE))
	buf = appendUvarint(buf, uint64(r.n))
	buf = appendUvarint(buf, uint64(len(r.vals)))
	for j, v := range r.vals {
		buf = appendVarint(buf, v)
		buf = appendUvarint(buf, uint64(r.ends[j]))
	}
	return buf
}

func decodeRLE(buf []byte) (*RLE, int, error) {
	p := 1
	n, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	runs, k, err := readUvarint(buf[p:])
	if err != nil {
		return nil, 0, err
	}
	p += k
	r := &RLE{n: int(n), vals: make([]int64, runs), ends: make([]uint32, runs)}
	prev := uint64(0)
	for j := 0; j < int(runs); j++ {
		v, k, err := readVarint(buf[p:])
		if err != nil {
			return nil, 0, err
		}
		p += k
		e, k, err := readUvarint(buf[p:])
		if err != nil {
			return nil, 0, err
		}
		p += k
		if e <= prev || e > n {
			return nil, 0, fmt.Errorf("codec: rle run ends not increasing")
		}
		prev = e
		r.vals[j] = v
		r.ends[j] = uint32(e)
	}
	if runs > 0 && prev != n {
		return nil, 0, fmt.Errorf("codec: rle runs do not cover column")
	}
	return r, p, nil
}
