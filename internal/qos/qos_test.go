package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for rate-bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustNew(t *testing.T, cfg Config) *Governor {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func leaseLimits(capacity int64, depth int) (l [NumResources]Limits) {
	for i := range l {
		l[i] = Limits{Capacity: capacity, QueueDepth: depth}
	}
	return l
}

func TestValidateShares(t *testing.T) {
	for _, bad := range []map[string]float64{
		{"": 0.5},
		{"a": 0},
		{"a": -0.1},
		{"a": 1.5},
		{"a": 0.7, "b": 0.6},
	} {
		if err := ValidateShares(bad); err == nil {
			t.Errorf("ValidateShares(%v) accepted invalid shares", bad)
		}
	}
	if err := ValidateShares(map[string]float64{"a": 0.7, "b": 0.3}); err != nil {
		t.Errorf("valid shares rejected: %v", err)
	}
	if err := ValidateShares(nil); err != nil {
		t.Errorf("nil shares rejected: %v", err)
	}
}

func TestNilGovernorAdmitsEverything(t *testing.T) {
	var g *Governor
	ctx := context.Background()
	l, got, err := g.AcquireUpTo(ctx, "anyone", Workers, 1, 64)
	if err != nil || got != 64 {
		t.Fatalf("nil governor: got lease=%v n=%d err=%v", l, got, err)
	}
	l.Release() // must not panic
	g.Register("x")
	g.Unregister("x")
	if s := g.Stats(); s != nil {
		t.Fatalf("nil governor stats = %v, want nil", s)
	}
}

func TestWeightedBudgets(t *testing.T) {
	g := mustNew(t, Config{
		Shares: map[string]float64{"oltp": 0.75},
		Limits: leaseLimits(100, 4),
	})
	g.Register("oltp")
	g.Register("olap")
	s, ok := g.TenantStatsFor("oltp")
	if !ok || s.Workers.Budget != 75 {
		t.Fatalf("oltp workers budget = %d (ok=%v), want 75", s.Workers.Budget, ok)
	}
	s, _ = g.TenantStatsFor("olap")
	if s.Workers.Budget != 25 {
		t.Fatalf("olap workers budget = %d, want 25 (unreserved remainder)", s.Workers.Budget)
	}
	// A third unlisted tenant splits the remainder with olap.
	g.Register("batch")
	s, _ = g.TenantStatsFor("olap")
	if s.Workers.Budget != 12 {
		t.Fatalf("olap budget after third tenant = %d, want 12", s.Workers.Budget)
	}
}

func TestElasticAcquireAndRelease(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(10, 4)})
	ctx := context.Background()
	// Sole tenant owns the full capacity.
	l1, got, err := g.AcquireUpTo(ctx, "a", Workers, 1, 8)
	if err != nil || got != 8 {
		t.Fatalf("first acquire: n=%d err=%v, want 8", got, err)
	}
	// Only 2 left; elastic acquire takes what's there.
	l2, got, err := g.AcquireUpTo(ctx, "a", Workers, 1, 8)
	if err != nil || got != 2 {
		t.Fatalf("second acquire: n=%d err=%v, want 2", got, err)
	}
	s, _ := g.TenantStatsFor("a")
	if s.Workers.InUse != 10 || s.Workers.Avail != 0 {
		t.Fatalf("in-use=%d avail=%d, want 10/0", s.Workers.InUse, s.Workers.Avail)
	}
	l1.Release()
	l2.Release()
	l2.Release() // double release is a no-op
	s, _ = g.TenantStatsFor("a")
	if s.Workers.InUse != 0 || s.Workers.Avail != 10 {
		t.Fatalf("after release: in-use=%d avail=%d, want 0/10", s.Workers.InUse, s.Workers.Avail)
	}
}

func TestOversizedRequestClampsToBudget(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(4, 1)})
	l, got, err := g.AcquireUpTo(context.Background(), "a", ScanMem, 1_000_000, 2_000_000)
	if err != nil {
		t.Fatalf("oversized acquire shed: %v", err)
	}
	if got != 4 {
		t.Fatalf("oversized acquire granted %d, want clamp to budget 4", got)
	}
	l.Release()
}

func TestShedIsTypedAndFast(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(2, 0)}) // no queueing at all
	ctx := context.Background()
	l, _, err := g.AcquireUpTo(ctx, "a", Workers, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = g.AcquireUpTo(ctx, "a", Workers, 1, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted budget returned %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("shed is not a *OverloadError: %v", err)
	}
	if oe.Tenant != "a" || oe.Resource != Workers || oe.RetryAfter <= 0 {
		t.Fatalf("shed fields: %+v", oe)
	}
	if RetryAfter(err) != oe.RetryAfter {
		t.Fatalf("RetryAfter helper disagrees with error")
	}
	if RetryAfter(errors.New("other")) != 0 {
		t.Fatalf("RetryAfter on non-overload should be 0")
	}
	l.Release()
	if _, _, err := g.AcquireUpTo(ctx, "a", Workers, 1, 1); err != nil {
		t.Fatalf("post-release acquire failed: %v", err)
	}
}

func TestRetryAfterMonotoneUnderSustainedOverload(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(1, 0)})
	ctx := context.Background()
	l, _, err := g.AcquireUpTo(ctx, "a", MergeIO, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	var last time.Duration
	grew := false
	for i := 0; i < 12; i++ {
		_, _, err := g.AcquireUpTo(ctx, "a", MergeIO, 1, 1)
		ra := RetryAfter(err)
		if ra <= 0 {
			t.Fatalf("shed %d: no retry-after (err=%v)", i, err)
		}
		if ra < last {
			t.Fatalf("retry-after shrank under sustained overload: %v -> %v", last, ra)
		}
		if ra > last {
			grew = true
		}
		last = ra
	}
	if !grew {
		t.Fatalf("retry-after never grew across 12 consecutive sheds (last=%v)", last)
	}
	if last > retryCap {
		t.Fatalf("retry-after %v exceeds cap %v", last, retryCap)
	}
}

func TestNoShedWhenBudgetFree(t *testing.T) {
	g := mustNew(t, Config{
		Shares: map[string]float64{"victim": 0.5, "flood": 0.5},
		Limits: leaseLimits(8, 0), // shed immediately on exhaustion
	})
	g.Register("victim")
	g.Register("flood")
	ctx := context.Background()
	// The flood tenant exhausts its own budget.
	var leases []*Lease
	for {
		l, _, err := g.AcquireUpTo(ctx, "flood", Workers, 4, 4)
		if err != nil {
			if !errors.Is(err, ErrOverloaded) {
				t.Fatal(err)
			}
			break
		}
		leases = append(leases, l)
	}
	// The victim's budget is untouched: every acquire must succeed.
	for i := 0; i < 50; i++ {
		l, _, err := g.AcquireUpTo(ctx, "victim", Workers, 1, 2)
		if err != nil {
			t.Fatalf("victim shed with free budget: %v", err)
		}
		l.Release()
	}
	s, _ := g.TenantStatsFor("victim")
	if s.Workers.Sheds != 0 {
		t.Fatalf("victim sheds = %d, want 0", s.Workers.Sheds)
	}
	for _, l := range leases {
		l.Release()
	}
}

func TestQueuedAcquireWakesOnRelease(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(2, 4)})
	ctx := context.Background()
	l, _, err := g.AcquireUpTo(ctx, "a", Workers, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int64, 1)
	go func() {
		l2, got, err := g.AcquireUpTo(ctx, "a", Workers, 1, 1)
		if err != nil {
			done <- -1
			return
		}
		l2.Release()
		done <- got
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine queue
	l.Release()
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("queued acquire got %d", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never woke after release")
	}
	s, _ := g.TenantStatsFor("a")
	if s.Workers.Waits == 0 {
		t.Fatalf("wait not recorded")
	}
}

func TestContextCancelRemovesWaiter(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(1, 4)})
	l, _, err := g.AcquireUpTo(context.Background(), "a", Workers, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := g.AcquireUpTo(ctx, "a", Workers, 1, 1)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	l.Release()
	// The queue must be empty again: a fresh acquire succeeds instantly.
	l2, _, err := g.AcquireUpTo(context.Background(), "a", Workers, 1, 1)
	if err != nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
	l2.Release()
}

func TestRateBucketRefillsAndPaces(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var lim [NumResources]Limits
	lim[WALBand] = Limits{Capacity: 100, RefillPerSec: 100, QueueDepth: 4}
	g := mustNew(t, Config{Limits: lim, Now: clk.now})
	ctx := context.Background()
	// Burst drains the bucket; tokens are not returned.
	if err := g.Consume(ctx, "a", WALBand, 100); err != nil {
		t.Fatal(err)
	}
	s, _ := g.TenantStatsFor("a")
	if s.WALBand.Avail != 0 || s.WALBand.InUse != 0 {
		t.Fatalf("rate bucket after burst: avail=%d in-use=%d", s.WALBand.Avail, s.WALBand.InUse)
	}
	// Half a second refills half the budget.
	clk.advance(500 * time.Millisecond)
	if err := g.Consume(ctx, "a", WALBand, 50); err != nil {
		t.Fatalf("refilled consume failed: %v", err)
	}
	// A paced consume wakes when the wall clock (real timer) catches up —
	// use the real clock for this leg.
	g2 := mustNew(t, Config{Limits: lim})
	if err := g2.Consume(ctx, "a", WALBand, 100); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g2.Consume(ctx, "a", WALBand, 10); err != nil { // ~100ms deficit
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("paced consume returned too fast (%v) — no pacing happened", waited)
	}
}

func TestRateBucketMaxWaitSheds(t *testing.T) {
	var lim [NumResources]Limits
	lim[WALBand] = Limits{Capacity: 100, RefillPerSec: 10, QueueDepth: 4, MaxWait: 100 * time.Millisecond}
	g := mustNew(t, Config{Limits: lim})
	ctx := context.Background()
	if err := g.Consume(ctx, "a", WALBand, 100); err != nil {
		t.Fatal(err)
	}
	// 50 tokens at 10/s is a 5s projected wait >> MaxWait: shed.
	err := g.Consume(ctx, "a", WALBand, 50)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("projected-wait overflow returned %v, want ErrOverloaded", err)
	}
	if ra := RetryAfter(err); ra < time.Second {
		t.Fatalf("retry-after %v should cover the refill deficit (~5s)", ra)
	}
}

func TestUnregisterFreesWaitersAndRebalances(t *testing.T) {
	g := mustNew(t, Config{Limits: leaseLimits(10, 4)})
	ctx := context.Background()
	g.Register("a")
	g.Register("b")
	// a: budget 5. Take it all, queue one more, then unregister.
	l, _, err := g.AcquireUpTo(ctx, "a", Workers, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan error, 1)
	go func() {
		_, _, err := g.AcquireUpTo(ctx, "a", Workers, 3, 3)
		released <- err
	}()
	time.Sleep(20 * time.Millisecond)
	g.Unregister("a")
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("waiter on unregistered tenant returned %v, want ungoverned grant", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter leaked across Unregister")
	}
	// Survivor's budget grew to the full capacity.
	s, _ := g.TenantStatsFor("b")
	if s.Workers.Budget != 10 {
		t.Fatalf("survivor budget = %d, want 10", s.Workers.Budget)
	}
	l.Release() // late release after detach must not corrupt anything
	if _, ok := g.TenantStatsFor("a"); ok {
		t.Fatal("unregistered tenant still visible in stats")
	}
}

// TestChurnStormNoTokenLeaks is the shed-correctness storm: tenants are
// registered and unregistered while acquires, releases and rate
// consumes are in flight. Afterwards every surviving bucket must be
// back to full (avail == budget, in-use == 0) — no leaked tokens — and
// a permanently-registered idle tenant must never have shed.
func TestChurnStormNoTokenLeaks(t *testing.T) {
	var lim [NumResources]Limits
	lim[Workers] = Limits{Capacity: 64, QueueDepth: 8}
	lim[ScanMem] = Limits{Capacity: 1 << 20, QueueDepth: 8}
	lim[MergeIO] = Limits{Capacity: 1 << 20, QueueDepth: 4}
	lim[WALBand] = Limits{Capacity: 1 << 20, RefillPerSec: 64 << 20, QueueDepth: 8, MaxWait: time.Second}
	g := mustNew(t, Config{
		Shares: map[string]float64{"steady": 0.25},
		Limits: lim,
	})
	g.Register("steady")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var stop atomic.Bool

	// Churner: registers/unregisters transient tenants.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				name := fmt.Sprintf("ws-%d-%d", c, i%4)
				g.Register(name)
				time.Sleep(time.Millisecond)
				g.Unregister(name)
			}
		}(c)
	}
	// Workers: acquire/release against both steady and transient tenants
	// across all four resources.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenants := []string{"steady", fmt.Sprintf("ws-%d-%d", w%2, w%4), "drifter"}
			for i := 0; !stop.Load(); i++ {
				tn := tenants[i%len(tenants)]
				res := Resource(i % NumResources)
				if res == WALBand {
					err := g.Consume(ctx, tn, res, int64(1+i%4096))
					if err != nil && !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.Canceled) {
						t.Errorf("consume: %v", err)
						return
					}
					continue
				}
				l, _, err := g.AcquireUpTo(ctx, tn, res, 1, int64(1+i%1024))
				if err != nil {
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.Canceled) {
						t.Errorf("acquire: %v", err)
						return
					}
					continue
				}
				if i%7 == 0 {
					time.Sleep(100 * time.Microsecond)
				}
				l.Release()
			}
		}(w)
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	cancel()
	wg.Wait()

	// Steady state: all leases released, so every surviving tenant's
	// lease-style buckets must be exactly full again.
	for name, ts := range g.Stats() {
		for _, pair := range []struct {
			res string
			s   ResourceStats
		}{{"workers", ts.Workers}, {"scan_mem", ts.ScanMem}, {"merge_io", ts.MergeIO}} {
			if pair.s.InUse != 0 {
				t.Errorf("tenant %s %s: %d tokens leaked (in-use != 0)", name, pair.res, pair.s.InUse)
			}
			if pair.s.Avail != pair.s.Budget {
				t.Errorf("tenant %s %s: avail %d != budget %d after quiesce", name, pair.res, pair.s.Avail, pair.s.Budget)
			}
		}
	}
}
