// Package qos is the multi-tenant resource governor: a weighted
// token-bucket admission layer spanning the four contended resources of
// the engine — query fan-out worker slots, scan/materialization memory,
// merge I/O, and WAL/replication bandwidth. It generalizes PR 5's
// single-resource cache partitioning into the isolation contract a
// cloud front door needs (PolarDB-IMCI's design goal: analytic bursts
// must not collapse OLTP p99; "Transaction as a Service" motivates the
// typed-shedding contract).
//
// Accounting model. Every registered tenant owns one token bucket per
// resource. A bucket's budget is capacity × effective share, where
// shares come from explicit weights (Config.Shares) and every tenant
// without an explicit weight splits the unreserved remainder evenly —
// the same semantics as Config.WorkspaceCacheShares. Two bucket styles
// share one implementation:
//
//   - lease-style (RefillPerSec == 0): tokens are held for the duration
//     of the work and returned by Lease.Release — worker slots, scan
//     memory, merge I/O;
//   - rate-style (RefillPerSec > 0): tokens are consumed permanently
//     and refill continuously — WAL/replication bandwidth, where a
//     waiter self-paces on the refill clock.
//
// Shedding. A request that cannot be granted waits FIFO on its bucket,
// but only up to Limits.QueueDepth concurrent waiters per (tenant,
// resource); beyond the cap — or when a rate bucket's projected wait
// exceeds Limits.MaxWait — admission fails fast with a typed
// *OverloadError carrying a computed retry-after instead of queueing
// toward collapse. Retry-after grows with the consecutive-shed streak
// (and never decreases while the overload is sustained), so honest
// clients back off harder the longer the bucket stays saturated.
//
// A nil *Governor is valid everywhere and admits everything — that is
// the Config.DisableQoS ablation.
package qos

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Resource identifies one governed resource class.
type Resource uint8

const (
	// Workers is query fan-out worker slots (one token = one concurrent
	// partition-scan task).
	Workers Resource = iota
	// ScanMem is scan/materialization memory (tokens are bytes of
	// decoded vectors and materialized rows a scan may hold).
	ScanMem
	// MergeIO is background merge I/O (tokens are bytes of merge output
	// being built/persisted).
	MergeIO
	// WALBand is WAL/replication bandwidth (tokens are bytes of
	// replicated pages per second; rate-style).
	WALBand

	numResources
)

// NumResources is the count of governed resource classes.
const NumResources = int(numResources)

// String names the resource class for stats maps and error text.
func (r Resource) String() string {
	switch r {
	case Workers:
		return "workers"
	case ScanMem:
		return "scan_mem"
	case MergeIO:
		return "merge_io"
	case WALBand:
		return "wal_band"
	}
	return fmt.Sprintf("resource(%d)", uint8(r))
}

// ErrOverloaded is the sentinel every shed unwraps to: match with
// errors.Is(err, qos.ErrOverloaded), then errors.As to *OverloadError
// for the tenant, resource and retry-after.
var ErrOverloaded = errors.New("qos: overloaded")

// OverloadError is a typed shed: the tenant exhausted its budget for a
// resource and its queue cap (or maximum tolerable wait), so admission
// failed fast instead of queueing. RetryAfter is the governor's backoff
// hint — monotone non-decreasing while the overload is sustained.
type OverloadError struct {
	Tenant     string
	Resource   Resource
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("qos: tenant %q overloaded on %s (retry after %v)", e.Tenant, e.Resource, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true for every shed.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the backoff hint from a shed error chain,
// returning 0 when err is not an overload.
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Limits configures one resource class.
type Limits struct {
	// Capacity is the total token pool split across tenants by weight.
	// 0 leaves the resource ungoverned (every acquire succeeds).
	Capacity int64
	// RefillPerSec > 0 makes the class rate-style: tokens are consumed
	// permanently and the pool refills at this rate (split by weight),
	// with Capacity acting as the burst bound.
	RefillPerSec int64
	// QueueDepth caps concurrent waiters per (tenant, resource); an
	// acquire beyond the cap sheds. 0 means shed immediately when the
	// budget is exhausted (no queueing at all).
	QueueDepth int
	// MaxWait sheds a rate-style acquire whose projected refill wait
	// exceeds it, instead of stalling the caller. 0 = wait forever.
	MaxWait time.Duration
}

// Config configures a Governor.
type Config struct {
	// Shares maps tenant name → weight in (0,1]; weights must sum to at
	// most 1. Registered tenants not named here split the unreserved
	// remainder evenly (and share everything when Shares is empty) —
	// the same contract as Config.WorkspaceCacheShares.
	Shares map[string]float64
	// Limits configures each resource class, indexed by Resource.
	Limits [NumResources]Limits
	// Now is the clock, for tests; nil means time.Now.
	Now func() time.Time
}

// ValidateShares checks the TenantShares contract: names non-empty,
// weights in (0,1], sum ≤ 1.
func ValidateShares(shares map[string]float64) error {
	sum := 0.0
	for name, s := range shares {
		if name == "" {
			return errors.New("qos: tenant share with empty tenant name")
		}
		if s <= 0 || s > 1 {
			return fmt.Errorf("qos: tenant %q share %.3f outside (0,1]", name, s)
		}
		sum += s
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("qos: tenant shares sum to %.3f > 1", sum)
	}
	return nil
}

// retryBase and retryCap bound the shed-streak backoff: the first shed
// suggests retryBase, each consecutive shed doubles it up to retryCap.
const (
	retryBase = 5 * time.Millisecond
	retryCap  = 2 * time.Second
)

// waiter is one queued acquire; ready is signalled (closed-over channel
// of capacity 1) whenever the bucket's supply may have changed.
type waiter struct {
	need  int64
	ready chan struct{}
}

// bucket is one (tenant, resource) token pool. All fields are guarded
// by the owning Governor's mutex; leases keep a pointer to their bucket
// so a release after the tenant detaches stays harmless.
type bucket struct {
	g      *Governor
	tenant string
	res    Resource
	lim    Limits

	budget int64   // capacity × effective share
	rate   float64 // refill tokens/sec × effective share (0 = lease-style)
	avail  float64 // tokens currently grantable (≤ budget; < 0 after a shrink)
	last   time.Time
	queue  []*waiter
	gone   bool // tenant unregistered; grants become free, releases still settle

	// Shed backoff: consecutive sheds since the last successful grant,
	// and the last retry-after handed out (enforces monotonicity).
	shedStreak int
	lastRetry  time.Duration

	// Cumulative stats.
	spent     int64
	waits     int64
	waitNanos int64
	sheds     int64
	inUse     int64 // outstanding lease tokens
}

// Governor is the admission controller. The zero value is not usable;
// build one with New. A nil *Governor admits everything.
type Governor struct {
	mu      sync.Mutex
	cfg     Config
	now     func() time.Time
	tenants map[string]*tenantState
}

type tenantState struct {
	name    string
	buckets [NumResources]*bucket
}

// New builds a Governor. Config.Shares is validated; resources with
// zero Capacity stay ungoverned.
func New(cfg Config) (*Governor, error) {
	if err := ValidateShares(cfg.Shares); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Governor{cfg: cfg, now: now, tenants: make(map[string]*tenantState)}, nil
}

// Register adds a tenant (idempotent) and rebalances every tenant's
// budgets to the new weight distribution. Acquire auto-registers
// unknown tenants, so explicit registration is only needed to make a
// tenant's budget visible before its first request.
func (g *Governor) Register(tenant string) {
	if g == nil || tenant == "" {
		return
	}
	g.mu.Lock()
	g.registerLocked(tenant)
	g.mu.Unlock()
}

func (g *Governor) registerLocked(tenant string) *tenantState {
	if t, ok := g.tenants[tenant]; ok {
		return t
	}
	t := &tenantState{name: tenant}
	for r := 0; r < NumResources; r++ {
		t.buckets[r] = &bucket{
			g:      g,
			tenant: tenant,
			res:    Resource(r),
			lim:    g.cfg.Limits[r],
			last:   g.now(),
		}
	}
	g.tenants[tenant] = t
	g.rebalanceLocked()
	return t
}

// Unregister removes a tenant. Its queued waiters are released
// ungoverned (the tenant is going away; blocking them forever would
// leak goroutines), outstanding leases settle harmlessly against the
// orphaned buckets, and the survivors' budgets grow to absorb the freed
// weight.
func (g *Governor) Unregister(tenant string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	t, ok := g.tenants[tenant]
	if ok {
		delete(g.tenants, tenant)
		for _, b := range t.buckets {
			b.gone = true
			for _, w := range b.queue {
				select {
				case w.ready <- struct{}{}:
				default:
				}
			}
			b.queue = nil
		}
		g.rebalanceLocked()
	}
	g.mu.Unlock()
}

// rebalanceLocked recomputes every bucket's budget and refill rate from
// the current tenant set: explicit weights from cfg.Shares, everyone
// else splitting the unreserved remainder evenly. Budget deltas are
// applied to avail directly, which preserves the lease invariant
// avail = budget − inUse across rebalances (avail goes negative when a
// shrink lands under outstanding leases — the debt settles as leases
// release).
func (g *Governor) rebalanceLocked() {
	reserved := 0.0
	unreserved := 0
	for name := range g.tenants {
		if s, ok := g.cfg.Shares[name]; ok {
			reserved += s
		} else {
			unreserved++
		}
	}
	evenShare := 0.0
	if unreserved > 0 {
		evenShare = (1 - reserved) / float64(unreserved)
		if evenShare < 0 {
			evenShare = 0
		}
	}
	for name, t := range g.tenants {
		share, ok := g.cfg.Shares[name]
		if !ok {
			share = evenShare
		}
		for _, b := range t.buckets {
			if b.lim.Capacity == 0 {
				continue
			}
			newBudget := int64(float64(b.lim.Capacity) * share)
			if newBudget < 1 {
				newBudget = 1 // every tenant can always make progress
			}
			g.refillLocked(b)
			b.avail += float64(newBudget - b.budget)
			b.budget = newBudget
			if b.avail > float64(b.budget) {
				b.avail = float64(b.budget)
			}
			b.rate = float64(b.lim.RefillPerSec) * share
			if b.lim.RefillPerSec > 0 && b.rate < 1 {
				// A rate bucket must keep refilling even when a tenant's
				// share rounds to nothing, or its waiters would never wake.
				b.rate = 1
			}
			b.wakeLocked()
		}
	}
}

// refillLocked credits a rate-style bucket for elapsed wall time.
func (g *Governor) refillLocked(b *bucket) {
	now := g.now()
	if b.rate > 0 {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.avail += b.rate * dt
			if b.avail > float64(b.budget) {
				b.avail = float64(b.budget)
			}
		}
	}
	b.last = now
}

// wakeLocked signals the head waiter to re-check supply.
func (b *bucket) wakeLocked() {
	if len(b.queue) > 0 {
		select {
		case b.queue[0].ready <- struct{}{}:
		default:
		}
	}
}

// shedLocked records a shed and returns the typed error. Retry-after
// doubles with the consecutive-shed streak from retryBase to retryCap,
// floored by the refill deficit for rate buckets, and never decreases
// while the streak is unbroken.
func (b *bucket) shedLocked(need int64) error {
	b.sheds++
	b.shedStreak++
	exp := b.shedStreak - 1
	if exp > 30 {
		exp = 30
	}
	ra := retryBase << exp
	if ra > retryCap || ra <= 0 {
		ra = retryCap
	}
	if b.rate > 0 {
		if deficit := float64(need) - b.avail; deficit > 0 {
			if d := time.Duration(deficit / b.rate * float64(time.Second)); d > ra {
				ra = d
			}
		}
	}
	if ra < b.lastRetry {
		ra = b.lastRetry
	}
	b.lastRetry = ra
	return &OverloadError{Tenant: b.tenant, Resource: b.res, RetryAfter: ra}
}

// Lease is a grant of N tokens against one bucket. Release returns
// lease-style tokens; for rate-style buckets (and ungoverned grants)
// it is a no-op. A nil *Lease is valid and inert.
type Lease struct {
	b *bucket
	n int64
	// Waited is how long the acquire queued before being granted.
	Waited time.Duration
	done   bool
}

// N is the number of tokens granted (0 for an ungoverned nil lease).
func (l *Lease) N() int64 {
	if l == nil {
		return 0
	}
	return l.n
}

// Release returns the lease's tokens and wakes the bucket's head
// waiter. Safe to call once per lease from any goroutine, including
// after the tenant was unregistered.
func (l *Lease) Release() {
	if l == nil || l.b == nil {
		return
	}
	b := l.b
	g := b.g
	g.mu.Lock()
	if l.done {
		g.mu.Unlock()
		return
	}
	l.done = true
	b.inUse -= l.n
	if b.rate == 0 {
		b.avail += float64(l.n)
		if b.avail > float64(b.budget) && !b.gone {
			b.avail = float64(b.budget)
		}
		b.wakeLocked()
	}
	g.mu.Unlock()
}

// Acquire takes exactly n tokens (clamped to the tenant's whole budget,
// so a request larger than the budget still completes) and blocks until
// granted, shed, or ctx is done. See AcquireUpTo for the elastic form.
func (g *Governor) Acquire(ctx contextLike, tenant string, res Resource, n int64) (*Lease, error) {
	l, _, err := g.AcquireUpTo(ctx, tenant, res, n, n)
	return l, err
}

// Consume is rate-style sugar: acquire n tokens that are never
// returned (the lease is pre-released for lease-style buckets too).
func (g *Governor) Consume(ctx contextLike, tenant string, res Resource, n int64) error {
	l, err := g.Acquire(ctx, tenant, res, n)
	if err != nil {
		return err
	}
	if l != nil && l.b != nil && l.b.rate == 0 {
		l.Release()
	}
	return nil
}

// contextLike is the subset of context.Context admission needs; it
// keeps qos importable from the deepest layers without pulling their
// contexts into this package's API surface.
type contextLike interface {
	Done() <-chan struct{}
	Err() error
}

// AcquireUpTo grants between min and max tokens (both clamped to the
// tenant's budget): everything available up to max when at least min is
// free, queueing FIFO otherwise. It sheds — typed *OverloadError with
// retry-after — when the bucket's queue cap is hit or a rate bucket's
// projected wait exceeds its MaxWait. The granted count rides on the
// returned lease and is also returned for convenience. On an
// ungoverned resource (nil governor or zero capacity) it returns
// (nil, max, nil).
func (g *Governor) AcquireUpTo(ctx contextLike, tenant string, res Resource, min, max int64) (*Lease, int64, error) {
	if g == nil || g.cfg.Limits[res].Capacity == 0 {
		return nil, max, nil
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	g.mu.Lock()
	t, ok := g.tenants[tenant]
	if !ok {
		t = g.registerLocked(tenant)
	}
	b := t.buckets[res]

	var w *waiter
	var start time.Time
	for {
		g.refillLocked(b)
		if b.gone {
			// Tenant detached while we were acquiring: admit ungoverned.
			g.mu.Unlock()
			return nil, max, nil
		}
		need := min
		if need > b.budget {
			need = b.budget
		}
		grant := max
		if grant > b.budget {
			grant = b.budget
		}
		headOK := (w == nil && len(b.queue) == 0) || (w != nil && len(b.queue) > 0 && b.queue[0] == w)
		if headOK && b.avail >= float64(need) {
			if float64(grant) > b.avail {
				grant = int64(b.avail)
			}
			if grant < need {
				grant = need
			}
			b.avail -= float64(grant)
			b.spent += grant
			b.shedStreak = 0
			b.lastRetry = 0
			if b.rate == 0 {
				b.inUse += grant
			}
			l := &Lease{b: b, n: grant}
			if w != nil {
				b.queue = b.queue[1:]
				b.wakeLocked()
				l.Waited = g.now().Sub(start)
				b.waitNanos += int64(l.Waited)
			}
			g.mu.Unlock()
			return l, grant, nil
		}
		var timer <-chan time.Time
		var tm *time.Timer
		if b.rate > 0 {
			wait := time.Duration((float64(need) - b.avail) / b.rate * float64(time.Second))
			if b.lim.MaxWait > 0 && wait > b.lim.MaxWait {
				err := b.shedLocked(need)
				if w != nil {
					b.dropLocked(w)
				}
				g.mu.Unlock()
				return nil, 0, err
			}
			if wait > 0 && headOK {
				tm = time.NewTimer(wait)
				timer = tm.C
			}
		}
		if w == nil {
			if len(b.queue) >= b.lim.QueueDepth {
				err := b.shedLocked(need)
				g.mu.Unlock()
				if tm != nil {
					tm.Stop()
				}
				return nil, 0, err
			}
			w = &waiter{need: need, ready: make(chan struct{}, 1)}
			b.queue = append(b.queue, w)
			b.waits++
			start = g.now()
		}
		g.mu.Unlock()

		select {
		case <-w.ready:
		case <-timer:
		case <-ctx.Done():
			if tm != nil {
				tm.Stop()
			}
			g.mu.Lock()
			b.dropLocked(w)
			b.waitNanos += int64(g.now().Sub(start))
			g.mu.Unlock()
			return nil, 0, ctx.Err()
		}
		if tm != nil {
			tm.Stop()
		}
		g.mu.Lock()
	}
}

// dropLocked removes a waiter from the queue (cancellation, shed) and
// passes any pending wake signal on to the new head.
func (b *bucket) dropLocked(w *waiter) {
	for i, q := range b.queue {
		if q == w {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			break
		}
	}
	b.wakeLocked()
}

// ResourceStats is one tenant's cumulative accounting for one resource.
type ResourceStats struct {
	// Budget is the tenant's current token budget (capacity × share).
	Budget int64 `json:"budget"`
	// InUse is outstanding lease tokens right now.
	InUse int64 `json:"in_use"`
	// Avail is the grantable token count right now (negative while a
	// rebalance shrink settles against outstanding leases).
	Avail int64 `json:"avail"`
	// Spent is cumulative tokens granted.
	Spent int64 `json:"spent"`
	// Waits is the number of acquires that had to queue.
	Waits int64 `json:"waits"`
	// WaitTime is cumulative time spent queued.
	WaitTime time.Duration `json:"wait_ns"`
	// Sheds is the number of acquires rejected with ErrOverloaded.
	Sheds int64 `json:"sheds"`
}

// TenantStats is one tenant's per-resource accounting.
type TenantStats struct {
	Workers ResourceStats `json:"workers"`
	ScanMem ResourceStats `json:"scan_mem"`
	MergeIO ResourceStats `json:"merge_io"`
	WALBand ResourceStats `json:"wal_band"`
}

// byResource returns the addressable field for a resource index.
func (ts *TenantStats) byResource(r Resource) *ResourceStats {
	switch r {
	case Workers:
		return &ts.Workers
	case ScanMem:
		return &ts.ScanMem
	case MergeIO:
		return &ts.MergeIO
	default:
		return &ts.WALBand
	}
}

// TotalSheds sums sheds across resources — convenience for assertions.
func (ts TenantStats) TotalSheds() int64 {
	return ts.Workers.Sheds + ts.ScanMem.Sheds + ts.MergeIO.Sheds + ts.WALBand.Sheds
}

// Stats snapshots every registered tenant's accounting. Nil-safe.
func (g *Governor) Stats() map[string]TenantStats {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]TenantStats, len(g.tenants))
	for name, t := range g.tenants {
		out[name] = g.tenantStatsLocked(t)
	}
	return out
}

// TenantStatsFor snapshots one tenant; ok is false when the tenant was
// never registered (and the governor is non-nil).
func (g *Governor) TenantStatsFor(tenant string) (TenantStats, bool) {
	if g == nil {
		return TenantStats{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.tenants[tenant]
	if !ok {
		return TenantStats{}, false
	}
	return g.tenantStatsLocked(t), true
}

func (g *Governor) tenantStatsLocked(t *tenantState) TenantStats {
	var ts TenantStats
	for r := 0; r < NumResources; r++ {
		b := t.buckets[r]
		g.refillLocked(b)
		*ts.byResource(Resource(r)) = ResourceStats{
			Budget:   b.budget,
			InUse:    b.inUse,
			Avail:    int64(b.avail),
			Spent:    b.spent,
			Waits:    b.waits,
			WaitTime: time.Duration(b.waitNanos),
			Sheds:    b.sheds,
		}
	}
	return ts
}
