package tpch

import (
	"s2db/internal/baseline"
	"s2db/internal/cluster"
	"s2db/internal/types"
)

// S2Loader loads the dataset into a S2DB cluster via the bulk columnstore
// path.
type S2Loader struct {
	C *cluster.Cluster
}

// CreateTables implements Loader.
func (l *S2Loader) CreateTables() error {
	for name, schema := range Schemas() {
		if err := l.C.CreateTable(name, schema); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Loader.
func (l *S2Loader) Load(table string, rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	return l.C.BulkLoad(table, rows)
}

// RowLoader loads the dataset into the rowstore baseline.
type RowLoader struct {
	DB *baseline.RowDB
}

// CreateTables implements Loader.
func (l *RowLoader) CreateTables() error {
	for name, schema := range Schemas() {
		if err := l.DB.CreateTable(name, schema); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Loader.
func (l *RowLoader) Load(table string, rows []types.Row) error {
	t, err := l.DB.Table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// WarehouseLoader loads the dataset into the CDW baseline.
type WarehouseLoader struct {
	W *baseline.Warehouse
}

// CreateTables implements Loader (index/unique features are stripped by
// the warehouse).
func (l *WarehouseLoader) CreateTables() error {
	for name, schema := range Schemas() {
		if err := l.W.CreateTable(name, schema); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Loader.
func (l *WarehouseLoader) Load(table string, rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	return l.W.BulkLoad(table, rows)
}
