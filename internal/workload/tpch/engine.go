package tpch

import (
	"context"

	"s2db/internal/baseline"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
)

// Engine abstracts query execution so the 22 queries run unchanged against
// S2DB (vectorized, adaptive), the warehouse baseline (same columnar
// engine) and the rowstore baseline (row-at-a-time). The performance
// differences between engines come from how each implements these three
// operations, mirroring §6's comparison.
type Engine interface {
	Name() string
	// Scan iterates rows of a table passing the filter. cols lists the
	// columns the caller reads (projection pushdown); nil means all. The
	// emitted row may be reused between calls; callers that retain a row
	// must Clone it.
	Scan(table string, filter exec.Node, cols []int, emit func(types.Row) bool) error
	// Aggregate runs a grouped aggregation.
	Aggregate(table string, filter exec.Node, groupCols []int, aggs []exec.AggSpec) ([]types.Row, error)
	// Join joins already-materialized build rows against a probe table.
	Join(build []types.Row, buildKey []int, probeTable string, probeKey []int,
		probeFilter exec.Node, emit func(b, p types.Row) bool) error
}

// --- S2DB engine ------------------------------------------------------------

// S2Engine executes on a S2DB cluster using adaptive columnar execution.
// Workspace may redirect reads to a read-only workspace (CH-BenCHmark test
// cases 4-5).
type S2Engine struct {
	C         *cluster.Cluster
	Workspace *cluster.Workspace
}

// Name implements Engine.
func (e *S2Engine) Name() string { return "s2db" }

func (e *S2Engine) views(table string) ([]*core.View, error) {
	if e.Workspace != nil {
		return e.Workspace.Views(table)
	}
	return e.C.Views(table)
}

// Scan implements Engine.
func (e *S2Engine) Scan(table string, filter exec.Node, cols []int, emit func(types.Row) bool) error {
	views, err := e.views(table)
	if err != nil {
		return err
	}
	for _, v := range views {
		stop := false
		scan := exec.NewScan(v, filter)
		scan.Project = cols
		scan.Run(func(r types.Row) bool {
			if !emit(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}

// Aggregate implements Engine with per-partition partials computed on the
// parallel fan-out scheduler and merged centrally.
func (e *S2Engine) Aggregate(table string, filter exec.Node, groupCols []int, aggs []exec.AggSpec) ([]types.Row, error) {
	views, err := e.views(table)
	if err != nil {
		return nil, err
	}
	return exec.AggregateViewsParallel(context.Background(), views, filter, groupCols, aggs, 0, nil)
}

// Join implements Engine with the adaptive join index filter (§5.1).
func (e *S2Engine) Join(build []types.Row, buildKey []int, probeTable string, probeKey []int,
	probeFilter exec.Node, emit func(b, p types.Row) bool) error {
	views, err := e.views(probeTable)
	if err != nil {
		return err
	}
	for _, v := range views {
		exec.EquiJoin(build, buildKey, v, probeKey, probeFilter, exec.JoinAuto, nil, emit)
	}
	return nil
}

// --- warehouse engine -------------------------------------------------------

// WarehouseEngine executes on the CDW baseline: the identical columnar
// path minus secondary indexes (they were stripped at CreateTable).
type WarehouseEngine struct {
	W *baseline.Warehouse
}

// Name implements Engine.
func (e *WarehouseEngine) Name() string { return "cdw" }

// Scan implements Engine.
func (e *WarehouseEngine) Scan(table string, filter exec.Node, cols []int, emit func(types.Row) bool) error {
	views, err := e.W.Views(table)
	if err != nil {
		return err
	}
	for _, v := range views {
		stop := false
		scan := exec.NewScan(v, filter)
		scan.Project = cols
		scan.Run(func(r types.Row) bool {
			if !emit(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}

// Aggregate implements Engine.
func (e *WarehouseEngine) Aggregate(table string, filter exec.Node, groupCols []int, aggs []exec.AggSpec) ([]types.Row, error) {
	views, err := e.W.Views(table)
	if err != nil {
		return nil, err
	}
	return exec.AggregateViews(views, filter, groupCols, aggs, nil), nil
}

// Join implements Engine (hash join: the warehouse has no indexes).
func (e *WarehouseEngine) Join(build []types.Row, buildKey []int, probeTable string, probeKey []int,
	probeFilter exec.Node, emit func(b, p types.Row) bool) error {
	views, err := e.W.Views(probeTable)
	if err != nil {
		return err
	}
	for _, v := range views {
		exec.EquiJoin(build, buildKey, v, probeKey, probeFilter, exec.JoinForceHash, nil, emit)
	}
	return nil
}

// --- rowstore (CDB) engine --------------------------------------------------

// RowEngine executes on the rowstore baseline one row at a time: filters
// are evaluated per materialized row, aggregation is a row-wise fold, joins
// scan the probe table against an in-memory hash map. This is the §6
// explanation for CDB's orders-of-magnitude TPC-H gap: "a row-oriented
// storage format and single-host query execution".
type RowEngine struct {
	DB *baseline.RowDB
}

// Name implements Engine.
func (e *RowEngine) Name() string { return "cdb" }

// Scan implements Engine. The rowstore holds fully materialized rows, so
// projection is free (and ignored).
func (e *RowEngine) Scan(table string, filter exec.Node, _ []int, emit func(types.Row) bool) error {
	t, err := e.DB.Table(table)
	if err != nil {
		return err
	}
	t.Scan(func(r types.Row) bool {
		if filter != nil && !filter.EvalRow(r) {
			return true
		}
		return emit(r)
	})
	return nil
}

// Aggregate implements Engine via RowAggregate.
func (e *RowEngine) Aggregate(table string, filter exec.Node, groupCols []int, aggs []exec.AggSpec) ([]types.Row, error) {
	var rows []types.Row
	err := e.Scan(table, filter, nil, func(r types.Row) bool {
		rows = append(rows, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	return RowAggregate(rows, groupCols, aggs), nil
}

// Join implements Engine as a hash join over full scans.
func (e *RowEngine) Join(build []types.Row, buildKey []int, probeTable string, probeKey []int,
	probeFilter exec.Node, emit func(b, p types.Row) bool) error {
	buildMap := make(map[string][]types.Row, len(build))
	var kb []byte
	for _, r := range build {
		kb = kb[:0]
		for _, c := range buildKey {
			kb = types.EncodeKey(kb, r[c])
		}
		buildMap[string(kb)] = append(buildMap[string(kb)], r)
	}
	return e.Scan(probeTable, probeFilter, nil, func(pr types.Row) bool {
		kb = kb[:0]
		for _, c := range probeKey {
			kb = types.EncodeKey(kb, pr[c])
		}
		for _, b := range buildMap[string(kb)] {
			if !emit(b, pr) {
				return false
			}
		}
		return true
	})
}

// RowAggregate is a row-at-a-time grouped aggregation used by the rowstore
// engine and by query code that aggregates join results.
func RowAggregate(rows []types.Row, groupCols []int, aggs []exec.AggSpec) []types.Row {
	type state struct {
		key    types.Row
		counts []int64
		sums   []float64
		sumIs  []int64
		mins   []types.Value
		maxs   []types.Value
	}
	groups := map[string]*state{}
	var kb []byte
	for _, r := range rows {
		kb = kb[:0]
		for _, c := range groupCols {
			kb = types.EncodeKey(kb, r[c])
		}
		g, ok := groups[string(kb)]
		if !ok {
			key := make(types.Row, len(groupCols))
			for i, c := range groupCols {
				key[i] = r[c]
			}
			g = &state{
				key:    key,
				counts: make([]int64, len(aggs)),
				sums:   make([]float64, len(aggs)),
				sumIs:  make([]int64, len(aggs)),
				mins:   make([]types.Value, len(aggs)),
				maxs:   make([]types.Value, len(aggs)),
			}
			groups[string(kb)] = g
		}
		for ai, a := range aggs {
			var v types.Value
			switch {
			case a.Func == exec.Count && a.Expr == nil && a.Col < 0:
				v = types.NewInt(1)
			case a.Expr != nil:
				v = a.Expr(r)
			default:
				v = r[a.Col]
			}
			if v.IsNull {
				continue
			}
			g.counts[ai]++
			switch v.Type {
			case types.Int64:
				g.sumIs[ai] += v.I
			case types.Float64:
				g.sums[ai] += v.F
			}
			if g.mins[ai].IsNull || g.counts[ai] == 1 {
				g.mins[ai], g.maxs[ai] = v, v
			} else {
				if types.Compare(v, g.mins[ai]) < 0 {
					g.mins[ai] = v
				}
				if types.Compare(v, g.maxs[ai]) > 0 {
					g.maxs[ai] = v
				}
			}
		}
	}
	out := make([]types.Row, 0, len(groups))
	for _, g := range groups {
		row := append(types.Row{}, g.key...)
		for ai, a := range aggs {
			switch a.Func {
			case exec.Count:
				row = append(row, types.NewInt(g.counts[ai]))
			case exec.Sum:
				if g.sumIs[ai] != 0 && g.sums[ai] == 0 {
					row = append(row, types.NewInt(g.sumIs[ai]))
				} else {
					row = append(row, types.NewFloat(g.sums[ai]+float64(g.sumIs[ai])))
				}
			case exec.Min:
				row = append(row, g.mins[ai])
			case exec.Max:
				row = append(row, g.maxs[ai])
			case exec.Avg:
				if g.counts[ai] == 0 {
					row = append(row, types.Null(types.Float64))
				} else {
					row = append(row, types.NewFloat((g.sums[ai]+float64(g.sumIs[ai]))/float64(g.counts[ai])))
				}
			}
		}
		out = append(out, row)
	}
	return out
}
