package tpch

import (
	"fmt"
	"math"
	"time"

	"s2db/internal/types"
)

// QueryResult records one query execution.
type QueryResult struct {
	Name     string
	Duration time.Duration
	Rows     int
	Err      error
}

// RunAll executes every query once against the engine, returning per-query
// timings (Figure 4's series).
func RunAll(e Engine) []QueryResult {
	out := make([]QueryResult, 0, 22)
	for _, q := range Queries() {
		start := time.Now()
		rows, err := q.Run(e)
		out = append(out, QueryResult{
			Name:     q.Name,
			Duration: time.Since(start),
			Rows:     len(rows),
			Err:      err,
		})
	}
	return out
}

// RunAllTimeout is RunAll with a per-run wall-clock budget: once exceeded,
// remaining queries are marked "did not finish" (the CDB row in Table 2).
func RunAllTimeout(e Engine, budget time.Duration) ([]QueryResult, bool) {
	deadline := time.Now().Add(budget)
	out := make([]QueryResult, 0, 22)
	for _, q := range Queries() {
		if time.Now().After(deadline) {
			out = append(out, QueryResult{Name: q.Name, Err: fmt.Errorf("did not finish within budget")})
			continue
		}
		start := time.Now()
		rows, err := q.Run(e)
		out = append(out, QueryResult{Name: q.Name, Duration: time.Since(start), Rows: len(rows), Err: err})
	}
	finished := true
	for _, r := range out {
		if r.Err != nil {
			finished = false
		}
	}
	return out, finished
}

// Geomean computes the geometric mean runtime of completed queries
// (Table 2's summary metric).
func Geomean(results []QueryResult) (time.Duration, bool) {
	sumLog := 0.0
	n := 0
	for _, r := range results {
		if r.Err != nil {
			return 0, false
		}
		d := r.Duration.Seconds()
		if d <= 0 {
			d = 1e-9
		}
		sumLog += math.Log(d)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return time.Duration(math.Exp(sumLog/float64(n)) * float64(time.Second)), true
}

// FormatRow renders a result row for harness output.
func FormatRow(r types.Row) string {
	s := ""
	for i, v := range r {
		if i > 0 {
			s += " | "
		}
		s += v.String()
	}
	return s
}
