// Package tpch implements a TPC-H-derived analytical workload: the eight
// tables, a deterministic scale-factor data generator, and all 22 queries
// written against a small Engine interface so the same workload runs on
// S2DB unified storage, the warehouse baseline (same columnar execution)
// and the rowstore baseline (row-at-a-time execution) — reproducing
// Table 2 and Figure 4 of the paper. Dates are stored as epoch-day int64s
// and decimals as float64.
package tpch

import (
	"time"

	"s2db/internal/types"
)

// Table names.
const (
	TRegion   = "region"
	TNation   = "nation"
	TSupplier = "supplier"
	TCustomer = "customer"
	TPart     = "part"
	TPartSupp = "partsupp"
	TOrders   = "orders"
	TLineItem = "lineitem"
)

// Column ordinals.
const (
	RRegionKey = 0
	RName      = 1
	RComment   = 2

	NNationKey = 0
	NName      = 1
	NRegionKey = 2
	NComment   = 3

	SSuppKey    = 0
	SName       = 1
	SAddress    = 2
	SNationKey  = 3
	SPhone      = 4
	SAcctBal    = 5
	SSuppComent = 6

	CCustKey    = 0
	CName       = 1
	CAddress    = 2
	CNationKey  = 3
	CPhone      = 4
	CAcctBal    = 5
	CMktSegment = 6
	CComment    = 7

	PPartKey     = 0
	PName        = 1
	PMfgr        = 2
	PBrand       = 3
	PType        = 4
	PSize        = 5
	PContainer   = 6
	PRetailPrice = 7
	PComment     = 8

	PSPartKey    = 0
	PSSuppKey    = 1
	PSAvailQty   = 2
	PSSupplyCost = 3
	PSComment    = 4

	OOrderKey      = 0
	OCustKey       = 1
	OOrderStatus   = 2
	OTotalPrice    = 3
	OOrderDate     = 4
	OOrderPriority = 5
	OClerk         = 6
	OShipPriority  = 7
	OComment       = 8

	LOrderKey      = 0
	LPartKey       = 1
	LSuppKey       = 2
	LLineNumber    = 3
	LQuantity      = 4
	LExtendedPrice = 5
	LDiscount      = 6
	LTax           = 7
	LReturnFlag    = 8
	LLineStatus    = 9
	LShipDate      = 10
	LCommitDate    = 11
	LReceiptDate   = 12
	LShipInstruct  = 13
	LShipMode      = 14
	LComment       = 15
)

// Date converts a calendar date to the epoch-day representation used in
// generated data and query constants.
func Date(year, month, day int) int64 {
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// Schemas returns the eight table schemas keyed by name. Sort keys follow
// common warehouse practice (fact tables sorted by date); secondary keys
// support the OLTP-ish probes of CH-BenCHmark.
func Schemas() map[string]*types.Schema {
	i64 := func(n string) types.Column { return types.Column{Name: n, Type: types.Int64} }
	f64 := func(n string) types.Column { return types.Column{Name: n, Type: types.Float64} }
	str := func(n string) types.Column { return types.Column{Name: n, Type: types.String} }

	region := types.NewSchema(i64("r_regionkey"), str("r_name"), str("r_comment"))
	region.UniqueKey = []int{RRegionKey}
	region.ShardKey = []int{RRegionKey}

	nation := types.NewSchema(i64("n_nationkey"), str("n_name"), i64("n_regionkey"), str("n_comment"))
	nation.UniqueKey = []int{NNationKey}
	nation.ShardKey = []int{NNationKey}

	supplier := types.NewSchema(
		i64("s_suppkey"), str("s_name"), str("s_address"), i64("s_nationkey"),
		str("s_phone"), f64("s_acctbal"), str("s_comment"))
	supplier.UniqueKey = []int{SSuppKey}
	supplier.ShardKey = []int{SSuppKey}

	customer := types.NewSchema(
		i64("c_custkey"), str("c_name"), str("c_address"), i64("c_nationkey"),
		str("c_phone"), f64("c_acctbal"), str("c_mktsegment"), str("c_comment"))
	customer.UniqueKey = []int{CCustKey}
	customer.ShardKey = []int{CCustKey}
	customer.SecondaryKeys = [][]int{{CMktSegment}}

	part := types.NewSchema(
		i64("p_partkey"), str("p_name"), str("p_mfgr"), str("p_brand"), str("p_type"),
		i64("p_size"), str("p_container"), f64("p_retailprice"), str("p_comment"))
	part.UniqueKey = []int{PPartKey}
	part.ShardKey = []int{PPartKey}
	part.SecondaryKeys = [][]int{{PBrand}}

	partsupp := types.NewSchema(
		i64("ps_partkey"), i64("ps_suppkey"), i64("ps_availqty"), f64("ps_supplycost"), str("ps_comment"))
	partsupp.UniqueKey = []int{PSPartKey, PSSuppKey}
	partsupp.ShardKey = []int{PSPartKey}

	orders := types.NewSchema(
		i64("o_orderkey"), i64("o_custkey"), str("o_orderstatus"), f64("o_totalprice"),
		i64("o_orderdate"), str("o_orderpriority"), str("o_clerk"), i64("o_shippriority"), str("o_comment"))
	orders.UniqueKey = []int{OOrderKey}
	orders.ShardKey = []int{OOrderKey}
	orders.SortKey = OOrderDate
	orders.SecondaryKeys = [][]int{{OCustKey}}

	lineitem := types.NewSchema(
		i64("l_orderkey"), i64("l_partkey"), i64("l_suppkey"), i64("l_linenumber"),
		f64("l_quantity"), f64("l_extendedprice"), f64("l_discount"), f64("l_tax"),
		str("l_returnflag"), str("l_linestatus"),
		i64("l_shipdate"), i64("l_commitdate"), i64("l_receiptdate"),
		str("l_shipinstruct"), str("l_shipmode"), str("l_comment"))
	lineitem.UniqueKey = []int{LOrderKey, LLineNumber}
	lineitem.ShardKey = []int{LOrderKey}
	lineitem.SortKey = LShipDate
	lineitem.SecondaryKeys = [][]int{{LPartKey}}

	return map[string]*types.Schema{
		TRegion:   region,
		TNation:   nation,
		TSupplier: supplier,
		TCustomer: customer,
		TPart:     part,
		TPartSupp: partsupp,
		TOrders:   orders,
		TLineItem: lineitem,
	}
}
