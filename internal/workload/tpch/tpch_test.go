package tpch

import (
	"fmt"
	"sort"
	"testing"

	"s2db/internal/baseline"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/types"
)

const testSF = 0.002 // ~3000 orders, ~12000 lineitems

func newS2(t testing.TB) *S2Engine {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Partitions: 2,
		Table:      core.Config{MaxSegmentRows: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tt, ok := t.(*testing.T); ok {
		tt.Cleanup(c.Close)
	}
	if err := Generate(&S2Loader{C: c}, testSF, 7); err != nil {
		t.Fatal(err)
	}
	return &S2Engine{C: c}
}

func newRow(t testing.TB) *RowEngine {
	t.Helper()
	db := baseline.NewRowDB()
	if err := Generate(&RowLoader{DB: db}, testSF, 7); err != nil {
		t.Fatal(err)
	}
	return &RowEngine{DB: db}
}

func TestDateHelper(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Fatalf("epoch = %d", Date(1970, 1, 1))
	}
	if Date(1970, 1, 2)-Date(1970, 1, 1) != 1 {
		t.Fatal("day arithmetic broken")
	}
	if Date(1995, 3, 15) <= Date(1992, 1, 1) {
		t.Fatal("ordering broken")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	e := newS2(t)
	sizes := Sizes(testSF)
	for table, want := range sizes {
		views, err := e.C.Views(table)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, v := range views {
			got += v.NumRows()
		}
		if got != want {
			t.Fatalf("%s: %d rows, want %d", table, got, want)
		}
	}
	// Lineitems: 1..7 per order.
	views, _ := e.C.Views(TLineItem)
	got := 0
	for _, v := range views {
		got += v.NumRows()
	}
	orders := sizes[TOrders]
	if got < orders || got > orders*7 {
		t.Fatalf("lineitem count %d outside [%d, %d]", got, orders, orders*7)
	}
}

// canonical renders result rows order-independently for comparison.
func canonical(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			if v.Type == types.Float64 && !v.IsNull {
				s += fmt.Sprintf("|%.4f", v.F)
			} else {
				s += "|" + v.String()
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// TestQueriesAgreeAcrossEngines is the cross-validation at the heart of
// the reproduction: the vectorized adaptive engine and the row-at-a-time
// baseline must return identical answers for all 22 queries.
func TestQueriesAgreeAcrossEngines(t *testing.T) {
	s2 := newS2(t)
	row := newRow(t)
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			a, err := q.Run(s2)
			if err != nil {
				t.Fatalf("s2: %v", err)
			}
			b, err := q.Run(row)
			if err != nil {
				t.Fatalf("row: %v", err)
			}
			ca, cb := canonical(a), canonical(b)
			if len(ca) != len(cb) {
				t.Fatalf("row counts differ: s2=%d row=%d", len(ca), len(cb))
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("row %d differs:\n  s2:  %s\n  row: %s", i, ca[i], cb[i])
				}
			}
		})
	}
}

func TestQ1Shape(t *testing.T) {
	e := newS2(t)
	rows, err := Q1(e)
	if err != nil {
		t.Fatal(err)
	}
	// Return flags: A/N/R x line status F/O, but N|F is rare; expect 3-4.
	if len(rows) < 3 || len(rows) > 4 {
		t.Fatalf("Q1 groups = %d", len(rows))
	}
	for _, r := range rows {
		if r[2].F <= 0 { // sum_qty (LQuantity is a float column)
			t.Fatalf("empty group in Q1: %v", r)
		}
	}
}

func TestQ6Positive(t *testing.T) {
	e := newS2(t)
	rows, err := Q6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].F <= 0 {
		t.Fatalf("Q6 = %v", rows)
	}
}

func TestRunAllAndGeomean(t *testing.T) {
	e := newS2(t)
	results := RunAll(e)
	if len(results) != 22 {
		t.Fatalf("ran %d queries", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	g, ok := Geomean(results)
	if !ok || g <= 0 {
		t.Fatalf("geomean = %v ok=%v", g, ok)
	}
}

func TestRunAllTimeoutMarksDNF(t *testing.T) {
	e := newS2(t)
	results, finished := RunAllTimeout(e, 0) // zero budget: everything DNFs
	if finished {
		t.Fatal("zero budget should not finish")
	}
	if _, ok := Geomean(results); ok {
		t.Fatal("geomean of DNF run should not be ok")
	}
}

func TestWarehouseEngineAgreesOnAggregates(t *testing.T) {
	w, err := baseline.NewWarehouse(baseline.WarehouseConfig{
		Partitions: 1,
		Table:      core.Config{MaxSegmentRows: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := Generate(&WarehouseLoader{W: w}, testSF, 7); err != nil {
		t.Fatal(err)
	}
	we := &WarehouseEngine{W: w}
	s2 := newS2(t)
	for _, q := range []QuerySpec{{"Q1", Q1}, {"Q6", Q6}, {"Q14", Q14}} {
		a, err := q.Run(s2)
		if err != nil {
			t.Fatalf("%s s2: %v", q.Name, err)
		}
		b, err := q.Run(we)
		if err != nil {
			t.Fatalf("%s cdw: %v", q.Name, err)
		}
		ca, cb := canonical(a), canonical(b)
		if len(ca) != len(cb) {
			t.Fatalf("%s: row counts differ", q.Name)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s row %d: %s vs %s", q.Name, i, ca[i], cb[i])
			}
		}
	}
}
