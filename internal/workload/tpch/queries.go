package tpch

import (
	"fmt"
	"strings"

	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// QuerySpec names one benchmark query.
type QuerySpec struct {
	Name string
	Run  func(e Engine) ([]types.Row, error)
}

// Queries returns the 22 TPC-H-derived queries in order.
func Queries() []QuerySpec {
	return []QuerySpec{
		{"Q1", Q1}, {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5},
		{"Q6", Q6}, {"Q7", Q7}, {"Q8", Q8}, {"Q9", Q9}, {"Q10", Q10},
		{"Q11", Q11}, {"Q12", Q12}, {"Q13", Q13}, {"Q14", Q14}, {"Q15", Q15},
		{"Q16", Q16}, {"Q17", Q17}, {"Q18", Q18}, {"Q19", Q19}, {"Q20", Q20},
		{"Q21", Q21}, {"Q22", Q22},
	}
}

func leaf(col int, op vector.CmpOp, v types.Value) exec.Node { return exec.NewLeaf(col, op, v) }
func iv(i int64) types.Value                                 { return types.NewInt(i) }
func fv(f float64) types.Value                               { return types.NewFloat(f) }
func sv(s string) types.Value                                { return types.NewString(s) }

func sortAndKey(rows []types.Row, keys []exec.SortKey) []types.Row {
	exec.SortRows(rows, keys)
	return rows
}

// Q1: pricing summary report.
func Q1(e Engine) ([]types.Row, error) {
	cutoff := Date(1998, 12, 1) - 90
	rows, err := e.Aggregate(TLineItem,
		leaf(LShipDate, vector.Le, iv(cutoff)),
		[]int{LReturnFlag, LLineStatus},
		[]exec.AggSpec{
			{Func: exec.Sum, Col: LQuantity},
			{Func: exec.Sum, Col: LExtendedPrice},
			{Func: exec.Sum, ExprCols: []int{LExtendedPrice, LDiscount}, Expr: func(r types.Row) types.Value {
				return fv(r[LExtendedPrice].F * (1 - r[LDiscount].F))
			}},
			{Func: exec.Sum, ExprCols: []int{LExtendedPrice, LDiscount, LTax}, Expr: func(r types.Row) types.Value {
				return fv(r[LExtendedPrice].F * (1 - r[LDiscount].F) * (1 + r[LTax].F))
			}},
			{Func: exec.Avg, Col: LQuantity},
			{Func: exec.Avg, Col: LExtendedPrice},
			{Func: exec.Avg, Col: LDiscount},
			{Func: exec.Count, Col: -1},
		})
	if err != nil {
		return nil, err
	}
	return sortAndKey(rows, []exec.SortKey{{Col: 0}, {Col: 1}}), nil
}

// Q2: minimum cost supplier for brass parts of size 15 in EUROPE.
func Q2(e Engine) ([]types.Row, error) {
	suppNation, err := suppliersInRegion(e, "EUROPE")
	if err != nil {
		return nil, err
	}
	// Parts: size 15, type ending in BRASS.
	var parts []types.Row
	err = e.Scan(TPart, leaf(PSize, vector.Eq, iv(15)), []int{PPartKey, PType}, func(r types.Row) bool {
		if strings.HasSuffix(r[PType].S, "BRASS") {
			parts = append(parts, r.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	// Join partsupp, keeping only European suppliers; find min cost per part.
	type best struct {
		cost float64
		supp int64
	}
	minCost := map[int64]best{}
	err = e.Join(parts, []int{PPartKey}, TPartSupp, []int{PSPartKey}, nil, func(p, ps types.Row) bool {
		suppKey := ps[PSSuppKey].I
		if _, ok := suppNation[suppKey]; !ok {
			return true
		}
		cost := ps[PSSupplyCost].F
		if b, ok := minCost[p[PPartKey].I]; !ok || cost < b.cost {
			minCost[p[PPartKey].I] = best{cost: cost, supp: suppKey}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(minCost))
	for partKey, b := range minCost {
		out = append(out, types.Row{iv(partKey), iv(b.supp), fv(b.cost)})
	}
	return exec.Limit(sortAndKey(out, []exec.SortKey{{Col: 2}, {Col: 0}}), 100), nil
}

// suppliersInRegion maps suppkey -> nation name for suppliers in a region.
func suppliersInRegion(e Engine, region string) (map[int64]string, error) {
	nations, err := nationsInRegion(e, region)
	if err != nil {
		return nil, err
	}
	out := map[int64]string{}
	err = e.Scan(TSupplier, nil, []int{SSuppKey, SNationKey}, func(r types.Row) bool {
		if name, ok := nations[r[SNationKey].I]; ok {
			out[r[SSuppKey].I] = name
		}
		return true
	})
	return out, err
}

// nationsInRegion maps nationkey -> nation name within a region.
func nationsInRegion(e Engine, region string) (map[int64]string, error) {
	var regionKey int64 = -1
	err := e.Scan(TRegion, leaf(RName, vector.Eq, sv(region)), []int{RRegionKey}, func(r types.Row) bool {
		regionKey = r[RRegionKey].I
		return false
	})
	if err != nil {
		return nil, err
	}
	out := map[int64]string{}
	err = e.Scan(TNation, leaf(NRegionKey, vector.Eq, iv(regionKey)), []int{NNationKey, NName}, func(r types.Row) bool {
		out[r[NNationKey].I] = r[NName].S
		return true
	})
	return out, err
}

// nationKeyOf returns the key for a nation name.
func nationKeyOf(e Engine, name string) (int64, error) {
	var key int64 = -1
	err := e.Scan(TNation, leaf(NName, vector.Eq, sv(name)), []int{NNationKey}, func(r types.Row) bool {
		key = r[NNationKey].I
		return false
	})
	if key < 0 && err == nil {
		err = fmt.Errorf("tpch: nation %s not found", name)
	}
	return key, err
}

// Q3: shipping priority — top 10 unshipped orders by revenue.
func Q3(e Engine) ([]types.Row, error) {
	cutoff := Date(1995, 3, 15)
	var buildCust []types.Row
	err := e.Scan(TCustomer, leaf(CMktSegment, vector.Eq, sv("BUILDING")), []int{CCustKey}, func(r types.Row) bool {
		buildCust = append(buildCust, r.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	type oinfo struct {
		date, ship int64
	}
	orders := map[int64]oinfo{}
	err = e.Join(buildCust, []int{CCustKey}, TOrders, []int{OCustKey},
		leaf(OOrderDate, vector.Lt, iv(cutoff)),
		func(c, o types.Row) bool {
			orders[o[OOrderKey].I] = oinfo{date: o[OOrderDate].I, ship: o[OShipPriority].I}
			return true
		})
	if err != nil {
		return nil, err
	}
	revenue := map[int64]float64{}
	err = e.Scan(TLineItem, leaf(LShipDate, vector.Gt, iv(cutoff)), []int{LOrderKey, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		if _, ok := orders[r[LOrderKey].I]; ok {
			revenue[r[LOrderKey].I] += r[LExtendedPrice].F * (1 - r[LDiscount].F)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(revenue))
	for ok, rev := range revenue {
		info := orders[ok]
		out = append(out, types.Row{iv(ok), fv(rev), iv(info.date), iv(info.ship)})
	}
	return exec.Limit(sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 2}}), 10), nil
}

// Q4: order priority checking.
func Q4(e Engine) ([]types.Row, error) {
	lo, hi := Date(1993, 7, 1), Date(1993, 10, 1)
	late := map[int64]bool{}
	err := e.Scan(TLineItem, nil, []int{LOrderKey, LCommitDate, LReceiptDate}, func(r types.Row) bool {
		if r[LCommitDate].I < r[LReceiptDate].I {
			late[r[LOrderKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{}
	err = e.Scan(TOrders, exec.NewAnd(
		leaf(OOrderDate, vector.Ge, iv(lo)),
		leaf(OOrderDate, vector.Lt, iv(hi)),
	), []int{OOrderKey, OOrderPriority}, func(r types.Row) bool {
		if late[r[OOrderKey].I] {
			counts[r[OOrderPriority].S]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(counts))
	for p, n := range counts {
		out = append(out, types.Row{sv(p), iv(n)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q5: local supplier volume in ASIA for 1994.
func Q5(e Engine) ([]types.Row, error) {
	nations, err := nationsInRegion(e, "ASIA")
	if err != nil {
		return nil, err
	}
	suppNation := map[int64]int64{}
	err = e.Scan(TSupplier, nil, []int{SSuppKey, SNationKey}, func(r types.Row) bool {
		if _, ok := nations[r[SNationKey].I]; ok {
			suppNation[r[SSuppKey].I] = r[SNationKey].I
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	custNation := map[int64]int64{}
	err = e.Scan(TCustomer, nil, []int{CCustKey, CNationKey}, func(r types.Row) bool {
		if _, ok := nations[r[CNationKey].I]; ok {
			custNation[r[CCustKey].I] = r[CNationKey].I
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	orderNation := map[int64]int64{} // orderkey -> customer nation
	err = e.Scan(TOrders, exec.NewAnd(
		leaf(OOrderDate, vector.Ge, iv(lo)),
		leaf(OOrderDate, vector.Lt, iv(hi)),
	), []int{OOrderKey, OCustKey}, func(r types.Row) bool {
		if n, ok := custNation[r[OCustKey].I]; ok {
			orderNation[r[OOrderKey].I] = n
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	revenue := map[int64]float64{}
	err = e.Scan(TLineItem, nil, []int{LOrderKey, LSuppKey, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		cn, ok := orderNation[r[LOrderKey].I]
		if !ok {
			return true
		}
		sn, ok := suppNation[r[LSuppKey].I]
		if !ok || sn != cn {
			return true // local supplier condition
		}
		revenue[cn] += r[LExtendedPrice].F * (1 - r[LDiscount].F)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(revenue))
	for nk, rev := range revenue {
		out = append(out, types.Row{sv(nations[nk]), fv(rev)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}}), nil
}

// Q6: revenue change from discount bands.
func Q6(e Engine) ([]types.Row, error) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	return e.Aggregate(TLineItem, exec.NewAnd(
		leaf(LShipDate, vector.Ge, iv(lo)),
		leaf(LShipDate, vector.Lt, iv(hi)),
		leaf(LDiscount, vector.Ge, fv(0.05)),
		leaf(LDiscount, vector.Le, fv(0.07)),
		leaf(LQuantity, vector.Lt, fv(24)),
	), nil, []exec.AggSpec{
		{Func: exec.Sum, ExprCols: []int{LExtendedPrice, LDiscount}, Expr: func(r types.Row) types.Value {
			return fv(r[LExtendedPrice].F * r[LDiscount].F)
		}},
	})
}

// Q7: volume shipping between FRANCE and GERMANY by year.
func Q7(e Engine) ([]types.Row, error) {
	fr, err := nationKeyOf(e, "FRANCE")
	if err != nil {
		return nil, err
	}
	de, err := nationKeyOf(e, "GERMANY")
	if err != nil {
		return nil, err
	}
	suppNation := map[int64]int64{}
	err = e.Scan(TSupplier, nil, []int{SSuppKey, SNationKey}, func(r types.Row) bool {
		if k := r[SNationKey].I; k == fr || k == de {
			suppNation[r[SSuppKey].I] = k
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	custNation := map[int64]int64{}
	err = e.Scan(TCustomer, nil, []int{CCustKey, CNationKey}, func(r types.Row) bool {
		if k := r[CNationKey].I; k == fr || k == de {
			custNation[r[CCustKey].I] = k
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	orderCustNation := map[int64]int64{}
	err = e.Scan(TOrders, nil, []int{OOrderKey, OCustKey}, func(r types.Row) bool {
		if k, ok := custNation[r[OCustKey].I]; ok {
			orderCustNation[r[OOrderKey].I] = k
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1995, 1, 1), Date(1996, 12, 31)
	vol := map[string]float64{}
	err = e.Scan(TLineItem, exec.NewAnd(
		leaf(LShipDate, vector.Ge, iv(lo)),
		leaf(LShipDate, vector.Le, iv(hi)),
	), []int{LOrderKey, LSuppKey, LShipDate, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		sn, ok := suppNation[r[LSuppKey].I]
		if !ok {
			return true
		}
		cn, ok := orderCustNation[r[LOrderKey].I]
		if !ok || sn == cn {
			return true
		}
		year := 1970 + r[LShipDate].I/365
		key := fmt.Sprintf("%d|%d|%d", sn, cn, year)
		vol[key] += r[LExtendedPrice].F * (1 - r[LDiscount].F)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(vol))
	for k, v := range vol {
		out = append(out, types.Row{sv(k), fv(v)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q8: national market share of BRAZIL in AMERICA for STANDARD parts.
func Q8(e Engine) ([]types.Row, error) {
	nations, err := nationsInRegion(e, "AMERICA")
	if err != nil {
		return nil, err
	}
	br, err := nationKeyOf(e, "BRAZIL")
	if err != nil {
		return nil, err
	}
	stdParts := map[int64]bool{}
	err = e.Scan(TPart, nil, []int{PPartKey, PType}, func(r types.Row) bool {
		if strings.HasPrefix(r[PType].S, "STANDARD") {
			stdParts[r[PPartKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	suppNation := map[int64]int64{}
	err = e.Scan(TSupplier, nil, []int{SSuppKey, SNationKey}, func(r types.Row) bool {
		suppNation[r[SSuppKey].I] = r[SNationKey].I
		return true
	})
	if err != nil {
		return nil, err
	}
	amCust := map[int64]bool{}
	err = e.Scan(TCustomer, nil, []int{CCustKey, CNationKey}, func(r types.Row) bool {
		if _, ok := nations[r[CNationKey].I]; ok {
			amCust[r[CCustKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1995, 1, 1), Date(1996, 12, 31)
	orderYear := map[int64]int64{}
	err = e.Scan(TOrders, exec.NewAnd(
		leaf(OOrderDate, vector.Ge, iv(lo)),
		leaf(OOrderDate, vector.Le, iv(hi)),
	), []int{OOrderKey, OCustKey, OOrderDate}, func(r types.Row) bool {
		if amCust[r[OCustKey].I] {
			orderYear[r[OOrderKey].I] = 1970 + r[OOrderDate].I/365
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	type share struct{ total, brazil float64 }
	byYear := map[int64]*share{}
	err = e.Scan(TLineItem, nil, []int{LOrderKey, LPartKey, LSuppKey, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		year, ok := orderYear[r[LOrderKey].I]
		if !ok || !stdParts[r[LPartKey].I] {
			return true
		}
		s := byYear[year]
		if s == nil {
			s = &share{}
			byYear[year] = s
		}
		v := r[LExtendedPrice].F * (1 - r[LDiscount].F)
		s.total += v
		if suppNation[r[LSuppKey].I] == br {
			s.brazil += v
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(byYear))
	for y, s := range byYear {
		frac := 0.0
		if s.total > 0 {
			frac = s.brazil / s.total
		}
		out = append(out, types.Row{iv(y), fv(frac)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q9: product type profit by nation and year for "green" parts.
func Q9(e Engine) ([]types.Row, error) {
	greenParts := map[int64]bool{}
	err := e.Scan(TPart, nil, []int{PPartKey, PName}, func(r types.Row) bool {
		if strings.Contains(r[PName].S, "green") {
			greenParts[r[PPartKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	suppNation := map[int64]int64{}
	err = e.Scan(TSupplier, nil, nil, func(r types.Row) bool {
		suppNation[r[SSuppKey].I] = r[SNationKey].I
		return true
	})
	if err != nil {
		return nil, err
	}
	nationName := map[int64]string{}
	err = e.Scan(TNation, nil, []int{NNationKey, NName}, func(r types.Row) bool {
		nationName[r[NNationKey].I] = r[NName].S
		return true
	})
	if err != nil {
		return nil, err
	}
	supplyCost := map[[2]int64]float64{}
	err = e.Scan(TPartSupp, nil, []int{PSPartKey, PSSuppKey, PSSupplyCost}, func(r types.Row) bool {
		if greenParts[r[PSPartKey].I] {
			supplyCost[[2]int64{r[PSPartKey].I, r[PSSuppKey].I}] = r[PSSupplyCost].F
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	orderYear := map[int64]int64{}
	err = e.Scan(TOrders, nil, []int{OOrderKey, OOrderDate}, func(r types.Row) bool {
		orderYear[r[OOrderKey].I] = 1970 + r[OOrderDate].I/365
		return true
	})
	if err != nil {
		return nil, err
	}
	profit := map[string]float64{}
	err = e.Scan(TLineItem, nil, []int{LOrderKey, LPartKey, LSuppKey, LQuantity, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		if !greenParts[r[LPartKey].I] {
			return true
		}
		cost, ok := supplyCost[[2]int64{r[LPartKey].I, r[LSuppKey].I}]
		if !ok {
			cost = 0
		}
		nation := nationName[suppNation[r[LSuppKey].I]]
		year := orderYear[r[LOrderKey].I]
		amount := r[LExtendedPrice].F*(1-r[LDiscount].F) - cost*r[LQuantity].F
		profit[fmt.Sprintf("%s|%d", nation, year)] += amount
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(profit))
	for k, v := range profit {
		out = append(out, types.Row{sv(k), fv(v)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q10: returned item reporting — top 20 customers by lost revenue.
func Q10(e Engine) ([]types.Row, error) {
	lo, hi := Date(1993, 10, 1), Date(1994, 1, 1)
	orderCust := map[int64]int64{}
	err := e.Scan(TOrders, exec.NewAnd(
		leaf(OOrderDate, vector.Ge, iv(lo)),
		leaf(OOrderDate, vector.Lt, iv(hi)),
	), []int{OOrderKey, OCustKey}, func(r types.Row) bool {
		orderCust[r[OOrderKey].I] = r[OCustKey].I
		return true
	})
	if err != nil {
		return nil, err
	}
	revenue := map[int64]float64{}
	err = e.Scan(TLineItem, leaf(LReturnFlag, vector.Eq, sv("R")), []int{LOrderKey, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		if c, ok := orderCust[r[LOrderKey].I]; ok {
			revenue[c] += r[LExtendedPrice].F * (1 - r[LDiscount].F)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(revenue))
	for c, rev := range revenue {
		out = append(out, types.Row{iv(c), fv(rev)})
	}
	return exec.Limit(sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 0}}), 20), nil
}

// Q11: important stock identification in GERMANY.
func Q11(e Engine) ([]types.Row, error) {
	de, err := nationKeyOf(e, "GERMANY")
	if err != nil {
		return nil, err
	}
	deSupp := map[int64]bool{}
	err = e.Scan(TSupplier, leaf(SNationKey, vector.Eq, iv(de)), []int{SSuppKey}, func(r types.Row) bool {
		deSupp[r[SSuppKey].I] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	value := map[int64]float64{}
	var total float64
	err = e.Scan(TPartSupp, nil, []int{PSPartKey, PSSuppKey, PSAvailQty, PSSupplyCost}, func(r types.Row) bool {
		if !deSupp[r[PSSuppKey].I] {
			return true
		}
		v := r[PSSupplyCost].F * float64(r[PSAvailQty].I)
		value[r[PSPartKey].I] += v
		total += v
		return true
	})
	if err != nil {
		return nil, err
	}
	cutoff := total * 0.0001
	var out []types.Row
	for p, v := range value {
		if v > cutoff {
			out = append(out, types.Row{iv(p), fv(v)})
		}
	}
	return sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 0}}), nil
}

// Q12: shipping modes and order priority.
func Q12(e Engine) ([]types.Row, error) {
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	type counts struct{ high, low int64 }
	orderPrio := map[int64]string{}
	err := e.Scan(TOrders, nil, []int{OOrderKey, OOrderPriority}, func(r types.Row) bool {
		orderPrio[r[OOrderKey].I] = r[OOrderPriority].S
		return true
	})
	if err != nil {
		return nil, err
	}
	byMode := map[string]*counts{}
	err = e.Scan(TLineItem, exec.NewAnd(
		exec.NewIn(LShipMode, []types.Value{sv("MAIL"), sv("SHIP")}),
		leaf(LReceiptDate, vector.Ge, iv(lo)),
		leaf(LReceiptDate, vector.Lt, iv(hi)),
	), []int{LOrderKey, LShipMode, LShipDate, LCommitDate, LReceiptDate}, func(r types.Row) bool {
		if !(r[LCommitDate].I < r[LReceiptDate].I && r[LShipDate].I < r[LCommitDate].I) {
			return true
		}
		c := byMode[r[LShipMode].S]
		if c == nil {
			c = &counts{}
			byMode[r[LShipMode].S] = c
		}
		switch orderPrio[r[LOrderKey].I] {
		case "1-URGENT", "2-HIGH":
			c.high++
		default:
			c.low++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(byMode))
	for m, c := range byMode {
		out = append(out, types.Row{sv(m), iv(c.high), iv(c.low)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q13: customer order-count distribution.
func Q13(e Engine) ([]types.Row, error) {
	perCust := map[int64]int64{}
	err := e.Scan(TOrders, nil, []int{OCustKey, OComment}, func(r types.Row) bool {
		if !strings.Contains(r[OComment].S, "special") {
			perCust[r[OCustKey].I]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var nCust int64
	hist := map[int64]int64{}
	err = e.Scan(TCustomer, nil, []int{CCustKey}, func(r types.Row) bool {
		nCust++
		hist[perCust[r[CCustKey].I]]++
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(hist))
	for c, n := range hist {
		out = append(out, types.Row{iv(c), iv(n)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 0, Desc: true}}), nil
}

// Q14: promotion effect in 1995-09.
func Q14(e Engine) ([]types.Row, error) {
	lo, hi := Date(1995, 9, 1), Date(1995, 10, 1)
	promo := map[int64]bool{}
	err := e.Scan(TPart, nil, []int{PPartKey, PType}, func(r types.Row) bool {
		if strings.HasPrefix(r[PType].S, "PROMO") {
			promo[r[PPartKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var promoRev, totalRev float64
	err = e.Scan(TLineItem, exec.NewAnd(
		leaf(LShipDate, vector.Ge, iv(lo)),
		leaf(LShipDate, vector.Lt, iv(hi)),
	), []int{LPartKey, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		v := r[LExtendedPrice].F * (1 - r[LDiscount].F)
		totalRev += v
		if promo[r[LPartKey].I] {
			promoRev += v
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	frac := 0.0
	if totalRev > 0 {
		frac = 100 * promoRev / totalRev
	}
	return []types.Row{{fv(frac)}}, nil
}

// Q15: top supplier by quarterly revenue.
func Q15(e Engine) ([]types.Row, error) {
	lo, hi := Date(1996, 1, 1), Date(1996, 4, 1)
	rows, err := e.Aggregate(TLineItem, exec.NewAnd(
		leaf(LShipDate, vector.Ge, iv(lo)),
		leaf(LShipDate, vector.Lt, iv(hi)),
	), []int{LSuppKey}, []exec.AggSpec{
		{Func: exec.Sum, ExprCols: []int{LExtendedPrice, LDiscount}, Expr: func(r types.Row) types.Value {
			return fv(r[LExtendedPrice].F * (1 - r[LDiscount].F))
		}},
	})
	if err != nil {
		return nil, err
	}
	var best float64
	for _, r := range rows {
		if r[1].F > best {
			best = r[1].F
		}
	}
	var out []types.Row
	for _, r := range rows {
		if r[1].F >= best-1e-9 {
			out = append(out, types.Row{r[0], r[1]})
		}
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}

// Q16: parts/supplier relationship.
func Q16(e Engine) ([]types.Row, error) {
	complain := map[int64]bool{}
	err := e.Scan(TSupplier, nil, []int{SSuppKey, SSuppComent}, func(r types.Row) bool {
		if strings.Contains(r[SSuppComent].S, "Customer Complaints") {
			complain[r[SSuppKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sizes := map[int64]bool{3: true, 9: true, 14: true, 19: true, 23: true, 36: true, 45: true, 49: true}
	partGroup := map[int64]string{}
	err = e.Scan(TPart, nil, []int{PPartKey, PBrand, PType, PSize}, func(r types.Row) bool {
		if r[PBrand].S == "Brand#45" || strings.HasPrefix(r[PType].S, "MEDIUM POLISHED") || !sizes[r[PSize].I] {
			return true
		}
		partGroup[r[PPartKey].I] = fmt.Sprintf("%s|%s|%d", r[PBrand].S, r[PType].S, r[PSize].I)
		return true
	})
	if err != nil {
		return nil, err
	}
	suppSet := map[string]map[int64]bool{}
	err = e.Scan(TPartSupp, nil, []int{PSPartKey, PSSuppKey}, func(r types.Row) bool {
		g, ok := partGroup[r[PSPartKey].I]
		if !ok || complain[r[PSSuppKey].I] {
			return true
		}
		set := suppSet[g]
		if set == nil {
			set = map[int64]bool{}
			suppSet[g] = set
		}
		set[r[PSSuppKey].I] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(suppSet))
	for g, set := range suppSet {
		out = append(out, types.Row{sv(g), iv(int64(len(set)))})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 0}}), nil
}

// Q17: small-quantity-order revenue for Brand#23 MED BOX parts.
func Q17(e Engine) ([]types.Row, error) {
	target := map[int64]bool{}
	err := e.Scan(TPart, leaf(PBrand, vector.Eq, sv("Brand#23")), []int{PPartKey, PContainer}, func(r types.Row) bool {
		if r[PContainer].S == "MED BOX" {
			target[r[PPartKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	type qstat struct {
		sum float64
		n   int64
	}
	stats := map[int64]*qstat{}
	err = e.Scan(TLineItem, nil, []int{LPartKey, LQuantity}, func(r types.Row) bool {
		if target[r[LPartKey].I] {
			s := stats[r[LPartKey].I]
			if s == nil {
				s = &qstat{}
				stats[r[LPartKey].I] = s
			}
			s.sum += r[LQuantity].F
			s.n++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var total float64
	err = e.Scan(TLineItem, nil, []int{LPartKey, LQuantity, LExtendedPrice}, func(r types.Row) bool {
		s, ok := stats[r[LPartKey].I]
		if !ok {
			return true
		}
		if r[LQuantity].F < 0.2*s.sum/float64(s.n) {
			total += r[LExtendedPrice].F
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return []types.Row{{fv(total / 7)}}, nil
}

// Q18: large volume customers (quantity > 300).
func Q18(e Engine) ([]types.Row, error) {
	qty := map[int64]float64{}
	err := e.Scan(TLineItem, nil, []int{LOrderKey, LQuantity}, func(r types.Row) bool {
		qty[r[LOrderKey].I] += r[LQuantity].F
		return true
	})
	if err != nil {
		return nil, err
	}
	// Scaled threshold: the spec's 300 assumes 7 lines x 50 qty.
	const threshold = 250
	var out []types.Row
	err = e.Scan(TOrders, nil, []int{OOrderKey, OCustKey, OOrderDate, OTotalPrice}, func(r types.Row) bool {
		if q := qty[r[OOrderKey].I]; q > threshold {
			out = append(out, types.Row{iv(r[OCustKey].I), iv(r[OOrderKey].I), iv(r[OOrderDate].I), fv(r[OTotalPrice].F), fv(q)})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return exec.Limit(sortAndKey(out, []exec.SortKey{{Col: 3, Desc: true}, {Col: 2}}), 100), nil
}

// Q19: discounted revenue (disjunctive brand/container/quantity predicate).
func Q19(e Engine) ([]types.Row, error) {
	type band struct {
		brand      string
		containers map[string]bool
		qlo, qhi   float64
	}
	bands := []band{
		{"Brand#12", map[string]bool{"SM CASE": true, "SM BOX": true}, 1, 11},
		{"Brand#23", map[string]bool{"MED BAG": true, "MED BOX": true}, 10, 20},
		{"Brand#34", map[string]bool{"LG CASE": true, "LG BOX": true}, 20, 30},
	}
	partBand := map[int64]int{}
	err := e.Scan(TPart, nil, []int{PPartKey, PBrand, PContainer, PSize}, func(r types.Row) bool {
		for i, b := range bands {
			if r[PBrand].S == b.brand && b.containers[r[PContainer].S] && r[PSize].I >= 1 {
				partBand[r[PPartKey].I] = i
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var revenue float64
	err = e.Scan(TLineItem, exec.NewAnd(
		exec.NewIn(LShipMode, []types.Value{sv("AIR"), sv("REG AIR")}),
		leaf(LShipInstruct, vector.Eq, sv("DELIVER IN PERSON")),
	), []int{LPartKey, LQuantity, LExtendedPrice, LDiscount}, func(r types.Row) bool {
		bi, ok := partBand[r[LPartKey].I]
		if !ok {
			return true
		}
		b := bands[bi]
		if r[LQuantity].F >= b.qlo && r[LQuantity].F <= b.qhi {
			revenue += r[LExtendedPrice].F * (1 - r[LDiscount].F)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return []types.Row{{fv(revenue)}}, nil
}

// Q20: potential part promotion (CANADA, forest parts, 1994).
func Q20(e Engine) ([]types.Row, error) {
	ca, err := nationKeyOf(e, "CANADA")
	if err != nil {
		return nil, err
	}
	// "forest" parts stand in for the spec's p_name like 'forest%'; our
	// generator uses color words, so take parts whose name starts with the
	// first generated word.
	targetParts := map[int64]bool{}
	err = e.Scan(TPart, nil, []int{PPartKey, PName}, func(r types.Row) bool {
		if strings.HasPrefix(r[PName].S, "almond") {
			targetParts[r[PPartKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	shipped := map[[2]int64]float64{}
	err = e.Scan(TLineItem, exec.NewAnd(
		leaf(LShipDate, vector.Ge, iv(lo)),
		leaf(LShipDate, vector.Lt, iv(hi)),
	), []int{LPartKey, LSuppKey, LQuantity}, func(r types.Row) bool {
		if targetParts[r[LPartKey].I] {
			shipped[[2]int64{r[LPartKey].I, r[LSuppKey].I}] += r[LQuantity].F
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	goodSupp := map[int64]bool{}
	err = e.Scan(TPartSupp, nil, []int{PSPartKey, PSSuppKey, PSAvailQty}, func(r types.Row) bool {
		if !targetParts[r[PSPartKey].I] {
			return true
		}
		if float64(r[PSAvailQty].I) > 0.5*shipped[[2]int64{r[PSPartKey].I, r[PSSuppKey].I}] {
			goodSupp[r[PSSuppKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []types.Row
	err = e.Scan(TSupplier, leaf(SNationKey, vector.Eq, iv(ca)), []int{SSuppKey, SName}, func(r types.Row) bool {
		if goodSupp[r[SSuppKey].I] {
			out = append(out, types.Row{iv(r[SSuppKey].I), sv(r[SName].S)})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return sortAndKey(out, []exec.SortKey{{Col: 1}}), nil
}

// Q21: suppliers who kept orders waiting (SAUDI ARABIA).
func Q21(e Engine) ([]types.Row, error) {
	sa, err := nationKeyOf(e, "SAUDI ARABIA")
	if err != nil {
		return nil, err
	}
	saSupp := map[int64]bool{}
	err = e.Scan(TSupplier, leaf(SNationKey, vector.Eq, iv(sa)), []int{SSuppKey}, func(r types.Row) bool {
		saSupp[r[SSuppKey].I] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	fOrders := map[int64]bool{}
	err = e.Scan(TOrders, leaf(OOrderStatus, vector.Eq, sv("F")), []int{OOrderKey}, func(r types.Row) bool {
		fOrders[r[OOrderKey].I] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	type oinfo struct {
		suppliers     map[int64]bool
		lateSuppliers map[int64]bool
	}
	orders := map[int64]*oinfo{}
	err = e.Scan(TLineItem, nil, []int{LOrderKey, LSuppKey, LCommitDate, LReceiptDate}, func(r types.Row) bool {
		ok := fOrders[r[LOrderKey].I]
		if !ok {
			return true
		}
		info := orders[r[LOrderKey].I]
		if info == nil {
			info = &oinfo{suppliers: map[int64]bool{}, lateSuppliers: map[int64]bool{}}
			orders[r[LOrderKey].I] = info
		}
		info.suppliers[r[LSuppKey].I] = true
		if r[LReceiptDate].I > r[LCommitDate].I {
			info.lateSuppliers[r[LSuppKey].I] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	waiting := map[int64]int64{}
	for _, info := range orders {
		if len(info.suppliers) < 2 || len(info.lateSuppliers) != 1 {
			continue
		}
		for s := range info.lateSuppliers {
			if saSupp[s] {
				waiting[s]++
			}
		}
	}
	out := make([]types.Row, 0, len(waiting))
	for s, n := range waiting {
		out = append(out, types.Row{iv(s), iv(n)})
	}
	return exec.Limit(sortAndKey(out, []exec.SortKey{{Col: 1, Desc: true}, {Col: 0}}), 100), nil
}

// Q22: global sales opportunity by phone country code.
func Q22(e Engine) ([]types.Row, error) {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	// Average positive balance of candidates.
	var sum float64
	var n int64
	err := e.Scan(TCustomer, leaf(CAcctBal, vector.Gt, fv(0)), []int{CPhone, CAcctBal}, func(r types.Row) bool {
		if codes[r[CPhone].S[:2]] {
			sum += r[CAcctBal].F
			n++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	avg := sum / float64(n)
	hasOrder := map[int64]bool{}
	err = e.Scan(TOrders, nil, []int{OCustKey}, func(r types.Row) bool {
		hasOrder[r[OCustKey].I] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	type agg struct {
		n   int64
		bal float64
	}
	byCode := map[string]*agg{}
	err = e.Scan(TCustomer, leaf(CAcctBal, vector.Gt, fv(avg)), []int{CCustKey, CPhone, CAcctBal}, func(r types.Row) bool {
		code := r[CPhone].S[:2]
		if !codes[code] || hasOrder[r[CCustKey].I] {
			return true
		}
		a := byCode[code]
		if a == nil {
			a = &agg{}
			byCode[code] = a
		}
		a.n++
		a.bal += r[CAcctBal].F
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(byCode))
	for c, a := range byCode {
		out = append(out, types.Row{sv(c), iv(a.n), fv(a.bal)})
	}
	return sortAndKey(out, []exec.SortKey{{Col: 0}}), nil
}
