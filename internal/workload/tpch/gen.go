package tpch

import (
	"fmt"
	"math/rand"

	"s2db/internal/types"
)

// Cardinalities at scale factor 1 (scaled linearly).
const (
	suppliersPerSF = 10000
	customersPerSF = 150000
	partsPerSF     = 200000
	ordersPerSF    = 1500000
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP CASE"}
	typeSyll1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyll2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyll3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameWords  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse", "chiffon", "chocolate", "coral", "cornflower"}
)

var (
	startDate = Date(1992, 1, 1)
	endDate   = Date(1998, 12, 1)
)

// Sizes reports the table cardinalities for a scale factor.
func Sizes(sf float64) map[string]int {
	orders := int(float64(ordersPerSF) * sf)
	return map[string]int{
		TRegion:   len(regionNames),
		TNation:   len(nationNames),
		TSupplier: max(1, int(float64(suppliersPerSF)*sf)),
		TCustomer: max(1, int(float64(customersPerSF)*sf)),
		TPart:     max(1, int(float64(partsPerSF)*sf)),
		TPartSupp: max(1, int(float64(partsPerSF)*sf)) * 4,
		TOrders:   max(1, orders),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Loader receives generated rows table by table.
type Loader interface {
	CreateTables() error
	Load(table string, rows []types.Row) error
}

// Generate produces the dataset at the given scale factor deterministically
// from seed and feeds it to the loader in bulk batches.
func Generate(l Loader, sf float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sizes := Sizes(sf)
	if err := l.CreateTables(); err != nil {
		return err
	}
	// Region / nation.
	regions := make([]types.Row, len(regionNames))
	for i, n := range regionNames {
		regions[i] = types.Row{types.NewInt(int64(i)), types.NewString(n), types.NewString("region comment")}
	}
	if err := l.Load(TRegion, regions); err != nil {
		return err
	}
	nations := make([]types.Row, len(nationNames))
	for i, n := range nationNames {
		nations[i] = types.Row{
			types.NewInt(int64(i)), types.NewString(n),
			types.NewInt(int64(i % len(regionNames))), types.NewString("nation comment"),
		}
	}
	if err := l.Load(TNation, nations); err != nil {
		return err
	}
	// Supplier.
	nSupp := sizes[TSupplier]
	supp := make([]types.Row, nSupp)
	for i := range supp {
		supp[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
			types.NewString(randText(rng, 15)),
			types.NewInt(int64(rng.Intn(len(nationNames)))),
			types.NewString(phone(rng)),
			types.NewFloat(-999.99 + rng.Float64()*10998.98),
			types.NewString(supplierComment(rng, i)),
		}
	}
	if err := l.Load(TSupplier, supp); err != nil {
		return err
	}
	// Customer.
	nCust := sizes[TCustomer]
	cust := make([]types.Row, nCust)
	for i := range cust {
		cust[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			types.NewString(randText(rng, 15)),
			types.NewInt(int64(rng.Intn(len(nationNames)))),
			types.NewString(phone(rng)),
			types.NewFloat(-999.99 + rng.Float64()*10998.98),
			types.NewString(segments[rng.Intn(len(segments))]),
			types.NewString(randText(rng, 30)),
		}
	}
	if err := l.Load(TCustomer, cust); err != nil {
		return err
	}
	// Part.
	nPart := sizes[TPart]
	parts := make([]types.Row, nPart)
	for i := range parts {
		ptype := typeSyll1[rng.Intn(len(typeSyll1))] + " " + typeSyll2[rng.Intn(len(typeSyll2))] + " " + typeSyll3[rng.Intn(len(typeSyll3))]
		parts[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(nameWords[rng.Intn(len(nameWords))] + " " + nameWords[rng.Intn(len(nameWords))]),
			types.NewString(fmt.Sprintf("Manufacturer#%d", rng.Intn(5)+1)),
			types.NewString(fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)),
			types.NewString(ptype),
			types.NewInt(int64(rng.Intn(50) + 1)),
			types.NewString(containers[rng.Intn(len(containers))]),
			types.NewFloat(900 + float64(i%1000)/10),
			types.NewString(randText(rng, 14)),
		}
	}
	if err := l.Load(TPart, parts); err != nil {
		return err
	}
	// PartSupp: 4 suppliers per part.
	ps := make([]types.Row, 0, nPart*4)
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			ps = append(ps, types.Row{
				types.NewInt(int64(p)),
				types.NewInt(int64((p+s*(nSupp/4+1))%nSupp + 1)),
				types.NewInt(int64(rng.Intn(9999) + 1)),
				types.NewFloat(1 + rng.Float64()*999),
				types.NewString(randText(rng, 20)),
			})
		}
	}
	if err := l.Load(TPartSupp, ps); err != nil {
		return err
	}
	// Orders and lineitem.
	nOrders := sizes[TOrders]
	const batch = 4096
	orders := make([]types.Row, 0, batch)
	lines := make([]types.Row, 0, batch*4)
	for o := 1; o <= nOrders; o++ {
		custKey := int64(rng.Intn(nCust) + 1)
		oDate := startDate + int64(rng.Intn(int(endDate-startDate)))
		nLines := rng.Intn(7) + 1
		var total float64
		status := "O"
		allF := true
		for ln := 1; ln <= nLines; ln++ {
			partKey := int64(rng.Intn(nPart) + 1)
			suppKey := int64(rng.Intn(nSupp) + 1)
			qty := float64(rng.Intn(50) + 1)
			price := (90000 + float64(partKey%20000) + 100*float64(int(qty))) / 100
			ext := qty * price
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipDate := oDate + int64(rng.Intn(121)+1)
			commitDate := oDate + int64(rng.Intn(91)+30)
			receiptDate := shipDate + int64(rng.Intn(30)+1)
			rf := "N"
			ls := "O"
			if receiptDate <= Date(1995, 6, 17) {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
				ls = "F"
			} else {
				allF = false
			}
			total += ext * (1 + tax) * (1 - disc)
			lines = append(lines, types.Row{
				types.NewInt(int64(o)), types.NewInt(partKey), types.NewInt(suppKey), types.NewInt(int64(ln)),
				types.NewFloat(qty), types.NewFloat(ext), types.NewFloat(disc), types.NewFloat(tax),
				types.NewString(rf), types.NewString(ls),
				types.NewInt(shipDate), types.NewInt(commitDate), types.NewInt(receiptDate),
				types.NewString(instructs[rng.Intn(len(instructs))]),
				types.NewString(shipModes[rng.Intn(len(shipModes))]),
				types.NewString(randText(rng, 20)),
			})
		}
		if allF {
			status = "F"
		}
		orders = append(orders, types.Row{
			types.NewInt(int64(o)), types.NewInt(custKey), types.NewString(status),
			types.NewFloat(total), types.NewInt(oDate),
			types.NewString(priorities[rng.Intn(len(priorities))]),
			types.NewString(fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1)),
			types.NewInt(0), types.NewString(randText(rng, 19)),
		})
		if len(orders) >= batch || o == nOrders {
			if err := l.Load(TOrders, orders); err != nil {
				return err
			}
			if err := l.Load(TLineItem, lines); err != nil {
				return err
			}
			orders = orders[:0]
			lines = lines[:0]
		}
	}
	return nil
}

// supplierComment occasionally embeds the Q20-ish "Customer Complaints"
// marker used by Q16.
func supplierComment(rng *rand.Rand, i int) string {
	if i%50 == 0 {
		return "Customer Complaints " + randText(rng, 10)
	}
	return randText(rng, 25)
}

func phone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", rng.Intn(25)+10, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

func randText(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		if rng.Intn(6) == 0 {
			b[i] = ' '
		} else {
			b[i] = byte('a' + rng.Intn(26))
		}
	}
	return string(b)
}
