// Package chbench implements a CH-BenCHmark-derived mixed workload
// (Table 3 of the paper): transactional workers (TWs) run the TPC-C mix
// while analytical workers (AWs) run TPC-H-style queries over the same
// tables, optionally on an isolated read-only workspace (§3.2). Reported
// metrics are TpmC for the TWs and analytical queries-per-second for the
// AWs, plus replication lag for workspace configurations.
package chbench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
	"s2db/internal/workload/tpcc"
)

// AnalyticalQuery is one CH-style query over the TPC-C tables.
type AnalyticalQuery struct {
	Name string
	Run  func(views func(table string) ([]*core.View, error)) error
}

// Queries returns the analytical query set: aggregation, filtered
// aggregation, grouped revenue, carrier distribution and a join-flavored
// top-customers query — the access patterns of CH-BenCHmark's TPC-H side.
func Queries() []AnalyticalQuery {
	return []AnalyticalQuery{
		{"ch-q1-pricing", func(views viewsFn) error {
			vs, err := views(tpcc.TOrderLine)
			if err != nil {
				return err
			}
			exec.AggregateViews(vs, exec.NewLeaf(tpcc.OLDeliveryD, vector.Gt, types.NewInt(-1)),
				[]int{tpcc.OLNumber},
				[]exec.AggSpec{
					{Func: exec.Sum, Col: tpcc.OLQuantity},
					{Func: exec.Sum, Col: tpcc.OLAmount},
					{Func: exec.Avg, Col: tpcc.OLAmount},
					{Func: exec.Count, Col: -1},
				}, nil)
			return nil
		}},
		{"ch-q6-revenue-band", func(views viewsFn) error {
			vs, err := views(tpcc.TOrderLine)
			if err != nil {
				return err
			}
			exec.AggregateViews(vs, exec.NewAnd(
				exec.NewLeaf(tpcc.OLQuantity, vector.Ge, types.NewInt(1)),
				exec.NewLeaf(tpcc.OLQuantity, vector.Le, types.NewInt(8)),
				exec.NewLeaf(tpcc.OLAmount, vector.Gt, types.NewFloat(1)),
			), nil, []exec.AggSpec{{Func: exec.Sum, Col: tpcc.OLAmount}}, nil)
			return nil
		}},
		{"ch-q5-district-revenue", func(views viewsFn) error {
			vs, err := views(tpcc.TOrderLine)
			if err != nil {
				return err
			}
			exec.AggregateViews(vs, nil,
				[]int{tpcc.OLWID, tpcc.OLDID},
				[]exec.AggSpec{{Func: exec.Sum, Col: tpcc.OLAmount}, {Func: exec.Count, Col: -1}}, nil)
			return nil
		}},
		{"ch-q12-carriers", func(views viewsFn) error {
			vs, err := views(tpcc.TOrders)
			if err != nil {
				return err
			}
			exec.AggregateViews(vs, nil,
				[]int{tpcc.OCarrierID},
				[]exec.AggSpec{{Func: exec.Count, Col: -1}, {Func: exec.Avg, Col: tpcc.OOlCnt}}, nil)
			return nil
		}},
		{"ch-q18-big-customers", func(views viewsFn) error {
			ovs, err := views(tpcc.TOrders)
			if err != nil {
				return err
			}
			// Orders with many lines, joined to their customers' balances.
			var big []types.Row
			for _, v := range ovs {
				exec.NewScan(v, exec.NewLeaf(tpcc.OOlCnt, vector.Ge, types.NewInt(12))).Run(func(r types.Row) bool {
					big = append(big, r.Clone())
					return true
				})
			}
			cvs, err := views(tpcc.TCustomer)
			if err != nil {
				return err
			}
			matched := 0
			for _, v := range cvs {
				exec.EquiJoin(big, []int{tpcc.OCID}, v, []int{tpcc.CID}, nil,
					exec.JoinForceHash, nil, func(b, p types.Row) bool {
						if b[tpcc.OWID].I == p[tpcc.CWID].I && b[tpcc.ODID].I == p[tpcc.CDID].I {
							matched++
						}
						return true
					})
			}
			return nil
		}},
	}
}

type viewsFn = func(table string) ([]*core.View, error)

// Config describes one CH-BenCHmark test case (Table 3 rows).
type Config struct {
	Warehouses int
	// MaxProcs bounds scheduler parallelism for the run, standing in for
	// the test case's vCPU budget (the paper gives 16 vCPUs to the shared
	// cases and 32 to the isolated-workspace cases). 0 leaves it alone.
	MaxProcs int
	// TWs is the number of transactional workers (0 disables TPC-C).
	TWs int
	// AWs is the number of analytical workers (0 disables TPC-H).
	AWs int
	// UseWorkspace runs AWs on a read-only workspace (test cases 4-5).
	UseWorkspace bool
	Duration     time.Duration
	Seed         int64
}

// Result is one Table 3 row.
type Result struct {
	TpmC     float64
	QPS      float64
	TxnMix   tpcc.MixCounts
	Queries  int64
	MaxLagMs float64
	Err      error
}

// Run executes one test case against a loaded S2 backend.
func Run(b *tpcc.S2Backend, cfg Config) Result {
	if cfg.MaxProcs > 0 {
		prev := runtime.GOMAXPROCS(cfg.MaxProcs)
		defer runtime.GOMAXPROCS(prev)
	}
	var res Result
	views := func(table string) ([]*core.View, error) { return b.C.Views(table) }
	var ws *cluster.Workspace
	if cfg.UseWorkspace {
		var err error
		ws, err = b.C.CreateWorkspace(fmt.Sprintf("ch-aw-%d", time.Now().UnixNano()))
		if err != nil {
			res.Err = err
			return res
		}
		defer b.C.DetachWorkspace(ws.Name) //nolint:errcheck
		// Queries must not start against a half-provisioned workspace.
		if err := b.C.WaitCaughtUp(ws, 30*time.Second); err != nil {
			res.Err = err
			return res
		}
		views = func(table string) ([]*core.View, error) { return ws.Views(table) }
	}

	var stop atomic.Bool
	var queries atomic.Int64
	var lagSamples atomic.Int64
	var wg sync.WaitGroup
	var twRes tpcc.Result
	var twErr error

	// Analytical workers.
	qset := Queries()
	for aw := 0; aw < cfg.AWs; aw++ {
		wg.Add(1)
		go func(aw int) {
			defer wg.Done()
			i := aw
			for !stop.Load() {
				q := qset[i%len(qset)]
				if err := q.Run(views); err != nil {
					res.Err = err
					stop.Store(true)
					return
				}
				queries.Add(1)
				if ws != nil {
					if lag := int64(ws.Lag()); lag > lagSamples.Load() {
						lagSamples.Store(lag)
					}
				}
				i++
			}
		}(aw)
	}

	// Transactional workers (via the TPC-C driver).
	if cfg.TWs > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			twRes, twErr = tpcc.Run(b, tpcc.DriverConfig{
				Warehouses: cfg.Warehouses,
				Workers:    cfg.TWs,
				Duration:   cfg.Duration,
				Seed:       cfg.Seed,
			})
			stop.Store(true)
		}()
	} else {
		time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if twErr != nil && res.Err == nil {
		res.Err = twErr
	}
	res.TxnMix = twRes.Mix
	res.TpmC = twRes.TpmC
	res.Queries = queries.Load()
	res.QPS = float64(res.Queries) / elapsed.Seconds()
	res.MaxLagMs = float64(lagSamples.Load()) // pending records as a lag proxy
	return res
}
