package chbench

import (
	"testing"
	"time"

	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/workload/tpcc"

	"s2db/internal/blob"
)

func loadedBackend(t *testing.T, withBlob bool) *tpcc.S2Backend {
	t.Helper()
	cfg := cluster.Config{
		Partitions: 2,
		Table:      core.Config{MaxSegmentRows: 2048, FlushThreshold: 2048, Background: true},
	}
	if withBlob {
		cfg.Blob = blob.NewMemory()
		cfg.ChunkRecords = 64
		cfg.SnapshotEvery = 512
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	b := &tpcc.S2Backend{C: c}
	if err := tpcc.Load(b, 1, 11); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnalyticalQueriesRun(t *testing.T) {
	b := loadedBackend(t, false)
	views := func(table string) ([]*core.View, error) { return b.C.Views(table) }
	for _, q := range Queries() {
		if err := q.Run(views); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestMixedWorkloadSharedWorkspace(t *testing.T) {
	b := loadedBackend(t, false)
	res := Run(b, Config{Warehouses: 1, TWs: 2, AWs: 1, Duration: 300 * time.Millisecond, Seed: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TpmC <= 0 || res.Queries == 0 {
		t.Fatalf("TpmC=%f queries=%d", res.TpmC, res.Queries)
	}
}

func TestMixedWorkloadIsolatedWorkspace(t *testing.T) {
	b := loadedBackend(t, true)
	res := Run(b, Config{Warehouses: 1, TWs: 2, AWs: 1, UseWorkspace: true, Duration: 300 * time.Millisecond, Seed: 2})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TpmC <= 0 || res.Queries == 0 {
		t.Fatalf("TpmC=%f queries=%d", res.TpmC, res.Queries)
	}
}

func TestAnalyticsOnlyCase(t *testing.T) {
	b := loadedBackend(t, false)
	res := Run(b, Config{Warehouses: 1, TWs: 0, AWs: 2, Duration: 200 * time.Millisecond, Seed: 3})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.TpmC != 0 || res.QPS <= 0 {
		t.Fatalf("TpmC=%f QPS=%f", res.TpmC, res.QPS)
	}
}
