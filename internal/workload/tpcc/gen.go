package tpcc

import (
	"fmt"
	"math/rand"

	"s2db/internal/types"
)

// lastNames are the TPC-C syllables for C_LAST generation.
var lastSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds a TPC-C style customer last name from a number 0-999.
func LastName(n int) string {
	return lastSyllables[n/100%10] + lastSyllables[n/10%10] + lastSyllables[n%10]
}

// nuRand is the TPC-C non-uniform random function NURand(A, x, y).
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := 42 % (a + 1)
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// Load populates the backend with the initial database for the given
// number of warehouses, deterministically from seed.
func Load(b Backend, warehouses int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if err := b.CreateTables(); err != nil {
		return err
	}
	// Items.
	items := make([]types.Row, Items)
	for i := range items {
		items[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("item-%05d", i+1)),
			types.NewFloat(1 + rng.Float64()*99),
			types.NewString(randData(rng, 26)),
		}
	}
	if err := b.Load(TItem, items); err != nil {
		return err
	}
	for w := 1; w <= warehouses; w++ {
		if err := b.Load(TWarehouse, []types.Row{{
			types.NewInt(int64(w)),
			types.NewString(fmt.Sprintf("warehouse-%d", w)),
			types.NewFloat(rng.Float64() * 0.2),
			types.NewFloat(300000),
		}}); err != nil {
			return err
		}
		// Stock.
		stock := make([]types.Row, Items)
		for i := range stock {
			stock[i] = types.Row{
				types.NewInt(int64(w)),
				types.NewInt(int64(i + 1)),
				types.NewInt(int64(10 + rng.Intn(91))),
				types.NewInt(0),
				types.NewInt(0),
				types.NewInt(0),
				types.NewString(randData(rng, 30)),
			}
		}
		if err := b.Load(TStock, stock); err != nil {
			return err
		}
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			if err := b.Load(TDistrict, []types.Row{{
				types.NewInt(int64(w)), types.NewInt(int64(d)),
				types.NewString(fmt.Sprintf("district-%d-%d", w, d)),
				types.NewFloat(rng.Float64() * 0.2),
				types.NewFloat(30000),
				types.NewInt(int64(CustomersPerDistrict + 1)),
			}}); err != nil {
				return err
			}
			customers := make([]types.Row, CustomersPerDistrict)
			orders := make([]types.Row, CustomersPerDistrict)
			var orderLines []types.Row
			var newOrders []types.Row
			perm := rng.Perm(CustomersPerDistrict)
			for c := 1; c <= CustomersPerDistrict; c++ {
				customers[c-1] = types.Row{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(c)),
					types.NewString(LastName(lastNameFor(c, rng))),
					types.NewString(fmt.Sprintf("first-%d", c)),
					types.NewFloat(-10),
					types.NewFloat(10),
					types.NewInt(1),
					types.NewInt(0),
					types.NewString(randData(rng, 50)),
				}
				// One initial order per customer, customer ids permuted.
				oid := c
				cid := perm[c-1] + 1
				olCnt := 5 + rng.Intn(11)
				carrier := int64(rng.Intn(10) + 1)
				undelivered := oid > CustomersPerDistrict-30 // last 30 orders are new
				if undelivered {
					carrier = -1
					newOrders = append(newOrders, types.Row{
						types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(oid)),
					})
				}
				orders[oid-1] = types.Row{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(oid)),
					types.NewInt(int64(cid)),
					types.NewInt(int64(oid)), // entry date surrogate
					types.NewInt(carrier),
					types.NewInt(int64(olCnt)),
				}
				for ol := 1; ol <= olCnt; ol++ {
					deliveryD := int64(oid)
					amount := 0.0
					if undelivered {
						deliveryD = -1
						amount = 0.01 + rng.Float64()*9999.98
					}
					orderLines = append(orderLines, types.Row{
						types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(oid)),
						types.NewInt(int64(ol)),
						types.NewInt(int64(rng.Intn(Items) + 1)),
						types.NewInt(int64(w)),
						types.NewInt(5),
						types.NewFloat(amount),
						types.NewInt(deliveryD),
					})
				}
			}
			if err := b.Load(TCustomer, customers); err != nil {
				return err
			}
			if err := b.Load(TOrders, orders); err != nil {
				return err
			}
			if err := b.Load(TOrderLine, orderLines); err != nil {
				return err
			}
			if err := b.Load(TNewOrder, newOrders); err != nil {
				return err
			}
			// History: one row per customer.
			history := make([]types.Row, CustomersPerDistrict)
			for c := 1; c <= CustomersPerDistrict; c++ {
				history[c-1] = types.Row{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(c)),
					types.NewFloat(10),
					types.NewString("initial"),
				}
			}
			if err := b.Load(THistory, history); err != nil {
				return err
			}
		}
	}
	return nil
}

// lastNameFor follows the spec: the first 1000 customers get NURand names.
func lastNameFor(c int, rng *rand.Rand) int {
	if c <= 1000 {
		return nuRand(rng, 255, 0, 999)
	}
	return rng.Intn(1000)
}

func randData(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
