package tpcc

import (
	"math/rand"
	"testing"
	"time"

	"s2db/internal/baseline"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/types"
)

func newS2Backend(t *testing.T, partitions int) *S2Backend {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Partitions: partitions,
		Table:      core.Config{MaxSegmentRows: 2048, FlushThreshold: 2048, Background: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &S2Backend{C: c}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %s", LastName(371))
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	b := newS2Backend(t, 2)
	if err := Load(b, 1, 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{
		TWarehouse: 1,
		TDistrict:  DistrictsPerWarehouse,
		TCustomer:  DistrictsPerWarehouse * CustomersPerDistrict,
		TOrders:    DistrictsPerWarehouse * CustomersPerDistrict,
		TItem:      Items,
		TStock:     Items,
		TNewOrder:  DistrictsPerWarehouse * 30,
	}
	for table, want := range counts {
		views, err := b.C.Views(table)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, v := range views {
			got += v.NumRows()
		}
		if got != want {
			t.Fatalf("%s: %d rows, want %d", table, got, want)
		}
	}
}

func runMix(t *testing.T, b Backend, warehouses int) Result {
	t.Helper()
	if err := Load(b, warehouses, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, DriverConfig{
		Warehouses: warehouses,
		Workers:    4,
		Duration:   400 * time.Millisecond,
		Seed:       2,
	})
	if err != nil {
		t.Fatalf("driver error: %v (mix %+v)", err, res.Mix)
	}
	if res.Mix.Errors != 0 {
		t.Fatalf("errors: %+v", res.Mix)
	}
	if res.Mix.NewOrder == 0 || res.Mix.Payment == 0 {
		t.Fatalf("mix did not run: %+v", res.Mix)
	}
	return res
}

func TestMixAgainstS2(t *testing.T) {
	b := newS2Backend(t, 2)
	res := runMix(t, b, 2)
	if res.TpmC <= 0 {
		t.Fatalf("TpmC = %f", res.TpmC)
	}
}

func TestMixAgainstRowDB(t *testing.T) {
	b := &RowDBBackend{DB: baseline.NewRowDB()}
	runMix(t, b, 2)
}

func TestNewOrderConsistency(t *testing.T) {
	// After N successful NewOrders on one warehouse/district set, the
	// district's next_o_id advances by exactly the number of orders created
	// there, and orders/order_line rows exist for each.
	b := newS2Backend(t, 1)
	if err := Load(b, 1, 3); err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, DriverConfig{Warehouses: 1, Workers: 1, MaxNewOrders: 30, Duration: 10 * time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		dRow, ok, err := b.Get(TDistrict, []types.Value{iv(1), iv(int64(d))})
		if err != nil || !ok {
			t.Fatal(err)
		}
		total += dRow[DNextOID].I - int64(CustomersPerDistrict+1)
	}
	// Every allocated order id corresponds to one completed or rolled-back
	// NewOrder.
	if want := res.Mix.NewOrder + res.Mix.Rollbacks; total != want {
		t.Fatalf("district counters advanced %d, driver ran %d new-orders", total, want)
	}
	// Orders inserted for every allocated id (rollbacks also insert, per
	// the simplified per-row commit model).
	var orderCount int64
	b.ScanEq(TOrders, []int{OWID}, []types.Value{iv(1)}, func(r types.Row) bool {
		if r[OOID].I > int64(CustomersPerDistrict) {
			orderCount++
		}
		return true
	})
	if orderCount != total {
		t.Fatalf("orders = %d, want %d", orderCount, total)
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	b := newS2Backend(t, 1)
	if err := Load(b, 1, 5); err != nil {
		t.Fatal(err)
	}
	// Count initial undelivered orders.
	countNew := func() int {
		n := 0
		b.ScanEq(TNewOrder, []int{NOWID}, []types.Value{iv(1)}, func(types.Row) bool { n++; return true })
		return n
	}
	before := countNew()
	if before != DistrictsPerWarehouse*30 {
		t.Fatalf("initial new orders = %d", before)
	}
	rng := newTestRng()
	if err := Delivery(b, rng, 1); err != nil {
		t.Fatal(err)
	}
	after := countNew()
	if after != before-DistrictsPerWarehouse {
		t.Fatalf("delivery removed %d, want %d", before-after, DistrictsPerWarehouse)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	b := newS2Backend(t, 1)
	if err := Load(b, 1, 6); err != nil {
		t.Fatal(err)
	}
	wBefore, _, _ := b.Get(TWarehouse, []types.Value{iv(1)})
	rng := newTestRng()
	for i := 0; i < 10; i++ {
		if err := Payment(b, rng, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	wAfter, _, _ := b.Get(TWarehouse, []types.Value{iv(1)})
	if wAfter[WYtd].F <= wBefore[WYtd].F {
		t.Fatal("warehouse YTD did not grow")
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(42)) }
