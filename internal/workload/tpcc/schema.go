// Package tpcc implements a TPC-C-derived OLTP workload: the nine tables,
// the five transaction profiles with the standard mix, a deterministic
// loader, and a multi-worker driver reporting tpmC. It drives the engines
// through a small Backend interface so the same workload runs against S2DB
// unified storage and the rowstore baseline (Table 1 and Figure 5 of the
// paper; the warehouse baseline cannot implement the interface, matching
// "CDW1 and CDW2 do not support running TPC-C").
package tpcc

import (
	"s2db/internal/types"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrders    = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Column ordinals per table (suffix comments give the TPC-C field).
const (
	WID   = 0 // W_ID
	WName = 1 // W_NAME
	WTax  = 2 // W_TAX
	WYtd  = 3 // W_YTD

	DWID     = 0 // D_W_ID
	DID      = 1 // D_ID
	DName    = 2 // D_NAME
	DTax     = 3 // D_TAX
	DYtd     = 4 // D_YTD
	DNextOID = 5 // D_NEXT_O_ID

	CWID        = 0 // C_W_ID
	CDID        = 1 // C_D_ID
	CID         = 2 // C_ID
	CLast       = 3 // C_LAST
	CFirst      = 4 // C_FIRST
	CBalance    = 5 // C_BALANCE
	CYtdPayment = 6 // C_YTD_PAYMENT
	CPaymentCnt = 7 // C_PAYMENT_CNT
	CDeliverCnt = 8 // C_DELIVERY_CNT
	CData       = 9 // C_DATA

	HWID    = 0 // H_W_ID
	HDID    = 1 // H_D_ID
	HCID    = 2 // H_C_ID
	HAmount = 3 // H_AMOUNT
	HData   = 4 // H_DATA

	NOWID = 0 // NO_W_ID
	NODID = 1 // NO_D_ID
	NOOID = 2 // NO_O_ID

	OWID       = 0 // O_W_ID
	ODID       = 1 // O_D_ID
	OOID       = 2 // O_ID
	OCID       = 3 // O_C_ID
	OEntryD    = 4 // O_ENTRY_D
	OCarrierID = 5 // O_CARRIER_ID (-1 = undelivered)
	OOlCnt     = 6 // O_OL_CNT

	OLWID       = 0 // OL_W_ID
	OLDID       = 1 // OL_D_ID
	OLOID       = 2 // OL_O_ID
	OLNumber    = 3 // OL_NUMBER
	OLIID       = 4 // OL_I_ID
	OLSupplyWID = 5 // OL_SUPPLY_W_ID
	OLQuantity  = 6 // OL_QUANTITY
	OLAmount    = 7 // OL_AMOUNT
	OLDeliveryD = 8 // OL_DELIVERY_D (-1 = undelivered)

	IID    = 0 // I_ID
	IName  = 1 // I_NAME
	IPrice = 2 // I_PRICE
	IData  = 3 // I_DATA

	SWID       = 0 // S_W_ID
	SIID       = 1 // S_I_ID
	SQuantity  = 2 // S_QUANTITY
	SYtd       = 3 // S_YTD
	SOrderCnt  = 4 // S_ORDER_CNT
	SRemoteCnt = 5 // S_REMOTE_CNT
	SData      = 6 // S_DATA
)

// Items is the TPC-C item count (scaled down from 100k for laptop runs).
const Items = 1000

// DistrictsPerWarehouse and CustomersPerDistrict are scaled-down cardinals
// (spec: 10 and 3000).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 120
)

// Schemas returns the nine table schemas keyed by name.
func Schemas() map[string]*types.Schema {
	i64 := func(n string) types.Column { return types.Column{Name: n, Type: types.Int64} }
	f64 := func(n string) types.Column { return types.Column{Name: n, Type: types.Float64} }
	str := func(n string) types.Column { return types.Column{Name: n, Type: types.String} }

	warehouse := types.NewSchema(i64("w_id"), str("w_name"), f64("w_tax"), f64("w_ytd"))
	warehouse.UniqueKey = []int{WID}
	warehouse.ShardKey = []int{WID}

	district := types.NewSchema(i64("d_w_id"), i64("d_id"), str("d_name"), f64("d_tax"), f64("d_ytd"), i64("d_next_o_id"))
	district.UniqueKey = []int{DWID, DID}
	district.ShardKey = []int{DWID}

	customer := types.NewSchema(
		i64("c_w_id"), i64("c_d_id"), i64("c_id"), str("c_last"), str("c_first"),
		f64("c_balance"), f64("c_ytd_payment"), i64("c_payment_cnt"), i64("c_delivery_cnt"), str("c_data"))
	customer.UniqueKey = []int{CWID, CDID, CID}
	customer.ShardKey = []int{CWID}
	customer.SecondaryKeys = [][]int{{CWID, CDID, CLast}}

	history := types.NewSchema(i64("h_w_id"), i64("h_d_id"), i64("h_c_id"), f64("h_amount"), str("h_data"))
	history.ShardKey = []int{HWID}

	newOrder := types.NewSchema(i64("no_w_id"), i64("no_d_id"), i64("no_o_id"))
	newOrder.UniqueKey = []int{NOWID, NODID, NOOID}
	newOrder.ShardKey = []int{NOWID}

	orders := types.NewSchema(
		i64("o_w_id"), i64("o_d_id"), i64("o_id"), i64("o_c_id"),
		i64("o_entry_d"), i64("o_carrier_id"), i64("o_ol_cnt"))
	orders.UniqueKey = []int{OWID, ODID, OOID}
	orders.ShardKey = []int{OWID}
	orders.SecondaryKeys = [][]int{{OWID, ODID, OCID}}

	orderLine := types.NewSchema(
		i64("ol_w_id"), i64("ol_d_id"), i64("ol_o_id"), i64("ol_number"),
		i64("ol_i_id"), i64("ol_supply_w_id"), i64("ol_quantity"), f64("ol_amount"), i64("ol_delivery_d"))
	orderLine.UniqueKey = []int{OLWID, OLDID, OLOID, OLNumber}
	orderLine.ShardKey = []int{OLWID}
	orderLine.SecondaryKeys = [][]int{{OLWID, OLDID, OLOID}}

	item := types.NewSchema(i64("i_id"), str("i_name"), f64("i_price"), str("i_data"))
	item.UniqueKey = []int{IID}
	item.ShardKey = []int{IID}

	stock := types.NewSchema(
		i64("s_w_id"), i64("s_i_id"), i64("s_quantity"), i64("s_ytd"),
		i64("s_order_cnt"), i64("s_remote_cnt"), str("s_data"))
	stock.UniqueKey = []int{SWID, SIID}
	stock.ShardKey = []int{SWID}

	return map[string]*types.Schema{
		TWarehouse: warehouse,
		TDistrict:  district,
		TCustomer:  customer,
		THistory:   history,
		TNewOrder:  newOrder,
		TOrders:    orders,
		TOrderLine: orderLine,
		TItem:      item,
		TStock:     stock,
	}
}

// Backend is the engine contract the workload drives. S2DB and the
// rowstore baseline both implement it; the warehouse baseline cannot
// (no unique keys, no keyed updates).
type Backend interface {
	Name() string
	// CreateTables materializes the nine schemas.
	CreateTables() error
	// Load bulk-ingests initial rows.
	Load(table string, rows []types.Row) error
	// Insert adds one row transactionally (duplicate keys are errors).
	Insert(table string, row types.Row) error
	// Get reads a row by its unique key values.
	Get(table string, key []types.Value) (types.Row, bool, error)
	// Update rewrites the row with the given unique key.
	Update(table string, key []types.Value, set func(types.Row) types.Row) (bool, error)
	// Delete removes the row with the given unique key.
	Delete(table string, key []types.Value) (bool, error)
	// ScanEq iterates rows whose cols equal vals, in unspecified order.
	// The emitted row may be reused between calls; callers that retain a
	// row must Clone it.
	ScanEq(table string, cols []int, vals []types.Value, emit func(types.Row) bool) error
}
