package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MixCounts reports per-profile transaction counts.
type MixCounts struct {
	NewOrder, Payment, OrderStatus, Delivery, StockLevel int64
	Rollbacks, Errors                                    int64
}

// Result summarizes a driver run.
type Result struct {
	Mix      MixCounts
	Duration time.Duration
	// TpmC is NewOrder transactions per minute (the TPC-C metric).
	TpmC float64
	// TotalTxns counts all completed transactions.
	TotalTxns int64
}

// DriverConfig tunes a workload run.
type DriverConfig struct {
	Warehouses int
	Workers    int
	Duration   time.Duration
	// MaxNewOrders stops the run after this many NewOrders (0 = time-based
	// only), letting benchmarks run a fixed amount of work.
	MaxNewOrders int64
	// ThinkTime adds the spec's keying/think pauses scaled by this factor
	// (0 disables; 1.0 would approximate the 12.86 tpmC/warehouse ceiling).
	ThinkTime float64
	Seed      int64
}

// Run drives the standard TPC-C mix (45/43/4/4/4) against the backend with
// the configured worker count and returns throughput results.
func Run(b Backend, cfg DriverConfig) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Duration <= 0 && cfg.MaxNewOrders <= 0 {
		cfg.Duration = time.Second
	}
	var mix MixCounts
	var stopFlag atomic.Bool
	var firstErr atomic.Value
	start := time.Now()
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stopFlag.Store(true) })
		defer timer.Stop()
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wkr)*7919))
			home := wkr%cfg.Warehouses + 1
			for !stopFlag.Load() {
				if cfg.MaxNewOrders > 0 && atomic.LoadInt64(&mix.NewOrder) >= cfg.MaxNewOrders {
					stopFlag.Store(true)
					return
				}
				roll := rng.Intn(100)
				var err error
				var counter *int64
				var think time.Duration
				switch {
				case roll < 45:
					counter = &mix.NewOrder
					think = time.Duration(18*cfg.ThinkTime*1000) * time.Millisecond / 1000
					err = NewOrder(b, rng, home, cfg.Warehouses)
				case roll < 88:
					counter = &mix.Payment
					think = time.Duration(15*cfg.ThinkTime*1000) * time.Millisecond / 1000
					err = Payment(b, rng, home, cfg.Warehouses)
				case roll < 92:
					counter = &mix.OrderStatus
					think = time.Duration(12*cfg.ThinkTime*1000) * time.Millisecond / 1000
					err = OrderStatus(b, rng, home)
				case roll < 96:
					counter = &mix.Delivery
					think = time.Duration(7*cfg.ThinkTime*1000) * time.Millisecond / 1000
					err = Delivery(b, rng, home)
				default:
					counter = &mix.StockLevel
					think = time.Duration(7*cfg.ThinkTime*1000) * time.Millisecond / 1000
					err = StockLevel(b, rng, home)
				}
				switch {
				case err == nil:
					atomic.AddInt64(counter, 1)
				case errors.Is(err, errRollback):
					atomic.AddInt64(&mix.Rollbacks, 1)
				default:
					atomic.AddInt64(&mix.Errors, 1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d: %w", wkr, err))
					stopFlag.Store(true)
					return
				}
				if think > 0 {
					time.Sleep(think)
				}
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{Mix: mix, Duration: elapsed}
	res.TotalTxns = mix.NewOrder + mix.Payment + mix.OrderStatus + mix.Delivery + mix.StockLevel
	res.TpmC = float64(mix.NewOrder) / elapsed.Minutes()
	if v := firstErr.Load(); v != nil {
		return res, v.(error)
	}
	return res, nil
}
