package tpcc

import (
	"sync/atomic"

	"s2db/internal/baseline"
	"s2db/internal/cluster"
	"s2db/internal/core"
	"s2db/internal/exec"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// S2Backend drives a S2DB cluster through its unified table storage.
type S2Backend struct {
	C *cluster.Cluster
}

// Name implements Backend.
func (b *S2Backend) Name() string { return "s2db" }

// CreateTables implements Backend.
func (b *S2Backend) CreateTables() error {
	for name, schema := range Schemas() {
		if err := b.C.CreateTable(name, schema); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Backend via the bulk columnstore path.
func (b *S2Backend) Load(table string, rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	return b.C.BulkLoad(table, rows)
}

// Insert implements Backend.
func (b *S2Backend) Insert(table string, row types.Row) error {
	_, err := b.C.Insert(table, []types.Row{row}, core.InsertOptions{})
	return err
}

// Get implements Backend.
func (b *S2Backend) Get(table string, key []types.Value) (types.Row, bool, error) {
	return b.C.GetByUnique(table, key)
}

// Update implements Backend.
func (b *S2Backend) Update(table string, key []types.Value, set func(types.Row) types.Row) (bool, error) {
	return b.C.UpdateByUnique(table, key, set)
}

// Delete implements Backend.
func (b *S2Backend) Delete(table string, key []types.Value) (bool, error) {
	return b.C.DeleteByUnique(table, key)
}

// ScanEq implements Backend with an adaptive index scan per partition.
// When the probed columns form a unique-key prefix, the buffer side seeks
// the key range instead of scanning the whole write buffer.
func (b *S2Backend) ScanEq(table string, cols []int, vals []types.Value, emit func(types.Row) bool) error {
	views, err := b.C.Views(table)
	if err != nil {
		return err
	}
	clauses := make([]exec.Node, len(cols))
	for i, c := range cols {
		clauses[i] = exec.NewLeaf(c, vector.Eq, vals[i])
	}
	var filter exec.Node
	if len(clauses) == 1 {
		filter = clauses[0]
	} else {
		filter = exec.NewAnd(clauses...)
	}
	var bufFrom, bufTo []byte
	if schema := Schemas()[table]; len(schema.UniqueKey) > 0 && isPrefix(schema.UniqueKey, cols) {
		bufFrom = types.EncodeKey(nil, vals...)
		bufTo = append(append([]byte(nil), bufFrom...), 0xff, 0xff, 0xff, 0xff)
	}
	for _, v := range views {
		stop := false
		scan := exec.NewScan(v, filter)
		scan.BufferFrom, scan.BufferTo = bufFrom, bufTo
		scan.Run(func(r types.Row) bool {
			if !emit(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}

// RowDBBackend drives the CDB rowstore baseline.
type RowDBBackend struct {
	DB *baseline.RowDB
	// seq allocates synthetic primary keys for keyless tables (history).
	seq atomic.Int64
}

// Name implements Backend.
func (b *RowDBBackend) Name() string { return "cdb-rowstore" }

// CreateTables implements Backend. History gets a synthetic primary key
// because the rowstore engine requires one.
func (b *RowDBBackend) CreateTables() error {
	for name, schema := range Schemas() {
		s := *schema
		if len(s.UniqueKey) == 0 {
			// Append a hidden sequence column as the primary key.
			s.Columns = append(append([]types.Column{}, s.Columns...), types.Column{Name: "_seq", Type: types.Int64})
			s.UniqueKey = []int{len(s.Columns) - 1}
		}
		if err := b.DB.CreateTable(name, &s); err != nil {
			return err
		}
	}
	return nil
}

func (b *RowDBBackend) padRow(table string, row types.Row) types.Row {
	if len(Schemas()[table].UniqueKey) == 0 {
		row = append(row.Clone(), types.NewInt(b.seq.Add(1)))
	}
	return row
}

// Load implements Backend.
func (b *RowDBBackend) Load(table string, rows []types.Row) error {
	for _, r := range rows {
		if err := b.Insert(table, r); err != nil {
			return err
		}
	}
	return nil
}

// Insert implements Backend.
func (b *RowDBBackend) Insert(table string, row types.Row) error {
	t, err := b.DB.Table(table)
	if err != nil {
		return err
	}
	return t.Insert(b.padRow(table, row))
}

// Get implements Backend.
func (b *RowDBBackend) Get(table string, key []types.Value) (types.Row, bool, error) {
	t, err := b.DB.Table(table)
	if err != nil {
		return nil, false, err
	}
	r, ok := t.Get(key)
	return r, ok, nil
}

// Update implements Backend.
func (b *RowDBBackend) Update(table string, key []types.Value, set func(types.Row) types.Row) (bool, error) {
	t, err := b.DB.Table(table)
	if err != nil {
		return false, err
	}
	return t.Update(key, set)
}

// Delete implements Backend.
func (b *RowDBBackend) Delete(table string, key []types.Value) (bool, error) {
	t, err := b.DB.Table(table)
	if err != nil {
		return false, err
	}
	return t.Delete(key)
}

// ScanEq implements Backend: an index range scan when the columns match a
// secondary index or unique-key prefix, otherwise a full row-at-a-time scan.
func (b *RowDBBackend) ScanEq(table string, cols []int, vals []types.Value, emit func(types.Row) bool) error {
	t, err := b.DB.Table(table)
	if err != nil {
		return err
	}
	schema := Schemas()[table]
	// Exact secondary-index match?
	for _, key := range schema.SecondaryKeys {
		if equalOrdinals(key, cols) {
			for _, r := range t.LookupEqual(key, vals) {
				if !emit(r) {
					return nil
				}
			}
			return nil
		}
	}
	// Unique-key prefix scan?
	if len(schema.UniqueKey) > 0 && isPrefix(schema.UniqueKey, cols) {
		for _, r := range t.LookupPrefix(vals) {
			if !emit(r) {
				return nil
			}
		}
		return nil
	}
	t.Scan(func(r types.Row) bool {
		for i, c := range cols {
			if !types.Equal(r[c], vals[i]) {
				return true
			}
		}
		return emit(r)
	})
	return nil
}

func equalOrdinals(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func isPrefix(key, cols []int) bool {
	if len(cols) > len(key) {
		return false
	}
	for i := range cols {
		if key[i] != cols[i] {
			return false
		}
	}
	return true
}
