package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"s2db/internal/types"
)

// errRollback models the spec's intentional 1% NewOrder rollback (invalid
// item id); it counts as a completed-but-aborted transaction.
var errRollback = errors.New("tpcc: intentional rollback")

func iv(i int64) types.Value   { return types.NewInt(i) }
func fv(f float64) types.Value { return types.NewFloat(f) }

// NewOrder runs the NewOrder transaction for a random district/customer of
// warehouse w. It returns errRollback for the intentional 1% aborts.
func NewOrder(b Backend, rng *rand.Rand, w, warehouses int) error {
	d := rng.Intn(DistrictsPerWarehouse) + 1
	c := nuRand(rng, 1023, 1, CustomersPerDistrict)
	olCnt := 5 + rng.Intn(11)
	rollback := rng.Intn(100) == 0

	// District: read and bump D_NEXT_O_ID.
	var oid int64
	ok, err := b.Update(TDistrict, []types.Value{iv(int64(w)), iv(int64(d))}, func(r types.Row) types.Row {
		oid = r[DNextOID].I
		r[DNextOID] = iv(oid + 1)
		return r
	})
	if err != nil || !ok {
		return fmt.Errorf("new-order: district: ok=%v err=%w", ok, err)
	}
	// Warehouse tax, customer.
	if _, ok, err = b.Get(TWarehouse, []types.Value{iv(int64(w))}); err != nil || !ok {
		return fmt.Errorf("new-order: warehouse: %w", err)
	}
	if _, ok, err = b.Get(TCustomer, []types.Value{iv(int64(w)), iv(int64(d)), iv(int64(c))}); err != nil || !ok {
		return fmt.Errorf("new-order: customer: %w", err)
	}
	// Order and NewOrder rows.
	if err := b.Insert(TOrders, types.Row{
		iv(int64(w)), iv(int64(d)), iv(oid), iv(int64(c)),
		iv(oid), iv(-1), iv(int64(olCnt)),
	}); err != nil {
		return fmt.Errorf("new-order: insert order: %w", err)
	}
	if err := b.Insert(TNewOrder, types.Row{iv(int64(w)), iv(int64(d)), iv(oid)}); err != nil {
		return fmt.Errorf("new-order: insert new_order: %w", err)
	}
	// Order lines with stock updates.
	for ol := 1; ol <= olCnt; ol++ {
		item := nuRand(rng, 8191, 1, Items)
		if rollback && ol == olCnt {
			// Unused item id: the spec's intentional abort. Our per-row
			// commits can't undo the prior lines; like the spec's terminal
			// emulator we simply report the rollback (the order exists but
			// the transaction does not count toward tpmC).
			return errRollback
		}
		supplyW := w
		if warehouses > 1 && rng.Intn(100) == 0 {
			supplyW = rng.Intn(warehouses) + 1 // 1% remote (§TPC-C 2.4.1.5)
		}
		itemRow, ok, err := b.Get(TItem, []types.Value{iv(int64(item))})
		if err != nil || !ok {
			return fmt.Errorf("new-order: item %d: %w", item, err)
		}
		qty := rng.Intn(10) + 1
		if _, err := b.Update(TStock, []types.Value{iv(int64(supplyW)), iv(int64(item))}, func(r types.Row) types.Row {
			q := r[SQuantity].I
			if q >= int64(qty)+10 {
				q -= int64(qty)
			} else {
				q = q - int64(qty) + 91
			}
			r[SQuantity] = iv(q)
			r[SYtd] = iv(r[SYtd].I + int64(qty))
			r[SOrderCnt] = iv(r[SOrderCnt].I + 1)
			if supplyW != w {
				r[SRemoteCnt] = iv(r[SRemoteCnt].I + 1)
			}
			return r
		}); err != nil {
			return fmt.Errorf("new-order: stock: %w", err)
		}
		amount := float64(qty) * itemRow[IPrice].F
		if err := b.Insert(TOrderLine, types.Row{
			iv(int64(w)), iv(int64(d)), iv(oid), iv(int64(ol)),
			iv(int64(item)), iv(int64(supplyW)), iv(int64(qty)), fv(amount), iv(-1),
		}); err != nil {
			return fmt.Errorf("new-order: order line: %w", err)
		}
	}
	return nil
}

// Payment runs the Payment transaction.
func Payment(b Backend, rng *rand.Rand, w, warehouses int) error {
	d := rng.Intn(DistrictsPerWarehouse) + 1
	amount := 1 + rng.Float64()*4999
	// 15% of payments are for remote customers.
	cw, cd := w, d
	if warehouses > 1 && rng.Intn(100) < 15 {
		for cw == w {
			cw = rng.Intn(warehouses) + 1
		}
		cd = rng.Intn(DistrictsPerWarehouse) + 1
	}
	if _, err := b.Update(TWarehouse, []types.Value{iv(int64(w))}, func(r types.Row) types.Row {
		r[WYtd] = fv(r[WYtd].F + amount)
		return r
	}); err != nil {
		return fmt.Errorf("payment: warehouse: %w", err)
	}
	if _, err := b.Update(TDistrict, []types.Value{iv(int64(w)), iv(int64(d))}, func(r types.Row) types.Row {
		r[DYtd] = fv(r[DYtd].F + amount)
		return r
	}); err != nil {
		return fmt.Errorf("payment: district: %w", err)
	}
	// 60% by customer id, 40% by last name (spec 2.5.1.2).
	var cid int64
	if rng.Intn(100) < 60 {
		cid = int64(nuRand(rng, 1023, 1, CustomersPerDistrict))
	} else {
		last := LastName(nuRand(rng, 255, 0, 999))
		var matches []types.Row
		err := b.ScanEq(TCustomer, []int{CWID, CDID, CLast},
			[]types.Value{iv(int64(cw)), iv(int64(cd)), types.NewString(last)},
			func(r types.Row) bool {
				matches = append(matches, r.Clone())
				return true
			})
		if err != nil {
			return fmt.Errorf("payment: by-name scan: %w", err)
		}
		if len(matches) == 0 {
			cid = int64(rng.Intn(CustomersPerDistrict) + 1)
		} else {
			// Midpoint of the name-ordered matches, per spec.
			sortRowsBy(matches, CFirst)
			cid = matches[len(matches)/2][CID].I
		}
	}
	if _, err := b.Update(TCustomer, []types.Value{iv(int64(cw)), iv(int64(cd)), iv(cid)}, func(r types.Row) types.Row {
		r[CBalance] = fv(r[CBalance].F - amount)
		r[CYtdPayment] = fv(r[CYtdPayment].F + amount)
		r[CPaymentCnt] = iv(r[CPaymentCnt].I + 1)
		return r
	}); err != nil {
		return fmt.Errorf("payment: customer: %w", err)
	}
	if err := b.Insert(THistory, types.Row{
		iv(int64(cw)), iv(int64(cd)), iv(cid), fv(amount), types.NewString("payment"),
	}); err != nil {
		return fmt.Errorf("payment: history: %w", err)
	}
	return nil
}

// OrderStatus runs the read-only OrderStatus transaction.
func OrderStatus(b Backend, rng *rand.Rand, w int) error {
	d := rng.Intn(DistrictsPerWarehouse) + 1
	cid := int64(nuRand(rng, 1023, 1, CustomersPerDistrict))
	if _, ok, err := b.Get(TCustomer, []types.Value{iv(int64(w)), iv(int64(d)), iv(cid)}); err != nil || !ok {
		return fmt.Errorf("order-status: customer: %w", err)
	}
	// Latest order of the customer via the (w, d, c) secondary index.
	var lastOID int64 = -1
	err := b.ScanEq(TOrders, []int{OWID, ODID, OCID},
		[]types.Value{iv(int64(w)), iv(int64(d)), iv(cid)},
		func(r types.Row) bool {
			if r[OOID].I > lastOID {
				lastOID = r[OOID].I
			}
			return true
		})
	if err != nil {
		return fmt.Errorf("order-status: orders: %w", err)
	}
	if lastOID < 0 {
		return nil // customer has no orders yet
	}
	// Its order lines.
	return b.ScanEq(TOrderLine, []int{OLWID, OLDID, OLOID},
		[]types.Value{iv(int64(w)), iv(int64(d)), iv(lastOID)},
		func(types.Row) bool { return true })
}

// Delivery runs the Delivery transaction: one batch over all districts.
func Delivery(b Backend, rng *rand.Rand, w int) error {
	carrier := int64(rng.Intn(10) + 1)
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		// Oldest undelivered order.
		var oldest int64 = -1
		err := b.ScanEq(TNewOrder, []int{NOWID, NODID},
			[]types.Value{iv(int64(w)), iv(int64(d))},
			func(r types.Row) bool {
				if oldest < 0 || r[NOOID].I < oldest {
					oldest = r[NOOID].I
				}
				return true
			})
		if err != nil {
			return fmt.Errorf("delivery: new_order scan: %w", err)
		}
		if oldest < 0 {
			continue // district fully delivered
		}
		existed, err := b.Delete(TNewOrder, []types.Value{iv(int64(w)), iv(int64(d)), iv(oldest)})
		if err != nil {
			return fmt.Errorf("delivery: delete new_order: %w", err)
		}
		if !existed {
			continue // another worker delivered it first
		}
		var cid int64
		if _, err := b.Update(TOrders, []types.Value{iv(int64(w)), iv(int64(d)), iv(oldest)}, func(r types.Row) types.Row {
			cid = r[OCID].I
			r[OCarrierID] = iv(carrier)
			return r
		}); err != nil {
			return fmt.Errorf("delivery: order: %w", err)
		}
		// Order lines: stamp delivery date and total the amounts.
		var total float64
		var lineKeys [][]types.Value
		err = b.ScanEq(TOrderLine, []int{OLWID, OLDID, OLOID},
			[]types.Value{iv(int64(w)), iv(int64(d)), iv(oldest)},
			func(r types.Row) bool {
				total += r[OLAmount].F
				lineKeys = append(lineKeys, []types.Value{r[OLWID], r[OLDID], r[OLOID], r[OLNumber]})
				return true
			})
		if err != nil {
			return fmt.Errorf("delivery: order lines: %w", err)
		}
		for _, k := range lineKeys {
			if _, err := b.Update(TOrderLine, k, func(r types.Row) types.Row {
				r[OLDeliveryD] = iv(oldest)
				return r
			}); err != nil {
				return fmt.Errorf("delivery: order line update: %w", err)
			}
		}
		if _, err := b.Update(TCustomer, []types.Value{iv(int64(w)), iv(int64(d)), iv(cid)}, func(r types.Row) types.Row {
			r[CBalance] = fv(r[CBalance].F + total)
			r[CDeliverCnt] = iv(r[CDeliverCnt].I + 1)
			return r
		}); err != nil {
			return fmt.Errorf("delivery: customer: %w", err)
		}
	}
	return nil
}

// StockLevel runs the read-only StockLevel transaction.
func StockLevel(b Backend, rng *rand.Rand, w int) error {
	d := rng.Intn(DistrictsPerWarehouse) + 1
	threshold := int64(10 + rng.Intn(11))
	dRow, ok, err := b.Get(TDistrict, []types.Value{iv(int64(w)), iv(int64(d))})
	if err != nil || !ok {
		return fmt.Errorf("stock-level: district: %w", err)
	}
	nextO := dRow[DNextOID].I
	// Items in the last 20 orders.
	itemSet := map[int64]struct{}{}
	for o := nextO - 20; o < nextO; o++ {
		if o < 1 {
			continue
		}
		err := b.ScanEq(TOrderLine, []int{OLWID, OLDID, OLOID},
			[]types.Value{iv(int64(w)), iv(int64(d)), iv(o)},
			func(r types.Row) bool {
				itemSet[r[OLIID].I] = struct{}{}
				return true
			})
		if err != nil {
			return fmt.Errorf("stock-level: order lines: %w", err)
		}
	}
	low := 0
	for item := range itemSet {
		s, ok, err := b.Get(TStock, []types.Value{iv(int64(w)), iv(item)})
		if err != nil {
			return fmt.Errorf("stock-level: stock: %w", err)
		}
		if ok && s[SQuantity].I < threshold {
			low++
		}
	}
	_ = low
	return nil
}

// sortRowsBy insertion-sorts small row sets by one string column.
func sortRowsBy(rows []types.Row, col int) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j][col].S < rows[j-1][col].S; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
