package wal

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func wirePage(first uint64, payloads ...string) Page {
	recs := make([]Record, len(payloads))
	for i, s := range payloads {
		var data []byte
		if s != "" { // decode canonicalizes empty payloads to nil
			data = []byte(s)
		}
		recs[i] = Record{
			LSN:      first + uint64(i),
			Kind:     Kind(1 + i%int(KindCommit)),
			CommitTS: uint64(100 + i),
			Wall:     int64(1e9) + int64(i),
			Data:     data,
		}
	}
	return Page{FirstLSN: first, EndLSN: first + uint64(len(recs)), Bytes: recsBytes(recs), Records: recs}
}

func TestPageWireRoundTrip(t *testing.T) {
	pages := []Page{
		wirePage(0, "a"),
		wirePage(7, "", "payload", string(bytes.Repeat([]byte{0xff, 0x00}, 500))),
		wirePage(1<<40, "x", "y"),
	}
	for _, pg := range pages {
		got, err := DecodePage(EncodePage(pg))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, pg) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, pg)
		}
	}
}

func TestDecodePageRejectsTruncation(t *testing.T) {
	frame := EncodePage(wirePage(3, "hello", "world"))
	for n := 0; n < len(frame); n++ {
		if _, err := DecodePage(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodePageRejectsCorruption(t *testing.T) {
	base := EncodePage(wirePage(3, "hello", "world"))
	cases := []struct {
		name string
		mut  func([]byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { b[4] = PageWireVersion + 1 }},
		{"flags", func(b []byte) { b[5] = 0x80 }},
		{"first-lsn", func(b []byte) { b[13]++ }},
		{"end-lsn", func(b []byte) { b[21]++ }},
		{"empty-span", func(b []byte) {
			binary.BigEndian.PutUint64(b[14:22], binary.BigEndian.Uint64(b[6:14]))
		}},
		{"crc", func(b []byte) { b[22] ^= 0xff }},
		{"length", func(b []byte) { binary.BigEndian.PutUint32(b[26:30], 1) }},
		{"oversized-length", func(b []byte) { binary.BigEndian.PutUint32(b[26:30], MaxWirePageBytes+1) }},
		{"body", func(b []byte) { b[len(b)-1] ^= 0x01 }},
	}
	for _, tc := range cases {
		frame := append([]byte(nil), base...)
		tc.mut(frame)
		if _, err := DecodePage(frame); err == nil {
			t.Fatalf("%s corruption accepted", tc.name)
		}
	}
	// Appending trailing bytes must also fail: the length field no longer
	// matches the frame.
	if _, err := DecodePage(append(append([]byte(nil), base...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRecordsRejectsHostileCounts(t *testing.T) {
	// A chunk claiming 2^40 records in a few bytes must be rejected before
	// the decoder sizes any allocation from the count.
	var buf []byte
	buf = binary.AppendUvarint(buf, 1<<40)
	if _, err := DecodeRecords(buf); err == nil {
		t.Fatal("hostile record count accepted")
	}
	// Same for a record whose data length runs past the chunk.
	one := EncodeRecords([]Record{{LSN: 1, Kind: KindInsert, Data: []byte("abc")}})
	if _, err := DecodeRecords(one[:len(one)-1]); err == nil {
		t.Fatal("truncated record data accepted")
	}
	// Trailing garbage after the declared records is corruption, not slack.
	if _, err := DecodeRecords(append(append([]byte(nil), one...), 0xee)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzDecodePage asserts DecodePage never panics, never over-allocates
// from hostile length fields, and that anything it accepts re-encodes and
// re-decodes to the same page (a stable round trip).
func FuzzDecodePage(f *testing.F) {
	f.Add(EncodePage(wirePage(0, "a")))
	f.Add(EncodePage(wirePage(9, "hello", "", "world")))
	f.Add(EncodePage(wirePage(1<<33, string(bytes.Repeat([]byte("z"), 2000)))))
	trunc := EncodePage(wirePage(2, "abc"))
	f.Add(trunc[:len(trunc)-2])
	f.Add([]byte("S2PG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pg, err := DecodePage(data)
		if err != nil {
			return
		}
		again, err := DecodePage(EncodePage(pg))
		if err != nil {
			t.Fatalf("re-decode of accepted page failed: %v", err)
		}
		if !reflect.DeepEqual(again, pg) {
			t.Fatalf("unstable round trip:\n got %+v\nwant %+v", again, pg)
		}
	})
}
