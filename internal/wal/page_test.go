package wal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func recPayload() []byte { return []byte("abcd") }

// recSize is the accounting size of a test record (4-byte payload).
const recSize = recordOverhead + 4

func TestPageSealBySize(t *testing.T) {
	l := NewLogWith(PageConfig{MaxBytes: 3 * recSize, FlushInterval: time.Hour})
	s, err := l.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	for want := uint64(0); want < 6; want += 3 {
		pg, ok := s.NextPage()
		if !ok {
			t.Fatal("subscription ended early")
		}
		if pg.FirstLSN != want || pg.EndLSN != want+3 || len(pg.Records) != 3 {
			t.Fatalf("page = [%d,%d) len %d, want [%d,%d)", pg.FirstLSN, pg.EndLSN, len(pg.Records), want, want+3)
		}
		if pg.Bytes != 3*recSize {
			t.Fatalf("page bytes = %d, want %d", pg.Bytes, 3*recSize)
		}
	}
	if got := l.PagesSealed(); got != 2 {
		t.Fatalf("pages sealed = %d, want 2", got)
	}
}

func TestPageSealByRecordCount(t *testing.T) {
	l := NewLogWith(PageConfig{MaxBytes: 1 << 20, MaxRecords: 4, FlushInterval: time.Hour})
	s, _ := l.Subscribe(0)
	for i := 0; i < 4; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	pg, ok := s.NextPage()
	if !ok || pg.FirstLSN != 0 || pg.EndLSN != 4 {
		t.Fatalf("page = %+v ok=%v, want [0,4)", pg, ok)
	}
}

func TestGroupCommitTimerSeals(t *testing.T) {
	l := NewLogWith(PageConfig{MaxBytes: 1 << 20, MaxRecords: 1 << 20, FlushInterval: 2 * time.Millisecond})
	s, _ := l.Subscribe(0)
	l.Append(KindInsert, 1, recPayload())
	l.Append(KindInsert, 2, recPayload())
	done := make(chan Page, 1)
	go func() {
		pg, _ := s.NextPage()
		done <- pg
	}()
	select {
	case pg := <-done:
		if pg.FirstLSN != 0 || pg.EndLSN != 2 {
			t.Fatalf("timer-sealed page = [%d,%d), want [0,2)", pg.FirstLSN, pg.EndLSN)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("group-commit timer never sealed the open page")
	}
}

func TestSyncSealsOpenPage(t *testing.T) {
	l := NewLogWith(PageConfig{FlushInterval: time.Hour})
	s, _ := l.Subscribe(0)
	l.Append(KindInsert, 1, recPayload())
	if _, ok := s.TryNext(); ok {
		t.Fatal("open-page record leaked before seal")
	}
	l.Sync()
	rec, ok := s.TryNext()
	if !ok || rec.LSN != 0 {
		t.Fatalf("Sync did not flush the open page: %+v ok=%v", rec, ok)
	}
}

func TestSubscribeMidOpenPageTrims(t *testing.T) {
	l := NewLogWith(PageConfig{FlushInterval: time.Hour})
	for i := 0; i < 5; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	s, err := l.Subscribe(2) // inside the open page
	if err != nil {
		t.Fatal(err)
	}
	l.Sync()
	pg, ok := s.NextPage()
	if !ok || pg.FirstLSN != 2 || pg.EndLSN != 5 {
		t.Fatalf("trimmed page = [%d,%d) ok=%v, want [2,5)", pg.FirstLSN, pg.EndLSN, ok)
	}
	if pg.Records[0].LSN != 2 {
		t.Fatalf("first record LSN = %d, want 2", pg.Records[0].LSN)
	}
}

func TestSubscribeBacklogIsPageAligned(t *testing.T) {
	l := NewLogWith(PageConfig{MaxRecords: 2, MaxBytes: 1 << 20, FlushInterval: time.Hour})
	for i := 0; i < 6; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	s, _ := l.Subscribe(0)
	if got := s.LagPages(); got != 3 {
		t.Fatalf("backlog pages = %d, want 3", got)
	}
	if got := s.Lag(); got != 6 {
		t.Fatalf("backlog records = %d, want 6", got)
	}
	if got := s.LagBytes(); got != 6*recSize {
		t.Fatalf("backlog bytes = %d, want %d", got, 6*recSize)
	}
}

func TestSlowConsumerDetached(t *testing.T) {
	l := NewLogWith(PageConfig{SubscriptionBudget: 2 * recSize})
	s, _ := l.Subscribe(0)
	// Per-record pages: the third undelivered page exceeds the budget.
	for i := 0; i < 5; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	if !errors.Is(s.Err(), ErrSlowConsumer) {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", s.Err())
	}
	// The buffered prefix still drains in order, then the stream ends.
	var last uint64
	n := 0
	for {
		pg, ok := s.NextPage()
		if !ok {
			break
		}
		for _, r := range pg.Records {
			if n > 0 && r.LSN != last+1 {
				t.Fatalf("out-of-order drain: %d after %d", r.LSN, last)
			}
			last = r.LSN
			n++
		}
	}
	if n == 0 || n >= 5 {
		t.Fatalf("drained %d records, want a strict prefix of 5", n)
	}
	// The log must have dropped the subscription: new appends don't pile up.
	l.Append(KindInsert, 9, recPayload())
	if got := s.Lag(); got != 0 {
		t.Fatalf("detached subscription still receives records: lag %d", got)
	}
}

// TestStalledSubscriberUnderConcurrentAppends is the -race test for a
// stalled subscriber: writers keep appending while the reader sleeps past
// the budget, then drains whatever was buffered before the detachment.
func TestStalledSubscriberUnderConcurrentAppends(t *testing.T) {
	l := NewLogWith(PageConfig{SubscriptionBudget: 8 * recSize})
	s, err := l.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(KindInsert, 0, recPayload())
			}
		}()
	}
	// Stall until the budget trips, then drain.
	deadline := time.After(5 * time.Second)
	for s.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("stalled subscriber was never detached")
		case <-time.After(time.Millisecond):
		}
	}
	wg.Wait()
	prev := int64(-1)
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if int64(rec.LSN) != prev+1 {
			t.Fatalf("drain out of order: LSN %d after %d", rec.LSN, prev)
		}
		prev = int64(rec.LSN)
	}
	if !errors.Is(s.Err(), ErrSlowConsumer) {
		t.Fatalf("Err() = %v, want ErrSlowConsumer", s.Err())
	}
	if head := l.Head(); head != writers*perWriter {
		t.Fatalf("head = %d, want %d (appends must not block on the stalled reader)", head, writers*perWriter)
	}
}

func TestChunkAtPageAligned(t *testing.T) {
	l := NewLogWith(PageConfig{MaxRecords: 3, MaxBytes: 1 << 20, FlushInterval: time.Hour})
	for i := 0; i < 7; i++ {
		l.Append(KindInsert, uint64(i), recPayload()) // pages [0,3) [3,6), open [6,7)
	}
	recs, end, err := l.ChunkAt(0, 100, 0)
	if err != nil || end != 3 || len(recs) != 3 {
		t.Fatalf("ChunkAt(0) = end %d len %d err %v, want page [0,3)", end, len(recs), err)
	}
	recs, end, _ = l.ChunkAt(3, 100, 0)
	if end != 6 || len(recs) != 3 {
		t.Fatalf("ChunkAt(3) = end %d len %d, want page [3,6)", end, len(recs))
	}
	// Partial trailing chunk from the open page, clamped by the limit.
	recs, end, _ = l.ChunkAt(6, 7, 0)
	if end != 7 || len(recs) != 1 || recs[0].LSN != 6 {
		t.Fatalf("ChunkAt(6,7) = end %d len %d, want partial [6,7)", end, len(recs))
	}
	if _, end, _ = l.ChunkAt(6, 6, 0); end != 6 {
		t.Fatalf("ChunkAt(6,6) = end %d, want empty chunk at 6", end)
	}
	// maxRecords splits a page into smaller aligned chunks.
	recs, end, _ = l.ChunkAt(0, 100, 2)
	if end != 2 || len(recs) != 2 {
		t.Fatalf("ChunkAt(0,·,2) = end %d len %d, want [0,2)", end, len(recs))
	}
	// Mid-page chunk resumes to the same page boundary.
	recs, end, _ = l.ChunkAt(2, 100, 0)
	if end != 3 || len(recs) != 1 {
		t.Fatalf("ChunkAt(2) = end %d len %d, want [2,3)", end, len(recs))
	}
}

func TestTruncateBeforeClampsPages(t *testing.T) {
	l := NewLogWith(PageConfig{MaxRecords: 3, MaxBytes: 1 << 20, FlushInterval: time.Hour})
	for i := 0; i < 7; i++ {
		l.Append(KindInsert, uint64(i), recPayload())
	}
	l.TruncateBefore(4) // inside page [3,6)
	if _, _, err := l.ChunkAt(1, 100, 0); err == nil {
		t.Fatal("ChunkAt below base must error")
	}
	recs, end, err := l.ChunkAt(4, 100, 0)
	if err != nil || end != 6 || len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("ChunkAt(4) after truncate = end %d len %d err %v, want [4,6)", end, len(recs), err)
	}
	// Truncating into the open page keeps the open tail consistent.
	l.TruncateBefore(7)
	l.Append(KindInsert, 7, recPayload())
	l.Sync()
	recs, end, err = l.ChunkAt(7, 100, 0)
	if err != nil || end != 8 || len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("post-truncate chunk = end %d len %d err %v, want [7,8)", end, len(recs), err)
	}
}
