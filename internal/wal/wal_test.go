package wal

import (
	"reflect"
	"sync"
	"testing"
)

func TestAppendAssignsDenseLSNs(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		if lsn := l.Append(KindInsert, uint64(i), []byte{byte(i)}); lsn != uint64(i) {
			t.Fatalf("Append %d gave LSN %d", i, lsn)
		}
	}
	if l.Head() != 5 {
		t.Fatalf("Head = %d", l.Head())
	}
}

func TestRecordsRange(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(KindInsert, uint64(i), []byte{byte(i)})
	}
	recs, err := l.Records(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LSN != 3 || recs[2].LSN != 5 {
		t.Fatalf("Records(3,6) = %v", recs)
	}
	// Range past head is clamped.
	recs, _ = l.Records(8, 100)
	if len(recs) != 2 {
		t.Fatalf("clamped range returned %d records", len(recs))
	}
	// Empty range.
	if recs, _ := l.Records(6, 6); recs != nil {
		t.Fatalf("empty range returned %v", recs)
	}
}

func TestDurableWatermark(t *testing.T) {
	l := NewLog()
	l.Append(KindInsert, 1, nil)
	l.MarkDurable(1)
	if l.Durable() != 1 {
		t.Fatalf("Durable = %d", l.Durable())
	}
	l.MarkDurable(0) // never regresses
	if l.Durable() != 1 {
		t.Fatalf("Durable regressed to %d", l.Durable())
	}
}

func TestTruncate(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(KindInsert, uint64(i), nil)
	}
	l.TruncateBefore(4)
	if l.Base() != 4 {
		t.Fatalf("Base = %d", l.Base())
	}
	if _, err := l.Records(2, 6); err == nil {
		t.Fatal("reading truncated records should fail")
	}
	recs, err := l.Records(4, 6)
	if err != nil || len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("Records(4,6) = %v, %v", recs, err)
	}
	if _, err := l.Subscribe(2); err == nil {
		t.Fatal("subscribing below base should fail")
	}
}

func TestSubscribeBacklogThenLive(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Append(KindInsert, uint64(i), []byte{byte(i)})
	}
	sub, err := l.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var got []uint64
	go func() {
		defer wg.Done()
		// Expect the backlog (LSN 1, 2) plus one live append (LSN 3).
		for len(got) < 3 {
			rec, ok := sub.Next()
			if !ok {
				return
			}
			got = append(got, rec.LSN)
		}
	}()
	l.Append(KindCommit, 99, nil)
	wg.Wait()
	want := []uint64{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subscription got %v, want %v", got, want)
	}
}

func TestSubscriptionCancelWakesReader(t *testing.T) {
	l := NewLog()
	sub, _ := l.Subscribe(0)
	done := make(chan bool)
	go func() {
		_, ok := sub.Next()
		done <- ok
	}()
	sub.Cancel()
	if ok := <-done; ok {
		t.Fatal("Next after cancel with empty backlog should report !ok")
	}
}

func TestSubscriptionLag(t *testing.T) {
	l := NewLog()
	l.Append(KindInsert, 1, nil)
	l.Append(KindInsert, 2, nil)
	sub, _ := l.Subscribe(0)
	if sub.Lag() != 2 {
		t.Fatalf("Lag = %d", sub.Lag())
	}
	sub.TryNext()
	if sub.Lag() != 1 {
		t.Fatalf("Lag after drain = %d", sub.Lag())
	}
	if _, ok := sub.TryNext(); !ok {
		t.Fatal("TryNext should succeed")
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("TryNext on empty should fail")
	}
	sub.Cancel()
}

func TestEncodeDecodeRecords(t *testing.T) {
	recs := []Record{
		{LSN: 0, Kind: KindInsert, CommitTS: 5, Data: []byte("hello")},
		{LSN: 1, Kind: KindFlush, CommitTS: 6, Data: nil},
		{LSN: 2, Kind: KindCommit, CommitTS: 7, Data: []byte{0, 1, 2}},
	}
	buf := EncodeRecords(recs)
	got, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records", len(got))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Kind != recs[i].Kind || got[i].CommitTS != recs[i].CommitTS {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		if string(got[i].Data) != string(recs[i].Data) {
			t.Fatalf("record %d data mismatch", i)
		}
	}
	// Truncated chunk fails cleanly.
	if _, err := DecodeRecords(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated chunk should fail")
	}
}

func TestConcurrentAppendAndSubscribe(t *testing.T) {
	l := NewLog()
	sub, _ := l.Subscribe(0)
	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			l.Append(KindInsert, uint64(i), nil)
		}
	}()
	for i := 0; i < n; i++ {
		rec, ok := sub.Next()
		if !ok || rec.LSN != uint64(i) {
			t.Fatalf("record %d: got LSN %d ok=%v", i, rec.LSN, ok)
		}
	}
	sub.Cancel()
}

func TestTruncateEmptyLogAdvancesBase(t *testing.T) {
	// A replica bootstrapped from a snapshot truncates an empty log to the
	// snapshot LSN; the next append must land exactly there.
	l := NewLog()
	l.TruncateBefore(42)
	if l.Base() != 42 || l.Head() != 42 {
		t.Fatalf("Base=%d Head=%d, want 42/42", l.Base(), l.Head())
	}
	if lsn := l.Append(KindInsert, 1, nil); lsn != 42 {
		t.Fatalf("Append after truncate gave LSN %d", lsn)
	}
}

func TestRecordWallTimeSurvivesChunks(t *testing.T) {
	l := NewLog()
	l.Append(KindInsert, 1, []byte("x"))
	recs, _ := l.Records(0, 1)
	if recs[0].Wall == 0 {
		t.Fatal("Append did not stamp wall time")
	}
	buf := EncodeRecords(recs)
	got, err := DecodeRecords(buf)
	if err != nil || got[0].Wall != recs[0].Wall {
		t.Fatalf("wall time lost across chunk encode: %v vs %v (%v)", got[0].Wall, recs[0].Wall, err)
	}
}

func TestAppendRecordPreservesIdentity(t *testing.T) {
	src := NewLog()
	src.Append(KindInsert, 7, []byte("payload"))
	recs, _ := src.Records(0, 1)
	dst := NewLog()
	if err := dst.AppendRecord(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Wrong LSN is rejected.
	if err := dst.AppendRecord(recs[0]); err == nil {
		t.Fatal("duplicate LSN accepted")
	}
	got, _ := dst.Records(0, 1)
	if got[0].Wall != recs[0].Wall || got[0].CommitTS != 7 {
		t.Fatal("record identity not preserved")
	}
}
