package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire codec for replication pages: when a page crosses a real transport
// (the cluster's loopback-TCP path) instead of an in-process channel, it
// serializes to a self-contained frame with a versioned header and a CRC
// over the record payload, so the receiving replica can reject truncated,
// corrupt or mis-framed pages before applying anything.
//
// Frame layout (fixed fields big-endian):
//
//	[0:4)   magic "S2PG"
//	[4]     wire version (PageWireVersion)
//	[5]     flags (reserved, must be 0)
//	[6:14)  FirstLSN
//	[14:22) EndLSN
//	[22:26) CRC-32C (Castagnoli) of the payload
//	[26:30) payload length
//	[30:)   payload = EncodeRecords(Records)
const (
	// PageWireVersion is the current frame version; DecodePage rejects
	// frames from any other version rather than guessing.
	PageWireVersion = 1
	// MaxWirePageBytes caps a frame's payload. DecodePage rejects larger
	// claims before allocating, bounding memory against corrupt or hostile
	// length fields (pages seal at the log's MaxBytes, far below this).
	MaxWirePageBytes = 64 << 20

	pageWireHeader = 30
)

var (
	pageWireMagic = [4]byte{'S', '2', 'P', 'G'}
	pageCRCTable  = crc32.MakeTable(crc32.Castagnoli)
)

// EncodePage serializes a page into a wire frame. Page.Bytes is accounting
// state, not payload; DecodePage recomputes it.
func EncodePage(pg Page) []byte {
	body := EncodeRecords(pg.Records)
	buf := make([]byte, pageWireHeader, pageWireHeader+len(body))
	copy(buf[0:4], pageWireMagic[:])
	buf[4] = PageWireVersion
	buf[5] = 0
	binary.BigEndian.PutUint64(buf[6:14], pg.FirstLSN)
	binary.BigEndian.PutUint64(buf[14:22], pg.EndLSN)
	binary.BigEndian.PutUint32(buf[22:26], crc32.Checksum(body, pageCRCTable))
	binary.BigEndian.PutUint32(buf[26:30], uint32(len(body)))
	return append(buf, body...)
}

// DecodePage parses and validates a frame written by EncodePage. Beyond
// the CRC it checks the structural invariants the apply path relies on:
// the record span is non-empty, dense, and matches the header's
// [FirstLSN, EndLSN).
func DecodePage(buf []byte) (Page, error) {
	if len(buf) < pageWireHeader {
		return Page{}, fmt.Errorf("wal: page frame truncated at %d bytes", len(buf))
	}
	if !bytes.Equal(buf[0:4], pageWireMagic[:]) {
		return Page{}, fmt.Errorf("wal: bad page frame magic %q", buf[0:4])
	}
	if buf[4] != PageWireVersion {
		return Page{}, fmt.Errorf("wal: unsupported page frame version %d", buf[4])
	}
	if buf[5] != 0 {
		return Page{}, fmt.Errorf("wal: unsupported page frame flags %#x", buf[5])
	}
	first := binary.BigEndian.Uint64(buf[6:14])
	end := binary.BigEndian.Uint64(buf[14:22])
	if end <= first {
		return Page{}, fmt.Errorf("wal: empty page span [%d,%d)", first, end)
	}
	plen := binary.BigEndian.Uint32(buf[26:30])
	if plen > MaxWirePageBytes {
		return Page{}, fmt.Errorf("wal: page payload claims %d bytes (max %d)", plen, MaxWirePageBytes)
	}
	if int(plen) != len(buf)-pageWireHeader {
		return Page{}, fmt.Errorf("wal: page payload length %d does not match frame size %d", plen, len(buf)-pageWireHeader)
	}
	body := buf[pageWireHeader:]
	want := binary.BigEndian.Uint32(buf[22:26])
	if got := crc32.Checksum(body, pageCRCTable); got != want {
		return Page{}, fmt.Errorf("wal: page payload CRC mismatch (got %08x want %08x)", got, want)
	}
	recs, err := DecodeRecords(body)
	if err != nil {
		return Page{}, fmt.Errorf("wal: page payload: %w", err)
	}
	if uint64(len(recs)) != end-first {
		return Page{}, fmt.Errorf("wal: page carries %d records for span [%d,%d)", len(recs), first, end)
	}
	for i := range recs {
		if recs[i].LSN != first+uint64(i) {
			return Page{}, fmt.Errorf("wal: page record %d has LSN %d, want %d", i, recs[i].LSN, first+uint64(i))
		}
	}
	return Page{FirstLSN: first, EndLSN: end, Bytes: recsBytes(recs), Records: recs}, nil
}
