// Package wal implements the per-partition write-ahead log (§2.1.1, §3):
// an append-only record stream with replication watermarks, chunked upload
// of the durable prefix to blob storage, and snapshots that bound recovery
// time. Record payloads are opaque to the log; the table layer defines
// their encoding.
//
// Replication, durability and staging all operate on log *pages* — sealed
// runs of records with [FirstLSN, EndLSN) — matching §3's "replicates log
// pages early" design. A page seals when it reaches a byte or record
// threshold, or when the group-commit timer fires; with a zero
// FlushInterval every append seals its own page, which reproduces
// per-record shipping exactly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind tags a log record for the replaying layer.
type Kind uint8

// Record kinds used by the unified table storage. The WAL itself only
// requires them to be stable across serialize/replay.
const (
	// KindInsert is a row insert into the in-memory rowstore.
	KindInsert Kind = iota + 1
	// KindDelete is a row delete (tombstone) from the in-memory rowstore.
	KindDelete
	// KindFlush converts rowstore rows into a columnstore segment.
	KindFlush
	// KindMerge replaces segments with a merged segment.
	KindMerge
	// KindMove is the autonomous move transaction of §4.2: rows copied
	// from a segment into the rowstore with their deleted bits set.
	KindMove
	// KindMetaDelete updates only a segment's deleted bit vector.
	KindMetaDelete
	// KindCommit marks a transaction commit with its timestamp.
	KindCommit
)

// Record is one log entry. LSN is assigned by Append and is dense (the
// record index), which the chunking and replication layers rely on. Wall
// is the append wall-clock time in Unix nanoseconds: point-in-time restore
// maps a wall-clock target to a per-partition log position with it (§3.2),
// since commit timestamps are partition-local and not comparable across
// partitions.
type Record struct {
	LSN      uint64
	Kind     Kind
	CommitTS uint64
	Wall     int64
	Data     []byte
}

// recordOverhead approximates the fixed per-record framing cost used for
// page-size accounting and lag-in-bytes reporting.
const recordOverhead = 16

// RecordSize is the accounting size of a record: payload plus framing.
func RecordSize(r Record) int { return recordOverhead + len(r.Data) }

func recsBytes(recs []Record) int {
	n := 0
	for i := range recs {
		n += RecordSize(recs[i])
	}
	return n
}

// ErrSlowConsumer is reported by a Subscription that was detached because
// its pending pages exceeded the byte budget. The consumer must
// re-subscribe (typically after catching up from blob-staged chunks).
var ErrSlowConsumer = errors.New("wal: subscription exceeded its pending byte budget")

// Defaults for PageConfig fields left at zero.
const (
	DefaultPageBytes          = 64 << 10
	DefaultPageRecords        = 1024
	DefaultSubscriptionBudget = 256 << 20
)

// PageConfig controls page sealing and subscriber buffering.
type PageConfig struct {
	// MaxBytes seals the open page once its records reach this many
	// accounting bytes. Default 64KiB.
	MaxBytes int
	// MaxRecords seals the open page once it holds this many records.
	// Default 1024.
	MaxRecords int
	// FlushInterval is the group-commit timer: the open page seals at most
	// this long after its first record. Zero seals on every append
	// (per-record shipping).
	FlushInterval time.Duration
	// SubscriptionBudget bounds the bytes a subscription may hold pending
	// before it is detached with ErrSlowConsumer. Default 256MiB.
	SubscriptionBudget int
}

func (c PageConfig) withDefaults() PageConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultPageBytes
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = DefaultPageRecords
	}
	if c.SubscriptionBudget <= 0 {
		c.SubscriptionBudget = DefaultSubscriptionBudget
	}
	return c
}

// Page is a sealed, immutable run of records covering [FirstLSN, EndLSN).
// Records aliases the log's buffer; records are never mutated after append.
// Pages are the unit of replication, acknowledgement and blob staging.
type Page struct {
	FirstLSN uint64
	EndLSN   uint64
	Bytes    int
	Records  []Record
}

// pageSpan remembers a sealed page boundary inside the retained buffer so
// staging can cut blob chunks on the same boundaries replication shipped.
type pageSpan struct {
	first, end uint64
}

// Log is an append-only in-memory record log with a durable watermark.
// The watermark models §3's rule that only the fully durable and
// replicated prefix may be uploaded to blob storage.
type Log struct {
	mu      sync.Mutex
	cfg     PageConfig
	recs    []Record
	base    uint64 // LSN of recs[0]; records below base were truncated
	durable uint64 // first non-durable LSN (all records < durable are durable)
	subs    map[int]*Subscription
	nextSub int

	sealed      []pageSpan // sealed page boundaries in [base, openStart), ascending
	openStart   uint64     // first LSN of the open (unsealed) page
	openBytes   int        // accounting bytes in the open page
	timerArmed  bool       // a group-commit timer will fire for the open page
	pagesSealed uint64
}

// NewLog returns an empty log with default paging (seal on every append).
func NewLog() *Log {
	return NewLogWith(PageConfig{})
}

// NewLogWith returns an empty log with the given page configuration.
func NewLogWith(cfg PageConfig) *Log {
	return &Log{cfg: cfg.withDefaults(), subs: make(map[int]*Subscription)}
}

// Append adds a record and returns its LSN. The record joins the open page,
// which is streamed to subscribers as soon as it seals (replication
// replicates log pages early, before commit, §3).
func (l *Log) Append(kind Kind, commitTS uint64, data []byte) uint64 {
	l.mu.Lock()
	lsn := l.base + uint64(len(l.recs))
	rec := Record{LSN: lsn, Kind: kind, CommitTS: commitTS, Wall: time.Now().UnixNano(), Data: data}
	l.appendLocked(rec)
	l.mu.Unlock()
	return lsn
}

// AppendRecord appends a fully-formed record (replication replay),
// preserving its wall time. The record's LSN must equal the log head.
func (l *Log) AppendRecord(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if head := l.base + uint64(len(l.recs)); rec.LSN != head {
		return fmt.Errorf("wal: AppendRecord LSN %d != head %d", rec.LSN, head)
	}
	l.appendLocked(rec)
	return nil
}

func (l *Log) appendLocked(rec Record) {
	l.recs = append(l.recs, rec)
	l.openBytes += RecordSize(rec)
	openRecs := int(l.base + uint64(len(l.recs)) - l.openStart)
	if l.cfg.FlushInterval <= 0 || l.openBytes >= l.cfg.MaxBytes || openRecs >= l.cfg.MaxRecords {
		l.sealLocked()
		return
	}
	if !l.timerArmed {
		l.timerArmed = true
		time.AfterFunc(l.cfg.FlushInterval, l.timerFlush)
	}
}

func (l *Log) timerFlush() {
	l.mu.Lock()
	l.timerArmed = false
	l.sealLocked()
	l.mu.Unlock()
}

// Sync seals the open page immediately, flushing any records held back by
// the group-commit timer to subscribers.
func (l *Log) Sync() {
	l.mu.Lock()
	l.sealLocked()
	l.mu.Unlock()
}

// sealLocked closes the open page and offers it to every subscriber. A
// subscriber over its byte budget is detached here rather than buffering
// without bound.
func (l *Log) sealLocked() {
	head := l.base + uint64(len(l.recs))
	if l.openStart >= head {
		return
	}
	first, end := l.openStart, head
	recs := l.recs[first-l.base : end-l.base]
	pg := Page{FirstLSN: first, EndLSN: end, Bytes: l.openBytes, Records: recs}
	l.sealed = append(l.sealed, pageSpan{first: first, end: end})
	l.openStart = end
	l.openBytes = 0
	l.pagesSealed++
	for id, s := range l.subs {
		if !s.offer(pg) {
			delete(l.subs, id)
		}
	}
}

// PagesSealed reports how many pages have sealed over the log's lifetime.
func (l *Log) PagesSealed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pagesSealed
}

// Head returns the next LSN to be assigned.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// Base returns the first retained LSN.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// MarkDurable advances the durable watermark to lsn (exclusive).
func (l *Log) MarkDurable(lsn uint64) {
	l.mu.Lock()
	if lsn > l.durable {
		l.durable = lsn
	}
	l.mu.Unlock()
}

// Durable returns the durable watermark (exclusive LSN).
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Records returns a copy of records with LSN in [from, to).
func (l *Log) Records(from, to uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, fmt.Errorf("wal: records from %d already truncated (base %d)", from, l.base)
	}
	end := l.base + uint64(len(l.recs))
	if to > end {
		to = end
	}
	if from >= to {
		return nil, nil
	}
	out := make([]Record, to-from)
	copy(out, l.recs[from-l.base:to-l.base])
	return out, nil
}

// ChunkAt returns a copy of records starting at from and ending at the
// sealed-page boundary containing from, so blob chunks align with the pages
// replication shipped. When from is past every sealed page, the open tail
// up to limit is returned as a partial trailing chunk (CommitBlob with no
// sync replicas advances durability into the open page). maxRecords, if
// positive, caps the chunk length. end reports the LSN one past the last
// returned record (== from when nothing is available).
func (l *Log) ChunkAt(from, limit uint64, maxRecords int) (recs []Record, end uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, from, fmt.Errorf("wal: chunk from %d already truncated (base %d)", from, l.base)
	}
	end = l.base + uint64(len(l.recs))
	idx := sort.Search(len(l.sealed), func(i int) bool { return l.sealed[i].end > from })
	if idx < len(l.sealed) {
		end = l.sealed[idx].end
	}
	if end > limit {
		end = limit
	}
	if maxRecords > 0 && end > from+uint64(maxRecords) {
		end = from + uint64(maxRecords)
	}
	if from >= end {
		return nil, from, nil
	}
	out := make([]Record, end-from)
	copy(out, l.recs[from-l.base:end-l.base])
	return out, end, nil
}

// Subscription is an ordered stream of sealed log pages. Appends never
// block on slow subscribers; instead a subscriber holding more than its
// byte budget of undelivered pages is detached with ErrSlowConsumer.
// Consumers pull whole pages with NextPage or single records with Next.
type Subscription struct {
	mu           sync.Mutex
	cond         *sync.Cond
	pages        []Page
	pendingBytes int
	pendingRecs  int
	closed       bool
	err          error
	budget       int
	next         uint64 // lowest LSN this subscription still needs
	// pacer, when set, charges each delivered page's bytes against a
	// bandwidth budget before NextPage returns it. It runs outside the
	// subscription lock (it may sleep on a token refill) so offer() —
	// called under the log mutex — is never delayed by pacing. A pacer
	// error fails the subscription with that error; the popped page is
	// dropped, which is safe because consumers resubscribe from their
	// applied position.
	pacer func(bytes int) error

	log *Log
	id  int
}

// SetPacer installs a bandwidth pacer called once per page NextPage
// delivers, with the page's accounting bytes. Install it before the
// consuming goroutine starts; the error a pacer returns (e.g. a QoS
// shed) surfaces via Err after NextPage returns ok == false.
func (s *Subscription) SetPacer(fn func(bytes int) error) {
	s.mu.Lock()
	s.pacer = fn
	s.mu.Unlock()
}

// fail detaches the subscription from the log and ends it with err,
// waking blocked readers.
func (s *Subscription) fail(err error) {
	s.log.mu.Lock()
	delete(s.log.subs, s.id)
	s.log.mu.Unlock()
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// offer delivers a sealed page, trimming any prefix the subscriber already
// has. Returns false when the subscription is closed or newly detached for
// exceeding its budget; the caller then drops it from the log.
func (s *Subscription) offer(pg Page) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.next > pg.FirstLSN {
		if s.next >= pg.EndLSN {
			return true
		}
		pg.Records = pg.Records[s.next-pg.FirstLSN:]
		pg.FirstLSN = s.next
		pg.Bytes = recsBytes(pg.Records)
	}
	// Detach over-budget subscribers, but always accept a page into an
	// empty queue so a lone oversized page cannot wedge delivery.
	if s.budget > 0 && s.pendingRecs > 0 && s.pendingBytes+pg.Bytes > s.budget {
		s.err = ErrSlowConsumer
		s.closed = true
		s.cond.Broadcast()
		return false
	}
	s.pages = append(s.pages, pg)
	s.pendingBytes += pg.Bytes
	s.pendingRecs += len(pg.Records)
	s.next = pg.EndLSN
	s.cond.Signal()
	return true
}

// NextPage blocks until a sealed page is available or the subscription
// ends; ok is false after cancellation or detachment once the backlog
// drains (check Err to distinguish).
func (s *Subscription) NextPage() (pg Page, ok bool) {
	s.mu.Lock()
	for len(s.pages) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.pages) == 0 {
		s.mu.Unlock()
		return Page{}, false
	}
	pg = s.pages[0]
	s.pages = s.pages[1:]
	s.pendingBytes -= pg.Bytes
	s.pendingRecs -= len(pg.Records)
	pacer := s.pacer
	s.mu.Unlock()
	// Pacing runs off-lock: the pacer may sleep on a bandwidth refill,
	// and offer() (called under the log mutex) must never wait on it.
	if pacer != nil && pg.Bytes > 0 {
		if err := pacer(pg.Bytes); err != nil {
			s.fail(err)
			return Page{}, false
		}
	}
	return pg, true
}

// Next blocks until a record is available or the subscription ends; ok is
// false after cancellation once the backlog drains.
func (s *Subscription) Next() (rec Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pendingRecs == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.pendingRecs == 0 {
		return Record{}, false
	}
	return s.popRecordLocked(), true
}

// TryNext returns a pending record without blocking.
func (s *Subscription) TryNext() (rec Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingRecs == 0 {
		return Record{}, false
	}
	return s.popRecordLocked(), true
}

func (s *Subscription) popRecordLocked() Record {
	pg := &s.pages[0]
	rec := pg.Records[0]
	sz := RecordSize(rec)
	pg.Records = pg.Records[1:]
	pg.FirstLSN++
	pg.Bytes -= sz
	s.pendingBytes -= sz
	s.pendingRecs--
	if len(pg.Records) == 0 {
		s.pages = s.pages[1:]
	}
	return rec
}

// Cancel detaches the subscription from the log and wakes blocked readers.
func (s *Subscription) Cancel() {
	s.log.mu.Lock()
	delete(s.log.subs, s.id)
	s.log.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Err reports why the subscription ended: ErrSlowConsumer after a budget
// detachment, nil after Cancel or while still attached.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Lag returns the number of records queued but not yet consumed, which the
// cluster reports as replication lag (Table 3 discussion).
func (s *Subscription) Lag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingRecs
}

// LagBytes returns the accounting bytes queued but not yet consumed.
func (s *Subscription) LagBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingBytes
}

// LagPages returns the number of pages queued but not yet consumed.
func (s *Subscription) LagPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Subscribe streams every record with LSN >= from: sealed backlog pages
// first, then future pages, in LSN order. Records still in the open page
// arrive when it seals (immediately under per-record paging).
func (l *Log) Subscribe(from uint64) (*Subscription, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, fmt.Errorf("wal: subscription from %d already truncated (base %d)", from, l.base)
	}
	s := &Subscription{log: l, id: l.nextSub, budget: l.cfg.SubscriptionBudget, next: from}
	s.cond = sync.NewCond(&s.mu)
	for _, sp := range l.sealed {
		if sp.end <= from {
			continue
		}
		first := sp.first
		if first < from {
			first = from
		}
		recs := l.recs[first-l.base : sp.end-l.base]
		s.pages = append(s.pages, Page{FirstLSN: first, EndLSN: sp.end, Bytes: recsBytes(recs), Records: recs})
		s.pendingBytes += s.pages[len(s.pages)-1].Bytes
		s.pendingRecs += len(recs)
		s.next = sp.end
	}
	if s.next < l.openStart {
		s.next = l.openStart
	}
	l.subs[l.nextSub] = s
	l.nextSub++
	return s, nil
}

// TruncateBefore drops records below lsn (after they are snapshotted or
// uploaded) and advances the log base to lsn even when that skips past the
// end of the buffer — a replica bootstrapped from a snapshot starts its log
// at the snapshot position without holding any records.
func (l *Log) TruncateBefore(lsn uint64) {
	l.mu.Lock()
	if lsn > l.base {
		n := lsn - l.base
		if n >= uint64(len(l.recs)) {
			l.recs = nil
		} else {
			l.recs = append([]Record(nil), l.recs[n:]...)
		}
		l.base = lsn
		k := 0
		for _, sp := range l.sealed {
			if sp.end <= lsn {
				continue
			}
			if sp.first < lsn {
				sp.first = lsn
			}
			l.sealed[k] = sp
			k++
		}
		l.sealed = l.sealed[:k]
		if l.openStart < lsn {
			l.openStart = lsn
			l.openBytes = recsBytes(l.recs)
		}
	}
	l.mu.Unlock()
}

// EncodeRecords serializes records into a chunk for blob upload.
func EncodeRecords(recs []Record) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, r.LSN)
		buf = append(buf, byte(r.Kind))
		buf = binary.AppendUvarint(buf, r.CommitTS)
		buf = binary.AppendVarint(buf, r.Wall)
		buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	return buf
}

// DecodeRecords deserializes a chunk written by EncodeRecords. It is also
// the payload decoder for wire page frames, so it must stay safe on
// hostile input: the record count and every data length are validated
// against the remaining buffer before any allocation sized from them.
func DecodeRecords(buf []byte) ([]Record, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("wal: bad chunk header")
	}
	p := k
	// Each record occupies at least one byte, so a count beyond the
	// remaining buffer is corrupt — reject it before sizing the slice.
	if n > uint64(len(buf)-p) {
		return nil, fmt.Errorf("wal: record count %d exceeds chunk size %d", n, len(buf)-p)
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		lsn, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record lsn")
		}
		p += k
		if p >= len(buf) {
			return nil, fmt.Errorf("wal: truncated record kind")
		}
		kind := Kind(buf[p])
		p++
		ts, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record ts")
		}
		p += k
		wall, k := binary.Varint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record wall time")
		}
		p += k
		dl, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record data length")
		}
		p += k
		if dl > uint64(len(buf)-p) {
			return nil, fmt.Errorf("wal: truncated record data")
		}
		data := append([]byte(nil), buf[p:p+int(dl)]...)
		p += int(dl)
		recs = append(recs, Record{LSN: lsn, Kind: kind, CommitTS: ts, Wall: wall, Data: data})
	}
	if p != len(buf) {
		return nil, fmt.Errorf("wal: %d trailing bytes after records", len(buf)-p)
	}
	return recs, nil
}
