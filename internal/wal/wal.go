// Package wal implements the per-partition write-ahead log (§2.1.1, §3):
// an append-only record stream with replication watermarks, chunked upload
// of the durable prefix to blob storage, and snapshots that bound recovery
// time. Record payloads are opaque to the log; the table layer defines
// their encoding.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Kind tags a log record for the replaying layer.
type Kind uint8

// Record kinds used by the unified table storage. The WAL itself only
// requires them to be stable across serialize/replay.
const (
	// KindInsert is a row insert into the in-memory rowstore.
	KindInsert Kind = iota + 1
	// KindDelete is a row delete (tombstone) from the in-memory rowstore.
	KindDelete
	// KindFlush converts rowstore rows into a columnstore segment.
	KindFlush
	// KindMerge replaces segments with a merged segment.
	KindMerge
	// KindMove is the autonomous move transaction of §4.2: rows copied
	// from a segment into the rowstore with their deleted bits set.
	KindMove
	// KindMetaDelete updates only a segment's deleted bit vector.
	KindMetaDelete
	// KindCommit marks a transaction commit with its timestamp.
	KindCommit
)

// Record is one log entry. LSN is assigned by Append and is dense (the
// record index), which the chunking and replication layers rely on. Wall
// is the append wall-clock time in Unix nanoseconds: point-in-time restore
// maps a wall-clock target to a per-partition log position with it (§3.2),
// since commit timestamps are partition-local and not comparable across
// partitions.
type Record struct {
	LSN      uint64
	Kind     Kind
	CommitTS uint64
	Wall     int64
	Data     []byte
}

// Log is an append-only in-memory record log with a durable watermark.
// The watermark models §3's rule that only the fully durable and
// replicated prefix may be uploaded to blob storage.
type Log struct {
	mu      sync.Mutex
	recs    []Record
	base    uint64 // LSN of recs[0]; records below base were truncated
	durable uint64 // first non-durable LSN (all records < durable are durable)
	subs    map[int]*Subscription
	nextSub int
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{subs: make(map[int]*Subscription)}
}

// Append adds a record and returns its LSN. The record is immediately
// streamed to subscribers (replication replicates log pages early, before
// commit, §3).
func (l *Log) Append(kind Kind, commitTS uint64, data []byte) uint64 {
	l.mu.Lock()
	lsn := l.base + uint64(len(l.recs))
	rec := Record{LSN: lsn, Kind: kind, CommitTS: commitTS, Wall: time.Now().UnixNano(), Data: data}
	l.recs = append(l.recs, rec)
	for _, s := range l.subs {
		s.push(rec)
	}
	l.mu.Unlock()
	return lsn
}

// AppendRecord appends a fully-formed record (replication replay),
// preserving its wall time. The record's LSN must equal the log head.
func (l *Log) AppendRecord(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if head := l.base + uint64(len(l.recs)); rec.LSN != head {
		return fmt.Errorf("wal: AppendRecord LSN %d != head %d", rec.LSN, head)
	}
	l.recs = append(l.recs, rec)
	for _, s := range l.subs {
		s.push(rec)
	}
	return nil
}

// Head returns the next LSN to be assigned.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// Base returns the first retained LSN.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// MarkDurable advances the durable watermark to lsn (exclusive).
func (l *Log) MarkDurable(lsn uint64) {
	l.mu.Lock()
	if lsn > l.durable {
		l.durable = lsn
	}
	l.mu.Unlock()
}

// Durable returns the durable watermark (exclusive LSN).
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Records returns a copy of records with LSN in [from, to).
func (l *Log) Records(from, to uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, fmt.Errorf("wal: records from %d already truncated (base %d)", from, l.base)
	}
	end := l.base + uint64(len(l.recs))
	if to > end {
		to = end
	}
	if from >= to {
		return nil, nil
	}
	out := make([]Record, to-from)
	copy(out, l.recs[from-l.base:to-l.base])
	return out, nil
}

// Subscription is an unbounded ordered stream of log records. Appends never
// block on slow subscribers; subscribers pull with Next.
type Subscription struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Record
	closed  bool

	log *Log
	id  int
}

func (s *Subscription) push(rec Record) {
	s.mu.Lock()
	s.pending = append(s.pending, rec)
	s.cond.Signal()
	s.mu.Unlock()
}

// Next blocks until a record is available or the subscription is canceled;
// ok is false after cancellation once the backlog drains.
func (s *Subscription) Next() (rec Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.pending) == 0 {
		return Record{}, false
	}
	rec = s.pending[0]
	s.pending = s.pending[1:]
	return rec, true
}

// TryNext returns a pending record without blocking.
func (s *Subscription) TryNext() (rec Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return Record{}, false
	}
	rec = s.pending[0]
	s.pending = s.pending[1:]
	return rec, true
}

// Cancel detaches the subscription from the log and wakes blocked readers.
func (s *Subscription) Cancel() {
	s.log.mu.Lock()
	delete(s.log.subs, s.id)
	s.log.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Lag returns the number of records queued but not yet consumed, which the
// cluster reports as replication lag (Table 3 discussion).
func (s *Subscription) Lag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Subscribe streams every record with LSN >= from: the backlog first, then
// future appends, in LSN order.
func (l *Log) Subscribe(from uint64) (*Subscription, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, fmt.Errorf("wal: subscription from %d already truncated (base %d)", from, l.base)
	}
	s := &Subscription{log: l, id: l.nextSub}
	s.cond = sync.NewCond(&s.mu)
	s.pending = append(s.pending, l.recs[from-l.base:]...)
	l.subs[l.nextSub] = s
	l.nextSub++
	return s, nil
}

// TruncateBefore drops records below lsn (after they are snapshotted or
// uploaded) and advances the log base to lsn even when that skips past the
// end of the buffer — a replica bootstrapped from a snapshot starts its log
// at the snapshot position without holding any records.
func (l *Log) TruncateBefore(lsn uint64) {
	l.mu.Lock()
	if lsn > l.base {
		n := lsn - l.base
		if n >= uint64(len(l.recs)) {
			l.recs = nil
		} else {
			l.recs = append([]Record(nil), l.recs[n:]...)
		}
		l.base = lsn
	}
	l.mu.Unlock()
}

// EncodeRecords serializes records into a chunk for blob upload.
func EncodeRecords(recs []Record) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, r.LSN)
		buf = append(buf, byte(r.Kind))
		buf = binary.AppendUvarint(buf, r.CommitTS)
		buf = binary.AppendVarint(buf, r.Wall)
		buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	return buf
}

// DecodeRecords deserializes a chunk written by EncodeRecords.
func DecodeRecords(buf []byte) ([]Record, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, fmt.Errorf("wal: bad chunk header")
	}
	p := k
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		lsn, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record lsn")
		}
		p += k
		if p >= len(buf) {
			return nil, fmt.Errorf("wal: truncated record kind")
		}
		kind := Kind(buf[p])
		p++
		ts, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record ts")
		}
		p += k
		wall, k := binary.Varint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record wall time")
		}
		p += k
		dl, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("wal: bad record data length")
		}
		p += k
		if p+int(dl) > len(buf) {
			return nil, fmt.Errorf("wal: truncated record data")
		}
		data := append([]byte(nil), buf[p:p+int(dl)]...)
		p += int(dl)
		recs = append(recs, Record{LSN: lsn, Kind: kind, CommitTS: ts, Wall: wall, Data: data})
	}
	return recs, nil
}
