// Package core implements the paper's primary contribution: unified
// (universal) table storage (§4). A table is a columnstore LSM whose top
// level is an in-memory MVCC rowstore buffer; deletes are represented as
// bit vectors in segment metadata instead of tombstone records, so reads
// never pay merge-based reconciliation; secondary and unique keys are
// served by the two-level index of §4.1; and updates/deletes use move
// transactions with row-level locking (§4.2). One Table object manages one
// partition of one logical table.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/colstore"
	"s2db/internal/index"
	"s2db/internal/qos"
	"s2db/internal/rowstore"
	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// Config tunes one table partition.
type Config struct {
	// MaxSegmentRows caps segment size and sets the flush batch size.
	MaxSegmentRows int
	// FlushThreshold is the buffer row count at which the background
	// flusher converts rows to a segment. Defaults to MaxSegmentRows.
	FlushThreshold int
	// MergeFanout controls the LSM merge policy (§2.1.2).
	MergeFanout int
	// LockTimeout bounds row-lock and unique-key-lock waits.
	LockTimeout time.Duration
	// Background enables the flusher/merger goroutines when the table is
	// started.
	Background bool
	// BackgroundInterval is the poll interval of background work.
	BackgroundInterval time.Duration
	// CompactionGrace is how long tombstoned buffer nodes are retained for
	// old snapshots before physical removal. Readers must not use
	// snapshots older than this.
	CompactionGrace time.Duration
	// DecodedCache, when non-nil, is the shared decoded-vector cache the
	// execution layer serves scans from (exec.VecCache). The table's only
	// obligation is invalidation: it drops a segment's vectors when an LSM
	// merge retires the segment. Defined as an interface so core does not
	// depend on the execution layer. When the value also implements
	// VectorResidency the merge planner prefers cold runs, and when it
	// implements colstore.VectorSource the merger reuses resident decoded
	// vectors instead of re-decoding inputs.
	DecodedCache DecodedVectorCache
	// MergeWorkers bounds the goroutines that encode and persist merge
	// output segments in parallel (capped by the output count). Defaults
	// to 4.
	MergeWorkers int
	// MergeRowSort selects the legacy row-materializing merge algorithm
	// instead of the columnar k-way merge. Benchmark/ablation baseline
	// only.
	MergeRowSort bool
	// MergeHoldLock holds structMu across the whole merge (scan, sort,
	// encode, SaveFile) instead of only the install commit. Benchmark/
	// ablation baseline only.
	MergeHoldLock bool
	// DisableFusedKernels turns off the fused encoded-execution kernels
	// (span-space filters, single-pass filter→aggregate over RLE/dict
	// runs, metadata-only COUNT(*)) and restores the unfused three-pass
	// scan pipeline. Benchmark/ablation baseline only — fused kernels are
	// the default (the zero value).
	DisableFusedKernels bool
	// HydrationWorkers bounds the goroutines fetching and decoding stub
	// segment payloads after a lazy restore (parallel single-flight
	// FileStore loads). Defaults to 8.
	HydrationWorkers int
	// EagerHydration restores the pre-lazy behavior: RestoreState fetches
	// and decodes every segment payload before returning, so restore costs
	// segments × blob latency and full resident memory up front.
	// Benchmark/ablation baseline only — lazy hydration is the default
	// (the zero value).
	EagerHydration bool
	// QoS, when non-nil, is the multi-tenant governor merges lease their
	// I/O budget from (qos.MergeIO tokens ≈ bytes of merge output in
	// flight): a merge whose tenant is out of budget waits its turn, and
	// one shed at the queue cap skips the round — background maintenance
	// retries on its next tick. Nil leaves merges ungoverned.
	QoS *qos.Governor
	// QoSTenant is the tenant this partition's maintenance work is
	// accounted to: the workspace name for workspace replicas, the
	// reserved primary tenant otherwise.
	QoSTenant string
}

// DecodedVectorCache is the invalidation contract between table maintenance
// and the execution layer's decoded-vector cache: segment payloads are
// immutable, so retiring the segment is the only event that can stale a
// cached vector.
type DecodedVectorCache interface {
	InvalidateSegment(seg *colstore.Segment)
}

// VectorResidency is the optional cache-awareness contract: a decoded-vector
// cache that can report how "hot" a segment is (resident decoded bytes plus
// accumulated hits) lets the merge planner prefer cold runs, so merges
// invalidate as little cached work as possible.
type VectorResidency interface {
	SegmentHeat(seg *colstore.Segment) (residentBytes, hits int64)
}

func (c Config) withDefaults() Config {
	if c.MaxSegmentRows <= 0 {
		c.MaxSegmentRows = colstore.MaxSegmentRows
	}
	if c.FlushThreshold <= 0 {
		c.FlushThreshold = c.MaxSegmentRows
	}
	if c.MergeFanout < 2 {
		c.MergeFanout = 4
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	if c.BackgroundInterval <= 0 {
		c.BackgroundInterval = 2 * time.Millisecond
	}
	if c.CompactionGrace <= 0 {
		c.CompactionGrace = time.Second
	}
	if c.MergeWorkers <= 0 {
		c.MergeWorkers = 4
	}
	if c.HydrationWorkers <= 0 {
		c.HydrationWorkers = 8
	}
	return c
}

// FileStore persists segment data files. The cluster layer backs this with
// the local file cache plus blob staging; standalone tables use MemFiles.
type FileStore interface {
	SaveFile(name string, data []byte) error
	LoadFile(name string) ([]byte, error)
	RemoveFile(name string) error
}

// MemFiles is an in-memory FileStore for standalone tables and tests.
type MemFiles struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemFiles returns an empty in-memory file store.
func NewMemFiles() *MemFiles { return &MemFiles{m: make(map[string][]byte)} }

// SaveFile implements FileStore.
func (f *MemFiles) SaveFile(name string, data []byte) error {
	f.mu.Lock()
	f.m[name] = append([]byte(nil), data...)
	f.mu.Unlock()
	return nil
}

// LoadFile implements FileStore.
func (f *MemFiles) LoadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.m[name]
	if !ok {
		return nil, fmt.Errorf("memfiles: %s not found", name)
	}
	return d, nil
}

// RemoveFile implements FileStore.
func (f *MemFiles) RemoveFile(name string) error {
	f.mu.Lock()
	delete(f.m, name)
	f.mu.Unlock()
	return nil
}

// Committer serializes commit publication for one partition: a commit
// allocates the next timestamp, applies its effects, and publishes by
// advancing the partition oracle, so readers at ReadTS always see fully
// applied transactions (partition-local snapshot isolation, §2.1.2).
type Committer struct {
	mu     sync.Mutex
	oracle *txn.Oracle
}

// NewCommitter wraps a partition oracle.
func NewCommitter(o *txn.Oracle) *Committer { return &Committer{oracle: o} }

// Oracle returns the underlying oracle.
func (c *Committer) Oracle() *txn.Oracle { return c.oracle }

// Commit runs fn with the next commit timestamp and publishes it. fn must
// be short: it installs already-prepared state.
func (c *Committer) Commit(fn func(ts uint64)) uint64 {
	c.mu.Lock()
	ts := c.oracle.ReadTS() + 1
	fn(ts)
	c.oracle.AdvanceTo(ts)
	c.mu.Unlock()
	return ts
}

// ReplayAt runs fn under the commit mutex and publishes the recorded
// timestamp ts, used by log replay to reproduce original commit times.
func (c *Committer) ReplayAt(ts uint64, fn func()) {
	c.mu.Lock()
	fn()
	c.oracle.AdvanceTo(ts)
	c.mu.Unlock()
}

// segEntry tracks one segment's lifetime and its metadata version chain.
// The chain is the MVCC view of the mutable metadata the paper keeps in a
// durable rowstore table (§2.1.2): each deleted-bits update installs a new
// version at its commit timestamp.
type segEntry struct {
	createTS uint64
	dropTS   atomic.Uint64 // 0 while live
	versions atomic.Pointer[metaVersion]
	// remap is set when the segment is retired by a merge: it gives each
	// row offset its new location (off < 0 for rows deleted at merge time),
	// so a move transaction that committed after the merge can re-apply its
	// deleted bits ("the commit process applies all segment merges between
	// the scan timestamp and the commit timestamp of the move transaction",
	// §4.2). Indexed by old row offset.
	remap atomic.Pointer[[]remapTarget]
	// stub is true while the entry's segment is an unhydrated stub counted
	// in Table.unhydrated; hydration and drop race to CAS it off so the
	// counter decrements exactly once per stub.
	stub atomic.Bool
}

type remapTarget struct {
	seg uint64
	off int32 // < 0: the row had no surviving output location
}

type metaVersion struct {
	ts   uint64
	meta *colstore.Meta
	prev *metaVersion
}

// metaAt returns the metadata version visible at ts, or nil when the
// segment is not visible.
func (e *segEntry) metaAt(ts uint64) *colstore.Meta {
	if e.createTS > ts {
		return nil
	}
	if d := e.dropTS.Load(); d != 0 && d <= ts {
		return nil
	}
	for v := e.versions.Load(); v != nil; v = v.prev {
		if v.ts <= ts {
			return v.meta
		}
	}
	return nil
}

// latestMeta returns the newest metadata version.
func (e *segEntry) latestMeta() *colstore.Meta { return e.versions.Load().meta }

// Stats counts table operations for the experiment harness.
type Stats struct {
	Inserts, Updates, Deletes       atomic.Int64
	Flushes, Merges, Moves          atomic.Int64
	IndexProbes, SegmentsEliminated atomic.Int64
	DupConflicts                    atomic.Int64
	// MergeAborts counts merges abandoned because an output data file
	// failed to persist; saved outputs are deleted and the inputs stay
	// untouched, so the merge simply retries later.
	MergeAborts atomic.Int64
	// Hydrations counts stub segments whose payload the hydrator fetched
	// and decoded; HydrationErrors counts failed fetch/decode attempts
	// (the stub stays installed and the next demand retries).
	Hydrations      atomic.Int64
	HydrationErrors atomic.Int64

	mergeErr atomic.Pointer[string]
}

// LastMergeError returns the most recent merge-abort cause, or nil when no
// merge has failed.
func (s *Stats) LastMergeError() error {
	if p := s.mergeErr.Load(); p != nil {
		return errors.New(*p)
	}
	return nil
}

func (s *Stats) setMergeError(err error) {
	msg := err.Error()
	s.mergeErr.Store(&msg)
}

// Table is one partition of a unified-storage table.
type Table struct {
	name   string
	schema *types.Schema
	cfg    Config

	committer *Committer
	log       *wal.Log
	files     FileStore

	buffer *rowstore.Store
	uniq   *txn.LockManager
	idx    *index.Set

	// structMu serializes structural changes (flush, merge/move installs)
	// so move transactions and merges can be reordered safely (§4.2). It is
	// never held while waiting for user locks. A merge holds it only for
	// the install commit; the scan/merge/encode/save pipeline runs outside
	// it so flushes and foreground moves proceed during merges.
	structMu sync.Mutex

	// mergeMu serializes merge steps with each other: the off-structMu
	// pipeline assumes no concurrent merge retires its input segments.
	mergeMu sync.Mutex

	segMu   sync.RWMutex
	segs    map[uint64]*segEntry
	nextSeg atomic.Uint64
	nextRun atomic.Int64
	rowID   atomic.Uint64

	// hydr is the lazy-started stub-payload fetcher (see hydrate.go);
	// unhydrated counts live stub segments — zero means every index probe
	// sees every row, the fast path of ensureProbeReady.
	hydr       atomic.Pointer[hydrator]
	hydrOnce   sync.Once
	unhydrated atomic.Int64

	// Stats is exported for the benchmark harness.
	Stats Stats

	bg struct {
		stop chan struct{}
		wg   sync.WaitGroup
		once sync.Once
	}

	// tsHistory records (timestamp, wall time) pairs so compaction can pick
	// a keepTS that every plausible reader has moved past. Guarded by
	// structMu, as is lastCompact.
	tsHistory   []tsStamp
	lastCompact time.Time
}

type tsStamp struct {
	ts uint64
	at time.Time
}

// NewTable creates a table partition. committer and log are shared by all
// tables of the partition; files persists segment payloads.
func NewTable(name string, schema *types.Schema, cfg Config, committer *Committer, log *wal.Log, files FileStore) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("table %s: %w", name, err)
	}
	cfg = cfg.withDefaults()
	t := &Table{
		name:      name,
		schema:    schema,
		cfg:       cfg,
		committer: committer,
		log:       log,
		files:     files,
		buffer:    rowstore.NewStore(cfg.LockTimeout),
		uniq:      txn.NewLockManager(),
		idx:       index.NewSet(schema),
		segs:      make(map[uint64]*segEntry),
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Index exposes the secondary-index set (used by adaptive execution, §5).
func (t *Table) Index() *index.Set { return t.idx }

// Oracle returns the partition timestamp oracle.
func (t *Table) Oracle() *txn.Oracle { return t.committer.Oracle() }

// BufferLen returns the number of live rows in the in-memory buffer.
func (t *Table) BufferLen() int { return t.buffer.Len() }

// SegmentCount returns the number of live segments at the latest snapshot.
func (t *Table) SegmentCount() int {
	ts := t.committer.Oracle().ReadTS()
	t.segMu.RLock()
	defer t.segMu.RUnlock()
	n := 0
	for _, e := range t.segs {
		if e.metaAt(ts) != nil {
			n++
		}
	}
	return n
}

// bufferKey returns the skiplist key for a row: the unique key when one is
// declared, otherwise a hidden monotonically increasing row id.
func (t *Table) bufferKey(r types.Row) []byte {
	if len(t.schema.UniqueKey) > 0 {
		return types.KeyOf(r, t.schema.UniqueKey)
	}
	return types.EncodeKey(nil, types.NewInt(int64(t.rowID.Add(1))))
}

// View is a consistent snapshot of the table at one timestamp, combining
// the visible segments (with their deleted-bits versions as of TS) and the
// buffer contents at TS.
type View struct {
	TS     uint64
	Schema *types.Schema
	Segs   []*colstore.Meta
	table  *Table
}

// Snapshot returns a view at the latest published timestamp.
func (t *Table) Snapshot() *View { return t.SnapshotAt(t.committer.Oracle().ReadTS()) }

// SnapshotAt returns a view at the given timestamp.
func (t *Table) SnapshotAt(ts uint64) *View {
	t.segMu.RLock()
	segs := make([]*colstore.Meta, 0, len(t.segs))
	for _, e := range t.segs {
		if m := e.metaAt(ts); m != nil {
			segs = append(segs, m)
		}
	}
	t.segMu.RUnlock()
	// Segment order must be stable across snapshots (t.segs is a map):
	// scans emit rows in segment order, and query results are only
	// deterministic if every snapshot sees the same order.
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seg.ID < segs[j].Seg.ID })
	return &View{TS: ts, Schema: t.schema, Segs: segs, table: t}
}

// ScanBuffer iterates the live buffer rows at the view's snapshot.
func (v *View) ScanBuffer(f func(r types.Row) bool) {
	v.table.buffer.Scan(nil, nil, v.TS, func(_ []byte, r types.Row) bool { return f(r) })
}

// ScanBufferRange iterates live buffer rows with keys in [from, to) at the
// view's snapshot; nil bounds are open. Point and prefix probes use this to
// avoid walking the whole write buffer.
func (v *View) ScanBufferRange(from, to []byte, f func(r types.Row) bool) {
	v.table.buffer.Scan(from, to, v.TS, func(_ []byte, r types.Row) bool { return f(r) })
}

// Index exposes the table's secondary indexes. Callers must restrict index
// matches to segments present in the view.
func (v *View) Index() *index.Set { return v.table.idx }

// DecodedCache exposes the table's shared decoded-vector cache (nil when
// none is configured); the execution layer serves repeated segment decodes
// from it.
func (v *View) DecodedCache() DecodedVectorCache { return v.table.cfg.DecodedCache }

// FusedKernelsDisabled reports whether the table opted out of fused
// encoded-execution kernels (the DisableFusedKernels ablation knob).
func (v *View) FusedKernelsDisabled() bool { return v.table.cfg.DisableFusedKernels }

// HasSegment reports whether the given segment id is part of the view.
func (v *View) HasSegment(id uint64) bool {
	for _, m := range v.Segs {
		if m.Seg.ID == id {
			return true
		}
	}
	return false
}

// NumRows counts live rows in the view (buffer + segments minus deletes).
func (v *View) NumRows() int {
	n := 0
	for _, m := range v.Segs {
		n += m.LiveRows()
	}
	v.ScanBuffer(func(types.Row) bool { n++; return true })
	return n
}

// EnableBackground turns on background maintenance on a table created
// without it (a replica promoted to master, §2) and starts it.
func (t *Table) EnableBackground() {
	if t.cfg.Background {
		return
	}
	t.cfg.Background = true
	t.Start()
}

// Start launches the background flusher and merger when configured.
func (t *Table) Start() {
	if !t.cfg.Background || t.bg.stop != nil {
		return
	}
	t.bg.stop = make(chan struct{})
	t.bg.wg.Add(1)
	go func() {
		defer t.bg.wg.Done()
		ticker := time.NewTicker(t.cfg.BackgroundInterval)
		defer ticker.Stop()
		for {
			select {
			case <-t.bg.stop:
				return
			case <-ticker.C:
				if t.buffer.Len() >= t.cfg.FlushThreshold {
					t.Flush() //nolint:errcheck // background flush retries next tick
				}
				t.Merge()
				t.structMu.Lock()
				t.maybeCompact()
				t.structMu.Unlock()
			}
		}
	}()
}

// Close stops background work, including any hydration workers; blocked
// hydration waiters get ErrTableClosed.
func (t *Table) Close() {
	if t.bg.stop != nil {
		t.bg.once.Do(func() { close(t.bg.stop) })
		t.bg.wg.Wait()
	}
	if h := t.hydr.Load(); h != nil {
		h.stop()
	}
}
