package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"s2db/internal/bitmap"
	"s2db/internal/colstore"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// kv is one buffer write: a skiplist key and the row payload.
type kv struct {
	Key []byte
	Row types.Row
}

// segInstall describes a segment being added by a flush or merge record.
type segInstall struct {
	File     string
	Run      int
	Deleted  *bitmap.Bitmap // non-nil when the new segment starts with deletes (merge fixup)
	SegBytes []byte
}

// mutation is the single payload format for every table log record: buffer
// inserts, buffer tombstones, deleted-bit sets, segment installs and
// segment drops. The record kind describes intent (insert vs move vs merge)
// but replay semantics depend only on the payload, which keeps replicas and
// PITR simple.
type mutation struct {
	Table      string
	Inserts    []kv
	DeleteKeys [][]byte
	SegDeletes map[uint64][]int32
	NewSegs    []segInstall
	DropSegs   []uint64
}

func (m *mutation) encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(m.Table)))
	buf = append(buf, m.Table...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Inserts)))
	for _, e := range m.Inserts {
		buf = binary.AppendUvarint(buf, uint64(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = types.EncodeRow(buf, e.Row)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.DeleteKeys)))
	for _, k := range m.DeleteKeys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.SegDeletes)))
	segIDs := make([]uint64, 0, len(m.SegDeletes))
	for id := range m.SegDeletes {
		segIDs = append(segIDs, id)
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	for _, id := range segIDs {
		offs := m.SegDeletes[id]
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, uint64(len(offs)))
		for _, o := range offs {
			buf = binary.AppendUvarint(buf, uint64(o))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.NewSegs)))
	for _, s := range m.NewSegs {
		buf = binary.AppendUvarint(buf, uint64(len(s.File)))
		buf = append(buf, s.File...)
		buf = binary.AppendVarint(buf, int64(s.Run))
		if s.Deleted != nil {
			buf = append(buf, 1)
			buf = s.Deleted.AppendBinary(buf)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.SegBytes)))
		buf = append(buf, s.SegBytes...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.DropSegs)))
	for _, id := range m.DropSegs {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

func decodeMutation(buf []byte) (*mutation, error) {
	m := &mutation{SegDeletes: map[uint64][]int32{}}
	p := 0
	u := func() (uint64, error) {
		v, k := binary.Uvarint(buf[p:])
		if k <= 0 {
			return 0, fmt.Errorf("core: bad varint in mutation at %d", p)
		}
		p += k
		return v, nil
	}
	nl, err := u()
	if err != nil {
		return nil, err
	}
	if p+int(nl) > len(buf) {
		return nil, fmt.Errorf("core: truncated table name")
	}
	m.Table = string(buf[p : p+int(nl)])
	p += int(nl)
	n, err := u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		kl, err := u()
		if err != nil {
			return nil, err
		}
		if p+int(kl) > len(buf) {
			return nil, fmt.Errorf("core: truncated insert key")
		}
		key := append([]byte(nil), buf[p:p+int(kl)]...)
		p += int(kl)
		row, k, err := types.DecodeRow(buf[p:])
		if err != nil {
			return nil, err
		}
		p += k
		m.Inserts = append(m.Inserts, kv{Key: key, Row: row})
	}
	n, err = u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		kl, err := u()
		if err != nil {
			return nil, err
		}
		if p+int(kl) > len(buf) {
			return nil, fmt.Errorf("core: truncated delete key")
		}
		m.DeleteKeys = append(m.DeleteKeys, append([]byte(nil), buf[p:p+int(kl)]...))
		p += int(kl)
	}
	n, err = u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		id, err := u()
		if err != nil {
			return nil, err
		}
		cnt, err := u()
		if err != nil {
			return nil, err
		}
		offs := make([]int32, cnt)
		for j := range offs {
			o, err := u()
			if err != nil {
				return nil, err
			}
			offs[j] = int32(o)
		}
		m.SegDeletes[id] = offs
	}
	n, err = u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		fl, err := u()
		if err != nil {
			return nil, err
		}
		if p+int(fl) > len(buf) {
			return nil, fmt.Errorf("core: truncated file name")
		}
		file := string(buf[p : p+int(fl)])
		p += int(fl)
		run, k := binary.Varint(buf[p:])
		if k <= 0 {
			return nil, fmt.Errorf("core: bad run")
		}
		p += k
		if p >= len(buf) {
			return nil, fmt.Errorf("core: truncated deleted flag")
		}
		hasDel := buf[p] == 1
		p++
		var del *bitmap.Bitmap
		if hasDel {
			var n2 int
			del, n2, err = bitmap.Decode(buf[p:])
			if err != nil {
				return nil, err
			}
			p += n2
		}
		sl, err := u()
		if err != nil {
			return nil, err
		}
		if p+int(sl) > len(buf) {
			return nil, fmt.Errorf("core: truncated segment payload")
		}
		segBytes := append([]byte(nil), buf[p:p+int(sl)]...)
		p += int(sl)
		m.NewSegs = append(m.NewSegs, segInstall{File: file, Run: int(run), Deleted: del, SegBytes: segBytes})
	}
	n, err = u()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		id, err := u()
		if err != nil {
			return nil, err
		}
		m.DropSegs = append(m.DropSegs, id)
	}
	return m, nil
}

// encodeLog serializes a mutation record payload for this table. The
// encoding does not depend on the commit timestamp, so writers call it
// before entering Committer.Commit — the group-commit path keeps only the
// timestamped append inside the commit critical section, letting concurrent
// writers' records batch into one log page.
func (t *Table) encodeLog(m *mutation) []byte {
	m.Table = t.name
	return m.encode()
}

// appendEncoded appends a pre-encoded mutation payload; call inside
// Committer.Commit with the timestamp it allocated.
func (t *Table) appendEncoded(kind wal.Kind, ts uint64, payload []byte) uint64 {
	return t.log.Append(kind, ts, payload)
}

// appendLog serializes and appends a mutation record for this table in one
// step (replay-free paths that are not latency sensitive).
func (t *Table) appendLog(kind wal.Kind, ts uint64, m *mutation) uint64 {
	return t.appendEncoded(kind, ts, t.encodeLog(m))
}

// TableOfRecord extracts the table name from a log record payload, so a
// partition replayer can dispatch records to the right table.
func TableOfRecord(rec wal.Record) (string, error) {
	n, k := binary.Uvarint(rec.Data)
	if k <= 0 || k+int(n) > len(rec.Data) {
		return "", fmt.Errorf("core: bad record table header")
	}
	return string(rec.Data[k : k+int(n)]), nil
}

// Apply replays one log record against the table. It is used by recovery,
// replicas and PITR; the record's CommitTS becomes the visibility
// timestamp, and the partition oracle is advanced to it.
func (t *Table) Apply(rec wal.Record) error {
	m, err := decodeMutation(rec.Data)
	if err != nil {
		return fmt.Errorf("table %s: apply LSN %d: %w", t.name, rec.LSN, err)
	}
	ts := rec.CommitTS
	tx := t.buffer.Begin(ts - 1)
	for _, e := range m.Inserts {
		if _, err := tx.Insert(e.Key, e.Row); err != nil {
			tx.Abort()
			return fmt.Errorf("table %s: replay insert: %w", t.name, err)
		}
		t.noteRowID(e.Key)
	}
	for _, k := range m.DeleteKeys {
		if _, _, err := tx.DeleteLatest(k); err != nil {
			tx.Abort()
			return fmt.Errorf("table %s: replay delete: %w", t.name, err)
		}
	}
	// Decode new segments outside the commit section.
	installs := make([]*colstore.Segment, len(m.NewSegs))
	for i, s := range m.NewSegs {
		seg, err := colstore.Decode(s.SegBytes, t.schema)
		if err != nil {
			tx.Abort()
			return fmt.Errorf("table %s: replay segment: %w", t.name, err)
		}
		installs[i] = seg
		if err := t.files.SaveFile(s.File, s.SegBytes); err != nil {
			tx.Abort()
			return fmt.Errorf("table %s: replay file save: %w", t.name, err)
		}
	}
	t.committer.ReplayAt(ts, func() {
		for i, s := range m.NewSegs {
			t.installSegment(ts, installs[i], s.Run, s.File, s.Deleted)
		}
		t.applySegDeletes(ts, m.SegDeletes)
		for _, id := range m.DropSegs {
			t.dropSegment(ts, id)
		}
		tx.Commit(ts)
	})
	if rec.Kind == wal.KindFlush && len(m.DeleteKeys) > 0 {
		t.structMu.Lock()
		t.maybeCompact()
		t.structMu.Unlock()
	}
	return nil
}

// noteRowID keeps the hidden row-id allocator ahead of replayed keys so new
// writes never collide after recovery.
func (t *Table) noteRowID(key []byte) {
	if len(t.schema.UniqueKey) > 0 || len(key) != 9 || key[0] != 0x01 {
		return
	}
	var id uint64
	for _, b := range key[1:] {
		id = id<<8 | uint64(b)
	}
	id ^= 1 << 63
	for {
		cur := t.rowID.Load()
		if cur >= id || t.rowID.CompareAndSwap(cur, id) {
			return
		}
	}
}
