package core

import (
	"errors"
	"fmt"

	"s2db/internal/colstore"
	"s2db/internal/index"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// DupPolicy selects the unique-key conflict behaviour of §4.1.2.
type DupPolicy uint8

const (
	// DupError reports ErrDuplicateKey (the default).
	DupError DupPolicy = iota
	// DupSkip drops conflicting rows (SKIP DUPLICATE KEY ERRORS).
	DupSkip
	// DupReplace deletes the conflicting row and inserts the new one
	// (REPLACE).
	DupReplace
	// DupUpdate rewrites the conflicting row via the batch's update
	// callback (ON DUPLICATE KEY UPDATE).
	DupUpdate
)

// ErrDuplicateKey is returned by inserts violating a unique key under
// DupError.
var ErrDuplicateKey = errors.New("core: duplicate unique key")

// ErrNoUniqueKey is returned when a unique-key operation targets a table
// without one.
var ErrNoUniqueKey = errors.New("core: table has no unique key")

// InsertOptions tunes a batch insert.
type InsertOptions struct {
	OnDup DupPolicy
	// Update merges an incoming row into an existing one under DupUpdate.
	// nil means "take the incoming row".
	Update func(existing, incoming types.Row) types.Row
}

// InsertResult reports what a batch insert did.
type InsertResult struct {
	Inserted, Skipped, Replaced, Updated int
	// LSN is the log record's sequence number; the cluster layer waits on
	// it for replication durability.
	LSN uint64
	// CommitTS is the transaction's publish timestamp.
	CommitTS uint64
}

// Insert adds one row with default options.
func (t *Table) Insert(row types.Row) error {
	_, err := t.InsertBatch([]types.Row{row}, InsertOptions{})
	return err
}

// Upsert adds one row, updating the existing row on unique-key conflict.
func (t *Table) Upsert(row types.Row) error {
	_, err := t.InsertBatch([]types.Row{row}, InsertOptions{OnDup: DupUpdate})
	return err
}

// InsertBatch ingests rows with unique-key enforcement (§4.1.2): it locks
// the unique key values in the in-memory lock manager, probes the secondary
// index (and buffer) for duplicates, applies the configured conflict
// policy, and commits buffer writes plus any deleted-bit updates as one
// transaction.
func (t *Table) InsertBatch(rows []types.Row, opts InsertOptions) (InsertResult, error) {
	var res InsertResult
	for _, r := range rows {
		if err := t.schema.CheckRow(r); err != nil {
			return res, err
		}
	}
	uk := t.schema.UniqueKey
	if len(uk) == 0 {
		// No unique key: straight buffer inserts.
		tx := t.buffer.Begin(t.committer.Oracle().ReadTS())
		m := &mutation{}
		for _, r := range rows {
			key := t.bufferKey(r)
			if _, err := tx.Insert(key, r); err != nil {
				tx.Abort()
				return res, fmt.Errorf("insert %s: %w", t.name, err)
			}
			m.Inserts = append(m.Inserts, kv{Key: key, Row: r})
		}
		payload := t.encodeLog(m)
		res.CommitTS = t.committer.Commit(func(ts uint64) {
			tx.Commit(ts)
			res.LSN = t.appendEncoded(wal.KindInsert, ts, payload)
		})
		res.Inserted = len(rows)
		t.Stats.Inserts.Add(int64(len(rows)))
		return res, nil
	}

	// Duplicate detection probes the secondary index, which only covers
	// hydrated segments — block until a lazily-restored table is fully
	// resident (one atomic load once it is).
	if err := t.ensureProbeReady(); err != nil {
		return res, fmt.Errorf("insert %s: %w", t.name, err)
	}

	// Step 1 (§4.1.2): lock the unique key values for the whole batch.
	hashes := make([]uint64, len(rows))
	keyVals := make([][]types.Value, len(rows))
	for i, r := range rows {
		vals := make([]types.Value, len(uk))
		for j, c := range uk {
			v := r[c]
			if v.IsNull {
				return res, fmt.Errorf("insert %s: unique key column %q is null", t.name, t.schema.Columns[c].Name)
			}
			vals[j] = v
		}
		keyVals[i] = vals
		hashes[i] = index.HashTuple(vals)
	}
	release, err := t.uniq.Acquire(hashes, t.cfg.LockTimeout)
	if err != nil {
		return res, fmt.Errorf("insert %s: %w", t.name, err)
	}
	defer release()

	// Step 2: probe for duplicates in segments (via the index) and buffer.
	type hit struct {
		inBuffer bool
		segID    uint64
		segOff   int32
	}
	readTS := t.committer.Oracle().ReadTS()
	view := t.SnapshotAt(readTS)
	dups := make([]*hit, len(rows))
	// Also detect duplicates *within* the batch.
	seen := make(map[string]int, len(rows))
	for i, vals := range keyVals {
		k := string(types.EncodeKey(nil, vals...))
		if _, dupInBatch := seen[k]; dupInBatch {
			switch opts.OnDup {
			case DupError:
				t.Stats.DupConflicts.Add(1)
				return res, fmt.Errorf("%w: within batch", ErrDuplicateKey)
			default:
				// Later occurrences resolve against the earlier ones once
				// they are applied; mark by probing again below.
			}
		}
		seen[k] = i
		if _, ok := t.buffer.Get([]byte(k), readTS); ok {
			dups[i] = &hit{inBuffer: true}
			continue
		}
		matches, probes := t.idx.LookupTuple(uk, vals)
		t.Stats.IndexProbes.Add(int64(probes))
		for _, m := range matches {
			if loc, ok := t.liveMatch(view, m); ok {
				dups[i] = &hit{segID: m.SegID, segOff: loc}
				break
			}
		}
	}
	if opts.OnDup == DupError {
		for _, d := range dups {
			if d != nil {
				t.Stats.DupConflicts.Add(1)
				return res, ErrDuplicateKey
			}
		}
	}

	// Step 3: move conflicting segment rows to the buffer so the update or
	// replace happens under row locks (§4.2), then apply the batch.
	var moves []segLoc
	for i, d := range dups {
		if d != nil && !d.inBuffer && opts.OnDup != DupSkip {
			moves = append(moves, segLoc{seg: d.segID, off: d.segOff, key: types.EncodeKey(nil, keyVals[i]...)})
		}
	}
	if len(moves) > 0 {
		if err := t.moveToBuffer(moves); err != nil {
			return res, fmt.Errorf("insert %s: move: %w", t.name, err)
		}
	}

	tx := t.buffer.Begin(readTS)
	m := &mutation{}
	for i, r := range rows {
		key := types.EncodeKey(nil, keyVals[i]...)
		// Re-probe the buffer for the latest state (a move may have landed
		// the conflicting row here, or an earlier batch row inserted it).
		existing, exists, err := tx.LockAndGet(key)
		if err != nil {
			tx.Abort()
			return res, fmt.Errorf("insert %s: lock: %w", t.name, err)
		}
		if !exists && dups[i] != nil && opts.OnDup == DupSkip {
			// The duplicate lives in a segment; skip the incoming row.
			res.Skipped++
			continue
		}
		if !exists && dups[i] != nil && (opts.OnDup == DupReplace || opts.OnDup == DupUpdate) {
			// The conflicting row was in the buffer at probe time but a
			// concurrent flush moved it into a segment before we locked it.
			// Re-locate at a fresh snapshot, move it back under our lock,
			// and re-read.
			view := t.SnapshotAt(t.committer.Oracle().ReadTS())
			matches, probes := t.idx.LookupTuple(uk, keyVals[i])
			t.Stats.IndexProbes.Add(int64(probes))
			for _, mm := range matches {
				if off, live := t.liveMatch(view, mm); live {
					if err := t.moveToBuffer([]segLoc{{seg: mm.SegID, off: off, key: key}}); err != nil {
						tx.Abort()
						return res, fmt.Errorf("insert %s: move: %w", t.name, err)
					}
					break
				}
			}
			existing, exists, err = tx.LockAndGet(key)
			if err != nil {
				tx.Abort()
				return res, fmt.Errorf("insert %s: relock: %w", t.name, err)
			}
		}
		if exists {
			switch opts.OnDup {
			case DupError:
				tx.Abort()
				t.Stats.DupConflicts.Add(1)
				return res, ErrDuplicateKey
			case DupSkip:
				res.Skipped++
				continue
			case DupReplace:
				if _, err := tx.Insert(key, r); err != nil {
					tx.Abort()
					return res, err
				}
				m.Inserts = append(m.Inserts, kv{Key: key, Row: r})
				res.Replaced++
				continue
			case DupUpdate:
				nr := r
				if opts.Update != nil {
					nr = opts.Update(existing, r)
				}
				if _, err := tx.Insert(key, nr); err != nil {
					tx.Abort()
					return res, err
				}
				m.Inserts = append(m.Inserts, kv{Key: key, Row: nr})
				res.Updated++
				continue
			}
		}
		if _, err := tx.Insert(key, r); err != nil {
			tx.Abort()
			return res, err
		}
		m.Inserts = append(m.Inserts, kv{Key: key, Row: r})
		res.Inserted++
	}
	if len(m.Inserts) == 0 {
		tx.Abort()
		return res, nil
	}
	payload := t.encodeLog(m)
	res.CommitTS = t.committer.Commit(func(ts uint64) {
		tx.Commit(ts)
		res.LSN = t.appendEncoded(wal.KindInsert, ts, payload)
	})
	t.Stats.Inserts.Add(int64(res.Inserted))
	t.Stats.Updates.Add(int64(res.Updated + res.Replaced))
	return res, nil
}

// liveMatch returns the first row offset of an index match that is visible
// in the view (not deleted, segment present).
func (t *Table) liveMatch(view *View, m index.Match) (int32, bool) {
	for _, meta := range view.Segs {
		if meta.Seg.ID != m.SegID {
			continue
		}
		for _, off := range m.Rows {
			if !meta.Deleted.Get(int(off)) {
				return off, true
			}
		}
		return 0, false
	}
	return 0, false
}

// BulkLoad ingests rows directly into columnstore segments, bypassing the
// buffer — the batch-load path that keeps data "only in highly compressed
// columnstore format" (§7's contrast with TiDB). Unique keys are checked
// against existing data under DupError only.
func (t *Table) BulkLoad(rows []types.Row) error {
	for _, r := range rows {
		if err := t.schema.CheckRow(r); err != nil {
			return err
		}
	}
	if len(rows) == 0 {
		return nil
	}
	if len(t.schema.UniqueKey) > 0 {
		// See InsertBatch: index probes need every segment hydrated.
		if err := t.ensureProbeReady(); err != nil {
			return fmt.Errorf("bulk load %s: %w", t.name, err)
		}
		seen := make(map[string]struct{}, len(rows))
		readTS := t.committer.Oracle().ReadTS()
		view := t.SnapshotAt(readTS)
		for _, r := range rows {
			k := string(types.KeyOf(r, t.schema.UniqueKey))
			if _, dup := seen[k]; dup {
				return fmt.Errorf("%w: within bulk load", ErrDuplicateKey)
			}
			seen[k] = struct{}{}
			if _, ok := t.buffer.Get([]byte(k), readTS); ok {
				return ErrDuplicateKey
			}
			vals := make([]types.Value, len(t.schema.UniqueKey))
			for j, c := range t.schema.UniqueKey {
				vals[j] = r[c]
			}
			matches, _ := t.idx.LookupTuple(t.schema.UniqueKey, vals)
			for _, m := range matches {
				if _, live := t.liveMatch(view, m); live {
					return ErrDuplicateKey
				}
			}
		}
	}
	t.structMu.Lock()
	defer t.structMu.Unlock()
	for start := 0; start < len(rows); start += t.cfg.MaxSegmentRows {
		end := start + t.cfg.MaxSegmentRows
		if end > len(rows) {
			end = len(rows)
		}
		b := colstore.NewBuilder(t.schema)
		for _, r := range rows[start:end] {
			b.Add(r)
		}
		segID := t.nextSeg.Add(1) - 1
		seg := b.Build(segID)
		run := int(t.nextRun.Add(1) - 1)
		file := fmt.Sprintf("%s/seg-%08d-lp%08d", t.name, segID, t.log.Head())
		segBytes := seg.Encode()
		if err := t.files.SaveFile(file, segBytes); err != nil {
			return fmt.Errorf("bulk load %s: %w", t.name, err)
		}
		payload := t.encodeLog(&mutation{
			NewSegs: []segInstall{{File: file, Run: run, SegBytes: segBytes}},
		})
		t.committer.Commit(func(ts uint64) {
			t.installSegment(ts, seg, run, file, nil)
			t.appendEncoded(wal.KindFlush, ts, payload)
		})
	}
	t.Stats.Inserts.Add(int64(len(rows)))
	return nil
}
