package core

import (
	"testing"

	"s2db/internal/types"
)

// A row updated while living in a segment is moved to the buffer and then
// overwritten by an update transaction whose snapshot predates the move.
// The buffer's live counter must see exactly one live row through that
// sequence — over-counting leaves BufferLen() > 0 forever after every row
// has been flushed, which livelocks flush-until-empty loops (cluster.Flush).
func TestBufferDrainsAfterSegmentRowUpdate(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8, MergeFanout: 4})
	for i := 0; i < 8; i++ {
		if err := tbl.Insert(urow(i, i, "a")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tbl.BufferLen() != 0 {
		t.Fatalf("BufferLen after flush = %d, want 0", tbl.BufferLen())
	}
	n, err := tbl.UpdateWhere(Eq(0, types.NewInt(3)), func(r types.Row) types.Row {
		r[1] = types.NewInt(999)
		return r
	})
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if got := tbl.BufferLen(); got != 1 {
		t.Fatalf("BufferLen after segment-row update = %d, want 1 (moved row)", got)
	}
	for i := 0; tbl.BufferLen() > 0; i++ {
		if i >= 4 {
			t.Fatalf("buffer will not drain: BufferLen=%d after %d flushes", tbl.BufferLen(), i)
		}
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := mustCount(t, tbl); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	row, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(3)})
	if err != nil || !ok || row[1].I != 999 {
		t.Fatalf("updated row: ok=%v err=%v row=%v", ok, err, row)
	}
}
