package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"s2db/internal/bitmap"
	"s2db/internal/colstore"
	"s2db/internal/qos"
	"s2db/internal/rowstore"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// mergeAdmissionWait bounds how long one merge round waits for its
// tenant's merge-I/O lease before giving the tick back to the
// background loop.
const mergeAdmissionWait = 2 * time.Second

// installSegment adds a segment entry visible from ts. Callers run inside
// the commit/replay critical section. Unhydrated stubs (lazy restore) defer
// their secondary-index registration to hydration — the index can only be
// built from column values — and are counted so index probes know to wait.
func (t *Table) installSegment(ts uint64, seg *colstore.Segment, run int, file string, deleted *bitmap.Bitmap) {
	meta := colstore.NewMeta(seg, run, file)
	if deleted != nil {
		meta = meta.CloneWithDeleted(deleted.Clone())
	}
	e := &segEntry{createTS: ts}
	e.versions.Store(&metaVersion{ts: ts, meta: meta})
	hydrated := seg.Hydrated()
	if !hydrated {
		e.stub.Store(true)
		t.unhydrated.Add(1)
	}
	t.segMu.Lock()
	t.segs[seg.ID] = e
	if seg.ID >= t.nextSeg.Load() {
		t.nextSeg.Store(seg.ID + 1)
	}
	if int64(run) >= t.nextRun.Load() {
		t.nextRun.Store(int64(run) + 1)
	}
	t.segMu.Unlock()
	if hydrated {
		t.idx.AddSegment(seg)
	}
}

// dropSegment retires a segment at ts (after a merge). The decoded-vector
// cache drops the segment's vectors immediately; a scan at an older
// snapshot that is still reading the segment stays correct (segment
// payloads are immutable) and anything it re-inserts is reclaimed by
// normal LRU pressure.
func (t *Table) dropSegment(ts uint64, id uint64) {
	t.segMu.RLock()
	e := t.segs[id]
	t.segMu.RUnlock()
	if e == nil {
		return
	}
	e.dropTS.Store(ts)
	t.idx.DropSegment(id)
	// A stub dropped before hydration leaves the live-stub count: the
	// CAS loses against a concurrent hydration, so the counter decrements
	// exactly once either way.
	if e.stub.CompareAndSwap(true, false) {
		t.unhydrated.Add(-1)
	}
	if t.cfg.DecodedCache != nil {
		t.cfg.DecodedCache.InvalidateSegment(e.latestMeta().Seg)
	}
}

// applySegDeletes installs new deleted-bits versions at ts for the given
// (segment, offsets) sets, chasing merge remaps when a target segment was
// retired between the caller's scan and this commit (§4.2). Callers run
// inside the commit/replay critical section.
func (t *Table) applySegDeletes(ts uint64, segDel map[uint64][]int32) {
	if len(segDel) == 0 {
		return
	}
	// Resolve remapped targets level by level until every offset lands in a
	// live segment. A worklist (rather than per-segment recursion) is
	// required for correctness, not just style: two chase branches can
	// legitimately funnel offsets into the same retired segment (fan-in
	// across chained merges), so batches must merge instead of being
	// deduplicated away. Each level only reaches segments created by a
	// strictly later merge, so a well-formed remap graph terminates within
	// len(t.segs) levels; the depth guard turns a corrupt cyclic graph into
	// dropped offsets instead of an unbounded loop.
	t.segMu.RLock()
	maxDepth := len(t.segs) + 1
	t.segMu.RUnlock()
	resolved := make(map[uint64][]int32, len(segDel))
	pending := segDel
	for depth := 0; len(pending) > 0 && depth < maxDepth; depth++ {
		next := map[uint64][]int32{}
		for id, offs := range pending {
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			if e == nil {
				continue
			}
			if e.dropTS.Load() == 0 {
				resolved[id] = append(resolved[id], offs...)
				continue
			}
			rm := e.remap.Load()
			if rm == nil {
				continue // dropped with no survivors: rows already gone
			}
			for _, o := range offs {
				if int(o) < len(*rm) {
					if tgt := (*rm)[o]; tgt.off >= 0 {
						next[tgt.seg] = append(next[tgt.seg], tgt.off)
					}
				}
			}
		}
		pending = next
	}
	for id, offs := range resolved {
		t.segMu.RLock()
		e := t.segs[id]
		t.segMu.RUnlock()
		if e == nil {
			continue
		}
		cur := e.latestMeta()
		nd := cur.Deleted.Clone()
		for _, o := range offs {
			nd.Set(int(o))
		}
		e.versions.Store(&metaVersion{ts: ts, meta: cur.CloneWithDeleted(nd), prev: e.versions.Load()})
	}
}

// Flush converts up to MaxSegmentRows buffered rows into a columnstore
// segment in a single transaction (§2.1.2): the rows are tombstoned in the
// buffer and the segment installed at the same commit timestamp, so logical
// table contents never change. Rows locked by active writers are skipped.
// It returns the number of rows flushed.
func (t *Table) Flush() (int, error) {
	t.structMu.Lock()
	defer t.structMu.Unlock()
	readTS := t.committer.Oracle().ReadTS()
	var keys [][]byte
	t.buffer.Scan(nil, nil, readTS, func(k []byte, _ types.Row) bool {
		keys = append(keys, append([]byte(nil), k...))
		return len(keys) < t.cfg.MaxSegmentRows
	})
	if len(keys) == 0 {
		return 0, nil
	}
	tx := t.buffer.Begin(readTS)
	builder := colstore.NewBuilder(t.schema)
	var delKeys [][]byte
	for _, k := range keys {
		row, existed, err := tx.TryDeleteLatest(k)
		if err == rowstore.ErrRowLocked || !existed && err == nil {
			continue // busy or concurrently deleted; next flush gets it
		}
		if err != nil {
			tx.Abort()
			return 0, fmt.Errorf("flush %s: %w", t.name, err)
		}
		builder.Add(row.Clone())
		delKeys = append(delKeys, k)
	}
	if builder.Len() == 0 {
		tx.Abort()
		return 0, nil
	}
	segID := t.nextSeg.Add(1) - 1
	seg := builder.Build(segID)
	run := int(t.nextRun.Add(1) - 1)
	file := fmt.Sprintf("%s/seg-%08d-lp%08d", t.name, segID, t.log.Head())
	segBytes := seg.Encode()
	if err := t.files.SaveFile(file, segBytes); err != nil {
		tx.Abort()
		return 0, fmt.Errorf("flush %s: save file: %w", t.name, err)
	}
	n := seg.NumRows
	payload := t.encodeLog(&mutation{
		DeleteKeys: delKeys,
		NewSegs:    []segInstall{{File: file, Run: run, SegBytes: segBytes}},
	})
	t.committer.Commit(func(ts uint64) {
		t.installSegment(ts, seg, run, file, nil)
		tx.Commit(ts)
		t.appendEncoded(wal.KindFlush, ts, payload)
	})
	t.Stats.Flushes.Add(1)
	t.maybeCompact()
	return n, nil
}

// Merge runs one step of the background merger (§2.1.2): when the LSM has
// too many sorted runs it merges them into new segments, preserving logical
// contents. Deletes that commit between the merge's scan and its install
// are re-applied via the deleted-bits diff, so merges never block update or
// delete transactions (§4.2). It reports whether a merge happened.
//
// Only the install commit runs under structMu. The expensive part — the
// columnar k-way merge, output encoding, and data-file writes — runs
// outside it, which is safe because segment payloads and captured deleted
// bitmaps are immutable (deletes install *new* meta versions, and the
// install diff re-applies them), flushes only create new runs, and mergeMu
// keeps a second merge from retiring our inputs. Output segments build and
// persist on cfg.MergeWorkers goroutines.
func (t *Table) Merge() bool {
	t.mergeMu.Lock()
	defer t.mergeMu.Unlock()
	if t.cfg.MergeHoldLock {
		// Ablation baseline: the pre-restructure lock scope.
		t.structMu.Lock()
		defer t.structMu.Unlock()
	}

	readTS := t.committer.Oracle().ReadTS()
	// Gather live segments per run at the scan snapshot.
	t.segMu.RLock()
	runSizes := map[int]int{}
	byRun := map[int][]uint64{}
	runSegs := map[int][]*colstore.Segment{}
	for id, e := range t.segs {
		m := e.metaAt(readTS)
		if m == nil || e.dropTS.Load() != 0 {
			continue
		}
		runSizes[m.Run] += m.LiveRows()
		byRun[m.Run] = append(byRun[m.Run], id)
		runSegs[m.Run] = append(runSegs[m.Run], m.Seg)
	}
	t.segMu.RUnlock()
	// Cache-aware planning: score each run by its decoded-vector cache
	// footprint so ties prefer cold runs and merges keep their hands off
	// the hottest cached vectors.
	var heat map[int]int64
	if vr, ok := t.cfg.DecodedCache.(VectorResidency); ok {
		heat = make(map[int]int64, len(runSegs))
		for run, segs := range runSegs {
			for _, seg := range segs {
				bytes, hits := vr.SegmentHeat(seg)
				heat[run] += bytes + 1024*hits
			}
		}
	}
	plan := colstore.PickMerge(runSizes, t.cfg.MergeFanout, heat)
	if plan == nil {
		return false
	}

	// QoS admission: lease merge-I/O budget (≈ output bytes in flight)
	// from this partition's tenant before the expensive build/persist
	// phase. A shed — or a tenant so contended the lease doesn't clear
	// within the bounded wait — skips the round; background maintenance
	// retries on its next tick, which is exactly the throttling the
	// governor wants.
	if t.cfg.QoS != nil {
		var est int64
		for _, run := range plan.Runs {
			est += int64(runSizes[run])
		}
		est *= int64(len(t.schema.Columns)) * 8
		if est < 1 {
			est = 1
		}
		ctx, cancel := context.WithTimeout(context.Background(), mergeAdmissionWait)
		lease, _, err := t.cfg.QoS.AcquireUpTo(ctx, t.cfg.QoSTenant, qos.MergeIO, est/4+1, est)
		cancel()
		if err != nil {
			return false
		}
		defer lease.Release()
	}

	// Scan phase: capture each input's meta (payload + deleted bitmap) so
	// the install phase can diff deletes that land while we merge. The
	// captured bitmaps are immutable — later deletes clone into new meta
	// versions — so reading them off-lock is safe.
	runs := make([][]*colstore.Meta, 0, len(plan.Runs))
	for _, run := range plan.Runs {
		metas := make([]*colstore.Meta, 0, len(byRun[run]))
		for _, id := range byRun[run] {
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			metas = append(metas, e.latestMeta())
		}
		runs = append(runs, metas)
	}
	// Merging reads input payloads: demand-hydrate any stubs in the plan
	// (parallel on the hydration workers) before the k-way merge starts. A
	// failed fetch abandons this merge attempt; the inputs stay untouched
	// and a later merge retries.
	if t.unhydrated.Load() != 0 {
		h := t.hydrator()
		for _, metas := range runs {
			if err := h.waitAll(context.Background(), metas); err != nil {
				t.Stats.setMergeError(fmt.Errorf("merge %s: %w", t.name, err))
				return false
			}
		}
	}
	var merger colstore.Merger
	if t.cfg.MergeRowSort {
		// Ablation baseline: materialize rows and resort.
		merger = colstore.NewRowSortMerge(runs, t.schema, t.cfg.MaxSegmentRows)
	} else {
		var src colstore.VectorSource
		if s, ok := t.cfg.DecodedCache.(colstore.VectorSource); ok {
			src = s
		}
		merger = colstore.NewKMerge(runs, t.schema, t.cfg.MaxSegmentRows, src)
	}
	inputs := merger.Inputs()

	// Allocate output identities up front: ids ascend in key order so
	// SnapshotAt's sort-by-ID keeps scan order deterministic.
	newRun := int(t.nextRun.Add(1) - 1)
	nOut := merger.NumOutputs()
	outs := make([]*colstore.Segment, nOut)
	outBytes := make([][]byte, nOut)
	files := make([]string, nOut)
	ids := make([]uint64, nOut)
	logHead := t.log.Head()
	for i := range files {
		ids[i] = t.nextSeg.Add(1) - 1
		files[i] = fmt.Sprintf("%s/seg-%08d-lp%08d", t.name, ids[i], logHead)
	}

	// Build, encode, and persist outputs in parallel.
	workers := t.cfg.MergeWorkers
	if workers > nOut {
		workers = nOut
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		saved    = make([]atomic.Bool, nOut)
		work     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				seg := merger.BuildOutput(i, ids[i])
				b := seg.Encode()
				if err := t.files.SaveFile(files[i], b); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("merge %s: save %s: %w", t.name, files[i], err)
					}
					errMu.Unlock()
					continue
				}
				outs[i] = seg
				outBytes[i] = b
				saved[i].Store(true)
			}
		}()
	}
	for i := 0; i < nOut; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		// Abort: delete every output that made it to the store so a failed
		// merge leaks no orphan blobs, record the cause, and leave the
		// inputs untouched for a later retry.
		for i := range files {
			if saved[i].Load() {
				t.files.RemoveFile(files[i]) //nolint:errcheck // best-effort cleanup on abort
			}
		}
		t.Stats.MergeAborts.Add(1)
		t.Stats.setMergeError(firstErr)
		return false
	}

	// Translate the merger's chunk-relative remaps into segment-id remaps.
	outLocs := merger.Remaps()
	remaps := make([][]remapTarget, len(inputs))
	for i, locs := range outLocs {
		rt := make([]remapTarget, len(locs))
		for j, l := range locs {
			if l.Seg < 0 {
				rt[j] = remapTarget{off: -1}
			} else {
				rt[j] = remapTarget{seg: ids[l.Seg], off: l.Off}
			}
		}
		remaps[i] = rt
	}
	outIdxByID := make(map[uint64]int, nOut)
	for i, id := range ids {
		outIdxByID[id] = i
	}

	if !t.cfg.MergeHoldLock {
		t.structMu.Lock()
		defer t.structMu.Unlock()
	}
	inputIDs := make([]uint64, len(inputs))
	t.committer.Commit(func(ts uint64) {
		// Diff: deletes that landed after our scan must carry over to the
		// new segments (§4.2's reordering rule, applied from the merge's
		// side).
		carried := make([]*bitmap.Bitmap, nOut) // per output index
		for i, m := range inputs {
			id := m.Seg.ID
			inputIDs[i] = id
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			nowDel := e.latestMeta().Deleted
			was := m.Deleted
			rt := remaps[i]
			nowDel.Range(func(r int) bool {
				if !was.Get(r) {
					if tgt := rt[r]; tgt.off >= 0 {
						bi := outIdxByID[tgt.seg]
						if carried[bi] == nil {
							carried[bi] = bitmap.New(outs[bi].NumRows)
						}
						carried[bi].Set(int(tgt.off))
					}
				}
				return true
			})
		}
		var installs []segInstall
		for i, seg := range outs {
			t.installSegment(ts, seg, newRun, files[i], carried[i])
			installs = append(installs, segInstall{File: files[i], Run: newRun, Deleted: carried[i], SegBytes: outBytes[i]})
		}
		for i, m := range inputs {
			t.segMu.RLock()
			e := t.segs[m.Seg.ID]
			t.segMu.RUnlock()
			rm := remaps[i]
			e.remap.Store(&rm)
			t.dropSegment(ts, m.Seg.ID)
		}
		t.appendLog(wal.KindMerge, ts, &mutation{NewSegs: installs, DropSegs: inputIDs})
	})
	t.Stats.Merges.Add(1)
	return true
}

// maybeCompact physically removes tombstoned buffer nodes left behind by
// flushes and trims MVCC version chains, once they are older than the
// compaction grace period. Callers hold structMu.
func (t *Table) maybeCompact() {
	now := time.Now()
	t.tsHistory = append(t.tsHistory, tsStamp{ts: t.committer.Oracle().ReadTS(), at: now})
	// Find the newest timestamp published at least a grace period ago.
	var keepTS uint64
	cut := 0
	for i, s := range t.tsHistory {
		if now.Sub(s.at) >= t.cfg.CompactionGrace {
			keepTS = s.ts
			cut = i
		} else {
			break
		}
	}
	t.tsHistory = t.tsHistory[cut:]
	if keepTS == 0 || now.Sub(t.lastCompact) < t.cfg.CompactionGrace/4 {
		return
	}
	t.lastCompact = now
	t.buffer.Compact(keepTS)
}
