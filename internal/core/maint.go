package core

import (
	"fmt"
	"sort"
	"time"

	"s2db/internal/bitmap"
	"s2db/internal/colstore"
	"s2db/internal/rowstore"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// installSegment adds a segment entry visible from ts. Callers run inside
// the commit/replay critical section.
func (t *Table) installSegment(ts uint64, seg *colstore.Segment, run int, file string, deleted *bitmap.Bitmap) {
	meta := colstore.NewMeta(seg, run, file)
	if deleted != nil {
		meta = meta.CloneWithDeleted(deleted.Clone())
	}
	e := &segEntry{createTS: ts}
	e.versions.Store(&metaVersion{ts: ts, meta: meta})
	t.segMu.Lock()
	t.segs[seg.ID] = e
	if seg.ID >= t.nextSeg.Load() {
		t.nextSeg.Store(seg.ID + 1)
	}
	if int64(run) >= t.nextRun.Load() {
		t.nextRun.Store(int64(run) + 1)
	}
	t.segMu.Unlock()
	t.idx.AddSegment(seg)
}

// dropSegment retires a segment at ts (after a merge). The decoded-vector
// cache drops the segment's vectors immediately; a scan at an older
// snapshot that is still reading the segment stays correct (segment
// payloads are immutable) and anything it re-inserts is reclaimed by
// normal LRU pressure.
func (t *Table) dropSegment(ts uint64, id uint64) {
	t.segMu.RLock()
	e := t.segs[id]
	t.segMu.RUnlock()
	if e == nil {
		return
	}
	e.dropTS.Store(ts)
	t.idx.DropSegment(id)
	if t.cfg.DecodedCache != nil {
		t.cfg.DecodedCache.InvalidateSegment(e.latestMeta().Seg)
	}
}

// applySegDeletes installs new deleted-bits versions at ts for the given
// (segment, offsets) sets, chasing merge remaps when a target segment was
// retired between the caller's scan and this commit (§4.2). Callers run
// inside the commit/replay critical section.
func (t *Table) applySegDeletes(ts uint64, segDel map[uint64][]int32) {
	if len(segDel) == 0 {
		return
	}
	// Resolve remapped targets until every offset lands in a live segment.
	resolved := make(map[uint64][]int32, len(segDel))
	var resolve func(id uint64, offs []int32)
	resolve = func(id uint64, offs []int32) {
		t.segMu.RLock()
		e := t.segs[id]
		t.segMu.RUnlock()
		if e == nil {
			return
		}
		if e.dropTS.Load() == 0 {
			resolved[id] = append(resolved[id], offs...)
			return
		}
		rm := e.remap.Load()
		if rm == nil {
			return // dropped with no survivors: rows already gone
		}
		next := map[uint64][]int32{}
		for _, o := range offs {
			if tgt, ok := (*rm)[o]; ok {
				next[tgt.seg] = append(next[tgt.seg], tgt.off)
			}
		}
		for nid, noffs := range next {
			resolve(nid, noffs)
		}
	}
	for id, offs := range segDel {
		resolve(id, offs)
	}
	for id, offs := range resolved {
		t.segMu.RLock()
		e := t.segs[id]
		t.segMu.RUnlock()
		if e == nil {
			continue
		}
		cur := e.latestMeta()
		nd := cur.Deleted.Clone()
		for _, o := range offs {
			nd.Set(int(o))
		}
		e.versions.Store(&metaVersion{ts: ts, meta: cur.CloneWithDeleted(nd), prev: e.versions.Load()})
	}
}

// Flush converts up to MaxSegmentRows buffered rows into a columnstore
// segment in a single transaction (§2.1.2): the rows are tombstoned in the
// buffer and the segment installed at the same commit timestamp, so logical
// table contents never change. Rows locked by active writers are skipped.
// It returns the number of rows flushed.
func (t *Table) Flush() (int, error) {
	t.structMu.Lock()
	defer t.structMu.Unlock()
	readTS := t.committer.Oracle().ReadTS()
	var keys [][]byte
	t.buffer.Scan(nil, nil, readTS, func(k []byte, _ types.Row) bool {
		keys = append(keys, append([]byte(nil), k...))
		return len(keys) < t.cfg.MaxSegmentRows
	})
	if len(keys) == 0 {
		return 0, nil
	}
	tx := t.buffer.Begin(readTS)
	builder := colstore.NewBuilder(t.schema)
	var delKeys [][]byte
	for _, k := range keys {
		row, existed, err := tx.TryDeleteLatest(k)
		if err == rowstore.ErrRowLocked || !existed && err == nil {
			continue // busy or concurrently deleted; next flush gets it
		}
		if err != nil {
			tx.Abort()
			return 0, fmt.Errorf("flush %s: %w", t.name, err)
		}
		builder.Add(row.Clone())
		delKeys = append(delKeys, k)
	}
	if builder.Len() == 0 {
		tx.Abort()
		return 0, nil
	}
	segID := t.nextSeg.Add(1) - 1
	seg := builder.Build(segID)
	run := int(t.nextRun.Add(1) - 1)
	file := fmt.Sprintf("%s/seg-%08d-lp%08d", t.name, segID, t.log.Head())
	segBytes := seg.Encode()
	if err := t.files.SaveFile(file, segBytes); err != nil {
		tx.Abort()
		return 0, fmt.Errorf("flush %s: save file: %w", t.name, err)
	}
	n := seg.NumRows
	payload := t.encodeLog(&mutation{
		DeleteKeys: delKeys,
		NewSegs:    []segInstall{{File: file, Run: run, SegBytes: segBytes}},
	})
	t.committer.Commit(func(ts uint64) {
		t.installSegment(ts, seg, run, file, nil)
		tx.Commit(ts)
		t.appendEncoded(wal.KindFlush, ts, payload)
	})
	t.Stats.Flushes.Add(1)
	t.maybeCompact()
	return n, nil
}

// Merge runs one step of the background merger (§2.1.2): when the LSM has
// too many sorted runs it merges them into new segments, preserving logical
// contents. Deletes that commit between the merge's scan and its install
// are re-applied via the deleted-bits diff, so merges never block update or
// delete transactions (§4.2). It reports whether a merge happened.
func (t *Table) Merge() bool {
	t.structMu.Lock()
	defer t.structMu.Unlock()

	readTS := t.committer.Oracle().ReadTS()
	// Gather live segments per run at the scan snapshot.
	t.segMu.RLock()
	runSizes := map[int]int{}
	byRun := map[int][]uint64{}
	for id, e := range t.segs {
		m := e.metaAt(readTS)
		if m == nil || e.dropTS.Load() != 0 {
			continue
		}
		runSizes[m.Run] += m.LiveRows()
		byRun[m.Run] = append(byRun[m.Run], id)
	}
	t.segMu.RUnlock()
	plan := colstore.PickMerge(runSizes, t.cfg.MergeFanout)
	if plan == nil {
		return false
	}

	// Scan phase: collect live rows with their origins, remembering the
	// deleted bitmaps we read so the install phase can diff against them.
	type origin struct {
		seg uint64
		off int32
	}
	var rows []types.Row
	var origins []origin
	scanned := map[uint64]*bitmap.Bitmap{}
	var inputIDs []uint64
	for _, run := range plan.Runs {
		for _, id := range byRun[run] {
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			m := e.latestMeta()
			scanned[id] = m.Deleted
			inputIDs = append(inputIDs, id)
			for i := 0; i < m.Seg.NumRows; i++ {
				if !m.Deleted.Get(i) {
					rows = append(rows, m.Seg.RowAt(i))
					origins = append(origins, origin{seg: id, off: int32(i)})
				}
			}
		}
	}
	// Sort rows (with origins) by the sort key.
	if t.schema.SortKey >= 0 {
		k := []int{t.schema.SortKey}
		idxs := make([]int, len(rows))
		for i := range idxs {
			idxs[i] = i
		}
		sortByKey(idxs, rows, k)
		nr := make([]types.Row, len(rows))
		no := make([]origin, len(origins))
		for i, j := range idxs {
			nr[i], no[i] = rows[j], origins[j]
		}
		rows, origins = nr, no
	}

	// Build output segments and the remap from old locations to new.
	maxRows := t.cfg.MaxSegmentRows
	type outSeg struct {
		seg   *colstore.Segment
		run   int
		file  string
		bytes []byte
	}
	var outs []outSeg
	remaps := map[uint64]map[int32]remapTarget{}
	for _, id := range inputIDs {
		remaps[id] = map[int32]remapTarget{}
	}
	newRun := int(t.nextRun.Add(1) - 1)
	for start := 0; start < len(rows); start += maxRows {
		end := start + maxRows
		if end > len(rows) {
			end = len(rows)
		}
		segID := t.nextSeg.Add(1) - 1
		seg := colstore.BuildSegment(segID, t.schema, rows[start:end])
		file := fmt.Sprintf("%s/seg-%08d-lp%08d", t.name, segID, t.log.Head())
		bytes := seg.Encode()
		if err := t.files.SaveFile(file, bytes); err != nil {
			return false // leave inputs untouched; retry later
		}
		for i := start; i < end; i++ {
			o := origins[i]
			remaps[o.seg][o.off] = remapTarget{seg: segID, off: int32(i - start)}
		}
		outs = append(outs, outSeg{seg: seg, run: newRun, file: file, bytes: bytes})
	}

	t.committer.Commit(func(ts uint64) {
		// Diff: deletes that landed after our scan must carry over to the
		// new segments (§4.2's reordering rule, applied from the merge's
		// side).
		carried := map[uint64]*bitmap.Bitmap{} // new seg id -> deleted bits
		for _, id := range inputIDs {
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			nowDel := e.latestMeta().Deleted
			was := scanned[id]
			nowDel.Range(func(i int) bool {
				if !was.Get(i) {
					if tgt, ok := remaps[id][int32(i)]; ok {
						bm := carried[tgt.seg]
						if bm == nil {
							// Sized lazily per target segment below.
							for _, o := range outs {
								if o.seg.ID == tgt.seg {
									bm = bitmap.New(o.seg.NumRows)
								}
							}
							carried[tgt.seg] = bm
						}
						bm.Set(int(tgt.off))
					}
				}
				return true
			})
		}
		var installs []segInstall
		for _, o := range outs {
			t.installSegment(ts, o.seg, o.run, o.file, carried[o.seg.ID])
			del := carried[o.seg.ID]
			installs = append(installs, segInstall{File: o.file, Run: o.run, Deleted: del, SegBytes: o.bytes})
		}
		for _, id := range inputIDs {
			t.segMu.RLock()
			e := t.segs[id]
			t.segMu.RUnlock()
			rm := remaps[id]
			e.remap.Store(&rm)
			t.dropSegment(ts, id)
		}
		t.appendLog(wal.KindMerge, ts, &mutation{NewSegs: installs, DropSegs: inputIDs})
	})
	t.Stats.Merges.Add(1)
	return true
}

// sortByKey stable-sorts idxs by rows[idx] under the key ordinals.
func sortByKey(idxs []int, rows []types.Row, key []int) {
	sort.SliceStable(idxs, func(a, b int) bool {
		return types.CompareRows(rows[idxs[a]], rows[idxs[b]], key) < 0
	})
}

// maybeCompact physically removes tombstoned buffer nodes left behind by
// flushes and trims MVCC version chains, once they are older than the
// compaction grace period. Callers hold structMu.
func (t *Table) maybeCompact() {
	now := time.Now()
	t.tsHistory = append(t.tsHistory, tsStamp{ts: t.committer.Oracle().ReadTS(), at: now})
	// Find the newest timestamp published at least a grace period ago.
	var keepTS uint64
	cut := 0
	for i, s := range t.tsHistory {
		if now.Sub(s.at) >= t.cfg.CompactionGrace {
			keepTS = s.ts
			cut = i
		} else {
			break
		}
	}
	t.tsHistory = t.tsHistory[cut:]
	if keepTS == 0 || now.Sub(t.lastCompact) < t.cfg.CompactionGrace/4 {
		return
	}
	t.lastCompact = now
	t.buffer.Compact(keepTS)
}
