package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// newTestTable builds a standalone table with its own partition machinery.
func newTestTable(t *testing.T, schema *types.Schema, cfg Config) (*Table, *wal.Log) {
	t.Helper()
	log := wal.NewLog()
	tbl, err := NewTable("t", schema, cfg, NewCommitter(&txn.Oracle{}), log, NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	return tbl, log
}

func uniqSchema() *types.Schema {
	s := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "val", Type: types.Int64},
		types.Column{Name: "tag", Type: types.String},
	)
	s.UniqueKey = []int{0}
	s.SecondaryKeys = [][]int{{2}}
	return s
}

func plainSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Int64},
	)
}

func urow(id, val int, tag string) types.Row {
	return types.Row{types.NewInt(int64(id)), types.NewInt(int64(val)), types.NewString(tag)}
}

func mustCount(t *testing.T, tbl *Table) int {
	t.Helper()
	return tbl.Snapshot().NumRows()
}

func TestInsertAndGetByUnique(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{})
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(urow(i, i*10, "x")); err != nil {
			t.Fatal(err)
		}
	}
	r, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(7)})
	if err != nil || !ok || r[1].I != 70 {
		t.Fatalf("GetByUnique = %v, %v, %v", r, ok, err)
	}
	if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(99)}); ok {
		t.Fatal("phantom row")
	}
	if got := mustCount(t, tbl); got != 10 {
		t.Fatalf("NumRows = %d", got)
	}
}

func TestDuplicateKeyPolicies(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{})
	if err := tbl.Insert(urow(1, 10, "a")); err != nil {
		t.Fatal(err)
	}
	// DupError.
	if err := tbl.Insert(urow(1, 20, "b")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup insert = %v", err)
	}
	// DupSkip.
	res, err := tbl.InsertBatch([]types.Row{urow(1, 20, "b"), urow(2, 30, "c")}, InsertOptions{OnDup: DupSkip})
	if err != nil || res.Skipped != 1 || res.Inserted != 1 {
		t.Fatalf("skip batch = %+v, %v", res, err)
	}
	r, _, _ := tbl.GetByUnique([]types.Value{types.NewInt(1)})
	if r[1].I != 10 {
		t.Fatal("skip overwrote the row")
	}
	// DupReplace.
	res, err = tbl.InsertBatch([]types.Row{urow(1, 99, "z")}, InsertOptions{OnDup: DupReplace})
	if err != nil || res.Replaced != 1 {
		t.Fatalf("replace = %+v, %v", res, err)
	}
	r, _, _ = tbl.GetByUnique([]types.Value{types.NewInt(1)})
	if r[1].I != 99 {
		t.Fatal("replace did not take effect")
	}
	// DupUpdate with a merge callback.
	res, err = tbl.InsertBatch([]types.Row{urow(1, 1, "u")}, InsertOptions{
		OnDup: DupUpdate,
		Update: func(old, in types.Row) types.Row {
			out := old.Clone()
			out[1] = types.NewInt(old[1].I + in[1].I)
			return out
		},
	})
	if err != nil || res.Updated != 1 {
		t.Fatalf("upsert = %+v, %v", res, err)
	}
	r, _, _ = tbl.GetByUnique([]types.Value{types.NewInt(1)})
	if r[1].I != 100 {
		t.Fatalf("upsert value = %d, want 100", r[1].I)
	}
	if got := mustCount(t, tbl); got != 2 {
		t.Fatalf("NumRows = %d", got)
	}
}

func TestUniqueEnforcedAcrossFlush(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 4})
	for i := 0; i < 8; i++ {
		if err := tbl.Insert(urow(i, i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tbl.SegmentCount() == 0 {
		t.Fatal("flush produced no segment")
	}
	// Duplicate against a row now living in a segment.
	if err := tbl.Insert(urow(3, 0, "y")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup vs segment = %v", err)
	}
	// Replace against a segment row triggers a move transaction.
	moves := tbl.Stats.Moves.Load()
	res, err := tbl.InsertBatch([]types.Row{urow(3, 333, "y")}, InsertOptions{OnDup: DupReplace})
	if err != nil || res.Replaced != 1 {
		t.Fatalf("replace vs segment = %+v, %v", res, err)
	}
	if tbl.Stats.Moves.Load() <= moves {
		t.Fatal("replace of a segment row should use a move transaction")
	}
	r, _, _ := tbl.GetByUnique([]types.Value{types.NewInt(3)})
	if r[1].I != 333 {
		t.Fatalf("replaced value = %d", r[1].I)
	}
	if got := mustCount(t, tbl); got != 8 {
		t.Fatalf("NumRows = %d after replace", got)
	}
}

func TestFlushPreservesContents(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 100})
	want := map[int64]int64{}
	for i := 0; i < 50; i++ {
		tbl.Insert(urow(i, i*2, fmt.Sprintf("t%d", i%5)))
		want[int64(i)] = int64(i * 2)
	}
	n, err := tbl.Flush()
	if err != nil || n != 50 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	if tbl.BufferLen() != 0 {
		t.Fatalf("buffer still has %d rows", tbl.BufferLen())
	}
	view := tbl.Snapshot()
	got := map[int64]int64{}
	for _, m := range view.Segs {
		for i := 0; i < m.Seg.NumRows; i++ {
			if !m.Deleted.Get(i) {
				r := m.Seg.RowAt(i)
				got[r[0].I] = r[1].I
			}
		}
	}
	view.ScanBuffer(func(r types.Row) bool { got[r[0].I] = r[1].I; return true })
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %d = %d, want %d", k, got[k], v)
		}
	}
	// Old snapshots still see the buffer layout.
	old := tbl.SnapshotAt(1)
	cnt := 0
	old.ScanBuffer(func(types.Row) bool { cnt++; return true })
	if cnt != 1 || len(old.Segs) != 0 {
		t.Fatalf("snapshot at ts=1: %d buffer rows, %d segs", cnt, len(old.Segs))
	}
}

func TestUpdateWhereBufferAndSegment(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 10})
	for i := 0; i < 10; i++ {
		tbl.Insert(urow(i, 0, "x"))
	}
	tbl.Flush()
	for i := 10; i < 15; i++ {
		tbl.Insert(urow(i, 0, "x")) // these stay in the buffer
	}
	n, err := tbl.UpdateWhere(
		Where{Col: -1, Pred: func(r types.Row) bool { return r[0].I%2 == 0 }},
		func(r types.Row) types.Row { r[1] = types.NewInt(777); return r },
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 { // 0,2,4,6,8 in segment + 10,12,14 in buffer
		t.Fatalf("updated %d rows, want 8", n)
	}
	for i := 0; i < 15; i++ {
		r, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))})
		if !ok {
			t.Fatalf("row %d lost", i)
		}
		want := int64(0)
		if i%2 == 0 {
			want = 777
		}
		if r[1].I != want {
			t.Fatalf("row %d val = %d, want %d", i, r[1].I, want)
		}
	}
	if got := mustCount(t, tbl); got != 15 {
		t.Fatalf("NumRows = %d", got)
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 10})
	for i := 0; i < 10; i++ {
		tbl.Insert(urow(i, i, "x"))
	}
	tbl.Flush()
	n, err := tbl.DeleteWhere(Where{Col: -1, Pred: func(r types.Row) bool { return r[0].I < 4 }})
	if err != nil || n != 4 {
		t.Fatalf("DeleteWhere = %d, %v", n, err)
	}
	if got := mustCount(t, tbl); got != 6 {
		t.Fatalf("NumRows = %d", got)
	}
	if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(2)}); ok {
		t.Fatal("deleted row still visible")
	}
	// Reinsert a deleted key.
	if err := tbl.Insert(urow(2, 22, "x")); err != nil {
		t.Fatal(err)
	}
	r, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(2)})
	if !ok || r[1].I != 22 {
		t.Fatalf("reinserted row = %v, %v", r, ok)
	}
}

func TestDeleteByIndexedColumn(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 10})
	for i := 0; i < 10; i++ {
		tag := "keep"
		if i%3 == 0 {
			tag = "drop"
		}
		tbl.Insert(urow(i, i, tag))
	}
	tbl.Flush()
	n, err := tbl.DeleteWhere(Eq(2, types.NewString("drop")))
	if err != nil || n != 4 {
		t.Fatalf("DeleteWhere(tag=drop) = %d, %v", n, err)
	}
	rows := tbl.LookupEqual(2, types.NewString("drop"))
	if len(rows) != 0 {
		t.Fatalf("LookupEqual after delete = %v", rows)
	}
	if len(tbl.LookupEqual(2, types.NewString("keep"))) != 6 {
		t.Fatal("keep rows wrong")
	}
}

func TestMergePreservesContentsAndAppliesConcurrentDeletes(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 16, MergeFanout: 2})
	// Create several runs via repeated flushes.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(batch*8+i, batch, "x"))
		}
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := mustCount(t, tbl)
	if !tbl.Merge() {
		t.Fatal("merge should have run")
	}
	if got := mustCount(t, tbl); got != before {
		t.Fatalf("merge changed row count: %d -> %d", before, got)
	}
	// Verify all rows still reachable by unique key.
	for i := 0; i < 32; i++ {
		if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))}); !ok {
			t.Fatalf("row %d lost after merge", i)
		}
	}
	if tbl.Stats.Merges.Load() != 1 {
		t.Fatalf("Merges = %d", tbl.Stats.Merges.Load())
	}
}

func TestMoveRemapAfterMerge(t *testing.T) {
	// A delete that targets a segment which has been merged away must chase
	// the remap and land on the merged segment.
	schema := uniqSchema()
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 16, MergeFanout: 2})
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(batch*8+i, batch, "x"))
		}
		tbl.Flush()
	}
	// Record old segment ids, then merge.
	view := tbl.Snapshot()
	oldSeg := view.Segs[0].Seg.ID
	oldOff := int32(0)
	oldRow := view.Segs[0].Seg.RowAt(0)
	if !tbl.Merge() {
		t.Fatal("merge expected")
	}
	// Apply a delete addressed at the *old* location, as a racing move
	// would after losing the reorder race.
	tbl.committer.Commit(func(ts uint64) {
		tbl.applySegDeletes(ts, map[uint64][]int32{oldSeg: {oldOff}})
	})
	if _, ok, _ := tbl.GetByUnique([]types.Value{oldRow[0]}); ok {
		t.Fatal("remapped delete did not take effect")
	}
	if got := mustCount(t, tbl); got != 15 {
		t.Fatalf("NumRows = %d, want 15", got)
	}
}

func TestBulkLoad(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8})
	rows := make([]types.Row, 20)
	for i := range rows {
		rows[i] = urow(i, i, "bulk")
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.BufferLen() != 0 {
		t.Fatal("bulk load must bypass the buffer")
	}
	if tbl.SegmentCount() != 3 { // ceil(20/8)
		t.Fatalf("SegmentCount = %d", tbl.SegmentCount())
	}
	if got := mustCount(t, tbl); got != 20 {
		t.Fatalf("NumRows = %d", got)
	}
	// Unique keys enforced against bulk-loaded data.
	if err := tbl.Insert(urow(5, 0, "dup")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("dup vs bulk = %v", err)
	}
	if err := tbl.BulkLoad([]types.Row{urow(5, 0, "dup")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("bulk dup = %v", err)
	}
}

func TestHiddenRowIDTables(t *testing.T) {
	tbl, _ := newTestTable(t, plainSchema(), Config{MaxSegmentRows: 8})
	for i := 0; i < 10; i++ {
		tbl.Insert(types.Row{types.NewInt(int64(i % 3)), types.NewInt(int64(i))})
	}
	tbl.Flush()
	// Delete by predicate on a non-indexed column.
	n, err := tbl.DeleteWhere(Where{Col: -1, Pred: func(r types.Row) bool { return r[0].I == 1 }})
	if err != nil || n != 3 {
		t.Fatalf("DeleteWhere = %d, %v", n, err)
	}
	if got := mustCount(t, tbl); got != 7 {
		t.Fatalf("NumRows = %d", got)
	}
}

func TestConcurrentInsertsUniqueKeys(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 64})
	const writers = 8
	const per = 100
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tbl.Insert(urow(w*per+i, i, "c")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := mustCount(t, tbl); got != writers*per {
		t.Fatalf("NumRows = %d, want %d", got, writers*per)
	}
}

func TestConcurrentUpsertSameKey(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{})
	tbl.Insert(urow(1, 0, "x"))
	const workers, iters = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := tbl.InsertBatch([]types.Row{urow(1, 1, "x")}, InsertOptions{
					OnDup:  DupUpdate,
					Update: func(old, in types.Row) types.Row { out := old.Clone(); out[1] = types.NewInt(old[1].I + 1); return out },
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	r, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(1)})
	if !ok || r[1].I != workers*iters {
		t.Fatalf("counter = %v, want %d", r, workers*iters)
	}
}

func TestConcurrentWritesWithBackgroundFlushAndMerge(t *testing.T) {
	schema := uniqSchema()
	tbl, _ := newTestTable(t, schema, Config{
		MaxSegmentRows: 32, FlushThreshold: 32, MergeFanout: 2,
		Background: true,
	})
	tbl.Start()
	defer tbl.Close()
	const writers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := w*per + i
				if err := tbl.Insert(urow(id, id, "bg")); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if i%10 == 0 {
					// Point update through the unique key.
					tbl.UpdateWhere(Eq(0, types.NewInt(int64(id))), func(r types.Row) types.Row {
						r[1] = types.NewInt(r[1].I + 1000000)
						return r
					})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := mustCount(t, tbl); got != writers*per {
		t.Fatalf("NumRows = %d, want %d", got, writers*per)
	}
	// Every row reachable and updated rows have the bump.
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			id := w*per + i
			r, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(id))})
			if !ok {
				t.Fatalf("row %d lost", id)
			}
			want := int64(id)
			if i%10 == 0 {
				want += 1000000
			}
			if r[1].I != want {
				t.Fatalf("row %d = %d, want %d", id, r[1].I, want)
			}
		}
	}
}

func TestReplayReconstructsTable(t *testing.T) {
	schema := uniqSchema()
	tbl, log := newTestTable(t, schema, Config{MaxSegmentRows: 8, MergeFanout: 2})
	for i := 0; i < 30; i++ {
		tbl.Insert(urow(i, i, fmt.Sprintf("t%d", i%3)))
		if i%8 == 7 {
			tbl.Flush()
		}
	}
	tbl.Merge()
	tbl.DeleteWhere(Eq(2, types.NewString("t0")))
	tbl.UpdateWhere(Eq(2, types.NewString("t1")), func(r types.Row) types.Row {
		r[1] = types.NewInt(-1)
		return r
	})

	// Replay the full log into a fresh table.
	replica, err := NewTable("t", schema, Config{MaxSegmentRows: 8}, NewCommitter(&txn.Oracle{}), wal.NewLog(), NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := log.Records(0, log.Head())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := replica.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	assertSameContents(t, tbl, replica)
}

func assertSameContents(t *testing.T, a, b *Table) {
	t.Helper()
	dump := func(tbl *Table) map[string]int {
		// The raw RowAt reads below bypass the scan layer's demand-hydration
		// gate, so force full hydration first (no-op on never-restored tables).
		if err := tbl.WaitHydrated(context.Background()); err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		view := tbl.Snapshot()
		add := func(r types.Row) {
			out[fmt.Sprint(r)]++
		}
		view.ScanBuffer(func(r types.Row) bool { add(r); return true })
		for _, m := range view.Segs {
			for i := 0; i < m.Seg.NumRows; i++ {
				if !m.Deleted.Get(i) {
					add(m.Seg.RowAt(i))
				}
			}
		}
		return out
	}
	da, db := dump(a), dump(b)
	if len(da) != len(db) {
		t.Fatalf("contents differ: %d vs %d distinct rows", len(da), len(db))
	}
	for k, v := range da {
		if db[k] != v {
			t.Fatalf("row %s: count %d vs %d", k, v, db[k])
		}
	}
}

func TestSnapshotStateRoundTrip(t *testing.T) {
	schema := uniqSchema()
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 8})
	for i := 0; i < 20; i++ {
		tbl.Insert(urow(i, i, "s"))
		if i == 9 {
			tbl.Flush()
		}
	}
	ts := tbl.Oracle().ReadTS()
	state := tbl.SerializeState(ts)

	restored, err := NewTable("t", schema, Config{MaxSegmentRows: 8}, NewCommitter(&txn.Oracle{}), wal.NewLog(), tbl.files)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(state, ts); err != nil {
		t.Fatal(err)
	}
	assertSameContents(t, tbl, restored)
	// Restored table accepts new writes without key collisions.
	if err := restored.Insert(urow(100, 1, "post")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolationDuringMutation(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8})
	for i := 0; i < 8; i++ {
		tbl.Insert(urow(i, 0, "x"))
	}
	tbl.Flush()
	view := tbl.Snapshot() // snapshot before the delete
	n, _ := tbl.DeleteWhere(All())
	if n != 8 {
		t.Fatalf("deleted %d", n)
	}
	// The old view still sees all rows.
	cnt := 0
	for _, m := range view.Segs {
		cnt += m.LiveRows()
	}
	view.ScanBuffer(func(types.Row) bool { cnt++; return true })
	if cnt != 8 {
		t.Fatalf("old snapshot sees %d rows, want 8", cnt)
	}
	if got := mustCount(t, tbl); got != 0 {
		t.Fatalf("latest snapshot sees %d rows", got)
	}
}
