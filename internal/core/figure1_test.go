package core

import (
	"strings"
	"testing"

	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// TestFigure1Walkthrough replays the paper's Figure 1 step by step and
// checks the durable structures it illustrates:
//
//	(a) inserting rows 1,2,3 in two transactions → log records, rows in
//	    the in-memory rowstore;
//	(b) flushing converts rows 1,2,3 into segment 1 — the data file is
//	    named after the log page it was created at, and the same
//	    transaction removes the rows from the rowstore;
//	(c) deleting row 2 only logs a metadata change (the deleted bit
//	    vector); the data file itself is immutable.
func TestFigure1Walkthrough(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.String},
	)
	schema.UniqueKey = []int{0}
	log := wal.NewLog()
	files := NewMemFiles()
	tbl, err := NewTable("t", schema, Config{MaxSegmentRows: 16}, NewCommitter(&txn.Oracle{}), log, files)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Two insert transactions.
	if _, err := tbl.InsertBatch([]types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("b")},
	}, InsertOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(types.Row{types.NewInt(3), types.NewString("c")}); err != nil {
		t.Fatal(err)
	}
	recs, _ := log.Records(0, log.Head())
	if len(recs) != 2 || recs[0].Kind != wal.KindInsert || recs[1].Kind != wal.KindInsert {
		t.Fatalf("step (a): log = %+v, want two insert records", recs)
	}
	if tbl.BufferLen() != 3 || tbl.SegmentCount() != 0 {
		t.Fatalf("step (a): buffer=%d segments=%d", tbl.BufferLen(), tbl.SegmentCount())
	}
	flushLP := log.Head() // the log page the flush will be named after

	// (b) Flush: rows become segment 1; rowstore emptied in the same
	// transaction; the data file logically exists at its log position.
	n, err := tbl.Flush()
	if err != nil || n != 3 {
		t.Fatalf("step (b): flush = %d, %v", n, err)
	}
	if tbl.BufferLen() != 0 || tbl.SegmentCount() != 1 {
		t.Fatalf("step (b): buffer=%d segments=%d", tbl.BufferLen(), tbl.SegmentCount())
	}
	view := tbl.Snapshot()
	fileName := view.Segs[0].File
	if !strings.Contains(fileName, "lp") {
		t.Fatalf("step (b): data file %q not named after a log page", fileName)
	}
	wantLP := []byte(strings.Split(fileName, "lp")[1])
	_ = wantLP
	if !strings.HasSuffix(fileName, formatLP(flushLP)) {
		t.Fatalf("step (b): file %q should carry log page %d", fileName, flushLP)
	}
	payloadBefore, err := files.LoadFile(fileName)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ = log.Records(0, log.Head())
	if recs[len(recs)-1].Kind != wal.KindFlush {
		t.Fatalf("step (b): last record kind = %v, want flush", recs[len(recs)-1].Kind)
	}

	// (c) Delete row 2: a metadata-only change.
	headBefore := log.Head()
	deleted, err := tbl.DeleteByUnique([]types.Value{types.NewInt(2)})
	if err != nil || !deleted {
		t.Fatalf("step (c): delete = %v, %v", deleted, err)
	}
	// The data file is byte-identical (immutable, §3).
	payloadAfter, _ := files.LoadFile(fileName)
	if string(payloadBefore) != string(payloadAfter) {
		t.Fatal("step (c): data file mutated by a delete")
	}
	// The change is visible through the segment metadata's deleted bits.
	view = tbl.Snapshot()
	if view.Segs[0].Deleted.Count() != 1 || !view.Segs[0].Deleted.Get(deletedOffset(view, 2)) {
		t.Fatalf("step (c): deleted bits = %v", view.Segs[0].Deleted)
	}
	// And it was logged as (at least one) new record without any new
	// segment payload.
	recs, _ = log.Records(headBefore, log.Head())
	if len(recs) == 0 {
		t.Fatal("step (c): delete not logged")
	}
	for _, rec := range recs {
		m, err := decodeMutation(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.NewSegs) != 0 {
			t.Fatal("step (c): delete should not write segment payloads")
		}
	}
	// Logical contents: rows 1 and 3 remain.
	if got := view.NumRows(); got != 2 {
		t.Fatalf("step (c): %d live rows, want 2", got)
	}
}

// formatLP matches the data-file naming convention in maint.go.
func formatLP(lp uint64) string {
	const digits = "0123456789"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[lp%10]
		lp /= 10
	}
	return "lp" + string(out)
}

// deletedOffset finds the row offset of id within the first segment.
func deletedOffset(v *View, id int64) int {
	seg := v.Segs[0].Seg
	for i := 0; i < seg.NumRows; i++ {
		if seg.ValueAt(i, 0).I == id {
			return i
		}
	}
	return -1
}
