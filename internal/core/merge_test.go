package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// failFiles wraps a FileStore and fails the Nth SaveFile call, tracking
// which files are currently persisted so tests can assert orphan cleanup.
type failFiles struct {
	inner FileStore

	mu      sync.Mutex
	saves   int
	failAt  int // fail the failAt-th save (1-based); 0 disables
	present map[string]bool
}

func newFailFiles(inner FileStore) *failFiles {
	return &failFiles{inner: inner, present: make(map[string]bool)}
}

func (f *failFiles) SaveFile(name string, data []byte) error {
	f.mu.Lock()
	f.saves++
	fail := f.failAt != 0 && f.saves == f.failAt
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected save failure for %s", name)
	}
	if err := f.inner.SaveFile(name, data); err != nil {
		return err
	}
	f.mu.Lock()
	f.present[name] = true
	f.mu.Unlock()
	return nil
}

func (f *failFiles) LoadFile(name string) ([]byte, error) { return f.inner.LoadFile(name) }

func (f *failFiles) RemoveFile(name string) error {
	f.mu.Lock()
	delete(f.present, name)
	f.mu.Unlock()
	return f.inner.RemoveFile(name)
}

func (f *failFiles) fileCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.present)
}

// TestMergeAbortCleansOrphans: when a mid-plan SaveFile fails, outputs that
// were already persisted must be deleted, the error surfaced in Stats, the
// inputs left untouched, and a later retry must succeed.
func TestMergeAbortCleansOrphans(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	files := newFailFiles(NewMemFiles())
	log := wal.NewLog()
	// MergeWorkers=1 makes the save order deterministic so "fail the 2nd
	// merge save" reliably leaves one orphan candidate behind.
	tbl, err := NewTable("t", schema, Config{MaxSegmentRows: 8, MergeFanout: 2, MergeWorkers: 1},
		NewCommitter(&txn.Oracle{}), log, files)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(batch*8+i, batch, "x"))
		}
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := files.fileCount() // the two flush outputs
	beforeRows := mustCount(t, tbl)

	// 16 live rows at MaxSegmentRows=8 → two merge outputs; fail the second.
	files.mu.Lock()
	files.failAt = files.saves + 2
	files.mu.Unlock()
	if tbl.Merge() {
		t.Fatal("merge should have aborted")
	}
	if got := files.fileCount(); got != before {
		t.Fatalf("aborted merge leaked files: %d present, want %d", got, before)
	}
	if tbl.Stats.MergeAborts.Load() != 1 {
		t.Fatalf("MergeAborts = %d, want 1", tbl.Stats.MergeAborts.Load())
	}
	if err := tbl.Stats.LastMergeError(); err == nil {
		t.Fatal("merge abort left no error in Stats")
	}
	if tbl.Stats.Merges.Load() != 0 {
		t.Fatalf("aborted merge counted as success: Merges = %d", tbl.Stats.Merges.Load())
	}
	if got := mustCount(t, tbl); got != beforeRows {
		t.Fatalf("aborted merge changed contents: %d -> %d rows", beforeRows, got)
	}

	// Retry with the fault cleared: the merge must go through.
	if !tbl.Merge() {
		t.Fatal("retry merge should succeed")
	}
	if got := mustCount(t, tbl); got != beforeRows {
		t.Fatalf("retried merge changed contents: %d -> %d rows", beforeRows, got)
	}
	for i := 0; i < 16; i++ {
		if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))}); !ok {
			t.Fatalf("row %d lost after abort+retry", i)
		}
	}
}

// TestApplySegDeletesChainedRemaps: a delete addressed at a segment retired
// three merges ago must chase the remap chain across every generation and
// land in the final segment.
func TestApplySegDeletesChainedRemaps(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 64, MergeFanout: 2})
	nextID := 0
	flushRun := func() {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(nextID, nextID, "x"))
			nextID++
		}
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// First pair of runs; remember where row id=0 lives pre-merge.
	flushRun()
	flushRun()
	view := tbl.Snapshot()
	var origSeg uint64
	var origOff int32 = -1
	for _, m := range view.Segs {
		for i := 0; i < m.Seg.NumRows; i++ {
			if m.Seg.ValueAt(i, 0).I == 0 {
				origSeg, origOff = m.Seg.ID, int32(i)
			}
		}
	}
	if origOff < 0 {
		t.Fatal("row 0 not found in any segment")
	}
	// Cascade merges: each pass merges the two smallest same-tier runs, so
	// repeated flush+drain produces M(A,B) → M(M1,M2) → M(M3,M6)…
	drain := func() {
		for tbl.Merge() {
		}
	}
	drain()
	for pair := 0; pair < 3; pair++ {
		flushRun()
		flushRun()
		drain()
	}
	// Count the chase depth from the original location to prove the chain
	// really is ≥3 merges deep.
	depth := 0
	seg, off := origSeg, origOff
	for {
		tbl.segMu.RLock()
		e := tbl.segs[seg]
		tbl.segMu.RUnlock()
		if e == nil || e.dropTS.Load() == 0 {
			break
		}
		rm := e.remap.Load()
		if rm == nil {
			t.Fatalf("segment %d dropped without remap", seg)
		}
		tgt := (*rm)[off]
		if tgt.off < 0 {
			t.Fatalf("row 0 vanished while chasing remaps at segment %d", seg)
		}
		seg, off = tgt.seg, tgt.off
		depth++
	}
	if depth < 3 {
		t.Fatalf("remap chain depth = %d, want >= 3", depth)
	}

	before := mustCount(t, tbl)
	tbl.committer.Commit(func(ts uint64) {
		tbl.applySegDeletes(ts, map[uint64][]int32{origSeg: {origOff}})
	})
	if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(0)}); ok {
		t.Fatal("delete at 3-merges-old location did not take effect")
	}
	if got := mustCount(t, tbl); got != before-1 {
		t.Fatalf("NumRows = %d, want %d", got, before-1)
	}
}

// TestApplySegDeletesCycleGuard: a corrupt remap graph with a cycle must
// terminate instead of looping (the guard drops the unresolvable offsets).
func TestApplySegDeletesCycleGuard(t *testing.T) {
	schema := uniqSchema()
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 8})
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 4; i++ {
			tbl.Insert(urow(batch*4+i, 0, "x"))
		}
		tbl.Flush()
	}
	view := tbl.Snapshot()
	a, b := view.Segs[0].Seg.ID, view.Segs[1].Seg.ID
	tbl.segMu.RLock()
	ea, eb := tbl.segs[a], tbl.segs[b]
	tbl.segMu.RUnlock()
	// Hand-corrupt the graph: both segments "retired", remapping offset 0
	// at each other forever.
	ea.dropTS.Store(tbl.Oracle().ReadTS())
	eb.dropTS.Store(tbl.Oracle().ReadTS())
	rmA := []remapTarget{{seg: b, off: 0}, {off: -1}, {off: -1}, {off: -1}}
	rmB := []remapTarget{{seg: a, off: 0}, {off: -1}, {off: -1}, {off: -1}}
	ea.remap.Store(&rmA)
	eb.remap.Store(&rmB)

	done := make(chan struct{})
	go func() {
		defer close(done)
		tbl.committer.Commit(func(ts uint64) {
			tbl.applySegDeletes(ts, map[uint64][]int32{a: {0}})
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("applySegDeletes did not terminate on a cyclic remap graph")
	}
}

// TestMergeConcurrentWithWritesAndScans is the -race storm: merges run
// against concurrent inserts, unique-key deletes, flushes, and scans pinned
// at an old snapshot. Afterwards the logical contents must match the
// tracked expectation exactly, the old snapshot must have stayed stable,
// and a WAL replay must reproduce the merged state byte for byte.
func TestMergeConcurrentWithWritesAndScans(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	tbl, log := newTestTable(t, schema, Config{
		MaxSegmentRows:  32,
		MergeFanout:     2,
		MergeWorkers:    4,
		CompactionGrace: time.Minute, // keep old snapshots readable all test
	})

	const total = 1500
	// Seed a prefix, pin a snapshot, and record its row count: concurrent
	// merges must never change what this timestamp sees.
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(urow(i, i, "seed")); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Flush()
	pinTS := tbl.Oracle().ReadTS()
	pinRows := tbl.SnapshotAt(pinTS).NumRows()

	var (
		inserted atomic.Int64 // ids < inserted are all present (pre-delete)
		deleted  sync.Map     // id -> true once its DeleteWhere returned 1
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	inserted.Store(100)

	wg.Add(1)
	go func() { // inserter
		defer wg.Done()
		for i := 100; i < total; i++ {
			if err := tbl.Insert(urow(i, i, fmt.Sprintf("t%d", i%7))); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			inserted.Store(int64(i + 1))
		}
	}()
	wg.Add(1)
	go func() { // deleter: every 5th id, once it exists
		defer wg.Done()
		next := 0
		for int64(next) < int64(total) {
			hi := inserted.Load()
			for ; int64(next) < hi; next += 5 {
				n, err := tbl.DeleteWhere(Eq(0, types.NewInt(int64(next))))
				if err != nil {
					t.Errorf("delete %d: %v", next, err)
					return
				}
				if n == 1 {
					deleted.Store(next, true)
				} else {
					t.Errorf("delete %d removed %d rows", next, n)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // flusher
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tbl.Flush() //nolint:errcheck // exercised for races; errors surface via contents check
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	wg.Add(1)
	go func() { // merger
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tbl.Merge()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	wg.Add(1)
	go func() { // old-snapshot scanner
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if got := tbl.SnapshotAt(pinTS).NumRows(); got != pinRows {
					t.Errorf("pinned snapshot changed: %d rows, want %d", got, pinRows)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Wait for the writers, then stop the background loops.
	waitWriters := make(chan struct{})
	go func() {
		for inserted.Load() < total {
			time.Sleep(time.Millisecond)
		}
		// Give the deleter time to catch up with the tail.
		for {
			if _, ok := deleted.Load(total - 5); ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		close(waitWriters)
	}()
	select {
	case <-waitWriters:
	case <-time.After(30 * time.Second):
		t.Fatal("writers did not finish")
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: drain the buffer and the merge tree.
	for tbl.BufferLen() > 0 {
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for tbl.Merge() {
	}

	// Exact contents: every non-deleted id present, every deleted id gone.
	want := 0
	for i := 0; i < total; i++ {
		_, isDel := deleted.Load(i)
		_, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if isDel && ok {
			t.Fatalf("deleted id %d still present", i)
		}
		if !isDel && !ok {
			t.Fatalf("id %d lost", i)
		}
		if !isDel {
			want++
		}
	}
	if got := mustCount(t, tbl); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}

	// The WAL must reproduce the merged state on a fresh replica.
	replica, err := NewTable("t", schema, Config{MaxSegmentRows: 32}, NewCommitter(&txn.Oracle{}), wal.NewLog(), NewMemFiles())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := log.Records(0, log.Head())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := replica.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	assertSameContents(t, tbl, replica)
}

// gateFiles blocks the first SaveFile call after arm() until release() is
// called, so a test can hold a merge mid-save and observe what else makes
// progress meanwhile.
type gateFiles struct {
	inner   FileStore
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func newGateFiles(inner FileStore) *gateFiles {
	return &gateFiles{inner: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateFiles) SaveFile(name string, data []byte) error {
	if g.armed.CompareAndSwap(true, false) {
		close(g.entered)
		<-g.release
	}
	return g.inner.SaveFile(name, data)
}

func (g *gateFiles) LoadFile(name string) ([]byte, error) { return g.inner.LoadFile(name) }
func (g *gateFiles) RemoveFile(name string) error         { return g.inner.RemoveFile(name) }

// TestFlushProceedsWhileMergeSaves: with the install-only lock scope, a
// merge stuck in a (slow) blob write must not block a foreground flush —
// the regression this PR's restructure exists to prevent.
func TestFlushProceedsWhileMergeSaves(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	files := newGateFiles(NewMemFiles())
	tbl, err := NewTable("t", schema, Config{MaxSegmentRows: 16, MergeFanout: 2},
		NewCommitter(&txn.Oracle{}), wal.NewLog(), files)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(batch*8+i, batch, "x"))
		}
		if _, err := tbl.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the gate and start the merge: its first output save blocks.
	files.armed.Store(true)
	mergeDone := make(chan bool, 1)
	go func() { mergeDone <- tbl.Merge() }()
	select {
	case <-files.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("merge never reached SaveFile")
	}

	// With the merge parked inside the blob write, a flush must complete.
	for i := 16; i < 24; i++ {
		if err := tbl.Insert(urow(i, 2, "y")); err != nil {
			t.Fatal(err)
		}
	}
	flushDone := make(chan error, 1)
	go func() {
		_, err := tbl.Flush()
		flushDone <- err
	}()
	select {
	case err := <-flushDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush blocked behind an in-flight merge save")
	}

	close(files.release)
	select {
	case ok := <-mergeDone:
		if !ok {
			t.Fatal("merge failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("merge did not finish after release")
	}
	for i := 0; i < 24; i++ {
		if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))}); !ok {
			t.Fatalf("row %d lost", i)
		}
	}
}

// TestMergeParallelWorkersPreserveOrder: a merge fanning output builds
// across several workers must still produce key-ordered, id-ordered
// segments with intact contents.
func TestMergeParallelWorkersPreserveOrder(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 8, MergeFanout: 4, MergeWorkers: 4})
	// 4 interleaved runs of 16 rows → one merge with 8 output segments.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 16; i++ {
			tbl.Insert(urow(i*4+batch, batch, "x"))
		}
		for tbl.BufferLen() > 0 {
			if _, err := tbl.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !tbl.Merge() {
		t.Fatal("merge expected")
	}
	view := tbl.Snapshot()
	if len(view.Segs) != 8 {
		t.Fatalf("got %d segments, want 8", len(view.Segs))
	}
	// view.Segs is sorted by segment ID; the same order must be the sort-key
	// order or deterministic scans break.
	prev := int64(-1)
	for _, m := range view.Segs {
		for i := 0; i < m.Seg.NumRows; i++ {
			v := m.Seg.ValueAt(i, 0).I
			if v < prev {
				t.Fatalf("rows out of order across outputs: %d after %d", v, prev)
			}
			prev = v
		}
	}
	for i := 0; i < 64; i++ {
		if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))}); !ok {
			t.Fatalf("row %d lost in parallel merge", i)
		}
	}
}

// TestMergeRowSortAblationPath keeps the legacy baseline working: with
// MergeRowSort+MergeHoldLock the merge must still be correct (the bench
// relies on this path as its "before" measurement).
func TestMergeRowSortAblationPath(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 0
	tbl, _ := newTestTable(t, schema, Config{
		MaxSegmentRows: 16, MergeFanout: 2, MergeRowSort: true, MergeHoldLock: true,
	})
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 8; i++ {
			tbl.Insert(urow(batch*8+i, batch, "x"))
		}
		tbl.Flush()
	}
	if !tbl.Merge() {
		t.Fatal("merge expected")
	}
	for i := 0; i < 16; i++ {
		if _, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(int64(i))}); !ok {
			t.Fatalf("row %d lost on rowsort path", i)
		}
	}
}
