package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s2db/internal/txn"
	"s2db/internal/types"
	"s2db/internal/wal"
)

// hydroFiles wraps a FileStore with load counting, an availability switch,
// and an optional gate that holds every load until released — the
// hydration tests' stand-in for a slow or downed blob store. It implements
// FileLoaderCtx so a held load can still be abandoned by cancellation.
type hydroFiles struct {
	FileStore
	loads   atomic.Int64
	down    atomic.Bool
	mu      sync.Mutex
	gate    chan struct{} // nil = loads pass through immediately
	errDown error
}

func newHydroFiles(inner FileStore) *hydroFiles {
	return &hydroFiles{FileStore: inner, errDown: errors.New("blob store unavailable")}
}

// hold makes subsequent loads block until release.
func (g *hydroFiles) hold() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

func (g *hydroFiles) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *hydroFiles) LoadFile(name string) ([]byte, error) {
	return g.LoadFileCtx(context.Background(), name)
}

func (g *hydroFiles) LoadFileCtx(ctx context.Context, name string) ([]byte, error) {
	g.loads.Add(1)
	if g.down.Load() {
		return nil, g.errDown
	}
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.FileStore.LoadFile(name)
}

// buildSegmentedTable makes a table with several flushed segments plus
// deletes and updates, and returns it with its serialized state.
func buildSegmentedTable(t *testing.T, files FileStore) (*Table, []byte, uint64) {
	t.Helper()
	tbl, err := NewTable("t", uniqSchema(), Config{MaxSegmentRows: 8},
		NewCommitter(&txn.Oracle{}), wal.NewLog(), files)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(urow(i, i, fmt.Sprintf("t%d", i%4))); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			tbl.Flush()
		}
	}
	if _, err := tbl.DeleteWhere(Eq(2, types.NewString("t0"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.UpdateWhere(Eq(2, types.NewString("t1")), func(r types.Row) types.Row {
		r[1] = types.NewInt(-1)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	tbl.Flush()
	ts := tbl.Oracle().ReadTS()
	return tbl, tbl.SerializeState(ts), ts
}

func restoreInto(t *testing.T, files FileStore, cfg Config, state []byte, ts uint64) *Table {
	t.Helper()
	tbl, err := NewTable("t", uniqSchema(), cfg, NewCommitter(&txn.Oracle{}), wal.NewLog(), files)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.RestoreState(state, ts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	return tbl
}

// TestLazyRestoreReturnsBeforeAnyPayloadLoad is the O(manifest) property:
// RestoreState with every payload load gated must still return, and
// metadata queries (COUNT(*) without a filter) answer from stubs alone.
func TestLazyRestoreReturnsBeforeAnyPayloadLoad(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)
	want := mustCount(t, src)

	files.hold()
	start := time.Now()
	restored := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("lazy RestoreState took %v with payload loads gated", elapsed)
	}
	if got := mustCount(t, restored); got != want {
		t.Fatalf("metadata count on stubs = %d, want %d", got, want)
	}
	if restored.Snapshot().Hydrated() {
		t.Fatal("view reports hydrated while every load is gated")
	}
	files.release()
	if err := restored.WaitHydrated(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertSameContents(t, src, restored)
}

// TestEagerHydrationAblation: the ablation knob restores the old behavior —
// RestoreState returns only after every payload is resident.
func TestEagerHydrationAblation(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	files.loads.Store(0)
	restored := restoreInto(t, files, Config{MaxSegmentRows: 8, EagerHydration: true}, state, ts)
	if !restored.Snapshot().Hydrated() {
		t.Fatal("eager restore left cold segments")
	}
	if files.loads.Load() == 0 {
		t.Fatal("eager restore issued no payload loads")
	}
	assertSameContents(t, src, restored)
}

// TestDemandHydrationSingleFlight hammers one cold table with concurrent
// demand-hydrating readers: each segment's payload must be fetched exactly
// once no matter how many scans block on it.
func TestDemandHydrationSingleFlight(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	files.hold() // park the restore readahead so all demands pile up cold
	restored := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	files.loads.Store(0)

	nSegs := len(restored.Snapshot().Segs)
	if nSegs == 0 {
		t.Fatal("no segments restored")
	}
	const readers = 32
	var wg sync.WaitGroup
	errs := make([]error, readers)
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			view := restored.Snapshot()
			for si := range view.Segs {
				if err := view.HydrateSegment(context.Background(), si); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	time.Sleep(10 * time.Millisecond) // let demands register against the gate
	files.release()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}
	// Gated loads that returned early don't read payloads; completed loads
	// must number exactly one per segment file.
	if got := restored.Stats.Hydrations.Load(); got != int64(nSegs) {
		t.Fatalf("%d hydrations for %d segments, want exactly one each", got, nSegs)
	}
	assertSameContents(t, src, restored)
}

// TestHydrationWaitCancellation: a ctx-cancelled demand wait returns
// promptly without aborting the shared fetch, and a later wait succeeds.
func TestHydrationWaitCancellation(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	files.hold()
	restored := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	view := restored.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := view.HydrateSegment(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("HydrateSegment = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled wait blocked %v", d)
	}
	files.release()
	if err := view.HydrateSegment(context.Background(), 0); err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if err := restored.WaitHydrated(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertSameContents(t, src, restored)
}

// TestHydrationErrorRetry: a downed blob store fails hydration (scan error,
// HydrationErrors counted); once the store recovers the next demand
// refetches and succeeds.
func TestHydrationErrorRetry(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	files.down.Store(true)
	restored := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	view := restored.Snapshot()
	if err := view.HydrateSegment(context.Background(), 0); err == nil {
		t.Fatal("hydration succeeded against a downed store")
	}
	if restored.Stats.HydrationErrors.Load() == 0 {
		t.Fatal("HydrationErrors not counted")
	}
	files.down.Store(false)
	if err := restored.WaitHydrated(context.Background()); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	assertSameContents(t, src, restored)
}

// TestRestoreCorruptManifestInstallsNothing: a manifest that fails to parse
// mid-way must leave the table empty — no partially-installed stubs.
func TestRestoreCorruptManifestInstallsNothing(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	_, state, ts := buildSegmentedTable(t, files)

	tbl, err := NewTable("t", uniqSchema(), Config{MaxSegmentRows: 8},
		NewCommitter(&txn.Oracle{}), wal.NewLog(), files)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	if err := tbl.RestoreState(state[:len(state)-3], ts); err == nil {
		t.Fatal("truncated manifest restored without error")
	}
	if n := len(tbl.Snapshot().Segs); n != 0 {
		t.Fatalf("%d stub segments installed from a corrupt manifest, want 0", n)
	}
	// The table is still usable.
	if err := tbl.Insert(urow(1, 1, "post")); err != nil {
		t.Fatal(err)
	}
}

// TestMergeHydratesColdInputs: a merge whose inputs are still stubs must
// hydrate them first and produce the same contents.
func TestMergeHydratesColdInputs(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	restored := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	if !restored.Merge() {
		t.Fatalf("merge on cold table did no work (err: %v)", restored.Stats.LastMergeError())
	}
	assertSameContents(t, src, restored)
}

// TestLazyEagerEquivalence proves the three restore modes — eager, lazy,
// and lazy-with-a-cancelled-wait-then-retry — converge to byte-identical
// serialized state and identical scan contents, with a concurrent merge
// racing hydration on the lazy table.
func TestLazyEagerEquivalence(t *testing.T) {
	files := newHydroFiles(NewMemFiles())
	src, state, ts := buildSegmentedTable(t, files)

	eager := restoreInto(t, files, Config{MaxSegmentRows: 8, EagerHydration: true}, state, ts)
	lazy := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)
	cancelled := restoreInto(t, files, Config{MaxSegmentRows: 8}, state, ts)

	// Snapshots taken after a lazy restore serialize from metadata alone, so
	// the pre-hydration state must already match the eager table's bytes.
	if !bytes.Equal(eager.SerializeState(ts), lazy.SerializeState(ts)) {
		t.Fatal("lazy pre-hydration SerializeState differs from eager")
	}

	// Cancel a demand wait midway on one table, then retry.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	view := cancelled.Snapshot()
	if err := view.HydrateSegment(ctx, 0); err == nil && !view.Segs[0].Seg.Hydrated() {
		t.Fatal("cancelled HydrateSegment reported success on a cold segment")
	}

	// Race a merge against demand hydration on the lazy table.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lazy.Merge()
	}()
	if err := lazy.WaitHydrated(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := cancelled.WaitHydrated(context.Background()); err != nil {
		t.Fatal(err)
	}

	assertSameContents(t, src, eager)
	assertSameContents(t, src, lazy)
	assertSameContents(t, src, cancelled)
	// Post-hydration serialized state matches eager byte-for-byte on the
	// unmerged table (the merged one changed segment layout, not contents).
	if !bytes.Equal(eager.SerializeState(ts), cancelled.SerializeState(ts)) {
		t.Fatal("post-hydration SerializeState differs between eager and cancelled-then-retried")
	}
}
