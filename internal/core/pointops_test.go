package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s2db/internal/types"
)

func TestUpdateByUniqueBufferAndSegment(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8})
	for i := 0; i < 8; i++ {
		tbl.Insert(urow(i, 0, "x"))
	}
	tbl.Flush() // rows 0..7 now live in a segment
	tbl.Insert(urow(100, 0, "x"))

	// Buffer-resident row.
	ok, err := tbl.UpdateByUnique([]types.Value{types.NewInt(100)}, func(r types.Row) types.Row {
		r[1] = types.NewInt(1)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("buffer update = %v, %v", ok, err)
	}
	// Segment-resident row: needs a move transaction.
	moves := tbl.Stats.Moves.Load()
	ok, err = tbl.UpdateByUnique([]types.Value{types.NewInt(3)}, func(r types.Row) types.Row {
		r[1] = types.NewInt(33)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("segment update = %v, %v", ok, err)
	}
	if tbl.Stats.Moves.Load() == moves {
		t.Fatal("segment update should move the row to the buffer")
	}
	r, _, _ := tbl.GetByUnique([]types.Value{types.NewInt(3)})
	if r[1].I != 33 {
		t.Fatalf("updated value = %d", r[1].I)
	}
	// Missing row.
	ok, err = tbl.UpdateByUnique([]types.Value{types.NewInt(999)}, func(r types.Row) types.Row { return r })
	if err != nil || ok {
		t.Fatalf("missing update = %v, %v", ok, err)
	}
	// Changing the unique key is rejected.
	_, err = tbl.UpdateByUnique([]types.Value{types.NewInt(3)}, func(r types.Row) types.Row {
		r[0] = types.NewInt(4)
		return r
	})
	if err == nil {
		t.Fatal("unique-key change accepted")
	}
}

func TestDeleteByUnique(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8})
	for i := 0; i < 8; i++ {
		tbl.Insert(urow(i, i, "x"))
	}
	tbl.Flush()
	tbl.Insert(urow(50, 50, "x"))

	for _, id := range []int64{3, 50} { // segment row, buffer row
		ok, err := tbl.DeleteByUnique([]types.Value{types.NewInt(id)})
		if err != nil || !ok {
			t.Fatalf("delete %d = %v, %v", id, ok, err)
		}
		if _, found, _ := tbl.GetByUnique([]types.Value{types.NewInt(id)}); found {
			t.Fatalf("row %d still visible", id)
		}
	}
	// Idempotence: a second delete reports not-found.
	ok, err := tbl.DeleteByUnique([]types.Value{types.NewInt(3)})
	if err != nil || ok {
		t.Fatalf("double delete = %v, %v", ok, err)
	}
	if got := mustCount(t, tbl); got != 7 {
		t.Fatalf("NumRows = %d", got)
	}
}

// TestModelBasedRandomOps runs a random sequence of point operations
// against the unified table and an in-memory map model, interleaved with
// flushes and merges, and requires the visible contents to match exactly.
func TestModelBasedRandomOps(t *testing.T) {
	schema := uniqSchema()
	schema.SortKey = 1
	tbl, _ := newTestTable(t, schema, Config{MaxSegmentRows: 16, MergeFanout: 2})
	model := map[int64]int64{} // id -> val
	rng := rand.New(rand.NewSource(99))

	const ops = 3000
	for op := 0; op < ops; op++ {
		id := int64(rng.Intn(200))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // upsert
			val := rng.Int63n(1000)
			_, err := tbl.InsertBatch([]types.Row{urow(int(id), int(val), "m")}, InsertOptions{
				OnDup:  DupUpdate,
				Update: func(_, in types.Row) types.Row { return in },
			})
			if err != nil {
				t.Fatalf("op %d upsert: %v", op, err)
			}
			model[id] = val
		case 4, 5: // delete
			ok, err := tbl.DeleteByUnique([]types.Value{types.NewInt(id)})
			if err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			if _, exists := model[id]; exists != ok {
				t.Fatalf("op %d delete mismatch: model=%v table=%v", op, exists, ok)
			}
			delete(model, id)
		case 6, 7: // point read
			r, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(id)})
			if err != nil {
				t.Fatalf("op %d get: %v", op, err)
			}
			want, exists := model[id]
			if exists != ok {
				t.Fatalf("op %d get existence mismatch (id=%d): model=%v table=%v", op, id, exists, ok)
			}
			if ok && r[1].I != want {
				t.Fatalf("op %d get value mismatch: %d != %d", op, r[1].I, want)
			}
		case 8: // structural: flush
			if _, err := tbl.Flush(); err != nil {
				t.Fatalf("op %d flush: %v", op, err)
			}
		case 9: // structural: merge
			tbl.Merge()
		}
	}
	// Final full comparison.
	view := tbl.Snapshot()
	got := map[int64]int64{}
	view.ScanBuffer(func(r types.Row) bool { got[r[0].I] = r[1].I; return true })
	for _, m := range view.Segs {
		for i := 0; i < m.Seg.NumRows; i++ {
			if !m.Deleted.Get(i) {
				r := m.Seg.RowAt(i)
				if _, dup := got[r[0].I]; dup {
					t.Fatalf("row %d visible in two places", r[0].I)
				}
				got[r[0].I] = r[1].I
			}
		}
	}
	if len(got) != len(model) {
		t.Fatalf("final row count %d, model %d", len(got), len(model))
	}
	for id, want := range model {
		if got[id] != want {
			t.Fatalf("row %d = %d, model %d", id, got[id], want)
		}
	}
}

func TestLookupEqualOnNonIndexedColumn(t *testing.T) {
	tbl, _ := newTestTable(t, uniqSchema(), Config{MaxSegmentRows: 8})
	for i := 0; i < 16; i++ {
		tbl.Insert(urow(i, i%4, fmt.Sprintf("t%d", i%2)))
	}
	tbl.Flush()
	// Column 1 (val) has no index: zone-map-assisted scan path.
	rows := tbl.LookupEqual(1, types.NewInt(2))
	if len(rows) != 4 {
		t.Fatalf("LookupEqual(val=2) = %d rows", len(rows))
	}
}

func TestUpsertCounterUnderAggressiveFlushing(t *testing.T) {
	// Regression for the flush-vs-upsert race: with the flusher constantly
	// moving rows into segments, concurrent counter upserts must still be
	// exactly-once.
	tbl, _ := newTestTable(t, uniqSchema(), Config{
		MaxSegmentRows: 4, FlushThreshold: 1, MergeFanout: 2,
		Background: true, BackgroundInterval: 100 * time.Microsecond,
		CompactionGrace: 50 * time.Millisecond,
	})
	tbl.Start()
	defer tbl.Close()
	const keys = 3
	for k := 0; k < keys; k++ {
		if err := tbl.Insert(urow(k, 0, "c")); err != nil {
			t.Fatal(err)
		}
	}
	const workers, iters = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := tbl.InsertBatch([]types.Row{urow(i%keys, 1, "c")}, InsertOptions{
					OnDup: DupUpdate,
					Update: func(old, in types.Row) types.Row {
						out := old.Clone()
						out[1] = types.NewInt(old[1].I + 1)
						return out
					},
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for k := 0; k < keys; k++ {
		r, ok, err := tbl.GetByUnique([]types.Value{types.NewInt(int64(k))})
		if err != nil || !ok {
			t.Fatalf("key %d lost: %v", k, err)
		}
		total += r[1].I
	}
	if want := int64(workers * iters); total != want {
		t.Fatalf("counter total = %d, want %d (lost or doubled updates)", total, want)
	}
	if got := mustCount(t, tbl); got != keys {
		t.Fatalf("NumRows = %d, want %d (duplicate rows?)", got, keys)
	}
}

func TestPointUpdateUnderAggressiveFlushing(t *testing.T) {
	// Same regression through UpdateByUnique.
	tbl, _ := newTestTable(t, uniqSchema(), Config{
		MaxSegmentRows: 4, FlushThreshold: 1, MergeFanout: 2,
		Background: true, BackgroundInterval: 100 * time.Microsecond,
		CompactionGrace: 50 * time.Millisecond,
	})
	tbl.Start()
	defer tbl.Close()
	if err := tbl.Insert(urow(0, 0, "c")); err != nil {
		t.Fatal(err)
	}
	const workers, iters = 4, 150
	var wg sync.WaitGroup
	var applied atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ok, err := tbl.UpdateByUnique([]types.Value{types.NewInt(0)}, func(r types.Row) types.Row {
					r[1] = types.NewInt(r[1].I + 1)
					return r
				})
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					applied.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	r, ok, _ := tbl.GetByUnique([]types.Value{types.NewInt(0)})
	if !ok {
		t.Fatal("row lost")
	}
	if r[1].I != applied.Load() {
		t.Fatalf("counter = %d, applied = %d", r[1].I, applied.Load())
	}
	if applied.Load() != workers*iters {
		t.Fatalf("applied = %d, want %d (row reported missing under flush race)", applied.Load(), workers*iters)
	}
}
