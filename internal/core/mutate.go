package core

import (
	"fmt"

	"s2db/internal/types"
	"s2db/internal/vector"
	"s2db/internal/wal"
)

// segLoc addresses one row inside a segment, with the buffer key it will
// live under after a move.
type segLoc struct {
	seg uint64
	off int32
	key []byte
}

// moveToBuffer runs a move transaction (§4.2): it copies the given segment
// rows into the in-memory rowstore (which locks them — "the primary key of
// the in-memory rowstore acts as the lock manager") and marks their segment
// copies deleted, committing immediately as an autonomous transaction.
// Rows already moved by a concurrent transaction are skipped: their live
// copy is in the buffer and callers re-probe it.
func (t *Table) moveToBuffer(locs []segLoc) error {
	if len(locs) == 0 {
		return nil
	}
	readTS := t.committer.Oracle().ReadTS()
	tx := t.buffer.Begin(readTS)
	m := &mutation{SegDeletes: map[uint64][]int32{}}
	inserted := 0
	for _, loc := range locs {
		t.segMu.RLock()
		e := t.segs[loc.seg]
		t.segMu.RUnlock()
		if e == nil {
			continue
		}
		meta := e.latestMeta()
		if meta.Deleted.Get(int(loc.off)) {
			continue // concurrently moved or deleted; live copy is elsewhere
		}
		row := meta.Seg.RowAt(int(loc.off))
		key := loc.key
		if key == nil {
			key = t.bufferKey(row)
		}
		// Inserting the copy takes the buffer row lock; if another mover
		// holds it we wait (bounded by the lock timeout).
		if _, err := tx.Insert(key, row); err != nil {
			tx.Abort()
			return fmt.Errorf("move: %w", err)
		}
		m.Inserts = append(m.Inserts, kv{Key: key, Row: row})
		m.SegDeletes[loc.seg] = append(m.SegDeletes[loc.seg], loc.off)
		inserted++
	}
	if inserted == 0 {
		tx.Abort()
		return nil
	}
	payload := t.encodeLog(m)
	t.committer.Commit(func(ts uint64) {
		// Re-check under the commit lock: a move that lost the race must
		// not double-insert. applySegDeletes chases merge remaps for rows
		// whose segments were merged since our scan (§4.2).
		t.applySegDeletes(ts, m.SegDeletes)
		tx.Commit(ts)
		t.appendEncoded(wal.KindMove, ts, payload)
	})
	t.Stats.Moves.Add(int64(inserted))
	return nil
}

// Where describes the target rows of an update or delete: an optional
// indexed equality (fast path through the secondary index) plus an optional
// residual predicate.
type Where struct {
	// Col/Val is an equality on an indexed column; Col == -1 disables it.
	Col int
	Val types.Value
	// Pred is evaluated on candidate rows; nil accepts all.
	Pred func(types.Row) bool
}

// All matches every row.
func All() Where { return Where{Col: -1} }

// Eq matches rows where the (indexed) column equals v.
func Eq(col int, v types.Value) Where { return Where{Col: col, Val: v} }

func (w Where) matches(r types.Row) bool {
	if w.Col >= 0 && !types.Equal(r[w.Col], w.Val) {
		return false
	}
	return w.Pred == nil || w.Pred(r)
}

// findTargets locates the rows matched by w at the view's snapshot,
// returning buffer keys and segment locations.
func (t *Table) findTargets(view *View, w Where) (bufKeys [][]byte, segLocs []segLoc) {
	t.buffer.Scan(nil, nil, view.TS, func(k []byte, r types.Row) bool {
		if w.matches(r) {
			bufKeys = append(bufKeys, append([]byte(nil), k...))
		}
		return true
	})
	if w.Col >= 0 && t.idx.HasColumn(w.Col) {
		matches, probes := t.idx.LookupColumn(w.Col, w.Val)
		t.Stats.IndexProbes.Add(int64(probes))
		for _, m := range matches {
			for _, meta := range view.Segs {
				if meta.Seg.ID != m.SegID {
					continue
				}
				for _, off := range m.Rows {
					if meta.Deleted.Get(int(off)) {
						continue
					}
					if w.Pred == nil || w.Pred(meta.Seg.RowAt(int(off))) {
						segLocs = append(segLocs, segLoc{seg: m.SegID, off: off})
					}
				}
			}
		}
		return bufKeys, segLocs
	}
	// Full segment scan with zone-map elimination for the equality case.
	for _, meta := range view.Segs {
		if w.Col >= 0 && !meta.Seg.MayContain(w.Col, int(vector.Eq), w.Val) {
			t.Stats.SegmentsEliminated.Add(1)
			continue
		}
		for i := 0; i < meta.Seg.NumRows; i++ {
			if meta.Deleted.Get(i) {
				continue
			}
			if w.matches(meta.Seg.RowAt(i)) {
				segLocs = append(segLocs, segLoc{seg: meta.Seg.ID, off: int32(i)})
			}
		}
	}
	return bufKeys, segLocs
}

// UpdateWhere rewrites matching rows via set, using move transactions for
// rows living in segments so the user transaction only locks in-memory rows
// (§4.2). Changing unique-key columns is not supported. It returns the
// number of rows updated.
func (t *Table) UpdateWhere(w Where, set func(types.Row) types.Row) (int, error) {
	// Target discovery reads segment rows (index probes or full scans):
	// a lazily-restored table must be resident first.
	if err := t.ensureProbeReady(); err != nil {
		return 0, fmt.Errorf("update %s: %w", t.name, err)
	}
	// Excluding flush/merge between target discovery and row locking keeps
	// the operation exactly-once: otherwise a concurrent flush can tombstone
	// a matched buffer row (moving it into a segment) in the window between
	// the snapshot and LockAndGet, silently losing the update.
	t.structMu.Lock()
	defer t.structMu.Unlock()
	view := t.Snapshot()
	bufKeys, segLocs := t.findTargets(view, w)
	if len(segLocs) > 0 {
		if err := t.moveToBuffer(segLocs); err != nil {
			return 0, err
		}
		for _, loc := range segLocs {
			if loc.key != nil {
				bufKeys = append(bufKeys, loc.key)
			}
		}
		// Moved rows without precomputed keys are found by re-probing the
		// buffer below when the table has a unique key; otherwise they got
		// hidden row ids — rescan the buffer for matches.
		if len(t.schema.UniqueKey) > 0 {
			for _, loc := range segLocs {
				if loc.key == nil {
					t.segMu.RLock()
					e := t.segs[loc.seg]
					t.segMu.RUnlock()
					if e != nil {
						row := e.latestMeta().Seg.RowAt(int(loc.off))
						bufKeys = append(bufKeys, types.KeyOf(row, t.schema.UniqueKey))
					}
				}
			}
		} else {
			bufKeys = bufKeys[:0]
			t.buffer.Scan(nil, nil, t.committer.Oracle().ReadTS(), func(k []byte, r types.Row) bool {
				if w.matches(r) {
					bufKeys = append(bufKeys, append([]byte(nil), k...))
				}
				return true
			})
		}
	}
	if len(bufKeys) == 0 {
		return 0, nil
	}
	tx := t.buffer.Begin(view.TS)
	m := &mutation{}
	updated := 0
	for _, k := range bufKeys {
		cur, ok, err := tx.LockAndGet(k)
		if err != nil {
			tx.Abort()
			return 0, fmt.Errorf("update %s: %w", t.name, err)
		}
		if !ok || !w.matches(cur) {
			continue // deleted or changed since the snapshot
		}
		nr := set(cur.Clone())
		if err := t.schema.CheckRow(nr); err != nil {
			tx.Abort()
			return 0, fmt.Errorf("update %s: %w", t.name, err)
		}
		if len(t.schema.UniqueKey) > 0 {
			if string(types.KeyOf(nr, t.schema.UniqueKey)) != string(k) {
				tx.Abort()
				return 0, fmt.Errorf("update %s: changing unique key columns is not supported", t.name)
			}
		}
		if _, err := tx.Insert(k, nr); err != nil {
			tx.Abort()
			return 0, err
		}
		m.Inserts = append(m.Inserts, kv{Key: k, Row: nr})
		updated++
	}
	if updated == 0 {
		tx.Abort()
		return 0, nil
	}
	payload := t.encodeLog(m)
	t.committer.Commit(func(ts uint64) {
		tx.Commit(ts)
		t.appendEncoded(wal.KindInsert, ts, payload)
	})
	t.Stats.Updates.Add(int64(updated))
	return updated, nil
}

// DeleteWhere removes matching rows. Segment rows are moved to the buffer
// first (§4.2) and then tombstoned under their row locks. It returns the
// number of rows deleted.
func (t *Table) DeleteWhere(w Where) (int, error) {
	// See UpdateWhere: hydrate before discovery, then exclude structure.
	if err := t.ensureProbeReady(); err != nil {
		return 0, fmt.Errorf("delete %s: %w", t.name, err)
	}
	// See UpdateWhere: structural exclusion prevents lost deletes when a
	// flush races with target discovery.
	t.structMu.Lock()
	defer t.structMu.Unlock()
	view := t.Snapshot()
	bufKeys, segLocs := t.findTargets(view, w)
	if len(segLocs) > 0 {
		if err := t.moveToBuffer(segLocs); err != nil {
			return 0, err
		}
		bufKeys = bufKeys[:0]
		t.buffer.Scan(nil, nil, t.committer.Oracle().ReadTS(), func(k []byte, r types.Row) bool {
			if w.matches(r) {
				bufKeys = append(bufKeys, append([]byte(nil), k...))
			}
			return true
		})
	}
	if len(bufKeys) == 0 {
		return 0, nil
	}
	tx := t.buffer.Begin(view.TS)
	m := &mutation{}
	deleted := 0
	for _, k := range bufKeys {
		cur, ok, err := tx.LockAndGet(k)
		if err != nil {
			tx.Abort()
			return 0, fmt.Errorf("delete %s: %w", t.name, err)
		}
		if !ok || !w.matches(cur) {
			continue
		}
		if _, _, err := tx.DeleteLatest(k); err != nil {
			tx.Abort()
			return 0, err
		}
		m.DeleteKeys = append(m.DeleteKeys, k)
		deleted++
	}
	if deleted == 0 {
		tx.Abort()
		return 0, nil
	}
	payload := t.encodeLog(m)
	t.committer.Commit(func(ts uint64) {
		tx.Commit(ts)
		t.appendEncoded(wal.KindDelete, ts, payload)
	})
	t.Stats.Deletes.Add(int64(deleted))
	return deleted, nil
}

// GetByUnique returns the live row with the given unique key values, using
// the buffer first and then the secondary index (§4.1).
func (t *Table) GetByUnique(vals []types.Value) (types.Row, bool, error) {
	uk := t.schema.UniqueKey
	if len(uk) == 0 {
		return nil, false, ErrNoUniqueKey
	}
	if len(vals) != len(uk) {
		return nil, false, fmt.Errorf("get %s: %d key values, unique key has %d columns", t.name, len(vals), len(uk))
	}
	if err := t.ensureProbeReady(); err != nil {
		return nil, false, fmt.Errorf("get %s: %w", t.name, err)
	}
	readTS := t.committer.Oracle().ReadTS()
	key := types.EncodeKey(nil, vals...)
	if r, ok := t.buffer.Get(key, readTS); ok {
		return r, true, nil
	}
	view := t.SnapshotAt(readTS)
	matches, probes := t.idx.LookupTuple(uk, vals)
	t.Stats.IndexProbes.Add(int64(probes))
	for _, m := range matches {
		for _, meta := range view.Segs {
			if meta.Seg.ID != m.SegID {
				continue
			}
			for _, off := range m.Rows {
				if !meta.Deleted.Get(int(off)) {
					return meta.Seg.RowAt(int(off)), true, nil
				}
			}
		}
	}
	return nil, false, nil
}

// LookupEqual returns all live rows where col == val, using the secondary
// index when available and scans otherwise.
func (t *Table) LookupEqual(col int, val types.Value) []types.Row {
	if t.ensureProbeReady() != nil {
		return nil // unhydratable cold table: no rows reachable
	}
	view := t.Snapshot()
	var out []types.Row
	view.ScanBuffer(func(r types.Row) bool {
		if types.Equal(r[col], val) {
			out = append(out, r)
		}
		return true
	})
	if t.idx.HasColumn(col) {
		matches, probes := t.idx.LookupColumn(col, val)
		t.Stats.IndexProbes.Add(int64(probes))
		for _, m := range matches {
			for _, meta := range view.Segs {
				if meta.Seg.ID != m.SegID {
					continue
				}
				for _, off := range m.Rows {
					if !meta.Deleted.Get(int(off)) {
						out = append(out, meta.Seg.RowAt(int(off)))
					}
				}
			}
		}
		return out
	}
	for _, meta := range view.Segs {
		if !meta.Seg.MayContain(col, int(vector.Eq), val) {
			t.Stats.SegmentsEliminated.Add(1)
			continue
		}
		for i := 0; i < meta.Seg.NumRows; i++ {
			if !meta.Deleted.Get(i) && types.Equal(meta.Seg.ValueAt(i, col), val) {
				out = append(out, meta.Seg.RowAt(i))
			}
		}
	}
	return out
}

// UniqueWhere builds a Where matching exactly the given unique key values.
func (t *Table) UniqueWhere(vals []types.Value) Where {
	uk := t.schema.UniqueKey
	return Where{Col: -1, Pred: func(r types.Row) bool {
		for i, c := range uk {
			if !types.Equal(r[c], vals[i]) {
				return false
			}
		}
		return true
	}}
}

// UpdateByUnique rewrites the single row with the given unique key values,
// using the buffer fast path or a targeted move transaction (§4.2). It
// reports whether a row was found.
func (t *Table) UpdateByUnique(vals []types.Value, set func(types.Row) types.Row) (bool, error) {
	uk := t.schema.UniqueKey
	if len(uk) == 0 {
		return false, ErrNoUniqueKey
	}
	if err := t.ensureProbeReady(); err != nil {
		return false, fmt.Errorf("update %s: %w", t.name, err)
	}
	key := types.EncodeKey(nil, vals...)
	for attempt := 0; attempt < 3; attempt++ {
		readTS := t.committer.Oracle().ReadTS()
		tx := t.buffer.Begin(readTS)
		cur, ok, err := tx.LockAndGet(key)
		if err != nil {
			tx.Abort()
			return false, err
		}
		if !ok {
			tx.Abort()
			// The row may live in a segment: locate via the tuple index and
			// move it under the buffer row lock. The snapshot must be taken
			// *after* the buffer miss — a flush that tombstoned the buffer
			// row has already committed, so only a fresh snapshot sees its
			// segment.
			view := t.SnapshotAt(t.committer.Oracle().ReadTS())
			matches, probes := t.idx.LookupTuple(uk, vals)
			t.Stats.IndexProbes.Add(int64(probes))
			var locs []segLoc
			for _, m := range matches {
				if off, live := t.liveMatch(view, m); live {
					locs = append(locs, segLoc{seg: m.SegID, off: off, key: key})
				}
			}
			if len(locs) == 0 {
				return false, nil
			}
			if err := t.moveToBuffer(locs); err != nil {
				return false, err
			}
			continue // retry through the buffer path
		}
		nr := set(cur.Clone())
		if err := t.schema.CheckRow(nr); err != nil {
			tx.Abort()
			return false, err
		}
		if string(types.KeyOf(nr, uk)) != string(key) {
			tx.Abort()
			return false, fmt.Errorf("update %s: changing unique key columns is not supported", t.name)
		}
		if _, err := tx.Insert(key, nr); err != nil {
			tx.Abort()
			return false, err
		}
		payload := t.encodeLog(&mutation{Inserts: []kv{{Key: key, Row: nr}}})
		t.committer.Commit(func(ts uint64) {
			tx.Commit(ts)
			t.appendEncoded(wal.KindInsert, ts, payload)
		})
		t.Stats.Updates.Add(1)
		return true, nil
	}
	return false, fmt.Errorf("update %s: too many move retries", t.name)
}

// DeleteByUnique removes the single row with the given unique key values.
func (t *Table) DeleteByUnique(vals []types.Value) (bool, error) {
	uk := t.schema.UniqueKey
	if len(uk) == 0 {
		return false, ErrNoUniqueKey
	}
	if err := t.ensureProbeReady(); err != nil {
		return false, fmt.Errorf("delete %s: %w", t.name, err)
	}
	key := types.EncodeKey(nil, vals...)
	for attempt := 0; attempt < 3; attempt++ {
		readTS := t.committer.Oracle().ReadTS()
		tx := t.buffer.Begin(readTS)
		_, ok, err := tx.LockAndGet(key)
		if err != nil {
			tx.Abort()
			return false, err
		}
		if !ok {
			tx.Abort()
			// Fresh snapshot: see UpdateByUnique.
			view := t.SnapshotAt(t.committer.Oracle().ReadTS())
			matches, probes := t.idx.LookupTuple(uk, vals)
			t.Stats.IndexProbes.Add(int64(probes))
			var locs []segLoc
			for _, m := range matches {
				if off, live := t.liveMatch(view, m); live {
					locs = append(locs, segLoc{seg: m.SegID, off: off, key: key})
				}
			}
			if len(locs) == 0 {
				return false, nil
			}
			if err := t.moveToBuffer(locs); err != nil {
				return false, err
			}
			continue
		}
		if _, _, err := tx.DeleteLatest(key); err != nil {
			tx.Abort()
			return false, err
		}
		payload := t.encodeLog(&mutation{DeleteKeys: [][]byte{key}})
		t.committer.Commit(func(ts uint64) {
			tx.Commit(ts)
			t.appendEncoded(wal.KindDelete, ts, payload)
		})
		t.Stats.Deletes.Add(1)
		return true, nil
	}
	return false, fmt.Errorf("delete %s: too many move retries", t.name)
}
