package core

import (
	"encoding/binary"
	"fmt"

	"s2db/internal/bitmap"
	"s2db/internal/colstore"
	"s2db/internal/types"
)

// SerializeState captures the table's state at ts: the buffer rows plus the
// segment manifest (file names, runs, deleted bits). Segment payloads are
// not embedded — they live as immutable data files in the FileStore/blob
// store — which matches the paper's snapshot design ("snapshots of rowstore
// data", §3.1: column data files are already durable on their own).
func (t *Table) SerializeState(ts uint64) []byte {
	var buf []byte
	// Buffer rows.
	var n uint64
	lenPos := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	t.buffer.Scan(nil, nil, ts, func(k []byte, r types.Row) bool {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = types.EncodeRow(buf, r)
		n++
		return true
	})
	binary.LittleEndian.PutUint64(buf[lenPos:], n)
	// Segment manifest at ts.
	view := t.SnapshotAt(ts)
	buf = binary.AppendUvarint(buf, uint64(len(view.Segs)))
	for _, m := range view.Segs {
		buf = binary.AppendUvarint(buf, m.Seg.ID)
		buf = binary.AppendUvarint(buf, uint64(m.Seg.NumRows))
		buf = binary.AppendUvarint(buf, uint64(len(m.File)))
		buf = append(buf, m.File...)
		buf = binary.AppendVarint(buf, int64(m.Run))
		buf = m.Deleted.AppendBinary(buf)
	}
	buf = binary.AppendUvarint(buf, t.rowID.Load())
	return buf
}

// RestoreState loads a serialized state into an empty table at timestamp
// ts. By default segments install as metadata-only stubs straight from the
// manifest — the call returns in O(manifest) — and the hydration worker
// pool fetches payloads from the FileStore (which pulls from blob storage
// on a replica or during PITR) in the background, readahead in view order,
// with scans demand-fetching ahead of it. Config.EagerHydration restores
// the fetch-everything-first baseline. Either way a restore that fails
// installs nothing.
func (t *Table) RestoreState(data []byte, ts uint64) error {
	if len(data) < 8 {
		return fmt.Errorf("restore %s: truncated state", t.name)
	}
	n := binary.LittleEndian.Uint64(data)
	p := 8
	tx := t.buffer.Begin(0)
	for i := uint64(0); i < n; i++ {
		kl, k := binary.Uvarint(data[p:])
		if k <= 0 || p+k+int(kl) > len(data) {
			tx.Abort()
			return fmt.Errorf("restore %s: bad buffer key", t.name)
		}
		key := append([]byte(nil), data[p+k:p+k+int(kl)]...)
		p += k + int(kl)
		row, used, err := types.DecodeRow(data[p:])
		if err != nil {
			tx.Abort()
			return fmt.Errorf("restore %s: %w", t.name, err)
		}
		p += used
		if _, err := tx.Insert(key, row); err != nil {
			tx.Abort()
			return err
		}
		t.noteRowID(key)
	}
	ns, k := binary.Uvarint(data[p:])
	if k <= 0 {
		tx.Abort()
		return fmt.Errorf("restore %s: bad segment count", t.name)
	}
	p += k
	type manifestEntry struct {
		id      uint64
		numRows int
		file    string
		run     int
		del     *bitmap.Bitmap
	}
	// The whole manifest parses before anything installs: a truncated or
	// corrupt entry anywhere aborts the restore with zero segments (stub or
	// otherwise) left behind.
	entries := make([]manifestEntry, 0, ns)
	for i := uint64(0); i < ns; i++ {
		id, k := binary.Uvarint(data[p:])
		if k <= 0 {
			tx.Abort()
			return fmt.Errorf("restore %s: bad segment id", t.name)
		}
		p += k
		nr, k := binary.Uvarint(data[p:])
		if k <= 0 {
			tx.Abort()
			return fmt.Errorf("restore %s: bad segment row count", t.name)
		}
		p += k
		fl, k := binary.Uvarint(data[p:])
		if k <= 0 || p+k+int(fl) > len(data) {
			tx.Abort()
			return fmt.Errorf("restore %s: bad file name", t.name)
		}
		file := string(data[p+k : p+k+int(fl)])
		p += k + int(fl)
		run, k := binary.Varint(data[p:])
		if k <= 0 {
			tx.Abort()
			return fmt.Errorf("restore %s: bad run", t.name)
		}
		p += k
		del, used, err := bitmap.Decode(data[p:])
		if err != nil {
			tx.Abort()
			return fmt.Errorf("restore %s: %w", t.name, err)
		}
		p += used
		entries = append(entries, manifestEntry{id: id, numRows: int(nr), file: file, run: int(run), del: del})
	}
	if rid, k := binary.Uvarint(data[p:]); k > 0 {
		if rid > t.rowID.Load() {
			t.rowID.Store(rid)
		}
	}
	segs := make([]*colstore.Segment, len(entries))
	if t.cfg.EagerHydration {
		// Ablation baseline: fetch and decode every payload before the
		// table becomes usable (serial, segments × blob latency). A failure
		// anywhere installs nothing.
		for i, e := range entries {
			payload, err := t.files.LoadFile(e.file)
			if err != nil {
				tx.Abort()
				return fmt.Errorf("restore %s: segment file %s: %w", t.name, e.file, err)
			}
			seg, err := colstore.Decode(payload, t.schema)
			if err != nil {
				tx.Abort()
				return fmt.Errorf("restore %s: segment %s: %w", t.name, e.file, err)
			}
			if seg.ID != e.id || seg.NumRows != e.numRows {
				tx.Abort()
				return fmt.Errorf("restore %s: segment %s: payload is segment %d/%d rows, manifest says %d/%d",
					t.name, e.file, seg.ID, seg.NumRows, e.id, e.numRows)
			}
			segs[i] = seg
		}
	} else {
		// Lazy hydration: install metadata-only stubs — the restore returns
		// in O(manifest) — and let the hydrator's readahead pull payloads in
		// view order behind it. Scans that outrun the readahead demand-fetch
		// the segment they need and block only on it.
		for i, e := range entries {
			segs[i] = colstore.NewStub(e.id, e.numRows, t.schema)
		}
	}
	t.committer.ReplayAt(ts, func() {
		for i, e := range entries {
			t.installSegment(ts, segs[i], e.run, e.file, e.del)
		}
		tx.Commit(ts)
	})
	if !t.cfg.EagerHydration && len(entries) > 0 {
		h := t.hydrator()
		view := t.SnapshotAt(ts)
		for _, m := range view.Segs {
			h.prefetch(m)
		}
	}
	return nil
}
