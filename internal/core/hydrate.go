package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"s2db/internal/colstore"
)

// ErrTableClosed is returned by hydration waits interrupted by Table.Close.
var ErrTableClosed = errors.New("core: table closed")

// FileLoaderCtx is an optional FileStore extension: a context-aware load
// whose cancellation abandons the caller's wait without aborting a shared
// in-flight blob fetch (other waiters and the cache still get the result).
// The cluster's blob-backed file store implements it via
// blob.FileCache.GetCtx; stores without it fall back to LoadFile.
type FileLoaderCtx interface {
	LoadFileCtx(ctx context.Context, name string) ([]byte, error)
}

func (t *Table) loadFileCtx(ctx context.Context, name string) ([]byte, error) {
	if fs, ok := t.files.(FileLoaderCtx); ok {
		return fs.LoadFileCtx(ctx, name)
	}
	return t.files.LoadFile(name)
}

// hydroTask is one segment's pending payload fetch. It is single-flight:
// tasks is keyed by segment ID, so any number of demanding scans and the
// restore readahead share one fetch+decode. done closes when the attempt
// finishes; on failure the task is removed from the map first, so the next
// demand retries with a fresh task.
type hydroTask struct {
	seg  *colstore.Segment
	file string
	// demanded marks a scan blocked on this segment: demanded tasks jump
	// the readahead queue and are fetched even after the segment is
	// dropped (an old-snapshot reader still needs the payload).
	demanded bool
	// claimed marks the task as taken by a worker; queue entries that were
	// re-prioritized leave a claimed or demanded shadow behind that pops
	// skip.
	claimed bool
	done    chan struct{}
	err     error
}

// hydrator fetches and decodes stub-segment payloads for one table through
// a bounded worker pool. Two queues feed the workers: demand (scans blocked
// on a specific segment; always served first) and readahead (restore and
// scan prefetch in view order). It is created lazily by Table.hydrator()
// the first time a stub exists, and stopped by Table.Close.
type hydrator struct {
	t      *Table
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	tasks     map[uint64]*hydroTask
	demand    []*hydroTask
	readahead []*hydroTask

	wake    chan struct{}
	stopped chan struct{}
	wg      sync.WaitGroup
}

func newHydrator(t *Table) *hydrator {
	ctx, cancel := context.WithCancel(context.Background())
	h := &hydrator{
		t:       t,
		ctx:     ctx,
		cancel:  cancel,
		tasks:   make(map[uint64]*hydroTask),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	for w := 0; w < t.cfg.HydrationWorkers; w++ {
		h.wg.Add(1)
		go h.worker()
	}
	return h
}

func (h *hydrator) stop() {
	h.cancel()
	close(h.stopped)
	h.wg.Wait()
}

func (h *hydrator) wakeUp() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// ensure registers (or re-prioritizes) the single-flight task for a
// segment. A demand on a queued readahead task moves it to the demand
// class; a demand on a task already claimed by a worker just marks it so
// the worker will not skip it.
func (h *hydrator) ensure(seg *colstore.Segment, file string, demand bool) *hydroTask {
	h.mu.Lock()
	defer h.mu.Unlock()
	if task, ok := h.tasks[seg.ID]; ok {
		if demand && !task.demanded {
			task.demanded = true
			if !task.claimed {
				// Jump the queue: the readahead copy becomes a shadow that
				// pops skip (it is demanded but owned by the demand queue).
				h.demand = append(h.demand, task)
				h.wakeUp()
			}
		}
		return task
	}
	task := &hydroTask{seg: seg, file: file, demanded: demand, done: make(chan struct{})}
	h.tasks[seg.ID] = task
	if demand {
		h.demand = append(h.demand, task)
	} else {
		h.readahead = append(h.readahead, task)
	}
	h.wakeUp()
	return task
}

// prefetch queues a readahead fetch if the segment is cold and not already
// queued or in flight.
func (h *hydrator) prefetch(m *colstore.Meta) {
	if m.Seg.Hydrated() {
		return
	}
	h.ensure(m.Seg, m.File, false)
}

// popLocked returns the next task to run: the demand queue drains before
// any readahead. Caller holds mu.
func (h *hydrator) popLocked() *hydroTask {
	for len(h.demand) > 0 {
		task := h.demand[0]
		h.demand = h.demand[1:]
		if !task.claimed {
			task.claimed = true
			return task
		}
	}
	for len(h.readahead) > 0 {
		task := h.readahead[0]
		h.readahead = h.readahead[1:]
		if task.claimed || task.demanded {
			continue // shadow: the demand queue owns it now
		}
		task.claimed = true
		return task
	}
	return nil
}

func (h *hydrator) worker() {
	defer h.wg.Done()
	for {
		h.mu.Lock()
		task := h.popLocked()
		h.mu.Unlock()
		if task == nil {
			select {
			case <-h.wake:
				continue
			case <-h.stopped:
				return
			}
		}
		h.run(task)
	}
}

// run performs one fetch+decode attempt. Dropped segments are skipped
// unless a scan demanded them (a reader at a pre-merge snapshot still needs
// the payload); everything else fetches through the table's file store —
// context-aware when the store supports it — and adopts the payload into
// the stub in place.
func (h *hydrator) run(task *hydroTask) {
	t := h.t
	seg := task.seg
	if seg.Hydrated() {
		h.finish(task, nil)
		return
	}
	h.mu.Lock()
	demanded := task.demanded
	h.mu.Unlock()
	if !demanded && t.segmentDropped(seg.ID) {
		// A merge or replayed drop retired the stub before any reader
		// needed it: release its slot without fetching. A later demand
		// re-registers a fresh task and does fetch.
		h.finish(task, nil)
		return
	}
	data, err := t.loadFileCtx(h.ctx, task.file)
	if err == nil {
		var decoded *colstore.Segment
		decoded, err = colstore.Decode(data, t.schema)
		if err == nil {
			err = seg.AdoptPayload(decoded)
		}
	}
	if err != nil {
		t.Stats.HydrationErrors.Add(1)
		h.finish(task, fmt.Errorf("hydrate %s: segment file %s: %w", t.name, task.file, err))
		return
	}
	t.Stats.Hydrations.Add(1)
	t.noteHydrated(seg)
	h.finish(task, nil)
}

// finish completes a task: the map entry is removed before done closes, so
// a failed segment is immediately retryable by the next demand.
func (h *hydrator) finish(task *hydroTask, err error) {
	h.mu.Lock()
	if h.tasks[task.seg.ID] == task {
		delete(h.tasks, task.seg.ID)
	}
	task.err = err
	h.mu.Unlock()
	close(task.done)
}

// wait blocks until the segment is hydrated, ctx is cancelled, or the
// fetch fails terminally. Cancellation abandons only this caller's wait;
// the fetch keeps running for other waiters.
func (h *hydrator) wait(ctx context.Context, m *colstore.Meta) error {
	for {
		if m.Seg.Hydrated() {
			return nil
		}
		task := h.ensure(m.Seg, m.File, true)
		select {
		case <-task.done:
			if m.Seg.Hydrated() {
				return nil
			}
			if task.err != nil {
				return task.err
			}
			// The worker skipped a dropped readahead before our demand flag
			// landed; loop: the fresh task will be demanded from birth.
		case <-ctx.Done():
			return ctx.Err()
		case <-h.stopped:
			return ErrTableClosed
		}
	}
}

// waitAll demand-hydrates every cold segment in metas and blocks until all
// are resident (the worker pool fetches them in parallel).
func (h *hydrator) waitAll(ctx context.Context, metas []*colstore.Meta) error {
	for _, m := range metas {
		if !m.Seg.Hydrated() {
			h.ensure(m.Seg, m.File, true)
		}
	}
	for _, m := range metas {
		if err := h.wait(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

// hydrator returns the table's hydrator, creating and starting it on first
// use (tables that never install stubs never spawn the worker pool).
func (t *Table) hydrator() *hydrator {
	if h := t.hydr.Load(); h != nil {
		return h
	}
	t.hydrOnce.Do(func() {
		t.hydr.Store(newHydrator(t))
	})
	return t.hydr.Load()
}

// segmentDropped reports whether the segment entry is gone or retired at
// the latest timestamp.
func (t *Table) segmentDropped(id uint64) bool {
	t.segMu.RLock()
	e := t.segs[id]
	t.segMu.RUnlock()
	return e == nil || e.dropTS.Load() != 0
}

// noteHydrated runs the deferred parts of installSegment once a stub's
// payload arrives: the segment joins the secondary indexes (skipped when a
// merge already dropped it — index matches are view-filtered, so a lost
// race leaves only a lazily-ignored entry) and the live-stub accounting
// that gates index probes is released.
func (t *Table) noteHydrated(seg *colstore.Segment) {
	t.segMu.RLock()
	e := t.segs[seg.ID]
	t.segMu.RUnlock()
	if e != nil && e.dropTS.Load() == 0 {
		t.idx.AddSegment(seg)
	}
	if e != nil && e.stub.CompareAndSwap(true, false) {
		t.unhydrated.Add(-1)
	}
}

// ensureProbeReady blocks until every live segment is hydrated and indexed.
// Index probes (unique-key enforcement, indexed updates/deletes, point
// lookups) need the secondary indexes to cover every live row, and stubs
// are indexed only at hydration — so the first write/probe against a
// lazily-restored table pays for full hydration, while reads stay lazy.
// On a warm table this is one atomic load.
func (t *Table) ensureProbeReady() error {
	if t.unhydrated.Load() == 0 {
		return nil
	}
	view := t.SnapshotAt(t.committer.Oracle().ReadTS())
	return t.hydrator().waitAll(context.Background(), view.Segs)
}

// Hydrated reports whether every segment in the view has its payload
// resident.
func (v *View) Hydrated() bool {
	for _, m := range v.Segs {
		if !m.Seg.Hydrated() {
			return false
		}
	}
	return true
}

// HydrateSegment blocks until the view's si-th segment is hydrated,
// demand-prioritized ahead of all readahead, and queues the rest of the
// view (in view order) behind it — the scan's remaining segments prefetch
// while it processes this one. Cancelling ctx abandons the wait but never
// the shared fetch.
func (v *View) HydrateSegment(ctx context.Context, si int) error {
	m := v.Segs[si]
	if m.Seg.Hydrated() {
		return nil
	}
	h := v.table.hydrator()
	for _, later := range v.Segs[si+1:] {
		h.prefetch(later)
	}
	return h.wait(ctx, m)
}

// HydrateAll blocks until every segment in the view is resident, fetching
// cold ones in parallel on the hydration workers. Restore-to-warm helpers
// and the equivalence harness use it; normal scans hydrate on demand.
func (v *View) HydrateAll(ctx context.Context) error {
	if v.Hydrated() {
		return nil
	}
	return v.table.hydrator().waitAll(ctx, v.Segs)
}

// WaitHydrated blocks until every segment live at the latest snapshot is
// resident — RestoreState's lazy counterpart to the eager path's "return
// only when everything is loaded".
func (t *Table) WaitHydrated(ctx context.Context) error {
	if t.unhydrated.Load() == 0 {
		return nil
	}
	return t.Snapshot().HydrateAll(ctx)
}
