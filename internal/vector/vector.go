// Package vector implements the typed column vectors and vectorized kernels
// the execution engine runs on (§2.1.2: "columnstore tables support
// vectorized execution" with late materialization). Filters consume and
// produce selection vectors so that later clauses only touch surviving rows.
package vector

import (
	"fmt"

	"s2db/internal/types"
)

// CmpOp is a comparison operator for filter kernels.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String names the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// CmpInt reports whether "a op b" holds.
func CmpInt(a int64, op CmpOp, b int64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}

// CmpFloat reports whether "a op b" holds.
func CmpFloat(a float64, op CmpOp, b float64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}

// CmpString reports whether "a op b" holds.
func CmpString(a string, op CmpOp, b string) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}

// CmpValue reports whether "a op b" holds for dynamically-typed values.
func CmpValue(a types.Value, op CmpOp, b types.Value) bool {
	if a.IsNull || b.IsNull {
		return false // SQL three-valued logic: comparisons with NULL are not true
	}
	c := types.Compare(a, b)
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

// Vector is a typed column of values. Exactly one of the data slices is
// populated, selected by Type.
type Vector struct {
	Type   types.ColType
	Ints   []int64
	Floats []float64
	Strs   []string
	// Nulls marks null rows; nil means no nulls.
	Nulls []bool
}

// NewVector allocates a vector of the given type with capacity n.
func NewVector(t types.ColType, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case types.Int64:
		v.Ints = make([]int64, 0, n)
	case types.Float64:
		v.Floats = make([]float64, 0, n)
	case types.String:
		v.Strs = make([]string, 0, n)
	}
	return v
}

// Len returns the number of rows.
func (v *Vector) Len() int {
	switch v.Type {
	case types.Int64:
		return len(v.Ints)
	case types.Float64:
		return len(v.Floats)
	default:
		return len(v.Strs)
	}
}

// Append adds a value to the vector.
func (v *Vector) Append(val types.Value) {
	switch v.Type {
	case types.Int64:
		v.Ints = append(v.Ints, val.I)
	case types.Float64:
		v.Floats = append(v.Floats, val.F)
	default:
		v.Strs = append(v.Strs, val.S)
	}
	if val.IsNull && v.Nulls == nil {
		v.Nulls = make([]bool, v.Len()-1)
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, val.IsNull)
	}
}

// Value returns row i as a dynamically-typed value.
func (v *Vector) Value(i int) types.Value {
	if v.Nulls != nil && v.Nulls[i] {
		return types.Null(v.Type)
	}
	switch v.Type {
	case types.Int64:
		return types.NewInt(v.Ints[i])
	case types.Float64:
		return types.NewFloat(v.Floats[i])
	default:
		return types.NewString(v.Strs[i])
	}
}

// FilterIntConst keeps the selected offsets whose value in vals satisfies
// "vals[i] op rhs". sel lists candidate offsets; the surviving offsets are
// appended to out and returned.
func FilterIntConst(vals []int64, op CmpOp, rhs int64, sel []int32, out []int32) []int32 {
	// Specializing the operator outside the loop keeps the hot loop
	// branch-predictable, the vectorized-interpretation analog of the
	// paper's operator specialization [7].
	switch op {
	case Eq:
		for _, i := range sel {
			if vals[i] == rhs {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			if vals[i] != rhs {
				out = append(out, i)
			}
		}
	case Lt:
		for _, i := range sel {
			if vals[i] < rhs {
				out = append(out, i)
			}
		}
	case Le:
		for _, i := range sel {
			if vals[i] <= rhs {
				out = append(out, i)
			}
		}
	case Gt:
		for _, i := range sel {
			if vals[i] > rhs {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if vals[i] >= rhs {
				out = append(out, i)
			}
		}
	}
	return out
}

// FilterFloatConst is FilterIntConst for float columns.
func FilterFloatConst(vals []float64, op CmpOp, rhs float64, sel []int32, out []int32) []int32 {
	for _, i := range sel {
		if CmpFloat(vals[i], op, rhs) {
			out = append(out, i)
		}
	}
	return out
}

// FilterStringConst is FilterIntConst for string columns.
func FilterStringConst(vals []string, op CmpOp, rhs string, sel []int32, out []int32) []int32 {
	switch op {
	case Eq:
		for _, i := range sel {
			if vals[i] == rhs {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if CmpString(vals[i], op, rhs) {
				out = append(out, i)
			}
		}
	}
	return out
}

// SeqSel returns the identity selection [0, n).
func SeqSel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// SumIntSel sums vals at the selected offsets.
func SumIntSel(vals []int64, sel []int32) int64 {
	var s int64
	for _, i := range sel {
		s += vals[i]
	}
	return s
}

// SumFloatSel sums vals at the selected offsets.
func SumFloatSel(vals []float64, sel []int32) float64 {
	var s float64
	for _, i := range sel {
		s += vals[i]
	}
	return s
}

// MinMaxInt returns the min and max of vals at the selected offsets.
// ok is false when sel is empty.
func MinMaxInt(vals []int64, sel []int32) (minV, maxV int64, ok bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	minV, maxV = vals[sel[0]], vals[sel[0]]
	for _, i := range sel[1:] {
		v := vals[i]
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, true
}
