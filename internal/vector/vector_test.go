package vector

import (
	"testing"
	"testing/quick"

	"s2db/internal/types"
)

func TestCmpOps(t *testing.T) {
	cases := []struct {
		a    int64
		op   CmpOp
		b    int64
		want bool
	}{
		{1, Eq, 1, true}, {1, Eq, 2, false},
		{1, Ne, 2, true}, {1, Ne, 1, false},
		{1, Lt, 2, true}, {2, Lt, 2, false},
		{2, Le, 2, true}, {3, Le, 2, false},
		{3, Gt, 2, true}, {2, Gt, 2, false},
		{2, Ge, 2, true}, {1, Ge, 2, false},
	}
	for _, c := range cases {
		if got := CmpInt(c.a, c.op, c.b); got != c.want {
			t.Errorf("CmpInt(%d %v %d) = %v", c.a, c.op, c.b, got)
		}
		if got := CmpFloat(float64(c.a), c.op, float64(c.b)); got != c.want {
			t.Errorf("CmpFloat(%d %v %d) = %v", c.a, c.op, c.b, got)
		}
	}
	if !CmpString("a", Lt, "b") || CmpString("b", Eq, "a") {
		t.Error("CmpString basic cases wrong")
	}
}

func TestCmpValueNulls(t *testing.T) {
	n := types.Null(types.Int64)
	v := types.NewInt(5)
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		if CmpValue(n, op, v) || CmpValue(v, op, n) || CmpValue(n, op, n) {
			t.Errorf("comparison with NULL under %v must be false", op)
		}
	}
}

func TestFilterIntConstAllOps(t *testing.T) {
	vals := []int64{5, 1, 3, 9, 3}
	sel := SeqSel(len(vals))
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		got := FilterIntConst(vals, op, 3, sel, nil)
		var want []int32
		for i, v := range vals {
			if CmpInt(v, op, 3) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %v: got %v want %v", op, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("op %v: got %v want %v", op, got, want)
			}
		}
	}
}

func TestFilterChaining(t *testing.T) {
	a := []int64{1, 2, 3, 4, 5, 6}
	b := []int64{6, 5, 4, 3, 2, 1}
	sel := FilterIntConst(a, Gt, 2, SeqSel(6), nil) // rows 2..5
	sel = FilterIntConst(b, Gt, 2, sel, nil)        // rows where both > 2: 2, 3
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("chained filter got %v, want [2 3]", sel)
	}
}

func TestVectorAppendValue(t *testing.T) {
	v := NewVector(types.String, 4)
	v.Append(types.NewString("x"))
	v.Append(types.Null(types.String))
	v.Append(types.NewString("y"))
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Value(0).S != "x" || !v.Value(1).IsNull || v.Value(2).S != "y" {
		t.Fatalf("values wrong: %v %v %v", v.Value(0), v.Value(1), v.Value(2))
	}
}

func TestAggKernels(t *testing.T) {
	vals := []int64{10, -2, 7, 7}
	sel := SeqSel(4)
	if s := SumIntSel(vals, sel); s != 22 {
		t.Fatalf("SumIntSel = %d", s)
	}
	minV, maxV, ok := MinMaxInt(vals, sel)
	if !ok || minV != -2 || maxV != 10 {
		t.Fatalf("MinMaxInt = %d %d %v", minV, maxV, ok)
	}
	if _, _, ok := MinMaxInt(vals, nil); ok {
		t.Fatal("MinMaxInt of empty selection should report !ok")
	}
	fs := SumFloatSel([]float64{1.5, 2.5}, SeqSel(2))
	if fs != 4.0 {
		t.Fatalf("SumFloatSel = %g", fs)
	}
}

// Property: filter kernels agree with scalar evaluation for every operator.
func TestQuickFilterMatchesScalar(t *testing.T) {
	f := func(vals []int64, rhs int64, opRaw uint8) bool {
		op := CmpOp(opRaw % 6)
		got := FilterIntConst(vals, op, rhs, SeqSel(len(vals)), nil)
		j := 0
		for i, v := range vals {
			if CmpInt(v, op, rhs) {
				if j >= len(got) || got[j] != int32(i) {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterFloatConst(t *testing.T) {
	vals := []float64{1.5, -2.5, 3.25, 0}
	sel := SeqSel(len(vals))
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		got := FilterFloatConst(vals, op, 1.5, sel, nil)
		var want []int32
		for i, v := range vals {
			if CmpFloat(v, op, 1.5) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %v: got %v want %v", op, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("op %v: got %v want %v", op, got, want)
			}
		}
	}
}

func TestFilterStringConst(t *testing.T) {
	vals := []string{"b", "a", "c", "b"}
	sel := SeqSel(len(vals))
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		got := FilterStringConst(vals, op, "b", sel, nil)
		var want []int32
		for i, v := range vals {
			if CmpString(v, op, "b") {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %v: got %v want %v", op, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("op %v: got %v want %v", op, got, want)
			}
		}
	}
}

func TestCmpOpString(t *testing.T) {
	names := map[CmpOp]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%v.String() = %q", op, op.String())
		}
	}
	if CmpOp(99).String() == "" {
		t.Fatal("unknown op should still render")
	}
}

func TestVectorAllTypes(t *testing.T) {
	for _, typ := range []types.ColType{types.Int64, types.Float64, types.String} {
		v := NewVector(typ, 2)
		switch typ {
		case types.Int64:
			v.Append(types.NewInt(7))
		case types.Float64:
			v.Append(types.NewFloat(1.25))
		default:
			v.Append(types.NewString("s"))
		}
		if v.Len() != 1 {
			t.Fatalf("type %v: Len = %d", typ, v.Len())
		}
		if got := v.Value(0); got.Type != typ || got.IsNull {
			t.Fatalf("type %v: Value = %v", typ, got)
		}
	}
}

func TestCmpValueTyped(t *testing.T) {
	if !CmpValue(types.NewFloat(1), Lt, types.NewFloat(2)) {
		t.Fatal("float CmpValue broken")
	}
	if !CmpValue(types.NewString("a"), Ne, types.NewString("b")) {
		t.Fatal("string CmpValue broken")
	}
	if !CmpValue(types.NewInt(3), Ge, types.NewInt(3)) {
		t.Fatal("int CmpValue broken")
	}
	if CmpValue(types.NewInt(3), Gt, types.NewInt(3)) {
		t.Fatal("Gt should be strict")
	}
	if !CmpValue(types.NewInt(2), Le, types.NewInt(3)) {
		t.Fatal("Le broken")
	}
}
