package exec

import (
	"s2db/internal/core"
	"s2db/internal/types"
)

// AggregateViews runs a grouped aggregation across several partition views
// and merges the partial results — the aggregator-node side of distributed
// query execution (§2). Avg is decomposed into Sum and Count so partials
// merge exactly.
func AggregateViews(views []*core.View, filter Node, groupCols []int, aggs []AggSpec, stats *ScanStats) []types.Row {
	partialSpecs := make([]AggSpec, 0, len(aggs)+2)
	avgParts := make(map[int][2]int)
	finalIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == Avg {
			sumIdx := len(partialSpecs)
			partialSpecs = append(partialSpecs, AggSpec{Func: Sum, Col: a.Col, Expr: a.Expr})
			countIdx := len(partialSpecs)
			partialSpecs = append(partialSpecs, AggSpec{Func: Count, Col: a.Col, Expr: a.Expr})
			avgParts[i] = [2]int{sumIdx, countIdx}
			finalIdx[i] = -1
			continue
		}
		finalIdx[i] = len(partialSpecs)
		partialSpecs = append(partialSpecs, a)
	}

	type acc struct {
		key  types.Row
		vals []types.Value
	}
	merged := map[string]*acc{}
	ng := len(groupCols)
	for _, v := range views {
		scan := NewScan(v, filter)
		partial := Aggregate(v, filter, groupCols, partialSpecs, scan)
		if stats != nil {
			accumulate(stats, scan.Stats)
		}
		for _, pr := range partial {
			key := pr[:ng]
			kb := types.EncodeKey(nil, key...)
			a, ok := merged[string(kb)]
			if !ok {
				a = &acc{key: key.Clone(), vals: make([]types.Value, len(partialSpecs))}
				copy(a.vals, pr[ng:])
				merged[string(kb)] = a
				continue
			}
			for si, spec := range partialSpecs {
				a.vals[si] = MergeAggValue(spec.Func, a.vals[si], pr[ng+si])
			}
		}
	}
	out := make([]types.Row, 0, len(merged))
	for _, a := range merged {
		row := make(types.Row, 0, ng+len(aggs))
		row = append(row, a.key...)
		for i, spec := range aggs {
			if spec.Func == Avg {
				parts := avgParts[i]
				sum, cnt := a.vals[parts[0]], a.vals[parts[1]]
				if cnt.IsNull || cnt.I == 0 {
					row = append(row, types.Null(types.Float64))
					continue
				}
				var s float64
				if sum.Type == types.Int64 {
					s = float64(sum.I)
				} else {
					s = sum.F
				}
				row = append(row, types.NewFloat(s/float64(cnt.I)))
				continue
			}
			row = append(row, a.vals[finalIdx[i]])
		}
		out = append(out, row)
	}
	return out
}

// MergeAggValue combines two partial aggregate values of the same function.
func MergeAggValue(f AggFunc, a, b types.Value) types.Value {
	switch f {
	case Count:
		return types.NewInt(a.I + b.I)
	case Sum:
		if a.Type == types.Int64 {
			return types.NewInt(a.I + b.I)
		}
		return types.NewFloat(a.F + b.F)
	case Min:
		if a.IsNull {
			return b
		}
		if b.IsNull || types.Compare(a, b) <= 0 {
			return a
		}
		return b
	default: // Max (Avg never reaches here: decomposed)
		if a.IsNull {
			return b
		}
		if b.IsNull || types.Compare(a, b) >= 0 {
			return a
		}
		return b
	}
}

func accumulate(dst *ScanStats, src ScanStats) {
	dst.SegmentsScanned += src.SegmentsScanned
	dst.SegmentsSkipped += src.SegmentsSkipped
	dst.IndexFilters += src.IndexFilters
	dst.EncodedFilters += src.EncodedFilters
	dst.RegularFilters += src.RegularFilters
	dst.GroupFilters += src.GroupFilters
	dst.RowsScanned += src.RowsScanned
	dst.RowsOutput += src.RowsOutput
	dst.GlobalIndexProbes += src.GlobalIndexProbes
	dst.JoinIndexFilters += src.JoinIndexFilters
	dst.JoinIndexFallbacks += src.JoinIndexFallbacks
}
