package exec

import (
	"s2db/internal/core"
	"s2db/internal/types"
)

// aggPlan is the mergeable partial-aggregation plan shared by the
// sequential and parallel fan-out paths: Avg is decomposed into Sum+Count
// so per-partition partials merge exactly, and the final projection maps
// partial slots back to the caller's aggregate list.
type aggPlan struct {
	groupCols    []int
	aggs         []AggSpec
	partialSpecs []AggSpec
	avgParts     map[int][2]int
	finalIdx     []int
}

// newAggPlan decomposes the aggregate list into mergeable partial specs.
func newAggPlan(groupCols []int, aggs []AggSpec) *aggPlan {
	p := &aggPlan{
		groupCols:    groupCols,
		aggs:         aggs,
		partialSpecs: make([]AggSpec, 0, len(aggs)+2),
		avgParts:     make(map[int][2]int),
		finalIdx:     make([]int, len(aggs)),
	}
	for i, a := range aggs {
		if a.Func == Avg {
			// ExprCols carries through so the partials keep projection
			// pushdown (and fused-kernel eligibility) for avg-of-expression.
			sumIdx := len(p.partialSpecs)
			p.partialSpecs = append(p.partialSpecs, AggSpec{Func: Sum, Col: a.Col, Expr: a.Expr, ExprCols: a.ExprCols})
			countIdx := len(p.partialSpecs)
			p.partialSpecs = append(p.partialSpecs, AggSpec{Func: Count, Col: a.Col, Expr: a.Expr, ExprCols: a.ExprCols})
			p.avgParts[i] = [2]int{sumIdx, countIdx}
			p.finalIdx[i] = -1
			continue
		}
		p.finalIdx[i] = len(p.partialSpecs)
		p.partialSpecs = append(p.partialSpecs, a)
	}
	return p
}

// partial computes one view's partial-aggregate rows through the given
// scan (whose Stats the caller harvests afterwards).
func (p *aggPlan) partial(view *core.View, filter Node, scan *Scan) []types.Row {
	return Aggregate(view, filter, p.groupCols, p.partialSpecs, scan)
}

// mergeFinalize merges per-view partial row sets — in slice order, so the
// result is deterministic for a given view order — and finalizes Avg.
func (p *aggPlan) mergeFinalize(partials [][]types.Row) []types.Row {
	type acc struct {
		key  types.Row
		vals []types.Value
	}
	merged := map[string]*acc{}
	var order []*acc
	ng := len(p.groupCols)
	for _, partial := range partials {
		for _, pr := range partial {
			key := pr[:ng]
			kb := types.EncodeKey(nil, key...)
			a, ok := merged[string(kb)]
			if !ok {
				a = &acc{key: key.Clone(), vals: make([]types.Value, len(p.partialSpecs))}
				copy(a.vals, pr[ng:])
				merged[string(kb)] = a
				order = append(order, a)
				continue
			}
			for si, spec := range p.partialSpecs {
				a.vals[si] = MergeAggValue(spec.Func, a.vals[si], pr[ng+si])
			}
		}
	}
	out := make([]types.Row, 0, len(order))
	for _, a := range order {
		row := make(types.Row, 0, ng+len(p.aggs))
		row = append(row, a.key...)
		for i, spec := range p.aggs {
			if spec.Func == Avg {
				parts := p.avgParts[i]
				sum, cnt := a.vals[parts[0]], a.vals[parts[1]]
				if cnt.IsNull || cnt.I == 0 {
					row = append(row, types.Null(types.Float64))
					continue
				}
				var s float64
				if sum.Type == types.Int64 {
					s = float64(sum.I)
				} else {
					s = sum.F
				}
				row = append(row, types.NewFloat(s/float64(cnt.I)))
				continue
			}
			row = append(row, a.vals[p.finalIdx[i]])
		}
		out = append(out, row)
	}
	return out
}

// AggregateViews runs a grouped aggregation across several partition views
// and merges the partial results — the aggregator-node side of distributed
// query execution (§2). Avg is decomposed into Sum and Count so partials
// merge exactly. This is the sequential path; AggregateViewsParallel fans
// the per-view partials onto a worker pool.
func AggregateViews(views []*core.View, filter Node, groupCols []int, aggs []AggSpec, stats *ScanStats) []types.Row {
	p := newAggPlan(groupCols, aggs)
	partials := make([][]types.Row, len(views))
	for i, v := range views {
		scan := NewScan(v, filter)
		partials[i] = p.partial(v, filter, scan)
		if stats != nil {
			accumulate(stats, scan.Stats)
		}
	}
	return p.mergeFinalize(partials)
}

// MergeAggValue combines two partial aggregate values of the same function.
func MergeAggValue(f AggFunc, a, b types.Value) types.Value {
	switch f {
	case Count:
		return types.NewInt(a.I + b.I)
	case Sum:
		if a.Type == types.Int64 {
			return types.NewInt(a.I + b.I)
		}
		return types.NewFloat(a.F + b.F)
	case Min:
		if a.IsNull {
			return b
		}
		if b.IsNull || types.Compare(a, b) <= 0 {
			return a
		}
		return b
	default: // Max (Avg never reaches here: decomposed)
		if a.IsNull {
			return b
		}
		if b.IsNull || types.Compare(a, b) >= 0 {
			return a
		}
		return b
	}
}

func accumulate(dst *ScanStats, src ScanStats) {
	dst.SegmentsScanned += src.SegmentsScanned
	dst.SegmentsSkipped += src.SegmentsSkipped
	dst.IndexFilters += src.IndexFilters
	dst.EncodedFilters += src.EncodedFilters
	dst.RegularFilters += src.RegularFilters
	dst.GroupFilters += src.GroupFilters
	dst.RowsScanned += src.RowsScanned
	dst.RowsOutput += src.RowsOutput
	dst.GlobalIndexProbes += src.GlobalIndexProbes
	dst.JoinIndexFilters += src.JoinIndexFilters
	dst.JoinIndexFallbacks += src.JoinIndexFallbacks
	dst.VecCacheHits += src.VecCacheHits
	dst.VecCacheMisses += src.VecCacheMisses
	dst.VecCacheWaits += src.VecCacheWaits
	dst.VecCacheEvictions += src.VecCacheEvictions
	dst.VecDecodes += src.VecDecodes
	dst.VecCacheSharedHits += src.VecCacheSharedHits
	dst.PlanCacheHits += src.PlanCacheHits
	dst.PlanCacheMisses += src.PlanCacheMisses
	dst.EncodedFilterSegs += src.EncodedFilterSegs
	dst.FusedAggSegs += src.FusedAggSegs
	dst.RowsMaterialized += src.RowsMaterialized
	dst.HydrationWaits += src.HydrationWaits
	dst.HydratedSegs += src.HydratedSegs
	dst.QoSWaits += src.QoSWaits
	dst.QoSWaitNanos += src.QoSWaitNanos
}

// AccumulateStats merges src into dst; the fan-out coordinator uses it to
// fold race-free per-worker stats after the pool joins.
func AccumulateStats(dst *ScanStats, src ScanStats) { accumulate(dst, src) }
