package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"s2db/internal/core"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// parallelFixture builds n single-partition tables standing in for n
// partitions of one sharded table, split between buffer and segments.
func parallelFixture(t testing.TB, parts, rows int) []*core.View {
	t.Helper()
	views := make([]*core.View, parts)
	for p := 0; p < parts; p++ {
		tbl := newTable(t, 256)
		var batch []types.Row
		for i := p; i < rows; i += parts {
			batch = append(batch, types.Row{
				types.NewInt(int64(i)),
				types.NewString(fmt.Sprintf("g%d", i%5)),
				types.NewInt(int64(i % 100)),
				types.NewFloat(float64(i) * 0.5),
			})
		}
		if err := tbl.BulkLoad(batch[:len(batch)/2]); err != nil {
			t.Fatal(err)
		}
		for _, r := range batch[len(batch)/2:] {
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		views[p] = tbl.Snapshot()
	}
	return views
}

func rowsEqual(t *testing.T, got, want []types.Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d arity %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if types.Compare(got[i][j], want[i][j]) != 0 {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRunTasksBoundsConcurrency(t *testing.T) {
	var cur, peak, ran atomic.Int64
	err := runTasks(context.Background(), 64, 4, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		ran.Add(1)
		cur.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", ran.Load())
	}
	if peak.Load() > 4 {
		t.Fatalf("peak concurrency %d exceeds pool bound 4", peak.Load())
	}
}

func TestAggregateViewsParallelMatchesSequential(t *testing.T) {
	views := parallelFixture(t, 4, 4000)
	filter := NewAnd(
		NewLeaf(2, vector.Ge, types.NewInt(10)),
		NewLeaf(1, vector.Ne, types.NewString("g3")),
	)
	groupCols := []int{1}
	aggs := []AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, Col: 2},
		{Func: Min, Col: 0},
		{Func: Max, Col: 0},
		{Func: Avg, Col: 3},
	}
	var seqStats, parStats ScanStats
	want := AggregateViews(views, CloneNode(filter), groupCols, aggs, &seqStats)
	got, err := AggregateViewsParallel(context.Background(), views, filter, groupCols, aggs, 8, &parStats)
	if err != nil {
		t.Fatal(err)
	}
	// The merge order is deterministic (view order), so the outputs must be
	// identical row for row, not just set-equal.
	rowsEqual(t, got, want, "parallel group-by")
	if parStats.RowsScanned != seqStats.RowsScanned || parStats.SegmentsScanned != seqStats.SegmentsScanned {
		t.Fatalf("parallel stats %+v diverge from sequential %+v", parStats, seqStats)
	}
}

func TestCollectRowsMatchesSequential(t *testing.T) {
	views := parallelFixture(t, 4, 2000)
	filter := NewLeaf(2, vector.Lt, types.NewInt(50))
	var want []types.Row
	for _, v := range views {
		s := NewScan(v, CloneNode(filter))
		s.Run(func(r types.Row) bool { want = append(want, r.Clone()); return true })
	}
	got, err := CollectRows(context.Background(), views, filter, -1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, got, want, "parallel row collection")
}

func TestCollectRowsEarlyLimit(t *testing.T) {
	views := parallelFixture(t, 4, 2000)
	for _, limit := range []int{0, 1, 7, 100, 1 << 20} {
		var want []types.Row
		for _, v := range views {
			s := NewScan(v, nil)
			s.Run(func(r types.Row) bool { want = append(want, r.Clone()); return true })
		}
		if len(want) > limit {
			want = want[:limit]
		}
		got, err := CollectRows(context.Background(), views, nil, limit, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, got, want, fmt.Sprintf("early limit %d", limit))
	}
}

// cancelNode is a pass-through filter that cancels the context on its
// first evaluation, making mid-scan cancellation deterministic.
type cancelNode struct {
	cancel context.CancelFunc
	once   sync.Once
	st     nodeStats
}

func (c *cancelNode) stats() *nodeStats { return &c.st }
func (c *cancelNode) EvalRow(types.Row) bool {
	c.once.Do(c.cancel)
	return true
}
func (c *cancelNode) EvalSeg(_ *SegContext, sel []int32, out []int32) []int32 {
	c.once.Do(c.cancel)
	return append(out, sel...)
}

func TestParallelCancellationMidScan(t *testing.T) {
	views := parallelFixture(t, 4, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	filter := &cancelNode{cancel: cancel}
	if _, err := AggregateViewsParallel(ctx, views, filter, []int{1}, []AggSpec{{Func: Count, Col: -1}}, 2, nil); err != context.Canceled {
		t.Fatalf("aggregate after mid-scan cancel: err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	if _, err := CollectRows(ctx2, views, &cancelNode{cancel: cancel2}, -1, 2, nil); err != context.Canceled {
		t.Fatalf("collect after mid-scan cancel: err = %v, want context.Canceled", err)
	}

	ctx3, cancel3 := context.WithCancel(context.Background())
	if _, err := CountViews(ctx3, views, &cancelNode{cancel: cancel3}, 2, nil); err != context.Canceled {
		t.Fatalf("count after mid-scan cancel: err = %v, want context.Canceled", err)
	}
}

func TestParallelPreCancelled(t *testing.T) {
	views := parallelFixture(t, 2, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AggregateViewsParallel(ctx, views, nil, nil, []AggSpec{{Func: Count, Col: -1}}, 0, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := CollectRows(ctx, views, nil, -1, 0, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := CountViews(ctx, views, nil, 0, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCountViewsMatchesSequential(t *testing.T) {
	views := parallelFixture(t, 4, 3000)
	filter := NewLeaf(1, vector.Eq, types.NewString("g2"))
	var want int64
	for _, v := range views {
		want += NewScan(v, CloneNode(filter)).Count()
	}
	got, err := CountViews(context.Background(), views, filter, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestResolveNames(t *testing.T) {
	views := parallelFixture(t, 1, 100)
	schema := views[0].Schema
	n, err := ResolveNames(NewAnd(
		NewNamedLeaf("val", vector.Ge, types.NewInt(5)),
		NewNamedIn("grp", []types.Value{types.NewString("g1"), types.NewString("g2")}),
	), schema)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := n.(*And)
	if !ok {
		t.Fatalf("resolved to %T", n)
	}
	if l := and.Children[0].(*Leaf); l.Col != 2 {
		t.Fatalf("val resolved to ordinal %d, want 2", l.Col)
	}
	if l := and.Children[1].(*Leaf); l.Col != 1 || len(l.In) != 2 {
		t.Fatalf("grp IN resolved to %+v", l)
	}
	if _, err := ResolveNames(NewNamedLeaf("nope", vector.Eq, types.NewInt(0)), schema); err == nil {
		t.Fatal("unknown column resolved without error")
	}
	if _, err := ResolveNames(NewLeaf(99, vector.Eq, types.NewInt(0)), schema); err == nil {
		t.Fatal("out-of-range ordinal resolved without error")
	}
	// Unresolved evaluation is a programming error and must panic loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unresolved NamedLeaf evaluated without panic")
			}
		}()
		NewNamedLeaf("x", vector.Eq, types.NewInt(0)).EvalRow(nil)
	}()
}

func TestResolveAggSpecs(t *testing.T) {
	views := parallelFixture(t, 1, 10)
	schema := views[0].Schema
	resolved, err := ResolveAggSpecs([]AggSpec{
		{Func: Count, Col: -1},
		{Func: Sum, ColName: "val"},
		{Func: Avg, ColName: "price"},
	}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if resolved[1].Col != 2 || resolved[1].ColName != "" {
		t.Fatalf("sum(val) resolved to %+v", resolved[1])
	}
	if resolved[2].Col != 3 {
		t.Fatalf("avg(price) resolved to %+v", resolved[2])
	}
	if _, err := ResolveAggSpecs([]AggSpec{{Func: Sum, ColName: "zzz"}}, schema); err == nil {
		t.Fatal("unknown aggregate column resolved without error")
	}
	if _, err := ResolveAggSpecs([]AggSpec{{Func: Sum, Col: 42}}, schema); err == nil {
		t.Fatal("out-of-range aggregate ordinal resolved without error")
	}
}

func TestCloneNodeIsolatesAdaptiveState(t *testing.T) {
	orig := NewAnd(
		NewLeaf(2, vector.Ge, types.NewInt(0)),
		NewOr(NewLeaf(1, vector.Eq, types.NewString("g0")), NewLeaf(0, vector.Lt, types.NewInt(10))),
	)
	views := parallelFixture(t, 1, 500)
	clone := CloneNode(orig).(*And)
	NewScan(views[0], clone).Count()
	if clone.Children[0].(*Leaf).st.rowsIn == 0 {
		t.Fatal("clone accumulated no stats")
	}
	if orig.Children[0].(*Leaf).st.rowsIn != 0 {
		t.Fatal("evaluating a clone mutated the original tree's stats")
	}
}

// TestRunTasksOverlapsTasks proves tasks genuinely run concurrently: each
// task blocks until every other task has started, which can only complete
// if the pool overlaps them (regardless of GOMAXPROCS).
func TestRunTasksOverlapsTasks(t *testing.T) {
	const n = 4
	started := make(chan struct{}, n)
	release := make(chan struct{})
	var once sync.Once
	err := runTasks(context.Background(), n, n, func(int) {
		started <- struct{}{}
		once.Do(func() {
			for i := 0; i < n; i++ {
				<-started
			}
			close(release)
		})
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
}
