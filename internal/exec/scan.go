package exec

import (
	"context"

	"s2db/internal/core"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// Scan drives filtered data access over a table view, implementing the
// three steps of §5: (1) find the segments to read — via the global
// secondary indexes and zone maps (§5.1), (2) run filters per segment to a
// selection vector (§5.2), (3) selectively decode the surviving rows.
type Scan struct {
	View   *core.View
	Filter Node // nil scans everything
	// Stats accumulates adaptive-execution counters.
	Stats ScanStats
	// DisableIndexSkipping turns off step-1 index use (ablation).
	DisableIndexSkipping bool
	// IndexKeyLimitFactor bounds index probing: the index is skipped when
	// the number of probe keys exceeds this fraction of live segments
	// ("S2DB dynamically disables the use of a secondary index if the
	// number of keys to look up is too high relative to the table size",
	// §5.1). Zero means the default of 1 key per segment.
	IndexKeyLimitFactor float64
	// BufferFrom/BufferTo restrict the buffer side of the scan to a key
	// range (set when the filter pins a unique-key prefix), so OLTP probes
	// seek instead of walking the whole write buffer.
	BufferFrom, BufferTo []byte
	// Project lists the only columns Run must materialize (nil = all) —
	// late materialization's projection pushdown.
	Project []int
	// Cancel, when non-nil, is polled between segments (and periodically
	// inside buffer scans); a true return aborts the scan. The parallel
	// scheduler wires this to a context so in-flight partition scans stop
	// promptly on cancellation.
	Cancel func() bool
	// Ctx bounds hydration waits on cold (lazily restored) segments: a
	// cancelled Ctx aborts a scan blocked on a payload fetch without
	// aborting the shared fetch itself. nil waits unboundedly.
	Ctx context.Context
	// Err records a terminal scan failure — a cold segment whose payload
	// fetch or decode failed, or a cancelled hydration wait. The scan stops
	// early; drivers must treat the partial output as invalid.
	Err error
	// DisableVectorCache bypasses the shared decoded-vector cache for this
	// scan (ablation/benchmark knob); private per-segment decodes are used
	// instead.
	DisableVectorCache bool
	// DisableFusedKernels forces the unfused three-pass pipeline (EvalSeg →
	// flat selection vector → materialize → add) for this scan; the
	// table-level core.Config.DisableFusedKernels does the same
	// database-wide. Ablation/benchmark knob — fused kernels are the
	// default.
	DisableFusedKernels bool

	vec         *VecCache
	vecResolved bool
}

// fusedEnabled reports whether this scan may use the fused encoded-
// execution kernels (span-space filters, fused aggregation, meta-only
// counts).
func (s *Scan) fusedEnabled() bool {
	return !s.DisableFusedKernels && !s.View.FusedKernelsDisabled()
}

// cache resolves the decoded-vector cache serving this scan's view, once
// per scan. It is nil when the table has no cache configured or the scan
// opted out.
func (s *Scan) cache() *VecCache {
	if s.vecResolved {
		return s.vec
	}
	s.vecResolved = true
	if s.DisableVectorCache {
		return nil
	}
	if c, ok := s.View.DecodedCache().(*VecCache); ok && c != nil {
		s.vec = c
	}
	return s.vec
}

// NewScan builds a scan over a view.
func NewScan(view *core.View, filter Node) *Scan {
	return &Scan{View: view, Filter: filter}
}

// eqProbe describes an indexable equality or IN clause usable for segment
// skipping.
type eqProbe struct {
	col  int
	vals []types.Value
}

// indexableProbes extracts top-level conjunction clauses that can use the
// global index for segment selection.
func (s *Scan) indexableProbes() []eqProbe {
	idx := s.View.Index()
	if idx == nil || s.Filter == nil || s.DisableIndexSkipping {
		return nil
	}
	var leaves []*Leaf
	switch f := s.Filter.(type) {
	case *Leaf:
		leaves = []*Leaf{f}
	case *And:
		for _, c := range f.Children {
			if l, ok := c.(*Leaf); ok {
				leaves = append(leaves, l)
			}
		}
	}
	var probes []eqProbe
	for _, l := range leaves {
		if !idx.HasColumn(l.Col) {
			continue
		}
		switch {
		case len(l.In) > 0:
			probes = append(probes, eqProbe{col: l.Col, vals: l.In})
		case l.Op == vector.Eq && !l.Val.IsNull:
			probes = append(probes, eqProbe{col: l.Col, vals: []types.Value{l.Val}})
		}
	}
	return probes
}

// candidateSegments applies §5.1: the secondary-index check runs first
// (O(log N) probes), and its result restricts the zone-map checks. It
// returns the indices into View.Segs to scan.
func (s *Scan) candidateSegments() []int {
	view := s.View
	all := make([]int, 0, len(view.Segs))
	// Segments not yet hydrated are absent from the secondary indexes, so
	// index-based skipping must never eliminate them. Snapshot hydration
	// state *before* probing: a segment hydrating concurrently may not have
	// been indexed when the probe ran.
	var cold []bool
	for i, m := range view.Segs {
		if !m.Seg.Hydrated() {
			if cold == nil {
				cold = make([]bool, len(view.Segs))
			}
			cold[i] = true
		}
	}
	// Step 1a: global-index candidates.
	probes := s.indexableProbes()
	var allowed map[uint64]bool
	if len(probes) > 0 {
		limit := s.IndexKeyLimitFactor
		if limit <= 0 {
			limit = 1
		}
		maxKeys := int(limit * float64(len(view.Segs)))
		if maxKeys < 8 {
			maxKeys = 8
		}
		for _, p := range probes {
			if len(p.vals) > maxKeys {
				continue // dynamically disabled: too many probe keys
			}
			cand := map[uint64]bool{}
			for _, v := range p.vals {
				matches, probes := view.Index().LookupColumn(p.col, v)
				s.Stats.GlobalIndexProbes += int64(probes)
				for _, m := range matches {
					cand[m.SegID] = true
				}
			}
			if allowed == nil {
				allowed = cand
			} else {
				for id := range allowed {
					if !cand[id] {
						delete(allowed, id)
					}
				}
			}
		}
	}
	// Step 1b: zone maps on the remaining candidates.
	var zoneLeaves []*Leaf
	switch f := s.Filter.(type) {
	case *Leaf:
		if len(f.In) == 0 {
			zoneLeaves = []*Leaf{f}
		}
	case *And:
		for _, c := range f.Children {
			if l, ok := c.(*Leaf); ok && len(l.In) == 0 {
				zoneLeaves = append(zoneLeaves, l)
			}
		}
	}
	for i, m := range view.Segs {
		if allowed != nil && !allowed[m.Seg.ID] && (cold == nil || !cold[i]) {
			s.Stats.SegmentsSkipped++
			continue
		}
		eliminated := false
		for _, l := range zoneLeaves {
			if l.Val.IsNull {
				continue
			}
			if !m.Seg.MayContain(l.Col, int(l.Op), l.Val) {
				eliminated = true
				break
			}
		}
		if eliminated {
			s.Stats.SegmentsSkipped++
			continue
		}
		all = append(all, i)
	}
	return all
}

// waitHydrated blocks until the view's si-th segment has its payload
// resident, demand-prioritizing it on the hydrator and queueing the rest
// of the view as readahead. It returns false — with s.Err set — when the
// wait was cancelled or the fetch failed terminally; the scan must stop.
func (s *Scan) waitHydrated(si int) bool {
	s.Stats.HydrationWaits++
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.View.HydrateSegment(ctx, si); err != nil {
		s.Err = err
		return false
	}
	s.Stats.HydratedSegs++
	return true
}

// RunSegments calls f once per surviving segment with the filtered
// selection vector (deleted rows removed). The SegContext's decode caches
// are shared with f, so aggregations reuse the filter's column decodes.
// Both sel and any rows materialized through the SegContext are backed by
// pooled buffers valid only until f returns; retain copies, not the slices.
// With fused kernels enabled the filter phase runs in span space and the
// surviving spans are flattened once for f.
func (s *Scan) RunSegments(f func(ctx *SegContext, sel []int32)) {
	if s.fusedEnabled() {
		selBuf := getSel(0)
		defer putSel(selBuf)
		s.runSegSel(func(ctx *SegContext, spans []Span, sel []int32) {
			if sel == nil {
				if cap(*selBuf) < spanRows(spans) {
					*selBuf = make([]int32, 0, spanRows(spans))
				}
				sel = flattenSpans(spans, (*selBuf)[:0])
				*selBuf = sel[:0]
			}
			f(ctx, sel)
		})
		return
	}
	vec := s.cache()
	selBuf := getSel(0)
	scratchBuf := getSel(0)
	defer putSel(selBuf)
	defer putSel(scratchBuf)
	for _, si := range s.candidateSegments() {
		if s.Cancel != nil && s.Cancel() {
			return
		}
		meta := s.View.Segs[si]
		if !meta.Seg.Hydrated() && !s.waitHydrated(si) {
			return
		}
		s.Stats.SegmentsScanned++
		s.Stats.RowsScanned += int64(meta.Seg.NumRows)
		ctx := NewSegContext(meta, s.View.Index(), &s.Stats)
		ctx.Cache = vec
		if cap(*selBuf) < meta.Seg.NumRows {
			*selBuf = make([]int32, 0, meta.Seg.NumRows)
		}
		sel := (*selBuf)[:0]
		if meta.Deleted.Count() == 0 {
			for i := 0; i < meta.Seg.NumRows; i++ {
				sel = append(sel, int32(i))
			}
		} else {
			for i := 0; i < meta.Seg.NumRows; i++ {
				if !meta.Deleted.Get(i) {
					sel = append(sel, int32(i))
				}
			}
		}
		*selBuf = sel[:0]
		if s.Filter != nil {
			out := s.Filter.EvalSeg(ctx, sel, (*scratchBuf)[:0])
			// Keep whatever capacity EvalSeg grew for the next segment.
			*scratchBuf = out[:0]
			sel = out
		}
		if len(sel) > 0 {
			s.Stats.RowsOutput += int64(len(sel))
			f(ctx, sel)
		}
		ctx.releaseBuffers()
	}
}

// runSegSel is the fused per-segment filter driver: candidate segments are
// selected exactly as in RunSegments, but the live-row selection starts as
// coalesced spans (a single span when the segment has no deletes) and the
// filter evaluates in span space whenever the tree shape and the adaptive
// cost model allow (spanFusible). f receives the survivors as exactly one
// of spans (fused filtering) or a flat sel (legacy strategy path); both are
// pooled and valid only until f returns.
func (s *Scan) runSegSel(f func(ctx *SegContext, spans []Span, sel []int32)) {
	vec := s.cache()
	spanBuf, outBuf := getSpans(), getSpans()
	selBuf, scratchBuf := getSel(0), getSel(0)
	defer putSpans(spanBuf)
	defer putSpans(outBuf)
	defer putSel(selBuf)
	defer putSel(scratchBuf)
	for _, si := range s.candidateSegments() {
		if s.Cancel != nil && s.Cancel() {
			return
		}
		meta := s.View.Segs[si]
		if !meta.Seg.Hydrated() && !s.waitHydrated(si) {
			return
		}
		s.Stats.SegmentsScanned++
		s.Stats.RowsScanned += int64(meta.Seg.NumRows)
		ctx := NewSegContext(meta, s.View.Index(), &s.Stats)
		ctx.Cache = vec
		base := liveSpans(meta, (*spanBuf)[:0])
		*spanBuf = base[:0]
		if s.Filter == nil {
			if spanRows(base) > 0 {
				s.Stats.RowsOutput += int64(spanRows(base))
				f(ctx, base, nil)
			}
			ctx.releaseBuffers()
			continue
		}
		if spanFusible(s.Filter) {
			spans := evalNodeSpans(s.Filter, ctx, base, (*outBuf)[:0])
			*outBuf = spans[:0]
			s.Stats.EncodedFilterSegs++
			if n := spanRows(spans); n > 0 {
				s.Stats.RowsOutput += int64(n)
				f(ctx, spans, nil)
			}
			ctx.releaseBuffers()
			continue
		}
		// Legacy strategy path (disjunctions, group-profitable conjunctions,
		// simulator nodes): flatten the live spans once and run EvalSeg.
		if cap(*selBuf) < meta.Seg.NumRows {
			*selBuf = make([]int32, 0, meta.Seg.NumRows)
		}
		sel := flattenSpans(base, (*selBuf)[:0])
		*selBuf = sel[:0]
		out := s.Filter.EvalSeg(ctx, sel, (*scratchBuf)[:0])
		*scratchBuf = out[:0]
		if len(out) > 0 {
			s.Stats.RowsOutput += int64(len(out))
			f(ctx, nil, out)
		}
		ctx.releaseBuffers()
	}
}

// RunBuffer evaluates the filter over the in-memory buffer rows.
func (s *Scan) RunBuffer(f func(r types.Row) bool) {
	var seen int
	visit := func(r types.Row) bool {
		seen++
		if s.Cancel != nil && seen&1023 == 0 && s.Cancel() {
			return false
		}
		if s.Filter == nil || s.Filter.EvalRow(r) {
			s.Stats.RowsOutput++
			return f(r)
		}
		return true
	}
	if s.BufferFrom != nil || s.BufferTo != nil {
		s.View.ScanBufferRange(s.BufferFrom, s.BufferTo, visit)
		return
	}
	s.View.ScanBuffer(visit)
}

// Run materializes every matching row (buffer and segments). The emitted
// row may be reused between calls: callers that retain rows must Clone
// them.
func (s *Scan) Run(emit func(r types.Row) bool) {
	stop := false
	s.RunBuffer(func(r types.Row) bool {
		if !emit(r) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	if s.fusedEnabled() {
		s.runSegSel(func(ctx *SegContext, spans []Span, sel []int32) {
			if stop {
				return
			}
			rows := len(sel)
			if spans != nil {
				rows = spanRows(spans)
			}
			// Dense selections amortize one DecodeAll per column; sparse
			// ones seek per row (the adaptive materialization choice of §5).
			mat := ctx.Materializer(s.Project, rows*4 >= ctx.Meta.Seg.NumRows)
			if spans != nil {
				for _, sp := range spans {
					for i := sp.Start; i < sp.End; i++ {
						if !emit(mat(int(i))) {
							stop = true
							return
						}
					}
				}
				return
			}
			for _, i := range sel {
				if !emit(mat(int(i))) {
					stop = true
					return
				}
			}
		})
		return
	}
	s.RunSegments(func(ctx *SegContext, sel []int32) {
		if stop {
			return
		}
		// Dense selections amortize one DecodeAll per column; sparse ones
		// seek per row (the adaptive materialization choice of §5).
		mat := ctx.Materializer(s.Project, len(sel)*4 >= ctx.Meta.Seg.NumRows)
		for _, i := range sel {
			if !emit(mat(int(i))) {
				stop = true
				return
			}
		}
	})
}

// Count returns the number of matching rows without materializing them.
// With no filter (and fused kernels enabled) the segment side answers from
// metadata alone — per-segment live-row counts — touching no column vector;
// only the in-memory write buffer is walked, for MVCC visibility at the
// view's timestamp.
func (s *Scan) Count() int64 {
	var n int64
	s.RunBuffer(func(types.Row) bool { n++; return true })
	if s.Filter == nil && s.fusedEnabled() {
		var segRows int64
		for _, m := range s.View.Segs {
			segRows += int64(m.LiveRows())
		}
		s.Stats.RowsOutput += segRows
		return n + segRows
	}
	if s.fusedEnabled() {
		s.runSegSel(func(_ *SegContext, spans []Span, sel []int32) {
			if spans != nil {
				n += int64(spanRows(spans))
				return
			}
			n += int64(len(sel))
		})
		return n
	}
	s.RunSegments(func(_ *SegContext, sel []int32) { n += int64(len(sel)) })
	return n
}
