// Fused encoded-execution kernels (§5.2 "operate on encoded data"): the
// filter phase evaluates predicates in span space — selection vectors are
// carried as coalesced [start,end) runs instead of flat row-offset lists —
// and the aggregation phase folds surviving spans straight into aggregate
// state without building intermediate rows. An RLE run that passes a
// predicate contributes runLen×value to SUM/COUNT without expanding;
// dictionary predicates and GROUP BY keys evaluate once per dictionary code;
// and only columns an aggregate actually reads are ever materialized (late
// materialization). Every kernel mirrors the unfused path it replaces
// row-for-row, including floating-point accumulation order, so fused and
// unfused results are byte-identical (the equivalence suite asserts this).
package exec

import (
	"math"
	"sort"
	"sync"
	"time"

	"s2db/internal/bitmap"
	"s2db/internal/codec"
	"s2db/internal/colstore"
	"s2db/internal/types"
	"s2db/internal/vector"
)

// Span is a half-open run [Start, End) of row offsets within a segment.
// Selection spans are sorted, disjoint and coalesced (adjacent spans are
// merged), so the fused kernels can exploit clustering without consulting
// per-row state.
type Span struct {
	Start, End int32
}

// spanRows sums the row counts of a span list.
func spanRows(spans []Span) int {
	n := 0
	for _, sp := range spans {
		n += int(sp.End - sp.Start)
	}
	return n
}

// appendSpan appends [start,end) to out, coalescing with the previous span
// when adjacent.
func appendSpan(out []Span, start, end int32) []Span {
	if n := len(out); n > 0 && out[n-1].End == start {
		out[n-1].End = end
		return out
	}
	return append(out, Span{Start: start, End: end})
}

// spanPool recycles span buffers across segments and scans, mirroring
// selPool for flat selection vectors.
var spanPool = sync.Pool{New: func() any { return new([]Span) }}

func getSpans() *[]Span {
	return spanPool.Get().(*[]Span)
}

func putSpans(p *[]Span) {
	*p = (*p)[:0]
	spanPool.Put(p)
}

// liveSpans appends the segment's non-deleted rows to out as coalesced
// spans. The common no-deletes case is a single span — the whole point of
// span-space selection: no per-row work before the first predicate runs.
func liveSpans(meta *colstore.Meta, out []Span) []Span {
	n := meta.Seg.NumRows
	if n == 0 {
		return out
	}
	if meta.Deleted.Count() == 0 {
		return append(out, Span{Start: 0, End: int32(n)})
	}
	start := -1
	for i := 0; i < n; i++ {
		if meta.Deleted.Get(i) {
			if start >= 0 {
				out = append(out, Span{Start: int32(start), End: int32(i)})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, Span{Start: int32(start), End: int32(n)})
	}
	return out
}

// flattenSpans expands spans into a flat selection vector.
func flattenSpans(spans []Span, out []int32) []int32 {
	for _, sp := range spans {
		for i := sp.Start; i < sp.End; i++ {
			out = append(out, i)
		}
	}
	return out
}

// selToSpans coalesces a sorted flat selection vector into spans.
func selToSpans(sel []int32, out []Span) []Span {
	for i := 0; i < len(sel); {
		j := i + 1
		for j < len(sel) && sel[j] == sel[j-1]+1 {
			j++
		}
		out = append(out, Span{Start: sel[i], End: sel[j-1] + 1})
		i = j
	}
	return out
}

// --- span-space filter evaluation -------------------------------------------

// spanFusible reports whether the filter tree can evaluate in span space:
// leaves and conjunctions only (disjunctions subtract+merge flat vectors and
// stay on the legacy path). An And that the adaptive cost model deems
// group-filter-profitable defers to the legacy strategy so the §5.2
// group-filter choice — and its counters — behave identically with fused
// kernels on; the same nodeStats drive both deciders.
func spanFusible(n Node) bool {
	switch f := n.(type) {
	case *Leaf:
		return true
	case *And:
		if !f.DisableGroup && f.groupProfitable() {
			return false
		}
		for _, c := range f.Children {
			if !spanFusible(c) {
				return false
			}
		}
		return true
	}
	return false
}

// evalNodeSpans dispatches span evaluation; callers must have checked
// spanFusible first.
func evalNodeSpans(n Node, ctx *SegContext, in, out []Span) []Span {
	switch f := n.(type) {
	case *Leaf:
		return f.evalSpans(ctx, in, out)
	case *And:
		return f.evalSpans(ctx, in, out)
	}
	// Unreachable: guarded by spanFusible.
	return out
}

// evalSpans evaluates the clause over candidate spans, appending surviving
// coalesced spans to out. Strategy choice mirrors evalStrategies — index
// postings, encoded (dictionary/RLE), then per-row regular — with the same
// cost checks and counters, just against span row counts.
func (l *Leaf) evalSpans(ctx *SegContext, in, out []Span) []Span {
	start := time.Now()
	n := spanRows(in)
	out = l.evalSpanStrategies(ctx, n, in, out)
	l.st.record(n, spanRows(out), time.Since(start))
	return out
}

func (l *Leaf) evalSpanStrategies(ctx *SegContext, rows int, in, out []Span) []Span {
	seg := ctx.Meta.Seg
	// Secondary index filter: postings intersected with the candidate spans.
	if l.forceStrategy != regularStrategy && len(l.In) == 0 && l.Op == vector.Eq && ctx.Idx != nil && ctx.Idx.HasColumn(l.Col) {
		if postings, ok := ctx.Idx.SegmentPostings(seg.ID, l.Col, l.Val); ok {
			if l.forceStrategy == indexStrategy || len(postings)*4 < rows {
				if ctx.Stats != nil {
					ctx.Stats.IndexFilters++
				}
				pi := 0
				for _, sp := range in {
					for pi < len(postings) && postings[pi] < sp.Start {
						pi++
					}
					for ; pi < len(postings) && postings[pi] < sp.End; pi++ {
						out = appendSpan(out, postings[pi], postings[pi]+1)
					}
				}
				return out
			}
		}
	}
	if l.forceStrategy != regularStrategy {
		if res, ok := l.tryEncodedSpans(ctx, rows, in, out); ok {
			return res
		}
	}
	if ctx.Stats != nil {
		ctx.Stats.RegularFilters++
	}
	return l.evalRegularSpans(ctx, rows, in, out)
}

// tryEncodedSpans is the span-space twin of tryEncoded: once per dictionary
// entry or RLE run instead of once per row, with the same §5.2 cost checks.
func (l *Leaf) tryEncodedSpans(ctx *SegContext, rows int, in, out []Span) ([]Span, bool) {
	seg := ctx.Meta.Seg
	col := seg.Cols[l.Col]
	if col.Strs != nil {
		dict, ok := col.Strs.(*codec.Dict)
		if !ok {
			return nil, false
		}
		if l.forceStrategy != encodedStrategy && dict.DictSize() > rows {
			return nil, false
		}
		if ctx.Stats != nil {
			ctx.Stats.EncodedFilters++
		}
		pass := make([]bool, dict.DictSize())
		for c := range pass {
			pass[c] = l.matchString(dict.DictValue(c))
		}
		nulls := col.Nulls
		for _, sp := range in {
			for i := sp.Start; i < sp.End; i++ {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if pass[dict.Code(int(i))] {
					out = appendSpan(out, i, i+1)
				}
			}
		}
		return out, true
	}
	if rle, ok := col.Ints.(*codec.RLE); ok {
		if l.forceStrategy != encodedStrategy && rle.Runs() > rows {
			return nil, false
		}
		if ctx.Stats != nil {
			ctx.Stats.EncodedFilters++
		}
		t := seg.Schema().Columns[l.Col].Type
		nulls := col.Nulls
		if nulls == nil {
			// Pure run-space intersection: one predicate evaluation per run
			// overlapping the candidate spans, no per-row work at all.
			for _, sp := range in {
				for j := rle.FindRun(int(sp.Start)); j < rle.Runs(); j++ {
					v, rs, re := rle.Run(j)
					if rs >= int(sp.End) {
						break
					}
					if !l.matchIntBits(v, t) {
						continue
					}
					lo, hi := int32(rs), int32(re)
					if lo < sp.Start {
						lo = sp.Start
					}
					if hi > sp.End {
						hi = sp.End
					}
					out = appendSpan(out, lo, hi)
				}
			}
			return out, true
		}
		// Null rows never pass; runs still gate the predicate evaluation.
		for _, sp := range in {
			for j := rle.FindRun(int(sp.Start)); j < rle.Runs(); j++ {
				v, rs, re := rle.Run(j)
				if rs >= int(sp.End) {
					break
				}
				if !l.matchIntBits(v, t) {
					continue
				}
				lo, hi := int32(rs), int32(re)
				if lo < sp.Start {
					lo = sp.Start
				}
				if hi > sp.End {
					hi = sp.End
				}
				for i := lo; i < hi; i++ {
					if nulls.Get(int(i)) {
						continue
					}
					out = appendSpan(out, i, i+1)
				}
			}
		}
		return out, true
	}
	return nil, false
}

// evalRegularSpans filters decoded values per row within the candidate
// spans, with the same dense/sparse decode heuristic as evalRegular.
func (l *Leaf) evalRegularSpans(ctx *SegContext, rows int, in, out []Span) []Span {
	seg := ctx.Meta.Seg
	col := seg.Cols[l.Col]
	t := seg.Schema().Columns[l.Col].Type
	nulls := col.Nulls
	dense := rows*2 >= seg.NumRows
	switch t {
	case types.Int64:
		if dense && len(l.In) == 0 {
			vals := ctx.ints(l.Col)
			for _, sp := range in {
				for i := sp.Start; i < sp.End; i++ {
					if nulls != nil && nulls.Get(int(i)) {
						continue
					}
					if vector.CmpInt(vals[i], l.Op, l.Val.I) {
						out = appendSpan(out, i, i+1)
					}
				}
			}
			return out
		}
		for _, sp := range in {
			for i := sp.Start; i < sp.End; i++ {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if l.matchIntBits(col.Ints.At(int(i)), t) {
					out = appendSpan(out, i, i+1)
				}
			}
		}
		return out
	case types.Float64:
		if dense && len(l.In) == 0 {
			raw := ctx.ints(l.Col)
			for _, sp := range in {
				for i := sp.Start; i < sp.End; i++ {
					if nulls != nil && nulls.Get(int(i)) {
						continue
					}
					if vector.CmpFloat(math.Float64frombits(uint64(raw[i])), l.Op, l.Val.F) {
						out = appendSpan(out, i, i+1)
					}
				}
			}
			return out
		}
		for _, sp := range in {
			for i := sp.Start; i < sp.End; i++ {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if l.matchIntBits(col.Ints.At(int(i)), t) {
					out = appendSpan(out, i, i+1)
				}
			}
		}
		return out
	default:
		if dense {
			vals := ctx.strs(l.Col)
			for _, sp := range in {
				for i := sp.Start; i < sp.End; i++ {
					if nulls != nil && nulls.Get(int(i)) {
						continue
					}
					if l.matchString(vals[i]) {
						out = appendSpan(out, i, i+1)
					}
				}
			}
			return out
		}
		for _, sp := range in {
			for i := sp.Start; i < sp.End; i++ {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if l.matchString(col.Strs.At(int(i))) {
					out = appendSpan(out, i, i+1)
				}
			}
		}
		return out
	}
}

// evalSpans evaluates the conjunction in span space: children run in
// (1-P)/cost rank order (the same adaptive ordering as EvalSeg) and each
// child narrows the surviving spans. Group-filter-profitable conjunctions
// never reach here (spanFusible routes them to the legacy strategy).
func (a *And) evalSpans(ctx *SegContext, in, out []Span) []Span {
	start := time.Now()
	n := spanRows(in)

	order := make([]Node, len(a.Children))
	copy(order, a.Children)
	if !a.DisableReorder {
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].stats().rank() > order[j].stats().rank()
		})
	}

	curBuf, scratchBuf := getSpans(), getSpans()
	defer putSpans(curBuf)
	defer putSpans(scratchBuf)
	cur := append((*curBuf)[:0], in...)
	for _, c := range order {
		if len(cur) == 0 {
			break
		}
		res := evalNodeSpans(c, ctx, cur, (*scratchBuf)[:0])
		*scratchBuf = res
		*curBuf, *scratchBuf = *scratchBuf, *curBuf
		cur = *curBuf
	}
	out = append(out, cur...)
	a.st.record(n, spanRows(out), time.Since(start))
	return out
}

// --- fused aggregation kernels -----------------------------------------------

// aggFuseMode classifies how a segment's aggregation can fuse.
type aggFuseMode uint8

const (
	fuseNone aggFuseMode = iota
	// fuseDictGroup: single dictionary-encoded group column, plain
	// aggregates — per-code states folded in code order (the fused twin of
	// aggregateByDict).
	fuseDictGroup
	// fuseGlobalPlain: no grouping, plain aggregates — spec-outer columnar
	// fold with RLE run bulking; materializes nothing.
	fuseGlobalPlain
	// fuseGlobalRow: no grouping but expression aggregates — row-outer fold
	// over only the expressions' input columns, skipping the per-row group
	// key encode+map of the general path.
	fuseGlobalRow
	// fuseCodeGroup: every group column dictionary-encoded with a bounded
	// combined code space — group resolution is one array load per row
	// instead of EncodeKey+map.
	fuseCodeGroup
)

// maxFusedGroupCodes bounds the combined dictionary-code space for
// fuseCodeGroup; beyond it the per-segment group-pointer array stops paying
// for itself and the general path's hash grouping wins.
const maxFusedGroupCodes = 4096

// aggFuser runs fused aggregation kernels against the shared group table of
// one Aggregate call. The touch callback resolves (creating on first sight,
// in encounter order) a group by key, exactly as the unfused paths do, so
// group output order is identical by construction.
type aggFuser struct {
	groupCols  []int
	aggs       []AggSpec
	touch      func(key types.Row) *aggGroup
	resultType []types.ColType

	// exprOK: every expression aggregate declares its input columns
	// (ExprCols), the precondition for late materialization of row-mode
	// kernels.
	exprOK bool
}

func newAggFuser(groupCols []int, aggs []AggSpec, touch func(key types.Row) *aggGroup, resultType []types.ColType) *aggFuser {
	u := &aggFuser{groupCols: groupCols, aggs: aggs, touch: touch, resultType: resultType, exprOK: true}
	for _, a := range aggs {
		if a.Expr != nil && a.ExprCols == nil {
			u.exprOK = false
		}
	}
	return u
}

// classify picks the fused kernel for one segment, or fuseNone when the
// shape requires the general path. The dispatch deliberately shadows the
// unfused dispatch (dict group-by first, then the global fast path) so each
// kernel replaces exactly one legacy mode.
func (u *aggFuser) classify(ctx *SegContext) aggFuseMode {
	seg := ctx.Meta.Seg
	if len(u.groupCols) == 1 && allPlainAggs(u.aggs) {
		if _, ok := seg.Cols[u.groupCols[0]].Strs.(*codec.Dict); ok && seg.Cols[u.groupCols[0]].Nulls == nil {
			return fuseDictGroup
		}
	}
	if len(u.groupCols) == 0 {
		if allPlainAggs(u.aggs) {
			return fuseGlobalPlain
		}
		if u.exprOK {
			return fuseGlobalRow
		}
		return fuseNone
	}
	if !u.exprOK {
		return fuseNone
	}
	codes := 1
	for _, c := range u.groupCols {
		d, ok := seg.Cols[c].Strs.(*codec.Dict)
		if !ok || seg.Cols[c].Nulls != nil {
			return fuseNone
		}
		codes *= d.DictSize()
		if codes > maxFusedGroupCodes {
			return fuseNone
		}
	}
	if codes == 0 {
		return fuseNone
	}
	return fuseCodeGroup
}

// run executes the classified kernel over the surviving spans.
func (u *aggFuser) run(mode aggFuseMode, ctx *SegContext, spans []Span) {
	switch mode {
	case fuseDictGroup:
		u.dictGroupSeg(ctx, spans)
	case fuseGlobalPlain:
		u.globalPlainSeg(ctx, spans)
	case fuseGlobalRow:
		u.globalRowSeg(ctx, spans)
	case fuseCodeGroup:
		u.codeGroupSeg(ctx, spans)
	}
}

// globalPlainSeg folds plain global aggregates spec-outer over the spans.
// RLE agg columns without nulls fold per run: integer SUM/COUNT use exact
// bulk arithmetic (runLen×value), float sums replay the run's additions so
// the accumulation order — and therefore the bits — match the unfused
// per-row fold; MIN/MAX compare once per run either way.
func (u *aggFuser) globalPlainSeg(ctx *SegContext, spans []Span) {
	seg := ctx.Meta.Seg
	g := u.touch(nil)
	rows := spanRows(spans)
	for ai := range u.aggs {
		a := &u.aggs[ai]
		st := &g.states[ai]
		if a.Func == Count && a.Col < 0 {
			st.count += int64(rows)
			continue
		}
		col := seg.Cols[a.Col]
		t := seg.Schema().Columns[a.Col].Type
		switch t {
		case types.Int64:
			if rle, ok := col.Ints.(*codec.RLE); ok && col.Nulls == nil {
				eachRun(rle, spans, func(v int64, n int) { st.addIntRun(v, int64(n)) })
				continue
			}
			vals := ctx.ints(a.Col)
			nulls := col.Nulls
			for _, sp := range spans {
				for i := sp.Start; i < sp.End; i++ {
					if nulls != nil && nulls.Get(int(i)) {
						continue
					}
					st.addInt(vals[i])
				}
			}
		case types.Float64:
			if rle, ok := col.Ints.(*codec.RLE); ok && col.Nulls == nil {
				eachRun(rle, spans, func(v int64, n int) {
					st.addFloatRun(math.Float64frombits(uint64(v)), n)
				})
				continue
			}
			raw := ctx.ints(a.Col)
			nulls := col.Nulls
			for _, sp := range spans {
				for i := sp.Start; i < sp.End; i++ {
					if nulls != nil && nulls.Get(int(i)) {
						continue
					}
					st.addFloat(math.Float64frombits(uint64(raw[i])))
				}
			}
		default:
			for _, sp := range spans {
				for i := sp.Start; i < sp.End; i++ {
					st.add(seg.ValueAt(int(i), a.Col))
				}
			}
		}
	}
}

// eachRun visits the RLE runs overlapping the spans, clipped to span
// boundaries, in row order.
func eachRun(r *codec.RLE, spans []Span, f func(v int64, n int)) {
	for _, sp := range spans {
		for j := r.FindRun(int(sp.Start)); j < r.Runs(); j++ {
			v, rs, re := r.Run(j)
			if rs >= int(sp.End) {
				break
			}
			lo, hi := rs, re
			if lo < int(sp.Start) {
				lo = int(sp.Start)
			}
			if hi > int(sp.End) {
				hi = int(sp.End)
			}
			if hi > lo {
				f(v, hi-lo)
			}
		}
	}
}

// specAccessor resolves one AggSpec's segment access once per segment, so
// the per-row fold is an unboxed add off a decoded slice for plain column
// specs, and only expression specs pay for a materialized row.
type specAccessor struct {
	countStar bool
	expr      bool
	isFloat   bool
	isStr     bool
	ints      []int64
	strs      []string
	nulls     *bitmap.Bitmap
}

// buildAccessors resolves the per-spec accessors against one segment.
// hasExpr reports whether any spec needs a materialized expression-input
// row.
func (u *aggFuser) buildAccessors(ctx *SegContext) ([]specAccessor, bool) {
	seg := ctx.Meta.Seg
	accs := make([]specAccessor, len(u.aggs))
	hasExpr := false
	for ai, a := range u.aggs {
		switch {
		case a.Func == Count && a.Expr == nil && a.Col < 0:
			accs[ai].countStar = true
		case a.Expr != nil:
			accs[ai].expr = true
			hasExpr = true
		default:
			accs[ai].nulls = seg.Cols[a.Col].Nulls
			switch seg.Schema().Columns[a.Col].Type {
			case types.Int64:
				accs[ai].ints = ctx.ints(a.Col)
			case types.Float64:
				accs[ai].ints = ctx.ints(a.Col)
				accs[ai].isFloat = true
			default:
				accs[ai].strs = ctx.strs(a.Col)
				accs[ai].isStr = true
			}
		}
	}
	return accs, hasExpr
}

// exprMaterializer builds a row materializer covering only the
// expressions' declared input columns (classify guarantees ExprCols is set
// on every expression spec), or nil when no spec needs a row at all —
// plain-column aggregation materializes nothing.
func (u *aggFuser) exprMaterializer(ctx *SegContext, spans []Span) func(i int) types.Row {
	var proj []int
	for _, a := range u.aggs {
		if a.Expr != nil {
			proj = append(proj, a.ExprCols...)
		}
	}
	if proj == nil {
		return nil
	}
	return ctx.Materializer(proj, spanRows(spans)*4 >= ctx.Meta.Seg.NumRows)
}

// foldState folds row i into one state vector through the accessors; r is
// the materialized expression-input row (nil when no spec reads one). The
// unboxed adds accumulate exactly as the general path's boxed
// aggState.add, and expression specs keep the boxed call, so the states —
// including float bit patterns — are byte-identical to the unfused fold.
func (u *aggFuser) foldState(states []aggState, accs []specAccessor, i int, r types.Row) {
	for ai := range accs {
		ac := &accs[ai]
		st := &states[ai]
		switch {
		case ac.countStar:
			st.count++
		case ac.expr:
			v := u.aggs[ai].Expr(r)
			u.resultType[ai] = v.Type
			st.add(v)
		case ac.nulls != nil && ac.nulls.Get(i):
		case ac.isStr:
			st.addStr(ac.strs[i])
		case ac.isFloat:
			st.addFloat(math.Float64frombits(uint64(ac.ints[i])))
		default:
			st.addInt(ac.ints[i])
		}
	}
}

// dictGroupSeg is the fused twin of aggregateByDict: per-dictionary-code
// partial states accumulated with unboxed adds, folded into the shared
// group table in code order (the legacy fold order, so output order and
// float bits are identical). Dict mode only classifies for plain
// aggregates, so no expression row is ever needed.
func (u *aggFuser) dictGroupSeg(ctx *SegContext, spans []Span) {
	seg := ctx.Meta.Seg
	d := seg.Cols[u.groupCols[0]].Strs.(*codec.Dict)
	if ctx.Stats != nil {
		ctx.Stats.EncodedFilters++ // counted with encoded ops, like the unfused path
	}
	aggs := u.aggs
	states := make([][]aggState, d.DictSize())
	accs, _ := u.buildAccessors(ctx)
	for _, sp := range spans {
		for i := sp.Start; i < sp.End; i++ {
			code := d.Code(int(i))
			st := states[code]
			if st == nil {
				st = make([]aggState, len(aggs))
				states[code] = st
			}
			u.foldState(st, accs, int(i), nil)
		}
	}
	for code, st := range states {
		if st == nil {
			continue
		}
		g := u.touch(types.Row{types.NewString(d.DictValue(code))})
		for ai := range aggs {
			g.states[ai].merge(&st[ai])
		}
	}
}

// globalRowSeg folds expression aggregates row-outer: plain column specs
// accumulate unboxed straight off the decoded slices, only the
// expressions' input columns materialize, and the single global group
// resolves once instead of per row (no EncodeKey, no map probe).
func (u *aggFuser) globalRowSeg(ctx *SegContext, spans []Span) {
	g := u.touch(nil)
	accs, _ := u.buildAccessors(ctx)
	mat := u.exprMaterializer(ctx, spans)
	var r types.Row
	for _, sp := range spans {
		for i := sp.Start; i < sp.End; i++ {
			if mat != nil {
				r = mat(int(i))
			}
			u.foldState(g.states, accs, int(i), r)
		}
	}
}

// codeGroupSeg groups by the combined dictionary code of all group columns:
// one mixed-radix code per row indexes a per-segment group-pointer array,
// so group resolution costs an array load after the first sight. Groups are
// created via touch in first-seen row order — the general path's order.
// Plain column specs accumulate unboxed; only expression inputs
// materialize.
func (u *aggFuser) codeGroupSeg(ctx *SegContext, spans []Span) {
	seg := ctx.Meta.Seg
	dicts := make([]*codec.Dict, len(u.groupCols))
	codes := 1
	for k, c := range u.groupCols {
		dicts[k] = seg.Cols[c].Strs.(*codec.Dict)
		codes *= dicts[k].DictSize()
	}
	groupPtr := make([]*aggGroup, codes)
	accs, _ := u.buildAccessors(ctx)
	mat := u.exprMaterializer(ctx, spans)
	key := make(types.Row, len(u.groupCols))
	var r types.Row
	for _, sp := range spans {
		for i := sp.Start; i < sp.End; i++ {
			code := 0
			for k := range dicts {
				code = code*dicts[k].DictSize() + dicts[k].Code(int(i))
			}
			g := groupPtr[code]
			if g == nil {
				c := code
				for k := len(dicts) - 1; k >= 0; k-- {
					size := dicts[k].DictSize()
					key[k] = types.NewString(dicts[k].DictValue(c % size))
					c /= size
				}
				g = u.touch(key)
				groupPtr[code] = g
			}
			if mat != nil {
				r = mat(int(i))
			}
			u.foldState(g.states, accs, int(i), r)
		}
	}
}
