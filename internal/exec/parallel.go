// Parallel partition fan-out: the aggregator side of §2/§5 runs one scan
// task per leaf partition concurrently on a bounded worker pool and merges
// the partial results (rows, counts, or partial aggregate tables) in
// deterministic view order. Each task gets its own filter-tree clone (the
// adaptive nodes carry mutable statistics) and its own ScanStats; the
// coordinator folds stats only after the pool joins, so the whole path is
// race-free under `go test -race`. Workers share the process-wide
// decoded-vector cache through their views: N workers hitting the same
// cold segment column decode it once (single-flight) and the per-worker
// VecCache* counters fold into the coordinator's stats like every other
// counter.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"s2db/internal/core"
	"s2db/internal/qos"
	"s2db/internal/types"
)

// Admission carries the QoS governor and the tenant a fan-out runs as.
// The zero value (nil governor) admits everything — the ungoverned
// path used by the plain fan-out entry points and the DisableQoS
// ablation.
type Admission struct {
	Gov    *qos.Governor
	Tenant string
}

// admitWorkers leases fan-out worker slots: elastically between 1 and
// want, so a busy tenant's query narrows before it sheds. The granted
// width replaces the requested parallelism.
func (a Admission) admitWorkers(ctx context.Context, want int) (*qos.Lease, int, error) {
	if a.Gov == nil {
		return nil, want, nil
	}
	l, got, err := a.Gov.AcquireUpTo(ctx, a.Tenant, qos.Workers, 1, int64(want))
	return l, int(got), err
}

// admitScan leases scan/materialization memory for one view's task,
// estimated from the view's row and column counts. The estimate is
// elastic down to a quarter: scans process one segment at a time, so a
// quarter of the decoded working set is enough to make progress.
func (a Admission) admitScan(ctx context.Context, v *core.View) (*qos.Lease, error) {
	if a.Gov == nil {
		return nil, nil
	}
	est := scanMemEstimate(v)
	l, _, err := a.Gov.AcquireUpTo(ctx, a.Tenant, qos.ScanMem, est/4+1, est)
	return l, err
}

// scanMemEstimate approximates a view's decoded working set: rows ×
// columns × 8 bytes (fixed-width vector cells; strings dominate above
// that, but admission needs a stable, cheap estimate, not a census).
func scanMemEstimate(v *core.View) int64 {
	var rows int64
	for _, m := range v.Segs {
		rows += int64(m.Seg.NumRows)
	}
	est := rows * int64(len(v.Schema.Columns)) * 8
	if est < 1 {
		est = 1
	}
	return est
}

// foldLeaseWait records a granted lease's queue time into per-task
// stats so Explain can show where admission throttled the run.
func foldLeaseWait(s *ScanStats, leases ...*qos.Lease) {
	if s == nil {
		return
	}
	for _, l := range leases {
		if l != nil && l.Waited > 0 {
			s.QoSWaits++
			s.QoSWaitNanos += int64(l.Waited)
		}
	}
}

// DefaultParallelism resolves a worker-pool size: n when positive,
// otherwise GOMAXPROCS.
func DefaultParallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// fanWidth is the worker-slot demand of a fan-out: the resolved
// parallelism, never wider than the task count, never below one.
func fanWidth(parallelism, n int) int {
	w := DefaultParallelism(parallelism)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runTasks executes fn(0..n-1) on at most parallelism workers. Workers stop
// claiming new tasks once ctx is done; the error is ctx.Err() in that case.
// In-flight tasks are responsible for observing ctx themselves (scans poll
// it via Scan.Cancel).
func runTasks(ctx context.Context, n, parallelism int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// cancelledScan wires a context into a Scan's cancellation hook and its
// hydration waits: cancellation aborts a scan blocked on a cold segment's
// payload fetch without aborting the shared fetch.
func cancelledScan(ctx context.Context, view *core.View, filter Node) *Scan {
	s := NewScan(view, filter)
	s.Cancel = func() bool { return ctx.Err() != nil }
	s.Ctx = ctx
	return s
}

// firstScanErr folds per-task scan errors: the first terminal failure
// (failed hydration fetch) wins; a context.Canceled from a scan whose
// driver deliberately cancelled it (early limit) is not an error unless
// the caller's own ctx is dead too.
func firstScanErr(ctx context.Context, errs []error) error {
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			continue
		}
		return err
	}
	return nil
}

// AggregateViewsParallel is the fan-out counterpart of AggregateViews: one
// partial aggregation per view runs on the worker pool, then partials merge
// in view order (deterministic, identical to the sequential result). A
// cancelled ctx aborts in-flight scans and returns ctx.Err().
func AggregateViewsParallel(ctx context.Context, views []*core.View, filter Node, groupCols []int, aggs []AggSpec, parallelism int, stats *ScanStats) ([]types.Row, error) {
	return AggregateViewsAdmitted(ctx, views, filter, groupCols, aggs, parallelism, stats, Admission{})
}

// AggregateViewsAdmitted is AggregateViewsParallel under QoS admission:
// the fan-out width is leased from the tenant's worker-slot budget
// (narrowing elastically under pressure) and each per-view task leases
// scan memory before running. A shed surfaces as the tenant's typed
// qos.ErrOverloaded.
func AggregateViewsAdmitted(ctx context.Context, views []*core.View, filter Node, groupCols []int, aggs []AggSpec, parallelism int, stats *ScanStats, adm Admission) ([]types.Row, error) {
	wl, width, err := adm.admitWorkers(ctx, fanWidth(parallelism, len(views)))
	if err != nil {
		return nil, err
	}
	defer wl.Release()
	foldLeaseWait(stats, wl)
	p := newAggPlan(groupCols, aggs)
	partials := make([][]types.Row, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	err = runTasks(ctx, len(views), width, func(i int) {
		ml, err := adm.admitScan(ctx, views[i])
		if err != nil {
			perErr[i] = err
			return
		}
		defer ml.Release()
		f := CloneNode(filter)
		scan := cancelledScan(ctx, views[i], f)
		partials[i] = p.partial(views[i], f, scan)
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
		foldLeaseWait(&perStats[i], ml)
	})
	if err != nil {
		return nil, err
	}
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return nil, serr
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return p.mergeFinalize(partials), nil
}

// CollectRows materializes matching rows from every view concurrently,
// concatenating per-view results in view order so the output matches the
// sequential scan exactly. earlyLimit >= 0 enables early termination for
// Limit queries with no ordering or grouping: each view stops after
// earlyLimit rows, and once a completed prefix of views already holds
// earlyLimit rows the trailing scans are cancelled (their rows cannot make
// the result).
func CollectRows(ctx context.Context, views []*core.View, filter Node, earlyLimit int, parallelism int, stats *ScanStats) ([]types.Row, error) {
	return CollectRowsAdmitted(ctx, views, filter, earlyLimit, parallelism, stats, Admission{})
}

// CollectRowsAdmitted is CollectRows under QoS admission (see
// AggregateViewsAdmitted for the leasing contract).
func CollectRowsAdmitted(ctx context.Context, views []*core.View, filter Node, earlyLimit int, parallelism int, stats *ScanStats, adm Admission) ([]types.Row, error) {
	if earlyLimit == 0 {
		return nil, ctx.Err()
	}
	wl, width, err := adm.admitWorkers(ctx, fanWidth(parallelism, len(views)))
	if err != nil {
		return nil, err
	}
	defer wl.Release()
	foldLeaseWait(stats, wl)
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	perView := make([][]types.Row, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	var mu sync.Mutex
	done := make([]bool, len(views))
	// prefixSatisfied cancels trailing scans once views 0..k are all done
	// and together hold earlyLimit rows. Called with mu held.
	prefixSatisfied := func() {
		if earlyLimit < 0 {
			return
		}
		total := 0
		for i := range views {
			if !done[i] {
				return
			}
			total += len(perView[i])
			if total >= earlyLimit {
				cancel()
				return
			}
		}
	}
	err = runTasks(sub, len(views), width, func(i int) {
		ml, merr := adm.admitScan(sub, views[i])
		if merr != nil {
			mu.Lock()
			perErr[i] = merr
			done[i] = true
			mu.Unlock()
			return
		}
		defer ml.Release()
		scan := cancelledScan(sub, views[i], CloneNode(filter))
		var out []types.Row
		scan.Run(func(r types.Row) bool {
			out = append(out, r.Clone())
			return earlyLimit < 0 || len(out) < earlyLimit
		})
		mu.Lock()
		perView[i] = out
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
		foldLeaseWait(&perStats[i], ml)
		done[i] = true
		prefixSatisfied()
		mu.Unlock()
	})
	// Early-limit cancellation is success; only the caller's ctx is an error.
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// A scan cancelled by the early-limit sub-context is success; a scan
	// that died on a failed hydration fetch is not.
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return nil, serr
	}
	var out []types.Row
	for i := range perView {
		out = append(out, perView[i]...)
		if earlyLimit >= 0 && len(out) >= earlyLimit {
			out = out[:earlyLimit]
			break
		}
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return out, nil
}

// CountViews counts matching rows across views on the worker pool. The sum
// is order-independent, so no merge ordering is needed.
func CountViews(ctx context.Context, views []*core.View, filter Node, parallelism int, stats *ScanStats) (int64, error) {
	return CountViewsAdmitted(ctx, views, filter, parallelism, stats, Admission{})
}

// CountViewsAdmitted is CountViews under QoS admission (see
// AggregateViewsAdmitted for the leasing contract).
func CountViewsAdmitted(ctx context.Context, views []*core.View, filter Node, parallelism int, stats *ScanStats, adm Admission) (int64, error) {
	wl, width, err := adm.admitWorkers(ctx, fanWidth(parallelism, len(views)))
	if err != nil {
		return 0, err
	}
	defer wl.Release()
	foldLeaseWait(stats, wl)
	perCount := make([]int64, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	err = runTasks(ctx, len(views), width, func(i int) {
		ml, err := adm.admitScan(ctx, views[i])
		if err != nil {
			perErr[i] = err
			return
		}
		defer ml.Release()
		scan := cancelledScan(ctx, views[i], CloneNode(filter))
		perCount[i] = scan.Count()
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
		foldLeaseWait(&perStats[i], ml)
	})
	if err != nil {
		return 0, err
	}
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return 0, serr
	}
	var n int64
	for i := range perCount {
		n += perCount[i]
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return n, nil
}
