// Parallel partition fan-out: the aggregator side of §2/§5 runs one scan
// task per leaf partition concurrently on a bounded worker pool and merges
// the partial results (rows, counts, or partial aggregate tables) in
// deterministic view order. Each task gets its own filter-tree clone (the
// adaptive nodes carry mutable statistics) and its own ScanStats; the
// coordinator folds stats only after the pool joins, so the whole path is
// race-free under `go test -race`. Workers share the process-wide
// decoded-vector cache through their views: N workers hitting the same
// cold segment column decode it once (single-flight) and the per-worker
// VecCache* counters fold into the coordinator's stats like every other
// counter.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"s2db/internal/core"
	"s2db/internal/types"
)

// DefaultParallelism resolves a worker-pool size: n when positive,
// otherwise GOMAXPROCS.
func DefaultParallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runTasks executes fn(0..n-1) on at most parallelism workers. Workers stop
// claiming new tasks once ctx is done; the error is ctx.Err() in that case.
// In-flight tasks are responsible for observing ctx themselves (scans poll
// it via Scan.Cancel).
func runTasks(ctx context.Context, n, parallelism int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// cancelledScan wires a context into a Scan's cancellation hook and its
// hydration waits: cancellation aborts a scan blocked on a cold segment's
// payload fetch without aborting the shared fetch.
func cancelledScan(ctx context.Context, view *core.View, filter Node) *Scan {
	s := NewScan(view, filter)
	s.Cancel = func() bool { return ctx.Err() != nil }
	s.Ctx = ctx
	return s
}

// firstScanErr folds per-task scan errors: the first terminal failure
// (failed hydration fetch) wins; a context.Canceled from a scan whose
// driver deliberately cancelled it (early limit) is not an error unless
// the caller's own ctx is dead too.
func firstScanErr(ctx context.Context, errs []error) error {
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			continue
		}
		return err
	}
	return nil
}

// AggregateViewsParallel is the fan-out counterpart of AggregateViews: one
// partial aggregation per view runs on the worker pool, then partials merge
// in view order (deterministic, identical to the sequential result). A
// cancelled ctx aborts in-flight scans and returns ctx.Err().
func AggregateViewsParallel(ctx context.Context, views []*core.View, filter Node, groupCols []int, aggs []AggSpec, parallelism int, stats *ScanStats) ([]types.Row, error) {
	p := newAggPlan(groupCols, aggs)
	partials := make([][]types.Row, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	err := runTasks(ctx, len(views), DefaultParallelism(parallelism), func(i int) {
		f := CloneNode(filter)
		scan := cancelledScan(ctx, views[i], f)
		partials[i] = p.partial(views[i], f, scan)
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
	})
	if err != nil {
		return nil, err
	}
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return nil, serr
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return p.mergeFinalize(partials), nil
}

// CollectRows materializes matching rows from every view concurrently,
// concatenating per-view results in view order so the output matches the
// sequential scan exactly. earlyLimit >= 0 enables early termination for
// Limit queries with no ordering or grouping: each view stops after
// earlyLimit rows, and once a completed prefix of views already holds
// earlyLimit rows the trailing scans are cancelled (their rows cannot make
// the result).
func CollectRows(ctx context.Context, views []*core.View, filter Node, earlyLimit int, parallelism int, stats *ScanStats) ([]types.Row, error) {
	if earlyLimit == 0 {
		return nil, ctx.Err()
	}
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	perView := make([][]types.Row, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	var mu sync.Mutex
	done := make([]bool, len(views))
	// prefixSatisfied cancels trailing scans once views 0..k are all done
	// and together hold earlyLimit rows. Called with mu held.
	prefixSatisfied := func() {
		if earlyLimit < 0 {
			return
		}
		total := 0
		for i := range views {
			if !done[i] {
				return
			}
			total += len(perView[i])
			if total >= earlyLimit {
				cancel()
				return
			}
		}
	}
	err := runTasks(sub, len(views), DefaultParallelism(parallelism), func(i int) {
		scan := cancelledScan(sub, views[i], CloneNode(filter))
		var out []types.Row
		scan.Run(func(r types.Row) bool {
			out = append(out, r.Clone())
			return earlyLimit < 0 || len(out) < earlyLimit
		})
		mu.Lock()
		perView[i] = out
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
		done[i] = true
		prefixSatisfied()
		mu.Unlock()
	})
	// Early-limit cancellation is success; only the caller's ctx is an error.
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// A scan cancelled by the early-limit sub-context is success; a scan
	// that died on a failed hydration fetch is not.
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return nil, serr
	}
	var out []types.Row
	for i := range perView {
		out = append(out, perView[i]...)
		if earlyLimit >= 0 && len(out) >= earlyLimit {
			out = out[:earlyLimit]
			break
		}
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return out, nil
}

// CountViews counts matching rows across views on the worker pool. The sum
// is order-independent, so no merge ordering is needed.
func CountViews(ctx context.Context, views []*core.View, filter Node, parallelism int, stats *ScanStats) (int64, error) {
	perCount := make([]int64, len(views))
	perStats := make([]ScanStats, len(views))
	perErr := make([]error, len(views))
	err := runTasks(ctx, len(views), DefaultParallelism(parallelism), func(i int) {
		scan := cancelledScan(ctx, views[i], CloneNode(filter))
		perCount[i] = scan.Count()
		perStats[i] = scan.Stats
		perErr[i] = scan.Err
	})
	if err != nil {
		return 0, err
	}
	if serr := firstScanErr(ctx, perErr); serr != nil {
		return 0, serr
	}
	var n int64
	for i := range perCount {
		n += perCount[i]
	}
	if stats != nil {
		for i := range perStats {
			accumulate(stats, perStats[i])
		}
	}
	return n, nil
}
