// Decoded-vector cache: the second cache tier of the separated-storage
// design. Tier one (internal/blob.FileCache, §3.1) keeps *encoded* segment
// files on local storage; this tier keeps *decoded* column vectors in
// memory, shared across queries and across the parallel scheduler's
// workers, so repeated scans of immutable segments skip DecodeAll entirely
// (the lesson PolarDB-IMCI draws at production scale: cache in-memory
// column units, not just raw files). Segments are immutable (§2.1.2), so a
// cached vector never goes stale — entries are dropped only when an LSM
// merge retires their segment or the LRU evicts them under memory pressure.
package exec

import (
	"container/list"
	"sync"

	"s2db/internal/colstore"
	"s2db/internal/core"
	"s2db/internal/types"
)

// VecCacheStats snapshots the cache-wide counters.
type VecCacheStats struct {
	// Hits served a fully decoded vector without any decode work.
	Hits int64
	// Misses decoded the vector (the single-flight owner's count).
	Misses int64
	// Waits joined another goroutine's in-flight decode instead of
	// duplicating it (single-flight sharing).
	Waits int64
	// Evictions counts vectors dropped under memory pressure.
	Evictions int64
	// Invalidations counts vectors dropped because a merge retired their
	// segment.
	Invalidations int64
	// AdmissionRejects counts vectors served uncached because they failed
	// the size-class admission filter (larger than half the budget).
	AdmissionRejects int64
	// SharedHits counts lookups served by promoting a vector from the
	// group's shared backing tier instead of decoding (a subset of Hits).
	// On the backing tier's own stats, Hits carries this count instead.
	SharedHits int64
	// Demotions counts evictions that moved the vector into the shared
	// backing tier rather than dropping it.
	Demotions int64
	// Entries and Bytes describe the current residency.
	Entries int
	Bytes   int64
}

// Add folds another tier's counters into s (used to total a cache group).
func (s *VecCacheStats) Add(o VecCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Waits += o.Waits
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.AdmissionRejects += o.AdmissionRejects
	s.SharedHits += o.SharedHits
	s.Demotions += o.Demotions
	s.Entries += o.Entries
	s.Bytes += o.Bytes
}

// HitRate returns Hits+Waits over all lookups (waits share a decode, so
// they count as serviced-without-own-decode).
func (s VecCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Waits
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(total)
}

// vecKey identifies one decoded column vector. Segments are keyed by
// pointer identity: IDs are only unique within one table partition, while
// the Segment object is unique process-wide and immutable, and keeping it
// as a map key pins it for exactly as long as the cache holds its vectors.
type vecKey struct {
	seg *colstore.Segment
	col int
}

// vecEntry is one cached (or in-flight) decoded vector. Payload fields are
// written by the single decoding goroutine before ready is closed and never
// mutated afterwards; waiters read them only after <-ready.
type vecEntry struct {
	key   vecKey
	ints  []int64
	strs  []string
	size  int64
	hits  int64         // guarded by VecCache.mu; feeds SegmentHeat
	done  bool          // guarded by VecCache.mu
	ready chan struct{} // closed once the decode has published
	el    *list.Element // non-nil while resident in the LRU
}

// The cache plugs into table maintenance through three optional contracts:
// merge-time invalidation, cache-aware merge planning, and decoded-vector
// reuse inside the merger itself.
var (
	_ core.DecodedVectorCache = (*VecCache)(nil)
	_ core.VectorResidency    = (*VecCache)(nil)
	_ colstore.VectorSource   = (*VecCache)(nil)
)

// VecCache is a size-bounded, concurrency-safe LRU of decoded column
// vectors with single-flight decode: when N workers hit the same cold
// (segment, column) pair, one decodes and the rest wait and share the
// result. A nil *VecCache is valid and disables sharing (scans fall back
// to their private per-scan decode caches).
//
// A standalone cache (NewVecCache) is the whole story. As a partition of a
// VecCacheGroup it is one workspace's hot tier: its budget is the
// workspace's share of the group pool (resized as workspaces attach and
// detach), evictions demote into the group's shared backing tier instead
// of dropping, misses promote from it instead of decoding, and
// invalidation/heat/peek delegate to the group so merges see every tier.
type VecCache struct {
	name   string         // partition name ("" for a standalone cache)
	group  *VecCacheGroup // nil for a standalone cache
	shared *sharedTier    // the group's backing tier; nil when standalone

	mu         sync.Mutex
	maxBytes   int64
	admitLimit int64 // largest entry the size-class filter admits
	entries    map[vecKey]*vecEntry
	lru        *list.List // of *vecEntry, front = most recent
	curBytes   int64

	hits, misses, waits, evictions, invalidations, admissionRejects int64
	sharedHits, demotions                                           int64
}

// NewVecCache returns a standalone cache bounded to maxBytes of decoded
// vector data, or nil (cache disabled) when maxBytes <= 0.
func NewVecCache(maxBytes int) *VecCache {
	if maxBytes <= 0 {
		return nil
	}
	return &VecCache{
		maxBytes:   int64(maxBytes),
		admitLimit: int64(maxBytes) / 2,
		entries:    make(map[vecKey]*vecEntry),
		lru:        list.New(),
	}
}

// newVecCachePartition builds a group partition with a placeholder budget;
// the group resizes it before handing it out.
func newVecCachePartition(name string, g *VecCacheGroup) *VecCache {
	c := NewVecCache(1)
	c.name = name
	c.group = g
	c.shared = g.shared
	return c
}

// PartitionName returns the group partition this cache serves ("" for a
// standalone cache).
func (c *VecCache) PartitionName() string {
	if c == nil {
		return ""
	}
	return c.name
}

// resize rebudgets the hot tier, demoting (or dropping) overflow.
func (c *VecCache) resize(maxBytes int64) {
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.admitLimit = maxBytes / 2
	c.evictLocked(nil)
	c.mu.Unlock()
}

// discardAll drops every resident entry without demoting — used when the
// partition's workspace detaches and its segments can never be read again.
func (c *VecCache) discardAll() {
	c.mu.Lock()
	for k, e := range c.entries {
		if e.el != nil {
			c.lru.Remove(e.el)
			e.el = nil
			c.curBytes -= e.size
		}
		delete(c.entries, k)
	}
	c.mu.Unlock()
}

// InvalidateSegment drops every vector of the segment, called when an LSM
// merge retires it (it implements core.DecodedVectorCache). On a group
// partition the purge is global — every hot tier plus the shared backing
// tier — because a vector surviving in any tier would resurface on the
// next promotion. In-flight decodes for the segment are detached: the
// decoder and its waiters still get their vector — correct for their older
// snapshot, since segment payloads are immutable — but the result is not
// installed in the LRU.
func (c *VecCache) InvalidateSegment(seg *colstore.Segment) {
	if c == nil {
		return
	}
	if c.group != nil {
		c.group.InvalidateSegment(seg)
		return
	}
	c.invalidateLocal(seg)
}

// invalidateLocal purges the segment from this hot tier only.
func (c *VecCache) invalidateLocal(seg *colstore.Segment) {
	c.mu.Lock()
	for k, e := range c.entries {
		if k.seg != seg {
			continue
		}
		if e.el != nil {
			c.lru.Remove(e.el)
			e.el = nil
			c.curBytes -= e.size
		}
		delete(c.entries, k)
		c.invalidations++
	}
	c.mu.Unlock()
}

// Ints returns the decoded int64 (or float-bits) vector for the column,
// decoding at most once process-wide per (segment, column). st, when
// non-nil, receives the per-scan hit/miss/wait counters.
func (c *VecCache) Ints(meta *colstore.Meta, col int, st *ScanStats) []int64 {
	e, owner := c.acquire(vecKey{seg: meta.Seg, col: col}, st)
	if !owner {
		return e.ints
	}
	v := decodeInts(meta, col, st)
	e.ints = v
	c.publish(e, 8*int64(cap(v)), st)
	return v
}

// Strs returns the decoded string vector for the column, decoding at most
// once process-wide per (segment, column).
func (c *VecCache) Strs(meta *colstore.Meta, col int, st *ScanStats) []string {
	e, owner := c.acquire(vecKey{seg: meta.Seg, col: col}, st)
	if !owner {
		return e.strs
	}
	v := decodeStrs(meta, col, st)
	e.strs = v
	c.publish(e, stringsBytes(v), st)
	return v
}

// acquire resolves the entry for k and reports whether the caller owns the
// decode (single-flight). When owner is false the entry is fully decoded on
// return — the caller may have blocked on a concurrent decoder.
func (c *VecCache) acquire(k vecKey, st *ScanStats) (*vecEntry, bool) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		if e.done {
			if e.el != nil {
				c.lru.MoveToFront(e.el)
			}
			c.hits++
			e.hits++
			if st != nil {
				st.VecCacheHits++
			}
			c.mu.Unlock()
			return e, false
		}
		// Another goroutine is decoding this vector right now: wait for it
		// instead of duplicating the work.
		c.waits++
		e.hits++
		if st != nil {
			st.VecCacheWaits++
		}
		ready := e.ready
		c.mu.Unlock()
		<-ready
		return e, false
	}
	// Hot-tier miss: before paying a decode, try promoting the vector from
	// the group's shared backing tier (a previous eviction demoted it
	// there). Lock order is partition.mu -> shared.mu, the same as the
	// demotion path.
	if c.shared != nil {
		if ints, strs, size, ok := c.shared.take(k); ok {
			e := &vecEntry{key: k, ints: ints, strs: strs, size: size, done: true, ready: closedReady}
			switch {
			case k.seg.Retired():
				// Serve this caller (immutable payloads stay correct for its
				// older snapshot) but never re-install a retired segment.
			case size > c.admitLimit:
				// Too big for this hot tier's admission filter: leave it in
				// the backing tier so it keeps serving without a decode,
				// instead of ping-ponging between tiers on every access.
				c.shared.put(k, ints, strs, size)
			default:
				e.el = c.lru.PushFront(e)
				c.entries[k] = e
				c.curBytes += size
				c.evictLocked(st)
			}
			c.hits++
			c.sharedHits++
			e.hits++
			if st != nil {
				st.VecCacheHits++
				st.VecCacheSharedHits++
			}
			c.mu.Unlock()
			return e, false
		}
	}
	e := &vecEntry{key: k, ready: make(chan struct{})}
	c.entries[k] = e
	c.misses++
	if st != nil {
		st.VecCacheMisses++
	}
	c.mu.Unlock()
	return e, true
}

// closedReady is the pre-closed channel given to entries that never go
// through publish (promotions arrive fully decoded and have no waiters).
var closedReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// publish installs a decoded entry in the LRU (unless it was invalidated
// mid-decode or exceeds the whole budget) and releases its waiters. The
// payload fields must be set before publish is called.
func (c *VecCache) publish(e *vecEntry, size int64, st *ScanStats) {
	c.mu.Lock()
	e.size = size
	e.done = true
	switch {
	case c.entries[e.key] != e:
		// Invalidated (or superseded) while decoding: serve the waiters but
		// do not install.
	case e.key.seg.Retired():
		// The segment was retired while decoding; the map-identity check
		// above usually catches this, but the flag also closes the window
		// where a group-wide purge finished before this entry registered.
		delete(c.entries, e.key)
	case size > c.admitLimit:
		// Size-class admission filter: installing a vector bigger than half
		// the budget (e.g. one near-budget wide-string column) would evict
		// many small hot vectors to keep a single entry. Serve it uncached.
		delete(c.entries, e.key)
		c.admissionRejects++
	default:
		e.el = c.lru.PushFront(e)
		c.curBytes += size
		c.evictLocked(st)
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictLocked drops least-recently-used vectors until the cache fits. On a
// group partition an eviction demotes the vector into the shared backing
// tier (unless its segment was retired), so another touch re-pins it
// without a decode. Caller holds mu; lock order partition.mu -> shared.mu.
func (c *VecCache) evictLocked(st *ScanStats) {
	for c.curBytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*vecEntry)
		c.lru.Remove(back)
		e.el = nil
		c.curBytes -= e.size
		if c.entries[e.key] == e {
			delete(c.entries, e.key)
		}
		c.evictions++
		if st != nil {
			st.VecCacheEvictions++
		}
		if c.shared != nil && c.shared.put(e.key, e.ints, e.strs, e.size) {
			c.demotions++
		}
	}
}

// PeekInts returns the resident decoded vector for (seg, col) without
// promoting the entry or counting a hit. The merger uses it to reuse
// cache-resident vectors for segments it is about to retire: touching the
// LRU or the heat counters would make the merge itself inflate the
// "hotness" of runs it reads, defeating cache-aware planning. On a group
// partition the peek spans every tier — the merger should find the vector
// wherever it is resident.
func (c *VecCache) PeekInts(seg *colstore.Segment, col int) ([]int64, bool) {
	if c == nil {
		return nil, false
	}
	if c.group != nil {
		return c.group.PeekInts(seg, col)
	}
	return c.peekIntsLocal(vecKey{seg: seg, col: col})
}

// peekIntsLocal checks this hot tier only.
func (c *VecCache) peekIntsLocal(k vecKey) ([]int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && e.done && e.ints != nil {
		return e.ints, true
	}
	return nil, false
}

// PeekStrs is PeekInts for string columns.
func (c *VecCache) PeekStrs(seg *colstore.Segment, col int) ([]string, bool) {
	if c == nil {
		return nil, false
	}
	if c.group != nil {
		return c.group.PeekStrs(seg, col)
	}
	return c.peekStrsLocal(vecKey{seg: seg, col: col})
}

// peekStrsLocal checks this hot tier only.
func (c *VecCache) peekStrsLocal(k vecKey) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && e.done && e.strs != nil {
		return e.strs, true
	}
	return nil, false
}

// SegmentHeat reports the segment's cache footprint — resident decoded
// bytes and accumulated hits across its vectors — so the merge planner can
// prefer retiring cold runs (it implements core.VectorResidency). Safe on a
// nil (disabled) cache. On a group partition the heat is node-wide: merge
// planning must see residency in every workspace's tier, not just the one
// that happens to run the merge.
func (c *VecCache) SegmentHeat(seg *colstore.Segment) (residentBytes, hits int64) {
	if c == nil {
		return 0, 0
	}
	if c.group != nil {
		return c.group.SegmentHeat(seg)
	}
	return c.localHeat(seg)
}

// localHeat sums this hot tier's residency and hits for the segment.
func (c *VecCache) localHeat(seg *colstore.Segment) (residentBytes, hits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.seg != seg || !e.done {
			continue
		}
		if e.el != nil {
			residentBytes += e.size
		}
		hits += e.hits
	}
	return residentBytes, hits
}

// Stats snapshots the cache counters; safe on a nil (disabled) cache.
func (c *VecCache) Stats() VecCacheStats {
	if c == nil {
		return VecCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return VecCacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		Waits:            c.waits,
		Evictions:        c.evictions,
		Invalidations:    c.invalidations,
		AdmissionRejects: c.admissionRejects,
		SharedHits:       c.sharedHits,
		Demotions:        c.demotions,
		Entries:          c.lru.Len(),
		Bytes:            c.curBytes,
	}
}

// decodeInts fully decodes an int column, counting the decode in st.
func decodeInts(meta *colstore.Meta, col int, st *ScanStats) []int64 {
	if st != nil {
		st.VecDecodes++
	}
	return meta.Seg.Cols[col].Ints.DecodeAll(make([]int64, 0, meta.Seg.NumRows))
}

// decodeStrs fully decodes a string column, counting the decode in st.
func decodeStrs(meta *colstore.Meta, col int, st *ScanStats) []string {
	if st != nil {
		st.VecDecodes++
	}
	return meta.Seg.Cols[col].Strs.DecodeAll(make([]string, 0, meta.Seg.NumRows))
}

// stringsBytes estimates the resident size of a decoded string vector: the
// slice headers plus the string payloads.
func stringsBytes(v []string) int64 {
	n := 16 * int64(cap(v))
	for _, s := range v {
		n += int64(len(s))
	}
	return n
}

// --- scan-path buffer pools --------------------------------------------------

// selPool recycles selection vectors across segments and scans: the scan
// path previously allocated one NumRows-capacity []int32 per segment per
// query, which dominated allocation counts on warm scans.
var selPool = sync.Pool{New: func() any { return new([]int32) }}

// getSel borrows a selection-vector buffer with at least the given
// capacity; the returned slice is empty.
func getSel(capHint int) *[]int32 {
	p := selPool.Get().(*[]int32)
	if cap(*p) < capHint {
		*p = make([]int32, 0, capHint)
	}
	return p
}

// putSel returns a selection-vector buffer to the pool.
func putSel(p *[]int32) {
	*p = (*p)[:0]
	selPool.Put(p)
}

// rowPool recycles materializer row buffers. Rows handed to scan callbacks
// are only valid until the callback returns (the documented iterator
// contract), so the scan recycles them once a segment's callback finishes.
var rowPool = sync.Pool{New: func() any { return new(types.Row) }}

// getRow borrows a zeroed row buffer of length n.
func getRow(n int) *types.Row {
	p := rowPool.Get().(*types.Row)
	r := *p
	if cap(r) < n {
		r = make(types.Row, n)
	}
	r = r[:n]
	for i := range r {
		r[i] = types.Value{}
	}
	*p = r
	return p
}

// putRow returns a row buffer to the pool.
func putRow(p *types.Row) { rowPool.Put(p) }
